package rapidanalytics

import (
	"strings"
	"testing"
)

func TestStatsTrace(t *testing.T) {
	s := apiStore()
	_, stats, err := s.Query(RAPIDAnalytics, apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Jobs) != stats.MRCycles {
		t.Errorf("Jobs = %d, cycles = %d", len(stats.Jobs), stats.MRCycles)
	}
	tr := stats.Trace()
	if !strings.Contains(tr, "cycle") || !strings.Contains(tr, "map-only") {
		t.Errorf("Trace = %q", tr)
	}
	lines := strings.Split(strings.TrimSpace(tr), "\n")
	if len(lines) != stats.MRCycles+1 {
		t.Errorf("trace lines = %d, want %d", len(lines), stats.MRCycles+1)
	}
}
