package rapidanalytics

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rapidanalytics/internal/obs"
)

func TestStatsTrace(t *testing.T) {
	s := apiStore()
	_, stats, err := s.Query(RAPIDAnalytics, apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Jobs) != stats.MRCycles {
		t.Errorf("Jobs = %d, cycles = %d", len(stats.Jobs), stats.MRCycles)
	}
	tr := stats.Trace()
	if !strings.Contains(tr, "cycle") || !strings.Contains(tr, "map-only") {
		t.Errorf("Trace = %q", tr)
	}
	lines := strings.Split(strings.TrimSpace(tr), "\n")
	if len(lines) != stats.MRCycles+1 {
		t.Errorf("trace lines = %d, want %d", len(lines), stats.MRCycles+1)
	}
}

// TestStatsTraceAlignmentLongNames is the golden test for the column
// alignment bug: cycle labels longer than the old fixed 28-char column
// (typical of MQO plans with "(map-only)" suffixes) must widen the whole
// table instead of shifting their own row's numeric columns.
func TestStatsTraceAlignmentLongNames(t *testing.T) {
	stats := &Stats{
		Jobs: []JobStats{
			{Name: "comp-star0", SimulatedSeconds: 12, InputRecords: 100,
				ShuffleBytes: 2048, OutputBytes: 512, MapTasks: 2, ReduceTasks: 1,
				MapWall: 1500 * time.Microsecond, ShuffleSortWall: 250 * time.Microsecond,
				ReduceWall: 750 * time.Microsecond},
			{Name: "gp2-distinct-over-composite-materialization", MapOnly: true,
				SimulatedSeconds: 3, InputRecords: 40, OutputBytes: 64, MapTasks: 1,
				MapWall: 300 * time.Microsecond},
		},
	}
	got := stats.Trace()
	want := "" +
		"cycle                                                     sim-s    records    shuffle B     output B   maps   reds   map-ms  sort-ms   red-ms\n" +
		"comp-star0                                                   12        100         2048          512      2      1     1.50     0.25     0.75\n" +
		"gp2-distinct-over-composite-materialization (map-only)        3         40            0           64      1      0     0.30     0.00     0.00\n"
	if got != want {
		t.Fatalf("Trace golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Structural alignment: every numeric column starts at the same offset
	// in every row.
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	simCol := strings.Index(lines[0], "sim-s")
	for _, l := range lines[1:] {
		if len(l) < simCol {
			t.Fatalf("row shorter than header: %q", l)
		}
		// The name field must end (with padding) before the sim column.
		if strings.TrimSpace(l[:simCol]) == "" {
			t.Fatalf("empty name field: %q", l)
		}
	}
}

// TestQueryTracingCapturesSpanTree runs the API query under WithTracing and
// checks the acceptance criterion: the span tree's per-cycle phase walls
// match the Stats phase walls exactly, and the tree covers every cycle.
func TestQueryTracingCapturesSpanTree(t *testing.T) {
	s := apiStore()
	for _, sys := range Systems() {
		res, stats, err := s.QueryContext(WithTracing(context.Background()), sys, apiQuery)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Len() == 0 {
			t.Fatalf("%s: no rows", sys)
		}
		if stats.Span == nil {
			t.Fatalf("%s: no span captured under WithTracing", sys)
		}
		if stats.Span.Kind != obs.KindQuery || stats.Span.Name != string(sys) {
			t.Errorf("%s: root span = %s %s", sys, stats.Span.Kind, stats.Span.Name)
		}
		var cycles []*TraceSpan
		stats.Span.Walk(func(n *TraceSpan) {
			if n.Kind == obs.KindCycle {
				cycles = append(cycles, n)
			}
		})
		if len(cycles) != stats.MRCycles {
			t.Fatalf("%s: %d cycle spans, want %d\n%s", sys, len(cycles), stats.MRCycles, stats.Span.Tree())
		}
		// Per-cycle phase span walls must equal the JobStats walls exactly:
		// both sides publish the same measured duration.
		var mapSum, sortSum, reduceSum time.Duration
		for i, j := range stats.Jobs {
			cyc := cycles[i]
			if cyc.Name != j.Name {
				t.Fatalf("%s: cycle %d span %q, stats %q", sys, i, cyc.Name, j.Name)
			}
			checkPhase := func(phase string, want time.Duration) {
				ph := cyc.Find(obs.KindPhase, phase)
				if want == 0 && ph == nil {
					return
				}
				if ph == nil {
					t.Fatalf("%s %s: no %s phase span", sys, j.Name, phase)
				}
				if time.Duration(ph.WallNs) != want {
					t.Errorf("%s %s: %s span wall %v, stats wall %v", sys, j.Name, phase, time.Duration(ph.WallNs), want)
				}
			}
			checkPhase("map", j.MapWall)
			checkPhase("shuffle-sort", j.ShuffleSortWall)
			checkPhase("reduce", j.ReduceWall)
			mapSum += j.MapWall
			sortSum += j.ShuffleSortWall
			reduceSum += j.ReduceWall
		}
		if mapSum != stats.MapWall || sortSum != stats.ShuffleSortWall || reduceSum != stats.ReduceWall {
			t.Errorf("%s: per-cycle wall sums %v/%v/%v != stats walls %v/%v/%v",
				sys, mapSum, sortSum, reduceSum, stats.MapWall, stats.ShuffleSortWall, stats.ReduceWall)
		}
		// The root wall covers the whole workflow.
		if time.Duration(stats.Span.WallNs) < mapSum+sortSum+reduceSum {
			t.Errorf("%s: root wall %v < phase sum %v", sys, time.Duration(stats.Span.WallNs), mapSum+sortSum+reduceSum)
		}
		if tree := stats.TraceTree(); !strings.Contains(tree, "wall=") {
			t.Errorf("%s: TraceTree = %q", sys, tree)
		}
		raw, err := stats.TraceJSON()
		if err != nil {
			t.Fatalf("%s: TraceJSON: %v", sys, err)
		}
		var back TraceSpan
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: TraceJSON round trip: %v", sys, err)
		}
	}
}

// TestQueryWithoutTracingHasNoSpan pins the default: no WithTracing, no
// span tree.
func TestQueryWithoutTracingHasNoSpan(t *testing.T) {
	s := apiStore()
	_, stats, err := s.Query(RAPIDAnalytics, apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Span != nil {
		t.Fatalf("Span captured without WithTracing:\n%s", stats.Span.Tree())
	}
	if stats.TraceTree() != "" {
		t.Errorf("TraceTree on untraced stats = %q", stats.TraceTree())
	}
	if raw, err := stats.TraceJSON(); err != nil || raw != nil {
		t.Errorf("TraceJSON on untraced stats = %q, %v", raw, err)
	}
}

// TestRAPIDAnalyticsTraceHasPlannerAndOperators checks the RAPIDAnalytics
// span tree shape the docs describe: composite-rewrite planner span, NTGA
// operator spans, and the final map-only join.
func TestRAPIDAnalyticsTraceHasPlannerAndOperators(t *testing.T) {
	s := apiStore()
	_, stats, err := s.QueryContext(WithTracing(context.Background()), RAPIDAnalytics, apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	sn := stats.Span
	for _, want := range []struct {
		kind obs.Kind
		name string
	}{
		{obs.KindPlanner, "composite-rewrite"},
		{obs.KindPlanner, "join-order"},
		{obs.KindOperator, "TG_OptGrpFilter"},
		{obs.KindOperator, "TG_AlphaJoin"},
		{obs.KindOperator, "TG_AgJ.map"},
		{obs.KindOperator, "TG_AgJ.reduce"},
		{obs.KindOperator, "final-join"},
		{obs.KindIO, "dfs-write"},
	} {
		if sn.Find(want.kind, want.name) == nil {
			t.Errorf("missing %s span %q in:\n%s", want.kind, want.name, sn.Tree())
		}
	}
}
