package rapidanalytics_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	ra "rapidanalytics"
)

// buildShopWith rebuilds the shop fixture under custom options.
func buildShopWith(t *testing.T, opts ra.Options) *ra.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := buildShop().WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	s := ra.NewStore(opts)
	if err := s.LoadNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestResultCacheServesIdenticalResult(t *testing.T) {
	opts := ra.DefaultOptions()
	opts.ResultCacheBytes = 1 << 20
	store := buildShopWith(t, opts)

	first, st1, err := store.Query(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ResultCacheHit {
		t.Fatal("first execution reported a result-cache hit")
	}
	second, st2, err := store.Query(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.ResultCacheHit {
		t.Fatal("second execution missed the result cache")
	}
	if st2.MRCycles != 0 {
		t.Errorf("cache hit ran %d MR cycles, want 0", st2.MRCycles)
	}
	if canonRows(first) != canonRows(second) {
		t.Fatalf("cached result diverged:\n%s\nvs\n%s", canonRows(first), canonRows(second))
	}
	cs := store.ResultCacheStats()
	if cs.Hits < 1 || cs.Entries < 1 || cs.Bytes <= 0 {
		t.Errorf("result cache stats look wrong: %+v", cs)
	}

	// A different system must not be served the rapidanalytics entry.
	other, st3, err := store.Query(ra.HiveNaive, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ResultCacheHit {
		t.Error("hive-naive hit a cache entry written by rapidanalytics")
	}
	if canonRows(other) != canonRows(first) {
		t.Fatalf("engines disagree: %s vs %s", canonRows(other), canonRows(first))
	}
}

// TestResultCacheHitTraced checks a WithTracing execution served from the
// cache still captures a span tree, tagged with the cache-hit span.
func TestResultCacheHitTraced(t *testing.T) {
	opts := ra.DefaultOptions()
	opts.ResultCacheBytes = 1 << 20
	store := buildShopWith(t, opts)
	if _, _, err := store.Query(ra.RAPIDAnalytics, exampleQuery); err != nil {
		t.Fatal(err)
	}
	_, st, err := store.QueryContext(ra.WithTracing(t.Context()), ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ResultCacheHit {
		t.Fatal("expected a result-cache hit")
	}
	if st.Span == nil {
		t.Fatal("traced cache hit captured no span tree")
	}
	found := false
	for _, c := range st.Span.Children {
		if c.Name == "cache-hit" {
			found = true
		}
	}
	if !found {
		t.Errorf("span tree lacks a cache-hit child: %s", st.Span.Tree())
	}
}

// TestResultCacheInvalidatedByMutation is the store-level half of the
// regression: Add bumps the data version (and rebuilds the statistics
// catalog), so a cached result keyed under the old catalog version must
// not be served.
func TestResultCacheInvalidatedByMutation(t *testing.T) {
	opts := ra.DefaultOptions()
	opts.ResultCacheBytes = 1 << 20
	store := buildShopWith(t, opts)

	before, _, err := store.Query(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	// A new offer for px changes both groupings' counts.
	ns := "http://example.org/"
	store.Add(ns+"o9", ns+"product", ra.IRI(ns+"px"))
	store.Add(ns+"o9", ns+"price", ra.Literal("777"))

	after, st, err := store.Query(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if st.ResultCacheHit {
		t.Fatal("stale cached result served after mutation")
	}
	if canonRows(after) == canonRows(before) {
		t.Fatal("result did not change after mutation (fixture broken?)")
	}
	oracle, _, err := store.Query(ra.Reference, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if canonRows(after) != canonRows(oracle) {
		t.Fatalf("post-mutation result diverged from oracle:\n%s\nvs\n%s", canonRows(after), canonRows(oracle))
	}
}

// TestSubResultCacheReusesComposite runs two distinct query texts sharing
// one composite pattern: the second must reuse the cached composite
// matches (fewer MR cycles) and still agree with the oracle.
func TestSubResultCacheReusesComposite(t *testing.T) {
	opts := ra.DefaultOptions()
	opts.ResultCacheBytes = 1 << 20
	store := buildShopWith(t, opts)

	// Same composite patterns as exampleQuery, different final ordering —
	// a result-cache miss but a sub-result hit.
	variant := `PREFIX e: <http://example.org/>
SELECT ?feature ?cntF ?cntT {
  { SELECT ?feature (COUNT(?pr2) AS ?cntF)
    { ?p2 a e:Phone ; e:label ?l2 ; e:feature ?feature .
      ?o2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?feature }
  { SELECT (COUNT(?pr) AS ?cntT)
    { ?p1 a e:Phone ; e:label ?l1 .
      ?o1 e:product ?p1 ; e:price ?pr . } }
}`

	_, st1, err := store.Query(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, st2, err := store.Query(ra.RAPIDAnalytics, variant)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ResultCacheHit {
		t.Fatal("variant text unexpectedly hit the final-result cache")
	}
	if st2.MRCycles >= st1.MRCycles {
		t.Errorf("composite reuse did not shrink the workflow: %d cycles vs %d on first run",
			st2.MRCycles, st1.MRCycles)
	}
	oracle, _, err := store.Query(ra.Reference, variant)
	if err != nil {
		t.Fatal(err)
	}
	if canonRows(res) != canonRows(oracle) {
		t.Fatalf("composite-reusing result diverged from oracle:\n%s\nvs\n%s", canonRows(res), canonRows(oracle))
	}
}

// TestSharedScansKeepResultsIdentical fires concurrent identical queries
// at a shared-scan store and checks every result matches the unshared
// baseline while at least one scan cycle was actually shared.
func TestSharedScansKeepResultsIdentical(t *testing.T) {
	baseline := buildShop()
	want, _, err := baseline.Query(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}

	opts := ra.DefaultOptions()
	opts.SharedScans = true
	opts.SharedScanWindow = 100 * time.Millisecond // generous: coalesce the whole burst
	store := buildShopWith(t, opts)

	const concurrent = 6
	var wg sync.WaitGroup
	results := make([]*ra.Result, concurrent)
	errs := make([]error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = store.Query(ra.RAPIDAnalytics, exampleQuery)
		}(i)
	}
	wg.Wait()

	for i := 0; i < concurrent; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if canonRows(results[i]) != canonRows(want) {
			t.Fatalf("query %d diverged under shared scans:\n%s\nvs\n%s",
				i, canonRows(results[i]), canonRows(want))
		}
	}
	st := store.SharedScanStats()
	if st.Cycles == 0 {
		t.Fatal("shared-scan scheduler never ran a cycle")
	}
	if st.SharedCycles == 0 {
		t.Error("no scan cycle was shared across the concurrent burst")
	}
	if st.RecordsServed <= st.RecordsScanned {
		t.Errorf("sharing saved nothing: served %d, scanned %d", st.RecordsServed, st.RecordsScanned)
	}
}
