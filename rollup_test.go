package rapidanalytics

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func rollupStore() *Store {
	s := NewStore(DefaultOptions())
	ns := "http://e/"
	add := func(subj, prop string, obj Term) { s.Add(ns+subj, ns+prop, obj) }
	sale := func(id, region, city, amount string) {
		add(id, "region", Literal(region))
		add(id, "city", Literal(city))
		add(id, "amount", Literal(amount))
	}
	sale("s1", "EU", "Berlin", "10")
	sale("s2", "EU", "Berlin", "20")
	sale("s3", "EU", "Paris", "5")
	sale("s4", "US", "NYC", "40")
	return s
}

func rollupSpec() RollupSpec {
	return RollupSpec{
		Prologue: "PREFIX e: <http://e/>",
		Pattern:  "?s e:region ?r ; e:city ?c ; e:amount ?a .",
		Agg:      "SUM",
		Var:      "a",
		Dims:     []string{"r", "c"},
	}
}

func TestBuildRollupQuery(t *testing.T) {
	q, err := BuildRollup(rollupSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(q); err != nil {
		t.Fatalf("generated query does not compile: %v\n%s", err, q)
	}
	// Three levels: (r,c), (r), ().
	if strings.Count(q, "{ SELECT") != 3 {
		t.Errorf("levels = %d:\n%s", strings.Count(q, "{ SELECT"), q)
	}
}

func TestRollupResults(t *testing.T) {
	q, err := BuildRollup(rollupSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := rollupStore()
	ref, _, err := s.Query(Reference, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]string{}
	for _, r := range ref.Rows() {
		rows[r[0]+"/"+r[1]] = strings.Join(r[2:], ",")
	}
	// (region, city, sum(city), sum(region), sum(all))
	want := map[string]string{
		"EU/Berlin": "30,35,75",
		"EU/Paris":  "5,35,75",
		"US/NYC":    "40,40,75",
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for k, w := range want {
		if rows[k] != w {
			t.Errorf("row %s = %q, want %q", k, rows[k], w)
		}
	}
	// All engines agree, and RAPIDAnalytics does the whole 3-level rollup
	// in 2 cycles (single star: parallel Agg-Join + final map-only join).
	for _, sys := range Systems() {
		res, stats, err := s.Query(sys, q)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Len() != 3 {
			t.Errorf("%s rows = %d", sys, res.Len())
		}
		if sys == RAPIDAnalytics && stats.MRCycles != 2 {
			t.Errorf("RAPIDAnalytics rollup cycles = %d, want 2", stats.MRCycles)
		}
	}
}

func TestRollupDistinct(t *testing.T) {
	spec := rollupSpec()
	spec.Agg = "count"
	spec.Distinct = true
	q, err := BuildRollup(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q, "COUNT(DISTINCT ?a)") {
		t.Errorf("query missing DISTINCT:\n%s", q)
	}
	s := rollupStore()
	res, _, err := s.Query(RAPIDAnalytics, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("rows = %d", res.Len())
	}
}

func TestBuildRollupErrors(t *testing.T) {
	cases := []RollupSpec{
		{},
		{Pattern: "?s ?p ?o .", Agg: "SUM", Var: "o"},                          // no dims
		{Pattern: "?s e:p ?o .", Agg: "MEDIAN", Var: "o", Dims: []string{"d"}}, // bad agg
		{Pattern: "?s e:p ?o .", Agg: "SUM", Var: "d", Dims: []string{"d"}},    // var is dim
		{Pattern: "", Agg: "SUM", Var: "o", Dims: []string{"d"}},               // empty pattern
	}
	for i, spec := range cases {
		if _, err := BuildRollup(spec); err == nil {
			t.Errorf("case %d: BuildRollup accepted %+v", i, spec)
		}
	}
}

// Property: for random sales data and any rollup depth, RAPIDAnalytics
// agrees with the in-memory reference on the full rollup result.
func TestRollupQuick(t *testing.T) {
	f := func(seed int64, depth uint8) bool {
		dims := []string{"region", "city", "store"}[:1+int(depth)%3]
		spec := RollupSpec{
			Prologue: "PREFIX e: <http://e/>",
			Agg:      "SUM",
			Var:      "a",
			Dims:     make([]string, len(dims)),
		}
		pattern := "?s"
		for i, d := range dims {
			spec.Dims[i] = d
			pattern += " e:" + d + " ?" + d + " ;"
		}
		spec.Pattern = pattern + " e:amount ?a ."
		q, err := BuildRollup(spec)
		if err != nil {
			return false
		}
		s := NewStore(DefaultOptions())
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		for i := 0; i < n; i++ {
			id := "http://e/s" + strconv.Itoa(i)
			for _, d := range dims {
				s.Add(id, "http://e/"+d, Literal(d+strconv.Itoa(rng.Intn(3))))
			}
			s.Add(id, "http://e/amount", Literal(strconv.Itoa(rng.Intn(100))))
		}
		want, _, err := s.Query(Reference, q)
		if err != nil {
			return false
		}
		got, _, err := s.Query(RAPIDAnalytics, q)
		if err != nil {
			return false
		}
		if want.Len() != got.Len() {
			return false
		}
		index := map[string]bool{}
		for _, r := range want.Rows() {
			index[strings.Join(r, "|")] = true
		}
		for _, r := range got.Rows() {
			if !index[strings.Join(r, "|")] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
