package rapidanalytics_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	ra "rapidanalytics"
)

// secondQuery is a single-grouping variant over the shop graph, used to mix
// distinct plans in the stress test.
const secondQuery = `PREFIX e: <http://example.org/>
SELECT ?feature (COUNT(?pr) AS ?cnt)
{ ?p a e:Phone ; e:feature ?feature .
  ?o e:product ?p ; e:price ?pr . } GROUP BY ?feature ORDER BY ?feature`

func canonRows(res *ra.Result) string {
	rows := make([]string, res.Len())
	for i, r := range res.Rows() {
		rows[i] = strings.Join(r, "|")
	}
	return strings.Join(rows, "\n")
}

// TestConcurrentMixedQueries hammers one store with N goroutines issuing a
// mix of systems, query texts, and prepared/unprepared paths — the serving
// workload in miniature. Every result must match the single-threaded
// answer, and concurrent Add calls of pattern-irrelevant triples must not
// disturb in-flight queries.
func TestConcurrentMixedQueries(t *testing.T) {
	store := buildShop()

	queries := []string{exampleQuery, secondQuery}
	systems := []ra.System{ra.RAPIDAnalytics, ra.RAPIDPlus, ra.HiveNaive, ra.HiveMQO, ra.Reference}

	// Single-threaded ground truth per (query, system).
	want := map[string]string{}
	for qi, q := range queries {
		for _, sys := range systems {
			res, _, err := store.Query(sys, q)
			if err != nil {
				t.Fatalf("baseline %s q%d: %v", sys, qi, err)
			}
			key := fmt.Sprintf("%d/%s", qi, sys)
			want[key] = canonRows(res)
			if want[key] == "" {
				t.Fatalf("baseline %s q%d returned no rows", sys, qi)
			}
		}
	}

	const goroutines = 16
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				sys := systems[(g*iters+i)%len(systems)]
				key := fmt.Sprintf("%d/%s", qi, sys)
				var res *ra.Result
				var err error
				if i%2 == 0 {
					res, _, err = store.Query(sys, queries[qi])
				} else {
					var pq *ra.PreparedQuery
					pq, err = store.Prepare(sys, queries[qi])
					if err == nil {
						res, _, err = pq.Execute(context.Background())
					}
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d %s: %w", g, i, key, err)
					return
				}
				if got := canonRows(res); got != want[key] {
					errs <- fmt.Errorf("goroutine %d iter %d %s: rows diverged:\n%s\nwant:\n%s", g, i, key, got, want[key])
					return
				}
			}
		}(g)
	}
	// Concurrent mutations: triples in a foreign namespace match no query
	// pattern, so results must stay stable while Add interleaves.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			store.Add(fmt.Sprintf("http://other.org/s%d", i), "http://other.org/p", ra.Literal("x"))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if stats := store.PlanCacheStats(); stats.Hits == 0 {
		t.Errorf("stress run recorded no plan cache hits: %+v", stats)
	}
}

func TestPrepareCacheHitAndCanonicalAlias(t *testing.T) {
	store := buildShop()
	pq1, err := store.Prepare(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if pq1.CacheHit() {
		t.Fatal("first Prepare must miss")
	}
	pq2, err := store.Prepare(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !pq2.CacheHit() {
		t.Fatal("repeated Prepare must hit")
	}
	// A different spelling (extra whitespace) shares the canonicalized
	// plan.
	respaced := strings.ReplaceAll(exampleQuery, "SELECT", "SELECT  ")
	pq3, err := store.Prepare(ra.RAPIDAnalytics, respaced)
	if err != nil {
		t.Fatal(err)
	}
	if pq3.Normalized() != pq1.Normalized() {
		t.Fatal("respaced query must normalize identically")
	}
	// Same text under a different system plans separately (cache is keyed
	// by system).
	pq4, err := store.Prepare(ra.HiveNaive, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if pq4.CacheHit() {
		t.Fatal("different system must not share the rapidanalytics entry")
	}
	if pq4.System() != ra.HiveNaive {
		t.Fatalf("System() = %s", pq4.System())
	}
}

func TestPlanCacheEviction(t *testing.T) {
	opts := ra.DefaultOptions()
	opts.PlanCacheSize = 2
	store := ra.NewStore(opts)
	tmpl := `PREFIX e: <http://example.org/>
SELECT ?s (COUNT(?o%d) AS ?c) { ?s e:p%d ?o%d . } GROUP BY ?s`
	for i := 0; i < 4; i++ {
		q := fmt.Sprintf(tmpl, i, i, i)
		if _, err := store.Prepare(ra.Reference, q); err != nil {
			t.Fatalf("prepare %d: %v", i, err)
		}
	}
	stats := store.PlanCacheStats()
	if stats.Evictions == 0 {
		t.Fatalf("expected evictions with capacity 2: %+v", stats)
	}
	if stats.Entries > stats.Capacity {
		t.Fatalf("entries exceed capacity: %+v", stats)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	opts := ra.DefaultOptions()
	opts.PlanCacheSize = -1
	store := ra.NewStore(opts)
	if _, err := store.Prepare(ra.Reference, secondQuery); err == nil {
		// No graph loaded; Prepare still compiles fine.
		if stats := store.PlanCacheStats(); stats.Hits != 0 || stats.Misses != 0 || stats.Capacity != 0 {
			t.Fatalf("disabled cache recorded activity: %+v", stats)
		}
	} else {
		t.Fatal(err)
	}
}

func TestTypedErrors(t *testing.T) {
	store := buildShop()

	_, err := store.Prepare(ra.RAPIDAnalytics, "SELECT garbage {{{")
	if !errors.Is(err, ra.ErrParse) {
		t.Fatalf("syntax error = %v; want ErrParse", err)
	}
	_, _, err = store.Query(ra.System("spark"), exampleQuery)
	if !errors.Is(err, ra.ErrUnknownSystem) {
		t.Fatalf("bad system = %v; want ErrUnknownSystem", err)
	}
	_, err = ra.Compile("ASK { ?s ?p ?o }")
	if !errors.Is(err, ra.ErrParse) && !errors.Is(err, ra.ErrUnsupported) {
		t.Fatalf("non-analytical query = %v; want ErrParse or ErrUnsupported", err)
	}

	pq, err := store.Prepare(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = pq.Execute(cancelled)
	if !errors.Is(err, ra.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execute = %v; want ErrCanceled wrapping context.Canceled", err)
	}

	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond) // let the deadline pass
	_, _, err = pq.Execute(expired)
	if !errors.Is(err, ra.ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired execute = %v; want ErrTimeout wrapping DeadlineExceeded", err)
	}
}

// TestConcurrentParallelReduceStableStats runs MapReduce-backed queries from
// many goroutines at once — each execution's reduce phase itself runs on the
// engine's parallel worker pool — and asserts that every run reports exactly
// the baseline's deterministic volume statistics while still recording
// per-phase wall times.
func TestConcurrentParallelReduceStableStats(t *testing.T) {
	store := buildShop()
	systems := []ra.System{ra.RAPIDAnalytics, ra.HiveNaive}

	type volumes struct {
		cycles, mapOnly int
		simSeconds      float64
		shuffle, mat    int64
	}
	baseline := map[ra.System]volumes{}
	baseRows := map[ra.System]string{}
	for _, sys := range systems {
		res, stats, err := store.Query(sys, exampleQuery)
		if err != nil {
			t.Fatalf("baseline %s: %v", sys, err)
		}
		baseline[sys] = volumes{stats.MRCycles, stats.MapOnlyCycles,
			stats.SimulatedSeconds, stats.ShuffleBytes, stats.MaterializedBytes}
		baseRows[sys] = canonRows(res)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sys := systems[g%len(systems)]
			res, stats, err := store.Query(sys, exampleQuery)
			if err != nil {
				errs <- fmt.Errorf("goroutine %d %s: %w", g, sys, err)
				return
			}
			got := volumes{stats.MRCycles, stats.MapOnlyCycles,
				stats.SimulatedSeconds, stats.ShuffleBytes, stats.MaterializedBytes}
			if got != baseline[sys] {
				errs <- fmt.Errorf("goroutine %d %s: volume stats diverged under concurrency: %+v != %+v",
					g, sys, got, baseline[sys])
				return
			}
			if canonRows(res) != baseRows[sys] {
				errs <- fmt.Errorf("goroutine %d %s: rows diverged under concurrency", g, sys)
				return
			}
			if stats.MapWall <= 0 {
				errs <- fmt.Errorf("goroutine %d %s: MapWall not recorded: %+v", g, sys, stats)
				return
			}
			for _, j := range stats.Jobs {
				if !j.MapOnly && j.ReduceTasks > 0 && j.ReduceWall < 0 {
					errs <- fmt.Errorf("goroutine %d %s: negative ReduceWall in cycle %s", g, sys, j.Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPrepareInvalidatedByMutation: plan-cache keys fold in the store's
// data version, so a Prepare after any mutation can never serve a plan
// built against the pre-mutation layouts and statistics — the old entry
// simply stops being addressable.
func TestPrepareInvalidatedByMutation(t *testing.T) {
	store := buildShop()
	if _, err := store.Prepare(ra.RAPIDAnalytics, exampleQuery); err != nil {
		t.Fatal(err)
	}
	pq, err := store.Prepare(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !pq.CacheHit() {
		t.Fatal("repeated Prepare must hit before the mutation")
	}
	store.Add("http://example.org/pq", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
		ra.IRI("http://example.org/Phone"))
	pq2, err := store.Prepare(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if pq2.CacheHit() {
		t.Fatal("Prepare after Add must not reuse the stale plan")
	}
	pq3, err := store.Prepare(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !pq3.CacheHit() {
		t.Fatal("Prepare must hit again once a plan exists for the new version")
	}
}
