package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rapidanalytics/internal/plancache"
	"rapidanalytics/internal/share"
)

// latencyBuckets are the upper bounds (seconds) of the query latency
// histogram, chosen to resolve both cache-hit microqueries and multi-cycle
// analytical runs.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30}

// operatorBuckets are the upper bounds (seconds) of the per-operator wall
// histogram. Operators run well below whole-query latency, so the buckets
// start finer.
var operatorBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2}

// operatorStats is one {system, operator} histogram series plus its record
// counter.
type operatorStats struct {
	bucketCounts []int64 // raw per-bucket; rendered cumulatively
	count        int64
	sum          float64
	records      int64
}

// Metrics aggregates the serving layer's counters. All methods are safe for
// concurrent use. Rendered in Prometheus text exposition format by WriteTo.
type Metrics struct {
	inFlight atomic.Int64

	mu               sync.Mutex
	queries          map[string]map[int]int64             // system → HTTP status → count
	mrCycles         map[string]int64                     // system → total MapReduce cycles
	operators        map[string]map[string]*operatorStats // system → operator → stats
	admissionRejects int64
	bucketCounts     []int64 // cumulative at render time; raw per-bucket here
	latencyCount     int64
	latencySum       float64
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics {
	return &Metrics{
		queries:      map[string]map[int]int64{},
		mrCycles:     map[string]int64{},
		operators:    map[string]map[string]*operatorStats{},
		bucketCounts: make([]int64, len(latencyBuckets)+1),
	}
}

// QueryStarted marks a query admitted for execution. The return value
// decrements the in-flight gauge.
func (m *Metrics) QueryStarted() (done func()) {
	m.inFlight.Add(1)
	return func() { m.inFlight.Add(-1) }
}

// InFlight returns the number of queries currently executing.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// ObserveQuery records one finished request: the executing system, the HTTP
// status it mapped to, the MapReduce cycles it ran, and its latency.
func (m *Metrics) ObserveQuery(system string, status int, mrCycles int, d time.Duration) {
	secs := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && secs > latencyBuckets[i] {
		i++
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus, ok := m.queries[system]
	if !ok {
		byStatus = map[int]int64{}
		m.queries[system] = byStatus
	}
	byStatus[status]++
	m.mrCycles[system] += int64(mrCycles)
	m.bucketCounts[i]++
	m.latencyCount++
	m.latencySum += secs
}

// ObserveOperator records one operator execution from a query's span tree:
// its wall time lands in the {system, operator} histogram and its record
// count in the matching counter.
func (m *Metrics) ObserveOperator(system, operator string, d time.Duration, records int64) {
	secs := d.Seconds()
	i := 0
	for i < len(operatorBuckets) && secs > operatorBuckets[i] {
		i++
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	byOp, ok := m.operators[system]
	if !ok {
		byOp = map[string]*operatorStats{}
		m.operators[system] = byOp
	}
	st, ok := byOp[operator]
	if !ok {
		st = &operatorStats{bucketCounts: make([]int64, len(operatorBuckets)+1)}
		byOp[operator] = st
	}
	st.bucketCounts[i]++
	st.count++
	st.sum += secs
	st.records += records
}

// AdmissionRejected records one request turned away by the admission
// controller.
func (m *Metrics) AdmissionRejected() {
	m.mu.Lock()
	m.admissionRejects++
	m.mu.Unlock()
}

// TotalServed returns the number of observed queries across systems and
// statuses.
func (m *Metrics) TotalServed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latencyCount
}

// WriteTo renders the metrics (and the store's plan-cache, result-cache
// and shared-scan counters) in Prometheus text exposition format. Series
// are emitted in sorted label order so scrapes are deterministic.
func (m *Metrics) WriteTo(w io.Writer, plan, result plancache.Stats, scans share.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP rapidserver_in_flight_queries Queries currently executing.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_in_flight_queries gauge\n")
	fmt.Fprintf(w, "rapidserver_in_flight_queries %d\n", m.inFlight.Load())

	fmt.Fprintf(w, "# HELP rapidserver_queries_total Queries served, by system and HTTP status.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_queries_total counter\n")
	for _, sys := range sortedKeys(m.queries) {
		byStatus := m.queries[sys]
		statuses := make([]int, 0, len(byStatus))
		for st := range byStatus {
			statuses = append(statuses, st)
		}
		sort.Ints(statuses)
		for _, st := range statuses {
			fmt.Fprintf(w, "rapidserver_queries_total{system=%q,code=\"%d\"} %d\n", sys, st, byStatus[st])
		}
	}

	fmt.Fprintf(w, "# HELP rapidserver_rejected_total Requests rejected by admission control.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_rejected_total counter\n")
	fmt.Fprintf(w, "rapidserver_rejected_total %d\n", m.admissionRejects)

	fmt.Fprintf(w, "# HELP rapidserver_mr_cycles_total MapReduce cycles executed, by system.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_mr_cycles_total counter\n")
	for _, sys := range sortedKeys(m.mrCycles) {
		fmt.Fprintf(w, "rapidserver_mr_cycles_total{system=%q} %d\n", sys, m.mrCycles[sys])
	}

	fmt.Fprintf(w, "# HELP rapidserver_operator_seconds Operator wall time from query span trees, by system and operator.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_operator_seconds histogram\n")
	for _, sys := range sortedKeys(m.operators) {
		byOp := m.operators[sys]
		for _, op := range sortedKeys(byOp) {
			st := byOp[op]
			var cum int64
			for i, le := range operatorBuckets {
				cum += st.bucketCounts[i]
				fmt.Fprintf(w, "rapidserver_operator_seconds_bucket{system=%q,operator=%q,le=\"%g\"} %d\n", sys, op, le, cum)
			}
			cum += st.bucketCounts[len(operatorBuckets)]
			fmt.Fprintf(w, "rapidserver_operator_seconds_bucket{system=%q,operator=%q,le=\"+Inf\"} %d\n", sys, op, cum)
			fmt.Fprintf(w, "rapidserver_operator_seconds_sum{system=%q,operator=%q} %g\n", sys, op, st.sum)
			fmt.Fprintf(w, "rapidserver_operator_seconds_count{system=%q,operator=%q} %d\n", sys, op, st.count)
		}
	}

	fmt.Fprintf(w, "# HELP rapidserver_operator_records_total Records processed per operator, by system and operator.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_operator_records_total counter\n")
	for _, sys := range sortedKeys(m.operators) {
		byOp := m.operators[sys]
		for _, op := range sortedKeys(byOp) {
			fmt.Fprintf(w, "rapidserver_operator_records_total{system=%q,operator=%q} %d\n", sys, op, byOp[op].records)
		}
	}

	writeCacheSeries(w, "plan_cache", "Plan", plan)
	writeCacheSeries(w, "result_cache", "Result", result)
	fmt.Fprintf(w, "# HELP rapidserver_result_cache_bytes Result cache bytes held.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_result_cache_bytes gauge\n")
	fmt.Fprintf(w, "rapidserver_result_cache_bytes %d\n", result.Bytes)
	fmt.Fprintf(w, "# HELP rapidserver_result_cache_budget_bytes Result cache byte budget.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_result_cache_budget_bytes gauge\n")
	fmt.Fprintf(w, "rapidserver_result_cache_budget_bytes %d\n", result.BudgetBytes)

	fmt.Fprintf(w, "# HELP rapidserver_shared_scan_cycles_total Shared-scan passes executed, by whether the pass served multiple queries.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_shared_scan_cycles_total counter\n")
	fmt.Fprintf(w, "rapidserver_shared_scan_cycles_total{shared=\"true\"} %d\n", scans.SharedCycles)
	fmt.Fprintf(w, "rapidserver_shared_scan_cycles_total{shared=\"false\"} %d\n", scans.Cycles-scans.SharedCycles)
	fmt.Fprintf(w, "# HELP rapidserver_shared_scan_consumers_total Scan requests admitted to shared-scan cycles.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_shared_scan_consumers_total counter\n")
	fmt.Fprintf(w, "rapidserver_shared_scan_consumers_total %d\n", scans.Consumers)
	fmt.Fprintf(w, "# HELP rapidserver_shared_scan_records_total Records moved by the shared-scan scheduler, scanned from the DFS vs served to consumers.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_shared_scan_records_total counter\n")
	fmt.Fprintf(w, "rapidserver_shared_scan_records_total{direction=\"scanned\"} %d\n", scans.RecordsScanned)
	fmt.Fprintf(w, "rapidserver_shared_scan_records_total{direction=\"served\"} %d\n", scans.RecordsServed)
	fmt.Fprintf(w, "# HELP rapidserver_shared_scan_errors_total Shared-scan passes that failed.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_shared_scan_errors_total counter\n")
	fmt.Fprintf(w, "rapidserver_shared_scan_errors_total %d\n", scans.Errors)

	fmt.Fprintf(w, "# HELP rapidserver_query_seconds Query latency histogram.\n")
	fmt.Fprintf(w, "# TYPE rapidserver_query_seconds histogram\n")
	var cum int64
	for i, le := range latencyBuckets {
		cum += m.bucketCounts[i]
		fmt.Fprintf(w, "rapidserver_query_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.bucketCounts[len(latencyBuckets)]
	fmt.Fprintf(w, "rapidserver_query_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "rapidserver_query_seconds_sum %g\n", m.latencySum)
	fmt.Fprintf(w, "rapidserver_query_seconds_count %d\n", m.latencyCount)
}

// writeCacheSeries emits one cache's hit/miss/eviction counters and entry
// gauge under rapidserver_<name>_*.
func writeCacheSeries(w io.Writer, name, human string, st plancache.Stats) {
	fmt.Fprintf(w, "# HELP rapidserver_%s_hits_total %s cache probe hits.\n", name, human)
	fmt.Fprintf(w, "# TYPE rapidserver_%s_hits_total counter\n", name)
	fmt.Fprintf(w, "rapidserver_%s_hits_total %d\n", name, st.Hits)
	fmt.Fprintf(w, "# HELP rapidserver_%s_misses_total %s cache probe misses.\n", name, human)
	fmt.Fprintf(w, "# TYPE rapidserver_%s_misses_total counter\n", name)
	fmt.Fprintf(w, "rapidserver_%s_misses_total %d\n", name, st.Misses)
	fmt.Fprintf(w, "# HELP rapidserver_%s_evictions_total %s cache entries evicted by the LRU policy.\n", name, human)
	fmt.Fprintf(w, "# TYPE rapidserver_%s_evictions_total counter\n", name)
	fmt.Fprintf(w, "rapidserver_%s_evictions_total %d\n", name, st.Evictions)
	fmt.Fprintf(w, "# HELP rapidserver_%s_entries %s cache entries currently held.\n", name, human)
	fmt.Fprintf(w, "# TYPE rapidserver_%s_entries gauge\n", name)
	fmt.Fprintf(w, "rapidserver_%s_entries %d\n", name, st.Entries)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
