// Package server is the query-serving subsystem: a concurrent HTTP SPARQL
// endpoint over a rapidanalytics.Store. It exposes
//
//	GET/POST /sparql         — execute a query (params: query, system, format)
//	GET      /healthz        — liveness and store size
//	GET      /metrics        — Prometheus text metrics
//	GET      /debug/queries  — slow-query log (JSON, newest first)
//	GET      /debug/pprof/*  — runtime profiling endpoints
//
// Every request runs under a context deadline that is threaded through the
// store into MapReduce job execution, so a timeout or client disconnect
// aborts the run between records/cycles instead of burning the cluster. A
// bounded-concurrency admission controller (semaphore with a queue timeout)
// sheds load with 503 once MaxConcurrent queries are in flight and the
// queue wait exceeds QueueTimeout. Prepared plans are served from the
// store's LRU plan cache, so repeated query templates skip planning.
//
// Each query executes with span tracing enabled: the resulting span tree
// feeds the per-operator Prometheus histograms
// (rapidserver_operator_seconds, rapidserver_operator_records_total) and is
// attached to slow-query log entries, so a slow request can be explained
// operator by operator after the fact.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"rapidanalytics/internal/obs"

	ra "rapidanalytics"
)

// Config tunes the serving layer. The zero value gets sensible defaults.
type Config struct {
	// DefaultSystem executes queries that name no system parameter
	// (default: RAPIDAnalytics).
	DefaultSystem ra.System
	// MaxConcurrent caps in-flight query executions (default: 2×GOMAXPROCS,
	// at least 8).
	MaxConcurrent int
	// QueueTimeout is how long an arriving request may wait for an
	// execution slot before being shed with 503 (default: 2s).
	QueueTimeout time.Duration
	// QueryTimeout is the per-query execution deadline; expiry returns 504
	// (default: 60s).
	QueryTimeout time.Duration
	// MaxQueryBytes caps the request body (default: 1MB).
	MaxQueryBytes int64
	// SlowQueryThreshold is the request wall time at or above which a query
	// is recorded in the slow-query log served at /debug/queries
	// (default: 250ms).
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize is the slow-query ring buffer's capacity; when full,
	// the oldest entry is evicted (default: 128).
	SlowQueryLogSize int
}

func (c Config) withDefaults() Config {
	if c.DefaultSystem == "" {
		c.DefaultSystem = ra.RAPIDAnalytics
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = max(8, 2*runtime.GOMAXPROCS(0))
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 60 * time.Second
	}
	if c.MaxQueryBytes <= 0 {
		c.MaxQueryBytes = 1 << 20
	}
	if c.SlowQueryThreshold <= 0 {
		c.SlowQueryThreshold = 250 * time.Millisecond
	}
	if c.SlowQueryLogSize <= 0 {
		c.SlowQueryLogSize = 128
	}
	return c
}

// Server serves SPARQL queries over HTTP. Create with New; it implements
// http.Handler.
type Server struct {
	store   *ra.Store
	cfg     Config
	sem     chan struct{}
	metrics *Metrics
	slow    *slowLog
	mux     *http.ServeMux

	// beforeExecute, when set (tests only), runs after admission and
	// before query execution — a barrier point proving true concurrency.
	beforeExecute func()
}

// New returns a server over the store.
func New(store *ra.Store, cfg Config) *Server {
	s := &Server{
		store:   store,
		cfg:     cfg.withDefaults(),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
	}
	s.sem = make(chan struct{}, s.cfg.MaxConcurrent)
	s.slow = newSlowLog(s.cfg.SlowQueryLogSize)
	s.mux.HandleFunc("/sparql", s.handleSparql)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics returns the server's counters (shared, live).
func (s *Server) Metrics() *Metrics { return s.metrics }

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

// statusFor maps a Store error to an HTTP status via the typed sentinels.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ra.ErrParse),
		errors.Is(err, ra.ErrUnsupported),
		errors.Is(err, ra.ErrUnknownSystem):
		return http.StatusBadRequest
	case errors.Is(err, ra.ErrTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, ra.ErrCanceled):
		// Client is gone; the status is recorded in metrics only.
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// statusClientClosedRequest is nginx's conventional code for a request whose
// client disconnected before the response.
const statusClientClosedRequest = 499

// sparqlRequest is one parsed /sparql request.
type sparqlRequest struct {
	query  string
	system ra.System
	format string // "json" or "tsv"
}

func (s *Server) parseRequest(r *http.Request) (sparqlRequest, error) {
	req := sparqlRequest{system: s.cfg.DefaultSystem, format: "json"}
	switch r.Method {
	case http.MethodGet:
		req.query = r.URL.Query().Get("query")
	case http.MethodPost:
		r.Body = http.MaxBytesReader(nil, r.Body, s.cfg.MaxQueryBytes)
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				return req, fmt.Errorf("reading body: %w", err)
			}
			req.query = string(body)
		} else {
			if err := r.ParseForm(); err != nil {
				return req, fmt.Errorf("parsing form: %w", err)
			}
			req.query = r.PostForm.Get("query")
			if req.query == "" {
				req.query = r.URL.Query().Get("query")
			}
		}
	default:
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	if v := r.URL.Query().Get("system"); v != "" {
		req.system = ra.System(v)
	} else if v := r.PostForm.Get("system"); v != "" {
		req.system = ra.System(v)
	}
	if v := r.URL.Query().Get("format"); v != "" {
		req.format = v
	} else if v := r.PostForm.Get("format"); v != "" {
		req.format = v
	} else if strings.Contains(r.Header.Get("Accept"), "text/tab-separated-values") {
		req.format = "tsv"
	}
	if req.format != "json" && req.format != "tsv" {
		return req, fmt.Errorf("unknown format %q (want json or tsv)", req.format)
	}
	if strings.TrimSpace(req.query) == "" {
		return req, fmt.Errorf("missing query parameter")
	}
	return req, nil
}

func (s *Server) handleSparql(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	req, err := s.parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}

	// Admission control: wait for an execution slot, but never longer than
	// the queue timeout (or the client's patience).
	queueTimer := time.NewTimer(s.cfg.QueueTimeout)
	defer queueTimer.Stop()
	select {
	case s.sem <- struct{}{}:
	case <-queueTimer.C:
		s.metrics.AdmissionRejected()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server saturated: %d queries in flight", s.cfg.MaxConcurrent)
		return
	case <-r.Context().Done():
		s.metrics.AdmissionRejected()
		writeError(w, statusClientClosedRequest, "client closed request while queued")
		return
	}
	defer func() { <-s.sem }()
	done := s.metrics.QueryStarted()
	defer done()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	// Every request traces: the span tree feeds the operator metrics and
	// explains slow-query log entries.
	ctx = ra.WithTracing(ctx)

	start := time.Now()
	pq, err := s.store.Prepare(req.system, req.query)
	if err != nil {
		status := statusFor(err)
		s.metrics.ObserveQuery(string(req.system), status, 0, time.Since(start))
		writeError(w, status, "%v", err)
		return
	}
	if s.beforeExecute != nil {
		s.beforeExecute()
	}
	res, stats, err := pq.Execute(ctx)
	elapsed := time.Since(start)
	if err != nil {
		status := statusFor(err)
		s.metrics.ObserveQuery(string(req.system), status, 0, elapsed)
		s.recordSlow(req, status, elapsed, nil)
		if status != statusClientClosedRequest {
			writeError(w, status, "%v", err)
		}
		return
	}
	s.metrics.ObserveQuery(string(req.system), http.StatusOK, stats.MRCycles, elapsed)
	s.observeOperators(string(req.system), stats.Span)
	s.recordSlow(req, http.StatusOK, elapsed, stats)
	writeResult(w, req.format, res, stats, pq.CacheHit(), elapsed,
		s.store.PlanCacheStats(), s.store.ResultCacheStats())
}

// observeOperators folds a query's operator spans into the per-operator
// histogram and record counters.
func (s *Server) observeOperators(system string, span *ra.TraceSpan) {
	if span == nil {
		return
	}
	span.Walk(func(n *ra.TraceSpan) {
		if n.Kind == obs.KindOperator {
			s.metrics.ObserveOperator(system, n.Name, time.Duration(n.WallNs), n.Records)
		}
	})
}

// recordSlow appends the request to the slow-query log when its wall time
// met the threshold. stats is nil when the query failed.
func (s *Server) recordSlow(req sparqlRequest, status int, elapsed time.Duration, stats *ra.Stats) {
	if elapsed < s.cfg.SlowQueryThreshold {
		return
	}
	entry := SlowQuery{
		Time:       time.Now(),
		System:     string(req.system),
		Query:      req.query,
		Status:     status,
		WallMillis: millis(elapsed),
	}
	if stats != nil {
		entry.MRCycles = stats.MRCycles
		entry.CacheHit = stats.ResultCacheHit
		entry.Trace = stats.Span
	}
	s.slow.Record(entry)
}

// handleDebugQueries serves the slow-query log as JSON, newest entry first.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"thresholdMillis": millis(s.cfg.SlowQueryThreshold),
		"capacity":        s.cfg.SlowQueryLogSize,
		"queries":         s.slow.Entries(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":  "ok",
		"triples": s.store.NumTriples(),
		"served":  s.metrics.TotalServed(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, s.store.PlanCacheStats(), s.store.ResultCacheStats(), s.store.SharedScanStats())
}
