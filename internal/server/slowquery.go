package server

import (
	"sync"
	"time"

	ra "rapidanalytics"
)

// SlowQuery is one entry of the slow-query log: a request whose total wall
// time met or exceeded Config.SlowQueryThreshold.
type SlowQuery struct {
	// Time is when the request finished.
	Time time.Time `json:"time"`
	// System is the engine that executed the query.
	System string `json:"system"`
	// Query is the SPARQL text as received.
	Query string `json:"query"`
	// Status is the HTTP status the request mapped to.
	Status int `json:"status"`
	// WallMillis is the end-to-end request wall time.
	WallMillis float64 `json:"wallMillis"`
	// MRCycles is the number of MapReduce cycles the query ran (0 on
	// failure before execution).
	MRCycles int `json:"mrCycles"`
	// CacheHit reports the response was served from the result cache.
	CacheHit bool `json:"cacheHit"`
	// Trace is the query's hierarchical span tree, when one was captured.
	Trace *ra.TraceSpan `json:"trace,omitempty"`
}

// slowLog is a fixed-capacity ring buffer of SlowQuery entries. When full,
// recording a new entry evicts the oldest. Safe for concurrent use.
type slowLog struct {
	mu   sync.Mutex
	buf  []SlowQuery
	next int // index the next entry is written to
	n    int // entries recorded, capped at len(buf)
}

func newSlowLog(capacity int) *slowLog {
	return &slowLog{buf: make([]SlowQuery, capacity)}
}

// Record appends an entry, evicting the oldest when the ring is full.
func (l *slowLog) Record(q SlowQuery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = q
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

// Entries returns the recorded entries, newest first.
func (l *slowLog) Entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}
