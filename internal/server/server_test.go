package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	ra "rapidanalytics"
	"rapidanalytics/internal/lint/leaktest"
)

// testQuery is a two-grouping analytical query over the tiny shop graph;
// RAPIDAnalytics answers it in 4 MapReduce cycles.
const testQuery = `PREFIX e: <http://example.org/>
SELECT ?feature ?cntF ?cntT {
  { SELECT ?feature (COUNT(?pr2) AS ?cntF)
    { ?p2 a e:Phone ; e:label ?l2 ; e:feature ?feature .
      ?o2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?feature }
  { SELECT (COUNT(?pr) AS ?cntT)
    { ?p1 a e:Phone ; e:label ?l1 .
      ?o1 e:product ?p1 ; e:price ?pr . } }
} ORDER BY ?feature`

// wantRows are testQuery's rows on the shop graph, in ORDER BY order.
var wantRows = [][]string{
	{"http://example.org/5G", "3", "4"},
	{"http://example.org/OLED", "2", "4"},
}

func shopStore() *ra.Store { return shopStoreWith(ra.DefaultOptions()) }

func shopStoreWith(opts ra.Options) *ra.Store {
	store := ra.NewStore(opts)
	ns := "http://example.org/"
	typ := ns + "Phone"
	add := func(s, p string, o ra.Term) { store.Add(ns+s, ns+p, o) }
	for _, p := range []struct {
		id       string
		features []string
	}{
		{"px", []string{"5G", "OLED"}},
		{"py", []string{"5G"}},
		{"pz", nil},
	} {
		store.Add(ns+p.id, "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", ra.IRI(typ))
		add(p.id, "label", ra.Literal(p.id))
		for _, f := range p.features {
			add(p.id, "feature", ra.IRI(ns+f))
		}
	}
	for _, o := range [][3]string{
		{"o1", "px", "900"}, {"o2", "px", "850"}, {"o3", "py", "500"}, {"o4", "pz", "200"},
	} {
		add(o[0], "product", ra.IRI(ns+o[1]))
		add(o[0], "price", ra.Literal(o[2]))
	}
	return store
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(shopStore(), cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, string(body)
}

func decodeResult(t *testing.T, body string) resultBody {
	t.Helper()
	var rb resultBody
	if err := json.Unmarshal([]byte(body), &rb); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	return rb
}

func checkRows(t *testing.T, rb resultBody) {
	t.Helper()
	if len(rb.Rows) != len(wantRows) {
		t.Fatalf("got %d rows %v; want %d", len(rb.Rows), rb.Rows, len(wantRows))
	}
	for i := range wantRows {
		if strings.Join(rb.Rows[i], "|") != strings.Join(wantRows[i], "|") {
			t.Fatalf("row %d = %v; want %v", i, rb.Rows[i], wantRows[i])
		}
	}
}

func TestHappyPathGETJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/sparql?query="+url.QueryEscape(testQuery))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s; want 200", status, body)
	}
	rb := decodeResult(t, body)
	if len(rb.Columns) != 3 {
		t.Fatalf("columns = %v; want 3", rb.Columns)
	}
	checkRows(t, rb)
	if rb.Stats.System != string(ra.RAPIDAnalytics) || rb.Stats.MRCycles == 0 {
		t.Fatalf("stats = %+v; want rapidanalytics with >0 cycles", rb.Stats)
	}
}

func TestHappyPathPOSTFormAndRawBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"query": {testQuery}, "system": {string(ra.Reference)}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST form: status %d, body %s", resp.StatusCode, body)
	}
	rb := decodeResult(t, string(body))
	checkRows(t, rb)
	if rb.Stats.System != string(ra.Reference) {
		t.Fatalf("system = %s; want reference", rb.Stats.System)
	}

	resp, err = http.Post(ts.URL+"/sparql", "application/sparql-query", strings.NewReader(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST raw: status %d, body %s", resp.StatusCode, body)
	}
	checkRows(t, decodeResult(t, string(body)))
}

func TestTSVFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/sparql?format=tsv&query="+url.QueryEscape(testQuery))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) != 1+len(wantRows) {
		t.Fatalf("tsv lines = %d (%q); want %d", len(lines), body, 1+len(wantRows))
	}
	if got := strings.Split(lines[1], "\t"); strings.Join(got, "|") != strings.Join(wantRows[0], "|") {
		t.Fatalf("tsv row 1 = %v; want %v", got, wantRows[0])
	}
}

func TestParseErrorReturns400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/sparql?query="+url.QueryEscape("SELECT WHERE garbage {{{"))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s; want 400", status, body)
	}
	if !strings.Contains(body, "parse error") {
		t.Fatalf("body %q does not name the parse error", body)
	}
}

func TestUnknownSystemReturns400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/sparql?system=spark&query="+url.QueryEscape(testQuery))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s; want 400", status, body)
	}
	if !strings.Contains(body, "unknown system") {
		t.Fatalf("body %q does not name the unknown system", body)
	}
}

func TestMissingQueryReturns400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, _ := get(t, ts.URL+"/sparql"); status != http.StatusBadRequest {
		t.Fatalf("status = %d; want 400", status)
	}
}

func TestQueryTimeoutReturns504(t *testing.T) {
	_, ts := newTestServer(t, Config{QueryTimeout: time.Nanosecond})
	status, body := get(t, ts.URL+"/sparql?query="+url.QueryEscape(testQuery))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s; want 504", status, body)
	}
	if !strings.Contains(body, "timed out") {
		t.Fatalf("body %q does not name the timeout", body)
	}
}

func TestAdmissionOverflowReturns503(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueTimeout: 20 * time.Millisecond})
	s.sem <- struct{}{} // occupy the only execution slot
	defer func() { <-s.sem }()
	status, body := get(t, ts.URL+"/sparql?query="+url.QueryEscape(testQuery))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s; want 503", status, body)
	}
	if s.metrics.TotalServed() != 0 {
		t.Fatal("rejected request must not count as served")
	}
	metricsStatus, metricsBody := get(t, ts.URL+"/metrics")
	if metricsStatus != http.StatusOK || !strings.Contains(metricsBody, "rapidserver_rejected_total 1") {
		t.Fatalf("metrics missing admission reject: %s", metricsBody)
	}
}

// TestEightParallelInFlightQueries proves true concurrency: 8 requests all
// reach the pre-execution barrier simultaneously (so 8 are in flight at
// once), then every one completes with the correct result. The requests are
// driven through ServeHTTP in-process — on a single-CPU machine, real TCP
// clients can queue behind each other in the transport, which would
// deadlock the barrier without testing anything about the server.
func TestEightParallelInFlightQueries(t *testing.T) {
	leaktest.Check(t)
	const n = 8
	s := New(shopStore(), Config{MaxConcurrent: n, QueryTimeout: time.Minute})
	var barrier sync.WaitGroup
	barrier.Add(n)
	s.beforeExecute = func() {
		barrier.Done()
		barrier.Wait() // release only when all n queries are in flight
	}

	systems := []ra.System{ra.RAPIDAnalytics, ra.RAPIDPlus, ra.HiveNaive, ra.HiveMQO}
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys := systems[i%len(systems)]
			req := httptest.NewRequest(http.MethodGet,
				"/sparql?system="+url.QueryEscape(string(sys))+"&query="+url.QueryEscape(testQuery), nil)
			recs[i] = httptest.NewRecorder()
			s.ServeHTTP(recs[i], req)
		}(i)
	}
	wg.Wait()
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, rec.Code, rec.Body.String())
		}
		checkRows(t, decodeResult(t, rec.Body.String()))
	}
	if served := s.metrics.TotalServed(); served != n {
		t.Fatalf("served = %d; want %d", served, n)
	}
}

// TestCancelledRequestAborts verifies a client disconnect cancels the
// query's context before any MapReduce cycle runs, and is recorded as a
// client-closed request rather than a success.
func TestCancelledRequestAborts(t *testing.T) {
	leaktest.Check(t)
	s := New(shopStore(), Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.beforeExecute = cancel // client vanishes just as execution starts

	req := httptest.NewRequest(http.MethodGet,
		"/sparql?query="+url.QueryEscape(testQuery), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)

	var metrics strings.Builder
	s.metrics.WriteTo(&metrics, s.store.PlanCacheStats(), s.store.ResultCacheStats(), s.store.SharedScanStats())
	body := metrics.String()
	if !strings.Contains(body, fmt.Sprintf("code=\"%d\"", statusClientClosedRequest)) {
		t.Fatalf("cancelled query not recorded as client-closed:\n%s", body)
	}
	if !strings.Contains(body, `rapidserver_mr_cycles_total{system="rapidanalytics"} 0`) {
		t.Fatalf("cancelled query still ran MapReduce cycles:\n%s", body)
	}
	if strings.Contains(body, `code="200"`) {
		t.Fatalf("cancelled query recorded as success:\n%s", body)
	}
}

func TestPlanCacheHitVisibleInMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	u := ts.URL + "/sparql?query=" + url.QueryEscape(testQuery)
	status, body := get(t, u)
	if status != http.StatusOK {
		t.Fatalf("first run: %d %s", status, body)
	}
	if rb := decodeResult(t, body); rb.Stats.PlanCacheHit {
		t.Fatal("first execution must be a plan-cache miss")
	}
	status, body = get(t, u)
	if status != http.StatusOK {
		t.Fatalf("second run: %d %s", status, body)
	}
	if rb := decodeResult(t, body); !rb.Stats.PlanCacheHit {
		t.Fatal("repeated query must hit the plan cache")
	}
	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "rapidserver_plan_cache_hits_total 1") {
		t.Fatalf("metrics missing plan cache hit:\n%s", metrics)
	}
	if !strings.Contains(metrics, `rapidserver_queries_total{system="rapidanalytics",code="200"} 2`) {
		t.Fatalf("metrics missing served counter:\n%s", metrics)
	}
}

// TestResultCacheInvalidatedOverHTTP is the end-to-end half of the
// mutation-invalidation regression (the store-level half lives in the root
// package): a result served from the versioned cache through the HTTP path
// must stop being addressable once Store.Add bumps the data version, and
// the fresh rows must reflect the mutation.
func TestResultCacheInvalidatedOverHTTP(t *testing.T) {
	opts := ra.DefaultOptions()
	opts.ResultCacheBytes = 1 << 20
	store := shopStoreWith(opts)
	s := New(store, Config{SlowQueryThreshold: time.Nanosecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	u := ts.URL + "/sparql?query=" + url.QueryEscape(testQuery)
	status, body := get(t, u)
	if status != http.StatusOK {
		t.Fatalf("first run: %d %s", status, body)
	}
	if rb := decodeResult(t, body); rb.Stats.ResultCacheHit {
		t.Fatal("first execution must miss the result cache")
	}
	status, body = get(t, u)
	if status != http.StatusOK {
		t.Fatalf("second run: %d %s", status, body)
	}
	rb := decodeResult(t, body)
	if !rb.Stats.ResultCacheHit || rb.Stats.MRCycles != 0 {
		t.Fatalf("second run not served from cache: %+v", rb.Stats)
	}
	checkRows(t, rb)
	if rb.Stats.ResultCache.Hits < 1 || rb.Stats.ResultCache.Entries < 1 || rb.Stats.ResultCache.Bytes <= 0 {
		t.Fatalf("stats block missing result-cache counters: %+v", rb.Stats.ResultCache)
	}

	// Mutate: a new offer on px changes every grouping's count and bumps
	// the data version, stranding the cached entry under the old key.
	ns := "http://example.org/"
	store.Add(ns+"o9", ns+"product", ra.IRI(ns+"px"))
	store.Add(ns+"o9", ns+"price", ra.Literal("777"))

	status, body = get(t, u)
	if status != http.StatusOK {
		t.Fatalf("post-mutation run: %d %s", status, body)
	}
	rb = decodeResult(t, body)
	if rb.Stats.ResultCacheHit {
		t.Fatal("stale cached result served after mutation")
	}
	want := [][]string{
		{"http://example.org/5G", "4", "5"},
		{"http://example.org/OLED", "3", "5"},
	}
	if len(rb.Rows) != len(want) {
		t.Fatalf("post-mutation rows = %v; want %v", rb.Rows, want)
	}
	for i := range want {
		if strings.Join(rb.Rows[i], "|") != strings.Join(want[i], "|") {
			t.Fatalf("post-mutation row %d = %v; want %v", i, rb.Rows[i], want[i])
		}
	}

	// The hit shows up on /metrics and as cacheHit in the slow-query log.
	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "rapidserver_result_cache_hits_total 1") {
		t.Fatalf("metrics missing result cache hit:\n%s", metrics)
	}
	var dbg struct {
		Queries []SlowQuery `json:"queries"`
	}
	_, body = get(t, ts.URL+"/debug/queries")
	if err := json.Unmarshal([]byte(body), &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Queries) != 3 { // newest first: miss, hit, miss
		t.Fatalf("slow-query entries = %d; want 3", len(dbg.Queries))
	}
	if dbg.Queries[0].CacheHit || !dbg.Queries[1].CacheHit || dbg.Queries[2].CacheHit {
		t.Fatalf("cacheHit flags = %v %v %v; want false true false",
			dbg.Queries[0].CacheHit, dbg.Queries[1].CacheHit, dbg.Queries[2].CacheHit)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status = %d", status)
	}
	var h map[string]any
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if h["status"] != "ok" || h["triples"].(float64) <= 0 {
		t.Fatalf("healthz = %v", h)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sparql", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status = %d; want 405", resp.StatusCode)
	}
}

// A successful MapReduce-backed query must surface per-phase engine wall
// times in its JSON stats and per-operator histograms on /metrics, fed from
// the query's span tree.
func TestOperatorMetricsExported(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/sparql?query="+url.QueryEscape(testQuery))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	rb := decodeResult(t, body)
	if rb.Stats.MapWallMillis <= 0 {
		t.Errorf("mapWallMillis = %v; want > 0 for a MapReduce-backed query", rb.Stats.MapWallMillis)
	}
	if rb.Stats.ReduceWallMillis <= 0 {
		t.Errorf("reduceWallMillis = %v; want > 0", rb.Stats.ReduceWallMillis)
	}
	if rb.Stats.MaterializedBytes <= 0 {
		t.Errorf("materializedBytes = %v; want > 0", rb.Stats.MaterializedBytes)
	}
	_, metrics := get(t, ts.URL+"/metrics")
	// RAPIDAnalytics evaluates testQuery through the NTGA operators; each
	// must appear as a {system, operator} histogram plus a record counter.
	for _, op := range []string{"TG_OptGrpFilter", "TG_AlphaJoin", "TG_AgJ.map", "TG_AgJ.reduce", "final-join"} {
		count := fmt.Sprintf("rapidserver_operator_seconds_count{system=%q,operator=%q}", "rapidanalytics", op)
		if !strings.Contains(metrics, count) {
			t.Errorf("metrics missing %s:\n%s", count, metrics)
		}
		records := fmt.Sprintf("rapidserver_operator_records_total{system=%q,operator=%q}", "rapidanalytics", op)
		if !strings.Contains(metrics, records) {
			t.Errorf("metrics missing %s:\n%s", records, metrics)
		}
	}
	if !strings.Contains(metrics, `rapidserver_operator_seconds_bucket{system="rapidanalytics",operator="TG_AlphaJoin",le="+Inf"} 1`) {
		t.Errorf("metrics missing TG_AlphaJoin +Inf bucket:\n%s", metrics)
	}
}

// A query at or above SlowQueryThreshold must land in /debug/queries with
// its span tree attached; fast queries must not.
func TestSlowQueryLogCapture(t *testing.T) {
	// Threshold 1ns: every query is slow.
	_, ts := newTestServer(t, Config{SlowQueryThreshold: time.Nanosecond})
	status, body := get(t, ts.URL+"/sparql?query="+url.QueryEscape(testQuery))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	status, body = get(t, ts.URL+"/debug/queries")
	if status != http.StatusOK {
		t.Fatalf("/debug/queries status = %d", status)
	}
	var dbg struct {
		ThresholdMillis float64     `json:"thresholdMillis"`
		Capacity        int         `json:"capacity"`
		Queries         []SlowQuery `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &dbg); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if dbg.Capacity != 128 {
		t.Errorf("capacity = %d; want default 128", dbg.Capacity)
	}
	if len(dbg.Queries) != 1 {
		t.Fatalf("slow-query entries = %d; want 1", len(dbg.Queries))
	}
	q := dbg.Queries[0]
	if q.System != string(ra.RAPIDAnalytics) || q.Status != http.StatusOK || q.Query != testQuery {
		t.Errorf("entry = %+v", q)
	}
	if q.MRCycles == 0 || q.WallMillis <= 0 {
		t.Errorf("entry missing execution stats: %+v", q)
	}
	if q.Trace == nil {
		t.Fatal("slow query entry has no span tree")
	}
	if q.Trace.Find("operator", "TG_AlphaJoin") == nil {
		t.Errorf("trace missing TG_AlphaJoin operator:\n%s", q.Trace.Tree())
	}

	// Default threshold (250ms): the tiny query is fast and stays out.
	_, ts2 := newTestServer(t, Config{})
	if status, _ := get(t, ts2.URL+"/sparql?query="+url.QueryEscape(testQuery)); status != http.StatusOK {
		t.Fatal("query failed")
	}
	_, body = get(t, ts2.URL+"/debug/queries")
	if err := json.Unmarshal([]byte(body), &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Queries) != 0 {
		t.Errorf("fast query recorded as slow: %+v", dbg.Queries)
	}
}

// TestSlowQueryLogEvictionOrder fills the ring past capacity and checks the
// oldest entries are evicted and the rest come back newest first.
func TestSlowQueryLogEvictionOrder(t *testing.T) {
	l := newSlowLog(3)
	for i := 0; i < 5; i++ {
		l.Record(SlowQuery{Query: fmt.Sprintf("q%d", i)})
	}
	got := l.Entries()
	want := []string{"q4", "q3", "q2"} // q0, q1 evicted; newest first
	if len(got) != len(want) {
		t.Fatalf("entries = %d; want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Query != w {
			t.Errorf("entry %d = %s; want %s", i, got[i].Query, w)
		}
	}
}

// TestPprofEndpointsWired checks the profiling handlers respond on the
// server's own mux.
func TestPprofEndpointsWired(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		if status, body := get(t, ts.URL+path); status != http.StatusOK {
			t.Errorf("%s status = %d, body %.80s", path, status, body)
		}
	}
}
