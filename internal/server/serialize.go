package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"rapidanalytics/internal/plancache"

	ra "rapidanalytics"
)

// resultBody is the JSON success envelope.
type resultBody struct {
	Columns []string    `json:"columns"`
	Rows    [][]string  `json:"rows"`
	Stats   resultStats `json:"stats"`
}

// resultStats summarises the execution for the client.
type resultStats struct {
	System           string  `json:"system"`
	MRCycles         int     `json:"mrCycles"`
	MapOnlyCycles    int     `json:"mapOnlyCycles"`
	SimulatedSeconds float64 `json:"simulatedSeconds"`
	ShuffleBytes     int64   `json:"shuffleBytes"`
	// MaterializedBytes is the volume written to the simulated DFS across
	// all cycles.
	MaterializedBytes int64 `json:"materializedBytes"`
	PlanCacheHit      bool  `json:"planCacheHit"`
	// ResultCacheHit reports the response was served from the versioned
	// result cache (no MapReduce cycles ran).
	ResultCacheHit bool    `json:"resultCacheHit"`
	WallMillis     float64 `json:"wallMillis"`
	// Per-phase engine wall times for this query (map / shuffle-sort /
	// reduce), measured in-process.
	MapWallMillis         float64 `json:"mapWallMillis"`
	ShuffleSortWallMillis float64 `json:"shuffleSortWallMillis"`
	ReduceWallMillis      float64 `json:"reduceWallMillis"`
	// PlanCache and ResultCache are the store-wide cache counters at
	// response time.
	PlanCache   plancache.Stats `json:"planCache"`
	ResultCache plancache.Stats `json:"resultCache"`
}

func millis(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// writeResult serialises a query result as JSON or TSV.
func writeResult(w http.ResponseWriter, format string, res *ra.Result, stats *ra.Stats, cacheHit bool, elapsed time.Duration, plan, result plancache.Stats) {
	if format == "tsv" {
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
		var b strings.Builder
		b.WriteString(strings.Join(res.Columns, "\t"))
		b.WriteByte('\n')
		for _, row := range res.Rows() {
			b.WriteString(strings.Join(row, "\t"))
			b.WriteByte('\n')
		}
		_, _ = w.Write([]byte(b.String()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rows := res.Rows()
	if rows == nil {
		rows = [][]string{}
	}
	_ = json.NewEncoder(w).Encode(resultBody{
		Columns: res.Columns,
		Rows:    rows,
		Stats: resultStats{
			System:                string(stats.System),
			MRCycles:              stats.MRCycles,
			MapOnlyCycles:         stats.MapOnlyCycles,
			SimulatedSeconds:      stats.SimulatedSeconds,
			ShuffleBytes:          stats.ShuffleBytes,
			MaterializedBytes:     stats.MaterializedBytes,
			PlanCacheHit:          cacheHit,
			ResultCacheHit:        stats.ResultCacheHit,
			WallMillis:            millis(elapsed),
			MapWallMillis:         millis(stats.MapWall),
			ShuffleSortWallMillis: millis(stats.ShuffleSortWall),
			ReduceWallMillis:      millis(stats.ReduceWall),
			PlanCache:             plan,
			ResultCache:           result,
		},
	})
}
