// Package dfs implements the simulated HDFS the MapReduce engine reads job
// inputs from and materialises job outputs to: named files of byte records
// with exact byte accounting and per-file compression ratios (modelling
// columnar formats such as ORC, whose aggressive compression reduces stored
// bytes — and therefore map-task counts — while adding decompression work).
//
// Storage is pluggable through the Backend interface. Two backends exist:
// the default in-memory backend (every record held as a []byte, the
// original behavior) and a disk backend over internal/blockstore (sharded
// append-only segment files). Both present identical semantics:
//
//   - Open returns a snapshot: the records committed at Open time. A
//     snapshot stays readable after the name is deleted or truncated by a
//     new Create.
//   - A file's content is committed by Writer.Close. Writers are
//     append-only; Create truncates.
//   - Record slices handed out by backend iterators are immutable and
//     remain valid indefinitely; callers must not modify them. Streamed
//     files (CreateStream) relax this: their iterators reuse a scratch
//     buffer, so a record is valid only until the iterator's next Next
//     call, and AllRecords copies. See stream.go.
package dfs

import (
	"errors"
	"fmt"
	"sync"
)

// ErrCompressionRatio reports a compression ratio outside (0, 1] passed to
// FS.Create. Test with errors.Is.
var ErrCompressionRatio = errors.New("dfs: compression ratio out of range (0, 1]")

// RecordIterator streams a file's records in write order. Not safe for
// concurrent use; create one iterator per consumer.
type RecordIterator interface {
	// Next advances to the next record, reporting false at end-of-file or
	// on error.
	Next() bool
	// Record returns the current record. The slice is shared and immutable:
	// it stays valid after Next but must not be modified.
	Record() []byte
	// Err returns the first read error, or nil after a clean end-of-file.
	Err() error
}

// Backend is the storage engine behind an FS. Implementations must be safe
// for concurrent use and provide the snapshot semantics documented on the
// package.
type Backend interface {
	// Create starts writing a new (or truncated) file; the content commits
	// at FileWriter.Close. The ratio is validated by FS.Create before it
	// reaches the backend.
	Create(name string, ratio float64) (FileWriter, error)
	// Open returns a snapshot read handle, or an error including the name
	// if the file does not exist.
	Open(name string) (*File, error)
	// Exists reports whether the named file exists.
	Exists(name string) bool
	// Delete removes the named file; deleting a missing file is a no-op.
	Delete(name string) error
	// List returns the names of all files with the given prefix, sorted.
	List(prefix string) []string
	// TotalStoredBytes sums the stored (compressed) size of all files with
	// the prefix.
	TotalStoredBytes(prefix string) int64
}

// FileWriter is a backend's append-only write handle. Implementations are
// not required to be concurrency-safe; the Writer wrapper serialises.
type FileWriter interface {
	// Append adds one record, taking ownership of the slice.
	Append(rec []byte) error
	// Close commits the file. Errors from earlier Appends may surface here.
	Close() error
}

// recordSource is a backend's snapshot read payload inside a File.
type recordSource interface {
	iterate(start int) RecordIterator
	close() error
}

// File is a snapshot read handle on a named file.
type File struct {
	name  string
	nrec  int
	bytes int64
	ratio float64
	src   recordSource
	// volatile marks sources whose iterators reuse their record buffer
	// (stream-backed files); AllRecords copies for such files.
	volatile bool
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// NumRecords returns the snapshot's record count.
func (f *File) NumRecords() int { return f.nrec }

// Bytes returns the uncompressed logical size: the sum of record lengths.
func (f *File) Bytes() int64 { return f.bytes }

// CompressionRatio returns stored-size / logical-size, in (0, 1].
func (f *File) CompressionRatio() float64 { return f.ratio }

// StoredBytes returns the on-disk size after compression.
func (f *File) StoredBytes() int64 { return storedSize(f.bytes, f.ratio) }

// Records returns an iterator positioned at record index start (0-based; 0
// streams the whole file). Many iterators may be drawn from one File.
func (f *File) Records(start int) RecordIterator { return f.src.iterate(start) }

// Volatile reports whether this file's iterators reuse their record buffer
// (stream-backed files); consumers that retain records across Next must
// copy them when it is true, exactly as AllRecords does.
func (f *File) Volatile() bool { return f.volatile }

// AllRecords materialises the whole snapshot. Prefer Records for
// record-at-a-time consumers; this is for side inputs and small files.
// The returned slices are always stable: volatile (stream-backed) sources
// are copied record by record.
func (f *File) AllRecords() ([][]byte, error) {
	recs := make([][]byte, 0, f.nrec)
	it := f.Records(0)
	for it.Next() {
		rec := it.Record()
		if f.volatile {
			rec = append([]byte(nil), rec...)
		}
		recs = append(recs, rec)
	}
	return recs, it.Err()
}

// Close releases backend resources (the segment file descriptor on the
// disk backend; a no-op in memory). Closing is optional — unclosed handles
// are reclaimed at GC — but tidy for long-lived processes.
func (f *File) Close() error { return f.src.close() }

// storedSize is the one compression-accounting formula both backends and
// the Writer share.
func storedSize(bytes int64, ratio float64) int64 {
	return int64(float64(bytes) * ratio)
}

// FS is a flat file system over a pluggable storage backend. All methods
// are safe for concurrent use.
type FS struct {
	b Backend

	// mu guards streams, the registry of live streamed files (CreateStream)
	// that Open and Exists consult before the backend.
	mu      sync.Mutex
	streams map[string]*streamFile
}

// New returns an FS over a fresh in-memory backend.
func New() *FS { return &FS{b: NewMemBackend()} }

// NewWithBackend returns an FS over the given backend.
func NewWithBackend(b Backend) *FS { return &FS{b: b} }

// NewDisk returns an FS over a disk backend rooted at dir with the given
// shard count (<= 0 selects the blockstore default).
func NewDisk(dir string, shards int) (*FS, error) {
	b, err := NewDiskBackend(dir, shards)
	if err != nil {
		return nil, err
	}
	return &FS{b: b}, nil
}

// Backend returns the FS's storage backend.
func (fs *FS) Backend() Backend { return fs.b }

// Create creates (or truncates) a file with the given compression ratio
// and returns a writer for it. The ratio must be in (0, 1] — pass 1 for
// uncompressed data — otherwise Create fails with ErrCompressionRatio.
// Creating over a streamed name drops the stream (truncate semantics);
// snapshots already taken stay readable.
func (fs *FS) Create(name string, ratio float64) (*Writer, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("%w: %g for %q", ErrCompressionRatio, ratio, name)
	}
	fw, err := fs.b.Create(name, ratio)
	if err != nil {
		return nil, err
	}
	fs.dropStream(name)
	return &Writer{fw: fw, name: name, ratio: ratio}, nil
}

// Open returns a snapshot of the named file. Streamed files are served
// from the stream registry with identical snapshot semantics and
// metadata; see stream.go for the record-volatility caveat.
func (fs *FS) Open(name string) (*File, error) {
	if sf := fs.stream(name); sf != nil {
		return fs.openStream(name, sf), nil
	}
	return fs.b.Open(name)
}

// Exists reports whether the named file exists (streamed or stored).
func (fs *FS) Exists(name string) bool {
	if fs.stream(name) != nil {
		return true
	}
	return fs.b.Exists(name)
}

// Delete removes the named file — the stream registry entry, the backend
// file, or both. Deleting a missing file is a no-op, matching
// `hadoop fs -rm -f`. Snapshots stay readable. The returned error is the
// backend's: on the disk backend a failed segment delete leaks storage,
// which callers (e.g. the engine's spill cleanup) must surface.
func (fs *FS) Delete(name string) error {
	fs.dropStream(name)
	return fs.b.Delete(name)
}

// List returns the names of all stored files with the given prefix,
// sorted. Streamed files are excluded: they have no storage footprint.
func (fs *FS) List(prefix string) []string { return fs.b.List(prefix) }

// TotalStoredBytes sums the stored size of all files with the prefix.
// Streamed files contribute nothing — their materialisation was elided —
// so this is the measure the streaming experiment compares across modes.
func (fs *FS) TotalStoredBytes(prefix string) int64 { return fs.b.TotalStoredBytes(prefix) }
