// Package dfs implements the simulated HDFS the MapReduce engine reads job
// inputs from and materialises job outputs to: named files of byte records
// with exact byte accounting and per-file compression ratios (modelling
// columnar formats such as ORC, whose aggressive compression reduces stored
// bytes — and therefore map-task counts — while adding decompression work).
//
// Storage is pluggable through the Backend interface. Two backends exist:
// the default in-memory backend (every record held as a []byte, the
// original behavior) and a disk backend over internal/blockstore (sharded
// append-only segment files). Both present identical semantics:
//
//   - Open returns a snapshot: the records committed at Open time. A
//     snapshot stays readable after the name is deleted or truncated by a
//     new Create.
//   - A file's content is committed by Writer.Close. Writers are
//     append-only; Create truncates.
//   - Record slices handed out by iterators are immutable and remain valid
//     indefinitely; callers must not modify them.
package dfs

import (
	"errors"
	"fmt"
)

// ErrCompressionRatio reports a compression ratio outside (0, 1] passed to
// FS.Create. Test with errors.Is.
var ErrCompressionRatio = errors.New("dfs: compression ratio out of range (0, 1]")

// RecordIterator streams a file's records in write order. Not safe for
// concurrent use; create one iterator per consumer.
type RecordIterator interface {
	// Next advances to the next record, reporting false at end-of-file or
	// on error.
	Next() bool
	// Record returns the current record. The slice is shared and immutable:
	// it stays valid after Next but must not be modified.
	Record() []byte
	// Err returns the first read error, or nil after a clean end-of-file.
	Err() error
}

// Backend is the storage engine behind an FS. Implementations must be safe
// for concurrent use and provide the snapshot semantics documented on the
// package.
type Backend interface {
	// Create starts writing a new (or truncated) file; the content commits
	// at FileWriter.Close. The ratio is validated by FS.Create before it
	// reaches the backend.
	Create(name string, ratio float64) (FileWriter, error)
	// Open returns a snapshot read handle, or an error including the name
	// if the file does not exist.
	Open(name string) (*File, error)
	// Exists reports whether the named file exists.
	Exists(name string) bool
	// Delete removes the named file; deleting a missing file is a no-op.
	Delete(name string) error
	// List returns the names of all files with the given prefix, sorted.
	List(prefix string) []string
	// TotalStoredBytes sums the stored (compressed) size of all files with
	// the prefix.
	TotalStoredBytes(prefix string) int64
}

// FileWriter is a backend's append-only write handle. Implementations are
// not required to be concurrency-safe; the Writer wrapper serialises.
type FileWriter interface {
	// Append adds one record, taking ownership of the slice.
	Append(rec []byte) error
	// Close commits the file. Errors from earlier Appends may surface here.
	Close() error
}

// recordSource is a backend's snapshot read payload inside a File.
type recordSource interface {
	iterate(start int) RecordIterator
	close() error
}

// File is a snapshot read handle on a named file.
type File struct {
	name  string
	nrec  int
	bytes int64
	ratio float64
	src   recordSource
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// NumRecords returns the snapshot's record count.
func (f *File) NumRecords() int { return f.nrec }

// Bytes returns the uncompressed logical size: the sum of record lengths.
func (f *File) Bytes() int64 { return f.bytes }

// CompressionRatio returns stored-size / logical-size, in (0, 1].
func (f *File) CompressionRatio() float64 { return f.ratio }

// StoredBytes returns the on-disk size after compression.
func (f *File) StoredBytes() int64 { return storedSize(f.bytes, f.ratio) }

// Records returns an iterator positioned at record index start (0-based; 0
// streams the whole file). Many iterators may be drawn from one File.
func (f *File) Records(start int) RecordIterator { return f.src.iterate(start) }

// AllRecords materialises the whole snapshot. Prefer Records for
// record-at-a-time consumers; this is for side inputs and small files.
func (f *File) AllRecords() ([][]byte, error) {
	recs := make([][]byte, 0, f.nrec)
	it := f.Records(0)
	for it.Next() {
		recs = append(recs, it.Record())
	}
	return recs, it.Err()
}

// Close releases backend resources (the segment file descriptor on the
// disk backend; a no-op in memory). Closing is optional — unclosed handles
// are reclaimed at GC — but tidy for long-lived processes.
func (f *File) Close() error { return f.src.close() }

// storedSize is the one compression-accounting formula both backends and
// the Writer share.
func storedSize(bytes int64, ratio float64) int64 {
	return int64(float64(bytes) * ratio)
}

// FS is a flat file system over a pluggable storage backend. All methods
// are safe for concurrent use.
type FS struct {
	b Backend
}

// New returns an FS over a fresh in-memory backend.
func New() *FS { return &FS{b: NewMemBackend()} }

// NewWithBackend returns an FS over the given backend.
func NewWithBackend(b Backend) *FS { return &FS{b: b} }

// NewDisk returns an FS over a disk backend rooted at dir with the given
// shard count (<= 0 selects the blockstore default).
func NewDisk(dir string, shards int) (*FS, error) {
	b, err := NewDiskBackend(dir, shards)
	if err != nil {
		return nil, err
	}
	return &FS{b: b}, nil
}

// Backend returns the FS's storage backend.
func (fs *FS) Backend() Backend { return fs.b }

// Create creates (or truncates) a file with the given compression ratio
// and returns a writer for it. The ratio must be in (0, 1] — pass 1 for
// uncompressed data — otherwise Create fails with ErrCompressionRatio.
func (fs *FS) Create(name string, ratio float64) (*Writer, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("%w: %g for %q", ErrCompressionRatio, ratio, name)
	}
	fw, err := fs.b.Create(name, ratio)
	if err != nil {
		return nil, err
	}
	return &Writer{fw: fw, name: name, ratio: ratio}, nil
}

// Open returns a snapshot of the named file.
func (fs *FS) Open(name string) (*File, error) { return fs.b.Open(name) }

// Exists reports whether the named file exists.
func (fs *FS) Exists(name string) bool { return fs.b.Exists(name) }

// Delete removes the named file. Deleting a missing file is a no-op,
// matching `hadoop fs -rm -f`. Snapshots stay readable.
func (fs *FS) Delete(name string) { fs.b.Delete(name) }

// List returns the names of all files with the given prefix, sorted.
func (fs *FS) List(prefix string) []string { return fs.b.List(prefix) }

// TotalStoredBytes sums the stored size of all files with the prefix.
func (fs *FS) TotalStoredBytes(prefix string) int64 { return fs.b.TotalStoredBytes(prefix) }
