// Package dfs implements an in-memory stand-in for HDFS: named files of
// byte records with exact byte accounting and per-file compression ratios.
// The MapReduce engine reads job inputs from and materialises job outputs to
// this file system, so every byte the paper's workflows would write to HDFS
// is metered here. Compression ratios model columnar formats such as ORC,
// whose aggressive compression reduces stored bytes (and therefore the
// number of map tasks a job gets) while adding decompression work — the
// effect the paper observes for Hive's ORC tables.
package dfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rapidanalytics/internal/obs"
)

// File is a named sequence of records.
type File struct {
	Name string
	// Records are the raw record payloads in write order.
	Records [][]byte
	// Bytes is the uncompressed logical size: the sum of record lengths.
	Bytes int64
	// CompressionRatio is stored-size / logical-size, in (0, 1]. 1 means no
	// compression.
	CompressionRatio float64
}

// StoredBytes returns the on-disk size after compression.
func (f *File) StoredBytes() int64 {
	return int64(float64(f.Bytes) * f.CompressionRatio)
}

// NumRecords returns the record count.
func (f *File) NumRecords() int { return len(f.Records) }

// FS is a flat in-memory file system. All methods are safe for concurrent
// use.
type FS struct {
	mu    sync.RWMutex
	files map[string]*File
}

// New returns an empty file system.
func New() *FS {
	return &FS{files: map[string]*File{}}
}

// Create creates (or truncates) a file with the given compression ratio and
// returns a writer for it. ratio must be in (0, 1]; pass 1 for uncompressed
// data.
func (fs *FS) Create(name string, ratio float64) *Writer {
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	f := &File{Name: name, CompressionRatio: ratio}
	fs.mu.Lock()
	fs.files[name] = f
	fs.mu.Unlock()
	return &Writer{f: f}
}

// Open returns the named file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", name)
	}
	return f, nil
}

// Exists reports whether the named file exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

// Delete removes the named file. Deleting a missing file is a no-op,
// matching `hadoop fs -rm -f`.
func (fs *FS) Delete(name string) {
	fs.mu.Lock()
	delete(fs.files, name)
	fs.mu.Unlock()
}

// List returns the names of all files with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var names []string
	for n := range fs.files {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// TotalStoredBytes sums the stored size of all files with the prefix.
func (fs *FS) TotalStoredBytes(prefix string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for n, f := range fs.files {
		if strings.HasPrefix(n, prefix) {
			total += f.StoredBytes()
		}
	}
	return total
}

// Writer appends records to a file. Writes are internally locked; each
// writing task still conventionally owns its writer.
type Writer struct {
	f    *File
	mu   sync.Mutex
	span *obs.Span
}

// SetSpan attaches an observability span that accrues one record and the
// record's logical bytes per write. A nil span (the default) leaves writes
// untraced at no cost beyond a nil check.
func (w *Writer) SetSpan(s *obs.Span) { w.span = s }

// Write appends one record. The record is copied.
func (w *Writer) Write(record []byte) {
	rec := make([]byte, len(record))
	copy(rec, record)
	w.mu.Lock()
	w.f.Records = append(w.f.Records, rec)
	w.f.Bytes += int64(len(rec))
	w.mu.Unlock()
	w.span.AddRecords(1)
	w.span.AddBytes(int64(len(rec)))
}

// WriteOwned appends one record without copying; the caller must not reuse
// the slice.
func (w *Writer) WriteOwned(record []byte) {
	w.mu.Lock()
	w.f.Records = append(w.f.Records, record)
	w.f.Bytes += int64(len(record))
	w.mu.Unlock()
	w.span.AddRecords(1)
	w.span.AddBytes(int64(len(record)))
}

// File returns the underlying file.
func (w *Writer) File() *File { return w.f }
