package dfs

import (
	"sync"

	"rapidanalytics/internal/obs"
)

// Writer appends records to a file and commits them at Close. Writes are
// internally locked (each writing task still conventionally owns its
// writer); backend errors are sticky and surface at Close.
type Writer struct {
	fw    FileWriter
	name  string
	ratio float64
	span  *obs.Span

	mu      sync.Mutex
	records int64
	bytes   int64
	err     error
	closed  bool
}

// SetSpan attaches an observability span that accrues one record and the
// record's logical bytes per write. A nil span (the default) leaves writes
// untraced at no cost beyond a nil check.
func (w *Writer) SetSpan(s *obs.Span) { w.span = s }

// Name returns the name of the file being written.
func (w *Writer) Name() string { return w.name }

// Write appends one record. The record is copied.
func (w *Writer) Write(record []byte) {
	rec := make([]byte, len(record))
	copy(rec, record)
	w.WriteOwned(rec)
}

// WriteOwned appends one record without copying; the caller must not reuse
// the slice.
func (w *Writer) WriteOwned(record []byte) {
	w.mu.Lock()
	if w.err == nil && !w.closed {
		if err := w.fw.Append(record); err != nil {
			w.err = err
		} else {
			w.records++
			w.bytes += int64(len(record))
		}
	}
	w.mu.Unlock()
	w.span.AddRecords(1)
	w.span.AddBytes(int64(len(record)))
}

// Close commits the file, returning the first error of any write or of the
// commit itself. Close is idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	if err := w.fw.Close(); w.err == nil {
		w.err = err
	}
	return w.err
}

// Records returns the number of records written so far.
func (w *Writer) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Bytes returns the logical bytes written so far.
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// StoredBytes returns the stored (compressed) size of what has been
// written: logical bytes times the file's compression ratio.
func (w *Writer) StoredBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return storedSize(w.bytes, w.ratio)
}
