package dfs

import (
	"sync"

	"rapidanalytics/internal/obs"
	"rapidanalytics/internal/vec"
)

// Writer appends records to a file and commits them at Close. Writes are
// internally locked (each writing task still conventionally owns its
// writer); backend errors are sticky and surface at Close.
type Writer struct {
	fw    FileWriter
	name  string
	ratio float64
	span  *obs.Span

	mu      sync.Mutex
	records int64
	bytes   int64
	err     error
	closed  bool
}

// SetSpan attaches an observability span that accrues one record and the
// record's logical bytes per write. A nil span (the default) leaves writes
// untraced at no cost beyond a nil check.
func (w *Writer) SetSpan(s *obs.Span) { w.span = s }

// Name returns the name of the file being written.
func (w *Writer) Name() string { return w.name }

// Write appends one record. The record is copied.
func (w *Writer) Write(record []byte) {
	rec := make([]byte, len(record))
	copy(rec, record)
	w.WriteOwned(rec)
}

// WriteOwned appends one record without copying; the caller must not reuse
// the slice.
func (w *Writer) WriteOwned(record []byte) {
	w.mu.Lock()
	if w.err == nil && !w.closed {
		if err := w.fw.Append(record); err != nil {
			w.err = err
		} else {
			w.records++
			w.bytes += int64(len(record))
		}
	}
	w.mu.Unlock()
	w.span.AddRecords(1)
	w.span.AddBytes(int64(len(record)))
}

// batchAppender is implemented by file writers that accept sealed batches
// wholesale (the stream writer); others take the row-at-a-time fallback.
type batchAppender interface {
	AppendBatch(b *vec.Batch) error
}

// WriteBatch appends every row of a sealed batch. On a streamed file the
// batch transfers as-is — the vectorized path reduce output uses, with no
// per-record re-encoding — while backend files receive the rows encoded
// one by one. Volume and span accounting match row-at-a-time writes
// exactly. The batch must be sealed; the writer takes it over.
func (w *Writer) WriteBatch(b *vec.Batch) {
	rows, bytes := int64(b.Rows()), b.Bytes()
	w.mu.Lock()
	if w.err == nil && !w.closed {
		err := func() error {
			if ba, ok := w.fw.(batchAppender); ok {
				return ba.AppendBatch(b)
			}
			var scratch []byte
			for r := 0; r < b.Rows(); r++ {
				scratch = b.AppendRecord(scratch[:0], r)
				rec := make([]byte, len(scratch))
				copy(rec, scratch)
				if err := w.fw.Append(rec); err != nil {
					return err
				}
			}
			return nil
		}()
		if err != nil {
			w.err = err
		} else {
			w.records += rows
			w.bytes += bytes
		}
	}
	w.mu.Unlock()
	w.span.AddRecords(rows)
	w.span.AddBytes(bytes)
}

// StreamedBatches returns the number of batches committed to a live
// stream: zero for backend writers and for streams that overflowed to the
// backend (their output materialised after all).
func (w *Writer) StreamedBatches() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if sw, ok := w.fw.(*streamWriter); ok {
		return sw.streamedBatches()
	}
	return 0
}

// Streamed reports whether the writer's output stayed in the stream
// registry (true) rather than materialising into the backend.
func (w *Writer) Streamed() bool { return w.StreamedBatches() > 0 }

// Close commits the file, returning the first error of any write or of the
// commit itself. Close is idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	if err := w.fw.Close(); w.err == nil {
		w.err = err
	}
	return w.err
}

// Records returns the number of records written so far.
func (w *Writer) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Bytes returns the logical bytes written so far.
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// StoredBytes returns the stored (compressed) size of what has been
// written: logical bytes times the file's compression ratio.
func (w *Writer) StoredBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return storedSize(w.bytes, w.ratio)
}
