package dfs

import (
	"fmt"
	"sync"

	"rapidanalytics/internal/vec"
)

// Streamed files: FS.CreateStream opens a file whose records buffer as
// columnar vec.Batch batches in the FS's stream registry instead of being
// materialised into the storage backend. Open serves streamed files
// exactly like backend files — same snapshot semantics, same NumRecords /
// Bytes / StoredBytes metadata, re-iterable from any start — so planners,
// split carving and side-input loading never know the DFS round-trip was
// elided. When a stream's buffered logical bytes cross its spill
// threshold it overflows: the buffered batches replay into a regular
// backend file under the same name and the writer degrades to plain
// backend appends (PR 6's spill machinery as the overflow path), after
// which the file behaves as if it had never streamed.
//
// Two deliberate asymmetries with backend files, documented here because
// the package contract above promises them: streamed files do not appear
// in List or TotalStoredBytes (they have no stored footprint — that is
// the point), and records handed out by their iterators are VOLATILE —
// valid only until the iterator's next Next call — because columnar rows
// re-encode into a reused scratch buffer. AllRecords compensates by
// copying. Consumers that retain raw record slices across Next must copy;
// every engine decode path (codec.DecodeTuple and friends) already does.

// streamFile is one streamed file's live state in the registry.
type streamFile struct {
	mu      sync.Mutex
	ratio   float64
	batches []*vec.Batch
	records int
	bytes   int64
}

// snapshot captures the committed batches for a reader.
func (sf *streamFile) snapshot() (batches []*vec.Batch, records int, bytes int64) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return sf.batches[:len(sf.batches):len(sf.batches)], sf.records, sf.bytes
}

// commit appends one sealed batch, returning the new total logical bytes.
func (sf *streamFile) commit(b *vec.Batch) int64 {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	sf.batches = append(sf.batches, b)
	sf.records += b.Rows()
	sf.bytes += b.Bytes()
	return sf.bytes
}

// CreateStream creates (or truncates) a streamed file: records buffer as
// batches of at most batchRows rows (<= 0 selects vec.DefaultBatchRows)
// and no backend write happens unless the buffered logical bytes reach
// spillBytes (<= 0 disables the overflow, keeping the stream resident).
// The returned Writer is used exactly like one from Create; the stream
// writer never retains appended slices, so WriteOwned is safe even for
// shared buffers. Content becomes visible to Open batch by batch and the
// partial tail commits at Close.
func (fs *FS) CreateStream(name string, ratio float64, batchRows int, spillBytes int64) (*Writer, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("%w: %g for %q", ErrCompressionRatio, ratio, name)
	}
	sf := &streamFile{ratio: ratio}
	fs.mu.Lock()
	if fs.streams == nil {
		fs.streams = map[string]*streamFile{}
	}
	fs.streams[name] = sf
	fs.mu.Unlock()
	// A stale backend file under the same name would resurface if the
	// stream is later deleted; clear it so the name has one owner.
	if err := fs.b.Delete(name); err != nil {
		return nil, err
	}
	sw := &streamWriter{
		fs:         fs,
		name:       name,
		ratio:      ratio,
		sf:         sf,
		builder:    vec.NewBuilder(batchRows),
		spillBytes: spillBytes,
	}
	return &Writer{fw: sw, name: name, ratio: ratio}, nil
}

// stream looks a name up in the stream registry.
func (fs *FS) stream(name string) *streamFile {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.streams[name]
}

// dropStream removes a name from the stream registry (Create over the
// name, Delete, or stream overflow). Snapshots already taken stay valid.
func (fs *FS) dropStream(name string) {
	fs.mu.Lock()
	delete(fs.streams, name)
	fs.mu.Unlock()
}

// openStream builds a snapshot File over the stream's committed batches.
func (fs *FS) openStream(name string, sf *streamFile) *File {
	batches, records, bytes := sf.snapshot()
	return &File{
		name:     name,
		nrec:     records,
		bytes:    bytes,
		ratio:    sf.ratio,
		src:      &streamSource{batches: batches},
		volatile: true,
	}
}

// streamWriter is the FileWriter behind CreateStream. Appends parse into
// the batch builder; sealed batches commit to the stream file. When the
// committed bytes cross spillBytes the writer overflows to a real backend
// file and every subsequent append goes straight through.
type streamWriter struct {
	fs         *FS
	name       string
	ratio      float64
	sf         *streamFile
	builder    *vec.Builder
	spillBytes int64

	batchCount int64
	overflowed FileWriter // non-nil once spilled to the backend
	scratch    []byte
}

// Append implements FileWriter. The stream copies rec (into columns or
// the raw arena) rather than retaining it.
func (w *streamWriter) Append(rec []byte) error {
	if w.overflowed != nil {
		return w.overflowed.Append(rec)
	}
	if b := w.builder.Append(rec); b != nil {
		return w.commit(b)
	}
	return nil
}

// AppendBatch adds a sealed batch wholesale — the vectorized write path
// reduce output uses. Any partial builder rows commit first to preserve
// record order.
func (w *streamWriter) AppendBatch(b *vec.Batch) error {
	if w.overflowed != nil {
		return w.replay(w.overflowed, b)
	}
	if partial := w.builder.Flush(); partial != nil {
		if err := w.commit(partial); err != nil {
			return err
		}
	}
	if w.overflowed != nil { // the partial commit may have overflowed
		return w.replay(w.overflowed, b)
	}
	return w.commit(b)
}

// commit publishes one sealed batch and runs the overflow check.
func (w *streamWriter) commit(b *vec.Batch) error {
	total := w.sf.commit(b)
	w.batchCount++
	if w.spillBytes > 0 && total >= w.spillBytes {
		return w.overflow()
	}
	return nil
}

// overflow demotes the stream to a materialised backend file: the
// committed batches replay into a fresh backend writer under the same
// name, the registry entry drops, and later appends bypass the builder.
func (w *streamWriter) overflow() error {
	bw, err := w.fs.b.Create(w.name, w.ratio)
	if err != nil {
		return err
	}
	batches, _, _ := w.sf.snapshot()
	for _, b := range batches {
		if err := w.replay(bw, b); err != nil {
			bw.Close() // abandon the half-replayed file; the replay error wins
			return err
		}
	}
	w.overflowed = bw
	w.batchCount = 0
	w.fs.dropStream(w.name)
	return nil
}

// replay appends every row of b to a backend writer.
func (w *streamWriter) replay(bw FileWriter, b *vec.Batch) error {
	for r := 0; r < b.Rows(); r++ {
		w.scratch = b.AppendRecord(w.scratch[:0], r)
		rec := make([]byte, len(w.scratch))
		copy(rec, w.scratch)
		if err := bw.Append(rec); err != nil {
			return err
		}
	}
	return nil
}

// Close implements FileWriter: the partial tail batch commits (or, after
// an overflow, the backend file commits).
func (w *streamWriter) Close() error {
	if w.overflowed != nil {
		return w.overflowed.Close()
	}
	if b := w.builder.Flush(); b != nil {
		if err := w.commit(b); err != nil {
			return err
		}
		if w.overflowed != nil {
			return w.overflowed.Close()
		}
	}
	return nil
}

// streamedBatches reports the batches committed to the live stream, or 0
// after an overflow (the output materialised after all).
func (w *streamWriter) streamedBatches() int64 {
	if w.overflowed != nil {
		return 0
	}
	return w.batchCount
}

// streamSource adapts a batch snapshot to the recordSource contract.
// Its iterators decode columnar rows into a per-iterator scratch buffer,
// so records are volatile (see the package notes above).
type streamSource struct {
	batches []*vec.Batch
}

func (s *streamSource) iterate(start int) RecordIterator {
	if start < 0 {
		start = 0
	}
	return &streamRecordIterator{batches: s.batches, skip: start}
}

func (s *streamSource) close() error { return nil }

// streamRecordIterator walks batch rows as records.
type streamRecordIterator struct {
	batches []*vec.Batch
	bi      int // current batch
	row     int // next row within batches[bi]
	skip    int // rows still to skip for a positioned start
	scratch []byte
	cur     []byte
}

func (it *streamRecordIterator) Next() bool {
	for it.bi < len(it.batches) {
		b := it.batches[it.bi]
		if it.skip >= b.Rows()-it.row {
			it.skip -= b.Rows() - it.row
			it.bi++
			it.row = 0
			continue
		}
		it.row += it.skip
		it.skip = 0
		it.scratch = b.AppendRecord(it.scratch[:0], it.row)
		it.cur = it.scratch
		it.row++
		if it.row >= b.Rows() {
			it.bi++
			it.row = 0
		}
		return true
	}
	it.cur = nil
	return false
}

func (it *streamRecordIterator) Record() []byte { return it.cur }

func (it *streamRecordIterator) Err() error { return nil }

// Batches returns a pull iterator over the file's sealed batches and true
// when the file is stream-backed, or (nil, false) for backend files. The
// iterator satisfies the vec.Iterator lifecycle contract.
func (f *File) Batches() (vec.Iterator, bool) {
	src, ok := f.src.(*streamSource)
	if !ok {
		return nil, false
	}
	return vec.NewSliceIterator(src.batches), true
}
