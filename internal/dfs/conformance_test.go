package dfs

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// The conformance suite runs every backend through the semantics the
// package documents: snapshot reads, truncate-on-Create, delete-while-open,
// sorted listing, compression accounting and concurrent writer safety.
// Both backends must pass identically — engines never know which one they
// run on.

func backends(t *testing.T) map[string]func() *FS {
	return map[string]func() *FS{
		"mem": New,
		"disk": func() *FS {
			fs, err := NewDisk(t.TempDir(), 4)
			if err != nil {
				t.Fatalf("NewDisk: %v", err)
			}
			return fs
		},
	}
}

func forEachBackend(t *testing.T, test func(t *testing.T, fs *FS)) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) { test(t, mk()) })
	}
}

func readAll(t *testing.T, f *File) []string {
	t.Helper()
	recs, err := f.AllRecords()
	if err != nil {
		t.Fatalf("AllRecords(%s): %v", f.Name(), err)
	}
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	return out
}

func TestConformanceCreateWriteRead(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		writeFile(t, fs, "dir/f", 1, "alpha", "", "gamma")
		f, err := fs.Open("dir/f")
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer f.Close()
		if got := readAll(t, f); !reflect.DeepEqual(got, []string{"alpha", "", "gamma"}) {
			t.Errorf("records = %q", got)
		}
		if f.NumRecords() != 3 || f.Bytes() != 10 {
			t.Errorf("NumRecords=%d Bytes=%d", f.NumRecords(), f.Bytes())
		}
		if f.CompressionRatio() != 1 || f.StoredBytes() != 10 {
			t.Errorf("ratio=%g stored=%d", f.CompressionRatio(), f.StoredBytes())
		}
	})
}

func TestConformanceBadRatio(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		w, err := fs.Create("bad", 0)
		if !errors.Is(err, ErrCompressionRatio) {
			t.Errorf("err = %v, want ErrCompressionRatio", err)
		}
		if w != nil {
			w.Close()
		}
		if fs.Exists("bad") {
			t.Error("rejected Create left a file")
		}
	})
}

func TestConformanceCompressionAccounting(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		writeFile(t, fs, "t/orc", 0.12, string(make([]byte, 1000)))
		writeFile(t, fs, "t/raw", 1, string(make([]byte, 50)))
		f, err := fs.Open("t/orc")
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer f.Close()
		if f.CompressionRatio() != 0.12 {
			t.Errorf("ratio = %g", f.CompressionRatio())
		}
		if f.StoredBytes() != 120 {
			t.Errorf("StoredBytes = %d", f.StoredBytes())
		}
		if got := fs.TotalStoredBytes("t/"); got != 170 {
			t.Errorf("TotalStoredBytes = %d", got)
		}
	})
}

func TestConformanceTruncate(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		writeFile(t, fs, "f", 1, "old1", "old2")
		writeFile(t, fs, "f", 1, "new")
		f, err := fs.Open("f")
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer f.Close()
		if got := readAll(t, f); !reflect.DeepEqual(got, []string{"new"}) {
			t.Errorf("records after truncate = %q", got)
		}
	})
}

func TestConformanceSnapshotAfterTruncate(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		writeFile(t, fs, "f", 1, "v1a", "v1b")
		snap, err := fs.Open("f")
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer snap.Close()
		writeFile(t, fs, "f", 1, "v2")
		if got := readAll(t, snap); !reflect.DeepEqual(got, []string{"v1a", "v1b"}) {
			t.Errorf("snapshot corrupted by truncate: %q", got)
		}
	})
}

func TestConformanceDeleteWhileOpen(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		writeFile(t, fs, "f", 1, "a", "b", "c")
		snap, err := fs.Open("f")
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer snap.Close()
		fs.Delete("f")
		if fs.Exists("f") {
			t.Fatal("file exists after delete")
		}
		if got := readAll(t, snap); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
			t.Errorf("snapshot unreadable after delete: %q", got)
		}
	})
}

func TestConformanceDeleteMissing(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		fs.Delete("never-created") // must not panic or create state
		if fs.Exists("never-created") {
			t.Error("delete created the file")
		}
	})
}

func TestConformanceOpenMissing(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		if f, err := fs.Open("nope"); err == nil {
			f.Close()
			t.Error("Open of missing file succeeded")
		}
	})
}

func TestConformanceListOrdering(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		for _, name := range []string{"p/zz", "p/a", "q/x", "p/m/1"} {
			writeFile(t, fs, name, 1, "r")
		}
		if got := fs.List("p/"); !reflect.DeepEqual(got, []string{"p/a", "p/m/1", "p/zz"}) {
			t.Errorf("List(p/) = %v", got)
		}
		if got := fs.List(""); len(got) != 4 {
			t.Errorf("List(\"\") = %v", got)
		}
	})
}

func TestConformanceRecordsFrom(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		var recs []string
		for i := 0; i < 1000; i++ {
			recs = append(recs, fmt.Sprintf("record-%04d-%s", i, string(make([]byte, 100))))
		}
		writeFile(t, fs, "big", 1, recs...)
		f, err := fs.Open("big")
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer f.Close()
		// Starts chosen to land mid-file (mid-block on disk: 100+ byte
		// records × 32KB blocks ≈ 300 records per block), at block-ish
		// boundaries, and past the end.
		for _, start := range []int{0, 1, 299, 300, 500, 999, 1000, 5000} {
			it := f.Records(start)
			n := 0
			for it.Next() {
				want := recs[start+n]
				if string(it.Record()) != want {
					t.Fatalf("Records(%d)[%d] = %.20q, want %.20q", start, n, it.Record(), want)
				}
				n++
			}
			if err := it.Err(); err != nil {
				t.Fatalf("Records(%d) err: %v", start, err)
			}
			wantN := len(recs) - start
			if wantN < 0 {
				wantN = 0
			}
			if n != wantN {
				t.Errorf("Records(%d) yielded %d records, want %d", start, n, wantN)
			}
		}
	})
}

// Concurrent writers to distinct files must be safe (the engine's reduce
// phase and parallel loads create files concurrently); run under -race.
func TestConformanceConcurrentWriters(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		const writers = 8
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				name := fmt.Sprintf("c/f%d", w)
				wr, err := fs.Create(name, 1)
				if err != nil {
					errs[w] = err
					return
				}
				for i := 0; i < 500; i++ {
					wr.Write([]byte(fmt.Sprintf("w%d-%d", w, i)))
				}
				errs[w] = wr.Close()
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("writer %d: %v", w, err)
			}
		}
		for w := 0; w < writers; w++ {
			f, err := fs.Open(fmt.Sprintf("c/f%d", w))
			if err != nil {
				t.Fatalf("Open writer %d: %v", w, err)
			}
			got := readAll(t, f)
			f.Close()
			if len(got) != 500 || got[0] != fmt.Sprintf("w%d-0", w) || got[499] != fmt.Sprintf("w%d-499", w) {
				t.Errorf("writer %d: %d records, first %q last %q", w, len(got), got[0], got[len(got)-1])
			}
		}
	})
}

// A concurrent reader drawing iterators from one shared File must be safe
// (shuffle tasks share input snapshots); run under -race.
func TestConformanceConcurrentReaders(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs *FS) {
		var recs []string
		for i := 0; i < 2000; i++ {
			recs = append(recs, fmt.Sprintf("rec-%d", i))
		}
		writeFile(t, fs, "shared", 1, recs...)
		f, err := fs.Open("shared")
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer f.Close()
		var wg sync.WaitGroup
		for r := 0; r < 8; r++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				it := f.Records(start)
				n := start
				for it.Next() {
					if string(it.Record()) != recs[n] {
						t.Errorf("reader@%d: record %d mismatch", start, n)
						return
					}
					n++
				}
				if err := it.Err(); err != nil {
					t.Errorf("reader@%d: %v", start, err)
				}
			}(r * 250)
		}
		wg.Wait()
	})
}
