package dfs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"rapidanalytics/internal/vec"
)

// idRec builds a canonical uvarint ID-tuple record.
func idRec(ids ...uint64) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, id)
	}
	return buf
}

func writeStream(t *testing.T, fs *FS, name string, ratio float64, recs ...[]byte) {
	t.Helper()
	w, err := fs.CreateStream(name, ratio, 4, 0)
	if err != nil {
		t.Fatalf("CreateStream(%s): %v", name, err)
	}
	for _, rec := range recs {
		w.Write(rec)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close(%s): %v", name, err)
	}
}

func streamRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = idRec(uint64(i), uint64(i*7), 0)
	}
	return recs
}

// TestStreamRoundTrip: a streamed file reads back byte-identically, with
// the same metadata a materialised file would report, and never touches
// the backend.
func TestStreamRoundTrip(t *testing.T) {
	fs := New()
	recs := streamRecords(10)
	var logical int64
	for _, r := range recs {
		logical += int64(len(r))
	}
	writeStream(t, fs, "tmp/s", 0.5, recs...)

	if !fs.Exists("tmp/s") {
		t.Fatal("streamed file does not Exist")
	}
	if got := fs.List("tmp/"); len(got) != 0 {
		t.Errorf("List shows streamed file: %v", got)
	}
	if got := fs.TotalStoredBytes(""); got != 0 {
		t.Errorf("TotalStoredBytes = %d, want 0 (write elided)", got)
	}

	f, err := fs.Open("tmp/s")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumRecords() != 10 || f.Bytes() != logical || f.CompressionRatio() != 0.5 {
		t.Errorf("metadata = %d recs, %d bytes, ratio %g", f.NumRecords(), f.Bytes(), f.CompressionRatio())
	}
	if want := int64(float64(logical) * 0.5); f.StoredBytes() != want {
		t.Errorf("StoredBytes = %d, want %d", f.StoredBytes(), want)
	}
	it := f.Records(0)
	for i := 0; it.Next(); i++ {
		if !bytes.Equal(it.Record(), recs[i]) {
			t.Fatalf("record %d = %x, want %x", i, it.Record(), recs[i])
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamRecordsFrom: positioned iteration must match the backend
// contract, including starts inside and across batch boundaries.
func TestStreamRecordsFrom(t *testing.T) {
	fs := New()
	recs := streamRecords(11) // batches of 4: 4+4+3
	writeStream(t, fs, "s", 1, recs...)
	f, err := fs.Open("s")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, start := range []int{0, 1, 3, 4, 7, 10, 11, 50} {
		it := f.Records(start)
		n := 0
		for it.Next() {
			if !bytes.Equal(it.Record(), recs[start+n]) {
				t.Fatalf("Records(%d)[%d] mismatch", start, n)
			}
			n++
		}
		want := len(recs) - start
		if want < 0 {
			want = 0
		}
		if n != want {
			t.Errorf("Records(%d) yielded %d, want %d", start, n, want)
		}
	}
}

// TestStreamVolatileRecords pins the relaxed contract: the stream iterator
// reuses its buffer across Next, and AllRecords compensates by copying.
func TestStreamVolatileRecords(t *testing.T) {
	fs := New()
	recs := streamRecords(6)
	writeStream(t, fs, "s", 1, recs...)
	f, err := fs.Open("s")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	it := f.Records(0)
	if !it.Next() {
		t.Fatal("empty stream")
	}
	first := it.Record()
	firstCopy := append([]byte(nil), first...)
	if !it.Next() {
		t.Fatal("one-record stream")
	}
	if bytes.Equal(first, firstCopy) {
		t.Log("iterator buffer happened to match; contract still volatile")
	}
	all, err := f.AllRecords()
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if !bytes.Equal(all[i], recs[i]) {
			t.Fatalf("AllRecords[%d] = %x, want %x (stable copies required)", i, all[i], recs[i])
		}
	}
}

// TestStreamSnapshotSemantics: Open snapshots the committed batches;
// truncation by Create and deletion leave snapshots readable, exactly as
// for backend files.
func TestStreamSnapshotSemantics(t *testing.T) {
	fs := New()
	writeStream(t, fs, "f", 1, []byte("v1a"), []byte("v1b"))
	snap, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	// Create over the streamed name truncates to a backend file.
	writeFile(t, fs, "f", 1, "v2")
	got, err := snap.AllRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "v1a" {
		t.Errorf("snapshot corrupted by truncate: %q", got)
	}
	f2, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if recs, _ := f2.AllRecords(); len(recs) != 1 || string(recs[0]) != "v2" {
		t.Errorf("re-Open after truncate = %q", recs)
	}

	writeStream(t, fs, "g", 1, []byte("a"))
	gsnap, err := fs.Open("g")
	if err != nil {
		t.Fatal(err)
	}
	defer gsnap.Close()
	if err := fs.Delete("g"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("g") {
		t.Error("streamed file exists after Delete")
	}
	if recs, _ := gsnap.AllRecords(); len(recs) != 1 {
		t.Errorf("stream snapshot unreadable after delete: %q", recs)
	}
}

// TestStreamOverflowToBackend: crossing the spill threshold demotes the
// stream to a regular backend file with identical content and metadata.
func TestStreamOverflowToBackend(t *testing.T) {
	fs := New()
	recs := streamRecords(100)
	var logical int64
	for _, r := range recs {
		logical += int64(len(r))
	}
	w, err := fs.CreateStream("big", 1, 8, 64) // overflow after ~64 bytes
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		w.Write(rec)
	}
	if w.Streamed() {
		t.Error("writer still reports streamed after overflow")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.StreamedBatches() != 0 {
		t.Errorf("StreamedBatches = %d after overflow, want 0", w.StreamedBatches())
	}
	if got := fs.List(""); !reflect.DeepEqual(got, []string{"big"}) {
		t.Errorf("List = %v, want the materialised file", got)
	}
	if fs.TotalStoredBytes("") != logical {
		t.Errorf("TotalStoredBytes = %d, want %d", fs.TotalStoredBytes(""), logical)
	}
	f, err := fs.Open("big")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumRecords() != len(recs) || f.Bytes() != logical {
		t.Errorf("overflowed metadata = %d recs %d bytes", f.NumRecords(), f.Bytes())
	}
	it := f.Records(0)
	for i := 0; it.Next(); i++ {
		if !bytes.Equal(it.Record(), recs[i]) {
			t.Fatalf("record %d mismatch after overflow", i)
		}
	}
}

// TestStreamWriteBatchOrdering mixes row appends with wholesale batch
// transfers; record order must be exactly the call order.
func TestStreamWriteBatchOrdering(t *testing.T) {
	fs := New()
	w, err := fs.CreateStream("s", 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	w.Write(idRec(1))
	want = append(want, idRec(1))
	bu := vec.NewBuilder(8)
	for i := uint64(2); i < 5; i++ {
		bu.Append(idRec(i))
		want = append(want, idRec(i))
	}
	w.WriteBatch(bu.Flush())
	w.Write(idRec(9))
	want = append(want, idRec(9))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != int64(len(want)) {
		t.Errorf("Records = %d, want %d", w.Records(), len(want))
	}
	f, err := fs.Open("s")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.AllRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("records = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %x, want %x", i, got[i], want[i])
		}
	}
}

// TestWriteBatchOnBackendFile: WriteBatch on a non-streamed writer falls
// back to row-at-a-time appends with identical bytes.
func TestWriteBatchOnBackendFile(t *testing.T) {
	fs := New()
	w, err := fs.Create("f", 1)
	if err != nil {
		t.Fatal(err)
	}
	bu := vec.NewBuilder(8)
	bu.Append(idRec(5, 6))
	bu.Append(idRec(7, 8))
	w.WriteBatch(bu.Flush())
	if w.StreamedBatches() != 0 {
		t.Errorf("backend writer reports streamed batches")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, _ := f.AllRecords()
	if len(got) != 2 || !bytes.Equal(got[0], idRec(5, 6)) || !bytes.Equal(got[1], idRec(7, 8)) {
		t.Errorf("records = %x", got)
	}
}

// TestStreamEmptyFile: an empty stream still Exists and Opens with zero
// records — downstream jobs depend on empty intermediates being present.
func TestStreamEmptyFile(t *testing.T) {
	fs := New()
	writeStream(t, fs, "empty", 1)
	if !fs.Exists("empty") {
		t.Fatal("empty stream does not Exist")
	}
	f, err := fs.Open("empty")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumRecords() != 0 || f.Bytes() != 0 {
		t.Errorf("empty stream metadata: %d recs %d bytes", f.NumRecords(), f.Bytes())
	}
	if it := f.Records(0); it.Next() {
		t.Error("empty stream yielded a record")
	}
}

// TestStreamBadRatio matches the Create contract.
func TestStreamBadRatio(t *testing.T) {
	fs := New()
	if w, err := fs.CreateStream("bad", 0, 0, 0); err == nil {
		w.Close()
		t.Fatal("CreateStream accepted ratio 0")
	}
	if fs.Exists("bad") {
		t.Error("rejected CreateStream left a file")
	}
}

// --- Batch iterator lifecycle on stream-backed files (satellite: the
// BatchIterator implementations must survive early close, double close and
// cancellation between batches; run under -race in CI on both storage
// legs) ---

func TestStreamBatchIteratorLifecycle(t *testing.T) {
	fs := New()
	writeStream(t, fs, "s", 1, streamRecords(10)...) // 3 batches of <=4
	f, err := fs.Open("s")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	it, ok := f.Batches()
	if !ok {
		t.Fatal("stream-backed file has no batch iterator")
	}
	b, err := it.Next()
	if err != nil || b == nil {
		t.Fatalf("first batch = %v, %v", b, err)
	}
	if b.Rows() != 4 || !b.Columnar() || b.Arity() != 3 {
		t.Errorf("batch shape = %d rows, columnar %v, arity %d", b.Rows(), b.Columnar(), b.Arity())
	}
	// Early close mid-stream, then double close.
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if b, err := it.Next(); b != nil || err != nil {
		t.Fatalf("Next after Close = %v, %v", b, err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	// A backend file offers no batch iterator.
	writeFile(t, fs, "mat", 1, "x")
	fm, err := fs.Open("mat")
	if err != nil {
		t.Fatal(err)
	}
	defer fm.Close()
	mit, ok := fm.Batches()
	if mit != nil {
		mit.Close()
	}
	if ok {
		t.Error("backend file claims a batch iterator")
	}
}

func TestStreamBatchIteratorCancellation(t *testing.T) {
	fs := New()
	writeStream(t, fs, "s", 1, streamRecords(10)...)
	f, err := fs.Open("s")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base, ok := f.Batches()
	if !ok {
		t.Fatal("no batch iterator")
	}
	cancelled := fmt.Errorf("ctx cancelled")
	polls := 0
	it := vec.WithCheck(base, func() error {
		polls++
		if polls > 2 {
			return cancelled
		}
		return nil
	})
	var rows int
	for {
		b, err := it.Next()
		if err != nil {
			if err != cancelled {
				t.Fatalf("err = %v", err)
			}
			break
		}
		if b == nil {
			t.Fatal("stream ended before cancellation")
		}
		rows += b.Rows()
	}
	if rows != 8 { // two batches of 4 before the third poll failed
		t.Errorf("rows before cancel = %d, want 8", rows)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamConcurrentReaders: many iterators over one stream snapshot
// must be independent (each has its own scratch buffer); run under -race.
func TestStreamConcurrentReaders(t *testing.T) {
	fs := New()
	recs := streamRecords(500)
	writeStream(t, fs, "shared", 1, recs...)
	f, err := fs.Open("shared")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	done := make(chan error, 8)
	for r := 0; r < 8; r++ {
		go func(start int) {
			it := f.Records(start)
			n := start
			for it.Next() {
				if !bytes.Equal(it.Record(), recs[n]) {
					done <- fmt.Errorf("reader@%d: record %d mismatch", start, n)
					return
				}
				n++
			}
			done <- it.Err()
		}(r * 50)
	}
	for r := 0; r < 8; r++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
