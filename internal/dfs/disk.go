package dfs

import (
	"encoding/binary"
	"fmt"
	"math"

	"rapidanalytics/internal/blockstore"
)

// diskBackend stores every file as one blockstore segment in a sharded
// directory tree. The file's compression ratio rides in the segment's
// footer metadata, so the compression accounting (stored = logical ×
// ratio) is byte-identical to the in-memory backend.
type diskBackend struct {
	store *blockstore.Store
}

// NewDiskBackend opens (creating if needed) a disk backend rooted at dir
// with the given shard count (<= 0 selects blockstore.DefaultShards).
func NewDiskBackend(dir string, shards int) (Backend, error) {
	s, err := blockstore.Open(dir, shards)
	if err != nil {
		return nil, err
	}
	return &diskBackend{store: s}, nil
}

// encodeRatio packs a compression ratio into segment footer metadata.
func encodeRatio(ratio float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(ratio))
	return b[:]
}

// decodeRatio unpacks a ratio, defaulting to 1 for foreign or missing
// metadata so accounting stays sane on hand-placed segments.
func decodeRatio(meta []byte) float64 {
	if len(meta) != 8 {
		return 1
	}
	r := math.Float64frombits(binary.LittleEndian.Uint64(meta))
	if r <= 0 || r > 1 || math.IsNaN(r) {
		return 1
	}
	return r
}

func (b *diskBackend) Create(name string, ratio float64) (FileWriter, error) {
	sw, err := b.store.Create(name)
	if err != nil {
		return nil, err
	}
	sw.SetMeta(encodeRatio(ratio))
	return &diskFileWriter{sw: sw}, nil
}

// diskFileWriter streams records into a segment writer; Close commits the
// segment atomically.
type diskFileWriter struct {
	sw *blockstore.SegmentWriter
}

func (w *diskFileWriter) Append(rec []byte) error {
	w.sw.Append(rec)
	return nil
}

func (w *diskFileWriter) Close() error { return w.sw.Close() }

func (b *diskBackend) Open(name string) (*File, error) {
	seg, err := b.store.Open(name)
	if err != nil {
		return nil, fmt.Errorf("dfs: %w", err)
	}
	return &File{
		name:  name,
		nrec:  int(seg.Records()),
		bytes: seg.Bytes(),
		ratio: decodeRatio(seg.Meta()),
		src:   segSource{seg: seg},
	}, nil
}

func (b *diskBackend) Exists(name string) bool { return b.store.Exists(name) }

func (b *diskBackend) Delete(name string) error { return b.store.Delete(name) }

func (b *diskBackend) List(prefix string) []string { return b.store.List(prefix) }

func (b *diskBackend) TotalStoredBytes(prefix string) int64 {
	var total int64
	for _, name := range b.store.List(prefix) {
		if st, ok := b.store.Stat(name); ok {
			total += storedSize(st.Bytes, decodeRatio(st.Meta))
		}
	}
	return total
}

// segSource adapts an open segment to the File record source.
type segSource struct {
	seg *blockstore.Segment
}

func (s segSource) iterate(start int) RecordIterator {
	if start < 0 {
		start = 0
	}
	return s.seg.Iter(int64(start))
}

func (s segSource) close() error { return s.seg.Close() }
