package dfs

import (
	"errors"
	"reflect"
	"testing"
)

func mustCreate(t *testing.T, fs *FS, name string, ratio float64) *Writer {
	t.Helper()
	w, err := fs.Create(name, ratio)
	if err != nil {
		t.Fatalf("Create(%q): %v", name, err)
	}
	return w
}

func writeFile(t *testing.T, fs *FS, name string, ratio float64, recs ...string) {
	t.Helper()
	w := mustCreate(t, fs, name, ratio)
	for _, r := range recs {
		w.Write([]byte(r))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close(%q): %v", name, err)
	}
}

func TestCreateWriteOpen(t *testing.T) {
	fs := New()
	writeFile(t, fs, "a/b", 1, "hello", "world!")
	f, err := fs.Open("a/b")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if f.Bytes() != 11 || f.NumRecords() != 2 {
		t.Errorf("Bytes=%d NumRecords=%d", f.Bytes(), f.NumRecords())
	}
	if f.StoredBytes() != 11 {
		t.Errorf("StoredBytes = %d", f.StoredBytes())
	}
}

func TestCompressionRatio(t *testing.T) {
	fs := New()
	writeFile(t, fs, "orc", 0.2, string(make([]byte, 1000)))
	f, _ := fs.Open("orc")
	defer f.Close()
	if f.StoredBytes() != 200 {
		t.Errorf("StoredBytes = %d, want 200", f.StoredBytes())
	}
}

// Out-of-range ratios must be rejected, not silently clamped: a clamped
// ratio would corrupt every stored-byte metric downstream.
func TestCreateBadRatio(t *testing.T) {
	fs := New()
	for _, ratio := range []float64{0, -3, 1.5} {
		w, err := fs.Create("bad", ratio)
		if !errors.Is(err, ErrCompressionRatio) {
			t.Errorf("Create(ratio=%g) err = %v, want ErrCompressionRatio", ratio, err)
		}
		if w != nil {
			t.Errorf("Create(ratio=%g) returned a writer", ratio)
			w.Close()
		}
	}
	if fs.Exists("bad") {
		t.Error("rejected Create left a file behind")
	}
}

func TestWriteCopies(t *testing.T) {
	fs := New()
	w := mustCreate(t, fs, "f", 1)
	buf := []byte("abc")
	w.Write(buf)
	buf[0] = 'X'
	w.Close()
	f, _ := fs.Open("f")
	defer f.Close()
	recs, err := f.AllRecords()
	if err != nil {
		t.Fatalf("AllRecords: %v", err)
	}
	if string(recs[0]) != "abc" {
		t.Errorf("record mutated: %q", recs[0])
	}
}

func TestListAndDelete(t *testing.T) {
	fs := New()
	writeFile(t, fs, "x/1", 1, "a")
	writeFile(t, fs, "x/2", 1, "bb")
	writeFile(t, fs, "y/1", 1, "c")
	if got := fs.List("x/"); !reflect.DeepEqual(got, []string{"x/1", "x/2"}) {
		t.Errorf("List = %v", got)
	}
	if got := fs.TotalStoredBytes("x/"); got != 3 {
		t.Errorf("TotalStoredBytes = %d", got)
	}
	fs.Delete("x/1")
	if fs.Exists("x/1") {
		t.Error("x/1 still exists after delete")
	}
	fs.Delete("x/1") // idempotent
	if f, err := fs.Open("x/1"); err == nil {
		f.Close()
		t.Error("Open of deleted file succeeded")
	}
}

func TestRecordsFrom(t *testing.T) {
	fs := New()
	writeFile(t, fs, "f", 1, "r0", "r1", "r2", "r3")
	f, err := fs.Open("f")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	it := f.Records(2)
	var got []string
	for it.Next() {
		got = append(got, string(it.Record()))
	}
	if err := it.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if !reflect.DeepEqual(got, []string{"r2", "r3"}) {
		t.Errorf("Records(2) = %v", got)
	}
}
