package dfs

import (
	"reflect"
	"testing"
)

func TestCreateWriteOpen(t *testing.T) {
	fs := New()
	w := fs.Create("a/b", 1)
	w.Write([]byte("hello"))
	w.Write([]byte("world!"))
	f, err := fs.Open("a/b")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if f.Bytes != 11 || f.NumRecords() != 2 {
		t.Errorf("Bytes=%d NumRecords=%d", f.Bytes, f.NumRecords())
	}
	if f.StoredBytes() != 11 {
		t.Errorf("StoredBytes = %d", f.StoredBytes())
	}
}

func TestCompressionRatio(t *testing.T) {
	fs := New()
	w := fs.Create("orc", 0.2)
	w.Write(make([]byte, 1000))
	f, _ := fs.Open("orc")
	if f.StoredBytes() != 200 {
		t.Errorf("StoredBytes = %d, want 200", f.StoredBytes())
	}
	// Invalid ratios fall back to 1.
	w2 := fs.Create("bad", -3)
	w2.Write(make([]byte, 10))
	f2, _ := fs.Open("bad")
	if f2.StoredBytes() != 10 {
		t.Errorf("StoredBytes = %d, want 10", f2.StoredBytes())
	}
}

func TestWriteCopies(t *testing.T) {
	fs := New()
	w := fs.Create("f", 1)
	buf := []byte("abc")
	w.Write(buf)
	buf[0] = 'X'
	f, _ := fs.Open("f")
	if string(f.Records[0]) != "abc" {
		t.Errorf("record mutated: %q", f.Records[0])
	}
}

func TestListAndDelete(t *testing.T) {
	fs := New()
	fs.Create("x/1", 1).Write([]byte("a"))
	fs.Create("x/2", 1).Write([]byte("bb"))
	fs.Create("y/1", 1).Write([]byte("c"))
	if got := fs.List("x/"); !reflect.DeepEqual(got, []string{"x/1", "x/2"}) {
		t.Errorf("List = %v", got)
	}
	if got := fs.TotalStoredBytes("x/"); got != 3 {
		t.Errorf("TotalStoredBytes = %d", got)
	}
	fs.Delete("x/1")
	if fs.Exists("x/1") {
		t.Error("x/1 still exists after delete")
	}
	fs.Delete("x/1") // idempotent
	if _, err := fs.Open("x/1"); err == nil {
		t.Error("Open of deleted file succeeded")
	}
}
