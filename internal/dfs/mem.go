package dfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// memFile is one in-memory file's live state.
type memFile struct {
	mu      sync.Mutex
	records [][]byte
	bytes   int64
	ratio   float64
}

// memBackend is the default backend: every record a []byte on the heap,
// the original dfs behavior.
type memBackend struct {
	mu    sync.RWMutex
	files map[string]*memFile
}

// NewMemBackend returns a fresh in-memory backend.
func NewMemBackend() Backend {
	return &memBackend{files: map[string]*memFile{}}
}

func (b *memBackend) Create(name string, ratio float64) (FileWriter, error) {
	f := &memFile{ratio: ratio}
	b.mu.Lock()
	b.files[name] = f
	b.mu.Unlock()
	return (*memFileWriter)(f), nil
}

// memFileWriter appends into the live memFile; records become visible to
// snapshots taken by later Opens as they are written (Close is a no-op).
type memFileWriter memFile

func (w *memFileWriter) Append(rec []byte) error {
	w.mu.Lock()
	w.records = append(w.records, rec)
	w.bytes += int64(len(rec))
	w.mu.Unlock()
	return nil
}

func (w *memFileWriter) Close() error { return nil }

func (b *memBackend) Open(name string) (*File, error) {
	b.mu.RLock()
	f, ok := b.files[name]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", name)
	}
	f.mu.Lock()
	recs := f.records
	bytes := f.bytes
	f.mu.Unlock()
	return &File{
		name:  name,
		nrec:  len(recs),
		bytes: bytes,
		ratio: f.ratio,
		// The slice header is the snapshot: appends after Open grow the
		// live file's slice without mutating the records captured here.
		src: memSource(recs),
	}, nil
}

func (b *memBackend) Exists(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.files[name]
	return ok
}

func (b *memBackend) Delete(name string) error {
	b.mu.Lock()
	delete(b.files, name)
	b.mu.Unlock()
	return nil
}

func (b *memBackend) List(prefix string) []string {
	b.mu.RLock()
	var names []string
	for n := range b.files {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	b.mu.RUnlock()
	sort.Strings(names)
	return names
}

func (b *memBackend) TotalStoredBytes(prefix string) int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var total int64
	for n, f := range b.files {
		if strings.HasPrefix(n, prefix) {
			f.mu.Lock()
			total += storedSize(f.bytes, f.ratio)
			f.mu.Unlock()
		}
	}
	return total
}

// memSource is a snapshot of an in-memory file's records.
type memSource [][]byte

func (s memSource) iterate(start int) RecordIterator {
	if start < 0 {
		start = 0
	}
	return &memIterator{recs: s, pos: start}
}

func (s memSource) close() error { return nil }

// memIterator walks a record slice snapshot.
type memIterator struct {
	recs [][]byte
	pos  int
	cur  []byte
}

func (it *memIterator) Next() bool {
	if it.pos >= len(it.recs) {
		return false
	}
	it.cur = it.recs[it.pos]
	it.pos++
	return true
}

func (it *memIterator) Record() []byte { return it.cur }

func (it *memIterator) Err() error { return nil }
