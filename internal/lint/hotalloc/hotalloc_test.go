package hotalloc_test

import (
	"testing"

	"rapidanalytics/internal/lint/hotalloc"
	"rapidanalytics/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "hotalloc_fx")
}
