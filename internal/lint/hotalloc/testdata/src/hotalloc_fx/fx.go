// Package hotalloc_fx exercises the hot-path allocation analyzer: fmt
// formatting, string([]byte) and runtime string concatenation are banned
// inside //rapid:hot functions.
package hotalloc_fx

import "fmt"

//rapid:hot
func SprintfKey(a, b string) string {
	return fmt.Sprintf("%s|%s", a, b) // want "fmt.Sprintf allocates"
}

//rapid:hot
func ConvertValue(v []byte) string {
	return string(v) // want `string\(\[\]byte\) copies`
}

//rapid:hot
func ConcatKey(a, b, c string) string {
	return a + b + c // want "string concatenation allocates"
}

//rapid:hot
func GrowKey(k, part string) string {
	k += part // want `string \+= reallocates`
	return k
}

// ColdSprintf is unannotated — setup-time code may format freely. True
// negative.
func ColdSprintf(a string) string {
	return fmt.Sprintf("%s!", a)
}

//rapid:hot
func AppendKey(buf []byte, s string) []byte {
	return append(buf, s...) // true negative: the pooled idiom
}

//rapid:hot
func ConstPrefix() string {
	return "tg:" + "opt" // true negative: constant-folded at compile time
}

//rapid:hot
func JustifiedKey(v []byte) string {
	//lint:alloc the map index below requires a string key; this is the single materialization point
	return string(v)
}
