// Package hotalloc implements the rapidlint hot-path allocation analyzer.
//
// PR 4's dictionary-encoded data plane earned its allocation wins by moving
// every per-record emit onto pooled AppendEncode/Append* codec APIs. Those
// wins erode one convenience call at a time: a fmt.Sprintf key here, a
// string(buf) conversion there, and the allocs/op gate (BenchmarkMG
// -benchmem) starts creeping. hotalloc makes the convention explicit:
// functions annotated
//
//	//rapid:hot
//
// are per-record paths, and inside them the analyzer flags fmt formatting
// calls, string([]byte) conversions, and non-constant string concatenation.
// Build keys and records with append into scratch buffers (see
// codec.AppendEncode, algebra AppendEncode, ntga plane helpers) instead.
// Where the allocation is forced by the language (e.g. materializing a
// string map key), suppress with
//
//	//lint:alloc <why this allocation is unavoidable or off the per-record path>
package hotalloc

import (
	"go/ast"
	"go/token"
	"strings"

	"rapidanalytics/internal/lint/analysis"
)

// Analyzer flags allocating conveniences inside //rapid:hot functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags fmt.Sprintf/Errorf, string([]byte) conversions and string " +
		"concatenation inside functions annotated //rapid:hot; per-record paths " +
		"must use the pooled Append*/AppendEncode codec APIs or justify with " +
		"//lint:alloc",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

// isHot reports whether the function carries a //rapid:hot annotation in its
// doc comment group.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//rapid:hot") {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	// skip suppresses duplicate reports for the operand chain of an
	// already-reported string concatenation ("a"+b+c is two ADD nodes).
	skip := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			for _, name := range []string{"Sprintf", "Sprint", "Sprintln", "Errorf"} {
				if analysis.IsPkgCall(pass.TypesInfo, e, "fmt", name) {
					pass.Reportf(e.Pos(),
						"fmt.%s allocates on the //rapid:hot path %s; build the record with the pooled Append*/AppendEncode codec APIs, or suppress with //lint:alloc <why>",
						name, fd.Name.Name)
					return true
				}
			}
			if isByteToString(pass, e) {
				pass.Reportf(e.Pos(),
					"string([]byte) copies on the //rapid:hot path %s; keep the value as []byte through the codec APIs, or suppress with //lint:alloc <why>",
					fd.Name.Name)
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isAllocatingConcat(pass, e) && !skip[e] {
				pass.Reportf(e.Pos(),
					"string concatenation allocates on the //rapid:hot path %s; append onto a scratch buffer instead, or suppress with //lint:alloc <why>",
					fd.Name.Name)
				markOperands(e, skip)
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 &&
				analysis.IsStringType(pass.TypesInfo.TypeOf(e.Lhs[0])) {
				pass.Reportf(e.Pos(),
					"string += reallocates on the //rapid:hot path %s; append onto a scratch buffer instead, or suppress with //lint:alloc <why>",
					fd.Name.Name)
			}
		}
		return true
	})
}

// isByteToString reports whether call is a string(x) conversion of a []byte.
func isByteToString(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || !analysis.IsStringType(tv.Type) {
		return false
	}
	return analysis.IsByteSlice(pass.TypesInfo.TypeOf(call.Args[0]))
}

// isAllocatingConcat reports whether e is a string + that survives to
// runtime (constant folding makes "a"+"b" free).
func isAllocatingConcat(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && analysis.IsStringType(tv.Type) && tv.Value == nil
}

// markOperands records e's nested ADD operands so a+b+c reports once, at the
// outermost +.
func markOperands(e *ast.BinaryExpr, skip map[ast.Node]bool) {
	for _, op := range []ast.Expr{e.X, e.Y} {
		if be, ok := op.(*ast.BinaryExpr); ok && be.Op == token.ADD {
			skip[be] = true
			markOperands(be, skip)
		}
	}
}
