// Package driver loads and type-checks Go packages and runs rapidlint
// analyzers over them. Loading shells out to `go list -deps -export`, which
// yields compiled export data for every dependency; the standard library's
// gc importer then type-checks each target package from source against that
// export data. This is the same strategy as x/tools' go/packages
// (NeedExportFile mode) but with zero dependencies outside the standard
// library and the go toolchain, so the linter runs in offline sandboxes.
//
// Interprocedural analyzers (those with FactTypes) see facts flow through
// the import graph: the driver analyzes packages in dependency order,
// running fact-producing analyzers over in-module dependencies too
// (diagnostics discarded), and carries each package's exported facts to its
// dependents in serialized form — the same gob wire format the vet
// unitchecker protocol writes to .vetx files — so the serialization
// boundary is exercised on every run, not only under go vet.
//
// By default only non-test files are analyzed: the invariants rapidlint
// enforces (determinism, cancellation, hot-path allocation, error taxonomy)
// are production-code properties. Options.Tests additionally loads each
// package's test variant (`go list -test`) so the lifecycle analyzers
// (ctxloop, closecheck) can police _test.go files, where a leaked iterator
// hides until the -race suite hangs.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"rapidanalytics/internal/lint/analysis"
)

// Options configures a load.
type Options struct {
	// Tests loads each matched package's test variant too: _test.go files
	// are parsed and type-checked (internal and external test packages),
	// and analyzed by the test-safe analyzer subset, with diagnostics
	// reported only at positions inside _test.go files.
	Tests bool
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	ForTest    string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Imports    []string
	ImportMap  map[string]string
	Error      *listError
}

type listError struct {
	Pos string
	Err string
}

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the package's import path as listed; test variants
	// carry go list's bracketed suffix ("pkg [pkg.test]").
	ImportPath string
	// BasePath is ImportPath with any test-variant suffix stripped — the
	// path the package was type-checked under and its facts are keyed by.
	BasePath string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources (test files included for test variants).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds type information for Files.
	Info *types.Info
	// TestVariant marks internal/external test packages: they run the
	// test-safe analyzer subset and report only _test.go positions.
	TestVariant bool
	// Target marks packages whose diagnostics are reported; dependencies
	// loaded only for fact computation are not targets.
	Target bool

	// deps are the listed import paths of loaded packages this one
	// (directly) imports, used to assemble the visible fact environment.
	deps []string
}

// Diagnostic is one unsuppressed finding, located and attributed.
type Diagnostic struct {
	// Position is the finding's resolved file:line:column.
	Position token.Position
	// Analyzer names the checker that reported it.
	Analyzer string
	// Message is the finding text.
	Message string
}

// String renders the diagnostic as "file:line:col: analyzer: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Load lists, parses and type-checks the packages matching patterns,
// resolving them relative to dir ("" = current directory), with default
// options. Packages that fail to build are reported as errors; an empty
// match set is not. The returned slice is in dependency order (imports
// before importers) and includes in-module dependencies of the matched
// packages as non-Target entries so interprocedural facts can be computed
// for them.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadOpts(dir, Options{}, patterns...)
}

// LoadOpts is Load with explicit options.
func LoadOpts(dir string, opts Options, patterns ...string) ([]*Package, error) {
	args := []string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Name,ForTest,GoFiles,Export,DepOnly,Standard,Imports,ImportMap,Error",
	}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	byPath := map[string]*listPackage{}
	var candidates []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("driver: package %s does not build: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || len(p.GoFiles) == 0 || strings.HasSuffix(p.ImportPath, ".test") {
			// Standard-library packages exist to the analysis only as
			// export data; ".test" mains are generated harness code.
			continue
		}
		q := p
		byPath[q.ImportPath] = &q
		candidates = append(candidates, &q)
	}

	order, err := topoSort(candidates, byPath)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// One shared importer serves every package without import renames; its
	// internal cache then loads each dependency's export data once.
	shared := newExportImporter(fset, exports, nil)

	var pkgs []*Package
	for _, t := range order {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(t.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("driver: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		imp := shared
		if len(t.ImportMap) > 0 {
			// External test packages import their tested package's test
			// variant under the plain path; a dedicated importer applies
			// the rename without poisoning the shared importer's cache.
			imp = newExportImporter(fset, exports, t.ImportMap)
		}
		conf := types.Config{Importer: imp}
		base := basePath(t.ImportPath)
		pkg, err := conf.Check(base, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("driver: type-checking %s: %w", t.ImportPath, err)
		}
		var deps []string
		seen := map[string]bool{}
		for _, im := range t.Imports {
			if mapped, ok := t.ImportMap[im]; ok {
				im = mapped
			}
			if byPath[im] != nil && !seen[im] {
				seen[im] = true
				deps = append(deps, im)
			}
		}
		sort.Strings(deps)
		pkgs = append(pkgs, &Package{
			ImportPath:  t.ImportPath,
			BasePath:    base,
			Fset:        fset,
			Files:       files,
			Pkg:         pkg,
			Info:        info,
			TestVariant: t.ForTest != "",
			Target:      !t.DepOnly,
			deps:        deps,
		})
	}
	return pkgs, nil
}

// basePath strips go list's test-variant suffix ("pkg [pkg.test]" → "pkg").
func basePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// newExportImporter returns a gc importer resolving import paths through
// importMap (nil = identity) and then the export-data file map.
func newExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// topoSort orders candidates dependencies-first (deterministically: ties
// broken by import path), so facts are always computed before any importer
// consumes them. The go toolchain guarantees acyclicity; a cycle is
// reported rather than silently dropped.
func topoSort(candidates []*listPackage, byPath map[string]*listPackage) ([]*listPackage, error) {
	sorted := append([]*listPackage(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var out []*listPackage
	var visit func(p *listPackage) error
	visit = func(p *listPackage) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("driver: import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		var deps []string
		for _, im := range p.Imports {
			if mapped, ok := p.ImportMap[im]; ok {
				im = mapped
			}
			deps = append(deps, im)
		}
		sort.Strings(deps)
		for _, im := range deps {
			if d := byPath[im]; d != nil {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = 2
		out = append(out, p)
		return nil
	}
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Analyze runs every analyzer over the package, applies suppression
// directives, and returns the surviving diagnostics in source order. The
// fact environment supplies imported facts and receives exported ones; nil
// runs the package fact-blind (the pre-interprocedural behavior).
// Malformed directives (no justification) are reported under the
// pseudo-analyzer "lint".
func Analyze(p *Package, analyzers []*analysis.Analyzer, facts *analysis.Env) ([]Diagnostic, error) {
	sup := analysis.NewSuppressor(p.Fset, p.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.Info,
			Facts:     facts,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if sup.Suppressed(a.Name, d.Pos) {
				return
			}
			out = append(out, Diagnostic{
				Position: p.Fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("driver: analyzer %s on %s: %w", a.Name, p.ImportPath, err)
		}
	}
	for _, d := range sup.Problems() {
		out = append(out, Diagnostic{
			Position: p.Fset.Position(d.Pos),
			Analyzer: "lint",
			Message:  d.Message,
		})
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// factAnalyzers filters to the interprocedural (fact-producing) subset,
// deduplicated by name — all that needs to run over non-target packages.
func factAnalyzers(sets ...[]*analysis.Analyzer) []*analysis.Analyzer {
	seen := map[string]bool{}
	var out []*analysis.Analyzer
	for _, set := range sets {
		for _, a := range set {
			if len(a.FactTypes) > 0 && !seen[a.Name] {
				seen[a.Name] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// registerFactTypes registers every analyzer's fact prototypes for
// serialization.
func registerFactTypes(sets ...[]*analysis.Analyzer) {
	for _, set := range sets {
		for _, a := range set {
			analysis.RegisterFactTypes(a.FactTypes...)
		}
	}
}

// RunAll analyzes the loaded packages in their dependency order:
// fact-producing analyzers over non-target dependencies, the full suite
// over production targets, and testAnalyzers over test variants (reported
// only at _test.go positions). Each package's exported facts are gob-
// serialized and decoded back into every dependent's environment, so the
// cross-package flow exercises the same wire format go vet's .vetx files
// use. Diagnostics come back in deterministic (file, position) order.
func RunAll(pkgs []*Package, analyzers, testAnalyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	registerFactTypes(analyzers, testAnalyzers)
	factOnly := factAnalyzers(analyzers, testAnalyzers)
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	closures := map[string][]string{} // listed path → transitive dep listed paths
	var closure func(p *Package) []string
	closure = func(p *Package) []string {
		if c, ok := closures[p.ImportPath]; ok {
			return c
		}
		seen := map[string]bool{}
		var all []string
		for _, dep := range p.deps {
			d := byPath[dep]
			if d == nil || seen[dep] {
				continue
			}
			for _, t := range closure(d) {
				if !seen[t] {
					seen[t] = true
					all = append(all, t)
				}
			}
			if !seen[dep] {
				seen[dep] = true
				all = append(all, dep)
			}
		}
		sort.Strings(all) // plain paths sort before their test variants
		closures[p.ImportPath] = all
		return all
	}

	encoded := map[string][]byte{}
	var out []Diagnostic
	for _, p := range pkgs {
		env := analysis.NewEnv()
		for _, dep := range closure(p) {
			if data := encoded[dep]; data != nil {
				if err := env.Decode(data); err != nil {
					return nil, fmt.Errorf("driver: facts of %s for %s: %w", dep, p.ImportPath, err)
				}
			}
		}
		var as []*analysis.Analyzer
		switch {
		case p.TestVariant:
			as = testAnalyzers
		case p.Target:
			as = analyzers
		default:
			as = factOnly
		}
		ds, err := Analyze(p, as, env)
		if err != nil {
			return nil, err
		}
		if p.Target || p.TestVariant {
			for _, d := range ds {
				if p.TestVariant && !strings.HasSuffix(d.Position.Filename, "_test.go") {
					// The variant re-includes production files; their
					// findings are the plain package's to report.
					continue
				}
				out = append(out, d)
			}
		}
		data, err := env.EncodePackage(p.BasePath)
		if err != nil {
			return nil, err
		}
		encoded[p.ImportPath] = data
	}
	sortDiagnostics(out)
	return out, nil
}

// Run loads the patterns and analyzes every target package, returning all
// diagnostics in deterministic (package, position) order.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Diagnostic, error) {
	return RunOpts(dir, Options{}, analyzers, nil, patterns...)
}

// RunOpts is Run with explicit options; testAnalyzers is the subset applied
// to _test.go files when opts.Tests is set (ignored otherwise).
func RunOpts(dir string, opts Options, analyzers, testAnalyzers []*analysis.Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := LoadOpts(dir, opts, patterns...)
	if err != nil {
		return nil, err
	}
	if !opts.Tests {
		testAnalyzers = nil
	}
	return RunAll(pkgs, analyzers, testAnalyzers)
}
