// Package driver loads and type-checks Go packages and runs rapidlint
// analyzers over them. Loading shells out to `go list -deps -export`, which
// yields compiled export data for every dependency; the standard library's
// gc importer then type-checks each target package from source against that
// export data. This is the same strategy as x/tools' go/packages
// (NeedExportFile mode) but with zero dependencies outside the standard
// library and the go toolchain, so the linter runs in offline sandboxes.
//
// Only non-test files are analyzed: the invariants rapidlint enforces
// (determinism, cancellation, hot-path allocation, error taxonomy) are
// production-code properties.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"rapidanalytics/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Pos string
	Err string
}

// Package is one loaded, type-checked target package.
type Package struct {
	// ImportPath is the package's import path.
	ImportPath string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds type information for Files.
	Info *types.Info
}

// Diagnostic is one unsuppressed finding, located and attributed.
type Diagnostic struct {
	// Position is the finding's resolved file:line:column.
	Position token.Position
	// Analyzer names the checker that reported it.
	Analyzer string
	// Message is the finding text.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Load lists, parses and type-checks the packages matching patterns,
// resolving them relative to dir ("" = current directory). Packages that
// fail to build are reported as errors; an empty match set is not.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("driver: package %s does not build: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("driver: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("driver: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// Analyze runs every analyzer over the package, applies suppression
// directives, and returns the surviving diagnostics in source order.
// Malformed directives (no justification) are reported under the
// pseudo-analyzer "lint".
func Analyze(p *Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	sup := analysis.NewSuppressor(p.Fset, p.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if sup.Suppressed(a.Name, d.Pos) {
				return
			}
			out = append(out, Diagnostic{
				Position: p.Fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("driver: analyzer %s on %s: %w", a.Name, p.ImportPath, err)
		}
	}
	for _, d := range sup.Problems() {
		out = append(out, Diagnostic{
			Position: p.Fset.Position(d.Pos),
			Analyzer: "lint",
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// Run loads the patterns and analyzes every target package, returning all
// diagnostics in deterministic (package, position) order.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, p := range pkgs {
		ds, err := Analyze(p, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	return out, nil
}
