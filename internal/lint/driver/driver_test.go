package driver_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rapidanalytics/internal/lint/analysis"
	"rapidanalytics/internal/lint/closecheck"
	"rapidanalytics/internal/lint/driver"
)

// writeTree materialises a file tree under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadAgainstExportData builds a throwaway module whose packages
// import the standard library, so type-checking can only succeed by
// reading compiled export data through `go list -deps -export` — there is
// no source fallback. The module's dep package path ends in /dfs, putting
// its closer type under closecheck's policed packages, which lets the same
// fixture prove the interprocedural half: facts computed for the dep
// (Consume closes its argument) must reach the importing package, leaving
// exactly one genuine leak to report.
func TestLoadAgainstExportData(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go toolchain; skipped in -short")
	}
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module leakmod\n\ngo 1.23\n",
		"dfs/dfs.go": `package dfs

import "fmt"

type File struct{ open bool }

func Open(name string) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("empty name")
	}
	return &File{open: true}, nil
}

func (f *File) Read() int { return 0 }

func (f *File) Close() error { f.open = false; return nil }

// Consume takes ownership: callers that hand a File to Consume are done
// with it (closecheck learns this as a ClosesFact).
func Consume(f *File) { f.Close() }
`,
		"app/app.go": `package app

import (
	"strings"

	"leakmod/dfs"
)

// Clean transfers its file to the dep's disposer; with the dep's facts
// visible this path is silent.
func Clean(name string) int {
	f, err := dfs.Open(strings.TrimSpace(name))
	if err != nil {
		return 0
	}
	dfs.Consume(f)
	return 1
}

// Leaky drops the file on the floor.
func Leaky(name string) int {
	f, err := dfs.Open(name)
	if err != nil {
		return 0
	}
	return f.Read()
}
`,
	})

	pkgs, err := driver.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	if len(pkgs) != 2 || paths[0] != "leakmod/dfs" || paths[1] != "leakmod/app" {
		t.Fatalf("loaded %v, want [leakmod/dfs leakmod/app] (dependency order)", paths)
	}
	for _, p := range pkgs {
		if p.Pkg == nil || p.Info == nil {
			t.Fatalf("%s not type-checked", p.ImportPath)
		}
	}

	diags, err := driver.RunAll(pkgs, []*analysis.Analyzer{closecheck.Analyzer}, nil)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the Leaky finding", diags)
	}
	d := diags[0]
	if !strings.HasSuffix(d.Position.Filename, "app.go") || d.Analyzer != "closecheck" {
		t.Errorf("diagnostic = %v, want closecheck in app.go", d)
	}
	if !strings.Contains(d.Message, "f") {
		t.Errorf("diagnostic message %q does not name the leaked variable", d.Message)
	}
}

// TestLoadReportsBrokenPackages: a package that does not compile must fail
// the load with an attributed error, not silently drop out of the set.
func TestLoadReportsBrokenPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go toolchain; skipped in -short")
	}
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":     "module brokenmod\n\ngo 1.23\n",
		"bad/bad.go": "package bad\n\nfunc f() { undefined() }\n",
		"good/g.go":  "package good\n\nfunc G() int { return 1 }\n",
	})
	if _, err := driver.Load(dir, "./..."); err == nil {
		t.Fatal("Load of a broken module succeeded")
	} else if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error %q does not attribute the broken package", err)
	}
}
