// Package helper is the cross-package half of the cachekey fixtures: its
// key-building and inserting functions carry DerivesFact and KeyParamFact
// summaries that the fixture package exercises through serialized facts.
package helper

import "rapidanalytics/internal/plancache"

// MakeKey folds the dataset version into a namespaced key; its DerivesFact
// lets callers insert through it without repeating the fold.
func MakeKey(system string, version uint64, query string) string {
	return plancache.VersionedKey(system, version, query)
}

// InsertAs inserts under the caller's key: the KeyParamFact on it moves
// the derivation obligation to every call site.
func InsertAs(c *plancache.Cache, key string, v any) {
	c.Put(key, v)
}
