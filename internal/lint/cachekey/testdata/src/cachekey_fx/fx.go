// Package cachekey_fx exercises the cache-version analyzer: every
// plancache insert must fold the dataset version into its key via
// plancache.VersionedKey, directly or through summarized helpers.
package cachekey_fx

import (
	"fmt"

	"rapidanalytics/internal/lint/cachekey/testdata/src/cachekey_fx/helper"
	"rapidanalytics/internal/plancache"
)

// CacheConstant pins a plan under a version-blind key: caught.
func CacheConstant(c *plancache.Cache, plan any) {
	c.Put("all-plans", plan) // want "does not go through plancache.VersionedKey"
}

// DirectFold is the baseline true negative.
func DirectFold(c *plancache.Cache, version uint64, query string, plan any) {
	c.Put(plancache.VersionedKey("plan", version, query), plan)
}

// ComposedFold derives through concatenation, formatting and a local
// variable: still a true negative.
func ComposedFold(c *plancache.Cache, version uint64, query string, plan any) {
	k := "agg\x00" + plancache.VersionedKey("plan", version, query)
	tagged := fmt.Sprintf("q|%s", k)
	c.Put(tagged, plan)
}

// RawInsert takes the key from its caller; as a package-level function its
// KeyParamFact moves the obligation to every call site, so the insert
// itself is clean.
func RawInsert(c *plancache.Cache, key string, plan any) {
	c.Put(key, plan)
}

// CallsRawInsertBadly owes RawInsert a derived key and pays with a bare
// literal: caught at the call site via the chained fact. (Passing one's
// own parameter would chain the obligation further instead.)
func CallsRawInsertBadly(c *plancache.Cache, plan any) {
	RawInsert(c, "latest-query", plan) // want "key passed to RawInsert"
}

// CallsRawInsertWell settles the obligation with a fold: true negative.
func CallsRawInsertWell(c *plancache.Cache, version uint64, query string, plan any) {
	RawInsert(c, plancache.VersionedKey("plan", version, query), plan)
}

// HelperFold derives through the helper package's summarized key builder:
// a true negative only reachable through serialized DerivesFact.
func HelperFold(c *plancache.Cache, version uint64, query string, plan any) {
	c.Put(helper.MakeKey("plan", version, query), plan)
}

// HelperInsertBadly feeds a raw literal to the helper's inserting
// function: caught at the call site via serialized KeyParamFact.
func HelperInsertBadly(c *plancache.Cache, plan any) {
	helper.InsertAs(c, "hot-result", plan) // want "key passed to InsertAs"
}

// HelperInsertWell composes both helper facts: true negative.
func HelperInsertWell(c *plancache.Cache, version uint64, query string, plan any) {
	helper.InsertAs(c, helper.MakeKey("plan", version, query), plan)
}

// box wraps a cache behind a method — exactly the shape that flows through
// interfaces, where fact chains break.
type box struct {
	c *plancache.Cache
}

// Put shows why methods get no parameter trust: the insert must fold the
// version itself.
func (b *box) Put(key string, plan any) {
	b.c.Put(key, plan) // want "does not go through plancache.VersionedKey"
}

// PutVersioned folds at the insert inside the method: true negative.
func (b *box) PutVersioned(version uint64, key string, plan any) {
	b.c.Put(plancache.VersionedKey("box", version, key), plan)
}

// SizedRaw inserts into the sized cache without a fold: caught.
func SizedRaw(sc *plancache.SizedCache, plan any) {
	sc.Put("hot-result", plan, 64) // want "does not go through plancache.VersionedKey"
}

// SizedFolded is the sized-cache true negative.
func SizedFolded(sc *plancache.SizedCache, version uint64, query string, plan any) {
	sc.Put(helper.MakeKey("res", version, query), plan, 64)
}

// Pinned documents a deliberately version-independent slot; the justified
// directive keeps the analyzer quiet.
func Pinned(c *plancache.Cache, plan any) {
	c.Put("pinned-default-plan", plan) //lint:ignore cachekey the default plan is rebuilt on every load, never served stale
}
