package cachekey_test

import (
	"testing"

	"rapidanalytics/internal/lint/cachekey"
	"rapidanalytics/internal/lint/linttest"
)

func TestCachekey(t *testing.T) {
	linttest.Run(t, cachekey.Analyzer, "cachekey_fx")
}
