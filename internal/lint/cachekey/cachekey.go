// Package cachekey defines the cache-version analyzer: every insert into a
// plancache cache (Cache.Put, SizedCache.Put) must use a key derived
// through plancache.VersionedKey, so cached plans and results can never
// survive the dataset version that produced them.
//
// An expression derives the version when it is a VersionedKey call, any
// expression built from one (concatenation, formatting, conversion), a
// local variable assigned such an expression, or a call to a function
// whose serialized summary says its result derives. Two fact kinds carry
// the analysis across package boundaries:
//
//   - DerivesFact on a function records which results are version-derived
//     on every return path — key-building helpers compose.
//   - KeyParamFact on a package-level function records which parameters
//     flow into a cache insert as the key; every static call site must
//     pass a derived key (or chain its own parameter, re-exporting the
//     obligation).
//
// Methods get no such trust: method calls travel through interfaces where
// fact flow breaks, so a method that inserts must fold the version into
// the key itself — before or at the insert.
package cachekey

import (
	"go/ast"
	"go/types"
	"sort"

	"rapidanalytics/internal/lint/analysis"
)

// Analyzer reports cache inserts whose key skips version folding.
var Analyzer = &analysis.Analyzer{
	Name:      "cachekey",
	Doc:       "plancache inserts must derive their key through plancache.VersionedKey so stale versions can never be served",
	FactTypes: []analysis.Fact{(*DerivesFact)(nil), (*KeyParamFact)(nil)},
	Run:       run,
}

// DerivesFact marks a function whose listed result indices are
// version-derived on every return path.
type DerivesFact struct {
	// Results are the indices of the version-derived results.
	Results []int
}

// AFact marks DerivesFact as serializable analyzer currency.
func (*DerivesFact) AFact() {}

// KeyParamFact marks a package-level function whose listed parameters are
// used as cache-insert keys; callers owe a derived key at those positions.
type KeyParamFact struct {
	// Params are the indices of the parameters used as insert keys.
	Params []int
}

// AFact marks KeyParamFact as serializable analyzer currency.
func (*KeyParamFact) AFact() {}

func run(pass *analysis.Pass) error {
	// The plancache package itself implements the caches; its internals
	// are not inserts.
	if analysis.PkgPathSuffix(pass.Pkg, "plancache") {
		return nil
	}
	funcs := pass.Funcs()

	// Phase 1: summaries to a fixpoint — local derivation maps feed
	// DerivesFact, insert sites feed KeyParamFact, and both compose
	// through intra-package call chains.
	analysis.Fixpoint(len(funcs)+2, func() bool {
		changed := false
		for _, fb := range funcs {
			c := newChecker(pass, fb, true)
			c.analyze()
			if c.exportFacts() {
				changed = true
			}
		}
		return changed
	})

	// Phase 2: diagnostics.
	for _, fb := range funcs {
		c := newChecker(pass, fb, false)
		c.analyze()
	}
	return nil
}

// checker analyzes one function: builds the local derivation map, then
// judges every insert site and key-param call site.
type checker struct {
	pass    *analysis.Pass
	fb      analysis.FuncBody
	summary bool

	derivedVars  map[*types.Var]bool
	trustedParam map[*types.Var]int // param → index; package-level funcs only
	keyParams    map[int]bool       // param indices owed a derived key
	derivesAll   map[int]bool       // result indices derived on every return
	sawReturn    bool
}

func newChecker(pass *analysis.Pass, fb analysis.FuncBody, summary bool) *checker {
	c := &checker{
		pass:         pass,
		fb:           fb,
		summary:      summary,
		derivedVars:  map[*types.Var]bool{},
		trustedParam: map[*types.Var]int{},
		keyParams:    map[int]bool{},
		derivesAll:   map[int]bool{},
	}
	// Only package-level functions may defer the obligation to callers:
	// method calls can travel through interfaces, where facts cannot.
	if sig, ok := fb.Obj.Type().(*types.Signature); ok && sig.Recv() == nil {
		for i := 0; i < sig.Params().Len(); i++ {
			c.trustedParam[sig.Params().At(i)] = i
		}
	}
	return c
}

func (c *checker) analyze() {
	body := c.fb.Decl.Body
	if body == nil {
		return
	}
	// Local derivation map to a fixpoint: assignment order is free.
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) != len(as.Lhs) {
				return true
			}
			for i, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				v := c.objOf(id)
				if v == nil || c.derivedVars[v] {
					continue
				}
				if c.derives(as.Rhs[i]) {
					c.derivedVars[v] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	// Judge inserts, key-param call sites, and returns.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.ReturnStmt:
			c.sawReturn = true
			for i, e := range n.Results {
				if !c.sawReturnYet(i) {
					c.derivesAll[i] = c.derives(e)
				} else if !c.derives(e) {
					c.derivesAll[i] = false
				}
			}
		}
		return true
	})
}

// sawReturnYet reports whether result index i has been judged before (the
// map entry exists once any return mentioned it).
func (c *checker) sawReturnYet(i int) bool {
	_, ok := c.derivesAll[i]
	return ok
}

// checkCall judges one call: a cache insert's key argument, or the
// arguments owed to a callee's key parameters.
func (c *checker) checkCall(call *ast.CallExpr) {
	if keyArg, ok := c.insertKey(call); ok {
		c.requireDerived(keyArg, "cache insert key")
		return
	}
	callee := analysis.StaticCallee(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	var kp KeyParamFact
	if !c.pass.ImportObjectFact(callee, &kp) {
		return
	}
	sig, _ := callee.Type().(*types.Signature)
	for i, arg := range call.Args {
		pi := i
		if sig != nil && sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if containsInt(kp.Params, pi) {
			c.requireDerived(arg, "key passed to "+callee.Name())
		}
	}
}

// requireDerived reports (or, for a trusted parameter, re-exports the
// obligation) when the key expression is not version-derived.
func (c *checker) requireDerived(keyArg ast.Expr, what string) {
	if c.derives(keyArg) {
		return
	}
	if v := c.bareParam(keyArg); v != nil {
		if i, ok := c.trustedParam[v]; ok {
			c.keyParams[i] = true // obligation moves to our callers
			return
		}
	}
	if !c.summary {
		c.pass.Reportf(keyArg.Pos(),
			"%s does not go through plancache.VersionedKey; fold the dataset version into the key or the cache serves stale plans after a load",
			what)
	}
}

// bareParam unwraps conversions and parentheses down to a parameter
// identifier, or nil.
func (c *checker) bareParam(e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			// A type conversion with one operand is transparent.
			if len(x.Args) == 1 {
				if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
					e = x.Args[0]
					continue
				}
			}
			return nil
		case *ast.Ident:
			if v, ok := c.pass.TypesInfo.Uses[x].(*types.Var); ok {
				if _, isParam := c.trustedParam[v]; isParam {
					return v
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// insertKey recognizes Cache.Put / SizedCache.Put calls and returns the
// key argument.
func (c *checker) insertKey(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) < 2 {
		return nil, false
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, false
	}
	recv := s.Recv()
	if analysis.IsNamed(recv, "plancache", "Cache") || analysis.IsNamed(recv, "plancache", "SizedCache") {
		return call.Args[0], true
	}
	return nil, false
}

// derives reports whether e is version-derived: a VersionedKey call, a
// composition containing one, a derived local, or a call whose summary
// derives.
func (c *checker) derives(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if c.isVersionedKey(e) {
			return true
		}
		if callee := analysis.StaticCallee(c.pass.TypesInfo, e); callee != nil {
			var df DerivesFact
			if c.pass.ImportObjectFact(callee, &df) && containsInt(df.Results, 0) {
				return true
			}
		}
		// Formatting, concatenation helpers, conversions: derivation
		// survives any call that consumes a derived operand.
		for _, arg := range e.Args {
			if c.derives(arg) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return c.derives(e.X) || c.derives(e.Y)
	case *ast.Ident:
		if v, ok := c.pass.TypesInfo.Uses[e].(*types.Var); ok {
			return c.derivedVars[v]
		}
		return false
	default:
		return false
	}
}

// isVersionedKey recognizes the root derivation: plancache.VersionedKey.
func (c *checker) isVersionedKey(call *ast.CallExpr) bool {
	callee := analysis.StaticCallee(c.pass.TypesInfo, call)
	if callee == nil {
		return false
	}
	return callee.Name() == "VersionedKey" && callee.Pkg() != nil &&
		analysis.PkgPathSuffix(callee.Pkg(), "plancache")
}

// exportFacts publishes this function's summaries; reports whether either
// fact changed.
func (c *checker) exportFacts() bool {
	changed := false
	if len(c.keyParams) > 0 {
		params := sortedKeys(c.keyParams)
		var prev KeyParamFact
		if !c.pass.ImportObjectFact(c.fb.Obj, &prev) || !equalInts(prev.Params, params) {
			c.pass.ExportObjectFact(c.fb.Obj, &KeyParamFact{Params: params})
			changed = true
		}
	}
	if c.sawReturn {
		var results []int
		for i, all := range c.derivesAll {
			if all {
				results = append(results, i)
			}
		}
		if len(results) > 0 {
			sort.Ints(results)
			var prev DerivesFact
			if !c.pass.ImportObjectFact(c.fb.Obj, &prev) || !equalInts(prev.Results, results) {
				c.pass.ExportObjectFact(c.fb.Obj, &DerivesFact{Results: results})
				changed = true
			}
		}
	}
	return changed
}

func (c *checker) objOf(id *ast.Ident) *types.Var {
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
