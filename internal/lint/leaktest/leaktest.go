// Package leaktest fails tests that leave goroutines behind. A leaked
// goroutine — a consumer abandoned on a shared-scan channel, a map task
// that outlives its cancelled job — is invisible to a passing test and
// surfaces later as a -race report or a hung suite. Checking at test end
// turns the leak into an attributed failure with the goroutine's stack.
//
// Usage, first thing in the test body:
//
//	func TestConcurrentThing(t *testing.T) {
//		leaktest.Check(t)
//		...
//	}
//
// Check registers a t.Cleanup, so it runs after the test function (and any
// later-registered cleanups) finish. Goroutines that are part of the
// harness — the testing runner, parallel siblings, signal handling — are
// ignored; everything else still running after a grace period fails the
// test. The grace period absorbs goroutines that are mid-exit when the
// test returns (a drained worker between its last send and its return).
package leaktest

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// patience bounds how long Check waits for straggler goroutines to finish
// exiting before declaring them leaked.
const patience = 2 * time.Second

// Check arranges for t to fail if goroutines beyond the test harness are
// still running when the test (including its cleanups) completes.
func Check(t testing.TB) {
	t.Helper()
	t.Cleanup(func() {
		if stacks := Leaked(patience); len(stacks) > 0 {
			t.Errorf("leaktest: %d leaked goroutine(s):\n\n%s",
				len(stacks), strings.Join(stacks, "\n\n"))
		}
	})
}

// Leaked polls until every non-harness goroutine has exited or the grace
// period elapses, then returns the stacks of those remaining (nil when
// clean). Exposed for the helper's own tests; production tests use Check.
func Leaked(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		stacks := interesting()
		if len(stacks) == 0 || time.Now().After(deadline) {
			return stacks
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// interesting snapshots all goroutine stacks and filters out the calling
// goroutine and known harness goroutines.
func interesting() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for i, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || i == 0 { // the first stack is this goroutine's
			continue
		}
		if harness(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// harness reports whether a goroutine stack belongs to the test harness or
// the runtime rather than code under test.
var harnessMarkers = []string{
	"testing.Main(",               // the process main goroutine
	"testing.(*M).",               // M.Run machinery
	"testing.runTests",            // top-level test loop
	"testing.tRunner(",            // a sibling test's runner (t.Parallel)
	"testing.(*T).Parallel(",      // a parallel test waiting its turn
	"testing.runFuzzing(",         // fuzz harness
	"testing.(*F).Fuzz(",          // fuzz workers
	"os/signal.signal_recv",       // signal delivery
	"os/signal.loop(",             // signal forwarding loop
	"runtime.ensureSigM",          // signal mask goroutine
	"runtime.ReadTrace",           // execution tracer reader
	"runtime/pprof.profileWriter", // active CPU profile
}

func harness(stack string) bool {
	for _, m := range harnessMarkers {
		if strings.Contains(stack, m) {
			return true
		}
	}
	return false
}
