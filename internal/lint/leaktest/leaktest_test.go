package leaktest

import (
	"strings"
	"testing"
	"time"
)

// TestDetectsBlockedGoroutine pins the positive case: a goroutine parked
// on a channel no one will ever close must be reported with its stack.
// Leaked is called directly (Check would fail this test on purpose).
func TestDetectsBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started

	stacks := Leaked(50 * time.Millisecond)
	if len(stacks) == 0 {
		t.Fatal("Leaked found nothing with a goroutine parked on a channel")
	}
	found := false
	for _, s := range stacks {
		if strings.Contains(s, "leaktest.TestDetectsBlockedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Errorf("leaked stacks do not name the spawning test:\n%s", strings.Join(stacks, "\n\n"))
	}

	close(release)
	if stacks := Leaked(patience); len(stacks) != 0 {
		t.Errorf("goroutine still reported after release:\n%s", strings.Join(stacks, "\n\n"))
	}
}

// TestGracePeriodAbsorbsStragglers: a goroutine that exits shortly after
// the test body returns is not a leak — Leaked must wait it out.
func TestGracePeriodAbsorbsStragglers(t *testing.T) {
	go time.Sleep(30 * time.Millisecond)
	if stacks := Leaked(patience); len(stacks) != 0 {
		t.Errorf("straggler within the grace period reported as leaked:\n%s",
			strings.Join(stacks, "\n\n"))
	}
}

// TestCleanTestPasses wires the real Check into a test that spawns and
// joins a goroutine; the registered cleanup must find nothing.
func TestCleanTestPasses(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
