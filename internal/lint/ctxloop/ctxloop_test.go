package ctxloop_test

import (
	"testing"

	"rapidanalytics/internal/lint/ctxloop"
	"rapidanalytics/internal/lint/linttest"
)

func TestCtxloop(t *testing.T) {
	linttest.Run(t, ctxloop.Analyzer, "mapred")
}
