// Package ctxloop implements the rapidlint cancellation analyzer.
//
// The serving subsystem (PR 1) promises that a canceled request stops doing
// work promptly: every long mapred loop — map record loops, combine group
// loops, shuffle concatenation, reduce group loops, output materialization —
// must poll cancellation on some path, conventionally every
// ctxCheckInterval iterations via c.err() / abort.aborted() / a check()
// closure. A loop that runs user code (Mapper.Map, Reducer.Reduce) or writes
// job output (dfs.Writer, a mapred.Emit value) without any such poll is a
// cancellation blind spot: a hot partition keeps burning CPU long after the
// client hung up.
//
// ctxloop is scoped to packages named "mapred" (the execution engine; its
// operators' own loops run under mapred's checks). Only the outermost
// unchecked loop of a nest is reported. Suppress a provably short loop with
//
//	//lint:nocancel <why the iteration count is bounded and small>
package ctxloop

import (
	"go/ast"
	"go/token"
	"go/types"

	"rapidanalytics/internal/lint/analysis"
)

// Analyzer flags mapred work loops with no cancellation check on any path.
var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "flags loops in package mapred that run mappers/reducers or write job " +
		"output without polling cancellation (c.err(), abort.aborted(), check(), " +
		"or a ctx.Done() select); poll every ctxCheckInterval iterations or " +
		"justify with //lint:nocancel",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "mapred" {
		return nil
	}
	pass.Preorder(func(n ast.Node) bool {
		var body *ast.BlockStmt
		var pos token.Pos
		switch l := n.(type) {
		case *ast.ForStmt:
			body, pos = l.Body, l.For
		case *ast.RangeStmt:
			body, pos = l.Body, l.For
		default:
			return true
		}
		what := workIn(pass.TypesInfo, body)
		if what == "" || hasCancelCheck(body) {
			return true // descend: an inner loop may still be a blind spot
		}
		pass.Reportf(pos,
			"loop %s but never polls cancellation: a canceled query keeps burning CPU here; check c.err()/abort.aborted() every ctxCheckInterval iterations, or suppress with //lint:nocancel <boundedness argument>",
			what)
		return false // the nest has one blind spot; don't re-report inner loops
	})
	return nil
}

// workIn classifies the loop body's per-iteration work, or "" when the loop
// does none of the kinds ctxloop polices.
func workIn(info *types.Info, body ast.Node) string {
	what := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case analysis.IsMethodOn(info, call, "internal/mapred", "Mapper", "Map"):
			what = "runs user map code"
		case analysis.IsMethodOn(info, call, "internal/mapred", "Reducer", "Reduce"):
			what = "runs user reduce code"
		case analysis.IsEmitCall(info, call):
			what = "emits records"
		case analysis.IsMethodOn(info, call, "internal/dfs", "Writer", "Write", "WriteOwned"):
			what = "writes job output"
		}
		return true
	})
	return what
}

// hasCancelCheck reports whether any statement under body polls
// cancellation: a call to something named err/Err/aborted/check/Done, or a
// select statement (the ctx.Done() idiom).
func hasCancelCheck(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch c := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			switch fun := c.Fun.(type) {
			case *ast.Ident:
				found = isCheckName(fun.Name)
			case *ast.SelectorExpr:
				found = isCheckName(fun.Sel.Name)
			}
		}
		return !found
	})
	return found
}

func isCheckName(name string) bool {
	switch name {
	case "err", "Err", "aborted", "check", "Done":
		return true
	}
	return false
}
