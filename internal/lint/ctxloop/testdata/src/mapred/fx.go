// Package mapred (a fixture shadowing the engine package's name, which is
// how ctxloop scopes itself) exercises the cancellation-blind-spot analyzer.
package mapred

import (
	"context"

	"rapidanalytics/internal/dfs"
	mr "rapidanalytics/internal/mapred"
)

// WriteAll writes job output with no cancellation poll: the canonical blind
// spot. Only the outer loop of the nest is reported.
func WriteAll(batches [][][]byte, w *dfs.Writer) {
	for _, recs := range batches { // want "never polls cancellation"
		for _, r := range recs {
			w.Write(r)
		}
	}
}

// MapAll runs user map code without polling: a mapper over a huge split
// would keep running after the query died.
func MapAll(recs [][]byte, m mr.Mapper, emit mr.Emit) error {
	for _, r := range recs { // want "never polls cancellation"
		if err := m.Map(r, emit); err != nil {
			return err
		}
	}
	return nil
}

// WriteChecked is the engine convention and a true negative: poll ctx.Err
// every ctxCheckInterval iterations.
func WriteChecked(ctx context.Context, recs [][]byte, w *dfs.Writer) error {
	for i, r := range recs {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		w.Write(r)
	}
	return nil
}

// WriteBounded is justified: the directive's boundedness argument
// suppresses the diagnostic.
func WriteBounded(header [][]byte, w *dfs.Writer) {
	//lint:nocancel the header block holds at most three records
	for _, r := range header {
		w.Write(r)
	}
}

// CountBytes does none of the work kinds ctxloop polices: a true negative
// even though it loops without a check.
func CountBytes(recs [][]byte) int {
	n := 0
	for _, r := range recs {
		n += len(r)
	}
	return n
}
