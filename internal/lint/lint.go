// Package lint registers the rapidlint analyzer suite: the machine-checked
// engine invariants described in DESIGN.md's "Invariants" section.
package lint

import (
	"rapidanalytics/internal/lint/analysis"
	"rapidanalytics/internal/lint/ctxloop"
	"rapidanalytics/internal/lint/errtyped"
	"rapidanalytics/internal/lint/hotalloc"
	"rapidanalytics/internal/lint/maporder"
	"rapidanalytics/internal/lint/spansafe"
)

// Analyzers returns the full rapidlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		ctxloop.Analyzer,
		hotalloc.Analyzer,
		spansafe.Analyzer,
		errtyped.Analyzer,
	}
}
