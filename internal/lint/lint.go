// Package lint registers the rapidlint analyzer suite: the machine-checked
// engine invariants described in DESIGN.md's "Invariants" section.
package lint

import (
	"rapidanalytics/internal/lint/analysis"
	"rapidanalytics/internal/lint/cachekey"
	"rapidanalytics/internal/lint/closecheck"
	"rapidanalytics/internal/lint/ctxloop"
	"rapidanalytics/internal/lint/errtyped"
	"rapidanalytics/internal/lint/hotalloc"
	"rapidanalytics/internal/lint/lockorder"
	"rapidanalytics/internal/lint/maporder"
	"rapidanalytics/internal/lint/spansafe"
)

// Analyzers returns the full rapidlint suite in reporting order: the five
// intraprocedural checkers from the original suite, then the three
// interprocedural ones built on serialized facts.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		ctxloop.Analyzer,
		hotalloc.Analyzer,
		spansafe.Analyzer,
		errtyped.Analyzer,
		closecheck.Analyzer,
		lockorder.Analyzer,
		cachekey.Analyzer,
	}
}

// TestAnalyzers returns the subset of the suite that also applies to
// _test.go files under rapidlint -tests: the lifecycle checkers, whose
// invariants (cancel your contexts, close your resources) bind tests as
// much as production code. The allocation, span-aliasing and ordering
// analyzers police hot-path and determinism concerns that deliberately do
// not constrain tests.
func TestAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxloop.Analyzer,
		closecheck.Analyzer,
	}
}
