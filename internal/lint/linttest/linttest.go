// Package linttest is rapidlint's analogue of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over
// fixture packages under the calling test's testdata/src directory and
// compares the diagnostics against golden "// want" comments in the
// fixtures.
//
// A want comment expects one diagnostic per quoted regexp, on the comment's
// own line:
//
//	for k := range m { // want "map iteration order"
//
// Unmatched diagnostics and unsatisfied expectations both fail the test.
// Suppression is part of the contract under test: the harness routes
// diagnostics through the same driver the rapidlint binary uses, so
// justified //lint: directives remove diagnostics and unjustified ones
// surface as "lint" pseudo-analyzer findings (match those with want
// comments too; a "// want" marker may share the physical comment with the
// directive it checks).
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"unicode"

	"rapidanalytics/internal/lint/analysis"
	"rapidanalytics/internal/lint/driver"
)

// Run loads testdata/src/<pkg> for each named fixture package, runs the
// analyzer (with interprocedural facts flowing from the fixtures'
// dependencies, exactly as in the real driver), and checks the diagnostics
// against the fixtures' want comments. Fixture packages may import helper
// packages under testdata/src; those are analyzed for facts only, so their
// own want comments (if any) must be exercised by listing them as fixtures.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	patterns := make([]string, len(fixtures))
	for i, p := range fixtures {
		patterns[i] = "./src/" + p
	}
	pkgs, err := driver.Load("testdata", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	var targets []*driver.Package
	for _, pkg := range pkgs {
		if pkg.Target {
			targets = append(targets, pkg)
		}
	}
	if len(targets) != len(fixtures) {
		t.Fatalf("loaded %d target packages, want %d", len(targets), len(fixtures))
	}
	diags, err := driver.RunAll(pkgs, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("analyzing fixtures: %v", err)
	}
	checkWants(t, targets, diags)
}

// expectation is one golden diagnostic: a message regexp anchored to a line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func checkWants(t *testing.T, pkgs []*driver.Package, diags []driver.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, re := range parseWants(t, pos.String(), c.Text) {
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the quoted regexps following a "want" marker in a
// comment, if any.
func parseWants(t *testing.T, at, text string) []*regexp.Regexp {
	t.Helper()
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		return nil
	}
	rest := strings.TrimSpace(text[idx+len("// want "):])
	var res []*regexp.Regexp
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			t.Fatalf("%s: malformed want: expected quoted regexp at %q", at, rest)
		}
		q, tail, err := cutQuoted(rest)
		if err != nil {
			t.Fatalf("%s: malformed want: %v", at, err)
		}
		re, err := regexp.Compile(q)
		if err != nil {
			t.Fatalf("%s: bad want regexp: %v", at, err)
		}
		res = append(res, re)
		rest = strings.TrimLeftFunc(tail, unicode.IsSpace)
	}
	return res
}

// cutQuoted splits one leading Go string literal off s.
func cutQuoted(s string) (string, string, error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			q, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("unquoting %s: %w", s[:i+1], err)
			}
			return q, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quote in %q", s)
}
