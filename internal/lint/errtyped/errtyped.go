// Package errtyped implements the rapidlint error-taxonomy analyzer.
//
// PR 1 gave the engine a typed error taxonomy — ErrParse, ErrUnsupported,
// ErrUnknownSystem, ErrTimeout, ErrCanceled — precisely so the server can
// map failures to HTTP statuses with errors.Is instead of string matching.
// An exported entry point that returns a bare errors.New or a fmt.Errorf
// without %w re-opens that hole: the caller gets an opaque error, the server
// files it under 500, and the taxonomy silently rots.
//
// errtyped checks the packages that form the public surface (the root
// rapidanalytics package and internal/server): inside exported functions and
// methods, a return statement must not hand back errors.New(...) or a
// fmt.Errorf whose format has no %w verb. Wrap a sentinel
// (fmt.Errorf("...: %w", ..., ErrUnsupported)) or propagate the underlying
// error with %w. For genuinely internal invariant failures, suppress with
//
//	//lint:ignore errtyped <why no caller can act on this error's type>
package errtyped

import (
	"go/ast"
	"strings"

	"rapidanalytics/internal/lint/analysis"
)

// Analyzer flags untyped errors returned from exported entry points.
var Analyzer = &analysis.Analyzer{
	Name: "errtyped",
	Doc: "flags errors.New / fmt.Errorf-without-%w returned from exported " +
		"functions of the engine's public packages; wrap one of the " +
		"ErrParse/ErrUnsupported/ErrUnknownSystem/ErrTimeout/ErrCanceled " +
		"sentinels (or the cause) with %w",
	Run: run,
}

func run(pass *analysis.Pass) error {
	switch pass.Pkg.Name() {
	case "rapidanalytics", "server":
	default:
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isEntryPoint(fd) {
				continue
			}
			checkReturns(pass, fd)
		}
	}
	return nil
}

// isEntryPoint reports whether fd is part of the public surface: an exported
// function, or an exported method on an exported receiver type.
func isEntryPoint(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// checkReturns flags untyped error constructions in fd's return statements.
// Function literals are skipped: a closure's error surfaces wherever the
// closure is invoked, which need not be this entry point.
func checkReturns(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := res.(*ast.CallExpr)
			if !ok {
				continue
			}
			switch {
			case analysis.IsPkgCall(pass.TypesInfo, call, "errors", "New"):
				pass.Reportf(call.Pos(),
					"%s returns errors.New: callers cannot classify this failure; wrap a sentinel from the engine taxonomy with fmt.Errorf(\"...: %%w\", ErrX) or suppress with //lint:ignore errtyped <why>",
					fd.Name.Name)
			case analysis.IsPkgCall(pass.TypesInfo, call, "fmt", "Errorf") && !wrapsCause(call):
				pass.Reportf(call.Pos(),
					"%s returns fmt.Errorf without %%w: callers cannot classify this failure; wrap a taxonomy sentinel or the cause with %%w, or suppress with //lint:ignore errtyped <why>",
					fd.Name.Name)
			}
		}
		return true
	})
}

// wrapsCause reports whether the fmt.Errorf call's format literal contains a
// %w verb. A non-literal format cannot be checked and is given the benefit
// of the doubt.
func wrapsCause(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return true
	}
	return strings.Contains(lit.Value, "%w")
}
