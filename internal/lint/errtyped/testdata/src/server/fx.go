// Package server (a fixture shadowing the serving package's name, which is
// how errtyped scopes itself) exercises the error-taxonomy analyzer.
package server

import (
	"errors"
	"fmt"
)

// errBase stands in for the engine's taxonomy sentinels; package-level
// sentinel construction is exactly where errors.New belongs.
var errBase = errors.New("fixture: base failure")

// Open returns a bare errors.New from an exported entry point: the
// canonical taxonomy bypass.
func Open(ok bool) error {
	if !ok {
		return errors.New("cannot open") // want "returns errors.New"
	}
	return nil
}

// Validate mixes a flagged unwrapped Errorf with a true negative that
// wraps the sentinel.
func Validate(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n) // want "fmt.Errorf without %w"
	}
	if n > 1000 {
		return fmt.Errorf("%w: count %d too large", errBase, n)
	}
	return nil
}

// Public is an exported type whose exported method is an entry point.
type Public struct{}

// Check flags the method form too.
func (Public) Check() error {
	return errors.New("method failure") // want "returns errors.New"
}

// hidden's methods are not entry points: true negative.
type hidden struct{}

func (hidden) check() error {
	return errors.New("internal detail")
}

// helper errors surface through exported wrappers that add the taxonomy:
// true negative.
func helper() error {
	return errors.New("deep detail")
}

// Wrap propagates helper's failure with the sentinel attached.
func Wrap() error {
	if err := helper(); err != nil {
		return fmt.Errorf("%w: %w", errBase, err)
	}
	return nil
}

// Invariant documents why its failure is not classifiable.
func Invariant(state int) error {
	if state != 0 {
		//lint:ignore errtyped unreachable unless memory corruption; no caller branches on it
		return errors.New("invariant violated")
	}
	return nil
}
