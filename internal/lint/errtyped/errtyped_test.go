package errtyped_test

import (
	"testing"

	"rapidanalytics/internal/lint/errtyped"
	"rapidanalytics/internal/lint/linttest"
)

func TestErrtyped(t *testing.T) {
	linttest.Run(t, errtyped.Analyzer, "server")
}
