package closecheck_test

import (
	"testing"

	"rapidanalytics/internal/lint/closecheck"
	"rapidanalytics/internal/lint/linttest"
)

func TestClosecheck(t *testing.T) {
	linttest.Run(t, closecheck.Analyzer, "closecheck_fx")
}
