// Package closecheck defines the resource-leak analyzer: values carrying a
// Close or Release method obtained from the engine's resource packages
// (dfs, vec, blockstore, share) must reach a close on every path out of the
// acquiring function, or have their ownership visibly transferred — by
// returning them, storing them into a longer-lived structure, or passing
// them to a function whose interprocedural summary says it disposes of
// them.
//
// The analysis is path-sensitive but intraprocedural per function body,
// with two gob-serialized fact kinds stitching functions together across
// package boundaries:
//
//   - ClosesFact on a function records which resource parameters the
//     function disposes of on every path (closes them, stores them, or
//     hands them to another disposer). Passing a tracked value to a
//     parameter without this guarantee does NOT discharge the caller.
//   - OwnsFact on a function records which results carry a freshly
//     acquired resource, so callers track the value even when the declared
//     result type is an interface from outside the resource packages.
//
// The error-return idiom is understood: after v, err := Open(...), paths
// guarded by err != nil (or v == nil) owe no close for v. A defer v.Close()
// discharges v on every path that follows it.
package closecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"rapidanalytics/internal/lint/analysis"
)

// Analyzer reports engine resources that do not reach Close on every path.
var Analyzer = &analysis.Analyzer{
	Name:      "closecheck",
	Doc:       "engine resources (dfs, vec, blockstore, share) must be closed on every path or visibly change owner",
	FactTypes: []analysis.Fact{(*ClosesFact)(nil), (*OwnsFact)(nil)},
	Run:       run,
}

// ClosesFact marks a function that disposes of the resource passed at each
// listed parameter index on every path: the caller's close obligation moves
// with the argument.
type ClosesFact struct {
	// Params are the indices of the parameters the function disposes of.
	Params []int
}

// AFact marks ClosesFact as serializable analyzer currency.
func (*ClosesFact) AFact() {}

// OwnsFact marks a function whose listed result indices carry a freshly
// acquired resource the caller must close, even when the declared result
// type is not itself from a resource package.
type OwnsFact struct {
	// Results are the indices of the results carrying an open resource.
	Results []int
}

// AFact marks OwnsFact as serializable analyzer currency.
func (*OwnsFact) AFact() {}

// resourcePkgs are the import-path suffixes whose Close/Release-bearing
// types the analyzer tracks. plancache handles are value types with no
// lifecycle; server and store own resources through these four.
var resourcePkgs = []string{"dfs", "vec", "blockstore", "share"}

// isResourceType reports whether t (through one pointer) is a named type or
// interface from a resource package whose method set includes Close or
// Release.
func isResourceType(t types.Type) bool {
	if t == nil {
		return false
	}
	base := t
	if ptr, ok := base.(*types.Pointer); ok {
		base = ptr.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	policed := false
	for _, suffix := range resourcePkgs {
		if analysis.PkgPathSuffix(pkg, suffix) {
			policed = true
			break
		}
	}
	if !policed {
		return false
	}
	return hasCloser(t)
}

// hasCloser reports whether t's method set (or its pointer's) has a Close
// or Release method.
func hasCloser(t types.Type) bool {
	for _, mt := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(mt)
		for i := 0; i < ms.Len(); i++ {
			name := ms.At(i).Obj().Name()
			if name == "Close" || name == "Release" {
				return true
			}
		}
		if _, ok := t.(*types.Pointer); ok {
			break // already the pointer type
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	// Phase 1: iterate per-function disposal summaries to a fixpoint so
	// intra-package call chains (a closes via b closes via Close) converge,
	// exporting ClosesFact/OwnsFact as they stabilize. Dependency packages'
	// facts are already in pass.Facts, imported by the driver.
	funcs := pass.Funcs()
	analysis.Fixpoint(len(funcs)+2, func() bool {
		changed := false
		for _, fb := range funcs {
			if summarize(pass, fb) {
				changed = true
			}
		}
		return changed
	})

	// Phase 2: diagnostics. Every function body — and every function
	// literal within, analyzed as its own unit — is checked for resources
	// that can exit scope open.
	for _, fb := range funcs {
		w := newWalker(pass, false)
		w.trackBody(fb.Decl.Type, fb.Decl.Body)
		w.reportLeaks()
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			w := newWalker(pass, false)
			w.trackFuncLit(lit)
			w.reportLeaks()
			return true
		})
	}
	return nil
}

// summarize computes one function's ClosesFact and OwnsFact and reports
// whether either changed.
func summarize(pass *analysis.Pass, fb analysis.FuncBody) bool {
	sig, ok := fb.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	w := newWalker(pass, true)
	// Pre-track resource-typed parameters so the walk tells us whether
	// every path disposes of them.
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if isResourceType(p.Type()) {
			w.trackParam(p, i)
		}
	}
	w.trackBody(fb.Decl.Type, fb.Decl.Body)

	changed := false
	var closes []int
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		r, ok := w.res[p]
		if ok && !r.leaked {
			closes = append(closes, i)
		}
	}
	if len(closes) > 0 {
		var prev ClosesFact
		if !pass.ImportObjectFact(fb.Obj, &prev) || !equalInts(prev.Params, closes) {
			pass.ExportObjectFact(fb.Obj, &ClosesFact{Params: closes})
			changed = true
		}
	}
	if len(w.ownedResults) > 0 {
		results := make([]int, 0, len(w.ownedResults))
		for i := range w.ownedResults {
			results = append(results, i)
		}
		sortInts(results)
		var prev OwnsFact
		if !pass.ImportObjectFact(fb.Obj, &prev) || !equalInts(prev.Results, results) {
			pass.ExportObjectFact(fb.Obj, &OwnsFact{Results: results})
			changed = true
		}
	}
	return changed
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// resource is one tracked value: where it was acquired and how it may be
// excused.
type resource struct {
	v      *types.Var
	pos    token.Pos
	name   string
	errVar types.Object // error assigned alongside, for err-guard paths
	param  int          // parameter index, or -1 for a local acquisition
	leaked bool         // open at some exit
}

// state is the per-path disposal state: the set of still-open resources.
// Copied at branches, intersected at merges.
type state struct {
	open map[*types.Var]bool
}

func (s state) clone() state {
	c := state{open: make(map[*types.Var]bool, len(s.open))}
	for k, v := range s.open {
		c.open[k] = v
	}
	return c
}

// merge keeps a resource open if it is open in either continuing branch.
func merge(a, b state) state {
	out := a.clone()
	for v := range b.open {
		out.open[v] = true
	}
	return out
}

// walker runs the path-sensitive disposal analysis over one function body.
type walker struct {
	pass    *analysis.Pass
	info    *types.Info
	summary bool // computing facts: collect, don't report

	res          map[*types.Var]*resource
	order        []*resource
	ownedResults map[int]bool // result indices returning a fresh resource
}

func newWalker(pass *analysis.Pass, summary bool) *walker {
	return &walker{
		pass:         pass,
		info:         pass.TypesInfo,
		summary:      summary,
		res:          map[*types.Var]*resource{},
		ownedResults: map[int]bool{},
	}
}

// trackParam pre-registers a resource-typed parameter before the walk.
func (w *walker) trackParam(p *types.Var, index int) {
	r := &resource{v: p, pos: p.Pos(), name: p.Name(), param: index}
	w.res[p] = r
	w.order = append(w.order, r)
}

// trackBody walks a function body, seeding the open set with any
// pre-tracked parameters.
func (w *walker) trackBody(ftype *ast.FuncType, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	st := state{open: map[*types.Var]bool{}}
	for v, r := range w.res {
		if r.param >= 0 {
			st.open[v] = true
		}
	}
	st, terminated := w.block(body, st)
	if !terminated {
		w.exit(st)
	}
}

// trackFuncLit analyzes a function literal as an independent unit: only
// resources acquired inside it are tracked (captures are handled as
// transfers in the enclosing walk).
func (w *walker) trackFuncLit(lit *ast.FuncLit) {
	w.trackBody(lit.Type, lit.Body)
}

// exit marks every resource still open at a function exit as leaked.
func (w *walker) exit(st state) {
	for v := range st.open {
		if r := w.res[v]; r != nil {
			r.leaked = true
		}
	}
}

// reportLeaks emits one diagnostic per leaked local acquisition, at the
// acquisition site.
func (w *walker) reportLeaks() {
	if w.summary {
		return
	}
	for _, r := range w.order {
		if r.leaked && r.param < 0 {
			w.pass.Reportf(r.pos,
				"%s is not closed on every path; defer %s.Close() after acquiring it, or transfer ownership (return it, store it, or pass it to a disposer)",
				r.name, r.name)
		}
	}
}

// block walks a statement list, threading state; a true second result means
// every path through the list terminated (returned, panicked, or jumped).
func (w *walker) block(b *ast.BlockStmt, st state) (state, bool) {
	return w.stmts(b.List, st)
}

func (w *walker) stmts(list []ast.Stmt, st state) (state, bool) {
	for _, s := range list {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *walker) stmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s, &st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				w.valueSpec(vs, &st)
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X, false, &st)
	case *ast.SendStmt:
		w.expr(s.Chan, false, &st)
		w.expr(s.Value, true, &st)
	case *ast.IncDecStmt:
		w.expr(s.X, false, &st)
	case *ast.DeferStmt:
		w.deferStmt(s, &st)
	case *ast.GoStmt:
		w.expr(s.Call, false, &st)
	case *ast.ReturnStmt:
		w.returnStmt(s, &st)
		w.exit(st)
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto end this path; resources open here either
		// outlive the jump (outer acquisitions, still in the merged state)
		// or die with the loop iteration — the loop walk checks those.
		return st, true
	case *ast.BlockStmt:
		return w.block(s, st)
	case *ast.IfStmt:
		return w.ifStmt(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, false, &st)
		}
		out := w.loopBody(s.Body, s.Post, st)
		// A for{} with no condition and no break never falls through.
		return out, s.Cond == nil && !hasLoopBreak(s.Body)
	case *ast.RangeStmt:
		w.expr(s.X, false, &st)
		return w.loopBody(s.Body, nil, st), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.expr(s.Tag, false, &st)
		}
		return w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		// The assign clause (v := x.(type)) aliases x; treat x as escaping.
		if as, ok := s.Assign.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				w.expr(rhs, true, &st)
			}
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			w.expr(es.X, true, &st)
		}
		return w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		return w.caseClauses(s.Body, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.EmptyStmt:
	default:
		// Unknown statement kind: scan conservatively.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, true, &st)
				return false
			}
			return true
		})
	}
	return st, false
}

// loopBody walks a loop body once; resources acquired inside the body must
// be disposed of by the end of the body (each iteration reacquires), while
// outer resources merge conservatively (the body may run zero times).
func (w *walker) loopBody(body *ast.BlockStmt, post ast.Stmt, st state) state {
	before := st.clone()
	inner := st.clone()
	outerVars := map[*types.Var]bool{}
	for v := range st.open {
		outerVars[v] = true
	}
	inner, terminated := w.block(body, inner)
	if post != nil && !terminated {
		inner, _ = w.stmt(post, inner)
	}
	if !terminated {
		// End of iteration: anything acquired inside and still open leaks.
		for v := range inner.open {
			if !outerVars[v] {
				if r := w.res[v]; r != nil {
					r.leaked = true
				}
			}
		}
	}
	// After the loop, an outer resource is open unless it was open before
	// and closed by a body that is guaranteed... it is not (zero
	// iterations), so the pre-loop state stands.
	return before
}

// hasLoopBreak reports whether body contains a break that exits the
// enclosing loop (an unqualified break not captured by a nested loop,
// switch or select; labeled breaks count conservatively).
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // their breaks don't exit this loop
		}
		return !found
	}
	ast.Inspect(body, walk)
	return found
}

// caseClauses walks each case of a switch/select body from the same entry
// state and merges the continuing branches. A missing default keeps the
// entry state as one of the merged paths.
func (w *walker) caseClauses(body *ast.BlockStmt, st state) (state, bool) {
	var merged *state
	hasDefault := false
	allTerminated := true
	for _, c := range body.List {
		branch := st.clone()
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.expr(e, false, &st)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				branch, _ = w.stmt(c.Comm, branch)
			}
			list = c.Body
		}
		out, terminated := w.stmts(list, branch)
		if terminated {
			continue
		}
		allTerminated = false
		if merged == nil {
			m := out.clone()
			merged = &m
		} else {
			m := merge(*merged, out)
			merged = &m
		}
	}
	if !hasDefault {
		allTerminated = false
		if merged == nil {
			m := st.clone()
			merged = &m
		} else {
			m := merge(*merged, st)
			merged = &m
		}
	}
	if merged == nil {
		return st, allTerminated && len(body.List) > 0
	}
	return *merged, false
}

// ifStmt walks both branches with err-guard exemptions applied and merges
// the continuing paths.
func (w *walker) ifStmt(s *ast.IfStmt, st state) (state, bool) {
	if s.Init != nil {
		st, _ = w.stmt(s.Init, st)
	}
	w.expr(s.Cond, false, &st)

	thenSt := st.clone()
	elseSt := st.clone()
	w.applyGuard(s.Cond, &thenSt, &elseSt)

	thenOut, thenTerm := w.block(s.Body, thenSt)
	var elseOut state
	elseTerm := false
	if s.Else != nil {
		elseOut, elseTerm = w.stmt(s.Else, elseSt)
	} else {
		elseOut = elseSt
	}
	switch {
	case thenTerm && elseTerm:
		return st, true
	case thenTerm:
		return elseOut, false
	case elseTerm:
		return thenOut, false
	default:
		return merge(thenOut, elseOut), false
	}
}

// applyGuard interprets nil-guard conditions: on the branch where the
// paired error is non-nil (or the resource itself is nil), the resource was
// never acquired and owes no close.
func (w *walker) applyGuard(cond ast.Expr, thenSt, elseSt *state) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	if bin.Op != token.NEQ && bin.Op != token.EQL {
		return
	}
	var operand ast.Expr
	if isNil(w.info, bin.X) {
		operand = bin.Y
	} else if isNil(w.info, bin.Y) {
		operand = bin.X
	} else {
		return
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok {
		return
	}
	obj := w.info.Uses[id]
	if obj == nil {
		return
	}
	// nilBranch is the state for the path where the operand is nil.
	nilBranch := thenSt
	if bin.Op == token.NEQ {
		nilBranch = elseSt
	}
	for v, r := range w.res {
		if obj == v {
			delete(nilBranch.open, v) // the resource itself is nil here
		}
		if r.errVar != nil && r.errVar == obj {
			// err == nil on nilBranch... no: operand is the error; the
			// branch where err is nil is where the resource IS valid. The
			// exemption applies where err != nil.
			errBranch := elseSt
			if bin.Op == token.NEQ {
				errBranch = thenSt
			}
			delete(errBranch.open, v)
		}
	}
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := info.Uses[id].(*types.Nil)
	return isNilConst || id.Name == "nil"
}

// valueSpec handles var declarations with initializers as acquisitions.
func (w *walker) valueSpec(vs *ast.ValueSpec, st *state) {
	if len(vs.Values) == 0 {
		return
	}
	lhs := make([]ast.Expr, len(vs.Names))
	for i, n := range vs.Names {
		lhs[i] = n
	}
	w.assignLike(lhs, vs.Values, true, st)
}

// assign handles := and = statements: acquisitions on the left, escapes on
// the right.
func (w *walker) assign(s *ast.AssignStmt, st *state) {
	w.assignLike(s.Lhs, s.Rhs, s.Tok == token.DEFINE, st)
}

func (w *walker) assignLike(lhs, rhs []ast.Expr, define bool, st *state) {
	// Single call producing multiple values: v, err := open(...).
	if len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			w.expr(call, false, st)
			w.acquireFromCall(lhs, call, st)
			return
		}
	}
	for i, r := range rhs {
		// A resource flowing to any destination other than a fresh local
		// is an ownership transfer (field, global, element, or alias).
		w.expr(r, true, st)
		if i < len(lhs) {
			w.overwrite(lhs[i], st)
		}
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		for _, l := range lhs {
			w.overwrite(l, st)
		}
	}
}

// acquireFromCall registers resources produced by a call assignment and
// pairs them with an error result for the err-guard idiom.
func (w *walker) acquireFromCall(lhs []ast.Expr, call *ast.CallExpr, st *state) {
	// Results of calls through plain function values (local closures, func
	// fields, func parameters) are not tracked: factories behind function
	// values commonly memoize and retain ownership. Static functions and
	// method calls — including interface methods — follow the Create/Open
	// convention: a returned resource belongs to the caller.
	if !w.ownershipConvention(call) {
		for _, l := range lhs {
			w.overwrite(l, st)
		}
		return
	}
	// Which result indices carry an owned resource? Judge by the call's
	// static result types so a resource discarded into _ is still seen.
	owned := map[int]bool{}
	for i, rt := range w.resultTypes(call) {
		if i < len(lhs) && isResourceType(rt) {
			owned[i] = true
		}
	}
	if callee := analysis.StaticCallee(w.info, call); callee != nil {
		var of OwnsFact
		if w.pass.ImportObjectFact(callee, &of) {
			for _, i := range of.Results {
				if i < len(lhs) {
					owned[i] = true
				}
			}
		}
	}
	if len(owned) == 0 {
		for _, l := range lhs {
			w.overwrite(l, st)
		}
		return
	}
	// Find the paired error variable, if the call also returns one.
	var errObj types.Object
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
			if obj := w.lhsVar(id); obj != nil && isErrorType(obj.Type()) {
				errObj = obj
			}
		}
	}
	for i, l := range lhs {
		id, _ := l.(*ast.Ident)
		if id == nil {
			continue
		}
		obj := w.lhsVar(id)
		if obj == nil {
			if owned[i] && !w.summary {
				// A resource assigned to _ is dropped on the floor.
				w.reportDiscard(id.Pos(), call)
			}
			continue
		}
		w.overwrite(id, st)
		if !owned[i] {
			continue
		}
		r := &resource{v: obj, pos: id.Pos(), name: id.Name, errVar: errObj, param: -1}
		w.res[obj] = r
		w.order = append(w.order, r)
		st.open[obj] = true
	}
}

// ownershipConvention reports whether a call's resource-typed results
// belong to the caller: true for static callees and method calls (however
// dispatched), false for calls through bare function values.
func (w *walker) ownershipConvention(call *ast.CallExpr) bool {
	if analysis.StaticCallee(w.info, call) != nil {
		return true
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := w.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return true
		}
	}
	return false
}

// reportDiscard flags `_, err := Acquire(...)`: the resource exists and can
// never be closed.
func (w *walker) reportDiscard(pos token.Pos, call *ast.CallExpr) {
	w.pass.Reportf(pos, "acquired resource is assigned to _ and can never be closed")
}

// resultTypes returns the static types of a call's results.
func (w *walker) resultTypes(call *ast.CallExpr) []types.Type {
	tv, ok := w.info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{tv.Type}
}

// lhsVar resolves an assignment target identifier to its variable object.
func (w *walker) lhsVar(id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if obj, ok := w.info.Defs[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := w.info.Uses[id].(*types.Var); ok {
		return obj
	}
	return nil
}

// overwrite handles a tracked variable being reassigned: the previous value
// leaks if still open.
func (w *walker) overwrite(l ast.Expr, st *state) {
	id, ok := l.(*ast.Ident)
	if !ok {
		w.expr(l, false, st)
		return
	}
	obj := w.lhsVar(id)
	if obj == nil {
		return
	}
	if st.open[obj] {
		if r := w.res[obj]; r != nil {
			r.leaked = true
		}
		delete(st.open, obj)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// deferStmt handles defers: a deferred Close discharges the resource on
// every subsequent path; a deferred closure is scanned for closes and
// captures.
func (w *walker) deferStmt(s *ast.DeferStmt, st *state) {
	if v := w.closeReceiver(s.Call); v != nil {
		delete(st.open, v)
		return
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		w.scanClosure(lit, st)
		return
	}
	w.expr(s.Call, false, st)
}

// scanClosure processes a deferred or spawned closure: closes inside it
// count (defers run at exit), and any other capture of an open resource is
// a conservative transfer.
func (w *walker) scanClosure(lit *ast.FuncLit, st *state) {
	closed := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v := w.closeReceiver(call); v != nil {
			closed[v] = true
			return false
		}
		return true
	})
	for v := range closed {
		delete(st.open, v)
	}
	// Remaining captures transfer ownership into the closure.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := w.info.Uses[id].(*types.Var); ok && st.open[obj] {
			delete(st.open, obj)
		}
		return true
	})
}

// closeReceiver returns the tracked variable v when call is v.Close() or
// v.Release().
func (w *walker) closeReceiver(call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if sel.Sel.Name != "Close" && sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := w.info.Uses[id].(*types.Var)
	if !ok || w.res[obj] == nil {
		return nil
	}
	return obj
}

// returnStmt marks returned resources as transferred and, in summary mode,
// records which result indices carry fresh resources.
func (w *walker) returnStmt(s *ast.ReturnStmt, st *state) {
	for i, e := range s.Results {
		if w.summary {
			if v := w.containedOpen(e, *st); v != nil {
				if r := w.res[v]; r != nil && r.param < 0 {
					w.ownedResults[i] = true
				}
			}
		}
		w.expr(e, true, st)
	}
}

// containedOpen finds an open resource variable inside a result expression.
func (w *walker) containedOpen(e ast.Expr, st state) *types.Var {
	var found *types.Var
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := w.info.Uses[id].(*types.Var); ok && st.open[obj] {
				found = obj
				return false
			}
		}
		return true
	})
	return found
}

// expr scans an expression for disposal events. When escapes is true, a
// bare occurrence of an open resource transfers its ownership (composite
// literal, address-of, alias, send, return).
func (w *walker) expr(e ast.Expr, escapes bool, st *state) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if !escapes {
			return
		}
		if obj, ok := w.info.Uses[e].(*types.Var); ok && st.open[obj] {
			delete(st.open, obj)
		}
	case *ast.CallExpr:
		w.call(e, st)
	case *ast.FuncLit:
		// A non-deferred closure capturing an open resource takes it over.
		w.scanClosure(e, st)
	case *ast.ParenExpr:
		w.expr(e.X, escapes, st)
	case *ast.SelectorExpr:
		w.expr(e.X, false, st)
	case *ast.IndexExpr:
		w.expr(e.X, false, st)
		w.expr(e.Index, false, st)
	case *ast.SliceExpr:
		w.expr(e.X, false, st)
	case *ast.BinaryExpr:
		w.expr(e.X, false, st)
		w.expr(e.Y, false, st)
	case *ast.UnaryExpr:
		w.expr(e.X, escapes || e.Op == token.AND, st)
	case *ast.StarExpr:
		w.expr(e.X, false, st)
	case *ast.TypeAssertExpr:
		w.expr(e.X, true, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value, true, st)
				continue
			}
			w.expr(el, true, st)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value, true, st)
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj, ok := w.info.Uses[id].(*types.Var); ok && st.open[obj] {
					delete(st.open, obj)
				}
			}
			return true
		})
	}
}

// call processes one call expression: a Close/Release on a tracked value
// discharges it; other calls dispose of arguments according to the
// callee's ClosesFact (or conservatively, when the callee is dynamic or
// the parameter is not resource-typed).
func (w *walker) call(call *ast.CallExpr, st *state) {
	if v := w.closeReceiver(call); v != nil {
		delete(st.open, v)
		return
	}
	// Method receiver use does not dispose; scan it non-escaping.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X, false, st)
	} else {
		w.expr(call.Fun, false, st)
	}

	callee := analysis.StaticCallee(w.info, call)
	var closes ClosesFact
	haveFact := callee != nil && w.pass.ImportObjectFact(callee, &closes)
	var sig *types.Signature
	if callee != nil {
		sig, _ = callee.Type().(*types.Signature)
	}
	for i, arg := range call.Args {
		id, isIdent := ast.Unparen(arg).(*ast.Ident)
		if !isIdent {
			w.expr(arg, true, st)
			continue
		}
		obj, ok := w.info.Uses[id].(*types.Var)
		if !ok || !st.open[obj] {
			w.expr(arg, true, st)
			continue
		}
		switch {
		case haveFact && containsInt(closes.Params, paramIndex(sig, i)):
			// The callee disposes of this parameter: obligation moves.
			delete(st.open, obj)
		case callee != nil && sig != nil && isResourceType(paramType(sig, i)):
			// Known callee that neither closes nor visibly sinks a
			// resource-typed parameter: the caller keeps the obligation.
		default:
			// Dynamic callee, or a parameter the callee sees opaquely:
			// assume ownership transfers.
			delete(st.open, obj)
		}
	}
}

// paramIndex maps an argument index to the callee's parameter index,
// folding variadic arguments onto the final parameter.
func paramIndex(sig *types.Signature, arg int) int {
	if sig == nil {
		return arg
	}
	n := sig.Params().Len()
	if sig.Variadic() && arg >= n-1 {
		return n - 1
	}
	if arg >= n {
		return n - 1
	}
	return arg
}

// paramType returns the callee's parameter type seen by argument arg.
func paramType(sig *types.Signature, arg int) types.Type {
	i := paramIndex(sig, arg)
	if i < 0 || i >= sig.Params().Len() {
		return nil
	}
	t := sig.Params().At(i).Type()
	if sig.Variadic() && i == sig.Params().Len()-1 {
		if sl, ok := t.(*types.Slice); ok {
			return sl.Elem()
		}
	}
	return t
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
