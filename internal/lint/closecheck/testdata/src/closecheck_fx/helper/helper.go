// Package helper is the cross-package half of the closecheck fixtures: its
// functions' disposal summaries (ClosesFact, OwnsFact) are computed facts-
// only and serialized to the fixture package, which exercises the
// interprocedural paths of the analyzer. It carries no want comments of its
// own.
package helper

import "rapidanalytics/internal/dfs"

// Consume takes ownership of f and closes it on every path; callers
// passing a file here are discharged.
func Consume(f *dfs.File) error {
	return f.Close()
}

// ConsumeVia closes f transitively through Consume — the intra-package
// fixpoint must propagate Consume's summary for ConsumeVia to earn its own.
func ConsumeVia(f *dfs.File) error {
	return Consume(f)
}

// Borrow only reads f; the close obligation stays with the caller.
func Borrow(f *dfs.File) int {
	return f.NumRecords()
}

// registry outlives any caller; files sunk here are owned by the package.
var registry []*dfs.File

// Sink stores f into package state, taking ownership.
func Sink(f *dfs.File) {
	registry = append(registry, f)
}

// Wrapped boxes an engine file behind a type defined outside the resource
// packages; only OwnsFact tells callers the box holds a live resource.
type Wrapped struct {
	F *dfs.File
}

// Close releases the boxed file.
func (w *Wrapped) Close() error {
	return w.F.Close()
}

// OpenWrapped acquires a file and returns it boxed; the close obligation
// travels to the caller via the OwnsFact summary, since *Wrapped itself is
// not a resource-package type.
func OpenWrapped(fs *dfs.FS, name string) (*Wrapped, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &Wrapped{F: f}, nil
}
