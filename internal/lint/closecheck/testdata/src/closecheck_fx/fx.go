// Package closecheck_fx exercises the resource-leak analyzer: engine
// resources (dfs files and writers, vec iterators, blockstore segments)
// must reach Close on every path or visibly change owner.
package closecheck_fx

import (
	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/lint/closecheck/testdata/src/closecheck_fx/helper"
	"rapidanalytics/internal/vec"
)

// LeakEarlyReturn forgets the file on the bail path: caught.
func LeakEarlyReturn(fs *dfs.FS, name string, bail bool) (int, error) {
	f, err := fs.Open(name) // want "not closed on every path"
	if err != nil {
		return 0, err
	}
	if bail {
		return 0, nil
	}
	n := f.NumRecords()
	if err := f.Close(); err != nil {
		return 0, err
	}
	return n, nil
}

// CleanDefer is the engine idiom and a true negative: the error-return
// path owes nothing (f is nil there) and the defer covers the rest.
func CleanDefer(fs *dfs.FS, name string) (int, error) {
	f, err := fs.Open(name)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return f.NumRecords(), nil
}

// TransferReturn hands the open file straight to the caller: true negative.
func TransferReturn(fs *dfs.FS, name string) (*dfs.File, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// holder keeps a file across calls; storing into it transfers ownership.
type holder struct {
	f *dfs.File
}

// Attach is a true negative: the field store moves the close obligation to
// the holder's lifecycle.
func (h *holder) Attach(fs *dfs.FS, name string) error {
	f, err := fs.Open(name)
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

// ConsumedByHelper is a true negative only interprocedurally: Consume's
// serialized summary says it closes its parameter on every path.
func ConsumedByHelper(fs *dfs.FS, name string) error {
	f, err := fs.Open(name)
	if err != nil {
		return err
	}
	return helper.Consume(f)
}

// ConsumedTransitively leans on the fixpoint: ConsumeVia closes only via
// Consume, two hops from here.
func ConsumedTransitively(fs *dfs.FS, name string) error {
	f, err := fs.Open(name)
	if err != nil {
		return err
	}
	return helper.ConsumeVia(f)
}

// BorrowedNotClosed is the interprocedural catch: Borrow's summary says it
// only reads the file, so the obligation never left this function.
func BorrowedNotClosed(fs *dfs.FS, name string) (int, error) {
	f, err := fs.Open(name) // want "not closed on every path"
	if err != nil {
		return 0, err
	}
	return helper.Borrow(f), nil
}

// SunkIntoHelper is a true negative: Sink's summary says it stores the
// file into package state, taking ownership.
func SunkIntoHelper(fs *dfs.FS, name string) error {
	f, err := fs.Open(name)
	if err != nil {
		return err
	}
	helper.Sink(f)
	return nil
}

// WrappedLeak leaks a resource whose static type (*helper.Wrapped) is not
// from a resource package at all — only OpenWrapped's OwnsFact summary
// reveals the live file inside the box.
func WrappedLeak(fs *dfs.FS, name string) (int, error) {
	w, err := helper.OpenWrapped(fs, name) // want "not closed on every path"
	if err != nil {
		return 0, err
	}
	return w.F.NumRecords(), nil
}

// WrappedClean closes the box: true negative.
func WrappedClean(fs *dfs.FS, name string) (int, error) {
	w, err := helper.OpenWrapped(fs, name)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	return w.F.NumRecords(), nil
}

// Discarded drops the writer into the blank identifier: nothing can ever
// close it (and an unclosed dfs.Writer never commits its file).
func Discarded(fs *dfs.FS, name string) {
	_, _ = fs.Create(name, 1.0) // want "assigned to _"
}

// IterLeak forgets the iterator on the stop path.
func IterLeak(batches []*vec.Batch, stop bool) error {
	it := vec.NewSliceIterator(batches) // want "not closed on every path"
	if stop {
		return nil
	}
	return it.Close()
}

// IterClean drains and closes through the vec.Iterator interface: true
// negative, including the acquisition through WithCheck.
func IterClean(batches []*vec.Batch) (int, error) {
	it := vec.WithCheck(vec.NewSliceIterator(batches), func() error { return nil })
	defer it.Close()
	n := 0
	for {
		b, err := it.Next()
		if err != nil {
			return n, err
		}
		if b == nil {
			return n, nil
		}
		n += b.Rows()
	}
}

// WriterClean closes the writer on both paths: true negative.
func WriterClean(fs *dfs.FS, name string, recs [][]byte, limit int64) error {
	w, err := fs.Create(name, 1.0)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		w.Write(rec)
		if w.Bytes() > limit {
			w.Close()
			return nil
		}
	}
	return w.Close()
}

// Suppressed documents a deliberate leak; the justified directive keeps
// the analyzer quiet.
func Suppressed(fs *dfs.FS, name string) int {
	f, _ := fs.Open(name) //lint:ignore closecheck handle is cached process-wide and reclaimed at shutdown
	if f == nil {
		return 0
	}
	return f.NumRecords()
}

// SuppressedBadly has a directive with no justification: the directive is
// itself reported, and the leak still escapes.
func SuppressedBadly(fs *dfs.FS, name string, bail bool) error {
	f, err := fs.Open(name) //lint:ignore closecheck // want "no justification" "not closed on every path"
	if err != nil {
		return err
	}
	if bail {
		return nil
	}
	return f.Close()
}
