package maporder_test

import (
	"testing"

	"rapidanalytics/internal/lint/linttest"
	"rapidanalytics/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "maporder_fx")
}
