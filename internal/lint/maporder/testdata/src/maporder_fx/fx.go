// Package maporder_fx exercises the maporder analyzer: emits and DFS writes
// fed from map iteration must be flagged unless sorted or justified.
package maporder_fx

import (
	"sort"

	"rapidanalytics/internal/dfs"
	mr "rapidanalytics/internal/mapred"
)

// FlushUnsorted emits straight out of map order: the canonical violation.
func FlushUnsorted(m map[string][]byte, emit mr.Emit) {
	for k, v := range m { // want "map iteration order is randomized"
		emit(k, v)
	}
}

// SpillUnsorted writes to the DFS out of map order: the writer-sink variant.
func SpillUnsorted(m map[string][]byte, w *dfs.Writer) {
	for _, v := range m { // want "map iteration order is randomized"
		w.Write(v)
	}
}

// FlushSorted is the fix maporder points at: collect, sort, emit. Both loops
// are true negatives — the map range has no sink in its body, and the
// emitting loop ranges over a slice.
func FlushSorted(m map[string][]byte, emit mr.Emit) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k, m[k])
	}
}

// FlushJustified carries an ordering argument, so the directive suppresses.
func FlushJustified(m map[string][]byte, emit mr.Emit) {
	//lint:sorted the map holds exactly one entry by construction, so there is no order to vary
	for k, v := range m {
		emit(k, v)
	}
}

// FlushUnjustified shows that a bare directive suppresses nothing and is
// itself reported.
func FlushUnjustified(m map[string][]byte, emit mr.Emit) {
	//lint:sorted // want "no justification"
	for k, v := range m { // want "map iteration order is randomized"
		emit(k, v)
	}
}
