// Package maporder implements the rapidlint determinism analyzer.
//
// The engine's contract — established in PR 2 and relied on by every
// cross-engine row-equivalence check since — is that job output is
// byte-identical regardless of worker count or run. Go randomizes map
// iteration order per run, so a `for k := range m` whose body reaches an
// emit or DFS write publishes records in a different order every execution.
// maporder flags exactly that shape: a range over a map whose body (at any
// depth) calls a mapred.Emit value or writes through a dfs.Writer.
//
// The fix is to collect the keys, sort them, and emit in sorted order. When
// order is provably irrelevant (e.g. the records feed a combiner that
// re-sorts per partition), suppress with
//
//	//lint:sorted <why iteration order cannot reach the output>
package maporder

import (
	"go/ast"
	"go/types"

	"rapidanalytics/internal/lint/analysis"
)

// Analyzer flags map iteration that reaches an emit or writer call.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags `range` over a map whose body emits records or writes job output; " +
		"map order is randomized per run, which breaks the engine's byte-identical " +
		"output invariant — sort the keys first or justify with //lint:sorted",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink, what := outputSink(pass.TypesInfo, rs.Body); sink != nil {
			pass.Reportf(rs.For,
				"range over map reaches %s (line %d): map iteration order is randomized, so the job output is nondeterministic; emit in sorted key order or suppress with //lint:sorted <ordering argument>",
				what, pass.Fset.Position(sink.Pos()).Line)
		}
		return true
	})
	return nil
}

// outputSink returns the first call under body that publishes records: a call
// to a mapred.Emit value, or a dfs.Writer Write/WriteOwned.
func outputSink(info *types.Info, body ast.Node) (sink ast.Node, what string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case analysis.IsEmitCall(info, call):
			sink, what = call, "an emit call"
		case analysis.IsMethodOn(info, call, "internal/dfs", "Writer", "Write", "WriteOwned"):
			sink, what = call, "a DFS write"
		}
		return true
	})
	return sink, what
}
