package analysis

import (
	"go/ast"
	"go/types"
)

// WithStack walks every file of the pass; fn receives each node together with
// its ancestors (outermost first, innermost last). Returning false prunes the
// node's children.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// IsPkgCall reports whether call invokes the package-level function
// pkgPath.name, where pkgPath matches the imported package's path exactly
// ("fmt") or by path suffix.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && hasPathSuffix(pn.Imported().Path(), pkgPath)
}

// IsEmitCall reports whether call invokes a value of the engine's emit
// function type (mapred.Emit) — the canonical record sink.
func IsEmitCall(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call.Fun)
	return t != nil && IsNamed(t, "internal/mapred", "Emit")
}

// IsMethodOn reports whether call is a method call with one of the given
// names on the named type pkgSuffix.typeName (through one pointer, and
// through interfaces by the interface type's own name).
func IsMethodOn(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName string, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	found := false
	for _, n := range names {
		if sel.Sel.Name == n {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return IsNamed(s.Recv(), pkgSuffix, typeName)
}

// IsStringType reports whether t's underlying type is string.
func IsStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// IsByteSlice reports whether t's underlying type is []byte.
func IsByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
