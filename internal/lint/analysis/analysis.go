// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer/Pass
// machinery for rapidlint's invariant checkers, built only on the standard
// library so the linter works in sandboxes with no module proxy. The shapes
// mirror x/tools deliberately — an analyzer written against this package
// ports to the real framework by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name, what it enforces, and a
// Run function invoked once per type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph description printed by rapidlint -help.
	Doc string
	// FactTypes lists the analyzer's fact prototypes (pointer values). A
	// non-empty list makes the analyzer interprocedural: the driver runs it
	// over dependency packages too (facts only, diagnostics discarded) so
	// summaries flow bottom-up through the import graph, and registers the
	// types for serialization.
	FactTypes []Fact
	// Run analyzes one package via the pass and reports diagnostics.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer's Run.
type Pass struct {
	// Analyzer is the checker this pass runs.
	Analyzer *Analyzer
	// Fset maps token positions for every file of the pass.
	Fset *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression, definition and use
	// maps for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic (suppression is applied by the
	// driver, not here).
	Report func(Diagnostic)
	// Facts is the fact environment: dependency facts decoded by the
	// driver plus whatever this pass exports. Nil for fact-free runs — the
	// fact methods then degrade to no-ops.
	Facts *Env
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message states the violated invariant and the remedy.
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Preorder walks every file of the pass in depth-first order, invoking fn on
// each node. A false return from fn prunes that node's children.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// IsNamed reports whether t (or the type it points to, through one pointer)
// is the named type pkgSuffix.name, where pkgSuffix is matched against the
// end of the defining package's import path. Matching by suffix lets test
// fixtures under testdata/ exercise analyzers against the real engine types
// they import.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return hasPathSuffix(obj.Pkg().Path(), pkgSuffix)
}

// hasPathSuffix reports whether path equals suffix or ends in "/"+suffix.
func hasPathSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// PkgPathSuffix reports whether the package's import path ends with suffix
// (at a path-segment boundary). Analyzers scoped to specific engine packages
// use it so their testdata fixtures, whose import paths end with the same
// segment, fall in scope too.
func PkgPathSuffix(pkg *types.Package, suffix string) bool {
	return pkg != nil && hasPathSuffix(pkg.Path(), suffix)
}
