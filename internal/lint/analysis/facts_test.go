package analysis_test

import (
	"go/token"
	"go/types"
	"testing"

	"rapidanalytics/internal/lint/analysis"
)

// Two distinct fact types so override and multi-type storage are both
// exercised across the wire.
type closesFact struct{ Params []int }

func (*closesFact) AFact() {}

type ownsFact struct{ Results []int }

func (*ownsFact) AFact() {}

type pkgFact struct{ Edges []string }

func (*pkgFact) AFact() {}

// newPkg builds a types.Package with one package-level function F so the
// fact API has a real keyable object to hang facts on.
func newPkg(path string) (*types.Package, *types.Func) {
	pkg := types.NewPackage(path, "p")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fn := types.NewFunc(token.NoPos, pkg, "F", sig)
	pkg.Scope().Insert(fn)
	pkg.MarkComplete()
	return pkg, fn
}

func pass(pkg *types.Package, env *analysis.Env) *analysis.Pass {
	return &analysis.Pass{Pkg: pkg, Facts: env}
}

func init() {
	analysis.RegisterFactTypes(&closesFact{}, &ownsFact{}, &pkgFact{})
}

// TestObjectFactRoundTrip: facts exported in one environment must decode
// into a fresh one and import back identically — the exact path facts take
// between driver packages and between vet compilation units.
func TestObjectFactRoundTrip(t *testing.T) {
	pkg, fn := newPkg("m/a")
	src := analysis.NewEnv()
	p := pass(pkg, src)
	p.ExportObjectFact(fn, &closesFact{Params: []int{0, 2}})
	p.ExportObjectFact(fn, &ownsFact{Results: []int{1}})
	p.ExportPackageFact(&pkgFact{Edges: []string{"a->b"}})

	data, err := src.EncodePackage("m/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("EncodePackage returned no data for a package with facts")
	}

	dst := analysis.NewEnv()
	if err := dst.Decode(data); err != nil {
		t.Fatal(err)
	}
	q := pass(pkg, dst)
	var cf closesFact
	if !q.ImportObjectFact(fn, &cf) || len(cf.Params) != 2 || cf.Params[0] != 0 || cf.Params[1] != 2 {
		t.Errorf("closesFact after round trip = %+v", cf)
	}
	var of ownsFact
	if !q.ImportObjectFact(fn, &of) || len(of.Results) != 1 || of.Results[0] != 1 {
		t.Errorf("ownsFact after round trip = %+v", of)
	}
	var pf pkgFact
	if !q.ImportPackageFact("m/a", &pf) || len(pf.Edges) != 1 || pf.Edges[0] != "a->b" {
		t.Errorf("pkgFact after round trip = %+v", pf)
	}
}

// TestEncodeAllSingleStream is the regression test for the vet fact flow:
// EncodeAll must produce ONE gob stream. Concatenating per-package
// encodings (each with its own encoder) re-transmits the wire type
// definitions and a single decoder rejects the second copy with
// "duplicate type received".
func TestEncodeAllSingleStream(t *testing.T) {
	pkgA, fnA := newPkg("m/a")
	pkgB, fnB := newPkg("m/b")
	src := analysis.NewEnv()
	pass(pkgA, src).ExportObjectFact(fnA, &closesFact{Params: []int{0}})
	pass(pkgB, src).ExportObjectFact(fnB, &closesFact{Params: []int{1}})
	pass(pkgB, src).ExportPackageFact(&pkgFact{Edges: []string{"b"}})

	data, err := src.EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	dst := analysis.NewEnv()
	if err := dst.Decode(data); err != nil {
		t.Fatalf("Decode of EncodeAll stream: %v", err)
	}
	var cf closesFact
	if !pass(pkgA, dst).ImportObjectFact(fnA, &cf) || cf.Params[0] != 0 {
		t.Errorf("package a fact after EncodeAll = %+v", cf)
	}
	if !pass(pkgB, dst).ImportObjectFact(fnB, &cf) || cf.Params[0] != 1 {
		t.Errorf("package b fact after EncodeAll = %+v", cf)
	}
}

// TestDecodeLaterFactsOverride: decoding two fact sets for the same
// (package, object, type) keeps the later one — how a test variant's facts
// shadow its production variant's.
func TestDecodeLaterFactsOverride(t *testing.T) {
	pkg, fn := newPkg("m/a")
	first := analysis.NewEnv()
	pass(pkg, first).ExportObjectFact(fn, &closesFact{Params: []int{0}})
	second := analysis.NewEnv()
	pass(pkg, second).ExportObjectFact(fn, &closesFact{Params: []int{7}})

	d1, err := first.EncodePackage("m/a")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := second.EncodePackage("m/a")
	if err != nil {
		t.Fatal(err)
	}
	dst := analysis.NewEnv()
	if err := dst.Decode(d1); err != nil {
		t.Fatal(err)
	}
	if err := dst.Decode(d2); err != nil {
		t.Fatal(err)
	}
	var cf closesFact
	if !pass(pkg, dst).ImportObjectFact(fn, &cf) || len(cf.Params) != 1 || cf.Params[0] != 7 {
		t.Errorf("fact after override decode = %+v, want Params [7]", cf)
	}
}

// TestEncodeDeterministic: the wire form must not depend on map iteration
// order — vet caches .vetx content, and nondeterministic bytes would bust
// the cache on every run.
func TestEncodeDeterministic(t *testing.T) {
	build := func() []byte {
		pkgA, fnA := newPkg("m/a")
		pkgB, fnB := newPkg("m/b")
		env := analysis.NewEnv()
		pass(pkgA, env).ExportObjectFact(fnA, &ownsFact{Results: []int{0}})
		pass(pkgA, env).ExportObjectFact(fnA, &closesFact{Params: []int{1}})
		pass(pkgA, env).ExportPackageFact(&pkgFact{Edges: []string{"x", "y"}})
		pass(pkgB, env).ExportObjectFact(fnB, &closesFact{Params: []int{2}})
		data, err := env.EncodeAll()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Error("EncodeAll output differs between identical environments")
	}
}

// TestEmptyEncodings: packages without facts encode to nothing, and empty
// data decodes as a no-op.
func TestEmptyEncodings(t *testing.T) {
	env := analysis.NewEnv()
	if data, err := env.EncodePackage("m/none"); err != nil || len(data) != 0 {
		t.Errorf("EncodePackage of factless package = %d bytes, %v", len(data), err)
	}
	if data, err := env.EncodeAll(); err != nil || len(data) != 0 {
		t.Errorf("EncodeAll of empty env = %d bytes, %v", len(data), err)
	}
	if err := env.Decode(nil); err != nil {
		t.Errorf("Decode(nil) = %v", err)
	}
}
