package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives. A diagnostic is suppressed when a matching
// directive comment sits on the diagnostic's line or on the line directly
// above it, and the directive carries a non-empty justification:
//
//	//lint:ignore <analyzer> <justification>   — suppress one analyzer
//	//lint:sorted <justification>              — alias for "ignore maporder"
//	//lint:alloc <justification>               — alias for "ignore hotalloc"
//	//lint:nocancel <justification>            — alias for "ignore ctxloop"
//
// A directive with no justification suppresses nothing and is itself
// reported: the whole point of machine-checking these invariants is that
// every exception records its ordering/allocation argument in the source.

// directive is one parsed //lint: comment.
type directive struct {
	pos      token.Pos
	analyzer string // analyzer name the directive targets
	reason   string // justification text; empty is a violation
}

// Suppressor indexes a package's //lint: directives by file and line.
type Suppressor struct {
	fset  *token.FileSet
	byLoc map[string]map[int][]directive
	all   []directive
}

// NewSuppressor scans the files' comments for suppression directives.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{fset: fset, byLoc: map[string]map[int][]directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byLoc[pos.Filename]
				if lines == nil {
					lines = map[int][]directive{}
					s.byLoc[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				s.all = append(s.all, d)
			}
		}
	}
	return s
}

// parseDirective parses one comment as a suppression directive.
func parseDirective(c *ast.Comment) (directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//lint:")
	if !ok {
		return directive{}, false
	}
	// The payload ends at an embedded "//": it lets test fixtures append a
	// golden "// want" marker to a directive, and justifications have no
	// business containing comment markers anyway.
	text, _, _ = strings.Cut(text, "//")
	verb, rest, _ := strings.Cut(text, " ")
	rest = strings.TrimSpace(rest)
	d := directive{pos: c.Pos()}
	switch verb {
	case "ignore":
		d.analyzer, d.reason, _ = strings.Cut(rest, " ")
		d.reason = strings.TrimSpace(d.reason)
	case "sorted":
		d.analyzer, d.reason = "maporder", rest
	case "alloc":
		d.analyzer, d.reason = "hotalloc", rest
	case "nocancel":
		d.analyzer, d.reason = "ctxloop", rest
	default:
		return directive{}, false
	}
	return d, true
}

// Suppressed reports whether a diagnostic from the named analyzer at pos is
// covered by a justified directive on the same or the preceding line.
func (s *Suppressor) Suppressed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	lines := s.byLoc[p.Filename]
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range lines[line] {
			if d.analyzer == analyzer && d.reason != "" {
				return true
			}
		}
	}
	return false
}

// Problems returns one diagnostic per malformed directive: a missing
// analyzer name or a missing justification. These are reported under the
// pseudo-analyzer name "lint".
func (s *Suppressor) Problems() []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		switch {
		case d.analyzer == "":
			out = append(out, Diagnostic{Pos: d.pos, Message: "lint:ignore directive names no analyzer"})
		case d.reason == "":
			out = append(out, Diagnostic{Pos: d.pos, Message: "suppression of " + d.analyzer + " has no justification; state the ordering/allocation argument after the directive"})
		}
	}
	return out
}
