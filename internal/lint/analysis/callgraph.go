package analysis

import (
	"go/ast"
	"go/types"
)

// Call-graph helpers shared by the interprocedural analyzers: enumerate a
// package's function bodies, resolve statically-known callees, and iterate
// summary computations to a fixpoint so recursion (direct or mutual)
// converges instead of depending on declaration order.

// FuncBody is one analyzable function body: a declared function or method
// (Decl non-nil) together with its types.Func object.
type FuncBody struct {
	// Obj is the function's type-checker object.
	Obj *types.Func
	// Decl is the syntax; Decl.Body may be nil for bodyless declarations.
	Decl *ast.FuncDecl
}

// Funcs returns every declared function and method of the pass's package
// that has a body, in source order.
func (p *Pass) Funcs() []FuncBody {
	var out []FuncBody
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, FuncBody{Obj: obj, Decl: fd})
		}
	}
	return out
}

// StaticCallee resolves the function a call invokes, when that is
// statically known: a package-level function (local or imported), or a
// method call on a concrete receiver. Interface method calls, function
// values, conversions and builtins return nil — they are the dynamic edges
// the interprocedural analyzers treat conservatively.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			f, ok := sel.Obj().(*types.Func)
			if !ok || types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
			return f
		}
		// Qualified identifier: pkg.F.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Fixpoint re-runs step until it reports no change, bounding the iteration
// count (summaries grow monotonically, so convergence is certain; the
// bound is a safety net against a non-monotone step).
func Fixpoint(maxRounds int, step func() (changed bool)) {
	for i := 0; i < maxRounds; i++ {
		if !step() {
			return
		}
	}
}
