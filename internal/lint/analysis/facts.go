package analysis

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"go/types"
	"io"
	"reflect"
	"sort"
	"sync"
)

// Facts are the framework's interprocedural currency, mirroring
// golang.org/x/tools/go/analysis: an analyzer computes per-function (or
// per-package) summaries while analyzing one package, exports them as facts,
// and analyses of downstream packages import them by object. Facts cross
// package boundaries serialized (gob), exactly like the vet toolchain's
// .vetx files, so the same machinery serves the in-process driver and the
// go vet unitchecker protocol.

// Fact is one exportable piece of analysis information. Implementations
// must be gob-serializable pointer types registered via RegisterFactTypes;
// the marker method keeps arbitrary values out of the fact maps.
type Fact interface{ AFact() }

// PackageFact pairs a package-level fact with the package it describes.
type PackageFact struct {
	// Path is the package's import path.
	Path string
	// Fact is the stored fact (read-only: callers must not mutate it).
	Fact Fact
}

// wireFact is one serialized fact: Object is the in-package object key
// (ObjectKey), or "" for a package-level fact.
type wireFact struct {
	Object string
	Fact   Fact
}

// wirePackage is the serialization unit: every fact one package exports.
type wirePackage struct {
	Path  string
	Facts []wireFact
}

var (
	registerMu sync.Mutex
	registered = map[reflect.Type]bool{}
)

// RegisterFactTypes registers the concrete fact types with gob so they can
// cross the serialization boundary. Idempotent; drivers call it with every
// analyzer's FactTypes before analysis starts.
func RegisterFactTypes(facts ...Fact) {
	registerMu.Lock()
	defer registerMu.Unlock()
	for _, f := range facts {
		t := reflect.TypeOf(f)
		if registered[t] {
			continue
		}
		registered[t] = true
		gob.Register(f)
	}
}

// Env holds the facts visible to one analysis run: the decoded fact sets of
// every dependency package plus the facts exported while analyzing. It is
// not safe for concurrent use; the driver analyzes packages sequentially.
type Env struct {
	pkgs map[string]*pkgFacts // by package path
}

type pkgFacts struct {
	objs map[string][]Fact // object key → facts (distinct concrete types)
	pkg  []Fact            // package-level facts
}

// NewEnv returns an empty fact environment.
func NewEnv() *Env { return &Env{pkgs: map[string]*pkgFacts{}} }

func (e *Env) pkg(path string) *pkgFacts {
	p := e.pkgs[path]
	if p == nil {
		p = &pkgFacts{objs: map[string][]Fact{}}
		e.pkgs[path] = p
	}
	return p
}

// setFact stores f, replacing a previously stored fact of the same concrete
// type (facts decoded later — e.g. a test variant's — override).
func setFact(facts []Fact, f Fact) []Fact {
	t := reflect.TypeOf(f)
	for i, old := range facts {
		if reflect.TypeOf(old) == t {
			facts[i] = f
			return facts
		}
	}
	return append(facts, f)
}

// getFact copies the stored fact of dst's concrete type into *dst,
// reporting whether one was found.
func getFact(facts []Fact, dst Fact) bool {
	t := reflect.TypeOf(dst)
	for _, f := range facts {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// ObjectKey names a package-level object (or method) stably across the
// serialization boundary: "F" for package-level functions, types and vars,
// "T.M" for methods of the named type T (through one pointer). Objects that
// have no such name — locals, interface methods without a concrete
// receiver, blank identifiers — report false and carry no facts.
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil || obj.Name() == "_" || obj.Name() == "" {
		return "", false
	}
	if f, ok := obj.(*types.Func); ok {
		if recv := f.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + f.Name(), true
		}
	}
	if obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
		return "", false // not package-level
	}
	return obj.Name(), true
}

// ExportObjectFact stores a fact about obj, which must belong to this
// pass's package. Facts on objects that cannot be keyed (locals) are
// silently dropped — they are invisible to other packages anyway.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return
	}
	pf := p.Facts.pkg(obj.Pkg().Path())
	pf.objs[key] = setFact(pf.objs[key], f)
}

// ImportObjectFact copies the fact of *f's concrete type about obj into f,
// reporting whether one exists. It works uniformly for objects of this
// package (exported earlier in the same pass or by a prior analyzer) and
// for imported objects, whose facts were decoded from their package's
// serialized fact set.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	pf := p.Facts.pkgs[obj.Pkg().Path()]
	if pf == nil {
		return false
	}
	return getFact(pf.objs[key], f)
}

// ExportPackageFact stores a package-level fact about this pass's package.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.Facts == nil || p.Pkg == nil {
		return
	}
	pf := p.Facts.pkg(p.Pkg.Path())
	pf.pkg = setFact(pf.pkg, f)
}

// ImportPackageFact copies the package-level fact of *f's concrete type
// about the package at path into f, reporting whether one exists.
func (p *Pass) ImportPackageFact(path string, f Fact) bool {
	if p.Facts == nil {
		return false
	}
	pf := p.Facts.pkgs[path]
	if pf == nil {
		return false
	}
	return getFact(pf.pkg, f)
}

// AllPackageFacts returns every visible package-level fact with prototype's
// concrete type, sorted by package path. The returned facts are the stored
// values: read-only.
func (p *Pass) AllPackageFacts(prototype Fact) []PackageFact {
	if p.Facts == nil {
		return nil
	}
	t := reflect.TypeOf(prototype)
	var out []PackageFact
	for path, pf := range p.Facts.pkgs {
		for _, f := range pf.pkg {
			if reflect.TypeOf(f) == t {
				out = append(out, PackageFact{Path: path, Fact: f})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// wireFor builds the deterministic wire form of one package's facts: facts
// sorted by object key, then by concrete type name. ok is false when the
// package exported nothing.
func (e *Env) wireFor(path string) (wp wirePackage, ok bool) {
	pf := e.pkgs[path]
	if pf == nil || (len(pf.objs) == 0 && len(pf.pkg) == 0) {
		return wirePackage{}, false
	}
	wp = wirePackage{Path: path}
	for _, f := range pf.pkg {
		wp.Facts = append(wp.Facts, wireFact{Fact: f})
	}
	keys := make([]string, 0, len(pf.objs))
	for k := range pf.objs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		facts := append([]Fact(nil), pf.objs[k]...)
		sort.Slice(facts, func(i, j int) bool {
			return factTypeName(facts[i]) < factTypeName(facts[j])
		})
		for _, f := range facts {
			wp.Facts = append(wp.Facts, wireFact{Object: k, Fact: f})
		}
	}
	return wp, true
}

// EncodePackage serializes every fact stored for the package at path (nil
// data when it exported nothing).
func (e *Env) EncodePackage(path string) ([]byte, error) {
	wp, ok := e.wireFor(path)
	if !ok {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wp); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts of %s: %w", path, err)
	}
	return buf.Bytes(), nil
}

// EncodeAll serializes every package's facts as one gob stream (used by
// the vet unitchecker protocol, where one .vetx file must carry the
// transitive fact closure to direct importers). A single encoder writes
// all packages: gob transmits each wire type's definition once per stream,
// and a decoder rejects duplicate definitions — concatenating per-package
// encodings would poison the stream.
func (e *Env) EncodeAll() ([]byte, error) {
	paths := make([]string, 0, len(e.pkgs))
	for p := range e.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, p := range paths {
		wp, ok := e.wireFor(p)
		if !ok {
			continue
		}
		if err := enc.Encode(wp); err != nil {
			return nil, fmt.Errorf("analysis: encoding facts of %s: %w", p, err)
		}
	}
	if buf.Len() == 0 {
		return nil, nil
	}
	return buf.Bytes(), nil
}

// Decode merges one or more serialized fact sets (a gob stream of
// packages) into the environment. Later facts override earlier ones of the
// same (package, object, type), which lets a test-variant package's facts
// shadow its production variant's. Empty data is a no-op.
func (e *Env) Decode(data []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(data))
	for {
		var wp wirePackage
		if err := dec.Decode(&wp); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("analysis: decoding facts: %w", err)
		}
		pf := e.pkg(wp.Path)
		for _, wf := range wp.Facts {
			if wf.Object == "" {
				pf.pkg = setFact(pf.pkg, wf.Fact)
			} else {
				pf.objs[wf.Object] = setFact(pf.objs[wf.Object], wf.Fact)
			}
		}
	}
}

func factTypeName(f Fact) string { return reflect.TypeOf(f).String() }
