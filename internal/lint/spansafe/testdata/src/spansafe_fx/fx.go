// Package spansafe_fx exercises the span-safety analyzer: spans travel as
// *obs.Span (nil = disabled), and allocating span names need a nil guard.
package spansafe_fx

import (
	"fmt"

	"rapidanalytics/internal/obs"
)

// Holder copies a Span by value: counter updates on the copy are lost.
type Holder struct {
	Span obs.Span // want "value type obs.Span"
}

// Unguarded pays for the Sprintf even when tracing is off (parent nil).
func Unguarded(parent *obs.Span, p int) *obs.Span {
	return parent.StartChild(obs.KindTask, fmt.Sprintf("part-%d", p)) // want "span name allocates"
}

// Guarded is the engine idiom and a true negative: the Sprintf only runs
// when a span actually exists.
func Guarded(parent *obs.Span, p int) *obs.Span {
	if parent != nil {
		return parent.StartChild(obs.KindTask, fmt.Sprintf("part-%d", p))
	}
	return nil
}

// ConstName is a true negative: a constant name costs nothing, and the
// nil-receiver no-op handles the disabled case.
func ConstName(parent *obs.Span) *obs.Span {
	return parent.StartChild(obs.KindIO, "dfs-write")
}

// Justified documents why the span is known non-nil.
func Justified(parent *obs.Span, p int) *obs.Span {
	//lint:ignore spansafe caller creates parent unconditionally two frames up
	return parent.StartChild(obs.KindTask, fmt.Sprintf("part-%d", p))
}
