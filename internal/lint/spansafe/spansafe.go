// Package spansafe implements the rapidlint observability-safety analyzer.
//
// The obs tracer (PR 3) keeps the untraced hot path allocation-free through
// two conventions:
//
//  1. *obs.Span travels by pointer, and nil means "tracing disabled" — every
//     Span method is a nil-receiver no-op. Declaring a variable, field,
//     parameter, or result of value type obs.Span breaks that: the value
//     copy has its own counters, updates to it are silently dropped, and the
//     nil-disabled convention can't apply.
//  2. Computing an allocating span name (fmt.Sprintf, string concatenation)
//     and then calling StartChild on a possibly-nil span wastes the
//     allocation when tracing is off — the engine guards those call sites
//     with `if parent != nil { ... }`.
//
// spansafe enforces both. The nil-guard check is syntactic (an enclosing if
// with a `!= nil` condition); if a call site is guarded another way, state
// it with
//
//	//lint:ignore spansafe <how the span is known non-nil here>
package spansafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"rapidanalytics/internal/lint/analysis"
)

// Analyzer flags obs.Span value copies and unguarded allocating span names.
var Analyzer = &analysis.Analyzer{
	Name: "spansafe",
	Doc: "flags declarations of value type obs.Span (spans travel as *obs.Span, " +
		"nil = disabled) and StartChild calls whose name argument allocates " +
		"without an enclosing nil guard",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The obs package itself owns the Span representation.
	if !analysis.PkgPathSuffix(pass.Pkg, "internal/obs") {
		checkValueCopies(pass)
	}
	checkUnguardedNames(pass)
	return nil
}

// checkValueCopies reports every object declared with value type obs.Span.
func checkValueCopies(pass *analysis.Pass) {
	for id, obj := range pass.TypesInfo.Defs {
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		named, ok := v.Type().(*types.Named)
		if !ok || named.Obj().Name() != "Span" || named.Obj().Pkg() == nil {
			continue
		}
		if analysis.PkgPathSuffix(namedPkg(named), "internal/obs") {
			pass.Reportf(id.Pos(),
				"%s is declared with value type obs.Span: spans must travel as *obs.Span (nil = tracing disabled); a value copy drops counter updates silently",
				id.Name)
		}
	}
}

func namedPkg(n *types.Named) *types.Package { return n.Obj().Pkg() }

// checkUnguardedNames reports StartChild calls whose name argument allocates
// (fmt formatting or non-constant string concatenation) with no enclosing
// `!= nil` guard.
func checkUnguardedNames(pass *analysis.Pass) {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !analysis.IsMethodOn(pass.TypesInfo, call, "internal/obs", "Span", "StartChild") {
			return true
		}
		alloc := allocatingArg(pass, call)
		if alloc == nil || hasNilGuard(stack) {
			return true
		}
		pass.Reportf(alloc.Pos(),
			"span name allocates before a StartChild on a possibly-nil span: when tracing is disabled this allocation is pure waste; wrap the call in `if span != nil { ... }` or suppress with //lint:ignore spansafe <why non-nil>")
		return true
	})
}

// allocatingArg returns the first argument subexpression that allocates a
// string at runtime, or nil.
func allocatingArg(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	var found ast.Expr
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch e := n.(type) {
			case *ast.CallExpr:
				for _, name := range []string{"Sprintf", "Sprint", "Sprintln"} {
					if analysis.IsPkgCall(pass.TypesInfo, e, "fmt", name) {
						found = e
						return false
					}
				}
			case *ast.BinaryExpr:
				if e.Op == token.ADD {
					if tv, ok := pass.TypesInfo.Types[e]; ok && analysis.IsStringType(tv.Type) && tv.Value == nil {
						found = e
						return false
					}
				}
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// hasNilGuard reports whether any enclosing if condition compares something
// against nil with != (the engine's `if parent != nil` idiom).
func hasNilGuard(stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.NEQ {
				if isNilIdent(be.X) || isNilIdent(be.Y) {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
