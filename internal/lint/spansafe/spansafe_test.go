package spansafe_test

import (
	"testing"

	"rapidanalytics/internal/lint/linttest"
	"rapidanalytics/internal/lint/spansafe"
)

func TestSpansafe(t *testing.T) {
	linttest.Run(t, spansafe.Analyzer, "spansafe_fx")
}
