// Package server is the cross-package half of the lockorder fixtures: its
// cycle with the store package is invisible to either package alone and is
// stitched together from the store's serialized acquire and edge facts.
package server

import (
	"sync"

	"rapidanalytics/internal/lint/lockorder/testdata/src/lockorder_fx/store"
)

// Server guards its routing table with mu and reads through a store.
type Server struct {
	mu sync.Mutex
	st *store.Store
}

// Handle holds the server lock around a store read. The server lock is
// only ever ordered before the store's locks, so this is a true negative —
// but the edges exist only through Get's interprocedural acquire summary.
func (sv *Server) Handle(k string) int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.st.Get(k)
}

// Evict holds the shared registry lock and re-enters the store. Grow takes
// loadMu, and the store's Refill elsewhere nests the registry lock inside
// loadMu: Registry → loadMu here versus loadMu → Registry there is a
// deadlock no single package can see.
func (sv *Server) Evict() {
	store.Default.Lock()
	defer store.Default.Unlock()
	sv.st.Grow() // want "lock-order cycle"
}
