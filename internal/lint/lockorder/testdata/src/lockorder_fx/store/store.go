// Package store is the dependency half of the lockorder fixtures: it
// establishes the orders mu → loadMu and loadMu → Registry, contains one
// in-package inversion, and exports its edges as facts for the server
// fixture's cross-package cycle.
package store

import "sync"

// Registry is externally lockable: callers hold the embedded mutex around
// multi-step edits, so its class is the named type itself.
type Registry struct {
	sync.Mutex
	entries map[string]int
}

// Default is the shared registry instance.
var Default = &Registry{entries: map[string]int{}}

// Store pairs a read lock with a load lock; the documented order is mu
// before loadMu.
type Store struct {
	mu     sync.RWMutex
	loadMu sync.Mutex
	data   map[string]int
}

// New returns an empty store.
func New() *Store {
	return &Store{data: map[string]int{}}
}

// Get follows the documented order — mu, then loadMu — establishing the
// edge the rest of the fixtures are judged against.
func (s *Store) Get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	return s.data[k]
}

// Reload inverts Get's order: the in-package cycle.
func (s *Store) Reload(k string) {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	s.mu.RLock() // want "lock-order cycle"
	defer s.mu.RUnlock()
	_ = s.data[k]
}

// Refill nests the registry lock inside loadMu: the loadMu → Registry
// edge travels to importers as a package fact.
func (s *Store) Refill() {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	Default.Lock()
	defer Default.Unlock()
	Default.entries["refill"]++
}

// Grow takes only loadMu; its acquire summary is what lets the server
// fixture close a cycle while holding the registry lock.
func (s *Store) Grow() {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	s.data = map[string]int{}
}

// Rebalance releases before re-acquiring in the opposite nesting: a true
// negative — no two locks are ever held together here.
func (s *Store) Rebalance() {
	s.loadMu.Lock()
	s.data = map[string]int{}
	s.loadMu.Unlock()
	s.mu.Lock()
	s.data["rebalanced"] = 1
	s.mu.Unlock()
}
