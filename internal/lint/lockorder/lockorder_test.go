package lockorder_test

import (
	"testing"

	"rapidanalytics/internal/lint/linttest"
	"rapidanalytics/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "lockorder_fx/store", "lockorder_fx/server")
}
