// Package lockorder defines the lock-ordering analyzer: it builds a
// mutex-acquisition graph across packages and reports acquisitions that
// close a cycle — two code paths taking the same pair of locks in opposite
// orders, the classic deadlock recipe.
//
// Locks are tracked as classes, not instances: a class is the declaration
// site of the mutex — a struct field (store.Store.mu), a package-level
// variable, or, for externally-lockable types embedding sync.Mutex, the
// named type itself. Within a function the analyzer keeps the linear
// held-set; acquiring B while holding A records the edge A → B. Two
// serialized fact kinds make the graph interprocedural:
//
//   - AcquiresFact on a function lists the lock classes it may acquire,
//     transitively through its callees; calling it while holding a lock
//     adds edges from every held class to every acquired class.
//   - EdgesFact on a package carries the package's local edges, so
//     downstream packages detect cycles that no single package can see.
//
// The first edge between a pair of classes (in dependency and source
// order) establishes the order; a later reversed edge is reported at its
// acquisition site. Function literals are analyzed as separate units with
// an empty held-set: the analyzer does not guess where a callback runs.
package lockorder

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"rapidanalytics/internal/lint/analysis"
)

// Analyzer reports lock acquisitions that close an ordering cycle.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "pairs of locks must be acquired in one consistent order on every path, across packages",
	FactTypes: []analysis.Fact{(*AcquiresFact)(nil), (*EdgesFact)(nil)},
	Run:       run,
}

// AcquiresFact lists the lock classes a function may take, directly or
// through callees.
type AcquiresFact struct {
	// Classes are the acquired lock classes, sorted.
	Classes []string
}

// AFact marks AcquiresFact as serializable analyzer currency.
func (*AcquiresFact) AFact() {}

// Edge is one observed ordering: To was acquired while From was held.
type Edge struct {
	// From is the lock class held; To is the class acquired under it.
	From, To string
}

// EdgesFact carries a package's local acquisition-order edges to its
// importers.
type EdgesFact struct {
	// Edges are the package's acquisition-order edges, deduplicated.
	Edges []Edge
}

// AFact marks EdgesFact as serializable analyzer currency.
func (*EdgesFact) AFact() {}

// localEdge is an edge with its acquisition site, for reporting.
type localEdge struct {
	Edge
	pos ast.Node
}

func run(pass *analysis.Pass) error {
	funcs := pass.Funcs()

	// Phase 1: per-function acquire summaries to a fixpoint, so transitive
	// acquisition through intra-package call chains converges.
	analysis.Fixpoint(len(funcs)+2, func() bool {
		changed := false
		for _, fb := range funcs {
			acq := map[string]bool{}
			u := &unit{pass: pass, acquires: acq}
			u.walkAll(fb.Decl.Body)
			classes := keys(acq)
			if len(classes) == 0 {
				continue
			}
			var prev AcquiresFact
			if !pass.ImportObjectFact(fb.Obj, &prev) || !equalStrings(prev.Classes, classes) {
				pass.ExportObjectFact(fb.Obj, &AcquiresFact{Classes: classes})
				changed = true
			}
		}
		return changed
	})

	// Phase 2: collect the package's local edges in source order.
	var edges []localEdge
	for _, fb := range funcs {
		u := &unit{pass: pass, trackEdges: true}
		u.walkAll(fb.Decl.Body)
		edges = append(edges, u.edges...)
	}

	// Phase 3: seed the graph with every dependency's edges, then add local
	// edges one by one; an edge whose reverse direction is already
	// reachable closes a cycle and is reported at its acquisition site.
	graph := map[string]map[string]bool{}
	addEdge := func(e Edge) {
		if graph[e.From] == nil {
			graph[e.From] = map[string]bool{}
		}
		graph[e.From][e.To] = true
	}
	for _, pf := range pass.AllPackageFacts(&EdgesFact{}) {
		for _, e := range pf.Fact.(*EdgesFact).Edges {
			addEdge(e)
		}
	}
	reported := map[string]bool{}
	pairKey := func(e Edge) string {
		if e.From < e.To {
			return e.From + "\x00" + e.To
		}
		return e.To + "\x00" + e.From
	}
	for _, le := range edges {
		if reaches(graph, le.To, le.From) && !reported[pairKey(le.Edge)] {
			reported[pairKey(le.Edge)] = true
			pass.Reportf(le.pos.Pos(),
				"acquiring %s while holding %s closes a lock-order cycle: %s is elsewhere acquired before %s; pick one order",
				short(le.To), short(le.From), short(le.To), short(le.From))
		}
		addEdge(le.Edge)
	}

	// Export this package's own edges for importers.
	seen := map[Edge]bool{}
	var out []Edge
	for _, le := range edges {
		if !seen[le.Edge] {
			seen[le.Edge] = true
			out = append(out, le.Edge)
		}
	}
	if len(out) > 0 {
		sort.Slice(out, func(i, j int) bool {
			if out[i].From != out[j].From {
				return out[i].From < out[j].From
			}
			return out[i].To < out[j].To
		})
		pass.ExportPackageFact(&EdgesFact{Edges: out})
	}
	return nil
}

// reaches reports whether to is reachable from from in the edge graph.
func reaches(graph map[string]map[string]bool, from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	frontier := []string{from}
	for len(frontier) > 0 {
		n := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for next := range graph[n] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				frontier = append(frontier, next)
			}
		}
	}
	return false
}

// unit walks one function body (or function literal) with a linear
// held-set. Branches are traversed in sequence — an overapproximation of
// the held-set that errs toward extra edges, never missed ones.
type unit struct {
	pass       *analysis.Pass
	held       []string // acquisition order, duplicates counted
	acquires   map[string]bool
	trackEdges bool
	edges      []localEdge
	pending    []*ast.BlockStmt // function literals, analyzed fresh
}

// walkAll walks body and then every function literal found inside it, each
// as its own unit with an empty held-set.
func (u *unit) walkAll(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	u.walk(body)
	for len(u.pending) > 0 {
		next := u.pending[0]
		u.pending = u.pending[1:]
		sub := &unit{pass: u.pass, acquires: u.acquires, trackEdges: u.trackEdges}
		sub.walk(next)
		u.edges = append(u.edges, sub.edges...)
		u.pending = append(u.pending, sub.pending...)
	}
}

func (u *unit) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			u.pending = append(u.pending, n.Body)
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to function exit (the
			// sticky case); a deferred closure runs at exit with an
			// unknowable held-set, so it is analyzed as a fresh unit.
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				u.pending = append(u.pending, lit.Body)
			}
			return false
		case *ast.CallExpr:
			if class, op, ok := u.mutexOp(n); ok {
				if class == "" {
					return false // unclassed (local) mutex
				}
				switch op {
				case opAcquire:
					u.acquire(class, n)
				case opRelease:
					u.release(class)
				}
				return false
			}
			u.applyCallee(n)
			return true
		}
		return true
	})
}

// acquire records edges from every held class and pushes the class.
func (u *unit) acquire(class string, site ast.Node) {
	if u.acquires != nil {
		u.acquires[class] = true
	}
	if u.trackEdges {
		for _, h := range u.held {
			if h != class {
				u.edges = append(u.edges, localEdge{Edge: Edge{From: h, To: class}, pos: site})
			}
		}
	}
	u.held = append(u.held, class)
}

// release drops the most recent acquisition of the class.
func (u *unit) release(class string) {
	for i := len(u.held) - 1; i >= 0; i-- {
		if u.held[i] == class {
			u.held = append(u.held[:i], u.held[i+1:]...)
			return
		}
	}
}

// applyCallee folds a static callee's acquire summary into the graph: its
// classes are taken while the caller's held-set is live.
func (u *unit) applyCallee(call *ast.CallExpr) {
	callee := analysis.StaticCallee(u.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	var af AcquiresFact
	if !u.pass.ImportObjectFact(callee, &af) {
		return
	}
	for _, c := range af.Classes {
		if u.acquires != nil {
			u.acquires[c] = true
		}
		if u.trackEdges {
			for _, h := range u.held {
				if h != c {
					u.edges = append(u.edges, localEdge{Edge: Edge{From: h, To: c}, pos: call})
				}
			}
		}
	}
}

type mutexVerb int

const (
	opAcquire mutexVerb = iota
	opRelease
)

// mutexOp classifies a call as a sync.Mutex/RWMutex Lock/Unlock and
// resolves the lock class: the mutex's declaration site.
func (u *unit) mutexOp(call *ast.CallExpr) (class string, op mutexVerb, ok bool) {
	fun, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch fun.Sel.Name {
	case "Lock", "RLock":
		op = opAcquire
	case "Unlock", "RUnlock":
		op = opRelease
	default:
		return "", 0, false
	}
	sel, isMethod := u.pass.TypesInfo.Selections[fun]
	if !isMethod || sel.Kind() != types.MethodVal {
		return "", 0, false
	}
	m, isFunc := sel.Obj().(*types.Func)
	if !isFunc || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", 0, false
	}
	// A promoted method means the receiver type embeds the mutex: the
	// named type itself is the externally-lockable class.
	if len(sel.Index()) > 1 {
		if named := namedOf(sel.Recv()); named != nil {
			return classOfType(named), op, true
		}
		return "", op, true
	}
	return u.classOfExpr(fun.X), op, true
}

// classOfExpr maps the mutex-valued receiver expression to its declaration
// site: a field (owner type + field name) or a package-level variable.
// Locals have no class — a lock that never escapes its function cannot
// participate in a cross-function cycle.
func (u *unit) classOfExpr(e ast.Expr) string {
	info := u.pass.TypesInfo
	switch rx := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if fsel, ok := info.Selections[rx]; ok && fsel.Kind() == types.FieldVal {
			if named := namedOf(fsel.Recv()); named != nil {
				return classOfType(named) + "." + fsel.Obj().Name()
			}
			return ""
		}
		// Qualified identifier: pkg.Var.
		if v, ok := info.Uses[rx.Sel].(*types.Var); ok && isPackageLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[rx].(*types.Var); ok && isPackageLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func classOfType(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// short trims a class to its trailing package segment for readable
// diagnostics: ".../internal/share.Scheduler.mu" → "share.Scheduler.mu".
func short(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		return class[i+1:]
	}
	return class
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
