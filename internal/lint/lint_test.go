package lint_test

import (
	"testing"

	"rapidanalytics/internal/lint"
	"rapidanalytics/internal/lint/driver"
)

// TestRepoIsClean runs the full rapidlint suite over every package in the
// module (wildcards skip testdata, so the deliberately-violating fixtures
// stay out of scope). This is the same gate CI runs via
// `go run ./cmd/rapidlint ./...`: any diagnostic here is a regression
// against a machine-checked invariant.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	diags, err := driver.Run("", lint.Analyzers(), "rapidanalytics/...")
	if err != nil {
		t.Fatalf("running rapidlint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
