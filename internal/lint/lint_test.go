package lint_test

import (
	"testing"

	"rapidanalytics/internal/lint"
	"rapidanalytics/internal/lint/driver"
)

// TestRepoIsClean runs the full rapidlint suite over every package in the
// module (wildcards skip testdata, so the deliberately-violating fixtures
// stay out of scope), with the test variants loaded too so the lifecycle
// analyzers police _test.go files. This is the same gate CI runs via
// `go run ./cmd/rapidlint -tests ./...`: any diagnostic here is a
// regression against a machine-checked invariant.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	diags, err := driver.RunOpts("", driver.Options{Tests: true},
		lint.Analyzers(), lint.TestAnalyzers(), "rapidanalytics/...")
	if err != nil {
		t.Fatalf("running rapidlint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
