package refimpl

import (
	"sort"
	"strings"
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/sparql"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

// testGraph builds a small e-commerce graph:
//
//	p1: PT1, label, features f1 f2; offers o1 ($10), o2 ($20)
//	p2: PT1, label, feature f1;     offer o3 ($40)
//	p3: PT1, label, no features;    offer o4 ($100)
//	p4: PT2 (wrong type);           offer o5 ($7)
func testGraph() *rdf.Graph {
	g := &rdf.Graph{}
	prod := func(name, typ string, features ...string) {
		g.Add(rdf.T(iri(name), rdf.TypeTerm, iri(typ)))
		g.Add(rdf.T(iri(name), iri("label"), lit("label-"+name)))
		for _, f := range features {
			g.Add(rdf.T(iri(name), iri("pf"), iri(f)))
		}
	}
	offer := func(name, product, price string) {
		g.Add(rdf.T(iri(name), iri("product"), iri(product)))
		g.Add(rdf.T(iri(name), iri("price"), lit(price)))
	}
	prod("p1", "PT1", "f1", "f2")
	prod("p2", "PT1", "f1")
	prod("p3", "PT1")
	prod("p4", "PT2", "f1")
	offer("o1", "p1", "10")
	offer("o2", "p1", "20")
	offer("o3", "p2", "40")
	offer("o4", "p3", "100")
	offer("o5", "p4", "7")
	return g
}

const mg1Query = `PREFIX e: <http://e/>
SELECT ?f ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a e:PT1 ; e:label ?l2 ; e:pf ?f .
      ?off2 e:product ?p2 ; e:price ?pr2 .
    } GROUP BY ?f
  }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a e:PT1 ; e:label ?l1 .
      ?off1 e:product ?p1 ; e:price ?pr .
    }
  }
}`

func mustAQ(t *testing.T, q string) *algebra.AnalyticalQuery {
	t.Helper()
	parsed, err := sparql.Parse(q)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	aq, err := algebra.Build(parsed)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return aq
}

func TestExecuteMG1(t *testing.T) {
	res, err := Execute(testGraph(), mustAQ(t, mg1Query))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// Per-feature: f1 gets o1+o2 (p1) and o3 (p2): count 3, sum 70.
	//              f2 gets o1+o2 (p1): count 2, sum 30.
	// Overall (type PT1, feature-free pattern): o1..o4: count 4, sum 170.
	got := map[string]string{}
	for _, row := range res.Rows {
		got[row[0]] = strings.Join(row[1:], " ")
	}
	want := map[string]string{
		"Ihttp://e/f1": "70 3 170 4",
		"Ihttp://e/f2": "30 2 170 4",
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %v", got)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("row %s = %q, want %q", k, got[k], w)
		}
	}
}

func TestExecuteSingleGrouping(t *testing.T) {
	// Count offers per product type PT1 product.
	res, err := Execute(testGraph(), mustAQ(t, `PREFIX e: <http://e/>
SELECT ?p (COUNT(?pr) AS ?n) {
  ?p a e:PT1 .
  ?off e:product ?p ; e:price ?pr .
} GROUP BY ?p`))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	counts := map[string]string{}
	for _, row := range res.Rows {
		counts[row[0]] = row[1]
	}
	want := map[string]string{"Ihttp://e/p1": "2", "Ihttp://e/p2": "1", "Ihttp://e/p3": "1"}
	if len(counts) != 3 {
		t.Fatalf("rows = %v", counts)
	}
	for k, w := range want {
		if counts[k] != w {
			t.Errorf("count[%s] = %q, want %q", k, counts[k], w)
		}
	}
}

func TestExecuteFilters(t *testing.T) {
	res, err := Execute(testGraph(), mustAQ(t, `PREFIX e: <http://e/>
SELECT ?p (COUNT(?pr) AS ?n) {
  ?p a e:PT1 .
  ?off e:product ?p ; e:price ?pr .
  FILTER (?pr > 15)
} GROUP BY ?p`))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (o2, o3, o4 pass the filter)", len(res.Rows))
	}
	var keys []string
	for _, row := range res.Rows {
		keys = append(keys, row[0]+"="+row[1])
	}
	sort.Strings(keys)
	want := "Ihttp://e/p1=1,Ihttp://e/p2=1,Ihttp://e/p3=1"
	if strings.Join(keys, ",") != want {
		t.Errorf("rows = %v", keys)
	}
}

func TestExecuteRegexFilter(t *testing.T) {
	res, err := Execute(testGraph(), mustAQ(t, `PREFIX e: <http://e/>
SELECT (COUNT(?l) AS ?n) {
  ?p a e:PT1 ; e:label ?l .
  FILTER regex(?l, "label-p[12]", "i")
}`))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "2" {
		t.Errorf("rows = %v", res.Rows)
	}
}

// A GROUP BY ALL subquery with no matches still yields its single row, so
// the outer cross join does not wipe out the other grouping.
func TestExecuteEmptyGroupByAll(t *testing.T) {
	res, err := Execute(testGraph(), mustAQ(t, `PREFIX e: <http://e/>
SELECT ?f ?cntF ?cntT {
  { SELECT ?f (COUNT(?f) AS ?cntF) { ?p a e:PT2 ; e:pf ?f . } GROUP BY ?f }
  { SELECT (COUNT(?x) AS ?cntT) { ?p2 a e:PT99 ; e:pf ?x . } }
}`))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1] != "1" || res.Rows[0][2] != "0" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestExecuteExpressionProjection(t *testing.T) {
	res, err := Execute(testGraph(), mustAQ(t, `PREFIX e: <http://e/>
SELECT ?f ((?sumF/?cntF) / (?sumT/?cntT) AS ?ratio) {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a e:PT1 ; e:pf ?f . ?off2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a e:PT1 . ?off1 e:product ?p1 ; e:price ?pr . } }
}`)) // avg overall = 170/4 = 42.5; f2 avg = 15 -> ratio f2 ≈ 0.3529...
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	vals := map[string]string{}
	for _, row := range res.Rows {
		vals[row[0]] = row[1]
	}
	f1 := vals["Ihttp://e/f1"]
	if !strings.HasPrefix(f1, "0.549") {
		t.Errorf("f1 ratio = %q", f1)
	}
	f2 := vals["Ihttp://e/f2"]
	if !strings.HasPrefix(f2, "0.352") {
		t.Errorf("f2 ratio = %q", f2)
	}
}

// Join on a shared grouping column (MG3/MG18 shape).
func TestExecuteJoinOnSharedColumn(t *testing.T) {
	g := testGraph()
	// vendors: o1,o2 -> v1 (UK), o3 -> v2 (DE), o4 -> v1 (UK)
	g.Add(
		rdf.T(iri("o1"), iri("vendor"), iri("v1")),
		rdf.T(iri("o2"), iri("vendor"), iri("v1")),
		rdf.T(iri("o3"), iri("vendor"), iri("v2")),
		rdf.T(iri("o4"), iri("vendor"), iri("v1")),
		rdf.T(iri("v1"), iri("country"), lit("UK")),
		rdf.T(iri("v2"), iri("country"), lit("DE")),
	)
	res, err := Execute(g, mustAQ(t, `PREFIX e: <http://e/>
SELECT ?f ?c ?cntF ?cntT {
  { SELECT ?f ?c (COUNT(?pr2) AS ?cntF)
    { ?p2 a e:PT1 ; e:pf ?f . ?off2 e:product ?p2 ; e:price ?pr2 ; e:vendor ?v2 .
      ?v2 e:country ?c . } GROUP BY ?f ?c }
  { SELECT ?c (COUNT(?pr) AS ?cntT)
    { ?p1 a e:PT1 . ?off1 e:product ?p1 ; e:price ?pr ; e:vendor ?v1 .
      ?v1 e:country ?c . } GROUP BY ?c }
}`))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	rows := map[string]string{}
	for _, r := range res.Rows {
		rows[engineDisplay(r[0])+"/"+engineDisplay(r[1])] = r[2] + ":" + r[3]
	}
	// UK offers on PT1: o1,o2,o4 (cntT=3); DE: o3 (cntT=1).
	// (f1,UK): o1,o2 -> 2; (f2,UK): o1,o2 -> 2; (f1,DE): o3 -> 1.
	want := map[string]string{
		"http://e/f1/UK": "2:3",
		"http://e/f2/UK": "2:3",
		"http://e/f1/DE": "1:1",
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for k, w := range want {
		if rows[k] != w {
			t.Errorf("row %s = %q, want %q", k, rows[k], w)
		}
	}
}

func engineDisplay(v string) string {
	if len(v) > 0 && (v[0] == 'I' || v[0] == 'L') {
		return v[1:]
	}
	return v
}
