// Package refimpl is a direct in-memory evaluator for analytical queries:
// BGP matching with bag semantics, grouping, aggregation, and the outer
// join/projection. It is the correctness oracle the MapReduce engines are
// tested against, not an evaluated system.
package refimpl

import (
	"fmt"
	"sort"
	"strings"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/sparql"
)

// Execute evaluates the analytical query directly over the graph.
func Execute(g *rdf.Graph, aq *algebra.AnalyticalQuery) (*engine.Result, error) {
	idx := buildIndex(g)
	subResults := make([][]map[string]string, len(aq.Subqueries))
	for i, sq := range aq.Subqueries {
		rows, err := evalSubquery(idx, sq)
		if err != nil {
			return nil, fmt.Errorf("refimpl: subquery %d: %w", i, err)
		}
		subResults[i] = rows
	}
	return joinAndProject(aq, subResults)
}

// index holds per-property adjacency for fast candidate lookup.
type index struct {
	byProp    map[string][][2]string // prop -> (s, o) pairs, in graph order
	byPropSub map[string][]string    // prop \x00 subject -> objects
	byPropObj map[string][]string    // prop \x00 object -> subjects
	bySub     map[string][][2]string // subject -> (prop, o) pairs
	all       [][3]string            // every (s, prop, o)
}

func buildIndex(g *rdf.Graph) *index {
	idx := &index{
		byProp:    map[string][][2]string{},
		byPropSub: map[string][]string{},
		byPropObj: map[string][]string{},
		bySub:     map[string][][2]string{},
	}
	for _, t := range g.Triples {
		p := t.Property.Value
		s, o := t.Subject.Key(), t.Object.Key()
		idx.byProp[p] = append(idx.byProp[p], [2]string{s, o})
		idx.byPropSub[p+"\x00"+s] = append(idx.byPropSub[p+"\x00"+s], o)
		idx.byPropObj[p+"\x00"+o] = append(idx.byPropObj[p+"\x00"+o], s)
		idx.bySub[s] = append(idx.bySub[s], [2]string{p, o})
		idx.all = append(idx.all, [3]string{s, p, o})
	}
	return idx
}

// evalSubquery matches the pattern with bag semantics and aggregates per
// group, returning one row per group (columns per sq.OutputColumns).
func evalSubquery(idx *index, sq *algebra.Subquery) ([]map[string]string, error) {
	var tps, opts []sparql.TriplePattern
	for _, st := range sq.Pattern.Stars {
		tps = append(tps, st.Triples...)
		opts = append(opts, st.Optionals...)
	}
	groups := map[string]*algebra.MultiAggState{}
	groupVals := map[string][]string{}
	var order []string

	var ferr error
	match(idx, tps, opts, sq.Pattern.Filters, func(b map[string]string) {
		if ferr != nil {
			return
		}
		keyParts := make([]string, len(sq.GroupBy))
		for i, v := range sq.GroupBy {
			if val, ok := b[v]; ok {
				keyParts[i] = val
			} else {
				keyParts[i] = algebra.Null
			}
		}
		key := strings.Join(keyParts, "\x1f")
		st, ok := groups[key]
		if !ok {
			st = algebra.NewMultiAggState(sq.Aggs)
			groups[key] = st
			groupVals[key] = keyParts
			order = append(order, key)
		}
		for i, a := range sq.Aggs {
			st.States[i].Update(b[a.Var])
		}
	})
	if ferr != nil {
		return nil, ferr
	}
	var rows []map[string]string
	for _, key := range order {
		row := map[string]string{}
		finals := groups[key].Finals()
		if !sq.HavingPassed(finals) {
			continue
		}
		for i, v := range sq.GroupBy {
			row[v] = groupVals[key][i]
		}
		for i, a := range sq.Aggs {
			row[a.As] = finals[i]
		}
		rows = append(rows, row)
	}
	// A GROUP BY ALL subquery over an empty match set still yields one row
	// (SPARQL aggregates without GROUP BY always produce a single group),
	// which is then subject to HAVING like any other group.
	if len(order) == 0 && sq.GroupByAll() {
		row := map[string]string{}
		empty := algebra.NewMultiAggState(sq.Aggs)
		finals := empty.Finals()
		if sq.HavingPassed(finals) {
			for i, a := range sq.Aggs {
				row[a.As] = finals[i]
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// match enumerates BGP solutions with a greedy bound-first pattern order,
// then extends each solution through the OPTIONAL patterns with left-outer
// semantics (unmatched optionals leave their variables unbound).
func match(idx *index, tps, opts []sparql.TriplePattern, filters []sparql.Filter, fn func(map[string]string)) {
	binding := map[string]string{}
	done := make([]bool, len(tps))

	filtersByVar := map[string][]sparql.Filter{}
	for _, f := range filters {
		filtersByVar[f.Var] = append(filtersByVar[f.Var], f)
	}
	passes := func(v, val string) bool {
		for _, f := range filtersByVar[v] {
			ok, err := algebra.EvalFilter(f, val)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}

	var recOpt func(j int)
	recOpt = func(j int) {
		if j == len(opts) {
			fn(binding)
			return
		}
		tp := opts[j]
		sVal := binding[tp.S.Var]
		prop := tp.P.Term.Value
		matched := false
		for _, o := range idx.byPropSub[prop+"\x00"+sVal] {
			if !tp.O.IsVar {
				if o == tp.O.Term.Key() {
					matched = true
					recOpt(j + 1)
				}
				continue
			}
			matched = true
			binding[tp.O.Var] = o
			recOpt(j + 1)
			delete(binding, tp.O.Var)
		}
		if !matched {
			recOpt(j + 1)
		}
	}

	var rec func(remaining int)
	rec = func(remaining int) {
		if remaining == 0 {
			recOpt(0)
			return
		}
		// Pick the most constrained unprocessed pattern: bound subject
		// beats bound/constant object beats unbound.
		best, bestScore := -1, -1
		for i, tp := range tps {
			if done[i] {
				continue
			}
			score := 0
			if _, ok := binding[tp.S.Var]; ok {
				score += 2
			}
			if !tp.O.IsVar {
				score++
			} else if _, ok := binding[tp.O.Var]; ok {
				score += 2
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		tp := tps[best]
		done[best] = true
		defer func() { done[best] = false }()

		if tp.P.IsVar {
			matchUnbound(idx, tp, binding, passes, rec, remaining)
			return
		}
		prop := tp.P.Term.Value
		sVal, sBound := binding[tp.S.Var]
		var oVal string
		oBound := false
		if tp.O.IsVar {
			oVal, oBound = binding[tp.O.Var]
		} else {
			oVal, oBound = tp.O.Term.Key(), true
		}

		emit := func(s, o string) {
			setS := !sBound
			setO := tp.O.IsVar && !oBound
			if setS {
				if !passes(tp.S.Var, s) {
					return
				}
				binding[tp.S.Var] = s
			}
			if setO {
				if !passes(tp.O.Var, o) {
					if setS {
						delete(binding, tp.S.Var)
					}
					return
				}
				binding[tp.O.Var] = o
			}
			rec(remaining - 1)
			if setS {
				delete(binding, tp.S.Var)
			}
			if setO {
				delete(binding, tp.O.Var)
			}
		}

		switch {
		case sBound && oBound:
			for _, o := range idx.byPropSub[prop+"\x00"+sVal] {
				if o == oVal {
					emit(sVal, oVal)
				}
			}
		case sBound:
			for _, o := range idx.byPropSub[prop+"\x00"+sVal] {
				emit(sVal, o)
			}
		case oBound:
			for _, s := range idx.byPropObj[prop+"\x00"+oVal] {
				emit(s, oVal)
			}
		default:
			for _, so := range idx.byProp[prop] {
				emit(so[0], so[1])
			}
		}
	}
	rec(len(tps))
}

// matchUnbound enumerates candidates for an unbound-property pattern,
// binding the property variable (in "I"+IRI key form like other bindings).
func matchUnbound(idx *index, tp sparql.TriplePattern, binding map[string]string,
	passes func(v, val string) bool, rec func(int), remaining int) {
	sVal, sBound := binding[tp.S.Var]
	emit := func(s, p, o string) {
		pv := tp.P.Var
		pKey := "I" + p
		if prev, had := binding[pv]; had && prev != pKey {
			return
		}
		if !tp.O.IsVar && tp.O.Term.Key() != o {
			return
		}
		if !passes(pv, pKey) {
			return
		}
		setS := !sBound
		if setS {
			if !passes(tp.S.Var, s) {
				return
			}
			binding[tp.S.Var] = s
		}
		setP := false
		if _, had := binding[pv]; !had {
			binding[pv] = pKey
			setP = true
		}
		setO := false
		if tp.O.IsVar {
			if prev, had := binding[tp.O.Var]; had {
				if prev != o {
					if setP {
						delete(binding, pv)
					}
					if setS {
						delete(binding, tp.S.Var)
					}
					return
				}
			} else if !passes(tp.O.Var, o) {
				if setP {
					delete(binding, pv)
				}
				if setS {
					delete(binding, tp.S.Var)
				}
				return
			} else {
				binding[tp.O.Var] = o
				setO = true
			}
		}
		rec(remaining - 1)
		if setO {
			delete(binding, tp.O.Var)
		}
		if setP {
			delete(binding, pv)
		}
		if setS {
			delete(binding, tp.S.Var)
		}
	}
	if sBound {
		for _, po := range idx.bySub[sVal] {
			emit(sVal, po[0], po[1])
		}
		return
	}
	for _, spo := range idx.all {
		emit(spo[0], spo[1], spo[2])
	}
}

// joinAndProject joins the subquery results on shared columns and evaluates
// the outer projection — the in-memory analogue of engine.FinalJoinJob.
func joinAndProject(aq *algebra.AnalyticalQuery, sub [][]map[string]string) (*engine.Result, error) {
	acc := sub[0]
	for i := 1; i < len(sub); i++ {
		joinCols := aq.JoinColumns(i)
		idx := map[string][]map[string]string{}
		for _, r := range sub[i] {
			idx[joinKey(r, joinCols)] = append(idx[joinKey(r, joinCols)], r)
		}
		var next []map[string]string
		for _, left := range acc {
			for _, right := range idx[joinKey(left, joinCols)] {
				merged := map[string]string{}
				for k, v := range left {
					merged[k] = v
				}
				for k, v := range right {
					merged[k] = v
				}
				next = append(next, merged)
			}
		}
		acc = next
	}
	res := &engine.Result{Columns: aq.OutputColumns()}
	for _, row := range acc {
		out := make(codec.Tuple, len(aq.Projection))
		for i, pi := range aq.Projection {
			if pi.Expr != nil {
				v, err := algebra.EvalExpr(pi.Expr, row)
				if err != nil {
					out[i] = algebra.Null
					continue
				}
				out[i] = algebra.FormatNumber(v)
				continue
			}
			v, ok := row[pi.Var]
			if !ok {
				v = algebra.Null
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	if aq.Sorted() {
		raws := make([][]byte, len(res.Rows))
		for i, r := range res.Rows {
			raws[i] = r.Encode()
		}
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return engine.CompareRows(res.Rows[idx[a]], res.Rows[idx[b]], aq, raws[idx[a]], raws[idx[b]]) < 0
		})
		sorted := make([]codec.Tuple, 0, len(idx))
		for _, i := range idx {
			sorted = append(sorted, res.Rows[i])
		}
		if aq.Limit > 0 && aq.Limit < len(sorted) {
			sorted = sorted[:aq.Limit]
		}
		res.Rows = sorted
	}
	return res, nil
}

func joinKey(row map[string]string, cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = row[c]
	}
	return strings.Join(parts, "\x1f")
}
