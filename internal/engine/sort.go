package engine

import (
	"bytes"
	"sort"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/mapred"
)

// ORDER BY / LIMIT need a total order over the final result. As in Hive,
// this costs one extra MapReduce cycle with a single reducer: every row
// shuffles to one partition, which sorts and truncates.

// SortJob builds the total-order cycle over the final result file. The
// input's rows must be codec.Tuples in aq.OutputColumns order.
func SortJob(aq *algebra.AnalyticalQuery, input, output string) *mapred.Job {
	return &mapred.Job{
		Name:           "order-by",
		Inputs:         []string{input},
		Output:         output,
		Partitions:     1,
		MapOperator:    "identity",
		ReduceOperator: "order-by",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error {
				emit("", rec)
				return nil
			})
		},
		NewReducer: func() mapred.Reducer {
			return mapred.ReducerFunc(func(key string, values [][]byte, emit mapred.Emit) error {
				rows := make([]codec.Tuple, 0, len(values))
				raws := make([][]byte, 0, len(values))
				for _, v := range values {
					t, err := codec.DecodeTuple(v)
					if err != nil {
						return err
					}
					rows = append(rows, t)
					raws = append(raws, v)
				}
				idx := make([]int, len(rows))
				for i := range idx {
					idx[i] = i
				}
				sort.SliceStable(idx, func(a, b int) bool {
					return CompareRows(rows[idx[a]], rows[idx[b]], aq, raws[idx[a]], raws[idx[b]]) < 0
				})
				limit := len(idx)
				if aq.Limit > 0 && aq.Limit < limit {
					limit = aq.Limit
				}
				for _, i := range idx[:limit] {
					emit("", raws[i])
				}
				return nil
			})
		},
	}
}

// CompareRows orders two result rows by the query's ORDER BY keys, with the
// full encoded row as a deterministic tiebreaker (so LIMIT selects the same
// rows in every engine and in the oracle).
func CompareRows(a, b codec.Tuple, aq *algebra.AnalyticalQuery, rawA, rawB []byte) int {
	for _, pos := range orderKeyPositions(aq) {
		if pos.col < 0 || pos.col >= len(a) || pos.col >= len(b) {
			continue
		}
		c := algebra.CompareValues(a[pos.col], b[pos.col])
		if pos.desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return bytes.Compare(rawA, rawB)
}

type orderPos struct {
	col  int
	desc bool
}

func orderKeyPositions(aq *algebra.AnalyticalQuery) []orderPos {
	cols := aq.OutputColumns()
	out := make([]orderPos, 0, len(aq.OrderBy))
	for _, k := range aq.OrderBy {
		p := orderPos{col: -1, desc: k.Desc}
		for i, c := range cols {
			if c == k.Var {
				p.col = i
				break
			}
		}
		out = append(out, p)
	}
	return out
}

// finishSorted appends the ORDER BY/LIMIT cycle when the query needs one
// and reads the final result.
func finishSorted(r *Runner, aq *algebra.AnalyticalQuery, file string) (*Result, *mapred.WorkflowMetrics, error) {
	if !aq.Sorted() {
		res, err := ReadResult(r.C.FS, file, aq.OutputColumns())
		return res, r.WM, err
	}
	out := r.Path("sorted")
	if err := r.Exec(SortJob(aq, file, out)); err != nil {
		return nil, r.WM, err
	}
	res, err := ReadResult(r.C.FS, out, aq.OutputColumns())
	return res, r.WM, err
}
