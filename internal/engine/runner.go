package engine

import (
	"fmt"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/mapred"
)

// Runner tracks one engine execution: the cluster, a unique temp-file
// prefix, and the accumulated workflow metrics.
type Runner struct {
	C  *mapred.Cluster
	WM *mapred.WorkflowMetrics

	prefix string
	seq    int
}

// NewRunner returns a runner writing temp files under prefix.
func NewRunner(c *mapred.Cluster, prefix string) *Runner {
	return &Runner{C: c, WM: &mapred.WorkflowMetrics{}, prefix: prefix}
}

// Path allocates a unique temp file path.
func (r *Runner) Path(name string) string {
	r.seq++
	return fmt.Sprintf("%s/%02d-%s", r.prefix, r.seq, name)
}

// Exec runs one job and records its metrics.
func (r *Runner) Exec(job *mapred.Job) error {
	m, err := r.C.Run(job)
	if err != nil {
		return err
	}
	r.WM.Jobs = append(r.WM.Jobs, m)
	return nil
}

// FinishQuery joins the per-subquery aggregate files (one map-only cycle)
// and reads the final result. Single-subquery queries read their aggregate
// directly: its column order is already the query's projection.
func FinishQuery(r *Runner, aq *algebra.AnalyticalQuery, aggFiles []string) (*Result, *mapred.WorkflowMetrics, error) {
	if err := EnsureDefaultRows(r.C.FS, aggFiles, aq); err != nil {
		return nil, r.WM, err
	}
	if err := ApplyGroupByAllHaving(r.C.FS, aggFiles, aq); err != nil {
		return nil, r.WM, err
	}
	if len(aggFiles) == 1 {
		return finishSorted(r, aq, aggFiles[0])
	}
	out := r.Path("final")
	if err := r.Exec(FinalJoinJob(aq, aggFiles, out)); err != nil {
		return nil, r.WM, err
	}
	return finishSorted(r, aq, out)
}

// FinishQueryTagged is the variant over a single tagged aggregate file (the
// parallel TG_AgJ output of RAPIDAnalytics).
func FinishQueryTagged(r *Runner, aq *algebra.AnalyticalQuery, tagged string) (*Result, *mapred.WorkflowMetrics, error) {
	if err := EnsureDefaultRowsTagged(r.C.FS, tagged, aq); err != nil {
		return nil, r.WM, err
	}
	if err := ApplyGroupByAllHavingTagged(r.C.FS, tagged, aq); err != nil {
		return nil, r.WM, err
	}
	out := r.Path("final")
	if err := r.Exec(TaggedFinalJoinJob(aq, tagged, out)); err != nil {
		return nil, r.WM, err
	}
	return finishSorted(r, aq, out)
}
