package engine

import (
	"fmt"
	"strconv"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/mapred"
)

// The final phase of every engine's workflow joins the per-subquery
// aggregated results on their shared grouping columns and evaluates the
// outer projection. Aggregated results are small (one row per group), so
// all engines execute this as a single map-only cycle with the non-driving
// inputs broadcast — Hive's map-join, and the paper's "map-only phase to
// join the aggregated TG equivalence classes".

// FinalJoinJob builds the map-only join job. inputs[i] must hold subquery
// i's rows as codec.Tuple records in Subquery.OutputColumns order.
func FinalJoinJob(aq *algebra.AnalyticalQuery, inputs []string, output string) *mapred.Job {
	return &mapred.Job{
		Name:        "final-join",
		Inputs:      inputs[:1],
		SideInputs:  inputs[1:],
		Output:      output,
		MapOperator: "final-join",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			sides := make([][]codec.Tuple, len(inputs)-1)
			for i, name := range inputs[1:] {
				sides[i] = decodeAll(tc.SideInput(name))
			}
			return &finalJoinMapper{aq: aq, sides: sides}
		},
	}
}

// TaggedFinalJoinJob is the variant for engines that aggregate every
// subquery in one parallel cycle (RAPIDAnalytics, Figure 6b): all rows live
// in one file, prefixed with the subquery id. The file is both the driving
// input (id-0 rows) and the broadcast side (other ids).
func TaggedFinalJoinJob(aq *algebra.AnalyticalQuery, tagged, output string) *mapred.Job {
	n := len(aq.Subqueries)
	return &mapred.Job{
		Name:        "final-join",
		Inputs:      []string{tagged},
		SideInputs:  []string{tagged},
		Output:      output,
		MapOperator: "final-join",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			sides := make([][]codec.Tuple, n-1)
			for _, rec := range tc.SideInput(tagged) {
				t, err := codec.DecodeTuple(rec)
				if err != nil || len(t) == 0 {
					continue
				}
				id, err := strconv.Atoi(t[0])
				if err != nil || id <= 0 || id >= n {
					continue
				}
				sides[id-1] = append(sides[id-1], t[1:])
			}
			return &finalJoinMapper{aq: aq, sides: sides, tagged: true}
		},
	}
}

type finalJoinMapper struct {
	aq     *algebra.AnalyticalQuery
	sides  [][]codec.Tuple // rows of subqueries 1..n-1
	tagged bool

	indexes []map[string][]codec.Tuple // lazy hash indexes per side
}

func (m *finalJoinMapper) Map(rec []byte, emit mapred.Emit) error {
	t, err := codec.DecodeTuple(rec)
	if err != nil {
		return err
	}
	if m.tagged {
		if len(t) == 0 {
			return fmt.Errorf("engine: empty tagged row")
		}
		id, err := strconv.Atoi(t[0])
		if err != nil {
			return fmt.Errorf("engine: bad subquery tag %q", t[0])
		}
		if id != 0 {
			return nil // non-driving rows arrive via the side input
		}
		t = t[1:]
	}
	if m.indexes == nil {
		m.buildIndexes()
	}
	row := map[string]string{}
	cols := m.aq.Subqueries[0].OutputColumns()
	if len(t) != len(cols) {
		return fmt.Errorf("engine: subquery 0 row has %d fields, want %d", len(t), len(cols))
	}
	for i, c := range cols {
		row[c] = t[i]
	}
	m.extend(row, 1, emit)
	return nil
}

// buildIndexes hashes every side on its join columns.
func (m *finalJoinMapper) buildIndexes() {
	m.indexes = make([]map[string][]codec.Tuple, len(m.sides))
	for i, rows := range m.sides {
		sq := m.aq.Subqueries[i+1]
		joinCols := m.aq.JoinColumns(i + 1)
		idx := map[string][]codec.Tuple{}
		cols := sq.OutputColumns()
		pos := columnPositions(cols, joinCols)
		for _, r := range rows {
			if len(r) != len(cols) {
				continue
			}
			idx[joinKeyOf(r, pos)] = append(idx[joinKeyOf(r, pos)], r)
		}
		m.indexes[i] = idx
	}
}

// extend joins the partial row with subquery i's rows and recurses;
// at the end it evaluates the outer projection.
func (m *finalJoinMapper) extend(row map[string]string, i int, emit mapred.Emit) {
	if i == len(m.aq.Subqueries) {
		m.project(row, emit)
		return
	}
	sq := m.aq.Subqueries[i]
	cols := sq.OutputColumns()
	joinCols := m.aq.JoinColumns(i)
	key := ""
	for k, c := range joinCols {
		if k > 0 {
			key += "\x1f"
		}
		key += row[c]
	}
	for _, r := range m.indexes[i-1][key] {
		added := make([]string, 0, len(cols))
		ok := true
		for j, c := range cols {
			if prev, exists := row[c]; exists {
				if prev != r[j] {
					ok = false
					break
				}
				continue
			}
			row[c] = r[j]
			added = append(added, c)
		}
		if ok {
			m.extend(row, i+1, emit)
		}
		for _, c := range added {
			delete(row, c)
		}
	}
}

func (m *finalJoinMapper) project(row map[string]string, emit mapred.Emit) {
	out := make(codec.Tuple, len(m.aq.Projection))
	for i, pi := range m.aq.Projection {
		if pi.Expr != nil {
			v, err := algebra.EvalExpr(pi.Expr, row)
			if err != nil {
				out[i] = algebra.Null
				continue
			}
			out[i] = algebra.FormatNumber(v)
			continue
		}
		v, ok := row[pi.Var]
		if !ok {
			v = algebra.Null
		}
		out[i] = v
	}
	emit("", out.Encode())
}

func columnPositions(cols, want []string) []int {
	pos := make([]int, len(want))
	for i, w := range want {
		pos[i] = -1
		for j, c := range cols {
			if c == w {
				pos[i] = j
				break
			}
		}
	}
	return pos
}

func joinKeyOf(r codec.Tuple, pos []int) string {
	key := ""
	for k, p := range pos {
		if k > 0 {
			key += "\x1f"
		}
		if p >= 0 {
			key += r[p]
		}
	}
	return key
}

func decodeAll(recs [][]byte) []codec.Tuple {
	out := make([]codec.Tuple, 0, len(recs))
	for _, rec := range recs {
		if t, err := codec.DecodeTuple(rec); err == nil {
			out = append(out, t)
		}
	}
	return out
}
