package engine

import (
	"strconv"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/dfs"
)

// GROUP BY ALL subqueries always produce exactly one group, even over an
// empty match set (SPARQL aggregates without GROUP BY); a MapReduce
// grouping job over zero rows, however, produces an empty file. Before the
// final join, engines repair such files with the aggregates' default values
// — the paper's "aggregated triplegroup retains default values" (Figure 5,
// agtg3). This is a metadata fix-up, not an extra cycle: a real system
// would emit the default row from the job client.

// EnsureDefaultRows appends a default row to every empty per-subquery
// result file whose subquery groups by ALL. files[i] belongs to subquery i.
func EnsureDefaultRows(fs *dfs.FS, files []string, aq *algebra.AnalyticalQuery) {
	for i, sq := range aq.Subqueries {
		if !sq.GroupByAll() {
			continue
		}
		f, err := fs.Open(files[i])
		if err != nil || f.NumRecords() > 0 {
			continue
		}
		appendRecord(fs, files[i], defaultRow(sq).Encode())
	}
}

// EnsureDefaultRowsTagged is the variant for a single file of id-prefixed
// rows (the parallel-aggregation output of RAPIDAnalytics).
func EnsureDefaultRowsTagged(fs *dfs.FS, file string, aq *algebra.AnalyticalQuery) {
	f, err := fs.Open(file)
	if err != nil {
		return
	}
	present := map[int]bool{}
	for _, rec := range f.Records {
		t, err := codec.DecodeTuple(rec)
		if err != nil || len(t) == 0 {
			continue
		}
		if id, err := strconv.Atoi(t[0]); err == nil {
			present[id] = true
		}
	}
	for i, sq := range aq.Subqueries {
		if !sq.GroupByAll() || present[i] {
			continue
		}
		row := append(codec.Tuple{strconv.Itoa(i)}, defaultRow(sq)...)
		appendRecord(fs, file, row.Encode())
	}
}

// ApplyGroupByAllHaving filters GROUP BY ALL subquery rows by their HAVING
// constraints. It runs after EnsureDefaultRows: the single group always
// exists first (possibly with default values) and is then subjected to
// HAVING, matching SPARQL semantics. Grouped subqueries apply HAVING inside
// their aggregation reducers instead.
func ApplyGroupByAllHaving(fs *dfs.FS, files []string, aq *algebra.AnalyticalQuery) {
	for i, sq := range aq.Subqueries {
		if !sq.GroupByAll() || len(sq.Having) == 0 {
			continue
		}
		f, err := fs.Open(files[i])
		if err != nil {
			continue
		}
		w := fs.Create(files[i], f.CompressionRatio)
		for _, rec := range f.Records {
			t, err := codec.DecodeTuple(rec)
			if err != nil || sq.HavingPassed(t) {
				w.Write(rec)
			}
		}
	}
}

// ApplyGroupByAllHavingTagged is the tagged-file variant.
func ApplyGroupByAllHavingTagged(fs *dfs.FS, file string, aq *algebra.AnalyticalQuery) {
	needed := false
	for _, sq := range aq.Subqueries {
		if sq.GroupByAll() && len(sq.Having) > 0 {
			needed = true
		}
	}
	if !needed {
		return
	}
	f, err := fs.Open(file)
	if err != nil {
		return
	}
	w := fs.Create(file, f.CompressionRatio)
	for _, rec := range f.Records {
		t, err := codec.DecodeTuple(rec)
		if err != nil || len(t) == 0 {
			w.Write(rec)
			continue
		}
		id, err := strconv.Atoi(t[0])
		if err != nil || id < 0 || id >= len(aq.Subqueries) {
			w.Write(rec)
			continue
		}
		sq := aq.Subqueries[id]
		if !sq.GroupByAll() || len(sq.Having) == 0 || sq.HavingPassed(t[1:]) {
			w.Write(rec)
		}
	}
}

func defaultRow(sq *algebra.Subquery) codec.Tuple {
	return codec.Tuple(algebra.NewMultiAggState(sq.Aggs).Finals())
}

func appendRecord(fs *dfs.FS, name string, rec []byte) {
	f, err := fs.Open(name)
	if err != nil {
		return
	}
	records := append(f.Records, rec)
	ratio := f.CompressionRatio
	w := fs.Create(name, ratio)
	for _, r := range records {
		w.WriteOwned(r)
	}
}
