package engine

import (
	"strconv"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/dfs"
)

// GROUP BY ALL subqueries always produce exactly one group, even over an
// empty match set (SPARQL aggregates without GROUP BY); a MapReduce
// grouping job over zero rows, however, produces an empty file. Before the
// final join, engines repair such files with the aggregates' default values
// — the paper's "aggregated triplegroup retains default values" (Figure 5,
// agtg3). This is a metadata fix-up, not an extra cycle: a real system
// would emit the default row from the job client.

// EnsureDefaultRows appends a default row to every empty per-subquery
// result file whose subquery groups by ALL. files[i] belongs to subquery i.
func EnsureDefaultRows(fs *dfs.FS, files []string, aq *algebra.AnalyticalQuery) error {
	for i, sq := range aq.Subqueries {
		if !sq.GroupByAll() {
			continue
		}
		f, err := fs.Open(files[i])
		if err != nil || f.NumRecords() > 0 {
			continue
		}
		f.Close()
		if err := appendRecord(fs, files[i], defaultRow(sq).Encode()); err != nil {
			return err
		}
	}
	return nil
}

// EnsureDefaultRowsTagged is the variant for a single file of id-prefixed
// rows (the parallel-aggregation output of RAPIDAnalytics).
func EnsureDefaultRowsTagged(fs *dfs.FS, file string, aq *algebra.AnalyticalQuery) error {
	f, err := fs.Open(file)
	if err != nil {
		return nil
	}
	present := map[int]bool{}
	it := f.Records(0)
	for it.Next() {
		t, err := codec.DecodeTuple(it.Record())
		if err != nil || len(t) == 0 {
			continue
		}
		if id, err := strconv.Atoi(t[0]); err == nil {
			present[id] = true
		}
	}
	rerr := it.Err()
	f.Close()
	if rerr != nil {
		return rerr
	}
	for i, sq := range aq.Subqueries {
		if !sq.GroupByAll() || present[i] {
			continue
		}
		row := append(codec.Tuple{strconv.Itoa(i)}, defaultRow(sq)...)
		if err := appendRecord(fs, file, row.Encode()); err != nil {
			return err
		}
	}
	return nil
}

// ApplyGroupByAllHaving filters GROUP BY ALL subquery rows by their HAVING
// constraints. It runs after EnsureDefaultRows: the single group always
// exists first (possibly with default values) and is then subjected to
// HAVING, matching SPARQL semantics. Grouped subqueries apply HAVING inside
// their aggregation reducers instead.
func ApplyGroupByAllHaving(fs *dfs.FS, files []string, aq *algebra.AnalyticalQuery) error {
	for i, sq := range aq.Subqueries {
		if !sq.GroupByAll() || len(sq.Having) == 0 {
			continue
		}
		f, err := fs.Open(files[i])
		if err != nil {
			continue
		}
		err = rewriteFiltered(fs, files[i], f, func(rec []byte) bool {
			t, err := codec.DecodeTuple(rec)
			return err != nil || sq.HavingPassed(t)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ApplyGroupByAllHavingTagged is the tagged-file variant.
func ApplyGroupByAllHavingTagged(fs *dfs.FS, file string, aq *algebra.AnalyticalQuery) error {
	needed := false
	for _, sq := range aq.Subqueries {
		if sq.GroupByAll() && len(sq.Having) > 0 {
			needed = true
		}
	}
	if !needed {
		return nil
	}
	f, err := fs.Open(file)
	if err != nil {
		return nil
	}
	return rewriteFiltered(fs, file, f, func(rec []byte) bool {
		t, err := codec.DecodeTuple(rec)
		if err != nil || len(t) == 0 {
			return true
		}
		id, err := strconv.Atoi(t[0])
		if err != nil || id < 0 || id >= len(aq.Subqueries) {
			return true
		}
		sq := aq.Subqueries[id]
		return !sq.GroupByAll() || len(sq.Having) == 0 || sq.HavingPassed(t[1:])
	})
}

// rewriteFiltered replaces name with the records of snapshot f that keep
// reports true, preserving the file's compression ratio. It closes f.
func rewriteFiltered(fs *dfs.FS, name string, f *dfs.File, keep func(rec []byte) bool) error {
	defer f.Close()
	w, err := fs.Create(name, f.CompressionRatio())
	if err != nil {
		return err
	}
	it := f.Records(0)
	for it.Next() {
		if keep(it.Record()) {
			w.WriteOwned(it.Record())
		}
	}
	if err := it.Err(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

func defaultRow(sq *algebra.Subquery) codec.Tuple {
	return codec.Tuple(algebra.NewMultiAggState(sq.Aggs).Finals())
}

// appendRecord rewrites name with its current records plus rec — the
// read-modify-write append the mem backend allowed in place.
func appendRecord(fs *dfs.FS, name string, rec []byte) error {
	f, err := fs.Open(name)
	if err != nil {
		return nil
	}
	defer f.Close()
	w, err := fs.Create(name, f.CompressionRatio())
	if err != nil {
		return err
	}
	it := f.Records(0)
	for it.Next() {
		w.WriteOwned(it.Record())
	}
	if err := it.Err(); err != nil {
		w.Close()
		return err
	}
	w.WriteOwned(rec)
	return w.Close()
}
