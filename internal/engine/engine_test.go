package engine

import (
	"strings"
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/sparql"
)

func mustAQ(t *testing.T, q string) *algebra.AnalyticalQuery {
	t.Helper()
	parsed, err := sparql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	aq, err := algebra.Build(parsed)
	if err != nil {
		t.Fatal(err)
	}
	return aq
}

const twoSubqueries = `PREFIX e: <http://e/>
SELECT ?g ?cntG ?cntT {
  { SELECT ?g (COUNT(?x) AS ?cntG) { ?s e:g ?g ; e:x ?x . } GROUP BY ?g }
  { SELECT (COUNT(?y) AS ?cntT) { ?s2 e:y ?y . } }
}`

func writeRecs(t *testing.T, fs *dfs.FS, name string, recs ...[]byte) {
	t.Helper()
	w, err := fs.Create(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		w.Write(r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readRecs(t *testing.T, fs *dfs.FS, name string) [][]byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := f.AllRecords()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestResultEqualDiff(t *testing.T) {
	a := &Result{Columns: []string{"x", "y"}, Rows: []codec.Tuple{{"1", "2"}, {"3", "4"}}}
	b := &Result{Columns: []string{"x", "y"}, Rows: []codec.Tuple{{"3", "4"}, {"1", "2"}}}
	if !a.Equal(b) {
		t.Error("row order should not matter")
	}
	if d := a.Diff(b); d != "" {
		t.Errorf("Diff = %q", d)
	}
	c := &Result{Columns: []string{"x", "y"}, Rows: []codec.Tuple{{"1", "2"}}}
	if a.Equal(c) || a.Diff(c) == "" {
		t.Error("row-count difference not detected")
	}
	d := &Result{Columns: []string{"x", "y"}, Rows: []codec.Tuple{{"1", "2"}, {"3", "5"}}}
	if a.Equal(d) || !strings.Contains(a.Diff(d), "row") {
		t.Errorf("value difference not detected: %q", a.Diff(d))
	}
	e := &Result{Columns: []string{"x"}, Rows: nil}
	if a.Equal(e) {
		t.Error("column difference not detected")
	}
}

func TestDisplay(t *testing.T) {
	cases := map[string]string{
		"Ihttp://e/x": "http://e/x",
		"LUK":         "UK",
		"42":          "42",
		algebra.Null:  "NULL",
		"B_b1":        "_b1",
	}
	for in, want := range cases {
		if got := Display(in); got != want {
			t.Errorf("Display(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPretty(t *testing.T) {
	r := &Result{Columns: []string{"country", "cnt"}, Rows: []codec.Tuple{{"LUK", "10"}, {"LDE", "3"}}}
	out := r.Pretty()
	if !strings.Contains(out, "country") || !strings.Contains(out, "UK") {
		t.Errorf("Pretty = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("Pretty lines = %d", len(lines))
	}
}

func TestFinalJoinJobCrossJoin(t *testing.T) {
	aq := mustAQ(t, twoSubqueries)
	c := mapred.NewCluster(mapred.DefaultConfig())
	writeRecs(t, c.FS, "sub0", codec.Tuple{"Ig1", "3"}.Encode(), codec.Tuple{"Ig2", "5"}.Encode())
	writeRecs(t, c.FS, "sub1", codec.Tuple{"7"}.Encode())
	if _, err := c.Run(FinalJoinJob(aq, []string{"sub0", "sub1"}, "out")); err != nil {
		t.Fatal(err)
	}
	res, err := ReadResult(c.FS, "out", aq.OutputColumns())
	if err != nil {
		t.Fatal(err)
	}
	want := &Result{Columns: aq.OutputColumns(), Rows: []codec.Tuple{
		{"Ig1", "3", "7"}, {"Ig2", "5", "7"},
	}}
	if d := want.Diff(res); d != "" {
		t.Errorf("final join: %s", d)
	}
}

func TestTaggedFinalJoinJob(t *testing.T) {
	aq := mustAQ(t, twoSubqueries)
	c := mapred.NewCluster(mapred.DefaultConfig())
	writeRecs(t, c.FS, "tagged",
		codec.Tuple{"0", "Ig1", "3"}.Encode(),
		codec.Tuple{"1", "7"}.Encode(),
		codec.Tuple{"0", "Ig2", "5"}.Encode())
	m, err := c.Run(TaggedFinalJoinJob(aq, "tagged", "out"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.MapOnly {
		t.Error("tagged final join should be map-only")
	}
	res, err := ReadResult(c.FS, "out", aq.OutputColumns())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEnsureDefaultRows(t *testing.T) {
	aq := mustAQ(t, twoSubqueries)
	c := mapred.NewCluster(mapred.DefaultConfig())
	writeRecs(t, c.FS, "sub0", codec.Tuple{"Ig1", "3"}.Encode())
	writeRecs(t, c.FS, "sub1") // empty GROUP BY ALL result
	if err := EnsureDefaultRows(c.FS, []string{"sub0", "sub1"}, aq); err != nil {
		t.Fatal(err)
	}
	recs := readRecs(t, c.FS, "sub1")
	if len(recs) != 1 {
		t.Fatalf("default row not appended: %d records", len(recs))
	}
	tu, err := codec.DecodeTuple(recs[0])
	if err != nil || len(tu) != 1 || tu[0] != "0" {
		t.Errorf("default row = %v, %v (want COUNT default 0)", tu, err)
	}
	// The grouped subquery must NOT be repaired.
	c2 := mapred.NewCluster(mapred.DefaultConfig())
	writeRecs(t, c2.FS, "sub0")
	writeRecs(t, c2.FS, "sub1", codec.Tuple{"9"}.Encode())
	if err := EnsureDefaultRows(c2.FS, []string{"sub0", "sub1"}, aq); err != nil {
		t.Fatal(err)
	}
	f0, _ := c2.FS.Open("sub0")
	defer f0.Close()
	if f0.NumRecords() != 0 {
		t.Error("grouped subquery file repaired; should stay empty")
	}
	// Idempotent on non-empty files.
	f1, _ := c2.FS.Open("sub1")
	defer f1.Close()
	if f1.NumRecords() != 1 {
		t.Error("non-empty GROUP BY ALL file modified")
	}
}

func TestEnsureDefaultRowsTagged(t *testing.T) {
	aq := mustAQ(t, twoSubqueries)
	c := mapred.NewCluster(mapred.DefaultConfig())
	writeRecs(t, c.FS, "tagged", codec.Tuple{"0", "Ig1", "3"}.Encode()) // only subquery 0 rows
	if err := EnsureDefaultRowsTagged(c.FS, "tagged", aq); err != nil {
		t.Fatal(err)
	}
	recs := readRecs(t, c.FS, "tagged")
	if len(recs) != 2 {
		t.Fatalf("records = %d, want default row appended", len(recs))
	}
	tu, _ := codec.DecodeTuple(recs[1])
	if len(tu) != 2 || tu[0] != "1" || tu[1] != "0" {
		t.Errorf("appended row = %v", tu)
	}
}

// End-to-end through the runner: repairing and joining yields the oracle
// shape even when the ALL side matched nothing.
func TestFinishQueryWithEmptyAllSide(t *testing.T) {
	aq := mustAQ(t, twoSubqueries)
	c := mapred.NewCluster(mapred.DefaultConfig())
	r := NewRunner(c, "tmp/test")
	writeRecs(t, c.FS, "sub0", codec.Tuple{"Ig1", "3"}.Encode())
	writeRecs(t, c.FS, "sub1")
	res, wm, err := FinishQuery(r, aq, []string{"sub0", "sub1"})
	if err != nil {
		t.Fatal(err)
	}
	if wm.Cycles() != 1 {
		t.Errorf("cycles = %d, want 1 (map-only final join)", wm.Cycles())
	}
	if len(res.Rows) != 1 || res.Rows[0][2] != "0" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestRunnerPathsUnique(t *testing.T) {
	c := mapred.NewCluster(mapred.DefaultConfig())
	r := NewRunner(c, "tmp/x")
	a, b := r.Path("j"), r.Path("j")
	if a == b {
		t.Errorf("paths collide: %q", a)
	}
	if !strings.HasPrefix(a, "tmp/x/") {
		t.Errorf("path prefix: %q", a)
	}
}

func TestCompareRows(t *testing.T) {
	aq := mustAQ(t, `PREFIX e: <http://e/>
SELECT ?g (COUNT(?x) AS ?n) { ?s e:g ?g ; e:x ?x . } GROUP BY ?g ORDER BY DESC(?n) ?g`)
	a := codec.Tuple{"Ib", "10"}
	b := codec.Tuple{"Ia", "9"}
	// DESC(?n): a (10) sorts before b (9).
	if CompareRows(a, b, aq, a.Encode(), b.Encode()) >= 0 {
		t.Error("descending count ordering wrong")
	}
	// Equal counts: ascending group key breaks the tie.
	c := codec.Tuple{"Ia", "10"}
	if CompareRows(c, a, aq, c.Encode(), a.Encode()) >= 0 {
		t.Error("secondary key ordering wrong")
	}
	// Fully equal keys: raw bytes break the tie deterministically.
	if CompareRows(a, a, aq, []byte{1}, []byte{2}) >= 0 {
		t.Error("raw tiebreaker wrong")
	}
	// NULLs sort first.
	n := codec.Tuple{algebra.Null, "10"}
	asc := mustAQ(t, `PREFIX e: <http://e/>
SELECT ?g (COUNT(?x) AS ?n) { ?s e:g ?g ; e:x ?x . } GROUP BY ?g ORDER BY ?g`)
	if CompareRows(n, a, asc, n.Encode(), a.Encode()) >= 0 {
		t.Error("NULL should sort first ascending")
	}
}
