// Package engine defines the common contract the four evaluated systems
// implement — Hive (Naive), Hive (MQO), RAPID+ (Naive) and RAPIDAnalytics —
// plus the shared pieces every engine needs: datasets loaded into both
// physical layouts, result tables with canonical comparison, and the final
// map-only join of aggregated subquery results.
package engine

import (
	"fmt"
	"sort"
	"strings"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/stats"
	"rapidanalytics/internal/store"
)

// Dataset is a graph loaded into the cluster's DFS in both physical
// layouts, mirroring the paper's pre-processing phase.
type Dataset struct {
	Name  string
	Graph *rdf.Graph
	VP    *store.VPStore
	TG    *store.TGStore
	// Dict is the term dictionary when the dataset was loaded with
	// dictionary encoding: stored tables and triplegroups are in the
	// compact ID plane and engines decode back to lexical form only at the
	// final aggregation boundary. Nil means the lexical plane.
	Dict *rdf.Dict
	// Stats is the load-time statistics catalog the cost-based planner
	// consumes (predicate counts, characteristic sets). Always collected by
	// LoadWith; engines with the cost planner disabled ignore it.
	Stats *stats.Catalog
}

// LoadOptions configures dataset materialisation.
type LoadOptions struct {
	// DictionaryEncoding stores both physical layouts in the dictionary
	// plane (integer term IDs end-to-end; see rdf.Dict). Off reproduces
	// the original lexical layouts.
	DictionaryEncoding bool
}

// DefaultLoadOptions enables dictionary encoding.
func DefaultLoadOptions() LoadOptions { return LoadOptions{DictionaryEncoding: true} }

// Load materialises the graph into the cluster's file system under the
// dataset name with the default options (dictionary encoding on).
func Load(c *mapred.Cluster, name string, g *rdf.Graph) (*Dataset, error) {
	return LoadWith(c, name, g, DefaultLoadOptions())
}

// LoadWith materialises the graph into the cluster's file system under the
// dataset name.
func LoadWith(c *mapred.Cluster, name string, g *rdf.Graph, opts LoadOptions) (*Dataset, error) {
	var d *rdf.Dict
	if opts.DictionaryEncoding {
		d = rdf.NewDict()
	}
	vp, err := store.BuildVP(c.FS, g, name+"/vp", d)
	if err != nil {
		return nil, fmt.Errorf("engine: loading %s: %w", name, err)
	}
	tg, err := store.BuildTG(c.FS, g, name+"/tg", d)
	if err != nil {
		return nil, fmt.Errorf("engine: loading %s: %w", name, err)
	}
	// The statistics catalog is collected in the same load pass and
	// serialised next to the physical layouts, so the disk backend persists
	// it through the blockstore like any other dataset file.
	st := stats.Collect(g)
	if err := stats.Write(c.FS, name, st); err != nil {
		return nil, fmt.Errorf("engine: loading %s: %w", name, err)
	}
	return &Dataset{
		Name:  name,
		Graph: g,
		VP:    vp,
		TG:    tg,
		Dict:  d,
		Stats: st,
	}, nil
}

// Engine evaluates analytical queries on a cluster.
type Engine interface {
	// Name identifies the engine in reports ("RAPIDAnalytics", ...).
	Name() string
	// Execute runs the query over the dataset and returns the result table
	// and the executed workflow's metrics.
	Execute(c *mapred.Cluster, ds *Dataset, q *algebra.AnalyticalQuery) (*Result, *mapred.WorkflowMetrics, error)
}

// Result is a query result table. Values are stored raw: grouping columns
// in rdf.Term.Key form, aggregate and expression columns in lexical form.
type Result struct {
	Columns []string
	Rows    []codec.Tuple
}

// Canonical returns the rows rendered as sorted strings, for set
// comparison between engines.
func (r *Result) Canonical() []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = strings.Join(row, "\x1f")
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two results have the same columns and the same
// multiset of rows.
func (r *Result) Equal(o *Result) bool {
	if len(r.Columns) != len(o.Columns) {
		return false
	}
	for i := range r.Columns {
		if r.Columns[i] != o.Columns[i] {
			return false
		}
	}
	a, b := r.Canonical(), o.Canonical()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff describes the first difference between two results, for test
// failure messages. Empty when equal.
func (r *Result) Diff(o *Result) string {
	if len(r.Columns) != len(o.Columns) {
		return fmt.Sprintf("column count %d vs %d", len(r.Columns), len(o.Columns))
	}
	a, b := r.Canonical(), o.Canonical()
	if len(a) != len(b) {
		return fmt.Sprintf("row count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("row %d:\n  %q\nvs\n  %q", i, strings.ReplaceAll(a[i], "\x1f", " | "), strings.ReplaceAll(b[i], "\x1f", " | "))
		}
	}
	return ""
}

// Pretty renders the result as an aligned text table with term keys
// stripped to their lexical forms.
func (r *Result) Pretty() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = Display(v)
			if j < len(widths) && len(cells[j]) > widths[j] {
				widths[j] = len(cells[j])
			}
		}
		rows[i] = cells
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for k := len(c); k < widths[j]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Display strips the term-key tag from a value for human consumption.
func Display(v string) string {
	if algebra.IsNull(v) {
		return "NULL"
	}
	if len(v) > 0 && (v[0] == 'I' || v[0] == 'L' || v[0] == 'B') {
		// Term keys always carry a tag; lexical aggregate values never
		// start with I/L/B followed by content that came from Term.Key.
		// Only strip when the remainder looks like a term (IRIs contain
		// '/' or ':'; literals are stripped unconditionally for 'L').
		if v[0] == 'L' || v[0] == 'B' || strings.ContainsAny(v[1:], "/:#") {
			return v[1:]
		}
	}
	return v
}

// ReadResult loads a DFS file of codec.Tuple records as a result table.
func ReadResult(fs *dfs.FS, file string, columns []string) (*Result, error) {
	f, err := fs.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res := &Result{Columns: columns}
	it := f.Records(0)
	for it.Next() {
		t, err := codec.DecodeTuple(it.Record())
		if err != nil {
			return nil, fmt.Errorf("engine: reading %s: %w", file, err)
		}
		res.Rows = append(res.Rows, t)
	}
	if err := it.Err(); err != nil {
		return nil, fmt.Errorf("engine: reading %s: %w", file, err)
	}
	return res, nil
}
