// Package hive implements the two relational baselines the paper evaluates
// against: Hive (Naive), a direct SPARQL→HiveQL-style translation over
// vertically partitioned ORC tables, and Hive (MQO), the multi-query
// optimization rewriting of Le et al. [27] that evaluates a composite graph
// pattern with left outer joins, materialises it, and runs the
// grouping-aggregation queries over the materialised table.
//
// The physical operators mirror Hive 0.12's: reduce-side hash joins, map
// joins (broadcast small tables, map-only cycles), early projection and
// predicate pushdown on scans (Naive only — the MQO materialisation
// boundary defeats them, as the paper observes), DISTINCT, and group-by
// aggregation with combiners.
package hive

import (
	"fmt"
	"strings"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/sparql"
)

// Config carries the planner's tuning knobs.
type Config struct {
	// MapJoinBytes is the largest total stored size of broadcast tables for
	// which a join compiles to a map-only cycle, interpreted at *paper
	// scale*: measured sizes are multiplied by the cluster's DataScale
	// before the comparison, so the planner behaves as Hive would on the
	// original datasets. The default is Hive's
	// hive.mapjoin.smalltable.filesize (25MB).
	MapJoinBytes int64
	// CostPlanner orders the inter-star join chain by predicted cardinality
	// from the dataset's statistics catalog (internal/stats), sizes the
	// map-join-site decision for chain inputs from predicted rows — real
	// Hive compiles the whole plan before execution and cannot measure
	// intermediates — and sizes reduce partitions from predicted output
	// rows. Disabled, the chain runs star-0-first with measured sizes.
	CostPlanner bool
}

// DefaultConfig mirrors Hive 0.12 defaults, with the cost-based planner on.
func DefaultConfig() Config { return Config{MapJoinBytes: 25 << 20, CostPlanner: true} }

// EstBytesPerField is the planner's calibrated stored size per tuple field
// when converting predicted row counts into bytes for the map-join budget:
// compact dictionary-plane fields at ORC-like compression.
const EstBytesPerField = 4

// estimatedSize converts a predicted row count for a cols-wide relation
// into paper-scale stored bytes, the estimate-driven counterpart of
// storedSize for intermediates whose size the plan-time optimizer cannot
// measure.
func (c Config) estimatedSize(cl *mapred.Cluster, rows float64, cols int) int64 {
	scale := cl.Config.DataScale
	if scale < 1 {
		scale = 1
	}
	if cols < 1 {
		cols = 1
	}
	sz := int64(rows * float64(cols*EstBytesPerField) * scale)
	if sz < 1 {
		sz = 1
	}
	return sz
}

// rel describes a relation as a scan specification: a DFS file of raw
// tuples plus the transformations applied lazily by whichever job scans it
// (column naming, constant checks from constant-object triple patterns, and
// pushed-down filters). Intermediate job outputs are rels with fully named
// columns and no residual checks.
type rel struct {
	file string
	// cols names each raw tuple field; "" drops the field on scan.
	cols []string
	// consts maps raw field index to a required value (Term.Key form);
	// non-matching tuples are dropped.
	consts map[int]string
	// filters are pushed-down FILTER constraints, keyed by column name.
	filters []sparql.Filter
	// dict is non-nil when the relation's tuples are in the dictionary
	// plane (compact ID-tuples whose fields are rdf.Dict ID-strings). The
	// planner resolves constant checks into the same plane, so scans compare
	// raw field bytes either way; filters decode through the dictionary
	// before evaluation. Nil is the lexical plane.
	dict *rdf.Dict
}

// decode parses one raw record of the relation's file in its plane.
func (r *rel) decode(rec []byte) (codec.Tuple, error) {
	if r.dict != nil {
		return codec.DecodeIDTuple(rec, r.dict)
	}
	return codec.DecodeTuple(rec)
}

// lexOf translates a plane value to its lexical Term.Key form for filter
// evaluation. Lexical-plane values pass through.
func (r *rel) lexOf(v string) string {
	if r.dict == nil {
		return v
	}
	if lex, ok := r.dict.Lex(v); ok {
		if lex == "" {
			return algebra.Null
		}
		return lex
	}
	return v
}

// planeEncode serialises a row in the plane selected by d.
//
//rapid:hot
func planeEncode(d *rdf.Dict, row codec.Tuple) []byte {
	if d != nil {
		return row.EncodeIDs()
	}
	return row.Encode()
}

// planeEncodeTagged serialises a row with a leading tag byte in a single
// allocation — the hot emit path of the reduce-side joins.
//
//rapid:hot
func planeEncodeTagged(d *rdf.Dict, tag byte, row codec.Tuple) []byte {
	if d != nil {
		buf := make([]byte, 1, 1+row.EncodedIDsLen())
		buf[0] = tag
		return row.AppendEncodeIDs(buf)
	}
	buf := make([]byte, 1, 1+row.EncodedLen())
	buf[0] = tag
	return row.AppendEncode(buf)
}

// planeConst translates a lexical term key into the dataset's plane, for
// pushed-down constant-object checks. Keys absent from the dictionary map to
// an ID-string that matches no data value.
func planeConst(d *rdf.Dict, key string) string {
	if d == nil {
		return key
	}
	return d.KeyString(key)
}

// outCols returns the named columns a scan of the relation produces.
func (r *rel) outCols() []string {
	var out []string
	for _, c := range r.cols {
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}

// scan applies the relation's lazy transformations to one raw tuple.
func (r *rel) scan(raw codec.Tuple) (codec.Tuple, bool) {
	if len(raw) != len(r.cols) {
		return nil, false
	}
	for i, want := range r.consts {
		if raw[i] != want {
			return nil, false
		}
	}
	var out codec.Tuple
	for i, c := range r.cols {
		if c == "" {
			continue
		}
		for _, f := range r.filters {
			if f.Var == c {
				ok, err := algebra.EvalFilter(f, r.lexOf(raw[i]))
				if err != nil || !ok {
					return nil, false
				}
			}
		}
		out = append(out, raw[i])
	}
	return out, true
}

func (r *rel) colIndex(name string) int {
	i := 0
	for _, c := range r.cols {
		if c == "" {
			continue
		}
		if c == name {
			return i
		}
		i++
	}
	return -1
}

// materialized returns a rel describing a job output with the given columns,
// in the plane selected by d.
func materialized(file string, cols []string, d *rdf.Dict) *rel {
	return &rel{file: file, cols: cols, dict: d}
}

// storedSize returns a file's stored size extrapolated to paper scale, the
// quantity map-join planning compares against Config.MapJoinBytes.
func (c Config) storedSize(cl *mapred.Cluster, file string) int64 {
	f, err := cl.FS.Open(file)
	if err != nil {
		return 1 << 62
	}
	scale := cl.Config.DataScale
	if scale < 1 {
		scale = 1
	}
	defer f.Close()
	sz := int64(float64(f.StoredBytes()) * scale)
	// A non-empty table occupies at least one stored byte; compact ID-tuples
	// compress small enough to round to zero otherwise, which would let a
	// non-empty broadcast side fit a zero map-join budget.
	if sz == 0 && f.NumRecords() > 0 {
		sz = 1
	}
	return sz
}

// starInput couples a rel with its role in a (composite) star join.
type starInput struct {
	rel *rel
	// keyCol is the subject column the star joins on.
	keyCol string
	// optional marks MQO secondary properties joined with LEFT OUTER
	// semantics: subjects without matches keep the star row, with NULLs in
	// the input's non-key columns.
	optional bool
}

func (si *starInput) nonKeyCols() []string {
	var out []string
	for _, c := range si.rel.outCols() {
		if c != si.keyCol {
			out = append(out, c)
		}
	}
	return out
}

// starJoinCols returns the output schema of a star join: the subject column
// followed by each input's non-key columns, restricted to keep (nil keeps
// everything).
func starJoinCols(inputs []*starInput, keep map[string]bool) []string {
	out := []string{inputs[0].keyCol}
	for _, si := range inputs {
		for _, c := range si.nonKeyCols() {
			if keep == nil || keep[c] {
				out = append(out, c)
			}
		}
	}
	return out
}

// starJoinJob builds the reduce-side star join of the inputs on their
// subject columns. Inputs must reference distinct files.
func starJoinJob(name string, inputs []*starInput, keep map[string]bool, output string, compression float64) (*mapred.Job, *rel) {
	outCols := starJoinCols(inputs, keep)
	d := inputs[0].rel.dict
	byFile := map[string]int{}
	for i, si := range inputs {
		byFile[si.rel.file] = i
	}
	files := make([]string, len(inputs))
	for i, si := range inputs {
		files[i] = si.rel.file
	}
	job := &mapred.Job{
		Name:              name,
		Inputs:            files,
		Output:            output,
		OutputCompression: compression,
		MapOperator:       "vp-scan",
		ReduceOperator:    "star-join",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			idx := byFile[tc.InputFile]
			si := inputs[idx]
			keyPos := si.rel.colIndex(si.keyCol)
			tag := byte(idx)
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error {
				raw, err := si.rel.decode(rec)
				if err != nil {
					return err
				}
				row, ok := si.rel.scan(raw)
				if !ok {
					return nil
				}
				emit(row[keyPos], planeEncodeTagged(d, tag, row))
				return nil
			})
		},
		NewReducer: func() mapred.Reducer {
			return mapred.ReducerFunc(func(key string, values [][]byte, emit mapred.Emit) error {
				return reduceStar(key, values, inputs, keep, d, emit)
			})
		},
	}
	return job, materialized(output, outCols, d)
}

// reduceStar joins one subject's rows across all inputs, honouring
// optional (left-outer) inputs.
func reduceStar(key string, values [][]byte, inputs []*starInput, keep map[string]bool, d *rdf.Dict, emit mapred.Emit) error {
	perInput := make([][]codec.Tuple, len(inputs))
	for _, v := range values {
		if len(v) < 1 {
			return fmt.Errorf("hive: empty star-join value")
		}
		tag := int(v[0])
		if tag >= len(inputs) {
			return fmt.Errorf("hive: bad star-join tag %d", tag)
		}
		t, err := inputs[tag].rel.decode(v[1:])
		if err != nil {
			return err
		}
		perInput[tag] = append(perInput[tag], t)
	}
	for i, si := range inputs {
		if !si.optional && len(perInput[i]) == 0 {
			return nil
		}
	}
	rows := []codec.Tuple{{key}}
	for i, si := range inputs {
		keptPos := keptPositions(si, keep)
		matches := perInput[i]
		var next []codec.Tuple
		if len(matches) == 0 { // optional, unmatched: NULL-extend
			for _, r := range rows {
				ext := append(codec.Tuple{}, r...)
				for range keptPos {
					ext = append(ext, algebra.Null)
				}
				next = append(next, ext)
			}
		} else {
			for _, r := range rows {
				for _, m := range matches {
					ext := append(codec.Tuple{}, r...)
					for _, p := range keptPos {
						ext = append(ext, m[p])
					}
					next = append(next, ext)
				}
			}
		}
		rows = next
	}
	for _, r := range rows {
		emit("", planeEncode(d, r))
	}
	return nil
}

// starMapJoinJob builds the map-only variant: the driving input streams and
// every other input is broadcast.
func starMapJoinJob(name string, inputs []*starInput, driving int, keep map[string]bool, output string, compression float64) (*mapred.Job, *rel) {
	ordered := []*starInput{inputs[driving]}
	for i, si := range inputs {
		if i != driving {
			ordered = append(ordered, si)
		}
	}
	outCols := starJoinCols(ordered, keep)
	d := ordered[0].rel.dict
	var sides []string
	for _, si := range ordered[1:] {
		sides = append(sides, si.rel.file)
	}
	job := &mapred.Job{
		Name:              name,
		Inputs:            []string{ordered[0].rel.file},
		SideInputs:        sides,
		Output:            output,
		OutputCompression: compression,
		MapOperator:       "star-map-join",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			// Hash each side by its subject column.
			hashes := make([]map[string][]codec.Tuple, len(ordered)-1)
			for i, si := range ordered[1:] {
				h := map[string][]codec.Tuple{}
				keyPos := si.rel.colIndex(si.keyCol)
				for _, rec := range tc.SideInput(si.rel.file) {
					raw, err := si.rel.decode(rec)
					if err != nil {
						continue
					}
					row, ok := si.rel.scan(raw)
					if !ok {
						continue
					}
					h[row[keyPos]] = append(h[row[keyPos]], row)
				}
				hashes[i] = h
			}
			drv := ordered[0]
			drvKey := drv.rel.colIndex(drv.keyCol)
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error {
				raw, err := drv.rel.decode(rec)
				if err != nil {
					return err
				}
				row, ok := drv.rel.scan(raw)
				if !ok {
					return nil
				}
				key := row[drvKey]
				rows := []codec.Tuple{{key}}
				// Driving input's own non-key columns first.
				for _, p := range keptPositions(drv, keep) {
					rows[0] = append(rows[0], row[p])
				}
				for i, si := range ordered[1:] {
					matches := hashes[i][key]
					keptPos := keptPositions(si, keep)
					var next []codec.Tuple
					if len(matches) == 0 {
						if !si.optional {
							return nil
						}
						for _, r := range rows {
							ext := append(codec.Tuple{}, r...)
							for range keptPos {
								ext = append(ext, algebra.Null)
							}
							next = append(next, ext)
						}
					} else {
						for _, r := range rows {
							for _, m := range matches {
								ext := append(codec.Tuple{}, r...)
								for _, pp := range keptPos {
									ext = append(ext, m[pp])
								}
								next = append(next, ext)
							}
						}
					}
					rows = next
				}
				for _, r := range rows {
					emit("", planeEncode(d, r))
				}
				return nil
			})
		},
	}
	return job, materialized(output, outCols, d)
}

// joinJob builds a binary equi-join of two relations on named columns,
// projecting to keep (nil keeps all columns; the join column appears once,
// under the left name).
func joinJob(name string, left, right *rel, leftCol, rightCol string, keep map[string]bool, output string, compression float64) (*mapred.Job, *rel) {
	outCols := joinOutCols(left, right, leftCol, rightCol, keep)
	d := left.dict
	job := &mapred.Job{
		Name:              name,
		Inputs:            []string{left.file, right.file},
		Output:            output,
		OutputCompression: compression,
		MapOperator:       "vp-scan",
		ReduceOperator:    "hash-join",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			r, tag, keyCol := left, byte(0), leftCol
			if tc.InputFile == right.file {
				r, tag, keyCol = right, 1, rightCol
			}
			keyPos := r.colIndex(keyCol)
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error {
				raw, err := r.decode(rec)
				if err != nil {
					return err
				}
				row, ok := r.scan(raw)
				if !ok {
					return nil
				}
				emit(row[keyPos], planeEncodeTagged(d, tag, row))
				return nil
			})
		},
		NewReducer: func() mapred.Reducer {
			return symJoinReducer(left, right, leftCol, rightCol, keep, d)
		},
	}
	return job, materialized(output, outCols, d)
}

// mapJoinJob builds the map-only variant of joinJob, broadcasting right.
func mapJoinJob(name string, left, right *rel, leftCol, rightCol string, keep map[string]bool, output string, compression float64) (*mapred.Job, *rel) {
	outCols := joinOutCols(left, right, leftCol, rightCol, keep)
	d := left.dict
	job := &mapred.Job{
		Name:              name,
		Inputs:            []string{left.file},
		SideInputs:        []string{right.file},
		Output:            output,
		OutputCompression: compression,
		MapOperator:       "map-join",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			rightKeyPos := right.colIndex(rightCol)
			h := map[string][]codec.Tuple{}
			for _, rec := range tc.SideInput(right.file) {
				raw, err := right.decode(rec)
				if err != nil {
					continue
				}
				row, ok := right.scan(raw)
				if !ok {
					continue
				}
				h[row[rightKeyPos]] = append(h[row[rightKeyPos]], row)
			}
			leftKeyPos := left.colIndex(leftCol)
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error {
				raw, err := left.decode(rec)
				if err != nil {
					return err
				}
				row, ok := left.scan(raw)
				if !ok {
					return nil
				}
				for _, m := range h[row[leftKeyPos]] {
					emit("", planeEncode(d, mergeJoinRow(left, right, leftCol, rightCol, keep, row, m)))
				}
				return nil
			})
		},
	}
	return job, materialized(output, outCols, d)
}

func joinOutCols(left, right *rel, leftCol, rightCol string, keep map[string]bool) []string {
	out := []string{leftCol}
	for _, c := range left.outCols() {
		if c != leftCol && (keep == nil || keep[c]) {
			out = append(out, c)
		}
	}
	for _, c := range right.outCols() {
		if c != rightCol && (keep == nil || keep[c]) {
			out = append(out, c)
		}
	}
	return out
}

func mergeJoinRow(left, right *rel, leftCol, rightCol string, keep map[string]bool, l, r codec.Tuple) codec.Tuple {
	out := codec.Tuple{l[left.colIndex(leftCol)]}
	for i, c := range left.outCols() {
		if c != leftCol && (keep == nil || keep[c]) {
			out = append(out, l[i])
		}
	}
	for i, c := range right.outCols() {
		if c != rightCol && (keep == nil || keep[c]) {
			out = append(out, r[i])
		}
	}
	return out
}

// groupAggJob builds the grouping-aggregation cycle: map emits per-row
// partial aggregate states keyed by the grouping columns, a combiner merges
// them map-side (Hive's hash aggregation), and the reducer emits one row
// per group: [group values..., aggregate finals...].
//
// valid optionally filters rows map-side (the MQO pattern-validity check);
// rewrite optionally renames the aggregation input columns (identity when
// nil).
func groupAggJob(name string, in *rel, groupCols []string, aggs []algebra.AggSpec, valid func(codec.Tuple) bool, having func([]string) bool, output string) (*mapred.Job, *rel) {
	outCols := append(append([]string{}, groupCols...), aggAliases(aggs)...)
	d := in.dict
	groupPos := make([]int, len(groupCols))
	for i, c := range groupCols {
		groupPos[i] = in.colIndex(c)
	}
	aggPos := make([]int, len(aggs))
	for i, a := range aggs {
		aggPos[i] = in.colIndex(a.Var)
	}
	job := &mapred.Job{
		Name:           name,
		Inputs:         []string{in.file},
		Output:         output,
		MapOperator:    "partial-agg",
		ReduceOperator: "group-agg",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			var keyBuf []byte
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error {
				raw, err := in.decode(rec)
				if err != nil {
					return err
				}
				row, ok := in.scan(raw)
				if !ok {
					return nil
				}
				if valid != nil && !valid(row) {
					return nil
				}
				keyBuf = keyBuf[:0]
				for i, p := range groupPos {
					if d == nil && i > 0 {
						keyBuf = append(keyBuf, 0x1f)
					}
					keyBuf = append(keyBuf, row[p]...)
				}
				st := algebra.NewMultiAggState(aggs)
				for i, p := range aggPos {
					st.States[i].UpdateTerm(d, row[p])
				}
				emit(string(keyBuf), st.AppendEncode(nil))
				return nil
			})
		},
		NewCombiner: func() mapred.Reducer { return aggMerger(aggs, false, nil, nil, nil) },
		NewReducer:  func() mapred.Reducer { return aggMerger(aggs, true, groupCols, having, d) },
	}
	// The reducer decodes group keys back to lexical form: aggregate outputs
	// are the plane boundary, so the output rel is lexical in both planes.
	return job, materialized(output, outCols, nil)
}

// splitGroupKey recovers the group values from a grouping key. Lexical keys
// are "\x1f"-joined; dictionary-plane keys are separator-free concatenations
// of self-delimiting uvarint ID-strings, decoded back to lexical Term.Key
// form here — the plane's decode boundary.
func splitGroupKey(d *rdf.Dict, key string) ([]string, error) {
	if d == nil {
		return strings.Split(key, "\x1f"), nil
	}
	var out []string
	buf := []byte(key)
	for len(buf) > 0 {
		id, rest, err := codec.ReadUvarint(buf)
		if err != nil {
			return nil, fmt.Errorf("hive: group key: %w", err)
		}
		buf = rest
		if id == 0 {
			out = append(out, algebra.Null)
			continue
		}
		k, ok := d.Key(id)
		if !ok {
			return nil, fmt.Errorf("hive: group key holds unknown term id %d", id)
		}
		out = append(out, k)
	}
	return out, nil
}

// aggMerger merges encoded MultiAggStates per key. As a combiner it
// re-emits the merged state; as a reducer it emits the final row, dropping
// groups that fail the HAVING predicate. With a non-nil dictionary the
// reducer decodes the grouping key back to lexical form, so final rows are
// byte-identical across planes.
func aggMerger(aggs []algebra.AggSpec, final bool, groupCols []string, having func([]string) bool, d *rdf.Dict) mapred.Reducer {
	return mapred.ReducerFunc(func(key string, values [][]byte, emit mapred.Emit) error {
		acc := algebra.NewMultiAggState(aggs)
		for _, v := range values {
			st, err := algebra.DecodeMultiAggStateBytes(v)
			if err != nil {
				return err
			}
			acc.Merge(st)
		}
		if !final {
			emit(key, acc.AppendEncode(nil))
			return nil
		}
		finals := acc.Finals()
		if having != nil && !having(finals) {
			return nil
		}
		var row codec.Tuple
		if len(groupCols) > 0 {
			groups, err := splitGroupKey(d, key)
			if err != nil {
				return err
			}
			row = append(row, groups...)
		}
		row = append(row, finals...)
		emit("", row.Encode())
		return nil
	})
}

func aggAliases(aggs []algebra.AggSpec) []string {
	out := make([]string, len(aggs))
	for i, a := range aggs {
		out[i] = a.As
	}
	return out
}

// distinctJob deduplicates rows after projecting to keepCols (in order),
// optionally filtering with valid first. The full projected row is the
// grouping key, so two equal rows collapse.
func distinctJob(name string, in *rel, keepCols []string, valid func(codec.Tuple) bool, output string) (*mapred.Job, *rel) {
	pos := make([]int, len(keepCols))
	for i, c := range keepCols {
		pos[i] = in.colIndex(c)
	}
	job := &mapred.Job{
		Name:           name,
		Inputs:         []string{in.file},
		Output:         output,
		MapOperator:    "project",
		ReduceOperator: "distinct",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error {
				raw, err := in.decode(rec)
				if err != nil {
					return err
				}
				row, ok := in.scan(raw)
				if !ok {
					return nil
				}
				if valid != nil && !valid(row) {
					return nil
				}
				proj := make(codec.Tuple, len(pos))
				for i, p := range pos {
					proj[i] = row[p]
				}
				enc := planeEncode(in.dict, proj)
				emit(string(enc), enc)
				return nil
			})
		},
		NewCombiner: func() mapred.Reducer { return firstValueReducer() },
		NewReducer:  func() mapred.Reducer { return firstValueReducer() },
	}
	return job, materialized(output, keepCols, in.dict)
}

// keptPositions returns the scan-output positions of an input's non-key
// columns that survive projection.
func keptPositions(si *starInput, keep map[string]bool) []int {
	var out []int
	for i, c := range si.rel.outCols() {
		if c != si.keyCol && (keep == nil || keep[c]) {
			out = append(out, i)
		}
	}
	return out
}

func firstValueReducer() mapred.Reducer {
	return mapred.ReducerFunc(func(key string, values [][]byte, emit mapred.Emit) error {
		emit(key, values[0])
		return nil
	})
}
