package hive

import (
	"fmt"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/obs"
)

// MQO is the Hive (MQO) engine: the multi-query-optimization rewriting of
// [27]. Overlapping graph patterns are rewritten into one composite pattern
// whose secondary (non-shared) properties join via LEFT OUTER JOIN; the
// composite relation is evaluated and materialised as an intermediate
// table; then each original pattern's grouping-aggregation runs as a second
// query over that table — filtering rows by the pattern's validity (its
// secondary columns non-NULL), projecting away the other patterns'
// columns, DISTINCT-ing when that projection can collapse rows, and
// aggregating.
//
// Faithful to the paper's observation, the composite relation is
// materialised with *all* columns: the materialisation boundary defeats
// early projection and partial aggregation, which is why MQO can lose to
// sequential evaluation on small inputs despite running fewer cycles.
type MQO struct {
	Conf Config
}

// NewMQO returns the engine with default configuration.
func NewMQO() *MQO { return &MQO{Conf: DefaultConfig()} }

// Name implements engine.Engine.
func (h *MQO) Name() string { return "Hive (MQO)" }

// Execute implements engine.Engine. Queries whose patterns do not overlap
// (or with a single grouping) fall back to the Naive plan, as an MQO
// rewriter would.
func (h *MQO) Execute(c *mapred.Cluster, ds *engine.Dataset, aq *algebra.AnalyticalQuery) (*engine.Result, *mapred.WorkflowMetrics, error) {
	if len(aq.Subqueries) < 2 {
		return (&Naive{Conf: h.Conf}).Execute(c, ds, aq)
	}
	ps := obs.StartChild(c.Context(), obs.KindPlanner, "composite-rewrite")
	cp, err := algebra.BuildComposite(aq.Subqueries)
	ps.End()
	if err != nil {
		return (&Naive{Conf: h.Conf}).Execute(c, ds, aq)
	}
	run := newRunner(c, fmt.Sprintf("tmp/hive-mqo/%d", runSeq.Add(1)))

	cols := compositeColumns(cp)
	compRel, err := h.evalComposite(run, ds, cp, cols)
	if err != nil {
		return nil, run.WM, err
	}

	var aggFiles []string
	for k, sq := range aq.Subqueries {
		file, err := h.aggregatePattern(run, cp, cols, compRel, sq, k)
		if err != nil {
			return nil, run.WM, err
		}
		aggFiles = append(aggFiles, file)
	}
	return finishQuery(run, aq, aggFiles)
}

// compositeColumns assigns a relation column to every composite property:
// the object variable when the pattern binds one, a synthetic marker column
// for secondary constant-object properties (so LEFT OUTER NULLs make the
// validity of a row checkable), and no column for primary constant-object
// properties. cols[i][j] addresses cp.Stars[i].Props[j]; empty means no
// column.
func compositeColumns(cp *algebra.CompositePattern) [][]string {
	cols := make([][]string, len(cp.Stars))
	for i, cs := range cp.Stars {
		cols[i] = make([]string, len(cs.Props))
		for j, p := range cs.Props {
			switch {
			case p.TP.O.IsVar:
				cols[i][j] = p.TP.O.Var
			case len(p.Owners) != cp.NumPatterns:
				cols[i][j] = fmt.Sprintf("mark_%d_%d", i, j)
			}
		}
	}
	return cols
}

// evalComposite evaluates the composite pattern: per-star (left outer) star
// joins, then the inter-star join chain, keeping every column.
func (h *MQO) evalComposite(run *runner, ds *engine.Dataset, cp *algebra.CompositePattern, cols [][]string) (*rel, error) {
	starRels := make([]*rel, len(cp.Stars))
	for i, cs := range cp.Stars {
		var inputs []*starInput
		for j, p := range cs.Props {
			optional := len(p.Owners) != cp.NumPatterns
			file, isType, ok := ds.VP.TableFor(p.Ref)
			if !ok {
				var err error
				if file, err = run.emptyFile(true); err != nil {
					return nil, err
				}
			}
			r := &rel{file: file, dict: ds.Dict}
			switch {
			case isType:
				r.cols = []string{cs.SubjectVar}
			case !p.TP.O.IsVar:
				r.cols = []string{cs.SubjectVar, cols[i][j]}
				r.consts = map[int]string{1: planeConst(ds.Dict, p.TP.O.Term.Key())}
			default:
				r.cols = []string{cs.SubjectVar, cols[i][j]}
				for _, f := range cp.Filters {
					if f.Var == cols[i][j] {
						r.filters = append(r.filters, f)
					}
				}
			}
			inputs = append(inputs, &starInput{rel: r, keyCol: cs.SubjectVar, optional: optional})
		}
		if len(inputs) == 1 && !inputs[0].optional {
			starRels[i] = inputs[0].rel
			continue
		}
		// A composite star output streams when a join chain follows (its
		// single consumer); with no joins it *is* the composite relation,
		// read by every aggregatePattern, and must stay materialised.
		out, err := run.starJoin(h.Conf, fmt.Sprintf("comp-star%d", i), inputs, nil, run.path(fmt.Sprintf("comp-star%d", i)), len(cp.Joins) > 0)
		if err != nil {
			return nil, err
		}
		starRels[i] = out
	}
	est := compositeEstimator(h.Conf, ds, cp)
	order, err := chainOrder(len(cp.Stars), cp.Joins, est)
	if err != nil {
		return nil, err
	}
	acc := starRels[chainStart(order)]
	accRows := 0.0
	if est != nil {
		accRows = est.StarCard(chainStart(order))
	}
	for i, edge := range order {
		out := run.path(fmt.Sprintf("comp-join%d", i))
		// Intermediate composite joins stream; the final one produces the
		// composite relation — the MQO materialisation boundary every
		// aggregatePattern reads — which keeps the real DFS write.
		acc, err = run.join(h.Conf, fmt.Sprintf("comp-join%d", i), acc, starRels[edge.Right], edge.Var, edge.Var, nil, out, i < len(order)-1, edgeEstimate(est, &accRows, edge))
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// aggregatePattern computes original pattern k's grouping-aggregation over
// the materialised composite relation.
func (h *MQO) aggregatePattern(run *runner, cp *algebra.CompositePattern, cols [][]string, compRel *rel, sq *algebra.Subquery, k int) (string, error) {
	valid := h.validityFilter(cp, cols, compRel, k)

	groupCols := make([]string, len(sq.GroupBy))
	for i, g := range sq.GroupBy {
		groupCols[i] = cp.VarMaps[k][g]
	}
	aggs := make([]algebra.AggSpec, len(sq.Aggs))
	for i, a := range sq.Aggs {
		aggs[i] = algebra.AggSpec{Func: a.Func, Var: cp.VarMaps[k][a.Var], As: a.As, Distinct: a.Distinct}
	}

	in := compRel
	if h.needsDistinct(cp, k) {
		distinctCols := patternColumns(cp, cols, k)
		job, out := distinctJob(fmt.Sprintf("gp%d-distinct", k), compRel, distinctCols, valid,
			run.path(fmt.Sprintf("gp%d-distinct", k)))
		// Consumed only by this pattern's grouping-aggregation below.
		job.StreamOutput = true
		if err := run.exec(job); err != nil {
			return "", err
		}
		in = out
		valid = nil // already applied
	}
	aggOut := run.path(fmt.Sprintf("gp%d-agg", k))
	job, out := groupAggJob(fmt.Sprintf("gp%d-agg", k), in, groupCols, aggs, valid, groupedHaving(sq), aggOut)
	if err := run.exec(job); err != nil {
		return "", err
	}
	return out.file, nil
}

// needsDistinct reports whether projecting the composite relation to
// pattern k's columns can collapse rows: true iff some secondary property
// of another pattern is not required by k (its column gets dropped).
func (h *MQO) needsDistinct(cp *algebra.CompositePattern, k int) bool {
	for _, cs := range cp.Stars {
		for _, p := range cs.Props {
			if len(p.Owners) != cp.NumPatterns && !p.Owners[k] {
				return true
			}
		}
	}
	return false
}

// validityFilter returns the row predicate "every secondary column owned by
// pattern k is non-NULL", or nil when k has no secondary properties.
func (h *MQO) validityFilter(cp *algebra.CompositePattern, cols [][]string, compRel *rel, k int) func(codec.Tuple) bool {
	var positions []int
	for i, cs := range cp.Stars {
		for j, p := range cs.Props {
			if len(p.Owners) != cp.NumPatterns && p.Owners[k] && cols[i][j] != "" {
				positions = append(positions, compRel.colIndex(cols[i][j]))
			}
		}
	}
	if len(positions) == 0 {
		return nil
	}
	return func(row codec.Tuple) bool {
		for _, p := range positions {
			if p < 0 || p >= len(row) || algebra.IsNull(row[p]) {
				return false
			}
		}
		return true
	}
}

// patternColumns returns pattern k's structural columns in the composite
// relation: every star's subject plus the columns of k's properties.
func patternColumns(cp *algebra.CompositePattern, cols [][]string, k int) []string {
	var out []string
	for i, cs := range cp.Stars {
		out = append(out, cs.SubjectVar)
		for j, p := range cs.Props {
			if p.Owners[k] && cols[i][j] != "" {
				out = append(out, cols[i][j])
			}
		}
	}
	return out
}
