package hive

import (
	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/stats"
)

// joinEst carries the planner's predicted cardinalities for one chain join:
// rows of the accumulated left input, of the right star relation, and of
// the join output. A nil *joinEst means the heuristic (measured-size) path.
type joinEst struct {
	leftRows  float64
	rightRows float64
	outRows   float64
}

// patternEstimator builds the relational-row-mode estimator for a plain
// graph pattern over the dataset's statistics catalog. Nil when the
// dataset has no catalog or the planner is off.
func patternEstimator(conf Config, ds *engine.Dataset, gp *algebra.GraphPattern) *stats.Estimator {
	if !conf.CostPlanner || ds.Stats == nil {
		return nil
	}
	refs := make([][]algebra.PropRef, len(gp.Stars))
	for i, st := range gp.Stars {
		refs[i] = st.Props()
	}
	return stats.NewEstimator(ds.Stats, refs, true)
}

// compositeEstimator builds the relational-row-mode estimator for a
// composite pattern: each star is estimated from its primary (required)
// references; secondary LEFT-OUTER properties keep all rows and are
// approximated as fan-out 1.
func compositeEstimator(conf Config, ds *engine.Dataset, cp *algebra.CompositePattern) *stats.Estimator {
	if !conf.CostPlanner || ds.Stats == nil {
		return nil
	}
	refs := make([][]algebra.PropRef, len(cp.Stars))
	for i, cs := range cp.Stars {
		refs[i] = cs.PrimaryRefs()
	}
	return stats.NewEstimator(ds.Stats, refs, true)
}

// chainOrder linearises a pattern's join edges: cost-based when the
// estimator is present, the star-0-first heuristic otherwise.
func chainOrder(numStars int, joins []algebra.Join, est *stats.Estimator) ([]algebra.Join, error) {
	if est == nil {
		return algebra.JoinOrder(numStars, joins)
	}
	return algebra.JoinOrderCost(numStars, joins, est)
}

// chainStart returns the star the accumulated side starts from: order[0]'s
// Left endpoint, star 0 for edge-less patterns.
func chainStart(order []algebra.Join) int {
	if len(order) == 0 {
		return 0
	}
	return order[0].Left
}

// edgeEstimate predicts one chain join's cardinalities and advances the
// accumulated row count. Nil estimator returns nil and leaves acc alone.
func edgeEstimate(est *stats.Estimator, acc *float64, edge algebra.Join) *joinEst {
	if est == nil {
		return nil
	}
	rr := est.StarCard(edge.Right)
	out := est.JoinCard(*acc, rr, edge)
	je := &joinEst{leftRows: *acc, rightRows: rr, outRows: out}
	*acc = out
	return je
}
