package hive

import (
	"sort"
	"strings"
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/sparql"
)

func newCluster() *mapred.Cluster {
	cfg := mapred.DefaultConfig()
	cfg.ExecSplitBytes = 128
	return mapred.NewCluster(cfg)
}

func writeTuples(c *mapred.Cluster, name string, rows ...codec.Tuple) {
	w, err := c.FS.Create(name, 1)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		w.Write(r.Encode())
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
}

func readRows(t *testing.T, c *mapred.Cluster, name string) []string {
	t.Helper()
	f, err := c.FS.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := f.AllRecords()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, rec := range recs {
		tu, err := codec.DecodeTuple(rec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, strings.Join(tu, "|"))
	}
	sort.Strings(out)
	return out
}

func TestRelScan(t *testing.T) {
	r := &rel{
		file:   "f",
		cols:   []string{"s", "", "o"},
		consts: map[int]string{1: "LX"},
		filters: []sparql.Filter{{
			Kind: sparql.FilterCompare, Var: "o", Op: ">", Value: "5", IsNumeric: true,
		}},
	}
	if got := r.outCols(); strings.Join(got, ",") != "s,o" {
		t.Errorf("outCols = %v", got)
	}
	if row, ok := r.scan(codec.Tuple{"Is1", "LX", "L10"}); !ok || row[0] != "Is1" || row[1] != "L10" {
		t.Errorf("scan = %v, %v", row, ok)
	}
	if _, ok := r.scan(codec.Tuple{"Is1", "LY", "L10"}); ok {
		t.Error("constant check not applied")
	}
	if _, ok := r.scan(codec.Tuple{"Is1", "LX", "L3"}); ok {
		t.Error("filter not applied")
	}
	if _, ok := r.scan(codec.Tuple{"Is1"}); ok {
		t.Error("arity mismatch accepted")
	}
	if r.colIndex("o") != 1 || r.colIndex("s") != 0 || r.colIndex("zz") != -1 {
		t.Error("colIndex wrong")
	}
}

func starFixture(c *mapred.Cluster) []*starInput {
	writeTuples(c, "t_type", codec.Tuple{"Ip1"}, codec.Tuple{"Ip2"})
	writeTuples(c, "t_label",
		codec.Tuple{"Ip1", "Lone"},
		codec.Tuple{"Ip2", "Ltwo"},
		codec.Tuple{"Ip3", "Lthree"}, // no type: drops out
	)
	writeTuples(c, "t_pf",
		codec.Tuple{"Ip1", "If1"},
		codec.Tuple{"Ip1", "If2"}, // multi-valued
	)
	return []*starInput{
		{rel: &rel{file: "t_type", cols: []string{"p"}}, keyCol: "p"},
		{rel: &rel{file: "t_label", cols: []string{"p", "l"}}, keyCol: "p"},
		{rel: &rel{file: "t_pf", cols: []string{"p", "f"}}, keyCol: "p", optional: true},
	}
}

// Inner + left-outer star join, reduce-side and map-side must agree.
func TestStarJoinVariantsAgree(t *testing.T) {
	c1 := newCluster()
	inputs1 := starFixture(c1)
	job1, out1 := starJoinJob("sj", inputs1, nil, "out1", 1)
	if _, err := c1.Run(job1); err != nil {
		t.Fatal(err)
	}
	reduceRows := readRows(t, c1, "out1")

	c2 := newCluster()
	inputs2 := starFixture(c2)
	job2, out2 := starMapJoinJob("sj", inputs2, 1 /* drive on label */, nil, "out2", 1)
	m, err := c2.Run(job2)
	if err != nil {
		t.Fatal(err)
	}
	if !m.MapOnly {
		t.Error("map join not map-only")
	}
	mapRows := readRows(t, c2, "out2")

	// Expected: p1 x {f1, f2}, p2 with NULL feature; p3 dropped.
	if len(reduceRows) != 3 {
		t.Fatalf("reduce-side rows = %v", reduceRows)
	}
	// Column orders differ between the two variants (driving input first);
	// compare per-subject multiplicity and feature sets instead.
	countBySubject := func(rows []string) map[string]int {
		m := map[string]int{}
		for _, r := range rows {
			m[strings.SplitN(r, "|", 2)[0]]++
		}
		return m
	}
	rc, mc := countBySubject(reduceRows), countBySubject(mapRows)
	if rc["Ip1"] != 2 || rc["Ip2"] != 1 || rc["Ip3"] != 0 {
		t.Errorf("reduce-side multiplicities = %v", rc)
	}
	if mc["Ip1"] != rc["Ip1"] || mc["Ip2"] != rc["Ip2"] {
		t.Errorf("map-side multiplicities differ: %v vs %v", mc, rc)
	}
	if len(out1.cols) == 0 || len(out2.cols) == 0 {
		t.Error("output schemas missing")
	}
}

func TestJoinJobAndMapJoinAgree(t *testing.T) {
	build := func() (*mapred.Cluster, *rel, *rel) {
		c := newCluster()
		writeTuples(c, "L",
			codec.Tuple{"Ia", "L1"},
			codec.Tuple{"Ib", "L2"},
			codec.Tuple{"Ia", "L3"},
		)
		writeTuples(c, "R",
			codec.Tuple{"Ix", "Ia"},
			codec.Tuple{"Iy", "Ia"},
			codec.Tuple{"Iz", "Ic"},
		)
		return c, &rel{file: "L", cols: []string{"k", "v"}}, &rel{file: "R", cols: []string{"s", "k"}}
	}
	c1, l1, r1 := build()
	j1, _ := joinJob("j", l1, r1, "k", "k", nil, "out", 1)
	if _, err := c1.Run(j1); err != nil {
		t.Fatal(err)
	}
	c2, l2, r2 := build()
	j2, _ := mapJoinJob("j", l2, r2, "k", "k", nil, "out", 1)
	if _, err := c2.Run(j2); err != nil {
		t.Fatal(err)
	}
	a, b := readRows(t, c1, "out"), readRows(t, c2, "out")
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Errorf("join variants disagree:\n%v\n%v", a, b)
	}
	if len(a) != 4 { // (a,1),(a,3) x (x,y)
		t.Errorf("join rows = %v", a)
	}
}

func TestGroupAggJob(t *testing.T) {
	c := newCluster()
	writeTuples(c, "in",
		codec.Tuple{"Ig1", "L10"},
		codec.Tuple{"Ig1", "L20"},
		codec.Tuple{"Ig2", "L5"},
	)
	in := &rel{file: "in", cols: []string{"g", "v"}}
	aggs := []algebra.AggSpec{
		{Func: sparql.Count, Var: "v", As: "cnt"},
		{Func: sparql.Avg, Var: "v", As: "avg"},
	}
	job, out := groupAggJob("agg", in, []string{"g"}, aggs, nil, nil, "out")
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	rows := readRows(t, c, "out")
	want := []string{"Ig1|2|15", "Ig2|1|5"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Errorf("rows = %v", rows)
	}
	if strings.Join(out.cols, ",") != "g,cnt,avg" {
		t.Errorf("schema = %v", out.cols)
	}
}

func TestGroupAggJobGroupByAll(t *testing.T) {
	c := newCluster()
	writeTuples(c, "in", codec.Tuple{"L1"}, codec.Tuple{"L2"})
	in := &rel{file: "in", cols: []string{"v"}}
	job, _ := groupAggJob("agg", in, nil, []algebra.AggSpec{{Func: sparql.Sum, Var: "v", As: "s"}}, nil, nil, "out")
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	rows := readRows(t, c, "out")
	if len(rows) != 1 || rows[0] != "3" {
		t.Errorf("rows = %v", rows)
	}
}

func TestGroupAggValidityFilter(t *testing.T) {
	c := newCluster()
	writeTuples(c, "in",
		codec.Tuple{"Ig1", "L10", algebra.Null},
		codec.Tuple{"Ig1", "L20", "Lx"},
	)
	in := &rel{file: "in", cols: []string{"g", "v", "sec"}}
	valid := func(row codec.Tuple) bool { return !algebra.IsNull(row[2]) }
	job, _ := groupAggJob("agg", in, []string{"g"}, []algebra.AggSpec{{Func: sparql.Count, Var: "v", As: "c"}}, valid, nil, "out")
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	rows := readRows(t, c, "out")
	if len(rows) != 1 || rows[0] != "Ig1|1" {
		t.Errorf("rows = %v", rows)
	}
}

func TestDistinctJob(t *testing.T) {
	c := newCluster()
	writeTuples(c, "in",
		codec.Tuple{"Ia", "L1", "Ljunk1"},
		codec.Tuple{"Ia", "L1", "Ljunk2"}, // same after projection
		codec.Tuple{"Ib", "L2", "Ljunk3"},
	)
	in := &rel{file: "in", cols: []string{"s", "v", "junk"}}
	job, out := distinctJob("d", in, []string{"s", "v"}, nil, "out")
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	rows := readRows(t, c, "out")
	if strings.Join(rows, ";") != "Ia|L1;Ib|L2" {
		t.Errorf("rows = %v", rows)
	}
	if strings.Join(out.cols, ",") != "s,v" {
		t.Errorf("schema = %v", out.cols)
	}
}

func TestStarJoinDuplicateFileRejected(t *testing.T) {
	c := newCluster()
	writeTuples(c, "same", codec.Tuple{"Ia", "L1"})
	inputs := []*starInput{
		{rel: &rel{file: "same", cols: []string{"p", "x"}}, keyCol: "p"},
		{rel: &rel{file: "same", cols: []string{"p", "y"}}, keyCol: "p"},
	}
	r := newRunner(c, "tmp/t")
	conf := Config{MapJoinBytes: 0} // force reduce-side
	if _, err := r.starJoin(conf, "sj", inputs, nil, "out", false); err == nil {
		t.Error("duplicate-file reduce-side star join accepted")
	}
	// The map-join path handles shared files fine.
	conf = Config{MapJoinBytes: 1 << 40}
	if _, err := r.starJoin(conf, "sj2", inputs, nil, "out2", false); err != nil {
		t.Errorf("map-join path rejected shared files: %v", err)
	}
}

func TestMapJoinThresholdScalesWithData(t *testing.T) {
	cfg := mapred.DefaultConfig()
	cfg.DataScale = 1000
	c := mapred.NewCluster(cfg)
	w, err := c.FS.Create("f", 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Write(make([]byte, 1<<10)) // 1024B -> 1,024,000B at paper scale
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	conf := DefaultConfig()
	if got := conf.storedSize(c, "f"); got != 1024*1000 {
		t.Errorf("scaled stored size = %d, want %d", got, 1024*1000)
	}
	if got := conf.storedSize(c, "missing"); got < 1<<60 {
		t.Errorf("missing file size = %d, want huge", got)
	}
}
