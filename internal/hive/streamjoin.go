package hive

import (
	"fmt"

	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/rdf"
)

// symJoinReducer is the streaming (symmetric) hash-join reducer behind
// joinJob: it makes a single pass over a key group's values, pairing each
// arriving left row with every right row seen so far and vice versa, so
// joined rows are emitted as soon as their later side arrives instead of
// after the whole group is buffered. Each (l, r) pair is emitted exactly
// once — at whichever element arrives later — and the pass is
// deterministic given the group's value order, which the shuffle fixes.
// Emission order differs from the buffered left-major nested loop, but
// downstream consumers are order-insensitive: aggregation groups by key
// and result comparison is multiset-based (engine.Result.Canonical).
//
// Star joins keep the buffered formulation: their left-outer
// NULL-extension (OPTIONAL edges) needs to know a side matched nothing,
// which requires the whole group.
func symJoinReducer(left, right *rel, leftCol, rightCol string, keep map[string]bool, d *rdf.Dict) mapred.Reducer {
	return mapred.ReducerFunc(func(key string, values [][]byte, emit mapred.Emit) error {
		var ls, rs []codec.Tuple
		for _, v := range values {
			if len(v) < 1 {
				return fmt.Errorf("hive: join value missing side tag")
			}
			t, err := left.decode(v[1:])
			if err != nil {
				return err
			}
			if v[0] == 0 {
				for _, rr := range rs {
					emit("", planeEncode(d, mergeJoinRow(left, right, leftCol, rightCol, keep, t, rr)))
				}
				ls = append(ls, t)
			} else {
				for _, l := range ls {
					emit("", planeEncode(d, mergeJoinRow(left, right, leftCol, rightCol, keep, l, t)))
				}
				rs = append(rs, t)
			}
		}
		return nil
	})
}
