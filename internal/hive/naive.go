package hive

import (
	"fmt"
	"sync/atomic"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/sparql"
	"rapidanalytics/internal/stats"
	"rapidanalytics/internal/store"
)

var runSeq atomic.Int64

// Naive is the Hive (Naive) engine: each subquery's graph pattern compiles
// to one star-join cycle per multi-pattern star and one binary-join cycle
// per inter-star edge, followed by a grouping-aggregation cycle; subquery
// results join in a final map-only cycle. Joins become map-only map joins
// when the broadcast side fits Config.MapJoinBytes, and scans push
// projections and filters down — the optimizations the paper credits Hive
// with in §5.2.
type Naive struct {
	Conf Config
}

// NewNaive returns the engine with default configuration.
func NewNaive() *Naive { return &Naive{Conf: DefaultConfig()} }

// Name implements engine.Engine.
func (h *Naive) Name() string { return "Hive (Naive)" }

// Execute implements engine.Engine.
func (h *Naive) Execute(c *mapred.Cluster, ds *engine.Dataset, aq *algebra.AnalyticalQuery) (*engine.Result, *mapred.WorkflowMetrics, error) {
	run := newRunner(c, fmt.Sprintf("tmp/hive-naive/%d", runSeq.Add(1)))
	var aggFiles []string
	for k, sq := range aq.Subqueries {
		patRel, err := h.evalPattern(run, ds, sq, fmt.Sprintf("gp%d", k))
		if err != nil {
			return nil, run.WM, err
		}
		aggJob, aggRel := groupAggJob(
			fmt.Sprintf("gp%d-groupagg", k), patRel, sq.GroupBy, sq.Aggs, nil, groupedHaving(sq),
			run.path(fmt.Sprintf("gp%d-agg", k)))
		if err := run.exec(aggJob); err != nil {
			return nil, run.WM, err
		}
		aggFiles = append(aggFiles, aggRel.file)
	}
	return finishQuery(run, aq, aggFiles)
}

// evalPattern evaluates one subquery's graph pattern, returning the joined
// relation.
func (h *Naive) evalPattern(run *runner, ds *engine.Dataset, sq *algebra.Subquery, tag string) (*rel, error) {
	gp := sq.Pattern
	keep := neededVars(sq)
	starRels := make([]*rel, len(gp.Stars))
	for i, st := range gp.Stars {
		r, err := h.evalStar(run, ds, st, gp.Filters, keep, fmt.Sprintf("%s-star%d", tag, i))
		if err != nil {
			return nil, err
		}
		starRels[i] = r
	}
	est := patternEstimator(h.Conf, ds, gp)
	order, err := chainOrder(len(gp.Stars), gp.Joins, est)
	if err != nil {
		return nil, err
	}
	acc := starRels[chainStart(order)]
	accRows := 0.0
	if est != nil {
		accRows = est.StarCard(chainStart(order))
	}
	for i, edge := range order {
		right := starRels[edge.Right]
		out := run.path(fmt.Sprintf("%s-join%d", tag, i))
		keepJoin := keepWithJoins(keep, order[i+1:])
		// Join intermediates are each consumed by exactly one later cycle
		// (the next join or the grouping-aggregation), so they stream.
		acc, err = run.join(h.Conf, fmt.Sprintf("%s-join%d", tag, i), acc, right, edge.Var, edge.Var, keepJoin, out, true, edgeEstimate(est, &accRows, edge))
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// evalStar evaluates one star pattern: a direct VP scan for single-pattern
// stars, a (map) star-join cycle otherwise.
func (h *Naive) evalStar(run *runner, ds *engine.Dataset, st *algebra.StarPattern, filters []sparql.Filter, keep map[string]bool, tag string) (*rel, error) {
	inputs, err := starScanInputs(run, ds, st, filters)
	if err != nil {
		return nil, err
	}
	if len(inputs) == 1 {
		return inputs[0].rel, nil
	}
	// A star output feeds exactly one consumer (its join edge, or the
	// grouping-aggregation for single-star patterns), so it streams.
	return run.starJoin(h.Conf, tag, inputs, keepWithVar(keep, st.SubjectVar), run.path(tag), true)
}

// starScanInputs builds one scan input per triple pattern of a star over
// the VP store, pushing down constant-object checks and filters.
func starScanInputs(run *runner, ds *engine.Dataset, st *algebra.StarPattern, filters []sparql.Filter) ([]*starInput, error) {
	var inputs []*starInput
	for _, tp := range st.Triples {
		if tp.P.IsVar {
			// Unbound property: scan the full triples table, exposing the
			// property as a column ([32]'s fallback shape).
			r := &rel{file: ds.VP.TriplesTable, cols: []string{st.SubjectVar, tp.P.Var, ""}, dict: ds.Dict}
			if tp.O.IsVar {
				r.cols[2] = tp.O.Var
			} else {
				r.consts = map[int]string{2: planeConst(ds.Dict, tp.O.Term.Key())}
			}
			for _, f := range filters {
				if f.Var == tp.P.Var || (tp.O.IsVar && f.Var == tp.O.Var) {
					r.filters = append(r.filters, f)
				}
			}
			inputs = append(inputs, &starInput{rel: r, keyCol: st.SubjectVar})
			continue
		}
		ref := algebra.PropRefOf(tp)
		file, isType, ok := ds.VP.TableFor(ref)
		if !ok {
			var err error
			if file, err = run.emptyFile(isType || !tp.O.IsVar); err != nil {
				return nil, err
			}
		}
		r := &rel{file: file, dict: ds.Dict}
		switch {
		case isType:
			r.cols = []string{st.SubjectVar}
		case !tp.O.IsVar:
			r.cols = []string{st.SubjectVar, ""}
			r.consts = map[int]string{1: planeConst(ds.Dict, tp.O.Term.Key())}
		default:
			r.cols = []string{st.SubjectVar, tp.O.Var}
			for _, f := range filters {
				if f.Var == tp.O.Var {
					r.filters = append(r.filters, f)
				}
			}
		}
		inputs = append(inputs, &starInput{rel: r, keyCol: st.SubjectVar})
	}
	// OPTIONAL patterns join LEFT OUTER: unmatched subjects keep their row
	// with NULLs (the same physical operator the MQO composite uses).
	for _, tp := range st.Optionals {
		ref := algebra.PropRefOf(tp)
		file, isType, ok := ds.VP.TableFor(ref)
		if !ok {
			var err error
			if file, err = run.emptyFile(isType || !tp.O.IsVar); err != nil {
				return nil, err
			}
		}
		r := &rel{file: file, dict: ds.Dict}
		switch {
		case isType:
			r.cols = []string{st.SubjectVar}
		case !tp.O.IsVar:
			r.cols = []string{st.SubjectVar, ""}
			r.consts = map[int]string{1: planeConst(ds.Dict, tp.O.Term.Key())}
		default:
			r.cols = []string{st.SubjectVar, tp.O.Var}
		}
		inputs = append(inputs, &starInput{rel: r, keyCol: st.SubjectVar, optional: true})
	}
	return inputs, nil
}

// neededVars returns the variables a subquery's evaluation must retain:
// grouping variables, aggregation variables and join variables.
func neededVars(sq *algebra.Subquery) map[string]bool {
	keep := map[string]bool{}
	for _, v := range sq.GroupBy {
		keep[v] = true
	}
	for _, a := range sq.Aggs {
		keep[a.Var] = true
	}
	for _, j := range sq.Pattern.Joins {
		keep[j.Var] = true
	}
	return keep
}

func keepWithJoins(keep map[string]bool, rest []algebra.Join) map[string]bool {
	out := map[string]bool{}
	for v := range keep {
		out[v] = true
	}
	for _, j := range rest {
		out[j.Var] = true
	}
	return out
}

// groupedHaving returns the HAVING predicate for grouped subqueries. For
// GROUP BY ALL subqueries the predicate is applied after the default-row
// repair instead (engine.ApplyGroupByAllHaving), so the reducer passes
// everything through.
func groupedHaving(sq *algebra.Subquery) func([]string) bool {
	if sq.GroupByAll() || len(sq.Having) == 0 {
		return nil
	}
	return sq.HavingPassed
}

func keepWithVar(keep map[string]bool, v string) map[string]bool {
	out := map[string]bool{v: true}
	for k := range keep {
		out[k] = true
	}
	return out
}

// runner augments the shared engine runner with lazily created empty
// placeholder files for missing VP tables.
type runner struct {
	*engine.Runner
	empty1 string
	empty2 string
}

func newRunner(c *mapred.Cluster, prefix string) *runner {
	return &runner{Runner: engine.NewRunner(c, prefix)}
}

func (r *runner) path(name string) string    { return r.Path(name) }
func (r *runner) exec(job *mapred.Job) error { return r.Exec(job) }

// emptyFile returns a shared empty placeholder for missing VP tables (a
// property or type absent from the dataset): single-column for type
// partitions and constant-object scans, two-column otherwise.
func (r *runner) emptyFile(oneCol bool) (string, error) {
	name := &r.empty2
	if oneCol {
		name = &r.empty1
	}
	if *name == "" {
		p := r.path("empty1")
		if !oneCol {
			p = r.path("empty2")
		}
		w, err := r.C.FS.Create(p, 1)
		if err != nil {
			return "", err
		}
		if err := w.Close(); err != nil {
			return "", err
		}
		*name = p
	}
	return *name, nil
}

// starJoin runs a star join, choosing a map join when all inputs but the
// largest fit the broadcast budget. stream marks the output as
// single-consumer intermediate state eligible for the DFS stream registry
// (Job.StreamOutput); pass false when the output is a checkpoint read by
// more than one downstream cycle.
func (r *runner) starJoin(conf Config, name string, inputs []*starInput, keep map[string]bool, output string, stream bool) (*rel, error) {
	driving, sideSum := 0, int64(0)
	var total int64
	largest := int64(-1)
	for i, si := range inputs {
		sz := conf.storedSize(r.C, si.rel.file)
		total += sz
		if sz > largest && !si.optional {
			largest = sz
			driving = i
		}
	}
	sideSum = total - largest
	var job *mapred.Job
	var out *rel
	if largest >= 0 && sideSum <= conf.MapJoinBytes {
		job, out = starMapJoinJob(name, inputs, driving, keep, output, store.ORCCompressionRatio)
	} else {
		// Reduce-side star joins tag records by input file, so two inputs
		// sharing a file (two constant-object patterns on one property)
		// would be ambiguous.
		seen := map[string]bool{}
		for _, si := range inputs {
			if seen[si.rel.file] {
				return nil, fmt.Errorf("hive: star join reads %s twice; not supported in reduce-side joins", si.rel.file)
			}
			seen[si.rel.file] = true
		}
		job, out = starJoinJob(name, inputs, keep, output, store.ORCCompressionRatio)
	}
	job.StreamOutput = stream
	if err := r.exec(job); err != nil {
		return nil, err
	}
	return out, nil
}

// join runs a binary join, broadcasting whichever side fits the budget.
// stream is as in starJoin. With est, the map-join-site decision sizes
// both sides from the planner's predicted rows instead of measured files —
// what a plan-time optimizer has to work with — and the reduce partition
// count comes from the predicted output cardinality.
func (r *runner) join(conf Config, name string, left, right *rel, leftCol, rightCol string, keep map[string]bool, output string, stream bool, est *joinEst) (*rel, error) {
	var leftSize, rightSize int64
	if est != nil {
		leftSize = conf.estimatedSize(r.C, est.leftRows, len(left.cols))
		rightSize = conf.estimatedSize(r.C, est.rightRows, len(right.cols))
	} else {
		leftSize = conf.storedSize(r.C, left.file)
		rightSize = conf.storedSize(r.C, right.file)
	}
	var job *mapred.Job
	var out *rel
	switch {
	case rightSize <= conf.MapJoinBytes:
		job, out = mapJoinJob(name, left, right, leftCol, rightCol, keep, output, store.ORCCompressionRatio)
	case leftSize <= conf.MapJoinBytes:
		job, out = mapJoinJob(name, right, left, rightCol, leftCol, keep, output, store.ORCCompressionRatio)
	default:
		job, out = joinJob(name, left, right, leftCol, rightCol, keep, output, store.ORCCompressionRatio)
		if est != nil {
			job.Partitions = stats.PartitionsFor(est.outRows)
		}
	}
	job.StreamOutput = stream
	if err := r.exec(job); err != nil {
		return nil, err
	}
	return out, nil
}

// finishQuery joins the per-subquery aggregate files and reads the final
// result.
func finishQuery(run *runner, aq *algebra.AnalyticalQuery, aggFiles []string) (*engine.Result, *mapred.WorkflowMetrics, error) {
	return engine.FinishQuery(run.Runner, aq, aggFiles)
}
