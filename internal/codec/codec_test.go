package codec

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTupleRoundTrip(t *testing.T) {
	cases := []Tuple{
		{},
		{""},
		{"a", "", "ccc"},
		{"\x00", "with\x1funit\x1eseparators", "Ihttp://e/x"},
	}
	for _, tu := range cases {
		got, err := DecodeTuple(tu.Encode())
		if err != nil {
			t.Fatalf("DecodeTuple(%v): %v", tu, err)
		}
		if !reflect.DeepEqual(got, tu) {
			t.Errorf("round trip: got %v, want %v", got, tu)
		}
	}
}

func TestTupleRoundTripQuick(t *testing.T) {
	f := func(fields []string) bool {
		tu := Tuple(fields)
		got, err := DecodeTuple(tu.Encode())
		if err != nil {
			return false
		}
		if len(got) != len(tu) {
			return false
		}
		for i := range got {
			if got[i] != tu[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	bad := [][]byte{
		{},
		{0xff},                    // bad varint
		Tuple{"abc"}.Encode()[:2], // truncated
		append(Tuple{"abc"}.Encode(), 0x01, 0x02, 0x03), // trailing bytes
	}
	for _, b := range bad {
		if _, err := DecodeTuple(b); err == nil {
			t.Errorf("DecodeTuple(% x) succeeded, want error", b)
		}
	}
}

func TestConcat(t *testing.T) {
	a := Tuple{"1", "2"}
	b := Tuple{"3"}
	got := a.Concat(b)
	if !reflect.DeepEqual(got, Tuple{"1", "2", "3"}) {
		t.Errorf("Concat = %v", got)
	}
	// Concat must not alias the receiver's backing array.
	got[0] = "X"
	if a[0] != "1" {
		t.Error("Concat aliased receiver")
	}
}

func TestPrimitives(t *testing.T) {
	buf := AppendUvarint(nil, 300)
	buf = AppendString(buf, "hello")
	v, rest, err := ReadUvarint(buf)
	if err != nil || v != 300 {
		t.Fatalf("ReadUvarint = %v, %v", v, err)
	}
	s, rest, err := ReadString(rest)
	if err != nil || s != "hello" || len(rest) != 0 {
		t.Fatalf("ReadString = %q rest=%d err=%v", s, len(rest), err)
	}
}
