// Package codec provides the compact binary record formats flowing through
// the MapReduce engine: length-prefixed string lists ("tuples", the
// relational engines' rows) plus the primitives the triplegroup codecs in
// package ntga are built from. Records are self-delimiting so files can be
// split at record boundaries, mirroring Hadoop Writables.
package codec

import (
	"encoding/binary"
	"fmt"
)

// AppendString appends a uvarint-length-prefixed string to buf.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ReadString reads a string written by AppendString, returning the value
// and the remaining buffer.
func ReadString(buf []byte) (string, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return "", nil, fmt.Errorf("codec: bad string length prefix")
	}
	buf = buf[k:]
	if uint64(len(buf)) < n {
		return "", nil, fmt.Errorf("codec: truncated string: need %d bytes, have %d", n, len(buf))
	}
	return string(buf[:n]), buf[n:], nil
}

// AppendUvarint appends a uvarint to buf.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// ReadUvarint reads a uvarint, returning the value and the remaining
// buffer.
func ReadUvarint(buf []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(buf)
	if k <= 0 {
		return 0, nil, fmt.Errorf("codec: bad uvarint")
	}
	return v, buf[k:], nil
}

// Tuple is a row of lexical column values. Engines store RDF terms in
// Term.Key form and NULLs as algebra.Null.
type Tuple []string

// Encode serialises the tuple.
func (t Tuple) Encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(len(t)))
	for _, f := range t {
		buf = AppendString(buf, f)
	}
	return buf
}

// DecodeTuple parses a tuple written by Encode.
func DecodeTuple(buf []byte) (Tuple, error) {
	n, buf, err := ReadUvarint(buf)
	if err != nil {
		return nil, err
	}
	t := make(Tuple, n)
	for i := range t {
		t[i], buf, err = ReadString(buf)
		if err != nil {
			return nil, fmt.Errorf("codec: tuple field %d: %w", i, err)
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("codec: %d trailing bytes after tuple", len(buf))
	}
	return t, nil
}

// Concat returns a new tuple appending other's fields to t's.
func (t Tuple) Concat(other Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(other))
	out = append(out, t...)
	return append(out, other...)
}
