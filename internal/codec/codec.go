// Package codec provides the compact binary record formats flowing through
// the MapReduce engine: length-prefixed string lists ("tuples", the
// relational engines' rows) plus the primitives the triplegroup codecs in
// package ntga are built from. Records are self-delimiting so files can be
// split at record boundaries, mirroring Hadoop Writables.
package codec

import (
	"encoding/binary"
	"fmt"
)

// AppendString appends a uvarint-length-prefixed string to buf.
//
//rapid:hot
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ReadString reads a string written by AppendString, returning the value
// and the remaining buffer.
func ReadString(buf []byte) (string, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return "", nil, fmt.Errorf("codec: bad string length prefix")
	}
	buf = buf[k:]
	if uint64(len(buf)) < n {
		return "", nil, fmt.Errorf("codec: truncated string: need %d bytes, have %d", n, len(buf))
	}
	return string(buf[:n]), buf[n:], nil
}

// AppendUvarint appends a uvarint to buf.
//
//rapid:hot
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// ReadUvarint reads a uvarint, returning the value and the remaining
// buffer.
func ReadUvarint(buf []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(buf)
	if k <= 0 {
		return 0, nil, fmt.Errorf("codec: bad uvarint")
	}
	return v, buf[k:], nil
}

// Tuple is a row of column values. In the lexical plane engines store RDF
// terms in Term.Key form and NULLs as algebra.Null; in the dictionary plane
// each field is a term's uvarint ID-string (see rdf.Dict) and NULL is the
// ID-string of ID 0, which is the same byte as algebra.Null.
type Tuple []string

// EncodedLen returns the exact size of the tuple's Encode output.
func (t Tuple) EncodedLen() int {
	n := uvarintLen(uint64(len(t)))
	for _, f := range t {
		n += uvarintLen(uint64(len(f))) + len(f)
	}
	return n
}

// AppendEncode appends the tuple's encoding to buf and returns the extended
// slice, avoiding the intermediate allocation of Encode in hot emit paths.
//
//rapid:hot
func (t Tuple) AppendEncode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t)))
	for _, f := range t {
		buf = AppendString(buf, f)
	}
	return buf
}

// Encode serialises the tuple.
func (t Tuple) Encode() []byte {
	return t.AppendEncode(make([]byte, 0, t.EncodedLen()))
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeTuple parses a tuple written by Encode.
func DecodeTuple(buf []byte) (Tuple, error) {
	n, buf, err := ReadUvarint(buf)
	if err != nil {
		return nil, err
	}
	// Every field takes at least one length-prefix byte, so an arity beyond
	// the remaining buffer is malformed — reject it before allocating.
	if n > uint64(len(buf)) {
		return nil, fmt.Errorf("codec: tuple arity %d exceeds %d remaining bytes", n, len(buf))
	}
	t := make(Tuple, n)
	for i := range t {
		t[i], buf, err = ReadString(buf)
		if err != nil {
			return nil, fmt.Errorf("codec: tuple field %d: %w", i, err)
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("codec: %d trailing bytes after tuple", len(buf))
	}
	return t, nil
}

// Concat returns a new tuple appending other's fields to t's.
func (t Tuple) Concat(other Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(other))
	out = append(out, t...)
	return append(out, other...)
}

// Interner resolves term IDs to their canonical interned ID-strings, so
// decoded tuples share one string per distinct term instead of allocating a
// copy per field. *rdf.Dict implements it.
type Interner interface {
	// IDString returns the interned uvarint ID-string for a term ID.
	IDString(id uint64) (string, bool)
}

// EncodedIDsLen returns the exact size of the tuple's EncodeIDs output.
// Every field must be an ID-string.
func (t Tuple) EncodedIDsLen() int {
	n := uvarintLen(uint64(len(t)))
	for _, f := range t {
		n += len(f)
	}
	return n
}

// AppendEncodeIDs appends the ID-plane encoding of the tuple to buf: a
// uvarint arity followed by the fields' raw bytes. ID-strings are
// self-delimiting uvarints, so no per-field length prefix is needed — this
// is what makes the dictionary plane's rows and shuffle keys compact.
//
//rapid:hot
func (t Tuple) AppendEncodeIDs(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t)))
	for _, f := range t {
		buf = append(buf, f...)
	}
	return buf
}

// EncodeIDs serialises an ID-plane tuple (see AppendEncodeIDs).
func (t Tuple) EncodeIDs() []byte {
	return t.AppendEncodeIDs(make([]byte, 0, t.EncodedIDsLen()))
}

// DecodeIDTuple parses a tuple written by EncodeIDs, resolving each field
// to its interned ID-string through in.
func DecodeIDTuple(buf []byte, in Interner) (Tuple, error) {
	n, buf, err := ReadUvarint(buf)
	if err != nil {
		return nil, err
	}
	// Every field takes at least one byte, so an arity beyond the remaining
	// buffer is malformed — reject it before allocating.
	if n > uint64(len(buf)) {
		return nil, fmt.Errorf("codec: id tuple arity %d exceeds %d remaining bytes", n, len(buf))
	}
	t := make(Tuple, n)
	for i := range t {
		t[i], buf, err = ReadIDValue(buf, in)
		if err != nil {
			return nil, fmt.Errorf("codec: id tuple field %d: %w", i, err)
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("codec: %d trailing bytes after id tuple", len(buf))
	}
	return t, nil
}

// ReadIDValue reads one uvarint term ID from buf and returns its interned
// ID-string and the remaining buffer.
func ReadIDValue(buf []byte, in Interner) (string, []byte, error) {
	id, rest, err := ReadUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	s, ok := in.IDString(id)
	if !ok {
		return "", nil, fmt.Errorf("codec: unknown term id %d", id)
	}
	return s, rest, nil
}
