package codec

import "testing"

func BenchmarkTupleEncode(b *testing.B) {
	t := Tuple{"Ihttp://e/subject", "Ihttp://e/object", "L12345", "some literal value"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.Encode()
	}
}

func BenchmarkTupleDecode(b *testing.B) {
	enc := Tuple{"Ihttp://e/subject", "Ihttp://e/object", "L12345", "some literal value"}.Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTuple(enc); err != nil {
			b.Fatal(err)
		}
	}
}
