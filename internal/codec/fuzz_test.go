package codec

import (
	"testing"
)

// fuzzInterner resolves every ID to its own uvarint encoding, like rdf.Dict
// does for known IDs — so any well-formed ID stream decodes.
type fuzzInterner struct{}

func (fuzzInterner) IDString(id uint64) (string, bool) {
	return string(AppendUvarint(nil, id)), true
}

// Decoders accept non-minimal uvarints (binary.Uvarint does), so the fuzz
// properties are value-level: whatever decodes must survive a canonical
// re-encode/re-decode round trip unchanged.

func FuzzReadString(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendString(nil, ""))
	f.Add(AppendString(nil, "Ihttp://example.org/p"))
	f.Add(AppendString(AppendString(nil, "a"), "b"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, rest, err := ReadString(data)
		if err != nil {
			return
		}
		if len(data)-len(rest) < len(s)+1 {
			t.Fatalf("ReadString consumed %d bytes for a %d-byte string", len(data)-len(rest), len(s))
		}
		s2, rest2, err := ReadString(AppendString(nil, s))
		if err != nil || s2 != s || len(rest2) != 0 {
			t.Fatalf("re-encode of %q: got %q, rest %d, err %v", s, s2, len(rest2), err)
		}
	})
}

func FuzzReadUvarint(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendUvarint(nil, 0))
	f.Add(AppendUvarint(nil, 127))
	f.Add(AppendUvarint(nil, 1<<40))
	f.Add([]byte{0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := ReadUvarint(data)
		if err != nil {
			return
		}
		if len(rest) >= len(data) {
			t.Fatalf("ReadUvarint consumed no bytes")
		}
		v2, rest2, err := ReadUvarint(AppendUvarint(nil, v))
		if err != nil || v2 != v || len(rest2) != 0 {
			t.Fatalf("re-encode of %d: got %d, rest %d, err %v", v, v2, len(rest2), err)
		}
	})
}

func FuzzDecodeTuple(f *testing.F) {
	f.Add([]byte{})
	f.Add(Tuple{}.Encode())
	f.Add(Tuple{"Ihttp://example.org/s", "L42", "\x00"}.Encode())
	f.Add(Tuple{"a"}.Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, err := DecodeTuple(data)
		if err != nil {
			return
		}
		tup2, err := DecodeTuple(tup.Encode())
		if err != nil {
			t.Fatalf("re-decode of %q: %v", tup, err)
		}
		assertTuplesEqual(t, tup, tup2)
	})
}

func FuzzDecodeIDTuple(f *testing.F) {
	in := fuzzInterner{}
	f.Add([]byte{})
	f.Add(Tuple{}.EncodeIDs())
	f.Add(Tuple{string(AppendUvarint(nil, 1)), "\x00", string(AppendUvarint(nil, 300))}.EncodeIDs())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x02, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, err := DecodeIDTuple(data, in)
		if err != nil {
			return
		}
		tup2, err := DecodeIDTuple(tup.EncodeIDs(), in)
		if err != nil {
			t.Fatalf("re-decode of %x: %v", tup.EncodeIDs(), err)
		}
		assertTuplesEqual(t, tup, tup2)
	})
}

func assertTuplesEqual(t *testing.T, a, b Tuple) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("tuple arity changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tuple field %d changed: %x vs %x", i, a[i], b[i])
		}
	}
}
