package vec

// Iterator is the pull-based batch stream composed through the operator
// pipeline: scan sources, the dfs stream registry and join emitters all
// speak it. Implementations are not safe for concurrent use; create one
// iterator per consumer.
//
// Lifecycle contract (exercised by the lifecycle tests): Next returns nil
// at end of stream or after Close; Close may be called at any point,
// including mid-stream, and is idempotent; Next must never be called
// concurrently with Close from another goroutine.
type Iterator interface {
	// Next returns the next batch, or nil at end of stream (check Err via
	// the error return: a nil batch with nil error is a clean end).
	Next() (*Batch, error)
	// Close releases the iterator's resources. Idempotent; Next returns
	// nil after Close.
	Close() error
}

// SliceIterator streams a fixed slice of sealed batches.
type SliceIterator struct {
	batches []*Batch
	pos     int
	closed  bool
}

// NewSliceIterator returns an iterator over batches (not copied; callers
// must not mutate the slice while iterating).
func NewSliceIterator(batches []*Batch) *SliceIterator {
	return &SliceIterator{batches: batches}
}

// Next implements Iterator.
func (it *SliceIterator) Next() (*Batch, error) {
	if it.closed || it.pos >= len(it.batches) {
		return nil, nil
	}
	b := it.batches[it.pos]
	it.pos++
	return b, nil
}

// Close implements Iterator. It drops the batch references so an
// early-closed iterator does not pin the stream's memory.
func (it *SliceIterator) Close() error {
	it.closed = true
	it.batches = nil
	return nil
}

// checkIterator wraps an iterator with a cancellation poll between
// batches — the batch-granular analogue of the engine's ctxCheckInterval
// record polls (a batch holds at most ~DefaultBatchRows records, so the
// poll density matches the record-at-a-time loops rapidlint's ctxloop
// analyzer checks).
type checkIterator struct {
	it    Iterator
	check func() error
}

// WithCheck returns an iterator that calls check before every Next,
// surfacing its error instead of the batch. A nil check returns it
// unchanged.
func WithCheck(it Iterator, check func() error) Iterator {
	if check == nil {
		return it
	}
	return &checkIterator{it: it, check: check}
}

func (ci *checkIterator) Next() (*Batch, error) {
	if err := ci.check(); err != nil {
		return nil, err
	}
	return ci.it.Next()
}

func (ci *checkIterator) Close() error { return ci.it.Close() }
