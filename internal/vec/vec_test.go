package vec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// encodeTuple builds the canonical uvarint ID-tuple encoding the dict
// plane uses (codec.EncodeIDs without the codec dependency).
func encodeTuple(ids ...uint64) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, id)
	}
	return buf
}

// drain seals the builder and re-encodes every row of every batch,
// returning the records in order.
func drain(bu *Builder, sealed []*Batch) [][]byte {
	if b := bu.Flush(); b != nil {
		sealed = append(sealed, b)
	}
	var out [][]byte
	for _, b := range sealed {
		for r := 0; r < b.Rows(); r++ {
			out = append(out, b.AppendRecord(nil, r))
		}
	}
	return out
}

func TestBuilderRoundTripColumnar(t *testing.T) {
	bu := NewBuilder(4)
	var sealed []*Batch
	var want [][]byte
	for i := 0; i < 10; i++ {
		rec := encodeTuple(uint64(i), uint64(i)*300, 0)
		want = append(want, rec)
		if b := bu.Append(rec); b != nil {
			sealed = append(sealed, b)
		}
	}
	if len(sealed) != 2 {
		t.Fatalf("sealed %d batches mid-stream, want 2", len(sealed))
	}
	got := drain(bu, sealed)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("row %d = %x, want %x", i, got[i], want[i])
		}
	}
}

func TestBatchColumnsAndValidity(t *testing.T) {
	bu := NewBuilder(8)
	bu.Append(encodeTuple(7, 0, 9))
	bu.Append(encodeTuple(0, 5, 1))
	b := bu.Flush()
	if !b.Columnar() || b.Arity() != 3 || b.Rows() != 2 {
		t.Fatalf("batch shape = columnar %v arity %d rows %d", b.Columnar(), b.Arity(), b.Rows())
	}
	if b.ID(0, 0) != 7 || b.ID(1, 1) != 5 || b.ID(2, 0) != 9 {
		t.Fatalf("ID values wrong: %d %d %d", b.ID(0, 0), b.ID(1, 1), b.ID(2, 0))
	}
	wantNull := [][]bool{{false, true}, {true, false}, {false, false}}
	for c := range wantNull {
		for r, null := range wantNull[c] {
			if b.Null(c, r) != null {
				t.Errorf("Null(%d,%d) = %v, want %v", c, r, b.Null(c, r), null)
			}
		}
	}
	wantBytes := int64(len(encodeTuple(7, 0, 9)) + len(encodeTuple(0, 5, 1)))
	if b.Bytes() != wantBytes {
		t.Errorf("Bytes = %d, want %d", b.Bytes(), wantBytes)
	}
	if n := b.RecordLen(0); n != len(encodeTuple(7, 0, 9)) {
		t.Errorf("RecordLen(0) = %d, want %d", n, len(encodeTuple(7, 0, 9)))
	}
}

// TestBuilderRawFallback checks that non-tuple records — lexical rows,
// truncated and non-canonical encodings — round-trip verbatim through raw
// batches.
func TestBuilderRawFallback(t *testing.T) {
	raws := [][]byte{
		[]byte("lexical\x1frow"),
		{0x81},             // truncated uvarint
		{0x80, 0x00},       // non-canonical zero: must not merge with canonical tuples
		{0x01, 0x80, 0x01}, // non-canonical value encoding
		{0x02, 0x01},       // arity 2, one value: truncated tuple
		{0x00, 0x00},       // trailing byte after empty tuple
		{},                 // empty record
	}
	bu := NewBuilder(DefaultBatchRows)
	var sealed []*Batch
	for _, rec := range raws {
		if b := bu.Append(rec); b != nil {
			sealed = append(sealed, b)
		}
	}
	got := drain(bu, sealed)
	if len(got) != len(raws) {
		t.Fatalf("rows = %d, want %d", len(got), len(raws))
	}
	for i := range raws {
		if !bytes.Equal(got[i], raws[i]) {
			t.Fatalf("row %d = %x, want %x", i, got[i], raws[i])
		}
	}
}

// TestBuilderShapeChangesSealBatches interleaves arities and raw records;
// order must be preserved exactly across the seals.
func TestBuilderShapeChangesSealBatches(t *testing.T) {
	recs := [][]byte{
		encodeTuple(1, 2),
		encodeTuple(3, 4),
		encodeTuple(5, 6, 7), // arity change seals
		[]byte("raw"),        // raw seals
		encodeTuple(8),       // back to columnar
		{},                   // raw again
		encodeTuple(0),       // empty/zero id tuple
	}
	bu := NewBuilder(DefaultBatchRows)
	var sealed []*Batch
	for _, rec := range recs {
		if b := bu.Append(rec); b != nil {
			sealed = append(sealed, b)
		}
	}
	got := drain(bu, sealed)
	if len(got) != len(recs) {
		t.Fatalf("rows = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("row %d = %x, want %x", i, got[i], recs[i])
		}
	}
}

// TestBuilderRandomRoundTrip drives random mixtures of canonical tuples
// and raw bytes through small batches; the reassembled stream must be
// byte-identical. Determinism: fixed seed.
func TestBuilderRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bu := NewBuilder(3)
	var sealed []*Batch
	var want [][]byte
	for i := 0; i < 500; i++ {
		var rec []byte
		switch rng.Intn(3) {
		case 0:
			rec = encodeTuple(uint64(rng.Intn(1 << 20)))
		case 1:
			rec = encodeTuple(uint64(rng.Intn(5)), uint64(rng.Uint32()), uint64(rng.Intn(2)))
		default:
			rec = make([]byte, rng.Intn(9))
			rng.Read(rec)
		}
		want = append(want, rec)
		if b := bu.Append(rec); b != nil {
			sealed = append(sealed, b)
		}
	}
	got := drain(bu, sealed)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("row %d = %x, want %x", i, got[i], want[i])
		}
	}
}

// TestBuilderCopiesRecord mutates the appended slice afterwards; the batch
// must hold its own copy (raw arena and columnar values alike).
func TestBuilderCopiesRecord(t *testing.T) {
	bu := NewBuilder(8)
	var sealed []*Batch
	raw := []byte{0xff, 0xfe}
	bu.Append(raw)
	raw[0] = 0
	tup := encodeTuple(42)
	if b := bu.Append(tup); b != nil { // shape change seals the raw batch
		sealed = append(sealed, b)
	}
	tup[1] = 0
	got := drain(bu, sealed)
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2", len(got))
	}
	if !bytes.Equal(got[0], []byte{0xff, 0xfe}) {
		t.Errorf("raw row aliased the appended slice: %x", got[0])
	}
	if !bytes.Equal(got[1], encodeTuple(42)) {
		t.Errorf("tuple row aliased the appended slice: %x", got[1])
	}
}

func TestSliceIterator(t *testing.T) {
	bu := NewBuilder(2)
	var sealed []*Batch
	for i := 0; i < 5; i++ {
		if b := bu.Append(encodeTuple(uint64(i))); b != nil {
			sealed = append(sealed, b)
		}
	}
	if b := bu.Flush(); b != nil {
		sealed = append(sealed, b)
	}
	it := NewSliceIterator(sealed)
	var rows int
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		rows += b.Rows()
	}
	if rows != 5 {
		t.Fatalf("rows = %d, want 5", rows)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- Iterator lifecycle (the BatchIterator contract) ---

func TestSliceIteratorEarlyCloseMidStream(t *testing.T) {
	it := NewSliceIterator([]*Batch{{rows: 1}, {rows: 1}, {rows: 1}})
	if b, err := it.Next(); b == nil || err != nil {
		t.Fatalf("first Next = %v, %v", b, err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("early Close: %v", err)
	}
	if b, err := it.Next(); b != nil || err != nil {
		t.Fatalf("Next after Close = %v, %v; want nil, nil", b, err)
	}
}

func TestSliceIteratorDoubleClose(t *testing.T) {
	it := NewSliceIterator([]*Batch{{rows: 1}})
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestWithCheckCancelsBetweenBatches models the ctxloop contract at batch
// granularity: a check that starts failing stops the stream at the next
// batch boundary with the check's error.
func TestWithCheckCancelsBetweenBatches(t *testing.T) {
	wantErr := errors.New("cancelled")
	var fail bool
	it := WithCheck(
		NewSliceIterator([]*Batch{{rows: 1}, {rows: 1}}),
		func() error {
			if fail {
				return wantErr
			}
			return nil
		})
	if b, err := it.Next(); b == nil || err != nil {
		t.Fatalf("first Next = %v, %v", b, err)
	}
	fail = true
	if _, err := it.Next(); !errors.Is(err, wantErr) {
		t.Fatalf("Next after cancel = %v, want %v", err, wantErr)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("double Close through WithCheck: %v", err)
	}
}

func TestWithCheckNilCheckPassthrough(t *testing.T) {
	base := NewSliceIterator(nil)
	it := WithCheck(base, nil)
	if it != Iterator(base) {
		t.Fatal("WithCheck(nil) wrapped the iterator")
	}
	it.Close()
}
