// Package vec implements the columnar batch carrier of the streaming
// execution plane: fixed-capacity batches of term-ID tuples stored
// column-major ([]uint64 per column plus a validity bitset), built from and
// re-encoded to the canonical uvarint record encoding of the dictionary
// plane (codec.EncodeIDs) without loss. Records that are not canonical ID
// tuples — lexical-plane tuples, aggregation states, tagged join rows of
// mixed arity — fall back to a raw batch holding the record bytes verbatim
// in an arena, so a batch stream can carry any record stream byte-exactly.
//
// Batches flow between operators through the pull-based Iterator; the dfs
// stream registry buffers job outputs as batches so a single-consumer
// intermediate never round-trips through the DFS backend.
package vec

import "encoding/binary"

// DefaultBatchRows is the batch capacity used when a caller does not
// configure one (~1024 rows keeps a batch within a few KB in the ID plane
// and aligns with the engine's cancellation-poll interval).
const DefaultBatchRows = 1024

// maxColumns bounds the arity a columnar batch will hold; wider tuples
// (which do not occur in practice — plans stay under a few dozen columns)
// fall back to raw batches rather than allocating huge column sets.
const maxColumns = 64

// Batch is a sealed, immutable batch of records. A batch is either
// columnar — every record a canonical uvarint ID tuple of one shared arity,
// stored column-major with per-column validity bitsets — or raw, holding
// arbitrary record bytes in an arena. Row order is the exact append order,
// and re-encoding every row reproduces the appended records byte for byte.
type Batch struct {
	arity int // column count; -1 for raw batches
	rows  int
	cols  [][]uint64
	valid [][]uint64 // per-column bitsets; bit set = non-NULL (id != 0)
	data  []byte     // raw-batch arena
	offs  []int      // raw-batch record boundaries, len rows+1
	bytes int64      // sum of encoded record lengths
}

// Rows returns the number of records in the batch.
func (b *Batch) Rows() int { return b.rows }

// Bytes returns the total encoded length of the batch's records — the
// logical DFS bytes the batch stands in for.
func (b *Batch) Bytes() int64 { return b.bytes }

// Columnar reports whether the batch stores ID columns (true) or raw
// record bytes (false).
func (b *Batch) Columnar() bool { return b.arity >= 0 }

// Arity returns the column count of a columnar batch, or -1 for raw.
func (b *Batch) Arity() int { return b.arity }

// ID returns the term ID at (col, row) of a columnar batch.
func (b *Batch) ID(col, row int) uint64 { return b.cols[col][row] }

// Null reports whether (col, row) of a columnar batch holds the NULL term
// (ID 0), read from the validity bitset.
func (b *Batch) Null(col, row int) bool {
	return b.valid[col][row>>6]&(1<<(uint(row)&63)) == 0
}

// AppendRecord appends row's canonical record encoding to dst and returns
// the extended slice. For columnar batches this re-encodes the ID tuple
// (byte-identical to the appended record); for raw batches it copies the
// arena bytes.
//
//rapid:hot
func (b *Batch) AppendRecord(dst []byte, row int) []byte {
	if b.arity < 0 {
		return append(dst, b.data[b.offs[row]:b.offs[row+1]]...)
	}
	dst = binary.AppendUvarint(dst, uint64(b.arity))
	for c := 0; c < b.arity; c++ {
		dst = binary.AppendUvarint(dst, b.cols[c][row])
	}
	return dst
}

// RecordLen returns the encoded length of row, without materialising it.
//
//rapid:hot
func (b *Batch) RecordLen(row int) int {
	if b.arity < 0 {
		return b.offs[row+1] - b.offs[row]
	}
	n := uvarintLen(uint64(b.arity))
	for c := 0; c < b.arity; c++ {
		n += uvarintLen(b.cols[c][row])
	}
	return n
}

// uvarintLen returns the canonical uvarint encoding length of v.
//
//rapid:hot
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// parseIDTuple parses rec as a canonical uvarint ID tuple, appending the
// IDs to vals. ok is false when rec is not a tuple, exceeds maxColumns, is
// not minimally encoded, or has trailing bytes — any case where re-encoding
// would not reproduce rec exactly.
//
//rapid:hot
func parseIDTuple(rec []byte, vals []uint64) (_ []uint64, ok bool) {
	n, sz := binary.Uvarint(rec)
	if sz <= 0 || sz != uvarintLen(n) || n > maxColumns {
		return vals, false
	}
	pos := sz
	for i := uint64(0); i < n; i++ {
		v, vsz := binary.Uvarint(rec[pos:])
		if vsz <= 0 || vsz != uvarintLen(v) {
			return vals, false
		}
		vals = append(vals, v)
		pos += vsz
	}
	if pos != len(rec) {
		return vals, false
	}
	return vals, true
}

// Builder accumulates records into batches. Append seals and returns a
// batch when it fills (maxRows) or when the incoming record's shape is
// incompatible with the open batch (different arity, or columnar vs raw);
// Flush seals whatever remains. Builders copy everything out of the
// appended record, so callers may reuse the slice immediately.
type Builder struct {
	maxRows int
	cur     *Batch
	scratch []uint64
}

// NewBuilder returns a builder sealing batches at maxRows rows (<= 0
// selects DefaultBatchRows).
func NewBuilder(maxRows int) *Builder {
	if maxRows <= 0 {
		maxRows = DefaultBatchRows
	}
	return &Builder{maxRows: maxRows}
}

// Append adds one record, returning a sealed batch when the append
// completed one (shape change or capacity), else nil. The record is fully
// copied.
//
//rapid:hot
func (bu *Builder) Append(rec []byte) *Batch {
	vals, isTuple := parseIDTuple(rec, bu.scratch[:0])
	bu.scratch = vals
	var sealed *Batch
	if bu.cur != nil && bu.cur.rows > 0 {
		compatible := isTuple && bu.cur.arity == len(vals) || !isTuple && bu.cur.arity < 0
		if !compatible {
			sealed = bu.seal()
		}
	}
	if bu.cur == nil {
		bu.cur = bu.newBatch(isTuple, len(vals))
	}
	b := bu.cur
	if b.arity >= 0 {
		for c, v := range vals {
			b.cols[c] = append(b.cols[c], v)
			if v != 0 {
				b.valid[c][b.rows>>6] |= 1 << (uint(b.rows) & 63)
			}
		}
	} else {
		b.data = append(b.data, rec...)
		b.offs = append(b.offs, len(b.data))
	}
	b.rows++
	b.bytes += int64(len(rec))
	if b.rows >= bu.maxRows {
		full := bu.seal()
		if sealed == nil {
			return full
		}
		// A shape change and a fill in one append only happens with
		// maxRows == 1; the shape-sealed batch was empty then.
		return full
	}
	return sealed
}

// newBatch allocates an open batch shaped for the incoming record.
func (bu *Builder) newBatch(isTuple bool, arity int) *Batch {
	if !isTuple {
		return &Batch{arity: -1, offs: make([]int, 1, bu.maxRows+1)}
	}
	b := &Batch{
		arity: arity,
		cols:  make([][]uint64, arity),
		valid: make([][]uint64, arity),
	}
	words := (bu.maxRows + 63) / 64
	for c := range b.cols {
		b.cols[c] = make([]uint64, 0, bu.maxRows)
		b.valid[c] = make([]uint64, words)
	}
	return b
}

// seal detaches and returns the open batch.
func (bu *Builder) seal() *Batch {
	b := bu.cur
	bu.cur = nil
	return b
}

// Flush seals and returns the partially filled open batch, or nil when the
// builder is empty.
func (bu *Builder) Flush() *Batch {
	if bu.cur == nil || bu.cur.rows == 0 {
		bu.cur = nil
		return nil
	}
	return bu.seal()
}
