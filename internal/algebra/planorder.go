package algebra

import "fmt"

// JoinOrder linearises a pattern's join edges into an execution order: the
// first edge starts at star 0, and every subsequent edge connects an
// already-covered star (returned as Left) to a new one (Right). Planners
// walk this order to chain binary join cycles. Redundant edges (closing
// cycles in the join graph) are rejected — the analytical workloads are
// acyclic.
//
// This is the fixed heuristic order (query order, star 0 first); planners
// with a statistics catalog use JoinOrderCost instead.
func JoinOrder(numStars int, joins []Join) ([]Join, error) {
	if numStars <= 1 {
		return nil, nil
	}
	covered := map[int]bool{0: true}
	used := make([]bool, len(joins))
	var order []Join
	for len(covered) < numStars {
		found := false
		for i, j := range joins {
			if used[i] {
				continue
			}
			switch {
			case covered[j.Left] && !covered[j.Right]:
				order = append(order, j)
			case covered[j.Right] && !covered[j.Left]:
				order = append(order, j.flip())
			default:
				continue
			}
			used[i] = true
			covered[order[len(order)-1].Right] = true
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("algebra: join graph does not connect all %d stars", numStars)
		}
	}
	for i, j := range joins {
		if !used[i] && covered[j.Left] && covered[j.Right] {
			return nil, fmt.Errorf("algebra: cyclic join graph (redundant edge on ?%s) not supported", j.Var)
		}
	}
	return order, nil
}

// CardEstimator supplies predicted cardinalities to cost-based join
// ordering and to the adaptive re-plan hook. stats.Estimator is the
// production implementation; tests substitute fakes to force mispredictions.
type CardEstimator interface {
	// StarCard returns the predicted cardinality of one star's scan output
	// (triplegroups or rows, depending on the engine's data model).
	StarCard(star int) float64
	// JoinCard returns the predicted output cardinality of joining inputs
	// of cardinality left and right along edge j.
	JoinCard(left, right float64, j Join) float64
}

// JoinOrderCost linearises the join edges like JoinOrder, but greedily
// picks the next edge (and the starting star) to minimise the predicted
// intermediate cardinality at every step. The returned order satisfies the
// same chaining contract — each edge's Left endpoint is already covered,
// each Right is new — except that the chain may start at any star:
// consumers seed their accumulator from order[0].Left rather than star 0.
// Ties break toward the earlier edge in query order, keeping plans
// deterministic. A nil estimator falls back to the heuristic JoinOrder.
func JoinOrderCost(numStars int, joins []Join, est CardEstimator) ([]Join, error) {
	if numStars <= 1 || est == nil {
		return JoinOrder(numStars, joins)
	}
	// Validate connectivity and acyclicity with the heuristic walk first so
	// both planners reject malformed graphs with identical errors.
	if _, err := JoinOrder(numStars, joins); err != nil {
		return nil, err
	}
	covered := make([]bool, numStars)
	used := make([]bool, len(joins))
	order := make([]Join, 0, numStars-1)
	var acc float64
	for len(order) < numStars-1 {
		best := -1
		var bestEdge Join
		var bestCard float64
		for i, j := range joins {
			if used[i] {
				continue
			}
			var cands []Join
			switch {
			case len(order) == 0:
				cands = []Join{j, j.flip()}
			case covered[j.Left] && !covered[j.Right]:
				cands = []Join{j}
			case covered[j.Right] && !covered[j.Left]:
				cands = []Join{j.flip()}
			default:
				continue
			}
			for _, c := range cands {
				left := acc
				if len(order) == 0 {
					left = est.StarCard(c.Left)
				}
				out := est.JoinCard(left, est.StarCard(c.Right), c)
				if best < 0 || out < bestCard {
					best, bestEdge, bestCard = i, c, out
				}
			}
		}
		used[best] = true
		covered[bestEdge.Left] = true
		covered[bestEdge.Right] = true
		order = append(order, bestEdge)
		acc = bestCard
	}
	return order, nil
}

// ReorderRemaining re-plans the tail of an executing join chain: given the
// stars already folded into the accumulator (covered), the not-yet-executed
// edges, and the observed accumulator cardinality accCard, it returns the
// remaining edges re-ordered greedily by predicted intermediate
// cardinality, re-oriented so each edge's Left endpoint is covered when it
// executes. The input slice is not modified.
func ReorderRemaining(covered []bool, remaining []Join, accCard float64, est CardEstimator) []Join {
	if est == nil || len(remaining) < 2 {
		return remaining
	}
	cov := make([]bool, len(covered))
	copy(cov, covered)
	used := make([]bool, len(remaining))
	order := make([]Join, 0, len(remaining))
	acc := accCard
	for len(order) < len(remaining) {
		best := -1
		var bestEdge Join
		var bestCard float64
		for i, j := range remaining {
			if used[i] {
				continue
			}
			var cand Join
			switch {
			case cov[j.Left] && !cov[j.Right]:
				cand = j
			case cov[j.Right] && !cov[j.Left]:
				cand = j.flip()
			default:
				continue
			}
			out := est.JoinCard(acc, est.StarCard(cand.Right), cand)
			if best < 0 || out < bestCard {
				best, bestEdge, bestCard = i, cand, out
			}
		}
		if best < 0 {
			// The tail no longer connects from the covered set (cannot
			// happen for orders produced by JoinOrder/JoinOrderCost); keep
			// the original order rather than guess.
			return remaining
		}
		used[best] = true
		cov[bestEdge.Right] = true
		order = append(order, bestEdge)
		acc = bestCard
	}
	return order
}
