package algebra

import "fmt"

// JoinOrder linearises a pattern's join edges into an execution order: the
// first edge starts at star 0, and every subsequent edge connects an
// already-covered star (returned as Left) to a new one (Right). Planners
// walk this order to chain binary join cycles. Redundant edges (closing
// cycles in the join graph) are rejected — the analytical workloads are
// acyclic.
func JoinOrder(numStars int, joins []Join) ([]Join, error) {
	if numStars <= 1 {
		return nil, nil
	}
	covered := map[int]bool{0: true}
	used := make([]bool, len(joins))
	var order []Join
	for len(covered) < numStars {
		found := false
		for i, j := range joins {
			if used[i] {
				continue
			}
			switch {
			case covered[j.Left] && !covered[j.Right]:
				order = append(order, j)
			case covered[j.Right] && !covered[j.Left]:
				order = append(order, j.flip())
			default:
				continue
			}
			used[i] = true
			covered[order[len(order)-1].Right] = true
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("algebra: join graph does not connect all %d stars", numStars)
		}
	}
	for i, j := range joins {
		if !used[i] && covered[j.Left] && covered[j.Right] {
			return nil, fmt.Errorf("algebra: cyclic join graph (redundant edge on ?%s) not supported", j.Var)
		}
	}
	return order, nil
}
