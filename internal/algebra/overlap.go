package algebra

// Overlap detection between star patterns (Definition 3.1) and graph
// patterns (Definition 3.2). Graph patterns overlap when their stars can be
// put in one-to-one correspondence such that corresponding stars overlap and
// corresponding join edges are role-equivalent. The paper's worked examples
// (Figure 3) are reproduced in the tests: AQ2's patterns overlap, AQ3's do
// not (object-subject vs object-object join).

// StarsOverlap implements Definition 3.1: the stars' property sets must
// intersect, and the stars must agree on their rdf:type constant objects.
// The type condition is applied symmetrically (overlap is a symmetric
// relation): every type object constrained in one star must be constrained
// in the other.
func StarsOverlap(a, b *StarPattern) bool {
	// Composite rewriting of unbound-property stars needs [32]'s machinery
	// and is out of scope: such stars never overlap, so engines fall back
	// to sequential evaluation.
	if a.HasUnbound() || b.HasUnbound() {
		return false
	}
	// Likewise for stars carrying their own OPTIONAL patterns.
	if len(a.Optionals) > 0 || len(b.Optionals) > 0 {
		return false
	}
	ap, bp := a.PropSet(), b.PropSet()
	intersects := false
	for k := range ap {
		if bp[k] {
			intersects = true
			break
		}
	}
	if !intersects {
		return false
	}
	at, bt := a.TypeObjects(), b.TypeObjects()
	if len(at) != len(bt) {
		return false
	}
	for o := range at {
		if !bt[o] {
			return false
		}
	}
	return true
}

// joinEdgesEquivalent reports whether two join edges (under a star mapping
// that already aligns their endpoints) are role-equivalent in the sense of
// Definition 3.2: the join variable plays the same role at each endpoint,
// and at object endpoints the carrying triple patterns agree on a property.
// At subject endpoints the property condition is subsumed by star overlap
// (the subject is shared by every triple pattern of the star).
func joinEdgesEquivalent(e1, e2 Join) bool {
	if e1.LeftRole != e2.LeftRole || e1.RightRole != e2.RightRole {
		return false
	}
	if e1.LeftRole == RoleObject && !propRefsIntersect(e1.LeftProps, e2.LeftProps) {
		return false
	}
	if e1.RightRole == RoleObject && !propRefsIntersect(e1.RightProps, e2.RightProps) {
		return false
	}
	return true
}

func propRefsIntersect(a, b []PropRef) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Key() == y.Key() {
				return true
			}
		}
	}
	return false
}

// StarMapping is a bijection from the stars of one graph pattern onto the
// stars of another: Map[i] is the index in the second pattern corresponding
// to star i of the first.
type StarMapping []int

// FindOverlap implements Definition 3.2. It searches for a bijection between
// the stars of gp1 and gp2 under which every pair of corresponding stars
// overlaps and the two patterns have identical join structure up to
// role-equivalence. It returns the mapping and true on success.
//
// The search is exhaustive over permutations; analytical graph patterns have
// at most a handful of stars.
func FindOverlap(gp1, gp2 *GraphPattern) (StarMapping, bool) {
	if len(gp1.Stars) != len(gp2.Stars) {
		return nil, false
	}
	n := len(gp1.Stars)
	mapping := make(StarMapping, n)
	used := make([]bool, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return joinStructuresMatch(gp1, gp2, mapping)
		}
		for j := 0; j < n; j++ {
			if used[j] || !StarsOverlap(gp1.Stars[i], gp2.Stars[j]) {
				continue
			}
			mapping[i] = j
			used[j] = true
			if rec(i + 1) {
				return true
			}
			used[j] = false
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	return mapping, true
}

// joinStructuresMatch checks that under the mapping, every join edge of gp1
// has a role-equivalent counterpart in gp2 and vice versa.
func joinStructuresMatch(gp1, gp2 *GraphPattern, m StarMapping) bool {
	inv := make([]int, len(m))
	for i, j := range m {
		inv[j] = i
	}
	matched := make([]bool, len(gp2.Joins))
	for _, e1 := range gp1.Joins {
		found := false
		for k, e2 := range gp2.Joins {
			if matched[k] {
				continue
			}
			if edgeEndpointsAlign(e1, e2, m) && joinEdgesEquivalent(e1, orientEdge(e2, e1, m)) {
				matched[k] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for k := range gp2.Joins {
		if !matched[k] {
			return false
		}
	}
	return true
}

// edgeEndpointsAlign reports whether e2 connects the images of e1's
// endpoints (in either orientation).
func edgeEndpointsAlign(e1, e2 Join, m StarMapping) bool {
	return (e2.Left == m[e1.Left] && e2.Right == m[e1.Right]) ||
		(e2.Left == m[e1.Right] && e2.Right == m[e1.Left])
}

// orientEdge returns e2 oriented so that its Left endpoint is the image of
// e1's Left endpoint.
func orientEdge(e2, e1 Join, m StarMapping) Join {
	if e2.Left == m[e1.Left] {
		return e2
	}
	return Join{
		Var:        e2.Var,
		Left:       e2.Right,
		Right:      e2.Left,
		LeftRole:   e2.RightRole,
		RightRole:  e2.LeftRole,
		LeftProps:  e2.RightProps,
		RightProps: e2.LeftProps,
	}
}
