package algebra

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"rapidanalytics/internal/sparql"
)

func TestAggStateBasics(t *testing.T) {
	tests := []struct {
		fn     sparql.AggFunc
		values []string
		want   string
	}{
		{sparql.Count, []string{"L1", "L2", "L3"}, "3"},
		{sparql.Count, []string{"La", Null, "Lb"}, "2"},
		{sparql.Sum, []string{"L1.5", "L2.5"}, "4"},
		{sparql.Sum, []string{}, "0"},
		{sparql.Avg, []string{"L2", "L4"}, "3"},
		{sparql.Avg, []string{}, Null},
		{sparql.Min, []string{"L5", "L3", "L9"}, "3"},
		{sparql.Max, []string{"L5", "L30", "L9"}, "30"},
		{sparql.Min, []string{"Lb", "La"}, "a"},
		{sparql.Min, []string{}, Null},
	}
	for _, tc := range tests {
		s := NewAggState(tc.fn)
		for _, v := range tc.values {
			s.Update(v)
		}
		if got := s.Final(); got != tc.want {
			t.Errorf("%s(%v) = %q, want %q", tc.fn, tc.values, got, tc.want)
		}
	}
}

func TestAggStateUpdateN(t *testing.T) {
	s := NewAggState(sparql.Sum)
	s.UpdateN("L2.5", 4)
	if got := s.Final(); got != "10" {
		t.Errorf("SUM with multiplicity = %q, want 10", got)
	}
	c := NewAggState(sparql.Count)
	c.UpdateN("Lx", 7)
	if got := c.Final(); got != "7" {
		t.Errorf("COUNT with multiplicity = %q, want 7", got)
	}
	m := NewAggState(sparql.Max)
	m.UpdateN("L3", 5)
	m.UpdateN("L1", 2)
	if got := m.Final(); got != "3" {
		t.Errorf("MAX with multiplicity = %q, want 3", got)
	}
}

// Property: merging partial states is equivalent to a single sequential
// fold — the algebraic-aggregate property that makes combiners and the
// paper's map-side hash pre-aggregation correct.
func TestAggStateMergeEquivalence(t *testing.T) {
	fns := []sparql.AggFunc{sparql.Count, sparql.Sum, sparql.Avg, sparql.Min, sparql.Max}
	f := func(raw []int16, split uint8) bool {
		values := make([]string, len(raw))
		for i, r := range raw {
			values[i] = "L" + strconv.Itoa(int(r))
		}
		for _, fn := range fns {
			whole := NewAggState(fn)
			for _, v := range values {
				whole.Update(v)
			}
			cut := 0
			if len(values) > 0 {
				cut = int(split) % (len(values) + 1)
			}
			left, right := NewAggState(fn), NewAggState(fn)
			for _, v := range values[:cut] {
				left.Update(v)
			}
			for _, v := range values[cut:] {
				right.Update(v)
			}
			left.Merge(right)
			if left.Final() != whole.Final() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Encode/Decode round-trips partial states.
func TestAggStateEncodeRoundTrip(t *testing.T) {
	f := func(count int64, sum float64, extreme string) bool {
		if count < 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
			return true
		}
		for _, ch := range extreme {
			if ch == 0x1e || ch == 0x1f {
				return true
			}
		}
		s := &AggState{Func: sparql.Min, Count: count, Sum: sum, Extreme: extreme}
		dec, err := DecodeAggState(s.Encode())
		if err != nil {
			return false
		}
		return dec.Count == s.Count && dec.Sum == s.Sum && dec.Extreme == s.Extreme && dec.Func == s.Func
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistinctAggState(t *testing.T) {
	c := NewDistinctAggState(sparql.Count)
	for _, v := range []string{"La", "Lb", "La", "Lc", "Lb", Null} {
		c.Update(v)
	}
	if got := c.Final(); got != "3" {
		t.Errorf("COUNT(DISTINCT) = %q, want 3", got)
	}
	s := NewDistinctAggState(sparql.Sum)
	for _, v := range []string{"L5", "L5", "L7"} {
		s.Update(v)
	}
	if got := s.Final(); got != "12" {
		t.Errorf("SUM(DISTINCT) = %q, want 12", got)
	}
	s.UpdateN("L9", 100)
	if got := s.Final(); got != "21" {
		t.Errorf("SUM(DISTINCT) after UpdateN = %q, want 21", got)
	}
}

// DISTINCT merging is a set union: splitting the input arbitrarily and
// merging partial states equals one sequential fold.
func TestDistinctMergeEquivalence(t *testing.T) {
	f := func(raw []uint8, cut uint8) bool {
		values := make([]string, len(raw))
		for i, r := range raw {
			values[i] = "L" + strconv.Itoa(int(r%16))
		}
		whole := NewDistinctAggState(sparql.Count)
		for _, v := range values {
			whole.Update(v)
		}
		k := 0
		if len(values) > 0 {
			k = int(cut) % (len(values) + 1)
		}
		left, right := NewDistinctAggState(sparql.Count), NewDistinctAggState(sparql.Count)
		for _, v := range values[:k] {
			left.Update(v)
		}
		for _, v := range values[k:] {
			right.Update(v)
		}
		// Round-trip the right side through the wire format too.
		dec, err := DecodeAggState(right.Encode())
		if err != nil {
			return false
		}
		left.Merge(dec)
		return left.Final() == whole.Final()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistinctEncodeRoundTrip(t *testing.T) {
	s := NewDistinctAggState(sparql.Count)
	s.Update("Lx")
	s.Update("Ly")
	dec, err := DecodeAggState(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Distinct || len(dec.Seen) != 2 || dec.Final() != "2" {
		t.Errorf("decoded = %+v", dec)
	}
}

func TestMultiAggState(t *testing.T) {
	specs := []AggSpec{
		{Func: sparql.Count, Var: "x", As: "c"},
		{Func: sparql.Sum, Var: "x", As: "s"},
	}
	a := NewMultiAggState(specs)
	a.States[0].Update("L1")
	a.States[1].Update("L5")
	b := NewMultiAggState(specs)
	b.States[0].Update("L2")
	b.States[1].Update("L7")
	enc := b.Encode()
	dec, err := DecodeMultiAggState(enc)
	if err != nil {
		t.Fatalf("DecodeMultiAggState: %v", err)
	}
	a.Merge(dec)
	finals := a.Finals()
	if finals[0] != "2" || finals[1] != "12" {
		t.Errorf("Finals = %v", finals)
	}
}

func TestDecodeAggStateErrors(t *testing.T) {
	for _, bad := range []string{"", "COUNT", "COUNT\x1fx\x1f0\x1f", "COUNT\x1f1\x1fz\x1f"} {
		if _, err := DecodeAggState(bad); err == nil {
			t.Errorf("DecodeAggState(%q) succeeded, want error", bad)
		}
	}
}

func TestEvalFilter(t *testing.T) {
	gt := sparql.Filter{Kind: sparql.FilterCompare, Var: "p", Op: ">", Value: "5000", IsNumeric: true}
	for v, want := range map[string]bool{"L6000": true, "L5000": false, "L10": false, Null: false, "Labc": false} {
		got, err := EvalFilter(gt, v)
		if err != nil {
			t.Fatalf("EvalFilter(%q): %v", v, err)
		}
		if got != want {
			t.Errorf("EvalFilter(>5000, %q) = %v, want %v", v, got, want)
		}
	}
	re := sparql.Filter{Kind: sparql.FilterRegex, Var: "n", Pattern: "MAPK signaling", Flags: "i"}
	got, err := EvalFilter(re, "Lthe mapk SIGNALING pathway")
	if err != nil || !got {
		t.Errorf("regex filter = %v, %v", got, err)
	}
	got, err = EvalFilter(re, "Lother pathway")
	if err != nil || got {
		t.Errorf("regex filter non-match = %v, %v", got, err)
	}
	eq := sparql.Filter{Kind: sparql.FilterCompare, Var: "t", Op: "=", Value: "News"}
	if ok, _ := EvalFilter(eq, "LNews"); !ok {
		t.Error("string equality filter failed")
	}
}

func TestEvalExpr(t *testing.T) {
	q := sparql.MustParse(prefix + `SELECT ((?a + ?b) * 2 / ?c AS ?r) {
  { SELECT (SUM(?x) AS ?a) (COUNT(?x) AS ?b) (MAX(?x) AS ?c) { ?s e:p ?x . } }
}`)
	expr := q.Select.Projection[0].Expr
	got, err := EvalExpr(expr, map[string]string{"a": "4", "b": "2", "c": "L3"})
	if err != nil {
		t.Fatalf("EvalExpr: %v", err)
	}
	if got != 4 {
		t.Errorf("EvalExpr = %v, want 4", got)
	}
	if _, err := EvalExpr(expr, map[string]string{"a": "4", "b": "2", "c": "0"}); err == nil {
		t.Error("division by zero not reported")
	}
	if _, err := EvalExpr(expr, map[string]string{"a": "4", "b": "2"}); err == nil {
		t.Error("unbound variable not reported")
	}
}

func TestFormatNumber(t *testing.T) {
	for f, want := range map[float64]string{42: "42", 2.5: "2.5", -3: "-3", 0: "0"} {
		if got := FormatNumber(f); got != want {
			t.Errorf("FormatNumber(%v) = %q, want %q", f, got, want)
		}
	}
}

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"L42.5", 42.5, true},
		{"42", 42, true},
		{"Labc", 0, false},
		{"Ihttp://e/x", 0, false},
	}
	for _, tc := range cases {
		got, ok := ParseNumber(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseNumber(%q) = %v,%v", tc.in, got, ok)
		}
	}
}
