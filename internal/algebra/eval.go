package algebra

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"

	"rapidanalytics/internal/sparql"
)

// Null is the lexical representation of an unbound value in tuples flowing
// through the engines (Hive-style NULLs from outer joins, absent optional
// bindings). It cannot collide with RDF term keys, which always start with
// a kind tag.
const Null = "\x00"

// IsNull reports whether a lexical value is the NULL marker.
func IsNull(v string) bool { return v == Null }

// ParseNumber parses a lexical value as a float. RDF terms flow through the
// engines in Term.Key form ("L42.5"); bare lexical forms are also accepted.
func ParseNumber(v string) (float64, bool) {
	if len(v) > 0 && (v[0] == 'L' || v[0] == 'I' || v[0] == 'B') {
		if f, err := strconv.ParseFloat(v[1:], 64); err == nil {
			return f, true
		}
	}
	f, err := strconv.ParseFloat(v, 64)
	return f, err == nil
}

// FormatNumber renders a float minimally: integers without a decimal point,
// other values with up to 6 significant decimals.
func FormatNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', 10, 64)
}

var (
	regexCacheMu sync.Mutex
	regexCache   = map[string]*regexp.Regexp{}
)

func compileFilterRegex(pattern, flags string) (*regexp.Regexp, error) {
	key := flags + "\x00" + pattern
	regexCacheMu.Lock()
	defer regexCacheMu.Unlock()
	if re, ok := regexCache[key]; ok {
		return re, nil
	}
	p := pattern
	if strings.Contains(flags, "i") {
		p = "(?i)" + p
	}
	re, err := regexp.Compile(p)
	if err != nil {
		return nil, err
	}
	regexCache[key] = re
	return re, nil
}

// EvalFilter evaluates a FILTER constraint against a variable's lexical
// value (in Term.Key form). NULL values never satisfy a filter.
func EvalFilter(f sparql.Filter, value string) (bool, error) {
	if IsNull(value) || value == "" {
		return false, nil
	}
	lex := value
	if lex[0] == 'L' || lex[0] == 'I' || lex[0] == 'B' {
		lex = lex[1:]
	}
	switch f.Kind {
	case FilterRegexKind:
		re, err := compileFilterRegex(f.Pattern, f.Flags)
		if err != nil {
			return false, fmt.Errorf("algebra: bad regex %q: %w", f.Pattern, err)
		}
		return re.MatchString(lex), nil
	default:
		if f.IsNumeric {
			lf, ok := ParseNumber(value)
			if !ok {
				return false, nil
			}
			rf, _ := strconv.ParseFloat(f.Value, 64)
			return compareFloats(f.Op, lf, rf), nil
		}
		return compareStrings(f.Op, lex, f.Value), nil
	}
}

// FilterRegexKind aliases sparql.FilterRegex for local readability.
const FilterRegexKind = sparql.FilterRegex

func compareFloats(op string, a, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func compareStrings(op string, a, b string) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// CompareValues orders two column values for ORDER BY: NULLs first, then
// numeric comparison when both parse as numbers (term-key tags stripped),
// lexicographic otherwise. Returns -1, 0 or 1.
func CompareValues(a, b string) int {
	an, bn := IsNull(a), IsNull(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	la, lb := a, b
	if len(la) > 0 && (la[0] == 'I' || la[0] == 'L' || la[0] == 'B') {
		la = la[1:]
	}
	if len(lb) > 0 && (lb[0] == 'I' || lb[0] == 'L' || lb[0] == 'B') {
		lb = lb[1:]
	}
	fa, erra := strconv.ParseFloat(la, 64)
	fb, errb := strconv.ParseFloat(lb, 64)
	if erra == nil && errb == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	switch {
	case la < lb:
		return -1
	case la > lb:
		return 1
	default:
		return 0
	}
}

// EvalExpr evaluates an arithmetic expression over a row of lexical column
// values. Unbound or non-numeric operands yield an error.
func EvalExpr(e *sparql.Expr, row map[string]string) (float64, error) {
	switch e.Kind {
	case sparql.ExprNum:
		return e.Num, nil
	case sparql.ExprVar:
		v, ok := row[e.Var]
		if !ok || IsNull(v) {
			return 0, fmt.Errorf("algebra: unbound expression variable ?%s", e.Var)
		}
		f, ok := ParseNumber(v)
		if !ok {
			return 0, fmt.Errorf("algebra: non-numeric value %q for ?%s", v, e.Var)
		}
		return f, nil
	case sparql.ExprBinary:
		l, err := EvalExpr(e.Left, row)
		if err != nil {
			return 0, err
		}
		r, err := EvalExpr(e.Right, row)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			if r == 0 {
				return 0, fmt.Errorf("algebra: division by zero")
			}
			return l / r, nil
		}
	}
	return 0, fmt.Errorf("algebra: malformed expression")
}
