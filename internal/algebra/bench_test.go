package algebra

import (
	"strconv"
	"testing"

	"rapidanalytics/internal/sparql"
)

func BenchmarkFindOverlap(b *testing.B) {
	gp1 := mustGPB(b, prefix+`SELECT ?f {
  ?p a e:PT1 ; e:label ?l ; e:pf ?f .
  ?o e:product ?p ; e:price ?pr ; e:vendor ?v .
  ?v e:country ?c .
}`)
	gp2 := mustGPB(b, prefix+`SELECT ?c {
  ?p1 a e:PT1 ; e:label ?l1 .
  ?o1 e:product ?p1 ; e:price ?pr1 ; e:vendor ?v1 .
  ?v1 e:country ?c .
}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := FindOverlap(gp1, gp2); !ok {
			b.Fatal("no overlap")
		}
	}
}

func mustGPB(b *testing.B, query string) *GraphPattern {
	b.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	gp, err := BuildGraphPattern(q.Select.Pattern)
	if err != nil {
		b.Fatal(err)
	}
	return gp
}

func BenchmarkBuildComposite(b *testing.B) {
	q := sparql.MustParse(mg1)
	aq, err := Build(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildComposite(aq.Subqueries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggStateUpdateMerge(b *testing.B) {
	values := make([]string, 256)
	for i := range values {
		values[i] = "L" + strconv.Itoa(i%17)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, c := NewAggState(sparql.Avg), NewAggState(sparql.Avg)
		for j, v := range values {
			if j%2 == 0 {
				a.Update(v)
			} else {
				c.Update(v)
			}
		}
		a.Merge(c)
		if a.Final() == Null {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkParseMG1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Parse(mg1); err != nil {
			b.Fatal(err)
		}
	}
}
