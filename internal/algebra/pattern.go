// Package algebra models SPARQL analytical queries the way the paper's
// optimizer sees them: graph patterns decomposed into subject-rooted star
// patterns connected by join variables, grouping/aggregation specifications
// decoupled from the patterns they range over, and — the core contribution —
// overlap detection between graph patterns and construction of composite
// graph patterns with primary and secondary (optional) properties.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/sparql"
)

// PropRef identifies a star-pattern "property" in the paper's sense. A plain
// triple pattern (?s p ?o) is identified by its property IRI. A triple
// pattern with a constant object, such as (?s rdf:type PT18) or
// (?p pub_type "News"), is identified by the property plus the object — the
// paper abbreviates (rdf:type PT18) as the single property "ty18".
type PropRef struct {
	// Prop is the property IRI.
	Prop string
	// Obj is the constant object, when the pattern binds the object to a
	// constant. Zero (invalid) for variable objects.
	Obj rdf.Term
}

// HasConstObj reports whether the property reference pins the object.
func (p PropRef) HasConstObj() bool { return p.Obj.Valid() }

// Key returns a canonical string form usable as a map key.
func (p PropRef) Key() string {
	if !p.HasConstObj() {
		return p.Prop
	}
	return p.Prop + "=" + p.Obj.Key()
}

// String renders the reference compactly for diagnostics.
func (p PropRef) String() string { return p.Key() }

// Role is the position a variable occupies in a triple pattern.
type Role uint8

const (
	// RoleSubject marks a variable in subject position.
	RoleSubject Role = iota
	// RoleObject marks a variable in object position.
	RoleObject
)

func (r Role) String() string {
	if r == RoleSubject {
		return "subject"
	}
	return "object"
}

// StarPattern is a subject-rooted star: all triple patterns sharing one
// subject variable.
type StarPattern struct {
	// SubjectVar is the star's root variable name.
	SubjectVar string
	// Triples are the member triple patterns, in query order.
	Triples []sparql.TriplePattern
	// Optionals are OPTIONAL triple patterns attached to this star: their
	// variables bind when a matching triple exists and stay NULL otherwise
	// (left-outer semantics).
	Optionals []sparql.TriplePattern
}

// OptionalRefs returns the property references of the star's OPTIONAL
// patterns.
func (s *StarPattern) OptionalRefs() []PropRef {
	refs := make([]PropRef, 0, len(s.Optionals))
	for _, tp := range s.Optionals {
		refs = append(refs, propRefOf(tp))
	}
	return refs
}

// Props returns the star's bound property references in a deterministic
// order. Unbound-property triple patterns contribute no reference.
func (s *StarPattern) Props() []PropRef {
	refs := make([]PropRef, 0, len(s.Triples))
	for _, tp := range s.Triples {
		if tp.P.IsVar {
			continue
		}
		refs = append(refs, propRefOf(tp))
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Key() < refs[j].Key() })
	return refs
}

// HasUnbound reports whether the star contains an unbound-property triple
// pattern such as (?s ?p ?o).
func (s *StarPattern) HasUnbound() bool {
	for _, tp := range s.Triples {
		if tp.P.IsVar {
			return true
		}
	}
	return false
}

// PropSet returns the star's bound property keys as a set.
func (s *StarPattern) PropSet() map[string]bool {
	m := make(map[string]bool, len(s.Triples))
	for _, tp := range s.Triples {
		if tp.P.IsVar {
			continue
		}
		m[propRefOf(tp).Key()] = true
	}
	return m
}

// TypeObjects returns the set of constant objects of rdf:type triple
// patterns in the star (Definition 3.1's second condition ranges over
// these).
func (s *StarPattern) TypeObjects() map[string]bool {
	m := map[string]bool{}
	for _, tp := range s.Triples {
		if !tp.P.IsVar && tp.P.Term.Value == rdf.RDFType && !tp.O.IsVar {
			m[tp.O.Term.Key()] = true
		}
	}
	return m
}

// Vars returns all variable names used in the star, including property
// variables of unbound-property patterns.
func (s *StarPattern) Vars() map[string]bool {
	m := map[string]bool{s.SubjectVar: true}
	for _, tp := range s.Triples {
		if tp.P.IsVar {
			m[tp.P.Var] = true
		}
		if tp.O.IsVar {
			m[tp.O.Var] = true
		}
	}
	for _, tp := range s.Optionals {
		if tp.O.IsVar {
			m[tp.O.Var] = true
		}
	}
	return m
}

// ObjectVarProps returns, for a variable, the property references of the
// star's bound triple patterns in which it appears as object.
func (s *StarPattern) ObjectVarProps(v string) []PropRef {
	var refs []PropRef
	for _, tp := range s.Triples {
		if !tp.P.IsVar && tp.O.IsVar && tp.O.Var == v {
			refs = append(refs, propRefOf(tp))
		}
	}
	return refs
}

func propRefOf(tp sparql.TriplePattern) PropRef {
	ref := PropRef{Prop: tp.P.Term.Value}
	if !tp.O.IsVar {
		ref.Obj = tp.O.Term
	}
	return ref
}

// PropRefOf exposes the property reference of a triple pattern.
func PropRefOf(tp sparql.TriplePattern) PropRef { return propRefOf(tp) }

// String renders the star compactly: root{p1,p2,...}; an unbound-property
// pattern shows as its property variable.
func (s *StarPattern) String() string {
	keys := make([]string, 0, len(s.Triples))
	for _, r := range s.Props() {
		keys = append(keys, r.Key())
	}
	for _, tp := range s.Triples {
		if tp.P.IsVar {
			keys = append(keys, "?"+tp.P.Var)
		}
	}
	return "?" + s.SubjectVar + "{" + strings.Join(keys, ",") + "}"
}

// Join is an edge between two stars of a graph pattern: a shared variable
// together with the role and (for object roles) the carrying properties at
// each endpoint.
type Join struct {
	// Var is the join variable name.
	Var string
	// Left and Right index GraphPattern.Stars. Left < Right.
	Left, Right int
	// LeftRole and RightRole are the variable's roles in each star.
	LeftRole, RightRole Role
	// LeftProps / RightProps list the property references of the triple
	// patterns in which the variable occurs as object (empty for subject
	// roles).
	LeftProps, RightProps []PropRef
}

// flip returns the edge with its endpoints swapped.
func (j Join) flip() Join {
	return Join{
		Var:        j.Var,
		Left:       j.Right,
		Right:      j.Left,
		LeftRole:   j.RightRole,
		RightRole:  j.LeftRole,
		LeftProps:  j.RightProps,
		RightProps: j.LeftProps,
	}
}

// GraphPattern is a basic graph pattern decomposed into stars plus join
// edges and filters.
type GraphPattern struct {
	Stars   []*StarPattern
	Joins   []Join
	Filters []sparql.Filter
}

// BuildGraphPattern decomposes a group graph pattern's triple patterns into
// subject-rooted stars and derives the join edges between them. Subjects
// must be variables (the analytical workloads never use constant subjects).
func BuildGraphPattern(g *sparql.GroupGraphPattern) (*GraphPattern, error) {
	gp := &GraphPattern{Filters: g.Filters}
	index := map[string]int{} // subject var -> star index
	for _, tp := range g.Triples {
		if !tp.S.IsVar {
			return nil, fmt.Errorf("algebra: constant subject %v not supported", tp.S)
		}
		i, ok := index[tp.S.Var]
		if !ok {
			i = len(gp.Stars)
			index[tp.S.Var] = i
			gp.Stars = append(gp.Stars, &StarPattern{SubjectVar: tp.S.Var})
		}
		gp.Stars[i].Triples = append(gp.Stars[i].Triples, tp)
	}
	// Reject duplicate property references within one star: the triplegroup
	// model identifies triples by property, so two patterns with the same
	// property in one star would be ambiguous. (The paper's workloads never
	// do this.) Unbound-property patterns are limited to one per star, and
	// their variables may not be shared with other triple patterns — joins
	// through unbound properties need the machinery of [32] (§5.2) and stay
	// out of scope.
	for _, st := range gp.Stars {
		seen := map[string]bool{}
		unbound := 0
		for _, tp := range st.Triples {
			if tp.P.IsVar {
				unbound++
				continue
			}
			k := propRefOf(tp).Key()
			if seen[k] {
				return nil, fmt.Errorf("algebra: duplicate property %s in star ?%s", k, st.SubjectVar)
			}
			seen[k] = true
		}
		if unbound > 1 {
			return nil, fmt.Errorf("algebra: star ?%s has %d unbound-property patterns; at most one is supported", st.SubjectVar, unbound)
		}
	}
	if err := gp.attachOptionals(g.Optionals); err != nil {
		return nil, err
	}
	if err := gp.validateUnboundVars(); err != nil {
		return nil, err
	}
	if err := gp.deriveJoins(); err != nil {
		return nil, err
	}
	for _, j := range gp.Joins {
		for _, st := range gp.Stars {
			for _, tp := range st.Triples {
				if !tp.P.IsVar {
					continue
				}
				if tp.P.Var == j.Var || (tp.O.IsVar && tp.O.Var == j.Var) {
					return nil, fmt.Errorf("algebra: variable ?%s of an unbound-property pattern may not join stars (out of scope, §5.2/[32])", j.Var)
				}
			}
		}
	}
	return gp, nil
}

// attachOptionals assigns each OPTIONAL block's triple patterns to the star
// whose subject they extend, enforcing the analytical subset's
// restrictions: bound properties, subject bound by a required star, object
// variables fresh (not used anywhere else, including filters and other
// optionals), no property already required by the star.
func (gp *GraphPattern) attachOptionals(blocks [][]sparql.TriplePattern) error {
	if len(blocks) == 0 {
		return nil
	}
	used := map[string]int{}
	for _, st := range gp.Stars {
		for v := range st.Vars() {
			used[v]++
		}
	}
	for _, block := range blocks {
		for _, tp := range block {
			if tp.P.IsVar {
				return fmt.Errorf("algebra: unbound properties inside OPTIONAL are not supported")
			}
			if !tp.S.IsVar {
				return fmt.Errorf("algebra: constant subject %v in OPTIONAL", tp.S)
			}
			star := -1
			for i, st := range gp.Stars {
				if st.SubjectVar == tp.S.Var {
					star = i
					break
				}
			}
			if star < 0 {
				return fmt.Errorf("algebra: OPTIONAL subject ?%s is not bound by the required pattern", tp.S.Var)
			}
			st := gp.Stars[star]
			ref := propRefOf(tp)
			for _, req := range st.Triples {
				if !req.P.IsVar && propRefOf(req).Key() == ref.Key() {
					return fmt.Errorf("algebra: property %s is both required and OPTIONAL on ?%s", ref, st.SubjectVar)
				}
			}
			for _, opt := range st.Optionals {
				if propRefOf(opt).Key() == ref.Key() {
					return fmt.Errorf("algebra: duplicate OPTIONAL property %s on ?%s", ref, st.SubjectVar)
				}
			}
			if tp.O.IsVar {
				if used[tp.O.Var] > 0 {
					return fmt.Errorf("algebra: OPTIONAL variable ?%s is also used elsewhere in the pattern", tp.O.Var)
				}
				used[tp.O.Var]++
			}
			st.Optionals = append(st.Optionals, tp)
		}
	}
	// Filters may not reference OPTIONAL variables: SPARQL's
	// error-on-unbound filter semantics are out of the subset.
	optVars := map[string]bool{}
	for _, st := range gp.Stars {
		for _, tp := range st.Optionals {
			if tp.O.IsVar {
				optVars[tp.O.Var] = true
			}
		}
	}
	for _, f := range gp.Filters {
		if optVars[f.Var] {
			return fmt.Errorf("algebra: FILTER on OPTIONAL variable ?%s is not supported", f.Var)
		}
	}
	return nil
}

// validateUnboundVars rejects property variables that also occur in other
// positions or other triple patterns.
func (gp *GraphPattern) validateUnboundVars() error {
	occurrences := map[string]int{}
	for _, st := range gp.Stars {
		for _, tp := range st.Triples {
			if tp.O.IsVar {
				occurrences[tp.O.Var]++
			}
		}
		occurrences[st.SubjectVar] += len(st.Triples)
	}
	for _, st := range gp.Stars {
		for _, tp := range st.Triples {
			if !tp.P.IsVar {
				continue
			}
			if occurrences[tp.P.Var] > 0 {
				return fmt.Errorf("algebra: property variable ?%s is also used elsewhere in the pattern", tp.P.Var)
			}
		}
	}
	return nil
}

func (gp *GraphPattern) deriveJoins() error {
	for i := 0; i < len(gp.Stars); i++ {
		for j := i + 1; j < len(gp.Stars); j++ {
			a, b := gp.Stars[i], gp.Stars[j]
			av, bv := a.Vars(), b.Vars()
			for v := range av {
				if !bv[v] {
					continue
				}
				jn := Join{Var: v, Left: i, Right: j}
				if v == a.SubjectVar {
					jn.LeftRole = RoleSubject
				} else {
					jn.LeftRole = RoleObject
					jn.LeftProps = a.ObjectVarProps(v)
				}
				if v == b.SubjectVar {
					jn.RightRole = RoleSubject
				} else {
					jn.RightRole = RoleObject
					jn.RightProps = b.ObjectVarProps(v)
				}
				gp.Joins = append(gp.Joins, jn)
			}
		}
	}
	sort.Slice(gp.Joins, func(i, j int) bool {
		a, b := gp.Joins[i], gp.Joins[j]
		if a.Left != b.Left {
			return a.Left < b.Left
		}
		if a.Right != b.Right {
			return a.Right < b.Right
		}
		return a.Var < b.Var
	})
	return nil
}

// Connected reports whether the pattern's stars form a connected join graph
// (disconnected patterns would imply cross products; the workloads never
// produce them).
func (gp *GraphPattern) Connected() bool {
	if len(gp.Stars) <= 1 {
		return true
	}
	adj := make(map[int][]int)
	for _, j := range gp.Joins {
		adj[j.Left] = append(adj[j.Left], j.Right)
		adj[j.Right] = append(adj[j.Right], j.Left)
	}
	seen := map[int]bool{0: true}
	stack := []int{0}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return len(seen) == len(gp.Stars)
}

// Vars returns all variable names used in the pattern.
func (gp *GraphPattern) Vars() map[string]bool {
	m := map[string]bool{}
	for _, s := range gp.Stars {
		for v := range s.Vars() {
			m[v] = true
		}
	}
	return m
}

// String renders the pattern compactly.
func (gp *GraphPattern) String() string {
	parts := make([]string, len(gp.Stars))
	for i, s := range gp.Stars {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ⋈ ")
}
