package algebra

import (
	"fmt"
	"sort"
	"strings"

	"rapidanalytics/internal/sparql"
)

// CompositeProp is one property of a composite star pattern together with
// the set of original patterns that require it. A property owned by every
// pattern is primary; the others are secondary (optional).
type CompositeProp struct {
	// TP is the canonical triple pattern (subject and object variables in
	// composite-variable names).
	TP sparql.TriplePattern
	// Ref is the property reference.
	Ref PropRef
	// Owners marks the original subquery ids whose star requires this
	// property.
	Owners map[int]bool
}

// CompositeStar is a composite star pattern: the merge of the corresponding
// stars of all overlapping original patterns (P_prim ∪ P_sec in the paper's
// notation).
type CompositeStar struct {
	// SubjectVar is the canonical root variable.
	SubjectVar string
	// Props holds the merged properties, in insertion order (base pattern's
	// properties first).
	Props []CompositeProp

	numPatterns int
}

// PrimaryRefs returns P_prim: properties required by every original
// pattern.
func (cs *CompositeStar) PrimaryRefs() []PropRef {
	var refs []PropRef
	for _, p := range cs.Props {
		if len(p.Owners) == cs.numPatterns {
			refs = append(refs, p.Ref)
		}
	}
	return refs
}

// SecondaryRefs returns P_sec: properties not required by every pattern.
func (cs *CompositeStar) SecondaryRefs() []PropRef {
	var refs []PropRef
	for _, p := range cs.Props {
		if len(p.Owners) != cs.numPatterns {
			refs = append(refs, p.Ref)
		}
	}
	return refs
}

// RequiredSecondaryFor returns the secondary properties that original
// pattern k requires — the per-star α condition "p ≠ ∅" set of Definition
// 3.5 / Figure 5.
func (cs *CompositeStar) RequiredSecondaryFor(k int) []PropRef {
	var refs []PropRef
	for _, p := range cs.Props {
		if len(p.Owners) != cs.numPatterns && p.Owners[k] {
			refs = append(refs, p.Ref)
		}
	}
	return refs
}

// TriplesFor returns the canonical triple patterns of original pattern k's
// star (primary plus k's secondaries).
func (cs *CompositeStar) TriplesFor(k int) []sparql.TriplePattern {
	var tps []sparql.TriplePattern
	for _, p := range cs.Props {
		if p.Owners[k] {
			tps = append(tps, p.TP)
		}
	}
	return tps
}

// AllTriples returns every canonical triple pattern of the composite star.
func (cs *CompositeStar) AllTriples() []sparql.TriplePattern {
	tps := make([]sparql.TriplePattern, len(cs.Props))
	for i, p := range cs.Props {
		tps[i] = p.TP
	}
	return tps
}

// String renders the star in the paper's Stp_ab̲c notation: secondary
// properties are suffixed with '?'.
func (cs *CompositeStar) String() string {
	parts := make([]string, 0, len(cs.Props))
	for _, p := range cs.Props {
		s := p.Ref.Key()
		if len(p.Owners) != cs.numPatterns {
			s += "?"
		}
		parts = append(parts, s)
	}
	sort.Strings(parts)
	return "?" + cs.SubjectVar + "{" + strings.Join(parts, ",") + "}"
}

// CompositePattern is a composite graph pattern GP' covering all original
// overlapping patterns of an analytical query.
type CompositePattern struct {
	// Stars are the composite stars, indexed like the base pattern's stars.
	Stars []*CompositeStar
	// Joins are the canonical join edges (the base pattern's; all patterns
	// agree on them up to role-equivalence).
	Joins []Join
	// NumPatterns is the number of original patterns merged.
	NumPatterns int
	// VarMaps maps, per original pattern, original variable names to
	// canonical composite names.
	VarMaps []map[string]string
	// Filters are the shared filter constraints in canonical variables.
	Filters []sparql.Filter
}

// BuildComposite merges the subqueries' graph patterns into a composite
// pattern. It fails if any pattern does not overlap the first one
// (Definition 3.2), if variable correspondences conflict, or if the patterns
// carry differing FILTER constraints (out of the paper's scope).
func BuildComposite(subqueries []*Subquery) (*CompositePattern, error) {
	if len(subqueries) < 2 {
		return nil, fmt.Errorf("algebra: composite pattern needs at least two subqueries")
	}
	base := subqueries[0].Pattern
	n := len(subqueries)
	cp := &CompositePattern{
		Joins:       base.Joins,
		NumPatterns: n,
		VarMaps:     make([]map[string]string, n),
	}
	used := map[string]bool{} // composite variable names in use
	// Seed with the base pattern.
	cp.VarMaps[0] = map[string]string{}
	for _, st := range base.Stars {
		cs := &CompositeStar{SubjectVar: st.SubjectVar, numPatterns: n}
		cp.VarMaps[0][st.SubjectVar] = st.SubjectVar
		used[st.SubjectVar] = true
		for _, tp := range st.Triples {
			cs.Props = append(cs.Props, CompositeProp{
				TP:     tp,
				Ref:    propRefOf(tp),
				Owners: map[int]bool{0: true},
			})
			if tp.O.IsVar {
				cp.VarMaps[0][tp.O.Var] = tp.O.Var
				used[tp.O.Var] = true
			}
		}
		cp.Stars = append(cp.Stars, cs)
	}
	// Merge each subsequent pattern.
	for k := 1; k < n; k++ {
		gp := subqueries[k].Pattern
		mapping, ok := FindOverlap(base, gp)
		if !ok {
			return nil, fmt.Errorf("algebra: pattern %d does not overlap pattern 0", k)
		}
		vm := map[string]string{}
		bind := func(orig, composite string) error {
			if prev, ok := vm[orig]; ok && prev != composite {
				return fmt.Errorf("algebra: variable ?%s of pattern %d maps to both ?%s and ?%s", orig, k, prev, composite)
			}
			vm[orig] = composite
			return nil
		}
		for i, cs := range cp.Stars {
			st := gp.Stars[mapping[i]]
			if err := bind(st.SubjectVar, cs.SubjectVar); err != nil {
				return nil, err
			}
			for _, tp := range st.Triples {
				ref := propRefOf(tp)
				idx := -1
				for pi := range cs.Props {
					if cs.Props[pi].Ref.Key() == ref.Key() {
						idx = pi
						break
					}
				}
				if idx >= 0 {
					cs.Props[idx].Owners[k] = true
					if tp.O.IsVar {
						cobj := cs.Props[idx].TP.O
						if !cobj.IsVar {
							return nil, fmt.Errorf("algebra: pattern %d binds a variable where pattern 0 has constant %v", k, cobj.Term)
						}
						if err := bind(tp.O.Var, cobj.Var); err != nil {
							return nil, err
						}
					}
					continue
				}
				// New secondary property contributed by pattern k.
				ctp := sparql.TriplePattern{S: sparql.V(cs.SubjectVar), P: tp.P, O: tp.O}
				if tp.O.IsVar {
					name := tp.O.Var
					if used[name] {
						name = fmt.Sprintf("gp%d_%s", k, tp.O.Var)
					}
					used[name] = true
					ctp.O = sparql.V(name)
					if err := bind(tp.O.Var, name); err != nil {
						return nil, err
					}
				}
				cs.Props = append(cs.Props, CompositeProp{
					TP:     ctp,
					Ref:    ref,
					Owners: map[int]bool{k: true},
				})
			}
		}
		cp.VarMaps[k] = vm
	}
	// Filters: every pattern must carry the same constraints after variable
	// mapping (differing filters are out of the paper's scope, §3).
	canon := canonicalFilters(subqueries[0].Pattern.Filters, cp.VarMaps[0])
	for k := 1; k < len(subqueries); k++ {
		fk := canonicalFilters(subqueries[k].Pattern.Filters, cp.VarMaps[k])
		if !filtersEqual(canon, fk) {
			return nil, fmt.Errorf("algebra: patterns 0 and %d carry differing FILTER constraints", k)
		}
	}
	cp.Filters = canon
	// Grouping and aggregation variables must be reachable through the
	// variable maps.
	for k, sq := range subqueries {
		for _, v := range sq.GroupBy {
			if _, ok := cp.VarMaps[k][v]; !ok {
				return nil, fmt.Errorf("algebra: grouping variable ?%s of pattern %d has no composite counterpart", v, k)
			}
		}
		for _, a := range sq.Aggs {
			if _, ok := cp.VarMaps[k][a.Var]; !ok {
				return nil, fmt.Errorf("algebra: aggregation variable ?%s of pattern %d has no composite counterpart", a.Var, k)
			}
		}
	}
	return cp, nil
}

func canonicalFilters(fs []sparql.Filter, vm map[string]string) []sparql.Filter {
	out := make([]sparql.Filter, len(fs))
	for i, f := range fs {
		f.Var = vm[f.Var]
		out[i] = f
	}
	sort.Slice(out, func(i, j int) bool { return filterKey(out[i]) < filterKey(out[j]) })
	return out
}

func filterKey(f sparql.Filter) string {
	return fmt.Sprintf("%d|%s|%s|%s|%s|%s", f.Kind, f.Var, f.Op, f.Value, f.Pattern, f.Flags)
}

func filtersEqual(a, b []sparql.Filter) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if filterKey(a[i]) != filterKey(b[i]) {
			return false
		}
	}
	return true
}

// SecondariesFor returns, per composite star, the secondary property refs
// required by original pattern k — the n-split P_sec_k sets of Definition
// 3.4.
func (cp *CompositePattern) SecondariesFor(k int) [][]PropRef {
	out := make([][]PropRef, len(cp.Stars))
	for i, cs := range cp.Stars {
		out[i] = cs.RequiredSecondaryFor(k)
	}
	return out
}

// String renders the composite pattern.
func (cp *CompositePattern) String() string {
	parts := make([]string, len(cp.Stars))
	for i, cs := range cp.Stars {
		parts[i] = cs.String()
	}
	return strings.Join(parts, " ⋈ ")
}
