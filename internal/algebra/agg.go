package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"rapidanalytics/internal/sparql"
)

// AggState is the mergeable partial state of one aggregate function. All
// five functions of the analytical subset (COUNT, SUM, AVG, MIN, MAX) are
// algebraic: partial states computed by mappers or combiners merge
// associatively into the final value, which is what makes the paper's
// map-side hash pre-aggregation (Algorithm 3) and Hive's combiners correct.
type AggState struct {
	Func sparql.AggFunc
	// Count is the number of accumulated non-null values.
	Count int64
	// Sum accumulates numeric values for SUM and AVG.
	Sum float64
	// Extreme holds the current MIN/MAX value in lexical form.
	Extreme string
	// Distinct marks SPARQL's set-valued form (COUNT(DISTINCT ?x) etc.):
	// each value contributes once per group. The state then carries the
	// value set, which merges by union — still algebraic, though partial
	// states grow with group cardinality.
	Distinct bool
	// Seen is the distinct-value set (nil unless Distinct).
	Seen map[string]bool
}

// NewAggState returns an empty state for the function.
func NewAggState(fn sparql.AggFunc) *AggState { return &AggState{Func: fn} }

// NewDistinctAggState returns an empty DISTINCT state for the function.
func NewDistinctAggState(fn sparql.AggFunc) *AggState {
	return &AggState{Func: fn, Distinct: true, Seen: map[string]bool{}}
}

// Update folds one bound value into the state. NULL values are ignored,
// matching SPARQL aggregate semantics over unbound variables.
func (s *AggState) Update(value string) {
	if IsNull(value) || value == "" {
		return
	}
	if s.Distinct {
		if s.Seen[value] {
			return
		}
		s.Seen[value] = true
	}
	switch s.Func {
	case sparql.Count:
		s.Count++
	case sparql.Sum, sparql.Avg:
		if f, ok := ParseNumber(value); ok {
			s.Count++
			s.Sum += f
		}
	case sparql.Min, sparql.Max:
		lex := value
		if lex[0] == 'L' || lex[0] == 'I' || lex[0] == 'B' {
			lex = lex[1:]
		}
		if s.Count == 0 {
			s.Extreme = lex
			s.Count = 1
			return
		}
		s.Count++
		if valueLess(lex, s.Extreme) == (s.Func == sparql.Min) {
			s.Extreme = lex
		}
	}
}

// UpdateN folds the same value n times (used when a triplegroup binding has
// multiplicity n).
func (s *AggState) UpdateN(value string, n int64) {
	if n <= 0 || IsNull(value) || value == "" {
		return
	}
	if s.Distinct {
		// Multiplicity is irrelevant under DISTINCT.
		s.Update(value)
		return
	}
	switch s.Func {
	case sparql.Count:
		s.Count += n
	case sparql.Sum, sparql.Avg:
		if f, ok := ParseNumber(value); ok {
			s.Count += n
			s.Sum += f * float64(n)
		}
	default:
		// MIN/MAX are insensitive to multiplicity.
		s.Update(value)
	}
}

// valueLess orders two lexical values: numerically when both parse as
// numbers, lexicographically otherwise.
func valueLess(a, b string) bool {
	af, aerr := strconv.ParseFloat(a, 64)
	bf, berr := strconv.ParseFloat(b, 64)
	if aerr == nil && berr == nil {
		return af < bf
	}
	return a < b
}

// Merge folds another partial state for the same function into s.
func (s *AggState) Merge(o *AggState) {
	if s.Distinct {
		// Replay the other side's unseen values; Update maintains the
		// derived fields consistently.
		for v := range o.Seen {
			s.Update(v)
		}
		return
	}
	if o.Count == 0 {
		return
	}
	switch s.Func {
	case sparql.Count:
		s.Count += o.Count
	case sparql.Sum, sparql.Avg:
		s.Count += o.Count
		s.Sum += o.Sum
	case sparql.Min, sparql.Max:
		if s.Count == 0 {
			s.Extreme = o.Extreme
			s.Count = o.Count
			return
		}
		s.Count += o.Count
		if valueLess(o.Extreme, s.Extreme) == (s.Func == sparql.Min) {
			s.Extreme = o.Extreme
		}
	}
}

// Final renders the aggregate's final value in lexical form. Aggregates
// over empty groups follow SPARQL semantics: COUNT is 0, SUM is 0, and
// AVG/MIN/MAX are NULL.
func (s *AggState) Final() string {
	switch s.Func {
	case sparql.Count:
		return strconv.FormatInt(s.Count, 10)
	case sparql.Sum:
		return FormatNumber(s.Sum)
	case sparql.Avg:
		if s.Count == 0 {
			return Null
		}
		return FormatNumber(s.Sum / float64(s.Count))
	default:
		if s.Count == 0 {
			return Null
		}
		return s.Extreme
	}
}

// Encode serialises the partial state for shuffling between map and reduce
// phases. The format is positional and versionless; Decode is its inverse.
// DISTINCT states append their value set (values must not contain the unit
// separator 0x1F, the same restriction grouping keys carry).
func (s *AggState) Encode() string {
	base := fmt.Sprintf("%s\x1f%d\x1f%s\x1f%s",
		s.Func, s.Count, strconv.FormatFloat(s.Sum, 'g', -1, 64), s.Extreme)
	if !s.Distinct {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteString("\x1fD")
	for v := range s.Seen {
		b.WriteString("\x1f")
		b.WriteString(v)
	}
	return b.String()
}

// DecodeAggState parses a state produced by Encode.
func DecodeAggState(enc string) (*AggState, error) {
	parts := strings.Split(enc, "\x1f")
	if len(parts) < 4 {
		return nil, fmt.Errorf("algebra: malformed aggregate state %q", enc)
	}
	count, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("algebra: malformed aggregate count: %w", err)
	}
	sum, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return nil, fmt.Errorf("algebra: malformed aggregate sum: %w", err)
	}
	st := &AggState{Func: sparql.AggFunc(parts[0]), Count: count, Sum: sum, Extreme: parts[3]}
	if len(parts) > 4 {
		if parts[4] != "D" {
			return nil, fmt.Errorf("algebra: malformed aggregate state tail %q", parts[4])
		}
		st.Distinct = true
		st.Seen = make(map[string]bool, len(parts)-5)
		for _, v := range parts[5:] {
			st.Seen[v] = true
		}
	}
	return st, nil
}

// MultiAggState bundles the states for a subquery's aggregation list — the
// per-group payload of grouping operators across every engine.
type MultiAggState struct {
	States []*AggState
}

// NewMultiAggState returns empty states for the given aggregation specs.
func NewMultiAggState(specs []AggSpec) *MultiAggState {
	m := &MultiAggState{States: make([]*AggState, len(specs))}
	for i, sp := range specs {
		if sp.Distinct {
			m.States[i] = NewDistinctAggState(sp.Func)
		} else {
			m.States[i] = NewAggState(sp.Func)
		}
	}
	return m
}

// Merge folds another multi-state (same spec list) into m.
func (m *MultiAggState) Merge(o *MultiAggState) {
	for i := range m.States {
		m.States[i].Merge(o.States[i])
	}
}

// Finals renders every aggregate's final value.
func (m *MultiAggState) Finals() []string {
	out := make([]string, len(m.States))
	for i, s := range m.States {
		out[i] = s.Final()
	}
	return out
}

// Encode serialises all states.
func (m *MultiAggState) Encode() string {
	parts := make([]string, len(m.States))
	for i, s := range m.States {
		parts[i] = s.Encode()
	}
	return strings.Join(parts, "\x1e")
}

// DecodeMultiAggState parses a multi-state produced by Encode.
func DecodeMultiAggState(enc string) (*MultiAggState, error) {
	parts := strings.Split(enc, "\x1e")
	m := &MultiAggState{States: make([]*AggState, len(parts))}
	for i, p := range parts {
		s, err := DecodeAggState(p)
		if err != nil {
			return nil, err
		}
		m.States[i] = s
	}
	return m, nil
}
