package algebra

import (
	"testing"
)

func TestJoinOrderLinearChain(t *testing.T) {
	gp := mustGP(t, prefix+`SELECT ?a {
  ?a e:p ?b . ?b e:q ?c . ?c e:r ?d .
}`)
	order, err := JoinOrder(len(gp.Stars), gp.Joins)
	if err != nil {
		t.Fatalf("JoinOrder: %v", err)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	// Every edge's Left endpoint must already be covered.
	covered := map[int]bool{0: true}
	for _, e := range order {
		if !covered[e.Left] {
			t.Errorf("edge %+v starts at uncovered star", e)
		}
		if covered[e.Right] {
			t.Errorf("edge %+v re-covers star %d", e, e.Right)
		}
		covered[e.Right] = true
	}
	if len(covered) != 3 {
		t.Errorf("covered = %v", covered)
	}
}

func TestJoinOrderFlipsEdges(t *testing.T) {
	// Star 0 is the object side: ?b e:q ?a makes the natural edge
	// (b -> a); JoinOrder must orient it away from star 0.
	gp := mustGP(t, prefix+`SELECT ?a {
  ?a e:p ?x .
  ?b e:q ?a ; e:r ?y .
}`)
	order, err := JoinOrder(len(gp.Stars), gp.Joins)
	if err != nil {
		t.Fatalf("JoinOrder: %v", err)
	}
	if len(order) != 1 || order[0].Left != 0 {
		t.Fatalf("order = %+v", order)
	}
	// The roles must have flipped with the orientation.
	if order[0].LeftRole != RoleSubject || order[0].RightRole != RoleObject {
		t.Errorf("roles = %v/%v", order[0].LeftRole, order[0].RightRole)
	}
}

func TestJoinOrderRejectsCycles(t *testing.T) {
	gp := mustGP(t, prefix+`SELECT ?a {
  ?a e:p ?b ; e:s ?c .
  ?b e:q ?c .
  ?c e:r ?x .
}`)
	if _, err := JoinOrder(len(gp.Stars), gp.Joins); err == nil {
		t.Fatal("cyclic join graph accepted")
	}
}

func TestJoinOrderDisconnected(t *testing.T) {
	gp := mustGP(t, prefix+`SELECT ?a { ?a e:p ?x . ?b e:q ?y . }`)
	if _, err := JoinOrder(len(gp.Stars), gp.Joins); err == nil {
		t.Fatal("disconnected join graph accepted")
	}
}

func TestJoinOrderSingleStar(t *testing.T) {
	order, err := JoinOrder(1, nil)
	if err != nil || order != nil {
		t.Fatalf("single star: %v, %v", order, err)
	}
}

// fakeEst drives JoinOrderCost/ReorderRemaining in tests: fixed per-star
// cardinalities, joins estimated as the plain cross product (so greedy
// choices follow the star sizes alone).
type fakeEst struct {
	stars []float64
}

func (f fakeEst) StarCard(i int) float64                { return f.stars[i] }
func (f fakeEst) JoinCard(l, r float64, _ Join) float64 { return l * r }

func TestJoinOrderCostPicksSelectiveEdgeFirst(t *testing.T) {
	// Star 0 is the big hub; star 2 is tiny. The heuristic starts with
	// (0,1); the cost order must join the tiny star first.
	gp := mustGP(t, prefix+`SELECT ?c {
  ?off e:product ?p ; e:vendor ?v .
  ?p e:label ?l .
  ?v e:country ?c .
}`)
	order, err := JoinOrderCost(len(gp.Stars), gp.Joins, fakeEst{stars: []float64{1000, 100, 2}})
	if err != nil {
		t.Fatalf("JoinOrderCost: %v", err)
	}
	if len(order) != 2 {
		t.Fatalf("order = %+v", order)
	}
	first := map[int]bool{order[0].Left: true, order[0].Right: true}
	if !first[0] || !first[2] {
		t.Errorf("first edge joins stars %d-%d, want the 0-2 edge", order[0].Left, order[0].Right)
	}
	// The chain must stay valid: each later edge extends the covered set.
	covered := map[int]bool{order[0].Left: true, order[0].Right: true}
	for _, e := range order[1:] {
		if !covered[e.Left] || covered[e.Right] {
			t.Errorf("edge %+v breaks chain coverage", e)
		}
		covered[e.Right] = true
	}
}

func TestJoinOrderCostNilEstimatorFallsBack(t *testing.T) {
	gp := mustGP(t, prefix+`SELECT ?a {
  ?a e:p ?b . ?b e:q ?c . ?c e:r ?d .
}`)
	heur, err := JoinOrder(len(gp.Stars), gp.Joins)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := JoinOrderCost(len(gp.Stars), gp.Joins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(heur) != len(cost) {
		t.Fatalf("fallback order differs in length: %d vs %d", len(cost), len(heur))
	}
	for i := range heur {
		if heur[i].Left != cost[i].Left || heur[i].Right != cost[i].Right {
			t.Errorf("edge %d: fallback %d-%d vs heuristic %d-%d",
				i, cost[i].Left, cost[i].Right, heur[i].Left, heur[i].Right)
		}
	}
}

func TestReorderRemainingPrefersSmallTail(t *testing.T) {
	// Branching pattern: star 1 connects to both 2 (huge) and 3 (tiny).
	gp := mustGP(t, prefix+`SELECT ?d {
  ?a e:p ?b .
  ?b e:q ?c ; e:r ?d .
  ?c e:s ?x .
  ?d e:t ?y .
}`)
	order, err := JoinOrder(len(gp.Stars), gp.Joins)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0].Right != 1 {
		t.Fatalf("heuristic order = %+v", order)
	}
	covered := []bool{true, true, false, false}
	remaining := append([]Join(nil), order[1:]...)
	est := fakeEst{stars: []float64{10, 10, 1000, 2}}
	got := ReorderRemaining(covered, remaining, 50, est)
	if len(got) != 2 || got[0].Right != 3 || got[1].Right != 2 {
		t.Errorf("reordered tail = %+v, want the tiny star 3 joined first", got)
	}
	// A nil estimator must leave the tail untouched.
	same := ReorderRemaining(covered, remaining, 50, nil)
	for i := range same {
		if same[i].Right != remaining[i].Right {
			t.Errorf("nil estimator changed the tail: %+v", same)
		}
	}
}
