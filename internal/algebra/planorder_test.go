package algebra

import (
	"testing"
)

func TestJoinOrderLinearChain(t *testing.T) {
	gp := mustGP(t, prefix+`SELECT ?a {
  ?a e:p ?b . ?b e:q ?c . ?c e:r ?d .
}`)
	order, err := JoinOrder(len(gp.Stars), gp.Joins)
	if err != nil {
		t.Fatalf("JoinOrder: %v", err)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	// Every edge's Left endpoint must already be covered.
	covered := map[int]bool{0: true}
	for _, e := range order {
		if !covered[e.Left] {
			t.Errorf("edge %+v starts at uncovered star", e)
		}
		if covered[e.Right] {
			t.Errorf("edge %+v re-covers star %d", e, e.Right)
		}
		covered[e.Right] = true
	}
	if len(covered) != 3 {
		t.Errorf("covered = %v", covered)
	}
}

func TestJoinOrderFlipsEdges(t *testing.T) {
	// Star 0 is the object side: ?b e:q ?a makes the natural edge
	// (b -> a); JoinOrder must orient it away from star 0.
	gp := mustGP(t, prefix+`SELECT ?a {
  ?a e:p ?x .
  ?b e:q ?a ; e:r ?y .
}`)
	order, err := JoinOrder(len(gp.Stars), gp.Joins)
	if err != nil {
		t.Fatalf("JoinOrder: %v", err)
	}
	if len(order) != 1 || order[0].Left != 0 {
		t.Fatalf("order = %+v", order)
	}
	// The roles must have flipped with the orientation.
	if order[0].LeftRole != RoleSubject || order[0].RightRole != RoleObject {
		t.Errorf("roles = %v/%v", order[0].LeftRole, order[0].RightRole)
	}
}

func TestJoinOrderRejectsCycles(t *testing.T) {
	gp := mustGP(t, prefix+`SELECT ?a {
  ?a e:p ?b ; e:s ?c .
  ?b e:q ?c .
  ?c e:r ?x .
}`)
	if _, err := JoinOrder(len(gp.Stars), gp.Joins); err == nil {
		t.Fatal("cyclic join graph accepted")
	}
}

func TestJoinOrderDisconnected(t *testing.T) {
	gp := mustGP(t, prefix+`SELECT ?a { ?a e:p ?x . ?b e:q ?y . }`)
	if _, err := JoinOrder(len(gp.Stars), gp.Joins); err == nil {
		t.Fatal("disconnected join graph accepted")
	}
}

func TestJoinOrderSingleStar(t *testing.T) {
	order, err := JoinOrder(1, nil)
	if err != nil || order != nil {
		t.Fatalf("single star: %v, %v", order, err)
	}
}
