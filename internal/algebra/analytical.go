package algebra

import (
	"fmt"

	"rapidanalytics/internal/sparql"
)

// AggSpec is one aggregation requirement of a subquery: a function applied
// to a variable, bound to an output alias.
type AggSpec struct {
	Func sparql.AggFunc
	// Var is the aggregated variable.
	Var string
	// As is the output column name.
	As string
	// Distinct marks the set-valued form (COUNT(DISTINCT ?x), ...).
	Distinct bool
}

func (a AggSpec) String() string { return fmt.Sprintf("%s(?%s) AS ?%s", a.Func, a.Var, a.As) }

// Subquery is one grouping-aggregation constraint of an analytical query: a
// graph pattern, the grouping variables (empty = a single group over all
// solutions, "GROUP BY ALL"), and the aggregations computed per group.
type Subquery struct {
	// ID is the subquery's position in the analytical query, used to tag
	// pattern-specific artifacts (α conditions, split triplegroups,
	// aggregation ids) throughout the planners.
	ID int
	// Pattern is the graph pattern the grouping ranges over.
	Pattern *GraphPattern
	// GroupBy lists grouping variable names; empty means GROUP BY ALL.
	GroupBy []string
	// Aggs are the aggregations computed per group.
	Aggs []AggSpec
	// Having are per-group constraints over the aggregates, resolved to
	// indexes into Aggs.
	Having []HavingPred
}

// HavingPred is a resolved HAVING constraint: Aggs[AggIndex] Op Value.
type HavingPred struct {
	AggIndex int
	Op       string
	Value    float64
}

// HavingPassed reports whether a group's final aggregate values satisfy
// every HAVING constraint. Non-numeric finals (NULL MIN/MAX over empty
// groups) fail numeric comparisons, as in SPARQL.
func (s *Subquery) HavingPassed(finals []string) bool {
	for _, h := range s.Having {
		if h.AggIndex < 0 || h.AggIndex >= len(finals) {
			return false
		}
		f, ok := ParseNumber(finals[h.AggIndex])
		if !ok || !compareFloats(h.Op, f, h.Value) {
			return false
		}
	}
	return true
}

// OutputColumns returns the subquery's result columns: grouping variables
// followed by aggregation aliases.
func (s *Subquery) OutputColumns() []string {
	cols := append([]string{}, s.GroupBy...)
	for _, a := range s.Aggs {
		cols = append(cols, a.As)
	}
	return cols
}

// GroupByAll reports whether the subquery aggregates all solutions into one
// group.
func (s *Subquery) GroupByAll() bool { return len(s.GroupBy) == 0 }

// AnalyticalQuery is the paper's query class: one or more grouped
// subqueries whose results the outer query joins on shared grouping
// variables and projects (possibly through arithmetic expressions).
type AnalyticalQuery struct {
	// Subqueries in source order.
	Subqueries []*Subquery
	// Projection is the outer SELECT's projection over the subqueries'
	// output columns.
	Projection []sparql.ProjItem
	// OrderBy lists the outer ORDER BY keys (over projection columns).
	OrderBy []sparql.OrderKey
	// Limit caps the result rows; 0 means unlimited.
	Limit int
}

// Sorted reports whether the query needs a final total-order (ORDER BY or
// LIMIT) pass.
func (aq *AnalyticalQuery) Sorted() bool { return len(aq.OrderBy) > 0 || aq.Limit > 0 }

// Build converts a parsed SPARQL query into the analytical form. Two shapes
// are accepted:
//
//   - A top-level SELECT whose pattern consists solely of sub-SELECTs: each
//     sub-SELECT becomes one Subquery (the multi-grouping queries MG1–MG18).
//   - A top-level SELECT with triple patterns and aggregates: the whole
//     query is a single Subquery and the outer projection is the identity
//     (the single-grouping queries G1–G9).
func Build(q *sparql.Query) (*AnalyticalQuery, error) {
	sel := q.Select
	if len(sel.Pattern.SubSelects) > 0 {
		if len(sel.Pattern.Triples) > 0 {
			return nil, fmt.Errorf("algebra: mixing triple patterns and sub-SELECTs in the outer query is not supported")
		}
		aq := &AnalyticalQuery{Projection: sel.Projection, OrderBy: sel.OrderBy, Limit: sel.Limit}
		for i, sub := range sel.Pattern.SubSelects {
			if len(sub.OrderBy) > 0 || sub.Limit > 0 {
				return nil, fmt.Errorf("algebra: subquery %d: ORDER BY/LIMIT are only supported on the outer query", i+1)
			}
			sq, err := buildSubquery(i, sub)
			if err != nil {
				return nil, fmt.Errorf("algebra: subquery %d: %w", i+1, err)
			}
			aq.Subqueries = append(aq.Subqueries, sq)
		}
		if err := aq.validate(); err != nil {
			return nil, err
		}
		return aq, nil
	}
	// Single-grouping shape.
	sq, err := buildSubquery(0, sel)
	if err != nil {
		return nil, fmt.Errorf("algebra: %w", err)
	}
	aq := &AnalyticalQuery{Subqueries: []*Subquery{sq}, OrderBy: sel.OrderBy, Limit: sel.Limit}
	for _, col := range sq.OutputColumns() {
		aq.Projection = append(aq.Projection, sparql.ProjItem{Var: col})
	}
	if err := aq.validate(); err != nil {
		return nil, err
	}
	return aq, nil
}

func buildSubquery(id int, sel *sparql.SelectQuery) (*Subquery, error) {
	if len(sel.Pattern.SubSelects) > 0 {
		return nil, fmt.Errorf("nested sub-SELECT below depth 1 is not supported")
	}
	gp, err := BuildGraphPattern(sel.Pattern)
	if err != nil {
		return nil, err
	}
	if !gp.Connected() {
		return nil, fmt.Errorf("graph pattern is disconnected: %s", gp)
	}
	sq := &Subquery{ID: id, Pattern: gp, GroupBy: sel.GroupBy}
	vars := gp.Vars()
	projected := map[string]bool{}
	for _, pi := range sel.Projection {
		switch {
		case pi.Agg != nil:
			if !vars[pi.Agg.Var] {
				return nil, fmt.Errorf("aggregated variable ?%s not bound by the pattern", pi.Agg.Var)
			}
			sq.Aggs = append(sq.Aggs, AggSpec{Func: pi.Agg.Func, Var: pi.Agg.Var, As: pi.Var, Distinct: pi.Agg.Distinct})
		case pi.Expr != nil:
			return nil, fmt.Errorf("expression projections are only supported in the outer query")
		default:
			projected[pi.Var] = true
		}
	}
	if len(sq.Aggs) == 0 {
		return nil, fmt.Errorf("subquery has no aggregation")
	}
	// Plain projected variables must be grouping variables, and vice versa.
	for _, g := range sel.GroupBy {
		if !vars[g] {
			return nil, fmt.Errorf("grouping variable ?%s not bound by the pattern", g)
		}
	}
	for v := range projected {
		if !contains(sel.GroupBy, v) {
			return nil, fmt.Errorf("projected variable ?%s is not a grouping variable", v)
		}
	}
	// Resolve HAVING constraints against the SELECT's aggregates.
	for _, h := range sel.Having {
		idx := -1
		for i, a := range sq.Aggs {
			if a.Func == h.Agg.Func && a.Var == h.Agg.Var && a.Distinct == h.Agg.Distinct {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("HAVING aggregate %s(?%s) must also appear in the SELECT projection", h.Agg.Func, h.Agg.Var)
		}
		sq.Having = append(sq.Having, HavingPred{AggIndex: idx, Op: h.Op, Value: h.Value})
	}
	return sq, nil
}

func (aq *AnalyticalQuery) validate() error {
	// Every outer projection variable must be produced by some subquery.
	produced := map[string]bool{}
	for _, sq := range aq.Subqueries {
		for _, c := range sq.OutputColumns() {
			produced[c] = true
		}
	}
	for _, pi := range aq.Projection {
		if pi.Agg != nil {
			return fmt.Errorf("algebra: aggregates are not allowed in the outer projection")
		}
		if pi.Expr != nil {
			for _, v := range pi.Expr.Vars(nil) {
				if !produced[v] {
					return fmt.Errorf("algebra: outer expression references unknown column ?%s", v)
				}
			}
			continue
		}
		if !produced[pi.Var] {
			return fmt.Errorf("algebra: outer projection references unknown column ?%s", pi.Var)
		}
	}
	out := map[string]bool{}
	for _, c := range aq.OutputColumns() {
		out[c] = true
	}
	for _, k := range aq.OrderBy {
		if !out[k.Var] {
			return fmt.Errorf("algebra: ORDER BY references non-projected column ?%s", k.Var)
		}
	}
	return nil
}

// JoinColumns returns the columns on which subquery i joins with the
// preceding subqueries' combined output: the intersection of its output
// columns with theirs. An empty result means a cross join (e.g. joining a
// GROUP BY ALL subquery's single row).
func (aq *AnalyticalQuery) JoinColumns(i int) []string {
	prior := map[string]bool{}
	for j := 0; j < i; j++ {
		for _, c := range aq.Subqueries[j].OutputColumns() {
			prior[c] = true
		}
	}
	var cols []string
	for _, c := range aq.Subqueries[i].OutputColumns() {
		if prior[c] {
			cols = append(cols, c)
		}
	}
	return cols
}

// OutputColumns returns the analytical query's final column names in
// projection order.
func (aq *AnalyticalQuery) OutputColumns() []string {
	cols := make([]string, len(aq.Projection))
	for i, pi := range aq.Projection {
		cols[i] = pi.Var
	}
	return cols
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
