package algebra

import (
	"testing"

	"rapidanalytics/internal/sparql"
)

func mustGP(t *testing.T, query string) *GraphPattern {
	t.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	gp, err := BuildGraphPattern(q.Select.Pattern)
	if err != nil {
		t.Fatalf("BuildGraphPattern: %v", err)
	}
	return gp
}

const prefix = "PREFIX e: <http://e/>\n"

func TestBuildGraphPatternStars(t *testing.T) {
	gp := mustGP(t, prefix+`SELECT ?s1 {
  ?s1 a e:PT18 ; e:pf ?o3 .
  ?s2 e:pr ?s1 ; e:pc ?o4 ; e:ve ?o5 .
}`)
	if len(gp.Stars) != 2 {
		t.Fatalf("stars = %d, want 2", len(gp.Stars))
	}
	if gp.Stars[0].SubjectVar != "s1" || gp.Stars[1].SubjectVar != "s2" {
		t.Errorf("star roots = %s, %s", gp.Stars[0].SubjectVar, gp.Stars[1].SubjectVar)
	}
	// Property references: the type triple folds its object in.
	props := gp.Stars[0].PropSet()
	if len(props) != 2 {
		t.Errorf("star0 props = %v", props)
	}
	found := false
	for k := range props {
		if k == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type=Ihttp://e/PT18" {
			found = true
		}
	}
	if !found {
		t.Errorf("type property reference missing from %v", props)
	}
	// One join edge: ?s1 subject of star0, object of e:pr in star1.
	if len(gp.Joins) != 1 {
		t.Fatalf("joins = %v", gp.Joins)
	}
	j := gp.Joins[0]
	if j.Var != "s1" || j.LeftRole != RoleSubject || j.RightRole != RoleObject {
		t.Errorf("join = %+v", j)
	}
	if len(j.RightProps) != 1 || j.RightProps[0].Prop != "http://e/pr" {
		t.Errorf("join right props = %v", j.RightProps)
	}
	if !gp.Connected() {
		t.Error("pattern should be connected")
	}
}

func TestBuildGraphPatternRejects(t *testing.T) {
	cases := map[string]string{
		"constant subject":      prefix + `SELECT ?o { e:s1 e:p ?o . }`,
		"duplicate prop":        prefix + `SELECT ?a { ?s e:p ?a ; e:p ?b . }`,
		"two unbound in a star": prefix + `SELECT ?o { ?s ?p ?o ; ?q ?o2 . }`,
		"prop var reused":       prefix + `SELECT ?o { ?s ?p ?o ; e:q ?p . }`,
		"unbound prop join":     prefix + `SELECT ?o { ?s ?p ?o . ?o e:q ?x . }`,
	}
	for name, qs := range cases {
		q, err := sparql.Parse(qs)
		if err != nil {
			t.Fatalf("%s: Parse: %v", name, err)
		}
		if _, err := BuildGraphPattern(q.Select.Pattern); err == nil {
			t.Errorf("%s: BuildGraphPattern succeeded, want error", name)
		}
	}
}

// Unbound-property patterns are accepted within the paper's restrictions:
// at most one per star, variables not shared with other patterns.
func TestUnboundPropertyAccepted(t *testing.T) {
	gp := mustGP(t, prefix+`SELECT ?p { ?s a e:PT1 ; ?p ?o . }`)
	if len(gp.Stars) != 1 || !gp.Stars[0].HasUnbound() {
		t.Fatalf("stars = %v", gp.Stars)
	}
	// Bound property refs exclude the unbound pattern.
	if got := len(gp.Stars[0].Props()); got != 1 {
		t.Errorf("bound props = %d, want 1", got)
	}
	// Unbound stars never overlap (composite rewriting is out of scope).
	gp2 := mustGP(t, prefix+`SELECT ?p { ?s2 a e:PT1 ; ?p2 ?o2 . }`)
	if _, ok := FindOverlap(gp, gp2); ok {
		t.Error("unbound-property patterns reported as overlapping")
	}
}

func TestConnected(t *testing.T) {
	gp := mustGP(t, prefix+`SELECT ?a { ?a e:p ?x . ?b e:q ?y . }`)
	if gp.Connected() {
		t.Error("disconnected pattern reported connected")
	}
}

// The paper's Figure 3, query AQ2: GP1 and GP2 overlap — both stars overlap
// and the join structures match (subject-object join via pr).
func TestOverlapAQ2(t *testing.T) {
	gp1 := mustGP(t, prefix+`SELECT ?s1 {
  ?s1 a e:PT18 .
  ?s2 e:pr ?s1 ; e:pc ?o1 ; e:ve ?o2 .
}`)
	gp2 := mustGP(t, prefix+`SELECT ?s1 {
  ?s1 a e:PT18 ; e:pf ?o3 .
  ?s2 e:pr ?s1 ; e:pc ?o4 .
}`)
	m, ok := FindOverlap(gp1, gp2)
	if !ok {
		t.Fatal("AQ2 graph patterns should overlap")
	}
	if m[0] != 0 || m[1] != 1 {
		t.Errorf("mapping = %v, want identity", m)
	}
}

// The paper's Figure 3, query AQ3: the stars overlap, but GP1 joins them
// object-subject (?s3 ve ?s4 . ?s4 cn ?o6) while GP2 joins object-object
// (?s3 ve ?o6 . ?s4 cn ?o6) — so the graph patterns do NOT overlap.
func TestNoOverlapAQ3(t *testing.T) {
	gp1 := mustGP(t, prefix+`SELECT ?s3 {
  ?s3 e:pr ?s1 ; e:pc ?o5 ; e:ve ?s4 .
  ?s4 e:cn ?o6 .
}`)
	gp2 := mustGP(t, prefix+`SELECT ?s3 {
  ?s3 e:pr ?s1 ; e:pc ?c5 ; e:ve ?c6 .
  ?s4 e:cn ?c6 .
}`)
	if _, ok := FindOverlap(gp1, gp2); ok {
		t.Fatal("AQ3 graph patterns should NOT overlap")
	}
}

func TestStarsOverlapTypeObjects(t *testing.T) {
	mk := func(q string) *StarPattern { return mustGP(t, q).Stars[0] }
	pt18a := mk(prefix + `SELECT ?s { ?s a e:PT18 ; e:p ?x . }`)
	pt18b := mk(prefix + `SELECT ?s { ?s a e:PT18 ; e:q ?y . }`)
	pt9 := mk(prefix + `SELECT ?s { ?s a e:PT9 ; e:p ?x . }`)
	notype := mk(prefix + `SELECT ?s { ?s e:p ?x ; e:r ?z . }`)
	if StarsOverlap(pt18a, pt9) {
		t.Error("stars with different type objects should not overlap")
	}
	if StarsOverlap(pt18a, notype) {
		t.Error("typed and untyped stars should not overlap (asymmetric type constraint)")
	}
	if !StarsOverlap(pt18a, pt18b) {
		// property sets: {ty18, p} vs {ty18, q} intersect on ty18
		t.Error("stars sharing the type property should overlap")
	}
	if StarsOverlap(notype, mk(prefix+`SELECT ?s { ?s e:zzz ?x . }`)) {
		t.Error("stars with disjoint property sets should not overlap")
	}
}

// Different numbers of triple patterns per star, same join structure: the
// MG1 case (3:2 vs 2:2).
func TestOverlapMG1Shape(t *testing.T) {
	gp1 := mustGP(t, prefix+`SELECT ?f {
  ?p2 a e:PT1 ; e:label ?l2 ; e:productFeature ?f .
  ?off2 e:product ?p2 ; e:price ?pr2 .
}`)
	gp2 := mustGP(t, prefix+`SELECT ?x {
  ?p1 a e:PT1 ; e:label ?l1 .
  ?off1 e:product ?p1 ; e:price ?pr .
}`)
	if _, ok := FindOverlap(gp1, gp2); !ok {
		t.Fatal("MG1-shaped graph patterns should overlap")
	}
}

func TestOverlapRejectsDifferentStarCounts(t *testing.T) {
	gp1 := mustGP(t, prefix+`SELECT ?a {
  ?a e:p ?b . ?b e:q ?c . ?c e:r ?d .
}`)
	gp2 := mustGP(t, prefix+`SELECT ?a {
  ?a e:p ?b . ?b e:q ?c .
}`)
	if _, ok := FindOverlap(gp1, gp2); ok {
		t.Error("patterns with different star counts should not overlap")
	}
}
