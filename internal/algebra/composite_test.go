package algebra

import (
	"reflect"
	"testing"

	"rapidanalytics/internal/sparql"
)

func mustAQ(t *testing.T, query string) *AnalyticalQuery {
	t.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	aq, err := Build(q)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return aq
}

const mg1 = prefix + `SELECT ?f ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a e:PT1 ; e:label ?l2 ; e:productFeature ?f .
      ?off2 e:product ?p2 ; e:price ?pr2 .
    } GROUP BY ?f
  }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a e:PT1 ; e:label ?l1 .
      ?off1 e:product ?p1 ; e:price ?pr .
    }
  }
}`

func TestBuildAnalytical(t *testing.T) {
	aq := mustAQ(t, mg1)
	if len(aq.Subqueries) != 2 {
		t.Fatalf("subqueries = %d", len(aq.Subqueries))
	}
	sq1, sq2 := aq.Subqueries[0], aq.Subqueries[1]
	if got := sq1.OutputColumns(); !reflect.DeepEqual(got, []string{"f", "cntF", "sumF"}) {
		t.Errorf("sq1 columns = %v", got)
	}
	if !sq2.GroupByAll() {
		t.Error("sq2 should group by ALL")
	}
	if cols := aq.JoinColumns(1); len(cols) != 0 {
		t.Errorf("MG1 join columns = %v, want none (cross join with ALL row)", cols)
	}
	if got := aq.OutputColumns(); !reflect.DeepEqual(got, []string{"f", "sumF", "cntF", "sumT", "cntT"}) {
		t.Errorf("output columns = %v", got)
	}
}

func TestBuildSingleGrouping(t *testing.T) {
	aq := mustAQ(t, prefix+`SELECT ?cid (COUNT(?cid) AS ?n) {
  ?b e:CID ?cid ; e:outcome ?a .
} GROUP BY ?cid`)
	if len(aq.Subqueries) != 1 {
		t.Fatalf("subqueries = %d", len(aq.Subqueries))
	}
	if got := aq.OutputColumns(); !reflect.DeepEqual(got, []string{"cid", "n"}) {
		t.Errorf("columns = %v", got)
	}
}

func TestCompositeMG1(t *testing.T) {
	aq := mustAQ(t, mg1)
	cp, err := BuildComposite(aq.Subqueries)
	if err != nil {
		t.Fatalf("BuildComposite: %v", err)
	}
	if len(cp.Stars) != 2 {
		t.Fatalf("composite stars = %d", len(cp.Stars))
	}
	// Star 1: primary {type=PT1, label}, secondary {productFeature} owned by
	// pattern 0 only.
	s1 := cp.Stars[0]
	if got := len(s1.PrimaryRefs()); got != 2 {
		t.Errorf("star1 primary = %v", s1.PrimaryRefs())
	}
	sec := s1.SecondaryRefs()
	if len(sec) != 1 || sec[0].Prop != "http://e/productFeature" {
		t.Errorf("star1 secondary = %v", sec)
	}
	if req := s1.RequiredSecondaryFor(0); len(req) != 1 {
		t.Errorf("pattern 0 required secondaries = %v", req)
	}
	if req := s1.RequiredSecondaryFor(1); len(req) != 0 {
		t.Errorf("pattern 1 required secondaries = %v", req)
	}
	// Star 2: all primary {product, price}.
	s2 := cp.Stars[1]
	if len(s2.PrimaryRefs()) != 2 || len(s2.SecondaryRefs()) != 0 {
		t.Errorf("star2 prim=%v sec=%v", s2.PrimaryRefs(), s2.SecondaryRefs())
	}
	// Variable maps: pattern 1's ?pr maps to the canonical ?pr2.
	if got := cp.VarMaps[1]["pr"]; got != "pr2" {
		t.Errorf("varmap[1][pr] = %q, want pr2", got)
	}
	if got := cp.VarMaps[1]["p1"]; got != "p2" {
		t.Errorf("varmap[1][p1] = %q, want p2", got)
	}
	if got := cp.VarMaps[0]["f"]; got != "f" {
		t.Errorf("varmap[0][f] = %q", got)
	}
}

// MG3 shape: three stars, secondary productFeature in star 1; the country
// star is fully primary.
func TestCompositeMG3(t *testing.T) {
	aq := mustAQ(t, prefix+`SELECT ?f ?c ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f ?c (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a e:PT1 ; e:label ?l2 ; e:productFeature ?f .
      ?off2 e:product ?p2 ; e:price ?pr2 ; e:vendor ?v2 .
      ?v2 e:country ?c .
    } GROUP BY ?f ?c
  }
  { SELECT ?c (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a e:PT1 ; e:label ?l1 .
      ?off1 e:product ?p1 ; e:price ?pr ; e:vendor ?v1 .
      ?v1 e:country ?c .
    } GROUP BY ?c
  }
}`)
	cp, err := BuildComposite(aq.Subqueries)
	if err != nil {
		t.Fatalf("BuildComposite: %v", err)
	}
	if len(cp.Stars) != 3 {
		t.Fatalf("composite stars = %d", len(cp.Stars))
	}
	var secProps []string
	for _, cs := range cp.Stars {
		for _, r := range cs.SecondaryRefs() {
			secProps = append(secProps, r.Prop)
		}
	}
	if !reflect.DeepEqual(secProps, []string{"http://e/productFeature"}) {
		t.Errorf("secondary props = %v", secProps)
	}
	// Both patterns' ?c map to the same composite variable.
	if cp.VarMaps[0]["c"] != cp.VarMaps[1]["c"] {
		t.Errorf("country variable maps diverge: %q vs %q", cp.VarMaps[0]["c"], cp.VarMaps[1]["c"])
	}
	if cols := aq.JoinColumns(1); !reflect.DeepEqual(cols, []string{"c"}) {
		t.Errorf("join columns = %v, want [c]", cols)
	}
}

func TestCompositeRejectsNonOverlap(t *testing.T) {
	aq := mustAQ(t, prefix+`SELECT ?x ?n ?m {
  { SELECT ?x (COUNT(?y) AS ?n) { ?a e:p ?x ; e:q ?y . } GROUP BY ?x }
  { SELECT (COUNT(?z) AS ?m) { ?b e:r ?z . } }
}`)
	if _, err := BuildComposite(aq.Subqueries); err == nil {
		t.Fatal("BuildComposite should fail for non-overlapping patterns")
	}
}

func TestCompositeRejectsDifferingFilters(t *testing.T) {
	aq := mustAQ(t, prefix+`SELECT ?x ?n ?m {
  { SELECT ?x (COUNT(?y) AS ?n) { ?a e:p ?x ; e:q ?y . FILTER (?y > 10) } GROUP BY ?x }
  { SELECT (COUNT(?y2) AS ?m) { ?a2 e:p ?x2 ; e:q ?y2 . } }
}`)
	if _, err := BuildComposite(aq.Subqueries); err == nil {
		t.Fatal("BuildComposite should reject differing FILTER constraints")
	}
}

func TestCompositeSharedFiltersAccepted(t *testing.T) {
	aq := mustAQ(t, prefix+`SELECT ?x ?n ?m {
  { SELECT ?x (COUNT(?y) AS ?n) { ?a e:p ?x ; e:q ?y . FILTER (?y > 10) } GROUP BY ?x }
  { SELECT (COUNT(?y2) AS ?m) { ?a2 e:p ?x2 ; e:q ?y2 . FILTER (?y2 > 10) } }
}`)
	cp, err := BuildComposite(aq.Subqueries)
	if err != nil {
		t.Fatalf("BuildComposite: %v", err)
	}
	if len(cp.Filters) != 1 || cp.Filters[0].Var != "y" {
		t.Errorf("composite filters = %+v", cp.Filters)
	}
}

// Secondary properties contributed by the *second* pattern get fresh
// variable names when the first pattern already uses the name.
func TestCompositeVariableRenaming(t *testing.T) {
	aq := mustAQ(t, prefix+`SELECT ?x ?n ?m {
  { SELECT ?x (COUNT(?y) AS ?n) { ?a e:p ?x ; e:q ?y . } GROUP BY ?x }
  { SELECT ?x2 (COUNT(?y) AS ?m) { ?a2 e:p ?x2 ; e:q ?y ; e:extra ?x . } GROUP BY ?x2 }
}`)
	cp, err := BuildComposite(aq.Subqueries)
	if err != nil {
		t.Fatalf("BuildComposite: %v", err)
	}
	// Pattern 1's ?x (object of e:extra) collides with pattern 0's ?x and
	// must be renamed.
	got := cp.VarMaps[1]["x"]
	if got == "x" || got == "" {
		t.Errorf("colliding secondary variable mapped to %q", got)
	}
	if cp.VarMaps[1]["x2"] != "x" {
		t.Errorf("subject variable of pattern 1 = %q, want x", cp.VarMaps[1]["x2"])
	}
}

func TestSecondariesFor(t *testing.T) {
	aq := mustAQ(t, mg1)
	cp, err := BuildComposite(aq.Subqueries)
	if err != nil {
		t.Fatalf("BuildComposite: %v", err)
	}
	s0 := cp.SecondariesFor(0)
	if len(s0) != 2 || len(s0[0]) != 1 || len(s0[1]) != 0 {
		t.Errorf("SecondariesFor(0) = %v", s0)
	}
	s1 := cp.SecondariesFor(1)
	if len(s1[0]) != 0 || len(s1[1]) != 0 {
		t.Errorf("SecondariesFor(1) = %v", s1)
	}
}

func TestBuildRejections(t *testing.T) {
	cases := map[string]string{
		"no aggregation":          prefix + `SELECT ?s { ?s e:p ?o . }`,
		"non-grouping projection": prefix + `SELECT ?s ?o (COUNT(?o) AS ?n) { ?s e:p ?o . } GROUP BY ?s`,
		"unknown outer column": prefix + `SELECT ?zzz {
  { SELECT ?x (COUNT(?y) AS ?n) { ?a e:p ?x ; e:q ?y . } GROUP BY ?x } }`,
		"group var unbound": prefix + `SELECT ?q (COUNT(?o) AS ?n) { ?s e:p ?o . } GROUP BY ?q`,
	}
	for name, qs := range cases {
		q, err := sparql.Parse(qs)
		if err != nil {
			t.Fatalf("%s: Parse: %v", name, err)
		}
		if _, err := Build(q); err == nil {
			t.Errorf("%s: Build succeeded, want error", name)
		}
	}
}

func TestCompositeString(t *testing.T) {
	aq := mustAQ(t, mg1)
	cp, err := BuildComposite(aq.Subqueries)
	if err != nil {
		t.Fatalf("BuildComposite: %v", err)
	}
	s := cp.String()
	if s == "" {
		t.Fatal("empty composite string")
	}
	// Exactly one secondary marker across the two stars.
	count := 0
	for _, r := range s {
		if r == '?' {
			count++
		}
	}
	// two subject vars ("?p2", "?off2") plus one secondary marker
	if count != 3 {
		t.Errorf("composite string = %q (marker count %d)", s, count)
	}
}
