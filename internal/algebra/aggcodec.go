package algebra

import (
	"bytes"
	"fmt"
	"strconv"

	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/sparql"
)

// UpdateTerm folds one bound value into the state. When d is non-nil the
// value is a dictionary ID-string (the dictionary plane): COUNT needs no
// decode at all, SUM/AVG use the dictionary's cached numeric value instead
// of re-parsing the lexical form per row, and MIN/MAX/DISTINCT decode to
// the lexical form so partial states stay byte-identical to the lexical
// plane's. A nil d is the lexical plane and defers to Update.
func (s *AggState) UpdateTerm(d *rdf.Dict, value string) {
	if d == nil {
		s.Update(value)
		return
	}
	if IsNull(value) || value == "" {
		return
	}
	if s.Distinct || s.Func == sparql.Min || s.Func == sparql.Max {
		lex, ok := d.Lex(value)
		if !ok || lex == "" {
			return
		}
		s.Update(lex)
		return
	}
	switch s.Func {
	case sparql.Count:
		s.Count++
	case sparql.Sum, sparql.Avg:
		if f, ok := d.NumericIDString(value); ok {
			s.Count++
			s.Sum += f
		}
	}
}

// AppendEncode appends the state's Encode form to buf without the
// fmt.Sprintf intermediate.
//
//rapid:hot
func (s *AggState) AppendEncode(buf []byte) []byte {
	buf = append(buf, s.Func...)
	buf = append(buf, 0x1f)
	buf = strconv.AppendInt(buf, s.Count, 10)
	buf = append(buf, 0x1f)
	buf = strconv.AppendFloat(buf, s.Sum, 'g', -1, 64)
	buf = append(buf, 0x1f)
	buf = append(buf, s.Extreme...)
	if s.Distinct {
		buf = append(buf, 0x1f, 'D')
		for v := range s.Seen {
			buf = append(buf, 0x1f)
			buf = append(buf, v...)
		}
	}
	return buf
}

// AppendEncode appends the multi-state's Encode form to buf.
//
//rapid:hot
func (m *MultiAggState) AppendEncode(buf []byte) []byte {
	for i, s := range m.States {
		if i > 0 {
			buf = append(buf, 0x1e)
		}
		buf = s.AppendEncode(buf)
	}
	return buf
}

// aggFuncOf maps an encoded function name to its canonical constant without
// allocating (string(b) in a switch does not escape).
func aggFuncOf(b []byte) sparql.AggFunc {
	switch string(b) {
	case string(sparql.Count):
		return sparql.Count
	case string(sparql.Sum):
		return sparql.Sum
	case string(sparql.Avg):
		return sparql.Avg
	case string(sparql.Min):
		return sparql.Min
	case string(sparql.Max):
		return sparql.Max
	default:
		return sparql.AggFunc(b)
	}
}

// cutByte splits b at the first occurrence of sep.
func cutByte(b []byte, sep byte) (before, after []byte, found bool) {
	if i := bytes.IndexByte(b, sep); i >= 0 {
		return b[:i], b[i+1:], true
	}
	return b, nil, false
}

// DecodeAggStateBytes parses a state produced by Encode directly from the
// shuffled record bytes, avoiding the []byte→string conversion that
// DecodeAggState forces on every combiner/reducer value.
func DecodeAggStateBytes(enc []byte) (*AggState, error) {
	fn, rest, ok := cutByte(enc, 0x1f)
	if !ok {
		return nil, fmt.Errorf("algebra: malformed aggregate state %q", enc)
	}
	countB, rest, ok := cutByte(rest, 0x1f)
	if !ok {
		return nil, fmt.Errorf("algebra: malformed aggregate state %q", enc)
	}
	count, err := atoi64(countB)
	if err != nil {
		return nil, fmt.Errorf("algebra: malformed aggregate count: %w", err)
	}
	sumB, rest, ok := cutByte(rest, 0x1f)
	if !ok {
		return nil, fmt.Errorf("algebra: malformed aggregate state %q", enc)
	}
	var sum float64
	// COUNT/MIN/MAX states and empty SUM states serialise the sum as "0";
	// skip the float parse (and its string conversion) for that common case.
	if len(sumB) != 1 || sumB[0] != '0' {
		sum, err = strconv.ParseFloat(string(sumB), 64)
		if err != nil {
			return nil, fmt.Errorf("algebra: malformed aggregate sum: %w", err)
		}
	}
	extremeB, rest, hasTail := cutByte(rest, 0x1f)
	st := &AggState{Func: aggFuncOf(fn), Count: count, Sum: sum, Extreme: string(extremeB)}
	if hasTail {
		tag, rest, _ := cutByte(rest, 0x1f)
		if len(tag) != 1 || tag[0] != 'D' {
			return nil, fmt.Errorf("algebra: malformed aggregate state tail %q", tag)
		}
		st.Distinct = true
		st.Seen = map[string]bool{}
		for rest != nil {
			var v []byte
			v, rest, _ = cutByte(rest, 0x1f)
			st.Seen[string(v)] = true
		}
	}
	return st, nil
}

// DecodeMultiAggStateBytes parses a multi-state produced by Encode directly
// from record bytes (see DecodeAggStateBytes).
func DecodeMultiAggStateBytes(enc []byte) (*MultiAggState, error) {
	m := &MultiAggState{}
	for {
		part, rest, found := cutByte(enc, 0x1e)
		s, err := DecodeAggStateBytes(part)
		if err != nil {
			return nil, err
		}
		m.States = append(m.States, s)
		if !found {
			return m, nil
		}
		enc = rest
	}
}

// atoi64 parses a base-10 int64 from bytes without allocating.
func atoi64(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty integer")
	}
	neg := false
	if b[0] == '-' {
		neg = true
		b = b[1:]
		if len(b) == 0 {
			return 0, fmt.Errorf("bare minus sign")
		}
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid integer byte %q", c)
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}
