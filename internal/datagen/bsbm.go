// Package datagen synthesises the paper's three evaluation datasets at
// laptop scale: the Berlin SPARQL Benchmark (BSBM) e-commerce data, a
// Chem2Bio2RDF-like chemogenomics graph, and a PubMed/Bio2RDF-like
// bibliographic graph. All generators are deterministic for a given seed
// and preserve the *shape* the paper's queries depend on — entity ratios,
// multi-valued property fan-outs, and type/selectivity skew — while
// absolute sizes scale with one knob.
package datagen

import (
	"fmt"
	"math/rand"

	"rapidanalytics/internal/rdf"
)

// BSBM is the namespace of the generated e-commerce vocabulary.
const BSBM = "http://bsbm.org/v01/"

// BSBMConfig sizes the BSBM generator.
type BSBMConfig struct {
	// Products is the primary scale knob (BSBM-500K had 500_000).
	Products int
	// OffersPerProduct is the average offer fan-out (BSBM: ~20).
	OffersPerProduct int
	// Seed makes generation deterministic.
	Seed int64
}

// BSBMSmall mirrors BSBM-500K at laptop scale.
func BSBMSmall() BSBMConfig { return BSBMConfig{Products: 600, OffersPerProduct: 8, Seed: 1} }

// BSBMLarge mirrors BSBM-2M at laptop scale (4x the small dataset, as in
// the paper).
func BSBMLarge() BSBMConfig { return BSBMConfig{Products: 2400, OffersPerProduct: 8, Seed: 2} }

// productTypeWeights skews products across types: ProductType1 is broad
// (low selectivity — the paper's "lo" queries), ProductType9 narrow
// (high selectivity, "hi" queries).
var productTypeWeights = []struct {
	Type   string
	Weight int
}{
	{"ProductType1", 30},
	{"ProductType2", 12},
	{"ProductType3", 10},
	{"ProductType4", 9},
	{"ProductType5", 8},
	{"ProductType6", 8},
	{"ProductType7", 7},
	{"ProductType8", 6},
	{"ProductType9", 2},
	{"ProductType10", 8},
}

var bsbmCountries = []string{"US", "UK", "DE", "FR", "JP", "CN", "RU", "ES", "AT", "IN"}

// GenerateBSBM builds the e-commerce graph: typed products with labels and
// multi-valued features, offers with price/vendor/validity, and vendors
// with countries.
func GenerateBSBM(cfg BSBMConfig) *rdf.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &rdf.Graph{}
	p := func(name string) rdf.Term { return rdf.NewIRI(BSBM + name) }

	numFeatures := cfg.Products/12 + 20
	numVendors := cfg.Products/40 + 8
	numProducers := cfg.Products/30 + 5

	vendors := make([]rdf.Term, numVendors)
	for i := range vendors {
		vendors[i] = rdf.NewIRI(fmt.Sprintf("%sVendor%d", BSBM, i))
		g.Add(
			rdf.T(vendors[i], p("country"), rdf.NewLiteral(bsbmCountries[rng.Intn(len(bsbmCountries))])),
			rdf.T(vendors[i], p("label"), rdf.NewLiteral(fmt.Sprintf("vendor %d", i))),
		)
	}
	producers := make([]rdf.Term, numProducers)
	for i := range producers {
		producers[i] = rdf.NewIRI(fmt.Sprintf("%sProducer%d", BSBM, i))
		g.Add(rdf.T(producers[i], p("label"), rdf.NewLiteral(fmt.Sprintf("producer %d", i))))
	}

	totalWeight := 0
	for _, tw := range productTypeWeights {
		totalWeight += tw.Weight
	}
	pickType := func() string {
		r := rng.Intn(totalWeight)
		for _, tw := range productTypeWeights {
			if r < tw.Weight {
				return tw.Type
			}
			r -= tw.Weight
		}
		return productTypeWeights[0].Type
	}

	offerID := 0
	for i := 0; i < cfg.Products; i++ {
		prod := rdf.NewIRI(fmt.Sprintf("%sProduct%d", BSBM, i))
		g.Add(
			rdf.T(prod, rdf.TypeTerm, p(pickType())),
			rdf.T(prod, p("label"), rdf.NewLiteral(fmt.Sprintf("product %d", i))),
			rdf.T(prod, p("producer"), producers[rng.Intn(numProducers)]),
		)
		// Multi-valued features: 1..6 per product (a handful of products
		// have none, exercising the α condition).
		nf := rng.Intn(7)
		seen := map[int]bool{}
		for f := 0; f < nf; f++ {
			fid := rng.Intn(numFeatures)
			if seen[fid] {
				continue
			}
			seen[fid] = true
			g.Add(rdf.T(prod, p("productFeature"), rdf.NewIRI(fmt.Sprintf("%sFeature%d", BSBM, fid))))
		}
		// Offers.
		no := 1 + rng.Intn(cfg.OffersPerProduct*2-1)
		for o := 0; o < no; o++ {
			offer := rdf.NewIRI(fmt.Sprintf("%sOffer%d", BSBM, offerID))
			offerID++
			g.Add(
				rdf.T(offer, p("product"), prod),
				rdf.T(offer, p("price"), rdf.NewLiteral(fmt.Sprintf("%d", 10+rng.Intn(9990)))),
				rdf.T(offer, p("vendor"), vendors[rng.Intn(numVendors)]),
				rdf.T(offer, p("deliveryDays"), rdf.NewLiteral(fmt.Sprintf("%d", 1+rng.Intn(14)))),
			)
			if rng.Intn(3) > 0 {
				g.Add(rdf.T(offer, p("validTo"), rdf.NewLiteral(fmt.Sprintf("2008-%02d-01", 1+rng.Intn(12)))))
			}
		}
	}
	return g
}
