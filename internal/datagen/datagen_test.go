package datagen

import (
	"reflect"
	"testing"

	"rapidanalytics/internal/rdf"
)

func TestBSBMDeterministic(t *testing.T) {
	a := GenerateBSBM(BSBMSmall())
	b := GenerateBSBM(BSBMSmall())
	if !reflect.DeepEqual(a.Triples[:100], b.Triples[:100]) || a.Len() != b.Len() {
		t.Error("BSBM generation is not deterministic")
	}
	c := GenerateBSBM(BSBMConfig{Products: 600, OffersPerProduct: 8, Seed: 99})
	if a.Len() == c.Len() && reflect.DeepEqual(a.Triples[:50], c.Triples[:50]) {
		t.Error("different seeds produced identical data")
	}
}

// typeCounts tallies rdf:type objects.
func typeCounts(g *rdf.Graph) map[string]int {
	m := map[string]int{}
	for _, tr := range g.Triples {
		if tr.Property.Value == rdf.RDFType {
			m[tr.Object.Value]++
		}
	}
	return m
}

func TestBSBMSelectivitySkew(t *testing.T) {
	g := GenerateBSBM(BSBMSmall())
	counts := typeCounts(g)
	pt1 := counts[BSBM+"ProductType1"]
	pt9 := counts[BSBM+"ProductType9"]
	if pt1 == 0 || pt9 == 0 {
		t.Fatalf("type counts: PT1=%d PT9=%d", pt1, pt9)
	}
	// ProductType1 is the low-selectivity type (many products), PT9 high.
	if pt1 < 5*pt9 {
		t.Errorf("selectivity skew missing: PT1=%d PT9=%d", pt1, pt9)
	}
}

func TestBSBMShape(t *testing.T) {
	cfg := BSBMSmall()
	g := GenerateBSBM(cfg)
	props := g.Properties()
	products := typeCountTotal(g)
	if products != cfg.Products {
		t.Errorf("products = %d, want %d", products, cfg.Products)
	}
	offers := props[BSBM+"product"]
	if offers < cfg.Products*2 {
		t.Errorf("offers = %d, too few", offers)
	}
	if props[BSBM+"price"] != offers || props[BSBM+"vendor"] != offers {
		t.Errorf("offer stars incomplete: product=%d price=%d vendor=%d",
			offers, props[BSBM+"price"], props[BSBM+"vendor"])
	}
	// productFeature is multi-valued: more feature triples than products
	// with features, and some products have none.
	features := props[BSBM+"productFeature"]
	if features <= products/2 {
		t.Errorf("feature fan-out too small: %d", features)
	}
	// validTo is optional on offers.
	if props[BSBM+"validTo"] >= offers {
		t.Error("validTo should be optional")
	}
}

func typeCountTotal(g *rdf.Graph) int {
	n := 0
	for _, c := range typeCounts(g) {
		n += c
	}
	return n
}

func TestChemShape(t *testing.T) {
	cfg := ChemDefault()
	g := GenerateChem(cfg)
	props := g.Properties()
	// The G5/MG6 chain must be populated end to end.
	for _, p := range []string{"CID", "outcome", "Score", "gi", "geneSymbol", "gene", "DBID",
		"Generic_Name", "protein", "Pathway_name", "pathwayid", "side_effect", "cid", "SwissProt_ID"} {
		if props[Chem+p] == 0 {
			t.Errorf("property %s missing", p)
		}
	}
	// MEDLINE-like publications dominate (the large-VP regime of G9/MG9).
	if props[Chem+"gene"] < props[Chem+"Generic_Name"] {
		t.Error("publication gene links should dwarf drug records")
	}
	// Dexamethasone exists (G5's anchor).
	found := false
	for _, tr := range g.Triples {
		if tr.Property.Value == Chem+"Generic_Name" && tr.Object.Value == "Dexamethasone" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no Dexamethasone drug generated")
	}
	// MAPK pathway exists (G6's regex target).
	found = false
	for _, tr := range g.Triples {
		if tr.Property.Value == Chem+"Pathway_name" && tr.Object.Value == "MAPK signaling pathway" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no MAPK pathway generated")
	}
}

func TestPubMedShape(t *testing.T) {
	cfg := PubMedDefault()
	g := GeneratePubMed(cfg)
	props := g.Properties()
	pubs := props[PubMed+"journal"]
	if pubs != cfg.Publications {
		t.Errorf("publications = %d, want %d", pubs, cfg.Publications)
	}
	// Multi-valued fan-outs: MeSH > authors > grants.
	mesh := props[PubMed+"mesh_heading"]
	authors := props[PubMed+"author"]
	grants := props[PubMed+"grant"]
	if !(mesh > authors && authors > grants) {
		t.Errorf("fan-outs: mesh=%d authors=%d grants=%d", mesh, authors, grants)
	}
	if mesh < pubs*3 {
		t.Errorf("MeSH fan-out too small: %d for %d pubs", mesh, pubs)
	}
	// Publication-type selectivity: Journal Article >> News (MG15 vs MG16).
	types := map[string]int{}
	for _, tr := range g.Triples {
		if tr.Property.Value == PubMed+"pub_type" {
			types[tr.Object.Value]++
		}
	}
	if types["Journal Article"] < 10*types["News"] || types["News"] == 0 {
		t.Errorf("pub_type skew: %v", types)
	}
	// Every grant has agency and country.
	if props[PubMed+"grant_agency"] != props[PubMed+"grant_country"] {
		t.Errorf("grant stars incomplete: agency=%d country=%d",
			props[PubMed+"grant_agency"], props[PubMed+"grant_country"])
	}
}

func TestScaling(t *testing.T) {
	small := GenerateBSBM(BSBMConfig{Products: 100, OffersPerProduct: 8, Seed: 1})
	large := GenerateBSBM(BSBMConfig{Products: 400, OffersPerProduct: 8, Seed: 1})
	ratio := float64(large.Len()) / float64(small.Len())
	if ratio < 3 || ratio > 5 {
		t.Errorf("4x products gave %.1fx triples", ratio)
	}
}
