package datagen

import (
	"fmt"
	"math/rand"

	"rapidanalytics/internal/rdf"
)

// This file holds the two adversarially skewed BSBM variants used by the
// planner experiment (benchrunner -exp planner). Both keep GenerateBSBM's
// vocabulary exactly — products with type/label/producer/productFeature,
// offers with product/price/vendor/deliveryDays/validTo, vendors with
// country/label — so every BSBM-shaped catalog query still parses and
// answers, but their value distributions deliberately break the uniformity
// the star-0-first heuristic implicitly assumes:
//
//   - GenerateBSBMZipf draws offer→product, offer→vendor, product→producer
//     and product→feature assignments from Zipfian distributions, so a few
//     head entities carry most of the predicate occurrences while the rare
//     country sits on tail vendors that hold almost no offers. A selective
//     vendor star therefore prunes far harder than the offer star the
//     heuristic leads with.
//   - GenerateBSBMSupernode plants one super-node product that is typed
//     with the *narrow* ProductType9 yet holds roughly half of all offers.
//     Any per-type uniformity assumption ("type9 ⇒ few offers") is then
//     wrong by an order of magnitude, which is exactly the misestimate the
//     mid-query re-plan hook exists to catch.

// rareCountryVendors is how many of the highest-index vendors the skewed
// generators pin to the rare country. Kept tiny so a country-constant star
// is genuinely selective.
const rareCountryVendors = 2

// rareCountry is the country the skewed generators keep rare ("IN", the
// last entry of bsbmCountries); the SK catalog queries filter on it.
var rareCountry = bsbmCountries[len(bsbmCountries)-1]

// BSBMZipf sizes the Zipf-skewed variant (same laptop scale as BSBMSmall,
// its own seed).
func BSBMZipf() BSBMConfig { return BSBMConfig{Products: 600, OffersPerProduct: 8, Seed: 11} }

// BSBMSupernode sizes the super-node variant.
func BSBMSupernode() BSBMConfig { return BSBMConfig{Products: 600, OffersPerProduct: 8, Seed: 12} }

// pickProductType draws a product type from the same skewed weights the
// base generator uses (ProductType1 broad, ProductType9 narrow).
func pickProductType(rng *rand.Rand) string {
	totalWeight := 0
	for _, tw := range productTypeWeights {
		totalWeight += tw.Weight
	}
	r := rng.Intn(totalWeight)
	for _, tw := range productTypeWeights {
		if r < tw.Weight {
			return tw.Type
		}
		r -= tw.Weight
	}
	return productTypeWeights[0].Type
}

// GenerateBSBMZipf builds the Zipf-skewed e-commerce graph. Entity counts
// match GenerateBSBM; only the assignment distributions differ. Product 0
// is forced to ProductType1 (so the head of the offer distribution sits in
// the broad type and the heuristic's offers⋈type1 intermediate is as large
// as possible) and product 1 to ProductType9 (so narrow-type queries stay
// non-empty). The two rare-country vendors receive a small deterministic
// tail of offers so country-selective queries return rows.
func GenerateBSBMZipf(cfg BSBMConfig) *rdf.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &rdf.Graph{}
	p := func(name string) rdf.Term { return rdf.NewIRI(BSBM + name) }

	numFeatures := cfg.Products/12 + 20
	numVendors := cfg.Products/40 + 8
	numProducers := cfg.Products/30 + 5

	// Country follows vendor rank: the Zipfian offer→vendor assignment
	// concentrates on low indexes, so the two highest-index vendors — the
	// ones that almost never win an offer — carry the rare country.
	vendors := make([]rdf.Term, numVendors)
	for i := range vendors {
		vendors[i] = rdf.NewIRI(fmt.Sprintf("%sVendor%d", BSBM, i))
		country := bsbmCountries[i%(len(bsbmCountries)-1)]
		if i >= numVendors-rareCountryVendors {
			country = rareCountry
		}
		g.Add(
			rdf.T(vendors[i], p("country"), rdf.NewLiteral(country)),
			rdf.T(vendors[i], p("label"), rdf.NewLiteral(fmt.Sprintf("vendor %d", i))),
		)
	}
	producers := make([]rdf.Term, numProducers)
	for i := range producers {
		producers[i] = rdf.NewIRI(fmt.Sprintf("%sProducer%d", BSBM, i))
		g.Add(rdf.T(producers[i], p("label"), rdf.NewLiteral(fmt.Sprintf("producer %d", i))))
	}

	productPick := rand.NewZipf(rng, 1.2, 1, uint64(cfg.Products-1))
	vendorPick := rand.NewZipf(rng, 1.4, 1, uint64(numVendors-1))
	featurePick := rand.NewZipf(rng, 1.2, 1, uint64(numFeatures-1))
	producerPick := rand.NewZipf(rng, 1.3, 1, uint64(numProducers-1))

	products := make([]rdf.Term, cfg.Products)
	for i := range products {
		products[i] = rdf.NewIRI(fmt.Sprintf("%sProduct%d", BSBM, i))
		ptype := pickProductType(rng)
		switch i {
		case 0:
			ptype = "ProductType1"
		case 1:
			ptype = "ProductType9"
		}
		g.Add(
			rdf.T(products[i], rdf.TypeTerm, p(ptype)),
			rdf.T(products[i], p("label"), rdf.NewLiteral(fmt.Sprintf("product %d", i))),
			rdf.T(products[i], p("producer"), producers[producerPick.Uint64()]),
		)
		nf := rng.Intn(7)
		seen := map[uint64]bool{}
		for f := 0; f < nf; f++ {
			fid := featurePick.Uint64()
			if seen[fid] {
				continue
			}
			seen[fid] = true
			g.Add(rdf.T(products[i], p("productFeature"), rdf.NewIRI(fmt.Sprintf("%sFeature%d", BSBM, fid))))
		}
	}

	offerID := 0
	addOffer := func(prod, vendor rdf.Term) {
		offer := rdf.NewIRI(fmt.Sprintf("%sOffer%d", BSBM, offerID))
		offerID++
		g.Add(
			rdf.T(offer, p("product"), prod),
			rdf.T(offer, p("price"), rdf.NewLiteral(fmt.Sprintf("%d", 10+rng.Intn(9990)))),
			rdf.T(offer, p("vendor"), vendor),
			rdf.T(offer, p("deliveryDays"), rdf.NewLiteral(fmt.Sprintf("%d", 1+rng.Intn(14)))),
		)
		if rng.Intn(3) > 0 {
			g.Add(rdf.T(offer, p("validTo"), rdf.NewLiteral(fmt.Sprintf("2008-%02d-01", 1+rng.Intn(12)))))
		}
	}
	totalOffers := cfg.Products * cfg.OffersPerProduct
	for o := 0; o < totalOffers; o++ {
		addOffer(products[productPick.Uint64()], vendors[vendorPick.Uint64()])
	}
	// Deterministic tail: each rare-country vendor sells a few offers on the
	// head products, keeping country-selective query results non-empty.
	for i := 0; i < rareCountryVendors; i++ {
		for k := 0; k < 3; k++ {
			addOffer(products[k], vendors[numVendors-1-i])
		}
	}
	return g
}

// GenerateBSBMSupernode builds the super-node e-commerce graph: product 0
// is typed ProductType9 (the narrow, "high selectivity" type) and holds as
// many offers as the rest of the catalog combined, plus an unusually wide
// feature set. Everything else matches GenerateBSBM's uniform shape, except
// that — as in the Zipf variant — the rare country sits on exactly two
// vendors.
func GenerateBSBMSupernode(cfg BSBMConfig) *rdf.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &rdf.Graph{}
	p := func(name string) rdf.Term { return rdf.NewIRI(BSBM + name) }

	numFeatures := cfg.Products/12 + 20
	numVendors := cfg.Products/40 + 8
	numProducers := cfg.Products/30 + 5

	vendors := make([]rdf.Term, numVendors)
	for i := range vendors {
		vendors[i] = rdf.NewIRI(fmt.Sprintf("%sVendor%d", BSBM, i))
		country := bsbmCountries[rng.Intn(len(bsbmCountries)-1)]
		if i >= numVendors-rareCountryVendors {
			country = rareCountry
		}
		g.Add(
			rdf.T(vendors[i], p("country"), rdf.NewLiteral(country)),
			rdf.T(vendors[i], p("label"), rdf.NewLiteral(fmt.Sprintf("vendor %d", i))),
		)
	}
	producers := make([]rdf.Term, numProducers)
	for i := range producers {
		producers[i] = rdf.NewIRI(fmt.Sprintf("%sProducer%d", BSBM, i))
		g.Add(rdf.T(producers[i], p("label"), rdf.NewLiteral(fmt.Sprintf("producer %d", i))))
	}

	offerID := 0
	addOffers := func(prod rdf.Term, n int) {
		for o := 0; o < n; o++ {
			offer := rdf.NewIRI(fmt.Sprintf("%sOffer%d", BSBM, offerID))
			offerID++
			g.Add(
				rdf.T(offer, p("product"), prod),
				rdf.T(offer, p("price"), rdf.NewLiteral(fmt.Sprintf("%d", 10+rng.Intn(9990)))),
				rdf.T(offer, p("vendor"), vendors[rng.Intn(numVendors)]),
				rdf.T(offer, p("deliveryDays"), rdf.NewLiteral(fmt.Sprintf("%d", 1+rng.Intn(14)))),
			)
			if rng.Intn(3) > 0 {
				g.Add(rdf.T(offer, p("validTo"), rdf.NewLiteral(fmt.Sprintf("2008-%02d-01", 1+rng.Intn(12)))))
			}
		}
	}

	for i := 0; i < cfg.Products; i++ {
		prod := rdf.NewIRI(fmt.Sprintf("%sProduct%d", BSBM, i))
		ptype := pickProductType(rng)
		if i == 0 {
			ptype = "ProductType9"
		}
		g.Add(
			rdf.T(prod, rdf.TypeTerm, p(ptype)),
			rdf.T(prod, p("label"), rdf.NewLiteral(fmt.Sprintf("product %d", i))),
			rdf.T(prod, p("producer"), producers[rng.Intn(numProducers)]),
		)
		if i == 0 {
			// The super-node is feature-rich on top of offer-rich: two dozen
			// distinct features versus the usual 0–6.
			for f := 0; f < 24 && f < numFeatures; f++ {
				g.Add(rdf.T(prod, p("productFeature"), rdf.NewIRI(fmt.Sprintf("%sFeature%d", BSBM, f))))
			}
			addOffers(prod, cfg.Products*cfg.OffersPerProduct)
			continue
		}
		nf := rng.Intn(7)
		seen := map[int]bool{}
		for f := 0; f < nf; f++ {
			fid := rng.Intn(numFeatures)
			if seen[fid] {
				continue
			}
			seen[fid] = true
			g.Add(rdf.T(prod, p("productFeature"), rdf.NewIRI(fmt.Sprintf("%sFeature%d", BSBM, fid))))
		}
		addOffers(prod, 1+rng.Intn(cfg.OffersPerProduct*2-1))
	}
	return g
}
