package datagen

import (
	"fmt"
	"math/rand"

	"rapidanalytics/internal/rdf"
)

// Chem is the namespace of the generated chemogenomics vocabulary.
const Chem = "http://chem2bio2rdf.org/v01/"

// ChemConfig sizes the Chem2Bio2RDF-like generator.
type ChemConfig struct {
	// Compounds is the primary scale knob.
	Compounds int
	Seed      int64
}

// ChemDefault mirrors the paper's 340M-triple warehouse at laptop scale.
func ChemDefault() ChemConfig { return ChemConfig{Compounds: 1200, Seed: 3} }

var pathwayNames = []string{
	"MAPK signaling pathway",
	"Calcium signaling pathway",
	"Apoptosis",
	"Cell cycle",
	"p53 signaling pathway",
	"Insulin signaling pathway",
}

var sideEffects = []string{
	"hepatomegaly", "nausea", "headache", "dizziness", "rash",
	"hepatotoxicity", "fatigue", "insomnia",
}

var diseases = []string{
	"Tuberculosis", "HIV", "Alzheimer", "Diabetes", "Asthma", "Malaria",
}

// GenerateChem builds the chemogenomics graph: PubChem-like bioassays
// linking compounds to gene identifiers, protein/gene records, drug-target
// interactions, DrugBank-like drugs, KEGG-like pathways, SIDER-like
// side-effect records, and a deliberately large MEDLINE-like publication
// set (the paper's G9/MG9-MG10 "large VP tables" regime).
func GenerateChem(cfg ChemConfig) *rdf.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &rdf.Graph{}
	p := func(name string) rdf.Term { return rdf.NewIRI(Chem + name) }

	numGenes := cfg.Compounds/4 + 25
	numProteins := numGenes * 2
	numDrugs := cfg.Compounds/20 + 10
	numPathways := cfg.Compounds/60 + 6
	numTargets := numDrugs * 2

	// Genes with symbols.
	genes := make([]rdf.Term, numGenes)
	geneSymbols := make([]rdf.Term, numGenes)
	for i := range genes {
		genes[i] = rdf.NewIRI(fmt.Sprintf("%sGene%d", Chem, i))
		geneSymbols[i] = rdf.NewLiteral(fmt.Sprintf("GSYM%d", i))
		g.Add(rdf.T(genes[i], p("geneSymbol"), geneSymbols[i]))
	}
	// Proteins: gi number plus gene symbol (the ?u star of G5/MG6).
	proteins := make([]rdf.Term, numProteins)
	gis := make([]rdf.Term, numProteins)
	for i := range proteins {
		proteins[i] = rdf.NewIRI(fmt.Sprintf("%sProtein%d", Chem, i))
		gis[i] = rdf.NewLiteral(fmt.Sprintf("%d", 100000+i))
		sym := geneSymbols[rng.Intn(numGenes)]
		g.Add(
			rdf.T(proteins[i], p("gi"), gis[i]),
			rdf.T(proteins[i], p("geneSymbol"), sym),
		)
	}
	// Bioassays: compound + outcome + score + gi (the 4-pattern star).
	assayID := 0
	cids := make([]rdf.Term, cfg.Compounds)
	for i := 0; i < cfg.Compounds; i++ {
		cids[i] = rdf.NewLiteral(fmt.Sprintf("CID%06d", i))
		na := 1 + rng.Intn(5)
		for a := 0; a < na; a++ {
			b := rdf.NewIRI(fmt.Sprintf("%sBioAssay%d", Chem, assayID))
			assayID++
			outcome := "inactive"
			if rng.Intn(3) == 0 {
				outcome = "active"
			}
			g.Add(
				rdf.T(b, p("CID"), cids[i]),
				rdf.T(b, p("outcome"), rdf.NewLiteral(outcome)),
				rdf.T(b, p("Score"), rdf.NewLiteral(fmt.Sprintf("%d", rng.Intn(100)))),
				rdf.T(b, p("gi"), gis[rng.Intn(numProteins)]),
			)
		}
	}
	// Drugs: generic names (one fixed "Dexamethasone" cluster for G5) and
	// compound links.
	drugs := make([]rdf.Term, numDrugs)
	for i := range drugs {
		drugs[i] = rdf.NewIRI(fmt.Sprintf("%sDrug%d", Chem, i))
		name := fmt.Sprintf("Drug-%d", i)
		if i%17 == 0 {
			name = "Dexamethasone"
		}
		g.Add(
			rdf.T(drugs[i], p("Generic_Name"), rdf.NewLiteral(name)),
			rdf.T(drugs[i], p("CID"), cids[rng.Intn(cfg.Compounds)]),
		)
	}
	// Drug-target interactions: gene symbol -> drug.
	for i := 0; i < numGenes*2; i++ {
		di := rdf.NewIRI(fmt.Sprintf("%sDTI%d", Chem, i))
		g.Add(
			rdf.T(di, p("gene"), geneSymbols[rng.Intn(numGenes)]),
			rdf.T(di, p("DBID"), drugs[rng.Intn(numDrugs)]),
		)
	}
	// Targets: drug -> SwissProt protein (G7's ?target star).
	for i := 0; i < numTargets; i++ {
		tgt := rdf.NewIRI(fmt.Sprintf("%sTarget%d", Chem, i))
		g.Add(
			rdf.T(tgt, p("DBID"), drugs[rng.Intn(numDrugs)]),
			rdf.T(tgt, p("SwissProt_ID"), proteins[rng.Intn(numProteins)]),
		)
	}
	// Pathways: multi-valued protein membership plus name and id.
	for i := 0; i < numPathways; i++ {
		pw := rdf.NewIRI(fmt.Sprintf("%sPathway%d", Chem, i))
		g.Add(
			rdf.T(pw, p("Pathway_name"), rdf.NewLiteral(pathwayNames[i%len(pathwayNames)])),
			rdf.T(pw, p("pathwayid"), rdf.NewLiteral(fmt.Sprintf("path:%04d", i))),
		)
		np := 3 + rng.Intn(12)
		for j := 0; j < np; j++ {
			g.Add(rdf.T(pw, p("protein"), proteins[rng.Intn(numProteins)]))
		}
	}
	// SIDER-like records: side effect x compound.
	for i := 0; i < cfg.Compounds; i++ {
		if rng.Intn(2) == 0 {
			continue
		}
		s := rdf.NewIRI(fmt.Sprintf("%sSider%d", Chem, i))
		g.Add(
			rdf.T(s, p("side_effect"), rdf.NewLiteral(sideEffects[rng.Intn(len(sideEffects))])),
			rdf.T(s, p("cid"), cids[i]),
		)
	}
	// MEDLINE-like publications: the large VP tables of G9/MG9/MG10.
	numPubs := cfg.Compounds * 4
	for i := 0; i < numPubs; i++ {
		pub := rdf.NewIRI(fmt.Sprintf("%sPMID%d", Chem, i))
		g.Add(
			rdf.T(pub, p("gene"), genes[rng.Intn(numGenes)]),
			rdf.T(pub, p("side_effect"), rdf.NewLiteral(sideEffects[rng.Intn(len(sideEffects))])),
		)
		if rng.Intn(3) == 0 {
			g.Add(rdf.T(pub, p("disease"), rdf.NewLiteral(diseases[rng.Intn(len(diseases))])))
		}
	}
	return g
}
