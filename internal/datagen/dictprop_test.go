package datagen

import (
	"testing"

	"rapidanalytics/internal/rdf"
)

// Property: over every generated graph, the dictionary is a bijection on the
// term keys actually present — AddString is idempotent, Lex inverts it — and
// building it twice in triple order assigns identical IDs (determinism is
// what makes dictionary-plane runs reproducible).
func TestDictRoundTripOverGeneratedGraphs(t *testing.T) {
	graphs := map[string]*rdf.Graph{
		"bsbm":     GenerateBSBM(BSBMSmall()),
		"chem2bio": GenerateChem(ChemDefault()),
		"pubmed":   GeneratePubMed(PubMedDefault()),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			build := func() *rdf.Dict {
				d := rdf.NewDict()
				for _, tr := range g.Triples {
					d.AddString(tr.Subject.Key())
					d.AddString(tr.Property.Key())
					d.AddString(tr.Object.Key())
				}
				return d
			}
			d := build()
			seen := map[string]bool{}
			for _, tr := range g.Triples {
				for _, key := range []string{tr.Subject.Key(), tr.Property.Key(), tr.Object.Key()} {
					if seen[key] {
						continue
					}
					seen[key] = true
					idStr := d.AddString(key)
					if lex, ok := d.Lex(idStr); !ok || lex != key {
						t.Fatalf("Lex(AddString(%q)) = %q, %v", key, lex, ok)
					}
					id, ok := d.Lookup(key)
					if !ok {
						t.Fatalf("Lookup(%q) missing after AddString", key)
					}
					if s, ok := d.IDString(id); !ok || s != idStr {
						t.Fatalf("IDString(%d) = %q, %v; want %q", id, s, ok, idStr)
					}
					if back, ok := d.Key(id); !ok || back != key {
						t.Fatalf("Key(%d) = %q, %v; want %q", id, back, ok, key)
					}
				}
			}
			if d.Len() != len(seen) {
				t.Fatalf("dict has %d entries, graph has %d distinct term keys", d.Len(), len(seen))
			}
			// Determinism: a second build over the same triple stream assigns
			// the same ID to every key.
			d2 := build()
			for key := range seen {
				id1, _ := d.Lookup(key)
				id2, ok := d2.Lookup(key)
				if !ok || id1 != id2 {
					t.Fatalf("rebuild assigned %q id %d, first build %d (ok=%v)", key, id2, id1, ok)
				}
			}
		})
	}
}
