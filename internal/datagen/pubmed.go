package datagen

import (
	"fmt"
	"math/rand"

	"rapidanalytics/internal/rdf"
)

// PubMed is the namespace of the generated bibliographic vocabulary.
const PubMed = "http://bio2rdf.org/pubmed/v01/"

// PubMedConfig sizes the PubMed/Bio2RDF-like generator.
type PubMedConfig struct {
	// Publications is the primary scale knob (the paper's release held
	// ~1.7B triples).
	Publications int
	Seed         int64
}

// PubMedDefault mirrors the paper's 230GB dataset at laptop scale.
func PubMedDefault() PubMedConfig { return PubMedConfig{Publications: 3000, Seed: 4} }

// pubTypeWeights skew publication types: "Journal Article" dominates (the
// paper's low-selectivity MG15) and "News" is rare (high-selectivity MG16).
var pubTypeWeights = []struct {
	Type   string
	Weight int
}{
	{"Journal Article", 70},
	{"Review", 15},
	{"Letter", 7},
	{"Editorial", 5},
	{"News", 3},
}

var grantCountries = []string{"US", "UK", "DE", "FR", "JP", "CA", "CH", "AU"}

// GeneratePubMed builds the bibliographic graph: publications with
// journals, publication types, multi-valued authors, MeSH headings and
// chemicals (the fan-outs behind the paper's MG13 materialisation
// blow-up), and grants with agencies and countries.
func GeneratePubMed(cfg PubMedConfig) *rdf.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &rdf.Graph{}
	p := func(name string) rdf.Term { return rdf.NewIRI(PubMed + name) }

	numJournals := cfg.Publications/80 + 10
	numAuthors := cfg.Publications/3 + 50
	numGrants := cfg.Publications/4 + 20
	numMesh := 400
	numChemicals := 300

	authors := make([]rdf.Term, numAuthors)
	for i := range authors {
		authors[i] = rdf.NewIRI(fmt.Sprintf("%sAuthor%d", PubMed, i))
		g.Add(rdf.T(authors[i], p("last_name"), rdf.NewLiteral(fmt.Sprintf("Lastname%d", i%977))))
	}
	grants := make([]rdf.Term, numGrants)
	for i := range grants {
		grants[i] = rdf.NewIRI(fmt.Sprintf("%sGrant%d", PubMed, i))
		g.Add(
			rdf.T(grants[i], p("grant_agency"), rdf.NewLiteral(fmt.Sprintf("Agency%d", i%37))),
			rdf.T(grants[i], p("grant_country"), rdf.NewLiteral(grantCountries[rng.Intn(len(grantCountries))])),
		)
	}

	totalWeight := 0
	for _, tw := range pubTypeWeights {
		totalWeight += tw.Weight
	}
	pickType := func() string {
		r := rng.Intn(totalWeight)
		for _, tw := range pubTypeWeights {
			if r < tw.Weight {
				return tw.Type
			}
			r -= tw.Weight
		}
		return pubTypeWeights[0].Type
	}

	for i := 0; i < cfg.Publications; i++ {
		pub := rdf.NewIRI(fmt.Sprintf("%sPMID%d", PubMed, i))
		g.Add(
			rdf.T(pub, p("journal"), rdf.NewIRI(fmt.Sprintf("%sJournal%d", PubMed, rng.Intn(numJournals)))),
			rdf.T(pub, p("pub_type"), rdf.NewLiteral(pickType())),
		)
		na := 1 + rng.Intn(4)
		for a := 0; a < na; a++ {
			g.Add(rdf.T(pub, p("author"), authors[rng.Intn(numAuthors)]))
		}
		// MeSH headings: the biggest multi-valued property (3..12).
		nm := 3 + rng.Intn(10)
		for m := 0; m < nm; m++ {
			g.Add(rdf.T(pub, p("mesh_heading"), rdf.NewLiteral(fmt.Sprintf("MeSH-%d", rng.Intn(numMesh)))))
		}
		nc := rng.Intn(6)
		for ch := 0; ch < nc; ch++ {
			g.Add(rdf.T(pub, p("chemical"), rdf.NewLiteral(fmt.Sprintf("Chem-%d", rng.Intn(numChemicals)))))
		}
		ng := rng.Intn(3)
		for gr := 0; gr < ng; gr++ {
			g.Add(rdf.T(pub, p("grant"), grants[rng.Intn(numGrants)]))
		}
	}
	return g
}
