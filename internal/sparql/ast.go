// Package sparql implements a lexer and recursive-descent parser for the
// subset of SPARQL 1.1 needed by analytical queries: prologue PREFIX
// declarations, SELECT queries with nested sub-SELECTs, basic graph patterns
// with ';' predicate lists and ',' object lists, FILTER constraints (regex
// and comparisons), GROUP BY clauses, the aggregate functions COUNT, SUM,
// AVG, MIN and MAX, and arithmetic projection expressions.
//
// This is the surface syntax of the paper's workload (queries G1–G9 and
// MG1–MG18): an outer SELECT that joins one or more grouped sub-SELECTs,
// each of which aggregates over its own basic graph pattern.
package sparql

import "rapidanalytics/internal/rdf"

// Query is a parsed SPARQL query: a prologue plus the top-level SELECT.
type Query struct {
	// Prefixes maps prefix labels (without the colon) to IRI namespaces.
	Prefixes map[string]string
	// Select is the outermost SELECT query.
	Select *SelectQuery
}

// SelectQuery is a (possibly nested) SELECT query.
type SelectQuery struct {
	// Projection lists the projected items in order.
	Projection []ProjItem
	// Pattern is the WHERE clause group graph pattern.
	Pattern *GroupGraphPattern
	// GroupBy lists grouping variable names (without '?'). Empty means
	// either no grouping (plain select) or, when the projection contains
	// aggregates, a single group over all solutions ("GROUP BY ALL" in the
	// paper's terminology).
	GroupBy []string
	// Having lists HAVING constraints over the query's aggregates.
	Having []HavingCond
	// OrderBy lists ORDER BY keys, outermost query only.
	OrderBy []OrderKey
	// Limit caps the result rows; 0 means no limit.
	Limit int
}

// HavingCond is one HAVING constraint: an aggregate compared to a numeric
// constant, e.g. HAVING (COUNT(?x) > 5). The aggregate must also appear in
// the SELECT projection (a documented restriction of the subset).
type HavingCond struct {
	Agg   Aggregate
	Op    string
	Value float64
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	// Var is the sorted column (a projection variable).
	Var string
	// Desc selects descending order.
	Desc bool
}

// ProjItem is one item of a SELECT projection: a plain variable, an
// aggregate with an alias, or an arithmetic expression with an alias.
// Exactly one of the three forms is populated.
type ProjItem struct {
	// Var is the variable name for a plain `?v` projection, or the alias
	// for aggregate and expression projections.
	Var string
	// Agg is non-nil for aggregate projections such as (COUNT(?x) AS ?c).
	Agg *Aggregate
	// Expr is non-nil for expression projections such as (?a/?b AS ?r).
	Expr *Expr
}

// AggFunc identifies an aggregate function.
type AggFunc string

// Aggregate functions supported by the analytical subset.
const (
	Count AggFunc = "COUNT"
	Sum   AggFunc = "SUM"
	Avg   AggFunc = "AVG"
	Min   AggFunc = "MIN"
	Max   AggFunc = "MAX"
)

// Aggregate is an aggregate function application over a variable.
type Aggregate struct {
	Func AggFunc
	// Var is the aggregated variable name (without '?').
	Var string
	// Distinct marks SPARQL's set-valued form, e.g. COUNT(DISTINCT ?x).
	Distinct bool
}

// GroupGraphPattern is the contents of a `{ ... }` group: triple patterns,
// filters, OPTIONAL blocks and nested sub-SELECTs, in source order.
type GroupGraphPattern struct {
	Triples    []TriplePattern
	Filters    []Filter
	SubSelects []*SelectQuery
	// Optionals holds the triple patterns of OPTIONAL { ... } blocks, one
	// slice per block. The analytical subset supports blocks whose triple
	// patterns share one subject variable bound by the required part.
	Optionals [][]TriplePattern
}

// Node is a triple-pattern position: either a variable or a concrete term.
type Node struct {
	// Var is the variable name (without '?') when IsVar is true.
	Var   string
	Term  rdf.Term
	IsVar bool
}

// V returns a variable node.
func V(name string) Node { return Node{Var: name, IsVar: true} }

// C returns a constant (term) node.
func C(t rdf.Term) Node { return Node{Term: t} }

// String renders the node in SPARQL surface syntax.
func (n Node) String() string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.String()
}

// TriplePattern is a single triple pattern.
type TriplePattern struct {
	S, P, O Node
}

// String renders the triple pattern in SPARQL surface syntax.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// FilterKind discriminates filter constraint forms.
type FilterKind uint8

const (
	// FilterCompare is a comparison such as FILTER(?price > 5000).
	FilterCompare FilterKind = iota
	// FilterRegex is a regex test such as FILTER regex(?name, "pat", "i").
	FilterRegex
)

// Filter is a FILTER constraint over a single variable.
type Filter struct {
	Kind FilterKind
	// Var is the constrained variable name (without '?').
	Var string

	// Op and Value describe a comparison filter. Op is one of
	// = != < <= > >=. Value is the comparand's lexical form; IsNumeric
	// records whether it was written as a number.
	Op        string
	Value     string
	IsNumeric bool

	// Pattern and Flags describe a regex filter.
	Pattern string
	Flags   string
}

// ExprKind discriminates expression node forms.
type ExprKind uint8

const (
	// ExprVar is a variable reference.
	ExprVar ExprKind = iota
	// ExprNum is a numeric constant.
	ExprNum
	// ExprBinary is a binary arithmetic operation.
	ExprBinary
)

// Expr is an arithmetic expression over variables and numeric constants.
type Expr struct {
	Kind ExprKind

	// Var is the variable name for ExprVar nodes.
	Var string
	// Num is the constant for ExprNum nodes.
	Num float64
	// Op is one of + - * / for ExprBinary nodes.
	Op          byte
	Left, Right *Expr
}

// Vars appends the variable names referenced by the expression to dst and
// returns it.
func (e *Expr) Vars(dst []string) []string {
	if e == nil {
		return dst
	}
	switch e.Kind {
	case ExprVar:
		return append(dst, e.Var)
	case ExprBinary:
		return e.Right.Vars(e.Left.Vars(dst))
	default:
		return dst
	}
}

// HasAggregates reports whether the projection contains any aggregate item.
func (s *SelectQuery) HasAggregates() bool {
	for _, p := range s.Projection {
		if p.Agg != nil {
			return true
		}
	}
	return false
}
