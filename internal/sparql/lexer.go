package sparql

import (
	"fmt"
	"strings"
)

// tokenKind identifies lexical token classes.
type tokenKind uint8

const (
	tokEOF    tokenKind = iota
	tokIdent            // bare identifier or keyword (SELECT, WHERE, a, regex, ...)
	tokVar              // ?name
	tokIRI              // <...>
	tokPName            // prefix:local (prefix may be empty)
	tokString           // "..."
	tokNumber           // 123 or 1.5
	tokPunct            // one of { } ( ) ; . , and operators
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokIRI:
		return "IRI"
	case tokPName:
		return "prefixed name"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokPunct:
		return "punctuation"
	default:
		return "token"
	}
}

// token is a single lexical token. Text holds the semantic payload: the
// variable name without '?', the IRI without angle brackets, the unquoted
// string, the raw prefixed name, or the punctuation/operator itself.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer tokenises a SPARQL query string.
type lexer struct {
	in   string
	pos  int
	line int
	col  int
}

func newLexer(in string) *lexer { return &lexer{in: in, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("sparql: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.in); i++ {
		if l.in[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance(1)
		case c == '#':
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	c := l.in[l.pos]
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, line: startLine, col: startCol}
	}
	switch {
	case c == '?' || c == '$':
		l.advance(1)
		name := l.takeWhile(isNameChar)
		if name == "" {
			return token{}, l.errorf("empty variable name")
		}
		return mk(tokVar, name), nil
	case c == '<':
		end := strings.IndexByte(l.in[l.pos:], '>')
		if end < 0 {
			return token{}, l.errorf("unterminated IRI")
		}
		iri := l.in[l.pos+1 : l.pos+end]
		l.advance(end + 1)
		return mk(tokIRI, iri), nil
	case c == '"':
		val, n, err := unescapeString(l.in[l.pos:])
		if err != nil {
			return token{}, l.errorf("%v", err)
		}
		l.advance(n)
		return mk(tokString, val), nil
	case c >= '0' && c <= '9':
		num := l.takeWhile(func(r byte) bool { return r >= '0' && r <= '9' || r == '.' })
		return mk(tokNumber, num), nil
	case isNameStart(c):
		word := l.takeWhile(isNameChar)
		if l.pos < len(l.in) && l.in[l.pos] == ':' {
			// prefixed name: prefix ':' local
			l.advance(1)
			local := l.takeWhile(isNameChar)
			return mk(tokPName, word+":"+local), nil
		}
		return mk(tokIdent, word), nil
	case c == ':':
		// default-prefix name
		l.advance(1)
		local := l.takeWhile(isNameChar)
		return mk(tokPName, ":"+local), nil
	default:
		// punctuation and operators, longest match first
		two := ""
		if l.pos+1 < len(l.in) {
			two = l.in[l.pos : l.pos+2]
		}
		switch two {
		case ">=", "<=", "!=", "&&", "||":
			l.advance(2)
			return mk(tokPunct, two), nil
		}
		switch c {
		case '{', '}', '(', ')', ';', '.', ',', '*', '/', '+', '-', '=', '<', '>':
			l.advance(1)
			return mk(tokPunct, string(c)), nil
		}
		return token{}, l.errorf("unexpected character %q", c)
	}
}

func (l *lexer) takeWhile(pred func(byte) bool) string {
	start := l.pos
	for l.pos < len(l.in) && pred(l.in[l.pos]) {
		l.advance(1)
	}
	return l.in[start:l.pos]
}

func isNameStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-'
}

// unescapeString parses a double-quoted string starting at in[0] == '"',
// returning the value and the number of bytes consumed.
func unescapeString(in string) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(in) {
		switch in[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("dangling escape in string")
			}
			i++
			switch in[i] {
			case '"', '\\':
				b.WriteByte(in[i])
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", in[i])
			}
			i++
		default:
			b.WriteByte(in[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated string")
}

// keywordEq reports whether the identifier token text equals the keyword,
// case-insensitively (SPARQL keywords are case-insensitive).
func keywordEq(text, kw string) bool {
	return strings.EqualFold(text, kw)
}

// isKeyword reports whether text equals any of the given keywords.
func isKeyword(text string, kws ...string) bool {
	for _, kw := range kws {
		if keywordEq(text, kw) {
			return true
		}
	}
	return false
}
