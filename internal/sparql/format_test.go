package sparql

import (
	"reflect"
	"strings"
	"testing"
)

// Round-trip: Format(Parse(q)) reparses to a structurally identical AST.
func TestFormatRoundTrip(t *testing.T) {
	cases := []string{
		mg1Style,
		`PREFIX e: <http://e/>
SELECT ?f ((?a/?b) + 2 AS ?r) {
  { SELECT ?f (COUNT(DISTINCT ?x) AS ?a) (SUM(?x) AS ?b)
    { ?s e:p ?f ; e:q ?x . FILTER (?x > 10) FILTER regex(?f, "pat.*ern", "i") } GROUP BY ?f }
  { SELECT (COUNT(?y) AS ?c) { ?s2 e:q ?y . } }
} ORDER BY DESC(?r) ?f LIMIT 5`,
		`PREFIX e: <http://e/>
SELECT ?s (MIN(?v) AS ?lo) { ?s a e:T ; e:v ?v ; e:tag "x y \"z\"" . } GROUP BY ?s`,
		`SELECT (AVG(?v) AS ?m) { ?s <http://long/iri with spaces illegal?no> ?v . }`,
		`PREFIX e: <http://e/>
SELECT ?g (COUNT(DISTINCT ?x) AS ?c) { ?g e:p ?x . } GROUP BY ?g HAVING (COUNT(DISTINCT ?x) > 2) ORDER BY ?g LIMIT 3`,
		`SELECT ?p (COUNT(?o) AS ?n) { ?s ?p ?o . } GROUP BY ?p`,
		`PREFIX e: <http://e/>
SELECT ?f (COUNT(?pr) AS ?n) { ?p a e:T . OPTIONAL { ?p e:pf ?f } ?o e:product ?p ; e:price ?pr . } GROUP BY ?f`,
	}
	// the last case's IRI has odd characters; keep it legal instead:
	cases[3] = `SELECT (AVG(?v) AS ?m) { ?s <http://e/x#frag.2> ?v . }`
	for i, src := range cases {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("case %d: parse: %v", i, err)
		}
		text := Format(q1)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("case %d: reparse: %v\n%s", i, err, text)
		}
		if !reflect.DeepEqual(q1, q2) {
			t.Errorf("case %d: round trip changed the AST\nsource:\n%s\nformatted:\n%s", i, src, text)
		}
		// Formatting is idempotent.
		if text2 := Format(q2); text2 != text {
			t.Errorf("case %d: Format not idempotent:\n%s\nvs\n%s", i, text, text2)
		}
	}
}

func TestFormatCompactsIRIs(t *testing.T) {
	q := MustParse(`PREFIX bsbm: <http://bsbm.org/v01/>
SELECT (COUNT(?pr) AS ?c) { ?o bsbm:price ?pr . ?p a bsbm:ProductType1 . }`)
	text := Format(q)
	if !strings.Contains(text, "bsbm:price") {
		t.Errorf("IRI not compacted:\n%s", text)
	}
	if !strings.Contains(text, " a bsbm:ProductType1") {
		t.Errorf("rdf:type not rendered as 'a':\n%s", text)
	}
	if strings.Contains(text, "<http://bsbm.org/v01/price>") {
		t.Errorf("full IRI leaked:\n%s", text)
	}
}

func TestFormatPreservesPredicateLists(t *testing.T) {
	q := MustParse(`PREFIX e: <http://e/>
SELECT (COUNT(?x) AS ?c) { ?s e:p ?x ; e:q ?y . ?t e:r ?s . }`)
	text := Format(q)
	if strings.Count(text, "?s e:p") != 1 || !strings.Contains(text, ";") {
		t.Errorf("predicate list not reconstructed:\n%s", text)
	}
}
