package sparql

import (
	"strings"
	"testing"

	"rapidanalytics/internal/rdf"
)

const mg1Style = `
PREFIX bsbm: <http://bsbm.org/>
SELECT ?f ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a bsbm:ProductType1 ; bsbm:label ?l2 ; bsbm:productFeature ?f .
      ?off2 bsbm:product ?p2 ; bsbm:price ?pr2 .
    } GROUP BY ?f
  }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a bsbm:ProductType1 ; bsbm:label ?l1 .
      ?off1 bsbm:product ?p1 ; bsbm:price ?pr .
    }
  }
}`

func TestParseAnalyticalQuery(t *testing.T) {
	q, err := Parse(mg1Style)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sel := q.Select
	if got := len(sel.Projection); got != 5 {
		t.Fatalf("outer projection size = %d, want 5", got)
	}
	if got := len(sel.Pattern.SubSelects); got != 2 {
		t.Fatalf("sub-selects = %d, want 2", got)
	}
	sub1 := sel.Pattern.SubSelects[0]
	if len(sub1.GroupBy) != 1 || sub1.GroupBy[0] != "f" {
		t.Errorf("sub1 GroupBy = %v, want [f]", sub1.GroupBy)
	}
	if len(sub1.Pattern.Triples) != 5 {
		t.Errorf("sub1 triple patterns = %d, want 5", len(sub1.Pattern.Triples))
	}
	if !sub1.HasAggregates() {
		t.Error("sub1 should have aggregates")
	}
	// First triple: ?p2 rdf:type bsbm:ProductType1
	tp := sub1.Pattern.Triples[0]
	if !tp.S.IsVar || tp.S.Var != "p2" {
		t.Errorf("tp.S = %v", tp.S)
	}
	if tp.P.IsVar || tp.P.Term.Value != rdf.RDFType {
		t.Errorf("tp.P = %v, want rdf:type", tp.P)
	}
	if tp.O.Term.Value != "http://bsbm.org/ProductType1" {
		t.Errorf("tp.O = %v", tp.O)
	}
	sub2 := sel.Pattern.SubSelects[1]
	if len(sub2.GroupBy) != 0 {
		t.Errorf("sub2 GroupBy = %v, want empty (group-by-ALL)", sub2.GroupBy)
	}
	// Aggregates parse with the right functions.
	aggs := []AggFunc{}
	for _, pi := range sub1.Projection {
		if pi.Agg != nil {
			aggs = append(aggs, pi.Agg.Func)
		}
	}
	if len(aggs) != 2 || aggs[0] != Count || aggs[1] != Sum {
		t.Errorf("sub1 aggregates = %v", aggs)
	}
}

func TestParseOptionalAS(t *testing.T) {
	// The paper's appendix omits AS: (COUNT(?pr2) ?cntF).
	q, err := Parse(`PREFIX e: <http://e/>
SELECT ?x (COUNT(?y) ?c) { ?x e:p ?y . } GROUP BY ?x`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pi := q.Select.Projection[1]
	if pi.Agg == nil || pi.Agg.Func != Count || pi.Agg.Var != "y" || pi.Var != "c" {
		t.Errorf("projection item = %+v", pi)
	}
}

func TestParseDistinctAggregate(t *testing.T) {
	q, err := Parse(`PREFIX e: <http://e/>
SELECT ?g (COUNT(DISTINCT ?x) AS ?c) (SUM(?y) AS ?s) { ?g e:p ?x ; e:q ?y . } GROUP BY ?g`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	a := q.Select.Projection[1].Agg
	if a == nil || !a.Distinct || a.Func != Count || a.Var != "x" {
		t.Errorf("distinct aggregate = %+v", a)
	}
	if q.Select.Projection[2].Agg.Distinct {
		t.Error("plain aggregate parsed as distinct")
	}
}

func TestParseExpressionProjection(t *testing.T) {
	q, err := Parse(`PREFIX e: <http://e/>
SELECT ?f ((?sumF/?cntF) / (?sumT/?cntT) AS ?ratio) {
  { SELECT ?f (SUM(?p) AS ?sumF) (COUNT(?p) AS ?cntF) { ?s e:a ?f ; e:b ?p . } GROUP BY ?f }
  { SELECT (SUM(?q) AS ?sumT) (COUNT(?q) AS ?cntT) { ?s2 e:b ?q . } }
}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pi := q.Select.Projection[1]
	if pi.Expr == nil || pi.Var != "ratio" {
		t.Fatalf("expected expression projection, got %+v", pi)
	}
	vars := pi.Expr.Vars(nil)
	want := map[string]bool{"sumF": true, "cntF": true, "sumT": true, "cntT": true}
	if len(vars) != 4 {
		t.Fatalf("expr vars = %v", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected expr var %q", v)
		}
	}
	if pi.Expr.Kind != ExprBinary || pi.Expr.Op != '/' {
		t.Errorf("expr root = %+v", pi.Expr)
	}
}

func TestParseFilters(t *testing.T) {
	q, err := Parse(`PREFIX e: <http://e/>
SELECT ?s { ?s e:price ?p ; e:name ?n .
  FILTER (?p > 5000)
  FILTER regex(?n, "MAPK signaling pathway", "i")
}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fs := q.Select.Pattern.Filters
	if len(fs) != 2 {
		t.Fatalf("filters = %d, want 2", len(fs))
	}
	if fs[0].Kind != FilterCompare || fs[0].Var != "p" || fs[0].Op != ">" || fs[0].Value != "5000" || !fs[0].IsNumeric {
		t.Errorf("filter 0 = %+v", fs[0])
	}
	if fs[1].Kind != FilterRegex || fs[1].Var != "n" || fs[1].Pattern != "MAPK signaling pathway" || fs[1].Flags != "i" {
		t.Errorf("filter 1 = %+v", fs[1])
	}
}

func TestParseObjectList(t *testing.T) {
	q, err := Parse(`PREFIX e: <http://e/>
SELECT ?s { ?s e:tag "a", "b", "c" . }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n := len(q.Select.Pattern.Triples); n != 3 {
		t.Fatalf("triples = %d, want 3", n)
	}
	for _, tp := range q.Select.Pattern.Triples {
		if tp.S.Var != "s" || tp.P.Term.Value != "http://e/tag" {
			t.Errorf("bad triple %v", tp)
		}
	}
}

func TestParseLiteralObjects(t *testing.T) {
	q, err := Parse(`PREFIX e: <http://e/>
SELECT ?a { ?p e:pub_type "Journal Article" ; e:author ?a . }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tp := q.Select.Pattern.Triples[0]
	if tp.O.IsVar || !tp.O.Term.IsLiteral() || tp.O.Term.Value != "Journal Article" {
		t.Errorf("object = %v", tp.O)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"missing projection":  `SELECT { ?s ?p ?o . }`,
		"undeclared prefix":   `SELECT ?s { ?s x:p ?o . }`,
		"unterminated group":  `SELECT ?s { ?s <http://e/p> ?o .`,
		"empty group by":      `PREFIX e: <http://e/> SELECT ?s { ?s e:p ?o . } GROUP BY`,
		"bad filter":          `PREFIX e: <http://e/> SELECT ?s { ?s e:p ?o . FILTER (?o ~ 3) }`,
		"literal predicate":   `SELECT ?s { ?s "p" <http://e/o> . }`,
		"trailing garbage":    `PREFIX e: <http://e/> SELECT ?s { ?s e:p ?o . } LIMIT`,
		"nested non-select":   `PREFIX e: <http://e/> SELECT ?s { { ?s e:p ?o . } }`,
		"unterminated string": `PREFIX e: <http://e/> SELECT ?s { ?s e:p "x . }`,
	}
	for name, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	q, err := Parse(`prefix e: <http://e/>
select ?s (count(?o) as ?c) where { ?s e:p ?o . } group by ?s`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Select.Projection[1].Agg.Func != Count {
		t.Errorf("agg func = %v", q.Select.Projection[1].Agg.Func)
	}
	if len(q.Select.GroupBy) != 1 {
		t.Errorf("group by = %v", q.Select.GroupBy)
	}
}

func TestParseDefaultPrefix(t *testing.T) {
	q, err := Parse(`PREFIX : <http://d/>
SELECT ?s { ?s :p ?o . }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.Select.Pattern.Triples[0].P.Term.Value; got != "http://d/p" {
		t.Errorf("default prefix expansion = %q", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("not sparql")
}

func TestParseComments(t *testing.T) {
	q, err := Parse(strings.Join([]string{
		"# leading comment",
		"PREFIX e: <http://e/>",
		"SELECT ?s { ?s e:p ?o . # trailing comment",
		"}",
	}, "\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Select.Pattern.Triples) != 1 {
		t.Errorf("triples = %d", len(q.Select.Pattern.Triples))
	}
}
