package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Format renders a parsed query back to SPARQL text. The output is
// canonical — prefixes sorted, one prologue line per prefix, triple
// patterns grouped per subject with ';' lists, expressions fully
// parenthesised — and reparses to a structurally identical query (the
// round-trip property the formatter tests enforce).
func Format(q *Query) string {
	var b strings.Builder
	labels := make([]string, 0, len(q.Prefixes))
	for l := range q.Prefixes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "PREFIX %s: <%s>\n", l, q.Prefixes[l])
	}
	formatSelect(&b, q.Select, q.Prefixes, 0)
	return b.String()
}

func formatSelect(b *strings.Builder, sel *SelectQuery, prefixes map[string]string, depth int) {
	ind := strings.Repeat("  ", depth)
	b.WriteString(ind)
	b.WriteString("SELECT")
	for _, pi := range sel.Projection {
		b.WriteByte(' ')
		switch {
		case pi.Agg != nil:
			d := ""
			if pi.Agg.Distinct {
				d = "DISTINCT "
			}
			fmt.Fprintf(b, "(%s(%s?%s) AS ?%s)", pi.Agg.Func, d, pi.Agg.Var, pi.Var)
		case pi.Expr != nil:
			fmt.Fprintf(b, "(%s AS ?%s)", formatExpr(pi.Expr), pi.Var)
		default:
			fmt.Fprintf(b, "?%s", pi.Var)
		}
	}
	b.WriteString(" {\n")
	formatPattern(b, sel.Pattern, prefixes, depth+1)
	b.WriteString(ind)
	b.WriteString("}")
	if len(sel.GroupBy) > 0 {
		b.WriteString(" GROUP BY")
		for _, g := range sel.GroupBy {
			fmt.Fprintf(b, " ?%s", g)
		}
	}
	for _, h := range sel.Having {
		d := ""
		if h.Agg.Distinct {
			d = "DISTINCT "
		}
		fmt.Fprintf(b, " HAVING (%s(%s?%s) %s %s)", h.Agg.Func, d, h.Agg.Var, h.Op,
			strconv.FormatFloat(h.Value, 'g', -1, 64))
	}
	if len(sel.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, k := range sel.OrderBy {
			if k.Desc {
				fmt.Fprintf(b, " DESC(?%s)", k.Var)
			} else {
				fmt.Fprintf(b, " ASC(?%s)", k.Var)
			}
		}
	}
	if sel.Limit > 0 {
		fmt.Fprintf(b, " LIMIT %d", sel.Limit)
	}
}

func formatPattern(b *strings.Builder, g *GroupGraphPattern, prefixes map[string]string, depth int) {
	ind := strings.Repeat("  ", depth)
	// Triple patterns, grouped into ';' runs per consecutive subject.
	for i := 0; i < len(g.Triples); {
		j := i
		subj := g.Triples[i].S
		for j < len(g.Triples) && g.Triples[j].S == subj {
			j++
		}
		b.WriteString(ind)
		b.WriteString(formatNode(subj, prefixes))
		for k := i; k < j; k++ {
			if k > i {
				b.WriteString(" ;\n" + ind + strings.Repeat(" ", len(formatNode(subj, prefixes))))
			}
			b.WriteByte(' ')
			b.WriteString(formatNode(g.Triples[k].P, prefixes))
			b.WriteByte(' ')
			b.WriteString(formatNode(g.Triples[k].O, prefixes))
		}
		b.WriteString(" .\n")
		i = j
	}
	for _, block := range g.Optionals {
		b.WriteString(ind)
		b.WriteString("OPTIONAL {\n")
		formatPattern(b, &GroupGraphPattern{Triples: block}, prefixes, depth+1)
		b.WriteString(ind)
		b.WriteString("}\n")
	}
	for _, f := range g.Filters {
		b.WriteString(ind)
		if f.Kind == FilterRegex {
			fmt.Fprintf(b, "FILTER regex(?%s, %s", f.Var, quote(f.Pattern))
			if f.Flags != "" {
				fmt.Fprintf(b, ", %s", quote(f.Flags))
			}
			b.WriteString(")\n")
			continue
		}
		comparand := quote(f.Value)
		if f.IsNumeric {
			comparand = f.Value
		}
		fmt.Fprintf(b, "FILTER (?%s %s %s)\n", f.Var, f.Op, comparand)
	}
	for _, sub := range g.SubSelects {
		b.WriteString(ind)
		b.WriteString("{\n")
		formatSelect(b, sub, prefixes, depth+1)
		b.WriteString("\n" + ind + "}\n")
	}
}

func formatNode(n Node, prefixes map[string]string) string {
	if n.IsVar {
		return "?" + n.Var
	}
	t := n.Term
	if t.IsIRI() {
		if t.Value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
			return "a"
		}
		if pn, ok := compact(t.Value, prefixes); ok {
			return pn
		}
		return "<" + t.Value + ">"
	}
	return quote(t.Value)
}

// compact abbreviates an IRI under the longest matching declared prefix,
// when the remainder is a plain local name.
func compact(iri string, prefixes map[string]string) (string, bool) {
	best, bestNS := "", ""
	for label, ns := range prefixes {
		if ns != "" && strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) {
			best, bestNS = label, ns
		}
	}
	if bestNS == "" {
		return "", false
	}
	local := iri[len(bestNS):]
	if local == "" {
		return "", false
	}
	for i := 0; i < len(local); i++ {
		c := local[i]
		if !(c == '_' || c == '-' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return "", false
		}
	}
	if local[0] >= '0' && local[0] <= '9' || local[0] == '-' {
		return "", false
	}
	return best + ":" + local, true
}

func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func formatExpr(e *Expr) string {
	switch e.Kind {
	case ExprVar:
		return "?" + e.Var
	case ExprNum:
		return strconv.FormatFloat(e.Num, 'g', -1, 64)
	case ExprBinary:
		return fmt.Sprintf("(%s %c %s)", formatExpr(e.Left), e.Op, formatExpr(e.Right))
	default:
		return "?"
	}
}
