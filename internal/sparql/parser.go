package sparql

import (
	"fmt"
	"strconv"

	"rapidanalytics/internal/rdf"
)

// Parse parses a SPARQL query in the analytical subset.
func Parse(input string) (*Query, error) {
	p := &parser{lex: newLexer(input), prefixes: map[string]string{}}
	if err := p.prime(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; intended for static query
// catalogs and tests.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex      *lexer
	tok      token // current token
	peeked   *token
	prefixes map[string]string
}

func (p *parser) prime() error { return p.advance() }

func (p *parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sparql: %d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errorf("expected %q, found %s %q", s, p.tok.kind, p.tok.text)
	}
	return p.advance()
}

func (p *parser) isPunct(s string) bool {
	return p.tok.kind == tokPunct && p.tok.text == s
}

func (p *parser) isIdent(kw string) bool {
	return p.tok.kind == tokIdent && keywordEq(p.tok.text, kw)
}

func (p *parser) parseQuery() (*Query, error) {
	for p.isIdent("PREFIX") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokPName && p.tok.kind != tokIdent {
			return nil, p.errorf("expected prefix label, found %q", p.tok.text)
		}
		label := p.tok.text
		if p.tok.kind == tokPName {
			// "foo:" lexes as PName with empty local part.
			label = label[:len(label)-1]
			if i := indexByte(label, ':'); i >= 0 {
				label = label[:i]
			}
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIRI {
			return nil, p.errorf("expected namespace IRI after PREFIX %s:", label)
		}
		p.prefixes[label] = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.tok.text)
	}
	return &Query{Prefixes: p.prefixes, Select: sel}, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// parseSelect parses: SELECT proj+ [WHERE] { pattern } [GROUP BY vars].
func (p *parser) parseSelect() (*SelectQuery, error) {
	if !p.isIdent("SELECT") {
		return nil, p.errorf("expected SELECT, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	sel := &SelectQuery{}
	for {
		if p.tok.kind == tokVar {
			sel.Projection = append(sel.Projection, ProjItem{Var: p.tok.text})
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if p.isPunct("(") {
			item, err := p.parseProjParen()
			if err != nil {
				return nil, err
			}
			sel.Projection = append(sel.Projection, *item)
			continue
		}
		break
	}
	if len(sel.Projection) == 0 {
		return nil, p.errorf("empty SELECT projection")
	}
	if p.isIdent("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	pat, err := p.parseGroupGraphPattern()
	if err != nil {
		return nil, err
	}
	sel.Pattern = pat
	if p.isIdent("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isIdent("BY") {
			return nil, p.errorf("expected BY after GROUP")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		for p.tok.kind == tokVar {
			sel.GroupBy = append(sel.GroupBy, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if len(sel.GroupBy) == 0 {
			return nil, p.errorf("empty GROUP BY variable list")
		}
	}
	for p.isIdent("HAVING") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseHaving()
		if err != nil {
			return nil, err
		}
		sel.Having = append(sel.Having, *cond)
	}
	if p.isIdent("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isIdent("BY") {
			return nil, p.errorf("expected BY after ORDER")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			key := OrderKey{}
			switch {
			case p.isIdent("ASC") || p.isIdent("DESC"):
				key.Desc = keywordEq(p.tok.text, "DESC")
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				if p.tok.kind != tokVar {
					return nil, p.errorf("expected variable in ORDER BY")
				}
				key.Var = p.tok.text
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			case p.tok.kind == tokVar:
				key.Var = p.tok.text
				if err := p.advance(); err != nil {
					return nil, err
				}
			default:
				if len(sel.OrderBy) == 0 {
					return nil, p.errorf("empty ORDER BY key list")
				}
				goto orderDone
			}
			sel.OrderBy = append(sel.OrderBy, key)
		}
	orderDone:
	}
	if p.isIdent("LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, p.errorf("expected number after LIMIT")
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n <= 0 {
			return nil, p.errorf("bad LIMIT %q", p.tok.text)
		}
		sel.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

// parseProjParen parses a parenthesised projection item:
//
//	(COUNT(?x) AS ?c)   (COUNT(?x) ?c)   (?a/?b AS ?r)
//
// The AS keyword is optional, matching the paper's appendix syntax.
func (p *parser) parseProjParen() (*ProjItem, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var item ProjItem
	if p.tok.kind == tokIdent && isKeyword(p.tok.text, "COUNT", "SUM", "AVG", "MIN", "MAX") {
		fn := AggFunc(canonicalAgg(p.tok.text))
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		distinct := false
		if p.isIdent("DISTINCT") {
			distinct = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tokVar {
			return nil, p.errorf("expected variable in %s(...)", fn)
		}
		arg := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		item.Agg = &Aggregate{Func: fn, Var: arg, Distinct: distinct}
	} else {
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item.Expr = expr
	}
	if p.isIdent("AS") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokVar {
		return nil, p.errorf("expected alias variable in projection, found %q", p.tok.text)
	}
	item.Var = p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// An expression that is a bare variable with an alias equal to itself is
	// a plain projection.
	if item.Expr != nil && item.Expr.Kind == ExprVar && item.Expr.Var == item.Var {
		item.Expr = nil
	}
	return &item, nil
}

func canonicalAgg(s string) string {
	switch {
	case keywordEq(s, "COUNT"):
		return "COUNT"
	case keywordEq(s, "SUM"):
		return "SUM"
	case keywordEq(s, "AVG"):
		return "AVG"
	case keywordEq(s, "MIN"):
		return "MIN"
	default:
		return "MAX"
	}
}

// parseHaving parses (AGG([DISTINCT] ?var) op number).
func (p *parser) parseHaving() (*HavingCond, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent || !isKeyword(p.tok.text, "COUNT", "SUM", "AVG", "MIN", "MAX") {
		return nil, p.errorf("expected aggregate function in HAVING")
	}
	cond := &HavingCond{Agg: Aggregate{Func: AggFunc(canonicalAgg(p.tok.text))}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.isIdent("DISTINCT") {
		cond.Agg.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokVar {
		return nil, p.errorf("expected variable in HAVING aggregate")
	}
	cond.Agg.Var = p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokPunct || !isCompareOp(p.tok.text) {
		return nil, p.errorf("expected comparison operator in HAVING")
	}
	cond.Op = p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokNumber {
		return nil, p.errorf("expected numeric comparand in HAVING")
	}
	v, err := strconv.ParseFloat(p.tok.text, 64)
	if err != nil {
		return nil, p.errorf("bad number %q", p.tok.text)
	}
	cond.Value = v
	if err := p.advance(); err != nil {
		return nil, err
	}
	return cond, p.expectPunct(")")
}

// parseExpr parses an arithmetic expression with the usual precedence.
func (p *parser) parseExpr() (*Expr, error) {
	left, err := p.parseTermExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.tok.text[0]
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseTermExpr()
		if err != nil {
			return nil, err
		}
		left = &Expr{Kind: ExprBinary, Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseTermExpr() (*Expr, error) {
	left, err := p.parseFactorExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") {
		op := p.tok.text[0]
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseFactorExpr()
		if err != nil {
			return nil, err
		}
		left = &Expr{Kind: ExprBinary, Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseFactorExpr() (*Expr, error) {
	switch {
	case p.tok.kind == tokVar:
		e := &Expr{Kind: ExprVar, Var: p.tok.text}
		return e, p.advance()
	case p.tok.kind == tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", p.tok.text)
		}
		e := &Expr{Kind: ExprNum, Num: f}
		return e, p.advance()
	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	default:
		return nil, p.errorf("expected expression, found %q", p.tok.text)
	}
}

// parseGroupGraphPattern parses { triples | FILTER | { SELECT ... } ... }.
func (p *parser) parseGroupGraphPattern() (*GroupGraphPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	g := &GroupGraphPattern{}
	for {
		switch {
		case p.isPunct("}"):
			return g, p.advance()
		case p.isPunct("{"):
			// Nested group: either a sub-SELECT or (unsupported) group.
			if err := p.advance(); err != nil {
				return nil, err
			}
			if !p.isIdent("SELECT") {
				return nil, p.errorf("only sub-SELECT groups are supported")
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			g.SubSelects = append(g.SubSelects, sub)
			// optional dot after a group
			if p.isPunct(".") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		case p.isIdent("OPTIONAL"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			block, err := p.parseOptionalBlock()
			if err != nil {
				return nil, err
			}
			g.Optionals = append(g.Optionals, block)
			if p.isPunct(".") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		case p.isIdent("FILTER"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			f, err := p.parseFilter()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, *f)
			if p.isPunct(".") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		default:
			if err := p.parseTriplesBlock(g); err != nil {
				return nil, err
			}
		}
	}
}

// parseOptionalBlock parses OPTIONAL's { triples } body.
func (p *parser) parseOptionalBlock() ([]TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	inner := &GroupGraphPattern{}
	for !p.isPunct("}") {
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unterminated OPTIONAL block")
		}
		if p.isIdent("FILTER") || p.isIdent("OPTIONAL") || p.isPunct("{") {
			return nil, p.errorf("OPTIONAL blocks may contain only triple patterns in the analytical subset")
		}
		if err := p.parseTriplesBlock(inner); err != nil {
			return nil, err
		}
	}
	if len(inner.Triples) == 0 {
		return nil, p.errorf("empty OPTIONAL block")
	}
	return inner.Triples, p.advance()
}

// parseFilter parses either regex(?v, "pat"[, "flags"]) or (?v op value).
func (p *parser) parseFilter() (*Filter, error) {
	if p.isIdent("regex") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.tok.kind != tokVar {
			return nil, p.errorf("expected variable in regex()")
		}
		f := &Filter{Kind: FilterRegex, Var: p.tok.text}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errorf("expected pattern string in regex()")
		}
		f.Pattern = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokString {
				return nil, p.errorf("expected flags string in regex()")
			}
			f.Flags = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		return f, p.expectPunct(")")
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.tok.kind != tokVar {
		return nil, p.errorf("expected variable in FILTER comparison")
	}
	f := &Filter{Kind: FilterCompare, Var: p.tok.text}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokPunct || !isCompareOp(p.tok.text) {
		return nil, p.errorf("expected comparison operator, found %q", p.tok.text)
	}
	f.Op = p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokNumber:
		f.Value = p.tok.text
		f.IsNumeric = true
	case tokString:
		f.Value = p.tok.text
	default:
		return nil, p.errorf("expected literal comparand, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return f, p.expectPunct(")")
}

func isCompareOp(s string) bool {
	switch s {
	case "=", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// parseTriplesBlock parses subject (predicate object (, object)* ;)* .
func (p *parser) parseTriplesBlock(g *GroupGraphPattern) error {
	subj, err := p.parseNode(false)
	if err != nil {
		return err
	}
	for {
		pred, err := p.parseNode(true)
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseNode(false)
			if err != nil {
				return err
			}
			g.Triples = append(g.Triples, TriplePattern{S: subj, P: pred, O: obj})
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if p.isPunct(";") {
			if err := p.advance(); err != nil {
				return err
			}
			// allow trailing ';' before '.' or '}'
			if p.isPunct(".") || p.isPunct("}") {
				break
			}
			continue
		}
		break
	}
	if p.isPunct(".") {
		return p.advance()
	}
	return nil
}

// parseNode parses a variable, IRI, prefixed name, literal or number.
// In predicate position (isPredicate) the keyword `a` expands to rdf:type.
func (p *parser) parseNode(isPredicate bool) (Node, error) {
	switch p.tok.kind {
	case tokVar:
		n := V(p.tok.text)
		return n, p.advance()
	case tokIRI:
		n := C(rdf.NewIRI(p.tok.text))
		return n, p.advance()
	case tokPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return Node{}, err
		}
		n := C(rdf.NewIRI(iri))
		return n, p.advance()
	case tokString:
		if isPredicate {
			return Node{}, p.errorf("literal in predicate position")
		}
		n := C(rdf.NewLiteral(p.tok.text))
		return n, p.advance()
	case tokNumber:
		if isPredicate {
			return Node{}, p.errorf("number in predicate position")
		}
		n := C(rdf.NewLiteral(p.tok.text))
		return n, p.advance()
	case tokIdent:
		if isPredicate && keywordEq(p.tok.text, "a") {
			n := C(rdf.TypeTerm)
			return n, p.advance()
		}
		return Node{}, p.errorf("unexpected identifier %q in triple pattern", p.tok.text)
	default:
		return Node{}, p.errorf("expected term, found %s %q", p.tok.kind, p.tok.text)
	}
}

func (p *parser) expandPName(pname string) (string, error) {
	i := indexByte(pname, ':')
	prefix, local := pname[:i], pname[i+1:]
	ns, ok := p.prefixes[prefix]
	if !ok {
		return "", p.errorf("undeclared prefix %q", prefix)
	}
	return ns + local, nil
}
