package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
	"unicode/utf8"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	if c := s.StartChild(KindPhase, "map"); c != nil {
		t.Fatalf("nil.StartChild = %v, want nil", c)
	}
	s.End()
	s.EndWith(time.Second)
	s.AddRecords(5)
	s.AddBytes(7)
	if sn := s.Snapshot(); sn != nil {
		t.Fatalf("nil.Snapshot = %v, want nil", sn)
	}
	var sn *Snapshot
	if got := sn.Tree(); got != "" {
		t.Fatalf("nil.Tree = %q, want empty", got)
	}
	sn.Walk(func(*Snapshot) { t.Fatal("nil.Walk visited a node") })
}

func TestFromContextAbsent(t *testing.T) {
	ctx := context.Background()
	if s := FromContext(ctx); s != nil {
		t.Fatalf("FromContext on bare ctx = %v, want nil", s)
	}
	if s := StartChild(ctx, KindPhase, "map"); s != nil {
		t.Fatalf("StartChild on bare ctx = %v, want nil", s)
	}
	if Enabled(ctx) {
		t.Fatal("Enabled on bare ctx = true")
	}
	if !Enabled(Enable(ctx)) {
		t.Fatal("Enabled(Enable(ctx)) = false")
	}
}

// TestDisabledPathAllocationFree pins the no-op cost: with no span in the
// context, the per-task instrumentation pattern (lookup + guarded child +
// counters) must not allocate.
func TestDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		parent := FromContext(ctx)
		if parent != nil {
			c := parent.StartChild(KindTask, fmt.Sprintf("task-%d", 3))
			c.AddRecords(1)
			c.End()
		}
		parent.AddRecords(1)
		parent.AddBytes(10)
		parent.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f times per op, want 0", allocs)
	}
}

// TestConcurrentSiblingAssembly mirrors the parallel reduce phase: many
// workers attach sibling spans and bump counters on a shared parent. Run
// under -race this is the concurrency test the issue asks for.
func TestConcurrentSiblingAssembly(t *testing.T) {
	root := New(KindPhase, "reduce")
	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := root.StartChild(KindTask, fmt.Sprintf("part-%d-%d", w, i))
				c.AddRecords(2)
				c.AddBytes(3)
				root.AddRecords(1)
				c.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	sn := root.Snapshot()
	if len(sn.Children) != workers*perWorker {
		t.Fatalf("got %d children, want %d", len(sn.Children), workers*perWorker)
	}
	if sn.Records != workers*perWorker {
		t.Fatalf("parent records = %d, want %d", sn.Records, workers*perWorker)
	}
	var recs, bytes int64
	for _, c := range sn.Children {
		recs += c.Records
		bytes += c.Bytes
	}
	if recs != 2*workers*perWorker || bytes != 3*workers*perWorker {
		t.Fatalf("child sums records=%d bytes=%d, want %d/%d",
			recs, bytes, 2*workers*perWorker, 3*workers*perWorker)
	}
}

func TestEndFirstWins(t *testing.T) {
	s := New(KindCycle, "c")
	s.EndWith(5 * time.Millisecond)
	s.EndWith(9 * time.Millisecond)
	s.End()
	if got := s.Snapshot().Wall(); got != 5*time.Millisecond {
		t.Fatalf("wall = %v, want 5ms", got)
	}
}

func TestSnapshotTreeAndFind(t *testing.T) {
	root := New(KindQuery, "rapidanalytics")
	cyc := root.StartChild(KindCycle, "composite-join0")
	mp := cyc.StartChild(KindPhase, "map")
	mp.AddRecords(600)
	mp.AddBytes(45000)
	mp.EndWith(2100 * time.Microsecond)
	red := cyc.StartChild(KindPhase, "reduce")
	red.EndWith(1500 * time.Microsecond)
	cyc.EndWith(4200 * time.Microsecond)
	root.EndWith(12410 * time.Microsecond)

	sn := root.Snapshot()
	if got := sn.Find(KindPhase, "map"); got == nil || got.Records != 600 {
		t.Fatalf("Find(map) = %+v, want records=600", got)
	}
	if got := sn.Find(KindPhase, "missing"); got != nil {
		t.Fatalf("Find(missing) = %+v, want nil", got)
	}
	var visited []string
	sn.Walk(func(n *Snapshot) { visited = append(visited, n.Name) })
	want := []string{"rapidanalytics", "composite-join0", "map", "reduce"}
	if len(visited) != len(want) {
		t.Fatalf("Walk visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("Walk visited %v, want %v", visited, want)
		}
	}

	tree := sn.Tree()
	wantTree := "" +
		"query rapidanalytics      wall=12.41ms\n" +
		"└─ cycle composite-join0  wall=4.20ms\n" +
		"   ├─ phase map           wall=2.10ms  records=600  bytes=45000\n" +
		"   └─ phase reduce        wall=1.50ms\n"
	if tree != wantTree {
		t.Fatalf("Tree mismatch:\ngot:\n%s\nwant:\n%s", tree, wantTree)
	}

	// Every label column must be padded to the same visual width regardless
	// of depth, name length, or multibyte box-drawing prefixes.
	var wallCols []int
	for _, line := range strings.Split(strings.TrimRight(tree, "\n"), "\n") {
		wallCols = append(wallCols, utf8.RuneCountInString(line[:strings.Index(line, "wall=")]))
	}
	for _, c := range wallCols {
		if c != wallCols[0] {
			t.Fatalf("wall= columns misaligned: %v\n%s", wallCols, tree)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	root := New(KindQuery, "q")
	root.StartChild(KindCycle, "c1").EndWith(time.Millisecond)
	root.EndWith(2 * time.Millisecond)
	raw, err := root.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "q" || len(back.Children) != 1 || back.Children[0].Name != "c1" {
		t.Fatalf("round trip = %+v", back)
	}
	if back.WallNs != int64(2*time.Millisecond) {
		t.Fatalf("wallNs = %d", back.WallNs)
	}
}
