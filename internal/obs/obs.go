// Package obs is the execution observability layer: a zero-dependency
// hierarchical span tracer threaded through query execution via
// context.Context. A span tree mirrors the engine's execution hierarchy —
// query → planner → MapReduce cycle → map/shuffle-sort/reduce phase → NTGA
// (or relational) operator → task/partition — and every span carries a wall
// time plus record and byte counters.
//
// Tracing is strictly opt-in. When no span is bound to the context, every
// entry point returns a nil *Span, and all *Span methods are nil-safe
// no-ops, so the MapReduce hot path stays allocation-free with tracing
// disabled (instrumentation sites that would format a span name must guard
// on the parent being non-nil). Counter updates are atomic and child
// attachment is mutex-protected, so concurrent siblings — parallel map
// tasks, parallel reduce partitions — may record into one tree freely.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Kind classifies a span's level in the execution hierarchy.
type Kind string

// The span kinds, from root to leaf.
const (
	// KindQuery is the root span of one query execution.
	KindQuery Kind = "query"
	// KindPlanner covers plan construction (overlap detection, composite
	// rewriting, join ordering) inside an engine.
	KindPlanner Kind = "planner"
	// KindCycle covers one MapReduce cycle (one mapred.Job run).
	KindCycle Kind = "cycle"
	// KindPhase covers one execution phase of a cycle: map, shuffle-sort or
	// reduce.
	KindPhase Kind = "phase"
	// KindOperator covers the logical operator a phase executes (e.g.
	// TG_AlphaJoin, TG_AgJ.map, group-agg).
	KindOperator Kind = "operator"
	// KindTask covers one map task or one reduce/shuffle partition.
	KindTask Kind = "task"
	// KindIO covers DFS materialisation of a cycle's output.
	KindIO Kind = "io"
)

// Span is one node of the execution trace. Create roots with New and
// children with StartChild; a nil *Span is a valid no-op receiver for every
// method, which is what keeps disabled tracing free.
type Span struct {
	kind  Kind
	name  string
	start time.Time

	wallNs  atomic.Int64
	records atomic.Int64
	bytes   atomic.Int64

	mu       sync.Mutex
	children []*Span
}

// New starts a root span.
func New(kind Kind, name string) *Span {
	return &Span{kind: kind, name: name, start: time.Now()}
}

// StartChild starts and attaches a child span. On a nil receiver it returns
// nil without allocating; callers that compute span names (fmt.Sprintf)
// must therefore guard on the parent being non-nil to keep the disabled
// path allocation-free.
func (s *Span) StartChild(kind Kind, name string) *Span {
	if s == nil {
		return nil
	}
	c := New(kind, name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End records the span's wall time as the elapsed time since it started.
// The first of End/EndWith wins; later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.wallNs.CompareAndSwap(0, int64(time.Since(s.start)))
}

// EndWith records an explicitly measured wall time, for spans that must
// agree exactly with an independently measured duration (the MapReduce
// phase walls in Metrics). The first of End/EndWith wins.
func (s *Span) EndWith(d time.Duration) {
	if s == nil {
		return
	}
	s.wallNs.CompareAndSwap(0, int64(d))
}

// AddRecords adds to the span's record counter.
func (s *Span) AddRecords(n int64) {
	if s == nil {
		return
	}
	s.records.Add(n)
}

// AddBytes adds to the span's byte counter.
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.bytes.Add(n)
}

// ctxKey carries the current parent span in a context.
type ctxKey struct{}

// enableKey marks a context as requesting trace capture (set by the public
// API before a root span exists).
type enableKey struct{}

// NewContext binds a span to the context as the parent for StartChild.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span bound to the context, or nil when tracing is
// off. The nil return allocates nothing.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartChild starts a child of the context's span (nil, for free, when the
// context carries none).
func StartChild(ctx context.Context, kind Kind, name string) *Span {
	return FromContext(ctx).StartChild(kind, name)
}

// Enable marks the context as requesting trace capture. The execution entry
// point (Store.run) consults Enabled and creates the root span.
func Enable(ctx context.Context) context.Context {
	return context.WithValue(ctx, enableKey{}, true)
}

// Enabled reports whether Enable was called on the context.
func Enabled(ctx context.Context) bool {
	on, _ := ctx.Value(enableKey{}).(bool)
	return on
}

// Snapshot is an immutable copy of a span tree, safe to retain, render and
// serialise after the execution that produced it has finished.
type Snapshot struct {
	// Kind is the span's level in the execution hierarchy.
	Kind Kind `json:"kind"`
	// Name identifies the span within its level (job name, phase name,
	// operator name).
	Name string `json:"name"`
	// WallNs is the span's wall time in nanoseconds.
	WallNs int64 `json:"wallNs"`
	// Records is the span's record counter (semantics per kind: consumed for
	// phases and tasks, produced for operators and io spans).
	Records int64 `json:"records,omitempty"`
	// Bytes is the span's byte counter (same orientation as Records).
	Bytes int64 `json:"bytes,omitempty"`
	// Children are the nested spans, in attachment order.
	Children []*Snapshot `json:"children,omitempty"`
}

// Snapshot deep-copies the span tree. Spans still being written to by other
// goroutines snapshot their counters atomically, but the tree structure
// should be quiescent (the job finished) when it is taken.
func (s *Span) Snapshot() *Snapshot {
	if s == nil {
		return nil
	}
	sn := &Snapshot{
		Kind:    s.kind,
		Name:    s.name,
		WallNs:  s.wallNs.Load(),
		Records: s.records.Load(),
		Bytes:   s.bytes.Load(),
	}
	s.mu.Lock()
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		sn.Children = append(sn.Children, c.Snapshot())
	}
	return sn
}

// Wall returns the span's wall time as a duration.
func (sn *Snapshot) Wall() time.Duration { return time.Duration(sn.WallNs) }

// Walk visits the snapshot and every descendant in depth-first order.
func (sn *Snapshot) Walk(fn func(*Snapshot)) {
	if sn == nil {
		return
	}
	fn(sn)
	for _, c := range sn.Children {
		c.Walk(fn)
	}
}

// Find returns the first descendant (depth-first, including sn itself) with
// the given kind and name, or nil.
func (sn *Snapshot) Find(kind Kind, name string) *Snapshot {
	var out *Snapshot
	sn.Walk(func(n *Snapshot) {
		if out == nil && n.Kind == kind && n.Name == name {
			out = n
		}
	})
	return out
}

// JSON serialises the snapshot, indented, for -trace-out files and debug
// endpoints.
func (sn *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(sn, "", "  ")
}

// Tree renders the snapshot as an indented tree with aligned wall/record/
// byte columns:
//
//	query rapidanalytics        wall=12.41ms
//	├─ cycle composite-join0    wall=4.20ms  records=840  bytes=31200
//	│  └─ phase map             wall=2.10ms  records=600  bytes=45000
//	└─ ...
func (sn *Snapshot) Tree() string {
	if sn == nil {
		return ""
	}
	type line struct {
		label string
		node  *Snapshot
	}
	var lines []line
	var rec func(n *Snapshot, prefix string, childPrefix string)
	rec = func(n *Snapshot, prefix, childPrefix string) {
		lines = append(lines, line{label: prefix + string(n.Kind) + " " + n.Name, node: n})
		for i, c := range n.Children {
			if i == len(n.Children)-1 {
				rec(c, childPrefix+"└─ ", childPrefix+"   ")
			} else {
				rec(c, childPrefix+"├─ ", childPrefix+"│  ")
			}
		}
	}
	rec(sn, "", "")
	// Pad by rune count, not bytes: the box-drawing prefixes are multibyte
	// but occupy one column each.
	width := 0
	for _, l := range lines {
		if n := utf8.RuneCountInString(l.label); n > width {
			width = n
		}
	}
	var b strings.Builder
	for _, l := range lines {
		pad := width - utf8.RuneCountInString(l.label)
		fmt.Fprintf(&b, "%s%s  wall=%s", l.label, strings.Repeat(" ", pad), fmtWall(l.node.WallNs))
		if l.node.Records != 0 {
			fmt.Fprintf(&b, "  records=%d", l.node.Records)
		}
		if l.node.Bytes != 0 {
			fmt.Fprintf(&b, "  bytes=%d", l.node.Bytes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// fmtWall renders a nanosecond wall time as fixed-point milliseconds, the
// unit every other trace surface uses.
func fmtWall(ns int64) string {
	return fmt.Sprintf("%.2fms", float64(ns)/float64(time.Millisecond))
}
