package stats

import (
	"encoding/json"
	"fmt"

	"rapidanalytics/internal/dfs"
)

// FileName returns the DFS file a dataset's catalog is serialised to,
// alongside the dataset's vp/ and tg/ layouts.
func FileName(dataset string) string { return dataset + "/stats" }

// Write serialises the catalog to the DFS as a single JSON record, so the
// disk backend persists statistics with the physical layouts (uncompressed:
// the catalog is metadata, not table data).
func Write(fs *dfs.FS, dataset string, c *Catalog) error {
	rec, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("stats: encoding catalog for %s: %w", dataset, err)
	}
	w, err := fs.Create(FileName(dataset), 1)
	if err != nil {
		return fmt.Errorf("stats: writing catalog for %s: %w", dataset, err)
	}
	w.WriteOwned(rec)
	if err := w.Close(); err != nil {
		return fmt.Errorf("stats: writing catalog for %s: %w", dataset, err)
	}
	return nil
}

// Read loads a catalog previously serialised with Write.
func Read(fs *dfs.FS, dataset string) (*Catalog, error) {
	f, err := fs.Open(FileName(dataset))
	if err != nil {
		return nil, fmt.Errorf("stats: opening catalog for %s: %w", dataset, err)
	}
	defer f.Close()
	recs, err := f.AllRecords()
	if err != nil {
		return nil, fmt.Errorf("stats: reading catalog for %s: %w", dataset, err)
	}
	if len(recs) != 1 {
		return nil, fmt.Errorf("stats: catalog for %s has %d records, want 1", dataset, len(recs))
	}
	c := &Catalog{}
	if err := json.Unmarshal(recs[0], c); err != nil {
		return nil, fmt.Errorf("stats: decoding catalog for %s: %w", dataset, err)
	}
	return c, nil
}
