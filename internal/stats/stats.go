// Package stats collects the load-time statistics catalog the cost-based
// planner consumes: per-predicate triple counts with distinct subject/object
// counts, and characteristic sets — the star-shaped co-occurrence classes of
// the triplegroup store — with per-property triple totals. The catalog is
// built in one pass over the graph during engine.Load (alongside the Dict
// build), serialised through the DFS so the disk backend persists it with
// the physical layouts, and read by the estimator in this package to
// predict triple-pattern, star and join cardinalities (the selectivity
// framework of Schmidt et al., "Foundations of SPARQL Query Optimization").
package stats

import (
	"encoding/json"
	"hash/fnv"
	"sort"
	"strings"

	"rapidanalytics/internal/rdf"
)

// PredStat summarises one predicate: how many triples carry it and how many
// distinct subjects/objects those triples touch. In Schmidt et al. notation
// these are |t(p)|, |dom(p)| and |range(p)|.
type PredStat struct {
	// Count is the number of triples with this predicate.
	Count int64 `json:"count"`
	// DistinctSubj is the number of distinct subjects among those triples.
	DistinctSubj int64 `json:"distinctSubj"`
	// DistinctObj is the number of distinct objects among those triples.
	DistinctObj int64 `json:"distinctObj"`
}

// CharSet is one characteristic set: the set of subjects whose triples carry
// exactly this combination of equivalence-class keys (the same keys the
// triplegroup store shards on — "type="+object for rdf:type, else the
// property IRI). PropCounts holds the total triples per key across the
// set's subjects, so PropCounts[k]/Subjects is the average fan-out of k
// within the set.
type CharSet struct {
	// Props are the set's equivalence-class keys, sorted.
	Props []string `json:"props"`
	// Subjects is the number of subjects in the set.
	Subjects int64 `json:"subjects"`
	// PropCounts maps each key to the total triples the set's subjects hold
	// for it.
	PropCounts map[string]int64 `json:"propCounts"`
}

// Has reports whether the set carries the equivalence-class key.
func (cs *CharSet) Has(key string) bool {
	for _, p := range cs.Props {
		if p == key {
			return true
		}
	}
	return false
}

// Catalog is the full statistics catalog of one loaded dataset.
type Catalog struct {
	// Triples is the graph size |G|.
	Triples int64 `json:"triples"`
	// Preds maps property IRIs to their predicate statistics.
	Preds map[string]PredStat `json:"preds"`
	// Sets are the characteristic sets, sorted by their key lists.
	Sets []CharSet `json:"sets"`
	// Version is a content hash of the catalog, folded into plan-cache keys
	// so cached plans do not survive statistics drift.
	Version uint64 `json:"version"`
}

// ECKey returns the equivalence-class key of a (predicate, object-key)
// pair, mirroring the triplegroup store's sharding key: rdf:type triples
// class by their object, every other predicate by its IRI.
func ECKey(prop, objKey string) string {
	if prop == rdf.RDFType {
		return "type=" + objKey
	}
	return prop
}

// Collect builds the catalog in a single pass over the graph: predicate
// counts with distinct subject/object sets, and subjects grouped into
// characteristic sets by the equivalence-class keys they carry.
func Collect(g *rdf.Graph) *Catalog {
	type predAgg struct {
		count int64
		subj  map[string]struct{}
		obj   map[string]struct{}
	}
	preds := map[string]*predAgg{}
	perSubject := map[string]map[string]int64{} // subject key -> EC key -> triples
	for _, t := range g.Triples {
		sk := t.Subject.Key()
		pa := preds[t.Property.Value]
		if pa == nil {
			pa = &predAgg{subj: map[string]struct{}{}, obj: map[string]struct{}{}}
			preds[t.Property.Value] = pa
		}
		pa.count++
		pa.subj[sk] = struct{}{}
		pa.obj[t.Object.Key()] = struct{}{}
		m := perSubject[sk]
		if m == nil {
			m = map[string]int64{}
			perSubject[sk] = m
		}
		m[ECKey(t.Property.Value, t.Object.Key())]++
	}

	c := &Catalog{Triples: int64(g.Len()), Preds: make(map[string]PredStat, len(preds))}
	for p, pa := range preds {
		c.Preds[p] = PredStat{
			Count:        pa.count,
			DistinctSubj: int64(len(pa.subj)),
			DistinctObj:  int64(len(pa.obj)),
		}
	}
	sets := map[string]*CharSet{}
	for _, m := range perSubject {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		id := strings.Join(keys, "\x00")
		cs := sets[id]
		if cs == nil {
			cs = &CharSet{Props: keys, PropCounts: make(map[string]int64, len(m))}
			sets[id] = cs
		}
		cs.Subjects++
		for k, n := range m {
			cs.PropCounts[k] += n
		}
	}
	ids := make([]string, 0, len(sets))
	for id := range sets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	c.Sets = make([]CharSet, len(ids))
	for i, id := range ids {
		c.Sets[i] = *sets[id]
	}
	c.Version = c.hash()
	return c
}

// hash computes the catalog's content hash over a canonical rendering.
func (c *Catalog) hash() uint64 {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	// Maps need deterministic order; encoding/json sorts map keys, so the
	// struct encodes canonically as long as Sets are sorted (Collect and
	// Read both keep them sorted).
	v := c.Version
	c.Version = 0
	_ = enc.Encode(c)
	c.Version = v
	return h.Sum64()
}

// Pred returns the statistics of a predicate (the zero PredStat when the
// predicate does not occur in the data).
func (c *Catalog) Pred(p string) PredStat { return c.Preds[p] }
