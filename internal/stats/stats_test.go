package stats

import (
	"fmt"
	"reflect"
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/sparql"
)

const ex = "http://ex/"

// uniformGraph builds a perfectly uniform graph of n subjects: every S_i
// has one type T, one p-edge to a unique O_i, one q-edge to one of exactly
// four shared Q objects (round-robin, so each Q has n/4 subjects), and
// three r-literals; every O_i has one m-literal. On this graph the
// estimator's uniformity and independence assumptions hold exactly.
func uniformGraph(n int) *rdf.Graph {
	g := &rdf.Graph{}
	typeT := rdf.NewIRI(ex + "T")
	p := rdf.NewIRI(ex + "p")
	q := rdf.NewIRI(ex + "q")
	r := rdf.NewIRI(ex + "r")
	m := rdf.NewIRI(ex + "m")
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("%sS%d", ex, i))
		o := rdf.NewIRI(fmt.Sprintf("%sO%d", ex, i))
		g.Add(
			rdf.T(s, rdf.TypeTerm, typeT),
			rdf.T(s, p, o),
			rdf.T(s, q, rdf.NewIRI(fmt.Sprintf("%sQ%d", ex, i%4))),
		)
		for k := 0; k < 3; k++ {
			g.Add(rdf.T(s, r, rdf.NewLiteral(fmt.Sprintf("r %d %d", i, k))))
		}
		g.Add(rdf.T(o, m, rdf.NewLiteral(fmt.Sprintf("m %d", i))))
	}
	return g
}

func tp(s string, p rdf.Term, o sparql.Node) sparql.TriplePattern {
	return sparql.TriplePattern{S: sparql.V(s), P: sparql.C(p), O: o}
}

func pattern(t *testing.T, tps ...sparql.TriplePattern) *algebra.GraphPattern {
	t.Helper()
	gp, err := algebra.BuildGraphPattern(&sparql.GroupGraphPattern{Triples: tps})
	if err != nil {
		t.Fatalf("BuildGraphPattern: %v", err)
	}
	return gp
}

func estimatorFor(cat *Catalog, gp *algebra.GraphPattern, rows bool) *Estimator {
	refs := make([][]algebra.PropRef, len(gp.Stars))
	for i, st := range gp.Stars {
		refs[i] = st.Props()
	}
	return NewEstimator(cat, refs, rows)
}

func TestCollectCatalog(t *testing.T) {
	g := uniformGraph(120)
	cat := Collect(g)
	if cat.Triples != int64(120*7) {
		t.Errorf("Triples = %d, want %d", cat.Triples, 120*7)
	}
	ps := cat.Pred(ex + "p")
	if ps.Count != 120 || ps.DistinctSubj != 120 || ps.DistinctObj != 120 {
		t.Errorf("p stat = %+v, want 120/120/120", ps)
	}
	if got := cat.Pred(ex + "q").DistinctObj; got != 4 {
		t.Errorf("q distinct objects = %d, want 4", got)
	}
	// Two characteristic sets: the S subjects {type=T, p, q, r} and the O
	// subjects {m}.
	if len(cat.Sets) != 2 {
		t.Fatalf("characteristic sets = %d, want 2", len(cat.Sets))
	}
	for _, cs := range cat.Sets {
		if cs.Subjects != 120 {
			t.Errorf("set %v has %d subjects, want 120", cs.Props, cs.Subjects)
		}
		if cs.Has(ex+"r") && cs.PropCounts[ex+"r"] != 360 {
			t.Errorf("r count in S set = %d, want 360", cs.PropCounts[ex+"r"])
		}
	}
	if cat.Version == 0 {
		t.Error("catalog version is zero")
	}
}

// TestStarCardExactOnUniform: on a uniform graph the estimates are exact —
// full stars, constant-object selections (1/distinct), and relational-mode
// fan-out multiplication.
func TestStarCardExactOnUniform(t *testing.T) {
	g := uniformGraph(120)
	cat := Collect(g)
	typeT := rdf.NewIRI(ex + "T")

	full := pattern(t,
		tp("s", rdf.TypeTerm, sparql.C(typeT)),
		tp("s", rdf.NewIRI(ex+"p"), sparql.V("o")),
		tp("s", rdf.NewIRI(ex+"q"), sparql.V("qv")),
	)
	if got := estimatorFor(cat, full, false).StarCard(0); got != 120 {
		t.Errorf("full star card = %v, want exactly 120", got)
	}

	constObj := pattern(t,
		tp("s", rdf.TypeTerm, sparql.C(typeT)),
		tp("s", rdf.NewIRI(ex+"q"), sparql.C(rdf.NewIRI(ex+"Q0"))),
	)
	// Exactly n/4 subjects carry each Q object, and 1/distinct(q) predicts
	// precisely that.
	if got := estimatorFor(cat, constObj, false).StarCard(0); got != 30 {
		t.Errorf("const-object star card = %v, want exactly 30", got)
	}

	fanout := pattern(t,
		tp("s", rdf.NewIRI(ex+"r"), sparql.V("rv")),
		tp("s", rdf.NewIRI(ex+"q"), sparql.V("qv")),
	)
	if got := estimatorFor(cat, fanout, false).StarCard(0); got != 120 {
		t.Errorf("triplegroup-mode star card = %v, want 120 subjects", got)
	}
	if got := estimatorFor(cat, fanout, true).StarCard(0); got != 360 {
		t.Errorf("relational-mode star card = %v, want 360 rows (3x r fan-out)", got)
	}
}

// TestJoinCardUniformAndBounded: the subject-object chain join is exact on
// the 1:1 uniform graph, and the independence estimate never exceeds the
// cross product.
func TestJoinCardUniformAndBounded(t *testing.T) {
	g := uniformGraph(120)
	cat := Collect(g)
	gp := pattern(t,
		tp("s", rdf.NewIRI(ex+"p"), sparql.V("o")),
		tp("o", rdf.NewIRI(ex+"m"), sparql.V("x")),
	)
	if len(gp.Joins) != 1 {
		t.Fatalf("joins = %d, want 1", len(gp.Joins))
	}
	est := estimatorFor(cat, gp, false)
	l, r := est.StarCard(0), est.StarCard(1)
	got := est.JoinCard(l, r, gp.Joins[0])
	if got != 120 {
		t.Errorf("join card = %v, want exactly 120 (1:1 join)", got)
	}
	if got > l*r {
		t.Errorf("join card %v exceeds cross product %v", got, l*r)
	}
	// Flipped argument order must keep the bound as well.
	if got := est.JoinCard(r, l, gp.Joins[0]); got > l*r {
		t.Errorf("flipped join card %v exceeds cross product %v", got, l*r)
	}
}

// TestSerializationRoundTripAndVersion: the catalog survives the blockstore
// boundary bit-for-bit, its version is stable across re-collections of the
// same graph, and any data change moves it.
func TestSerializationRoundTripAndVersion(t *testing.T) {
	g := uniformGraph(60)
	cat := Collect(g)
	fs := dfs.New()
	if err := Write(fs, "d", cat); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(fs, "d")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(cat, got) {
		t.Errorf("round trip changed the catalog:\nwrote %+v\nread  %+v", cat, got)
	}
	if again := Collect(g); again.Version != cat.Version {
		t.Errorf("version not stable: %d vs %d", cat.Version, again.Version)
	}
	g.Add(rdf.T(rdf.NewIRI(ex+"S0"), rdf.NewIRI(ex+"extra"), rdf.NewLiteral("drift")))
	if drifted := Collect(g); drifted.Version == cat.Version {
		t.Error("version unchanged after the graph drifted")
	}
}

func TestPartitionsForClamps(t *testing.T) {
	cases := []struct {
		predicted float64
		want      int
	}{{0, 1}, {4095, 1}, {4096, 1}, {5 * 4096, 5}, {1e9, 16}}
	for _, c := range cases {
		if got := PartitionsFor(c.predicted); got != c.want {
			t.Errorf("PartitionsFor(%v) = %d, want %d", c.predicted, got, c.want)
		}
	}
}
