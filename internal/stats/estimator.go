package stats

import (
	"math"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/rdf"
)

// Estimator predicts star and join cardinalities for one decomposed graph
// pattern from a dataset's statistics catalog. It implements
// algebra.CardEstimator. Two output units are supported, selected by rows:
//
//   - triplegroup mode (rows=false): a star's cardinality is the number of
//     matching subjects — what the NTGA engines shuffle, one annotated
//     triplegroup per subject;
//   - relational mode (rows=true): a star's cardinality is the number of
//     result rows after the star's self-joins — variable-object properties
//     multiply by their average fan-out within each characteristic set, the
//     unit the Hive engines materialise.
//
// All per-star quantities are precomputed at construction; the StarCard /
// JoinCard calls on the per-cycle execution path are arithmetic only.
type Estimator struct {
	cat  *Catalog
	rows bool
	// card and subjects are indexed by star: predicted output cardinality
	// and predicted distinct matching subjects.
	card     []float64
	subjects []float64
	// objDistinct caches, per star, the minimum distinct-object count over
	// each join's carrying properties — resolved lazily per JoinCard call
	// from the catalog (cheap map lookups, no allocation).
}

// NewEstimator builds an estimator for a pattern whose stars require the
// given property references (StarPattern.Props for plain patterns,
// CompositeStar.PrimaryRefs for composite ones).
func NewEstimator(cat *Catalog, stars [][]algebra.PropRef, rows bool) *Estimator {
	e := &Estimator{
		cat:      cat,
		rows:     rows,
		card:     make([]float64, len(stars)),
		subjects: make([]float64, len(stars)),
	}
	for i, refs := range stars {
		e.subjects[i], e.card[i] = e.starStats(refs)
	}
	return e
}

// starStats computes a star's predicted distinct subjects and output
// cardinality: the sum over characteristic sets containing every required
// equivalence-class key of the set's subjects, scaled by 1/distinct(obj)
// for each non-type constant-object reference (uniformity assumption —
// Schmidt et al.'s sel(p=o) = 1/|range(p)|), and, in relational mode,
// multiplied by each variable-object property's average fan-out within the
// set (|t(p) ∩ set|/|set|).
func (e *Estimator) starStats(refs []algebra.PropRef) (subjects, card float64) {
	if len(refs) == 0 {
		// A star with no bound required property (pure unbound pattern)
		// matches every subject.
		for _, cs := range e.cat.Sets {
			subjects += float64(cs.Subjects)
		}
		return subjects, subjects
	}
	// Constant-object selectivity is set-independent; compute it once.
	sel := 1.0
	for _, r := range refs {
		if r.HasConstObj() && r.Prop != rdf.RDFType {
			sel /= math.Max(1, float64(e.cat.Preds[r.Prop].DistinctObj))
		}
	}
	for _, cs := range e.cat.Sets {
		match := true
		for _, r := range refs {
			if !cs.Has(ecKeyForRef(r)) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		s := float64(cs.Subjects) * sel
		subjects += s
		rows := s
		if e.rows {
			for _, r := range refs {
				if r.HasConstObj() {
					continue
				}
				rows *= float64(cs.PropCounts[ecKeyForRef(r)]) / float64(cs.Subjects)
			}
		}
		card += rows
	}
	return subjects, card
}

// ecKeyForRef mirrors store.ECKeyForRef: rdf:type references with constant
// objects prune on "type="+object, everything else on the property IRI.
func ecKeyForRef(r algebra.PropRef) string {
	if r.Prop == rdf.RDFType && r.HasConstObj() {
		return ECKey(r.Prop, r.Obj.Key())
	}
	return r.Prop
}

// StarCard implements algebra.CardEstimator: the predicted cardinality of
// one star's filtered scan output.
//
//rapid:hot
func (e *Estimator) StarCard(star int) float64 {
	if star < 0 || star >= len(e.card) {
		return 1
	}
	return math.Max(1, e.card[star])
}

// StarSubjects returns the predicted number of distinct subjects matching a
// star — the distinct-value count of its subject variable.
func (e *Estimator) StarSubjects(star int) float64 {
	if star < 0 || star >= len(e.subjects) {
		return 1
	}
	return math.Max(1, e.subjects[star])
}

// JoinCard implements algebra.CardEstimator: the predicted output
// cardinality of joining inputs of cardinality left and right on edge j,
// |L ⋈ R| = |L|·|R| / max(d(L), d(R)) with d the distinct join-variable
// count at each endpoint — subjects for subject-role endpoints, the
// carrying properties' distinct objects for object-role endpoints
// (Schmidt et al.'s independence-based equi-join estimate).
//
//rapid:hot
func (e *Estimator) JoinCard(left, right float64, j algebra.Join) float64 {
	dl := e.endpointDistinct(j.Left, j.LeftRole, j.LeftProps)
	dr := e.endpointDistinct(j.Right, j.RightRole, j.RightProps)
	return left * right / math.Max(1, math.Max(dl, dr))
}

// endpointDistinct estimates the distinct join-variable values at one join
// endpoint.
//
//rapid:hot
func (e *Estimator) endpointDistinct(star int, role algebra.Role, props []algebra.PropRef) float64 {
	if role == algebra.RoleSubject {
		return e.StarSubjects(star)
	}
	d := math.Inf(1)
	for _, p := range props {
		if pd := float64(e.cat.Preds[p.Prop].DistinctObj); pd < d {
			d = pd
		}
	}
	if math.IsInf(d, 1) {
		return 1
	}
	return math.Max(1, d)
}

// PartitionsFor maps a predicted output cardinality onto a reduce partition
// count — the planner's reduce-worker-count choice. Roughly one partition
// per 4096 predicted rows, clamped to [1, 16] (the simulated reduce-task
// schedule still comes from the cost model; partitions shape execution
// parallelism only).
//
//rapid:hot
func PartitionsFor(predicted float64) int {
	p := int(predicted / 4096)
	if p < 1 {
		return 1
	}
	if p > 16 {
		return 16
	}
	return p
}
