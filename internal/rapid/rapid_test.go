package rapid

import (
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/refimpl"
	"rapidanalytics/internal/sparql"
)

func load(t *testing.T, g *rdf.Graph) (*mapred.Cluster, *engine.Dataset) {
	t.Helper()
	c := mapred.NewCluster(mapred.DefaultConfig())
	ds, err := engine.Load(c, "t", g)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return c, ds
}

func TestName(t *testing.T) {
	if New().Name() != "RAPID+ (Naive)" {
		t.Errorf("Name = %q", New().Name())
	}
}

// The defining property of NTGA evaluation: a star pattern of any width
// costs zero join cycles (triples arrive grouped by subject), so a
// single-star grouping query is 1 cycle and a two-star one is 2.
func TestStarWidthCostsNoCycles(t *testing.T) {
	g := &rdf.Graph{}
	s := rdf.NewIRI("http://e/s")
	for _, p := range []string{"a", "b", "c", "d", "e"} {
		g.Add(rdf.T(s, rdf.NewIRI("http://e/"+p), rdf.NewLiteral(p)))
	}
	q := sparql.MustParse(`PREFIX e: <http://e/>
SELECT (COUNT(?va) AS ?n) {
  ?s e:a ?va ; e:b ?vb ; e:c ?vc ; e:d ?vd ; e:e ?ve .
}`)
	aq, err := algebra.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	c, ds := load(t, g)
	res, wm, err := New().Execute(c, ds, aq)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Cycles() != 1 {
		t.Errorf("five-pattern star cycles = %d, want 1", wm.Cycles())
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "1" {
		t.Errorf("rows = %v", res.Rows)
	}
	want, _ := refimpl.Execute(g, aq)
	if diff := want.Diff(res); diff != "" {
		t.Errorf("differs: %s", diff)
	}
}

// RAPID+ does not use map-side hash pre-aggregation: its aggregation
// cycles emit one partial state per solution (the combiner merges them),
// so it emits at least as many map records as RAPIDAnalytics' hashed
// TG_AgJ would.
func TestNoHashPreAggregation(t *testing.T) {
	g := &rdf.Graph{}
	s := rdf.NewIRI("http://e/s")
	for i := 0; i < 20; i++ {
		g.Add(rdf.T(s, rdf.NewIRI("http://e/v"), rdf.NewLiteral("1")))
	}
	q := sparql.MustParse(`PREFIX e: <http://e/>
SELECT (COUNT(?v) AS ?n) { ?s e:v ?v . }`)
	aq, err := algebra.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	c, ds := load(t, g)
	run := engine.NewRunner(c, "tmp/a")
	fileNoHash, err := EvalSubquery(run, ds, aq.Subqueries[0], 0, false, true, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	emitsNoHash := run.WM.Jobs[len(run.WM.Jobs)-1].MapEmitRecords
	run2 := engine.NewRunner(c, "tmp/b")
	fileHash, err := EvalSubquery(run2, ds, aq.Subqueries[0], 0, true, true, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	emitsHash := run2.WM.Jobs[len(run2.WM.Jobs)-1].MapEmitRecords
	if emitsHash >= emitsNoHash {
		t.Errorf("hash agg emits %d, combiner path %d; want fewer", emitsHash, emitsNoHash)
	}
	// Same answers either way.
	a, err := engine.ReadResult(c.FS, fileNoHash, []string{"n"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.ReadResult(c.FS, fileHash, []string{"n"})
	if err != nil {
		t.Fatal(err)
	}
	if diff := a.Diff(b); diff != "" {
		t.Errorf("hash and combiner paths disagree: %s", diff)
	}
}
