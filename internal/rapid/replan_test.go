package rapid

import (
	"context"
	"fmt"
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/obs"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/refimpl"
	"rapidanalytics/internal/sparql"
)

// supernodeGraph plants one ProductType9 product holding 200 of the 219
// offers: the catalog says "one type9 subject", so the planner's predicted
// offers⋈type9 cardinality (~11) is wrong by ~18x against the observed 200
// — past the default re-plan ratio of 4.
func supernodeGraph() *rdf.Graph {
	g := &rdf.Graph{}
	p := func(n string) rdf.Term { return rdf.NewIRI("http://e/" + n) }
	vendors := []rdf.Term{p("V0"), p("V1"), p("V2")}
	for i, v := range vendors {
		g.Add(rdf.T(v, p("country"), rdf.NewLiteral(fmt.Sprintf("C%d", i))))
	}
	producers := []rdf.Term{p("M0"), p("M1"), p("M2"), p("M3")}
	for i, m := range producers {
		g.Add(rdf.T(m, p("label"), rdf.NewLiteral(fmt.Sprintf("m%d", i))))
	}
	offerID := 0
	addOffers := func(prod rdf.Term, n int) {
		for k := 0; k < n; k++ {
			off := p(fmt.Sprintf("Off%d", offerID))
			offerID++
			g.Add(
				rdf.T(off, p("product"), prod),
				rdf.T(off, p("price"), rdf.NewLiteral(fmt.Sprintf("%d", 10+offerID))),
				rdf.T(off, p("vendor"), vendors[offerID%len(vendors)]),
			)
		}
	}
	for i := 0; i < 20; i++ {
		prod := p(fmt.Sprintf("P%d", i))
		ptype := "T1"
		if i == 0 {
			ptype = "T9"
		}
		g.Add(
			rdf.T(prod, rdf.TypeTerm, p(ptype)),
			rdf.T(prod, p("producer"), producers[i%len(producers)]),
		)
		if i == 0 {
			addOffers(prod, 200)
		} else {
			addOffers(prod, 1)
		}
	}
	return g
}

const supernodeQuery = `PREFIX e: <http://e/>
SELECT ?c (COUNT(?pr) AS ?n) {
  ?off e:product ?p ; e:price ?pr ; e:vendor ?v .
  ?p a e:T9 ; e:producer ?mk .
  ?v e:country ?c .
  ?mk e:label ?ml .
} GROUP BY ?c`

func countReplans(sn *obs.Snapshot) int {
	n := 0
	sn.Walk(func(s *obs.Snapshot) {
		if s.Kind == obs.KindPlanner && s.Name == "re-plan" {
			n++
		}
	})
	return n
}

// TestBadEstimateTriggersExactlyOneReplan is the adaptivity regression:
// on the super-node graph the cost planner joins the (predicted-tiny) type9
// chain first, observes the 200-row blow-up at the offers join — the only
// mispredicted cycle — and re-plans exactly once, logging a "re-plan"
// planner span. Results must still match the oracle.
func TestBadEstimateTriggersExactlyOneReplan(t *testing.T) {
	g := supernodeGraph()
	q := sparql.MustParse(supernodeQuery)
	aq, err := algebra.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	c, ds := load(t, g)
	if ds.Stats == nil {
		t.Fatal("dataset loaded without a statistics catalog")
	}
	root := obs.New(obs.KindQuery, "replan-test")
	tc := c.WithContext(obs.NewContext(context.Background(), root))
	res, _, err := New().Execute(tc, ds, aq)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if got := countReplans(root.Snapshot()); got != 1 {
		t.Errorf("re-plan spans = %d, want exactly 1", got)
	}
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	if diff := want.Diff(res); diff != "" {
		t.Errorf("re-planned result differs from oracle: %s", diff)
	}
}

// TestNegativeRatioDisablesReplanning: a negative ratio keeps the
// cost-based join order but never re-plans mid-query.
func TestNegativeRatioDisablesReplanning(t *testing.T) {
	g := supernodeGraph()
	q := sparql.MustParse(supernodeQuery)
	aq, err := algebra.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	c, ds := load(t, g)
	e := New()
	e.ReplanRatio = -1
	root := obs.New(obs.KindQuery, "replan-test")
	tc := c.WithContext(obs.NewContext(context.Background(), root))
	res, _, err := e.Execute(tc, ds, aq)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if got := countReplans(root.Snapshot()); got != 0 {
		t.Errorf("re-plan spans = %d, want 0 with a negative ratio", got)
	}
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	if diff := want.Diff(res); diff != "" {
		t.Errorf("result differs from oracle: %s", diff)
	}
}
