// Package rapid implements RAPID+ (Naive): the NTGA baseline that evaluates
// each graph pattern of an analytical query sequentially — triplegroup
// formation and star filtering fused into map phases, one TG_Join cycle per
// inter-star edge, one grouping-aggregation cycle per subquery, and a final
// map-only join of the aggregated results (the paper's [25, 33]).
//
// Compared with the Hive engines, all of a star pattern's joins happen for
// free (triples arrive pre-grouped by subject); compared with
// RAPIDAnalytics, nothing is shared between the overlapping graph patterns.
package rapid

import (
	"fmt"
	"math"
	"sync/atomic"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/ntga"
	"rapidanalytics/internal/obs"
	"rapidanalytics/internal/sparql"
	"rapidanalytics/internal/stats"
	"rapidanalytics/internal/tgops"
)

var runSeq atomic.Int64

// DefaultReplanRatio is the estimate-vs-observed cardinality error ratio
// above which an executing join chain re-plans its remaining edges.
const DefaultReplanRatio = 4

// Engine is the RAPID+ (Naive) engine.
type Engine struct {
	// CostPlanner orders join chains by predicted cardinality from the
	// dataset's statistics catalog (and enables the adaptive re-plan hook)
	// instead of the fixed star-0-first heuristic.
	CostPlanner bool
	// ReplanRatio is the error ratio that triggers a mid-query re-plan;
	// <= 0 disables re-planning (ordering stays cost-based).
	ReplanRatio float64
}

// New returns the engine with the cost-based planner enabled.
func New() *Engine { return &Engine{CostPlanner: true, ReplanRatio: DefaultReplanRatio} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "RAPID+ (Naive)" }

// Execute implements engine.Engine.
func (e *Engine) Execute(c *mapred.Cluster, ds *engine.Dataset, aq *algebra.AnalyticalQuery) (*engine.Result, *mapred.WorkflowMetrics, error) {
	run := engine.NewRunner(c, fmt.Sprintf("tmp/rapid/%d", runSeq.Add(1)))
	var aggFiles []string
	for k, sq := range aq.Subqueries {
		file, err := evalSubquery(run, ds, sq, k, false, true, e.CostPlanner, e.ReplanRatio)
		if err != nil {
			return nil, run.WM, err
		}
		aggFiles = append(aggFiles, file)
	}
	return engine.FinishQuery(run, aq, aggFiles)
}

// evalSubquery evaluates one subquery over the triplegroup store: pattern
// matching via TG joins, then one grouping-aggregation cycle. hashAgg
// selects map-side hash pre-aggregation (RAPIDAnalytics' single-grouping
// path) over the plain combiner (RAPID+). cost and ratio configure the
// cost-based planner and its re-plan trigger.
func evalSubquery(run *engine.Runner, ds *engine.Dataset, sq *algebra.Subquery, k int, hashAgg, prune, cost bool, ratio float64) (string, error) {
	gp := sq.Pattern
	src, err := matchPattern(run, ds, gp, fmt.Sprintf("gp%d", k), nil, prune, cost, ratio)
	if err != nil {
		return "", err
	}
	spec := tgops.AggJoinSpec{
		ID:             k,
		GroupVars:      sq.GroupBy,
		Aggs:           sq.Aggs,
		TPs:            starTriples(gp),
		OptTPs:         starOptionals(gp),
		Having:         GroupedHaving(sq),
		BindingFilters: unboundFilters(gp),
	}
	out := run.Path(fmt.Sprintf("gp%d-agg", k))
	job := tgops.AggJoinJob(fmt.Sprintf("gp%d-agg", k), src, []tgops.AggJoinSpec{spec}, false, hashAgg, out)
	if err := run.Exec(job); err != nil {
		return "", err
	}
	return out, nil
}

// matchPattern runs the TG join chain for a plain (non-composite) graph
// pattern and returns the source of matched (annotated) triplegroups. A
// single-star pattern needs no join cycle: the filtered scan feeds the next
// operator directly. cp, when non-nil, enables α filtering during joins
// (used by RAPIDAnalytics; nil here); the α table is resolved into the
// dataset's data plane. With cost (and a statistics catalog on the
// dataset), the join order comes from predicted cardinalities and the
// chain executes adaptively.
func matchPattern(run *engine.Runner, ds *engine.Dataset, gp *algebra.GraphPattern, tag string, cp *algebra.CompositePattern, prune, cost bool, ratio float64) (tgops.Source, error) {
	scans := make([]tgops.Source, len(gp.Stars))
	for i, st := range gp.Stars {
		scans[i] = starScan(ds, i, st, gp.Filters, prune)
	}
	var ad *Adaptive
	ps := obs.StartChild(run.C.Context(), obs.KindPlanner, "join-order")
	var order []algebra.Join
	var err error
	if cost && ds.Stats != nil {
		refs := make([][]algebra.PropRef, len(gp.Stars))
		for i, st := range gp.Stars {
			refs[i] = st.Props()
		}
		est := stats.NewEstimator(ds.Stats, refs, false)
		order, err = algebra.JoinOrderCost(len(gp.Stars), gp.Joins, est)
		ad = &Adaptive{Est: est, ReplanRatio: ratio}
	} else {
		order, err = algebra.JoinOrder(len(gp.Stars), gp.Joins)
	}
	ps.End()
	if err != nil {
		return tgops.Source{}, err
	}
	// The matched source feeds exactly one TG_AgJ cycle per subquery chain,
	// so even the final join output streams.
	return JoinChain(run, scans, order, tag, ntga.ResolveAlpha(cp, ds.Dict), true, ad)
}

// Adaptive configures cost-based execution of a join chain: the estimator
// that ordered the edges, and the estimate-vs-observed error ratio above
// which the remaining edges re-order mid-query (<= 0 never re-plans).
type Adaptive struct {
	Est         algebra.CardEstimator
	ReplanRatio float64
}

// JoinChain executes the ordered TG (α-)join cycles; the accumulated side
// starts from order[0].Left (star 0 when there are no edges). Exported for
// the RAPIDAnalytics planner, which drives the same physical joins over a
// composite pattern. Non-final join outputs always stream — each feeds
// only the next cycle of the chain; streamFinal extends that to the last
// output, and must be false when the chain's result is read by more than
// one downstream cycle (sequential aggregation over shared matches).
//
// A non-nil ad makes the chain adaptive: each cycle's reduce partition
// count comes from the predicted output cardinality, and after each cycle
// the observed output cardinality (the job's OutputRecords — the obs
// per-operator counter source) is compared against the estimate; when the
// error ratio exceeds ad.ReplanRatio with edges still to run, the
// remaining edges re-order around the observed cardinality and the
// decision is logged as a planner span named "re-plan".
func JoinChain(run *engine.Runner, scans []tgops.Source, order []algebra.Join, tag string, alpha *ntga.AlphaTable, streamFinal bool, ad *Adaptive) (tgops.Source, error) {
	start := 0
	if len(order) > 0 {
		start = order[0].Left
	}
	acc := scans[start]
	var accCard float64
	var covered []bool
	if ad != nil {
		// The tail may re-order in place; never mutate the caller's slice.
		order = append([]algebra.Join(nil), order...)
		accCard = ad.Est.StarCard(start)
		covered = make([]bool, len(scans))
		covered[start] = true
	}
	for i := 0; i < len(order); i++ {
		edge := order[i]
		leftEp := tgops.Endpoint{Star: edge.Left, Role: edge.LeftRole, Props: edge.LeftProps}
		rightEp := tgops.Endpoint{Star: edge.Right, Role: edge.RightRole, Props: edge.RightProps}
		out := run.Path(fmt.Sprintf("%s-join%d", tag, i))
		job := tgops.AlphaJoinJob(
			fmt.Sprintf("%s-join%d", tag, i),
			tgops.JoinSide{Src: acc, Ep: leftEp},
			tgops.JoinSide{Src: scans[edge.Right], Ep: rightEp},
			alpha, out)
		job.StreamOutput = streamFinal || i < len(order)-1
		var predicted float64
		if ad != nil {
			predicted = ad.Est.JoinCard(accCard, ad.Est.StarCard(edge.Right), edge)
			job.Partitions = stats.PartitionsFor(predicted)
		}
		if err := run.Exec(job); err != nil {
			return tgops.Source{}, err
		}
		acc = tgops.Source{Files: []string{out}, Dict: acc.Dict}
		if ad != nil {
			covered[edge.Right] = true
			observed := float64(run.WM.Jobs[len(run.WM.Jobs)-1].OutputRecords)
			if i < len(order)-1 && replanNeeded(predicted, observed, ad.ReplanRatio) {
				rs := obs.StartChild(run.C.Context(), obs.KindPlanner, "re-plan")
				rs.AddRecords(int64(observed))
				tail := algebra.ReorderRemaining(covered, order[i+1:], math.Max(1, observed), ad.Est)
				copy(order[i+1:], tail)
				rs.End()
			}
			accCard = math.Max(1, observed)
		}
	}
	return acc, nil
}

// replanNeeded reports whether the estimate-vs-observed error ratio
// exceeds the configured threshold (in either direction; both cardinalities
// clamp to 1 so empty intermediates compare cleanly).
//
//rapid:hot
func replanNeeded(predicted, observed, ratio float64) bool {
	if ratio <= 0 {
		return false
	}
	p := math.Max(1, predicted)
	o := math.Max(1, observed)
	return p/o > ratio || o/p > ratio
}

// starScan builds the TG_OptGrpFilter-fused scan for one star of a plain
// pattern: every property is primary, and FILTERs on the star's object
// variables apply at triple level.
// starScan builds the TG_OptGrpFilter-fused scan for one star. With prune,
// inputs are limited to the equivalence classes that can match the star's
// bound primaries — the paper's pre-processing benefit ("rdf:type triples
// ... grouped based on prefixes"); without, every class is scanned.
func starScan(ds *engine.Dataset, star int, st *algebra.StarPattern, filters []sparql.Filter, prune bool) tgops.Source {
	prim := st.Props()
	spec := &tgops.ScanSpec{
		Star:    star,
		Prim:    prim,
		Opt:     st.OptionalRefs(),
		Filters: propFilters(st.Triples, filters),
		KeepAll: st.HasUnbound(),
	}
	files := ds.TG.FilesFor(prim)
	if !prune {
		files = ds.TG.AllFiles()
	}
	return tgops.Source{Files: files, Scan: spec, Dict: ds.Dict}
}

// propFilters maps FILTER constraints onto the bound properties whose
// objects bind the filtered variables. Filters on unbound-pattern variables
// are excluded: they apply per solution instead (unboundFilters).
func propFilters(tps []sparql.TriplePattern, filters []sparql.Filter) []tgops.PropFilter {
	var out []tgops.PropFilter
	for _, f := range filters {
		for _, tp := range tps {
			if !tp.P.IsVar && tp.O.IsVar && tp.O.Var == f.Var {
				out = append(out, tgops.PropFilter{Prop: tp.P.Term.Value, Filter: f})
			}
		}
	}
	return out
}

// unboundFilters selects the FILTER constraints that reference an
// unbound-property pattern's variables anywhere in the graph pattern.
func unboundFilters(gp *algebra.GraphPattern) []sparql.Filter {
	unboundVars := map[string]bool{}
	for _, st := range gp.Stars {
		for _, tp := range st.Triples {
			if !tp.P.IsVar {
				continue
			}
			unboundVars[tp.P.Var] = true
			if tp.O.IsVar {
				unboundVars[tp.O.Var] = true
			}
		}
	}
	var out []sparql.Filter
	for _, f := range gp.Filters {
		if unboundVars[f.Var] {
			out = append(out, f)
		}
	}
	return out
}

// starTriples groups a plain pattern's required triple patterns by star
// index, the form binding enumeration consumes.
func starTriples(gp *algebra.GraphPattern) map[int][]sparql.TriplePattern {
	out := map[int][]sparql.TriplePattern{}
	for i, st := range gp.Stars {
		out[i] = st.Triples
	}
	return out
}

// starOptionals groups a pattern's OPTIONAL triple patterns by star index.
func starOptionals(gp *algebra.GraphPattern) map[int][]sparql.TriplePattern {
	out := map[int][]sparql.TriplePattern{}
	for i, st := range gp.Stars {
		if len(st.Optionals) > 0 {
			out[i] = st.Optionals
		}
	}
	return out
}

// GroupedHaving returns the HAVING predicate applied during grouped
// aggregation; GROUP BY ALL subqueries defer it to the post-default-row
// repair (engine.ApplyGroupByAllHaving).
func GroupedHaving(sq *algebra.Subquery) func([]string) bool {
	if sq.GroupByAll() || len(sq.Having) == 0 {
		return nil
	}
	return sq.HavingPassed
}

// EvalSubquery exposes the single-subquery path for RAPIDAnalytics'
// single-grouping queries (identical workflow; hash aggregation, input
// pruning and the cost-based planner configurable).
func EvalSubquery(run *engine.Runner, ds *engine.Dataset, sq *algebra.Subquery, k int, hashAgg, prune, cost bool, ratio float64) (string, error) {
	return evalSubquery(run, ds, sq, k, hashAgg, prune, cost, ratio)
}
