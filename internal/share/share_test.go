package share

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/lint/leaktest"
)

// writeFile materialises n records "rec-i" under name.
func writeFile(t *testing.T, fs *dfs.FS, name string, n int) {
	t.Helper()
	w, err := fs.Create(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w.Write([]byte(fmt.Sprintf("rec-%04d", i)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// drain reads an iterator to completion, returning the records.
func drain(t *testing.T, it dfs.RecordIterator) [][]byte {
	t.Helper()
	var recs [][]byte
	for it.Next() {
		recs = append(recs, it.Record())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return recs
}

func TestSharedCycleServesAllConsumers(t *testing.T) {
	leaktest.Check(t)
	fs := dfs.New()
	writeFile(t, fs, "store/1/vp/p", 100)
	s := New(fs, Options{Window: 20 * time.Millisecond, Prefix: "store/"})

	const consumers = 8
	var wg sync.WaitGroup
	results := make([][][]byte, consumers)
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = drain(t, s.Scan("store/1/vp/p", 0, 100))
		}(i)
	}
	wg.Wait()

	for i, recs := range results {
		if len(recs) != 100 {
			t.Fatalf("consumer %d: got %d records, want 100", i, len(recs))
		}
		for j, rec := range recs {
			if want := fmt.Sprintf("rec-%04d", j); string(rec) != want {
				t.Fatalf("consumer %d record %d: got %q, want %q", i, j, rec, want)
			}
		}
	}
	st := s.Stats()
	if st.Cycles != 1 {
		t.Errorf("Cycles = %d, want 1 (all consumers inside one window)", st.Cycles)
	}
	if st.SharedCycles != 1 {
		t.Errorf("SharedCycles = %d, want 1", st.SharedCycles)
	}
	if st.Consumers != consumers {
		t.Errorf("Consumers = %d, want %d", st.Consumers, consumers)
	}
	if st.RecordsScanned != 100 || st.RecordsServed != 100*consumers {
		t.Errorf("RecordsScanned/Served = %d/%d, want 100/%d", st.RecordsScanned, st.RecordsServed, 100*consumers)
	}
}

func TestDistinctRangesGetDistinctCycles(t *testing.T) {
	fs := dfs.New()
	writeFile(t, fs, "store/1/vp/p", 10)
	s := New(fs, Options{Window: 10 * time.Millisecond})

	a := drain(t, s.Scan("store/1/vp/p", 0, 5))
	b := drain(t, s.Scan("store/1/vp/p", 5, 5))
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("got %d/%d records, want 5/5", len(a), len(b))
	}
	if string(a[0]) != "rec-0000" || string(b[0]) != "rec-0005" {
		t.Fatalf("range starts wrong: %q, %q", a[0], b[0])
	}
	st := s.Stats()
	if st.Cycles != 2 || st.SharedCycles != 0 {
		t.Errorf("Cycles/Shared = %d/%d, want 2/0", st.Cycles, st.SharedCycles)
	}
}

func TestPrefixDeclinesOtherNames(t *testing.T) {
	fs := dfs.New()
	writeFile(t, fs, "tmp/q/x", 3)
	s := New(fs, Options{Prefix: "store/"})
	if it := s.Scan("tmp/q/x", 0, 3); it != nil {
		t.Fatalf("Scan of non-prefixed name returned an iterator; want nil (declined)")
	}
	if st := s.Stats(); st.Cycles != 0 || st.Consumers != 0 {
		t.Errorf("declined scan touched counters: %+v", st)
	}
}

func TestMissingFilePropagatesError(t *testing.T) {
	s := New(dfs.New(), Options{Window: -1})
	it := s.Scan("store/absent", 0, 1)
	if it.Next() {
		t.Fatal("Next on missing file = true")
	}
	if it.Err() == nil {
		t.Fatal("Err on missing file = nil")
	}
	if st := s.Stats(); st.Errors != 1 {
		t.Errorf("Errors = %d, want 1", st.Errors)
	}
}

func TestMaxFanoutSealsEarly(t *testing.T) {
	leaktest.Check(t)
	fs := dfs.New()
	writeFile(t, fs, "store/1/vp/p", 10)
	// A window far longer than the test: the pass can only run if the
	// fan-out cap seals the cycle.
	s := New(fs, Options{Window: time.Hour, MaxFanout: 2})

	it1 := s.Scan("store/1/vp/p", 0, 10)
	it2 := s.Scan("store/1/vp/p", 0, 10)
	if got := len(drain(t, it1)); got != 10 {
		t.Fatalf("consumer 1: got %d records, want 10", got)
	}
	if got := len(drain(t, it2)); got != 10 {
		t.Fatalf("consumer 2: got %d records, want 10", got)
	}
	st := s.Stats()
	if st.Cycles != 1 || st.SharedCycles != 1 {
		t.Errorf("Cycles/Shared = %d/%d, want 1/1", st.Cycles, st.SharedCycles)
	}
}

// TestCancelledConsumerDoesNotStallSiblings is the shared-scan cancellation
// property: consumers that abandon their iterator mid-cycle (as a
// cancelled query's map task does) must not corrupt or stall the
// remaining consumers. Run under -race.
func TestCancelledConsumerDoesNotStallSiblings(t *testing.T) {
	leaktest.Check(t)
	fs := dfs.New()
	writeFile(t, fs, "store/1/tg/c", 500)
	s := New(fs, Options{Window: 20 * time.Millisecond, Prefix: "store/"})

	const consumers = 10
	var wg sync.WaitGroup
	results := make([][][]byte, consumers)
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			it := s.Scan("store/1/tg/c", 0, 500)
			if i%2 == 1 {
				// Simulate cancellation: read a few records, then walk away
				// without draining (no Close protocol to honour — exactly
				// what an aborted map task does).
				for j := 0; j < i && it.Next(); j++ {
					_ = it.Record()
				}
				return
			}
			results[i] = drain(t, it)
		}(i)
	}

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("surviving consumers stalled after sibling cancellation")
	}

	for i := 0; i < consumers; i += 2 {
		if len(results[i]) != 500 {
			t.Fatalf("surviving consumer %d: got %d records, want 500", i, len(results[i]))
		}
		for j, rec := range results[i] {
			if want := fmt.Sprintf("rec-%04d", j); string(rec) != want {
				t.Fatalf("surviving consumer %d record %d corrupted: got %q, want %q", i, j, rec, want)
			}
		}
	}
}

func TestVolatileStreamRecordsAreCopied(t *testing.T) {
	fs := dfs.New()
	w, err := fs.CreateStream("store/1/streamed", 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w.Write([]byte(fmt.Sprintf("rec-%04d", i)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s := New(fs, Options{Window: -1})
	recs := drain(t, s.Scan("store/1/streamed", 0, 20))
	if len(recs) != 20 {
		t.Fatalf("got %d records, want 20", len(recs))
	}
	// Retaining all records at once is only safe if the scheduler copied
	// them out of the stream iterator's scratch buffer.
	for i, rec := range recs {
		if want := fmt.Sprintf("rec-%04d", i); string(rec) != want {
			t.Fatalf("record %d: got %q, want %q (volatile record not copied)", i, rec, want)
		}
	}
}
