// Package share implements serving-time shared scan cycles: a scheduler
// that batches concurrent in-flight queries scanning the same DFS file
// range into one physical pass.
//
// The paper's NTGA/MQO machinery shares scans only *within* one analytical
// query. Under concurrent traffic the same hot vertical-partition and
// triplegroup files are re-read by every in-flight request, so the
// serving layer batches them: the first request to ask for a (file, start,
// n) range opens a short cycle window; every request arriving inside the
// window joins the cycle; when the window closes (or the fan-out cap is
// reached) a single producer pass reads the range once and all consumers
// iterate the shared pass snapshot.
//
// Cancellation safety comes from the materialised-pass design: consumers
// hold no per-consumer producer state, so a consumer abandoning its
// iterator mid-cycle (context cancellation, sibling-task abort) cannot
// corrupt or stall the remaining consumers — they keep iterating the same
// immutable snapshot. This extends the PR 7 stream registry idea (one
// producer, per-consumer iterators) across query boundaries.
package share

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rapidanalytics/internal/dfs"
)

// DefaultWindow is the cycle collection window when Options.Window is 0:
// long enough for bursty concurrent arrivals to coalesce, short enough to
// be invisible next to a MapReduce cycle.
const DefaultWindow = 2 * time.Millisecond

// DefaultMaxFanout seals a cycle early once this many consumers joined,
// bounding the latency a popular range waits on its window.
const DefaultMaxFanout = 64

// Options configures a Scheduler.
type Options struct {
	// Window is how long the first consumer of a range waits for others to
	// join before the pass runs. 0 selects DefaultWindow; negative runs
	// every pass immediately (sharing only exactly-simultaneous arrivals).
	Window time.Duration
	// MaxFanout seals a cycle early at this many consumers. 0 selects
	// DefaultMaxFanout.
	MaxFanout int
	// Prefix restricts sharing to file names with this prefix (the store's
	// base layout files). Scans of other names are declined, so per-query
	// intermediates — unique names that can never be shared — skip the
	// window latency entirely. Empty shares every name.
	Prefix string
}

// Stats is a snapshot of a scheduler's counters.
type Stats struct {
	// Cycles counts physical scan passes executed.
	Cycles int64 `json:"cycles"`
	// SharedCycles counts passes that served two or more consumers.
	SharedCycles int64 `json:"sharedCycles"`
	// Consumers counts scan requests admitted to cycles.
	Consumers int64 `json:"consumers"`
	// RecordsScanned counts records physically read from the DFS.
	RecordsScanned int64 `json:"recordsScanned"`
	// RecordsServed counts records delivered across all consumers; the
	// difference to RecordsScanned×1 is the scan work sharing saved.
	RecordsServed int64 `json:"recordsServed"`
	// Errors counts passes that failed to open or read their file.
	Errors int64 `json:"errors"`
}

// Add returns the counter-wise sum of two snapshots. The store uses it to
// carry shared-scan totals across dataset rematerialisations (each load
// gets a fresh scheduler bound to its fresh DFS).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Cycles:         s.Cycles + o.Cycles,
		SharedCycles:   s.SharedCycles + o.SharedCycles,
		Consumers:      s.Consumers + o.Consumers,
		RecordsScanned: s.RecordsScanned + o.RecordsScanned,
		RecordsServed:  s.RecordsServed + o.RecordsServed,
		Errors:         s.Errors + o.Errors,
	}
}

// Scheduler batches concurrent scans of identical file ranges into shared
// cycles. All methods are safe for concurrent use.
type Scheduler struct {
	fs   *dfs.FS
	opts Options

	mu      sync.Mutex
	pending map[string]*cycle

	cycles, sharedCycles, consumers atomic.Int64
	recordsScanned, recordsServed   atomic.Int64
	errors                          atomic.Int64
}

// New returns a scheduler reading from fs. Zero option fields select the
// package defaults.
func New(fs *dfs.FS, opts Options) *Scheduler {
	if opts.Window == 0 {
		opts.Window = DefaultWindow
	}
	if opts.MaxFanout <= 0 {
		opts.MaxFanout = DefaultMaxFanout
	}
	return &Scheduler{fs: fs, opts: opts, pending: make(map[string]*cycle)}
}

// Scan requests records [start, start+n) of the named file and returns an
// iterator over them, possibly served from a cycle shared with other
// concurrent callers. The iterator's first Next blocks until the cycle's
// pass completes. Returns nil when the scheduler declines the name
// (Options.Prefix mismatch); the caller then scans by itself.
//
// Scan implements the mapred.ScanProvider seam.
func (s *Scheduler) Scan(name string, start, n int) dfs.RecordIterator {
	if s.opts.Prefix != "" && !hasPrefix(name, s.opts.Prefix) {
		return nil
	}
	key := name + "\x00" + strconv.Itoa(start) + "\x00" + strconv.Itoa(n)
	s.mu.Lock()
	cy := s.pending[key]
	if cy == nil {
		cy = &cycle{sched: s, key: key, name: name, start: start, n: n, done: make(chan struct{})}
		s.pending[key] = cy
		if s.opts.Window > 0 {
			cy.timer = time.AfterFunc(s.opts.Window, cy.produce)
		}
	}
	cy.joined++
	seal := cy.joined >= s.opts.MaxFanout || s.opts.Window <= 0
	s.mu.Unlock()
	s.consumers.Add(1)
	if seal {
		cy.produce()
	}
	return &Iterator{cy: cy}
}

// Stats returns a snapshot of the counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Cycles:         s.cycles.Load(),
		SharedCycles:   s.sharedCycles.Load(),
		Consumers:      s.consumers.Load(),
		RecordsScanned: s.recordsScanned.Load(),
		RecordsServed:  s.recordsServed.Load(),
		Errors:         s.errors.Load(),
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// cycle is one shared scan pass: consumers join while it is pending, the
// pass seals it and materialises the range once, and close(done) publishes
// recs/err/shared to every consumer (the channel close orders the writes
// before any consumer read).
type cycle struct {
	sched *Scheduler
	key   string
	name  string
	start int
	n     int

	// joined is guarded by sched.mu until the cycle is sealed (removed
	// from pending); afterwards it is read-only.
	joined int
	timer  *time.Timer

	once   sync.Once
	done   chan struct{}
	recs   [][]byte
	err    error
	shared bool
}

// produce seals the cycle and runs its pass exactly once. Safe to call
// from both the window timer and an early-sealing consumer.
func (cy *cycle) produce() {
	cy.once.Do(func() {
		s := cy.sched
		s.mu.Lock()
		// Remove before reading, so arrivals during the pass start a fresh
		// cycle instead of joining a sealed one.
		if s.pending[cy.key] == cy {
			delete(s.pending, cy.key)
		}
		consumers := cy.joined
		s.mu.Unlock()
		if cy.timer != nil {
			cy.timer.Stop()
		}
		cy.shared = consumers > 1
		cy.run()
		s.cycles.Add(1)
		if cy.shared {
			s.sharedCycles.Add(1)
		}
		s.recordsScanned.Add(int64(len(cy.recs)))
		s.recordsServed.Add(int64(len(cy.recs)) * int64(consumers))
		if cy.err != nil {
			s.errors.Add(1)
		}
		close(cy.done)
	})
}

// run reads the cycle's range into a stable snapshot. Backend record
// slices are immutable and shared as-is; volatile (stream-backed) records
// are copied, exactly like dfs.File.AllRecords.
func (cy *cycle) run() {
	f, err := cy.sched.fs.Open(cy.name)
	if err != nil {
		cy.err = err
		return
	}
	defer f.Close()
	vol := f.Volatile()
	cy.recs = make([][]byte, 0, cy.n)
	it := f.Records(cy.start)
	for i := 0; i < cy.n && it.Next(); i++ {
		rec := it.Record()
		if vol {
			rec = append([]byte(nil), rec...)
		}
		cy.recs = append(cy.recs, rec)
	}
	cy.err = it.Err()
}

// Iterator iterates one consumer's view of a cycle's pass snapshot. It
// implements dfs.RecordIterator; like every record iterator it is not safe
// for concurrent use, but distinct iterators on one cycle are independent.
type Iterator struct {
	cy  *cycle
	idx int
	cur []byte
}

// Next advances to the next record. The first call blocks until the
// cycle's pass completes.
func (it *Iterator) Next() bool {
	<-it.cy.done
	if it.idx >= len(it.cy.recs) {
		return false
	}
	it.cur = it.cy.recs[it.idx]
	it.idx++
	return true
}

// Record returns the current record; the slice is shared and immutable.
func (it *Iterator) Record() []byte { return it.cur }

// Err returns the pass's read error, blocking until the pass completes.
func (it *Iterator) Err() error {
	<-it.cy.done
	return it.cy.err
}

// Shared reports whether the cycle served more than one consumer,
// blocking until the pass completes. The mapred engine uses it to tag
// shared-scan spans.
func (it *Iterator) Shared() bool {
	<-it.cy.done
	return it.cy.shared
}
