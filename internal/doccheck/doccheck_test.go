// Package doccheck enforces godoc coverage on the packages whose exported
// API the documentation walks: every exported type, function, method,
// struct field and package-level var/const in internal/mapred,
// internal/ntga, internal/vec, internal/blockstore, internal/stats,
// internal/share, internal/loadgen and the lint framework packages
// (internal/lint/analysis, internal/lint/driver, internal/lint/leaktest,
// and the interprocedural analyzers closecheck/lockorder/cachekey) must
// carry a doc comment. It is a
// plain test — no third-party linter — so it runs everywhere
// `go test ./...` does.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// checkedPackages are the directories held to full godoc coverage.
var checkedPackages = []string{
	"../mapred", "../ntga", "../vec", "../blockstore", "../stats",
	"../share", "../loadgen",
	"../lint/analysis", "../lint/driver", "../lint/leaktest",
	"../lint/closecheck", "../lint/lockorder", "../lint/cachekey",
}

func TestExportedIdentifiersAreDocumented(t *testing.T) {
	for _, dir := range checkedPackages {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			for _, miss := range undocumented(t, dir) {
				t.Error(miss)
			}
		})
	}
}

// undocumented parses every non-test file in dir and returns one message
// per exported identifier lacking a doc comment.
func undocumented(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether a func decl is a plain function or a method
// on an exported receiver type; methods on unexported types are skipped.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if idx, ok := typ.(*ast.IndexExpr); ok { // generic receiver
		typ = idx.X
	}
	id, ok := typ.(*ast.Ident)
	return !ok || id.IsExported()
}

// checkGenDecl reports undocumented exported types, struct fields, and
// package-level vars/consts within one declaration group.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if !sp.Name.IsExported() {
				continue
			}
			if d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
				report(sp.Pos(), "type", sp.Name.Name)
			}
			if st, ok := sp.Type.(*ast.StructType); ok {
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						if name.IsExported() && f.Doc == nil && f.Comment == nil {
							report(name.Pos(), "field", sp.Name.Name+"."+name.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			if d.Tok != token.VAR && d.Tok != token.CONST {
				continue
			}
			for _, name := range sp.Names {
				// A documented group (var/const block with a doc comment)
				// covers its members.
				if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}
