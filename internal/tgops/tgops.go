// Package tgops provides the NTGA physical operators as MapReduce jobs:
// TG_OptGrpFilter-fused triplegroup scans, TG_AlphaJoin (Algorithm 2), and
// TG_AgJ with map-side hash pre-aggregation (Algorithm 3). Both NTGA
// engines — RAPID+ (Naive) and RAPIDAnalytics — compose their workflows
// from these builders.
package tgops

import (
	"fmt"
	"strconv"
	"strings"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/ntga"
	"rapidanalytics/internal/sparql"
)

// PropFilter applies a FILTER constraint at triplegroup level: triples of
// Prop whose objects fail the filter are removed (bindings over the
// remaining triples implement per-solution filter semantics).
type PropFilter struct {
	Prop   string
	Filter sparql.Filter
}

// ScanSpec describes a TG_OptGrpFilter-fused scan of raw triplegroup files
// for one (composite) star: project to Prim ∪ Opt, require all of Prim,
// apply property-level filters.
type ScanSpec struct {
	Star    int
	Prim    []algebra.PropRef
	Opt     []algebra.PropRef
	Filters []PropFilter
	// KeepAll skips the projection onto Prim ∪ Opt: the star contains an
	// unbound-property pattern, so every triple of the subject is relevant.
	KeepAll bool
}

// Source is a job input: either raw triplegroup files with a scan spec, or
// an intermediate file of annotated (joined) triplegroups.
type Source struct {
	Files []string
	// Scan is non-nil for raw triplegroup inputs.
	Scan *ScanSpec
}

// annTGOf decodes one record of the source into an annotated triplegroup.
// Raw triplegroups pass through TG_OptGrpFilter first; the second result is
// false when the record is filtered out.
func (s *Source) annTGOf(rec []byte) (ntga.AnnTG, bool, error) {
	if s.Scan == nil {
		a, err := ntga.DecodeAnnTG(rec)
		if err != nil {
			return ntga.AnnTG{}, false, err
		}
		return a, true, nil
	}
	tg, rest, err := ntga.DecodeTripleGroup(rec)
	if err != nil {
		return ntga.AnnTG{}, false, err
	}
	if len(rest) != 0 {
		return ntga.AnnTG{}, false, fmt.Errorf("tgops: %d trailing bytes after triplegroup", len(rest))
	}
	var out ntga.TripleGroup
	var ok bool
	if s.Scan.KeepAll {
		// Unbound-property star: validate the bound primaries, keep every
		// triple.
		out, ok = tg, true
		for _, ref := range s.Scan.Prim {
			if !tg.HasRef(ref) {
				ok = false
				break
			}
		}
	} else {
		out, ok = ntga.OptGroupFilter(tg, s.Scan.Prim, s.Scan.Opt)
	}
	if !ok {
		return ntga.AnnTG{}, false, nil
	}
	if len(s.Scan.Filters) > 0 {
		out, ok = applyPropFilters(out, s.Scan)
		if !ok {
			return ntga.AnnTG{}, false, nil
		}
	}
	return ntga.NewAnnTG(s.Scan.Star, out), true, nil
}

// applyPropFilters drops triples whose objects fail a filter; the
// triplegroup survives only if every primary property retains at least one
// triple.
func applyPropFilters(tg ntga.TripleGroup, spec *ScanSpec) (ntga.TripleGroup, bool) {
	out := ntga.TripleGroup{Subject: tg.Subject}
	for _, po := range tg.Triples {
		keep := true
		for _, pf := range spec.Filters {
			if pf.Prop != po.Prop {
				continue
			}
			ok, err := algebra.EvalFilter(pf.Filter, po.Obj)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out.Triples = append(out.Triples, po)
		}
	}
	for _, ref := range spec.Prim {
		if !out.HasRef(ref) {
			return ntga.TripleGroup{}, false
		}
	}
	return out, true
}

// Endpoint designates where a join variable lives in an annotated
// triplegroup: the subject of a star, or the objects of carrying properties
// within a star.
type Endpoint struct {
	Star  int
	Role  algebra.Role
	Props []algebra.PropRef
}

// joinKeys extracts the join key values at an endpoint — one per matching
// object for multi-valued join properties (Algorithm 2's objList).
func joinKeys(a *ntga.AnnTG, ep Endpoint) []string {
	comp, ok := a.Component(ep.Star)
	if !ok {
		return nil
	}
	if ep.Role == algebra.RoleSubject {
		return []string{comp.Subject}
	}
	var keys []string
	seen := map[string]bool{}
	for _, ref := range ep.Props {
		for _, obj := range comp.Objects(ref.Prop) {
			if !seen[obj] {
				seen[obj] = true
				keys = append(keys, obj)
			}
		}
	}
	return keys
}

// JoinSide couples an input source with its join endpoint.
type JoinSide struct {
	Src Source
	Ep  Endpoint
}

// AlphaJoinJob builds the TG_AlphaJoin cycle (Algorithm 2): both sides are
// tagged on their join keys and joined reduce-side; the joined triplegroup
// is materialised only if it satisfies at least one original pattern's α
// condition. A nil composite pattern disables the α check (RAPID+'s plain
// TG_Join, and the α-ablation of RAPIDAnalytics).
func AlphaJoinJob(name string, left, right JoinSide, cp *algebra.CompositePattern, output string) *mapred.Job {
	var inputs []string
	seen := map[string]bool{}
	for _, f := range append(append([]string{}, left.Src.Files...), right.Src.Files...) {
		if !seen[f] {
			seen[f] = true
			inputs = append(inputs, f)
		}
	}
	inFiles := func(files []string, name string) bool {
		for _, f := range files {
			if f == name {
				return true
			}
		}
		return false
	}
	return &mapred.Job{
		Name:           name,
		Inputs:         inputs,
		Output:         output,
		Partitions:     mapred.DefaultPartitions,
		MapOperator:    "TG_OptGrpFilter",
		ReduceOperator: "TG_AlphaJoin",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			var sides []struct {
				side JoinSide
				tag  byte
			}
			if inFiles(left.Src.Files, tc.InputFile) {
				sides = append(sides, struct {
					side JoinSide
					tag  byte
				}{left, 0})
			}
			if inFiles(right.Src.Files, tc.InputFile) {
				sides = append(sides, struct {
					side JoinSide
					tag  byte
				}{right, 1})
			}
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error {
				for _, s := range sides {
					a, ok, err := s.side.Src.annTGOf(rec)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					enc := a.Encode()
					for _, key := range joinKeys(&a, s.side.Ep) {
						emit(key, append([]byte{s.tag}, enc...))
					}
				}
				return nil
			})
		},
		NewReducer: func() mapred.Reducer {
			return mapred.ReducerFunc(func(key string, values [][]byte, emit mapred.Emit) error {
				var ls, rs []ntga.AnnTG
				for _, v := range values {
					if len(v) < 1 {
						return fmt.Errorf("tgops: empty α-join value")
					}
					a, err := ntga.DecodeAnnTG(v[1:])
					if err != nil {
						return err
					}
					if v[0] == 0 {
						ls = append(ls, a)
					} else {
						rs = append(rs, a)
					}
				}
				for i := range ls {
					for j := range rs {
						merged := ntga.Merge(ls[i], rs[j])
						if cp == nil || ntga.SatisfiesAnyPattern(&merged, cp) {
							emit("", merged.Encode())
						}
					}
				}
				return nil
			})
		},
	}
}

// AggJoinSpec is one grouping-aggregation requirement evaluated by a TG_AgJ
// cycle: the spec's α condition, the triple patterns whose bindings feed
// the grouping and aggregation variables, and the aggregation list.
type AggJoinSpec struct {
	// ID tags the spec's output rows (the subquery index).
	ID int
	// GroupVars are the grouping variables (composite names; empty = ALL).
	GroupVars []string
	// Aggs are the aggregations (Var in composite names).
	Aggs []algebra.AggSpec
	// TPs are the original pattern's canonical triple patterns per star.
	TPs map[int][]sparql.TriplePattern
	// OptTPs are the pattern's OPTIONAL triple patterns per star.
	OptTPs map[int][]sparql.TriplePattern
	// Alpha gates which triplegroups contribute (nil accepts all) —
	// Figure 5's "pf ≠ ∅".
	Alpha func(*ntga.AnnTG) bool
	// Having drops groups whose final aggregate values fail the predicate
	// (nil keeps all).
	Having func([]string) bool
	// BindingFilters are FILTER constraints evaluated per solution (used
	// for variables of unbound-property patterns, where triple-level
	// pushdown would drop triples other patterns need).
	BindingFilters []sparql.Filter
}

// AggJoinJob builds the TG_AgJ cycle (Algorithm 3). With several specs it
// is the generalised operator of Figure 6(b): all aggregations evaluate in
// parallel within one cycle, keyed by id#group. With hashAgg the mapper
// pre-aggregates into a task-wide hash map flushed at Map.clean();
// otherwise per-solution partial states are merged by a combiner.
//
// Output rows are [id, group values..., finals...] when tagged, and
// [group values..., finals...] otherwise (tagged must be true when more
// than one spec is given).
func AggJoinJob(name string, src Source, specs []AggJoinSpec, tagged, hashAgg bool, output string) *mapred.Job {
	if !tagged && len(specs) != 1 {
		panic("tgops: untagged AggJoinJob requires exactly one spec")
	}
	specByID := map[int]AggJoinSpec{}
	for _, sp := range specs {
		specByID[sp.ID] = sp
	}
	job := &mapred.Job{
		Name:           name,
		Inputs:         src.Files,
		Output:         output,
		Partitions:     mapred.DefaultPartitions,
		MapOperator:    "TG_AgJ.map",
		ReduceOperator: "TG_AgJ.reduce",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			m := &aggJoinMapper{src: src, specs: specs, tagged: tagged}
			if hashAgg {
				m.multiAggMap = map[string]*algebra.MultiAggState{}
			}
			return m
		},
		NewCombiner: func() mapred.Reducer {
			return aggJoinMerger(specByID, tagged, false)
		},
		NewReducer: func() mapred.Reducer {
			return aggJoinMerger(specByID, tagged, true)
		},
	}
	return job
}

type aggJoinMapper struct {
	src    Source
	specs  []AggJoinSpec
	tagged bool
	// multiAggMap is the mapper-wide pre-aggregation table (Algorithm 3);
	// nil disables hash aggregation.
	multiAggMap map[string]*algebra.MultiAggState
}

func (m *aggJoinMapper) Map(rec []byte, emit mapred.Emit) error {
	a, ok, err := m.src.annTGOf(rec)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	for _, sp := range m.specs {
		if sp.Alpha != nil && !sp.Alpha(&a) {
			continue
		}
		ntga.MatchPattern(&a, sp.TPs, sp.OptTPs, func(b ntga.Binding) {
			for _, f := range sp.BindingFilters {
				ok, err := algebra.EvalFilter(f, b[f.Var])
				if err != nil || !ok {
					return
				}
			}
			keyParts := make([]string, 0, len(sp.GroupVars)+1)
			if m.tagged {
				keyParts = append(keyParts, strconv.Itoa(sp.ID))
			}
			for _, g := range sp.GroupVars {
				if v, ok := b[g]; ok {
					keyParts = append(keyParts, v)
				} else {
					keyParts = append(keyParts, algebra.Null)
				}
			}
			key := strings.Join(keyParts, "\x1f")
			if m.multiAggMap != nil {
				st, ok := m.multiAggMap[key]
				if !ok {
					st = algebra.NewMultiAggState(sp.Aggs)
					m.multiAggMap[key] = st
				}
				for i, ag := range sp.Aggs {
					st.States[i].Update(b[ag.Var])
				}
				return
			}
			st := algebra.NewMultiAggState(sp.Aggs)
			for i, ag := range sp.Aggs {
				st.States[i].Update(b[ag.Var])
			}
			emit(key, []byte(st.Encode()))
		})
	}
	return nil
}

// Close flushes the pre-aggregated entries — Algorithm 3's Map.clean().
func (m *aggJoinMapper) Close(emit mapred.Emit) error {
	for key, st := range m.multiAggMap {
		emit(key, []byte(st.Encode()))
	}
	return nil
}

// aggJoinMerger merges partial states per key; as the reducer it emits the
// final row.
func aggJoinMerger(specByID map[int]AggJoinSpec, tagged, final bool) mapred.Reducer {
	return mapred.ReducerFunc(func(key string, values [][]byte, emit mapred.Emit) error {
		var sp AggJoinSpec
		if tagged {
			idStr, _, _ := strings.Cut(key, "\x1f")
			id, err := strconv.Atoi(idStr)
			if err != nil {
				return fmt.Errorf("tgops: bad agg-join key %q", key)
			}
			var ok bool
			sp, ok = specByID[id]
			if !ok {
				return fmt.Errorf("tgops: unknown agg-join id %d", id)
			}
		} else {
			for _, s := range specByID {
				sp = s
			}
		}
		acc := algebra.NewMultiAggState(sp.Aggs)
		for _, v := range values {
			st, err := algebra.DecodeMultiAggState(string(v))
			if err != nil {
				return err
			}
			acc.Merge(st)
		}
		if !final {
			emit(key, []byte(acc.Encode()))
			return nil
		}
		finals := acc.Finals()
		if sp.Having != nil && !sp.Having(finals) {
			return nil
		}
		var row codec.Tuple
		if key != "" {
			row = append(row, strings.Split(key, "\x1f")...)
		}
		row = append(row, finals...)
		emit("", row.Encode())
		return nil
	})
}
