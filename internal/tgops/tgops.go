// Package tgops provides the NTGA physical operators as MapReduce jobs:
// TG_OptGrpFilter-fused triplegroup scans, TG_AlphaJoin (Algorithm 2), and
// TG_AgJ with map-side hash pre-aggregation (Algorithm 3). Both NTGA
// engines — RAPID+ (Naive) and RAPIDAnalytics — compose their workflows
// from these builders.
//
// Every operator runs in one of two data planes, chosen by Source.Dict:
// the lexical plane (triplegroup fields are rdf.Term.Key strings, the
// original layout) or the dictionary plane (fields are uvarint ID-strings,
// see rdf.Dict). Query-space constants — property references, triple
// patterns, the α table — are resolved into the plane once at job-build or
// task-start time, shuffle keys are separator-free concatenations of
// self-delimiting IDs, and values decode back to lexical form only at the
// final aggregation boundary, so emitted result rows are byte-identical in
// both planes.
package tgops

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/ntga"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/sparql"
)

// PropFilter applies a FILTER constraint at triplegroup level: triples of
// Prop whose objects fail the filter are removed (bindings over the
// remaining triples implement per-solution filter semantics).
type PropFilter struct {
	Prop   string
	Filter sparql.Filter
}

// ScanSpec describes a TG_OptGrpFilter-fused scan of raw triplegroup files
// for one (composite) star: project to Prim ∪ Opt, require all of Prim,
// apply property-level filters. References are query-space; the scan
// resolves them into the source's data plane per task.
type ScanSpec struct {
	Star    int
	Prim    []algebra.PropRef
	Opt     []algebra.PropRef
	Filters []PropFilter
	// KeepAll skips the projection onto Prim ∪ Opt: the star contains an
	// unbound-property pattern, so every triple of the subject is relevant.
	KeepAll bool
}

// Source is a job input: either raw triplegroup files with a scan spec, or
// an intermediate file of annotated (joined) triplegroups.
type Source struct {
	Files []string
	// Scan is non-nil for raw triplegroup inputs.
	Scan *ScanSpec
	// Dict selects the dictionary plane when non-nil: records are
	// ID-encoded and constants resolve through the dictionary.
	Dict *rdf.Dict
}

// planeFilter is a PropFilter with its property resolved into the plane.
type planeFilter struct {
	prop   string
	filter sparql.Filter
}

// scanner is a Source resolved into its data plane, built once per map
// task so per-record work is free of dictionary lookups.
type scanner struct {
	dict    *rdf.Dict
	scan    *ScanSpec
	prim    []ntga.Ref
	opt     []ntga.Ref
	filters []planeFilter
}

// scanner resolves the source's query-space constants into its plane.
func (s *Source) scanner() *scanner {
	sc := &scanner{dict: s.Dict, scan: s.Scan}
	if s.Scan != nil {
		sc.prim = ntga.ResolveRefs(s.Scan.Prim, s.Dict)
		sc.opt = ntga.ResolveRefs(s.Scan.Opt, s.Dict)
		for _, pf := range s.Scan.Filters {
			prop := pf.Prop
			if s.Dict != nil {
				prop = s.Dict.KeyString("I" + pf.Prop)
			}
			sc.filters = append(sc.filters, planeFilter{prop: prop, filter: pf.Filter})
		}
	}
	return sc
}

// lexOf translates a plane value to lexical form for filter evaluation.
func (sc *scanner) lexOf(v string) string {
	if sc.dict == nil {
		return v
	}
	lex, ok := sc.dict.Lex(v)
	if !ok {
		return ""
	}
	return lex
}

// annTGOf decodes one record of the source into an annotated triplegroup.
// Raw triplegroups pass through TG_OptGrpFilter first; the second result is
// false when the record is filtered out.
func (sc *scanner) annTGOf(rec []byte) (ntga.AnnTG, bool, error) {
	if sc.scan == nil {
		var a ntga.AnnTG
		var err error
		if sc.dict != nil {
			a, err = ntga.DecodeAnnTGIDs(rec, sc.dict)
		} else {
			a, err = ntga.DecodeAnnTG(rec)
		}
		if err != nil {
			return ntga.AnnTG{}, false, err
		}
		return a, true, nil
	}
	var tg ntga.TripleGroup
	var rest []byte
	var err error
	if sc.dict != nil {
		tg, rest, err = ntga.DecodeTripleGroupIDs(rec, sc.dict)
	} else {
		tg, rest, err = ntga.DecodeTripleGroup(rec)
	}
	if err != nil {
		return ntga.AnnTG{}, false, err
	}
	if len(rest) != 0 {
		return ntga.AnnTG{}, false, fmt.Errorf("tgops: %d trailing bytes after triplegroup", len(rest))
	}
	var out ntga.TripleGroup
	var ok bool
	if sc.scan.KeepAll {
		// Unbound-property star: validate the bound primaries, keep every
		// triple.
		out, ok = tg, true
		for _, ref := range sc.prim {
			if !tg.HasPO(ref.Prop, ref.Obj) {
				ok = false
				break
			}
		}
	} else {
		out, ok = ntga.OptGroupFilterRefs(tg, sc.prim, sc.opt)
	}
	if !ok {
		return ntga.AnnTG{}, false, nil
	}
	if len(sc.filters) > 0 {
		out, ok = sc.applyPropFilters(out)
		if !ok {
			return ntga.AnnTG{}, false, nil
		}
	}
	return ntga.NewAnnTG(sc.scan.Star, out), true, nil
}

// applyPropFilters drops triples whose objects fail a filter; the
// triplegroup survives only if every primary property retains at least one
// triple.
func (sc *scanner) applyPropFilters(tg ntga.TripleGroup) (ntga.TripleGroup, bool) {
	out := ntga.TripleGroup{Subject: tg.Subject}
	for _, po := range tg.Triples {
		keep := true
		for _, pf := range sc.filters {
			if pf.prop != po.Prop {
				continue
			}
			ok, err := algebra.EvalFilter(pf.filter, sc.lexOf(po.Obj))
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out.Triples = append(out.Triples, po)
		}
	}
	for _, ref := range sc.prim {
		if !out.HasPO(ref.Prop, ref.Obj) {
			return ntga.TripleGroup{}, false
		}
	}
	return out, true
}

// Endpoint designates where a join variable lives in an annotated
// triplegroup: the subject of a star, or the objects of carrying properties
// within a star.
type Endpoint struct {
	Star  int
	Role  algebra.Role
	Props []algebra.PropRef
}

// planeProps resolves the endpoint's carrying properties into the plane of
// dictionary d.
func (ep Endpoint) planeProps(d *rdf.Dict) []string {
	props := make([]string, len(ep.Props))
	for i, ref := range ep.Props {
		if d != nil {
			props[i] = d.KeyString("I" + ref.Prop)
		} else {
			props[i] = ref.Prop
		}
	}
	return props
}

// joinKeys extracts the join key values at an endpoint — one per matching
// object for multi-valued join properties (Algorithm 2's objList). props
// are the endpoint's plane-resolved carrying properties.
func joinKeys(a *ntga.AnnTG, ep Endpoint, props []string) []string {
	comp, ok := a.Component(ep.Star)
	if !ok {
		return nil
	}
	if ep.Role == algebra.RoleSubject {
		return []string{comp.Subject}
	}
	var keys []string
	seen := map[string]bool{}
	for _, prop := range props {
		for _, obj := range comp.Objects(prop) {
			if !seen[obj] {
				seen[obj] = true
				keys = append(keys, obj)
			}
		}
	}
	return keys
}

// JoinSide couples an input source with its join endpoint.
type JoinSide struct {
	Src Source
	Ep  Endpoint
}

// AlphaJoinJob builds the TG_AlphaJoin cycle (Algorithm 2): both sides are
// tagged on their join keys and joined reduce-side; the joined triplegroup
// is materialised only if it satisfies at least one original pattern's α
// condition. A nil α table disables the check (RAPID+'s plain TG_Join, and
// the α-ablation of RAPIDAnalytics). The table must be resolved in the
// sources' data plane (ntga.ResolveAlpha).
func AlphaJoinJob(name string, left, right JoinSide, alpha *ntga.AlphaTable, output string) *mapred.Job {
	var inputs []string
	seen := map[string]bool{}
	for _, f := range append(append([]string{}, left.Src.Files...), right.Src.Files...) {
		if !seen[f] {
			seen[f] = true
			inputs = append(inputs, f)
		}
	}
	inFiles := func(files []string, name string) bool {
		for _, f := range files {
			if f == name {
				return true
			}
		}
		return false
	}
	dict := left.Src.Dict
	if dict == nil {
		dict = right.Src.Dict
	}
	encodeAnnTG := func(a *ntga.AnnTG, buf []byte) []byte {
		if dict != nil {
			return a.AppendEncodeIDs(buf)
		}
		return a.AppendEncode(buf)
	}
	return &mapred.Job{
		Name:           name,
		Inputs:         inputs,
		Output:         output,
		Partitions:     mapred.DefaultPartitions,
		MapOperator:    "TG_OptGrpFilter",
		ReduceOperator: "TG_AlphaJoin",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			type taskSide struct {
				sc    *scanner
				ep    Endpoint
				props []string
				tag   byte
			}
			var sides []taskSide
			if inFiles(left.Src.Files, tc.InputFile) {
				sides = append(sides, taskSide{left.Src.scanner(), left.Ep, left.Ep.planeProps(left.Src.Dict), 0})
			}
			if inFiles(right.Src.Files, tc.InputFile) {
				sides = append(sides, taskSide{right.Src.scanner(), right.Ep, right.Ep.planeProps(right.Src.Dict), 1})
			}
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error {
				for _, s := range sides {
					a, ok, err := s.sc.annTGOf(rec)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					// One tagged encode per record, shared across its join
					// keys: the engine retains but never mutates emitted
					// values.
					enc := encodeAnnTG(&a, []byte{s.tag})
					for _, key := range joinKeys(&a, s.ep, s.props) {
						emit(key, enc)
					}
				}
				return nil
			})
		},
		NewReducer: func() mapred.Reducer {
			decodeAnnTG := func(buf []byte) (ntga.AnnTG, error) {
				if dict != nil {
					return ntga.DecodeAnnTGIDs(buf, dict)
				}
				return ntga.DecodeAnnTG(buf)
			}
			// Symmetric (streaming) formulation: one pass over the group,
			// pairing each arriving triplegroup with every earlier arrival
			// of the other side, so merged groups are emitted as soon as
			// the later element arrives instead of after buffering the
			// whole group. Each (l, r) pair is emitted exactly once;
			// deterministic given the shuffle's fixed value order, and
			// downstream TG_AgJ aggregation is order-insensitive.
			pair := func(l, r *ntga.AnnTG, emit mapred.Emit) {
				merged := ntga.Merge(*l, *r)
				if alpha.SatisfiesAny(&merged) {
					emit("", encodeAnnTG(&merged, nil))
				}
			}
			return mapred.ReducerFunc(func(key string, values [][]byte, emit mapred.Emit) error {
				var ls, rs []ntga.AnnTG
				for _, v := range values {
					if len(v) < 1 {
						return fmt.Errorf("tgops: empty α-join value")
					}
					a, err := decodeAnnTG(v[1:])
					if err != nil {
						return err
					}
					if v[0] == 0 {
						for j := range rs {
							pair(&a, &rs[j], emit)
						}
						ls = append(ls, a)
					} else {
						for i := range ls {
							pair(&ls[i], &a, emit)
						}
						rs = append(rs, a)
					}
				}
				return nil
			})
		},
	}
}

// AggJoinSpec is one grouping-aggregation requirement evaluated by a TG_AgJ
// cycle: the spec's α condition, the triple patterns whose bindings feed
// the grouping and aggregation variables, and the aggregation list.
type AggJoinSpec struct {
	// ID tags the spec's output rows (the subquery index).
	ID int
	// GroupVars are the grouping variables (composite names; empty = ALL).
	GroupVars []string
	// Aggs are the aggregations (Var in composite names).
	Aggs []algebra.AggSpec
	// TPs are the original pattern's canonical triple patterns per star.
	TPs map[int][]sparql.TriplePattern
	// OptTPs are the pattern's OPTIONAL triple patterns per star.
	OptTPs map[int][]sparql.TriplePattern
	// Alpha gates which triplegroups contribute (nil accepts all) —
	// Figure 5's "pf ≠ ∅". The annotated triplegroup is in the source's
	// data plane.
	Alpha func(*ntga.AnnTG) bool
	// Having drops groups whose final aggregate values fail the predicate
	// (nil keeps all).
	Having func([]string) bool
	// BindingFilters are FILTER constraints evaluated per solution (used
	// for variables of unbound-property patterns, where triple-level
	// pushdown would drop triples other patterns need).
	BindingFilters []sparql.Filter
}

// resolvedAggSpec is an AggJoinSpec with its triple patterns resolved into
// the source's data plane.
type resolvedAggSpec struct {
	AggJoinSpec
	tps    map[int][]ntga.TP
	optTPs map[int][]ntga.TP
}

// AggJoinJob builds the TG_AgJ cycle (Algorithm 3). With several specs it
// is the generalised operator of Figure 6(b): all aggregations evaluate in
// parallel within one cycle, keyed by id#group. With hashAgg the mapper
// pre-aggregates into a task-wide hash map flushed at Map.clean();
// otherwise per-solution partial states are merged by a combiner.
//
// Output rows are [id, group values..., finals...] when tagged, and
// [group values..., finals...] otherwise (tagged must be true when more
// than one spec is given). Rows are lexical in both planes: the reducer is
// the dictionary plane's decode boundary.
func AggJoinJob(name string, src Source, specs []AggJoinSpec, tagged, hashAgg bool, output string) *mapred.Job {
	if !tagged && len(specs) != 1 {
		panic("tgops: untagged AggJoinJob requires exactly one spec")
	}
	resolved := make([]resolvedAggSpec, len(specs))
	specByID := map[int]AggJoinSpec{}
	for i, sp := range specs {
		resolved[i] = resolvedAggSpec{
			AggJoinSpec: sp,
			tps:         ntga.ResolveTPMap(sp.TPs, src.Dict),
			optTPs:      ntga.ResolveTPMap(sp.OptTPs, src.Dict),
		}
		specByID[sp.ID] = sp
	}
	job := &mapred.Job{
		Name:           name,
		Inputs:         src.Files,
		Output:         output,
		Partitions:     mapred.DefaultPartitions,
		MapOperator:    "TG_AgJ.map",
		ReduceOperator: "TG_AgJ.reduce",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			m := &aggJoinMapper{sc: src.scanner(), specs: resolved, tagged: tagged}
			if hashAgg {
				m.multiAggMap = map[string]*algebra.MultiAggState{}
			}
			return m
		},
		NewCombiner: func() mapred.Reducer {
			return aggJoinMerger(specByID, src.Dict, tagged, false)
		},
		NewReducer: func() mapred.Reducer {
			return aggJoinMerger(specByID, src.Dict, tagged, true)
		},
	}
	return job
}

type aggJoinMapper struct {
	sc     *scanner
	specs  []resolvedAggSpec
	tagged bool
	// keyBuf is per-task scratch for dictionary-plane key building (map
	// tasks are single-goroutine).
	keyBuf []byte
	// multiAggMap is the mapper-wide pre-aggregation table (Algorithm 3);
	// nil disables hash aggregation.
	multiAggMap map[string]*algebra.MultiAggState
}

// aggKey builds the shuffle key for one solution. The lexical plane keeps
// the original "\x1f"-joined form; the dictionary plane concatenates the
// optional uvarint spec ID and the group values' self-delimiting ID bytes
// with no separators (ID bytes may contain 0x1f).
//
//rapid:hot
func (m *aggJoinMapper) aggKey(sp *resolvedAggSpec, b ntga.Binding) string {
	if m.sc.dict != nil {
		buf := m.keyBuf[:0]
		if m.tagged {
			buf = codec.AppendUvarint(buf, uint64(sp.ID))
		}
		for _, g := range sp.GroupVars {
			if v, ok := b[g]; ok {
				buf = append(buf, v...)
			} else {
				buf = append(buf, algebra.Null...)
			}
		}
		m.keyBuf = buf
		//lint:alloc shuffle keys and the multiAggMap index must be string; this is the single per-solution key materialization and keyBuf pools the build buffer
		return string(buf)
	}
	keyParts := make([]string, 0, len(sp.GroupVars)+1)
	if m.tagged {
		keyParts = append(keyParts, strconv.Itoa(sp.ID))
	}
	for _, g := range sp.GroupVars {
		if v, ok := b[g]; ok {
			keyParts = append(keyParts, v)
		} else {
			keyParts = append(keyParts, algebra.Null)
		}
	}
	return strings.Join(keyParts, "\x1f")
}

func (m *aggJoinMapper) Map(rec []byte, emit mapred.Emit) error {
	a, ok, err := m.sc.annTGOf(rec)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	dict := m.sc.dict
	for i := range m.specs {
		sp := &m.specs[i]
		if sp.Alpha != nil && !sp.Alpha(&a) {
			continue
		}
		ntga.MatchResolved(&a, sp.tps, sp.optTPs, dict != nil, func(b ntga.Binding) {
			for _, f := range sp.BindingFilters {
				v := b[f.Var]
				if dict != nil {
					v, _ = dict.Lex(v)
				}
				ok, err := algebra.EvalFilter(f, v)
				if err != nil || !ok {
					return
				}
			}
			key := m.aggKey(sp, b)
			if m.multiAggMap != nil {
				st, ok := m.multiAggMap[key]
				if !ok {
					st = algebra.NewMultiAggState(sp.Aggs)
					m.multiAggMap[key] = st
				}
				for i, ag := range sp.Aggs {
					st.States[i].UpdateTerm(dict, b[ag.Var])
				}
				return
			}
			st := algebra.NewMultiAggState(sp.Aggs)
			for i, ag := range sp.Aggs {
				st.States[i].UpdateTerm(dict, b[ag.Var])
			}
			emit(key, st.AppendEncode(nil))
		})
	}
	return nil
}

// Close flushes the pre-aggregated entries — Algorithm 3's Map.clean() — in
// sorted key order. Map iteration order would vary run to run; the combiner
// happens to re-sort each partition today, but the output contract
// (byte-identical shuffle streams) must not depend on which jobs attach a
// combiner.
func (m *aggJoinMapper) Close(emit mapred.Emit) error {
	keys := make([]string, 0, len(m.multiAggMap))
	for key := range m.multiAggMap {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		emit(key, m.multiAggMap[key].AppendEncode(nil))
	}
	return nil
}

// splitAggKey parses a shuffle key built by aggKey back into the spec ID
// and lexical group values — the dictionary plane's decode boundary.
func splitAggKey(key string, d *rdf.Dict, tagged bool) (id int, groups []string, err error) {
	if d == nil {
		rest := key
		if tagged {
			idStr, tail, _ := strings.Cut(key, "\x1f")
			id, err = strconv.Atoi(idStr)
			if err != nil {
				return 0, nil, fmt.Errorf("tgops: bad agg-join key %q", key)
			}
			rest = tail
		}
		if rest != "" || !tagged {
			groups = strings.Split(rest, "\x1f")
		}
		if key == "" {
			groups = nil
		}
		return id, groups, nil
	}
	buf := []byte(key)
	if tagged {
		v, rest, err := codec.ReadUvarint(buf)
		if err != nil {
			return 0, nil, fmt.Errorf("tgops: bad agg-join id key %q", key)
		}
		id, buf = int(v), rest
	}
	for len(buf) > 0 {
		v, rest, err := codec.ReadUvarint(buf)
		if err != nil {
			return 0, nil, fmt.Errorf("tgops: bad agg-join group key %q", key)
		}
		buf = rest
		if v == 0 {
			groups = append(groups, algebra.Null)
			continue
		}
		lex, ok := d.Key(v)
		if !ok {
			return 0, nil, fmt.Errorf("tgops: unknown term id %d in agg-join key", v)
		}
		groups = append(groups, lex)
	}
	return id, groups, nil
}

// aggJoinMerger merges partial states per key; as the reducer it emits the
// final (lexical) row.
func aggJoinMerger(specByID map[int]AggJoinSpec, d *rdf.Dict, tagged, final bool) mapred.Reducer {
	return mapred.ReducerFunc(func(key string, values [][]byte, emit mapred.Emit) error {
		var sp AggJoinSpec
		if tagged {
			id, _, err := splitAggKey(key, d, true)
			if err != nil {
				return err
			}
			var ok bool
			sp, ok = specByID[id]
			if !ok {
				return fmt.Errorf("tgops: unknown agg-join id %d", id)
			}
		} else {
			for _, s := range specByID {
				sp = s
			}
		}
		acc := algebra.NewMultiAggState(sp.Aggs)
		for _, v := range values {
			st, err := algebra.DecodeMultiAggStateBytes(v)
			if err != nil {
				return err
			}
			acc.Merge(st)
		}
		if !final {
			emit(key, acc.AppendEncode(nil))
			return nil
		}
		finals := acc.Finals()
		if sp.Having != nil && !sp.Having(finals) {
			return nil
		}
		var row codec.Tuple
		if key != "" {
			_, groups, err := splitAggKey(key, d, tagged)
			if err != nil {
				return err
			}
			if tagged {
				row = append(row, strconv.Itoa(sp.ID))
			}
			row = append(row, groups...)
		}
		row = append(row, finals...)
		emit("", row.Encode())
		return nil
	})
}
