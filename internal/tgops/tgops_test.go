package tgops

import (
	"sort"
	"strings"
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/ntga"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/sparql"
)

func newCluster() *mapred.Cluster {
	cfg := mapred.DefaultConfig()
	cfg.ExecSplitBytes = 128
	return mapred.NewCluster(cfg)
}

func writeTGs(c *mapred.Cluster, name string, tgs ...ntga.TripleGroup) {
	w, err := c.FS.Create(name, 1)
	if err != nil {
		panic(err)
	}
	for i := range tgs {
		w.Write(tgs[i].Encode())
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
}

func tg(subject string, pos ...[2]string) ntga.TripleGroup {
	g := ntga.TripleGroup{Subject: "I" + subject}
	for _, po := range pos {
		g.Triples = append(g.Triples, ntga.PO{Prop: po[0], Obj: po[1]})
	}
	return g
}

func readAnnTGs(t *testing.T, c *mapred.Cluster, name string) []ntga.AnnTG {
	t.Helper()
	f, err := c.FS.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := f.AllRecords()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]ntga.AnnTG, 0, len(recs))
	for _, rec := range recs {
		a, err := ntga.DecodeAnnTG(rec)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		out = append(out, a)
	}
	return out
}

// Subject-object join between a product star and an offer star.
func TestAlphaJoinSubjectObject(t *testing.T) {
	c := newCluster()
	writeTGs(c, "prods",
		tg("p1", [2]string{"type", "IPT1"}, [2]string{"pf", "If1"}),
		tg("p2", [2]string{"type", "IPT1"}),
		tg("p3", [2]string{"type", "IPT9"}), // filtered by prim
	)
	writeTGs(c, "offers",
		tg("o1", [2]string{"product", "Ip1"}, [2]string{"price", "L10"}),
		tg("o2", [2]string{"product", "Ip2"}, [2]string{"price", "L20"}),
		tg("o3", [2]string{"product", "Ip9"}, [2]string{"price", "L30"}), // dangling
	)
	left := JoinSide{
		Src: Source{Files: []string{"prods"}, Scan: &ScanSpec{
			Star: 0,
			Prim: []algebra.PropRef{{Prop: "type", Obj: rdf.NewIRI("PT1")}},
			Opt:  []algebra.PropRef{{Prop: "pf"}},
		}},
		Ep: Endpoint{Star: 0, Role: algebra.RoleSubject},
	}
	right := JoinSide{
		Src: Source{Files: []string{"offers"}, Scan: &ScanSpec{
			Star: 1,
			Prim: []algebra.PropRef{{Prop: "product"}, {Prop: "price"}},
		}},
		Ep: Endpoint{Star: 1, Role: algebra.RoleObject, Props: []algebra.PropRef{{Prop: "product"}}},
	}
	job := AlphaJoinJob("j", left, right, nil, "out")
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	got := readAnnTGs(t, c, "out")
	if len(got) != 2 {
		t.Fatalf("joined = %d, want 2", len(got))
	}
	for _, a := range got {
		if len(a.Stars) != 2 {
			t.Errorf("joined stars = %v", a.Stars)
		}
	}
}

// Object-object joins emit one key per matching object (Algorithm 2's
// objList) and join on value equality.
func TestAlphaJoinObjectObject(t *testing.T) {
	c := newCluster()
	writeTGs(c, "bio",
		tg("b1", [2]string{"gi", "L100"}, [2]string{"gi", "L200"}),
	)
	writeTGs(c, "prot",
		tg("u1", [2]string{"gi", "L200"}),
		tg("u2", [2]string{"gi", "L300"}),
	)
	left := JoinSide{
		Src: Source{Files: []string{"bio"}, Scan: &ScanSpec{Star: 0, Prim: []algebra.PropRef{{Prop: "gi"}}}},
		Ep:  Endpoint{Star: 0, Role: algebra.RoleObject, Props: []algebra.PropRef{{Prop: "gi"}}},
	}
	right := JoinSide{
		Src: Source{Files: []string{"prot"}, Scan: &ScanSpec{Star: 1, Prim: []algebra.PropRef{{Prop: "gi"}}}},
		Ep:  Endpoint{Star: 1, Role: algebra.RoleObject, Props: []algebra.PropRef{{Prop: "gi"}}},
	}
	if _, err := c.Run(AlphaJoinJob("j", left, right, nil, "out")); err != nil {
		t.Fatal(err)
	}
	got := readAnnTGs(t, c, "out")
	if len(got) != 1 {
		t.Fatalf("joined = %d, want 1 (b1 ⋈ u1 via gi=200)", len(got))
	}
}

// Both sides reading the same equivalence-class file must each see it.
func TestAlphaJoinSharedFile(t *testing.T) {
	c := newCluster()
	// One class holds subjects with both p and q.
	writeTGs(c, "shared",
		tg("x1", [2]string{"p", "Iy1"}, [2]string{"q", "L5"}),
		tg("y1", [2]string{"p", "Iz"}, [2]string{"q", "L7"}),
	)
	left := JoinSide{
		Src: Source{Files: []string{"shared"}, Scan: &ScanSpec{Star: 0, Prim: []algebra.PropRef{{Prop: "p"}}}},
		Ep:  Endpoint{Star: 0, Role: algebra.RoleObject, Props: []algebra.PropRef{{Prop: "p"}}},
	}
	right := JoinSide{
		Src: Source{Files: []string{"shared"}, Scan: &ScanSpec{Star: 1, Prim: []algebra.PropRef{{Prop: "q"}}}},
		Ep:  Endpoint{Star: 1, Role: algebra.RoleSubject},
	}
	job := AlphaJoinJob("j", left, right, nil, "out")
	if len(job.Inputs) != 1 {
		t.Fatalf("inputs = %v, want deduplicated", job.Inputs)
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	got := readAnnTGs(t, c, "out")
	// x1's p object Iy1 joins y1's subject.
	if len(got) != 1 {
		t.Fatalf("joined = %d, want 1", len(got))
	}
	if comp, ok := got[0].Component(1); !ok || comp.Subject != "Iy1" {
		t.Errorf("component 1 = %v, %v", comp, ok)
	}
}

// Property-level filters drop triples and then whole triplegroups when a
// primary property loses its last triple.
func TestScanPropFilters(t *testing.T) {
	spec := &ScanSpec{
		Star: 0,
		Prim: []algebra.PropRef{{Prop: "price"}},
		Filters: []PropFilter{{
			Prop:   "price",
			Filter: sparql.Filter{Kind: sparql.FilterCompare, Var: "p", Op: ">", Value: "15", IsNumeric: true},
		}},
	}
	src := Source{Scan: spec}
	keep := tg("o1", [2]string{"price", "L10"}, [2]string{"price", "L20"})
	a, ok, err := src.scanner().annTGOf(keep.Encode())
	if err != nil || !ok {
		t.Fatalf("annTGOf: %v %v", ok, err)
	}
	if len(a.TGs[0].Triples) != 1 || a.TGs[0].Triples[0].Obj != "L20" {
		t.Errorf("filtered triples = %v", a.TGs[0].Triples)
	}
	drop := tg("o2", [2]string{"price", "L5"})
	if _, ok, err := src.scanner().annTGOf(drop.Encode()); err != nil || ok {
		t.Errorf("triplegroup with no surviving primary triple passed: %v %v", ok, err)
	}
}

func aggSpecs(tagged bool) []AggJoinSpec {
	tps := map[int][]sparql.TriplePattern{0: {
		{S: sparql.V("s"), P: sparql.C(rdf.NewIRI("price")), O: sparql.V("pr")},
	}}
	count := []algebra.AggSpec{{Func: sparql.Count, Var: "pr", As: "cnt"}}
	sum := []algebra.AggSpec{{Func: sparql.Sum, Var: "pr", As: "sum"}}
	if !tagged {
		return []AggJoinSpec{{ID: 0, GroupVars: []string{"s"}, Aggs: count, TPs: tps}}
	}
	return []AggJoinSpec{
		{ID: 0, GroupVars: []string{"s"}, Aggs: count, TPs: tps},
		{ID: 1, GroupVars: nil, Aggs: sum, TPs: tps},
	}
}

func aggInput(c *mapred.Cluster) Source {
	writeTGs(c, "in",
		tg("a", [2]string{"price", "L10"}, [2]string{"price", "L20"}),
		tg("b", [2]string{"price", "L5"}),
	)
	return Source{Files: []string{"in"}, Scan: &ScanSpec{Star: 0, Prim: []algebra.PropRef{{Prop: "price"}}}}
}

func readTuples(t *testing.T, c *mapred.Cluster, name string) []string {
	t.Helper()
	f, err := c.FS.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := f.AllRecords()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, rec := range recs {
		tu, err := codec.DecodeTuple(rec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, strings.Join(tu, "|"))
	}
	sort.Strings(out)
	return out
}

func TestAggJoinUntagged(t *testing.T) {
	for _, hash := range []bool{false, true} {
		c := newCluster()
		src := aggInput(c)
		job := AggJoinJob("agg", src, aggSpecs(false), false, hash, "out")
		m, err := c.Run(job)
		if err != nil {
			t.Fatalf("hash=%v: %v", hash, err)
		}
		got := readTuples(t, c, "out")
		want := []string{"Ia|2", "Ib|1"}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("hash=%v: rows = %v", hash, got)
		}
		if m.MapEmitRecords == 0 {
			t.Error("no emit accounting")
		}
	}
}

// Hash pre-aggregation emits fewer map records than the combiner path for
// skewed groups — the Algorithm 3 benefit the cost model charges for.
func TestAggJoinHashEmitsLess(t *testing.T) {
	run := func(hash bool) int64 {
		c := newCluster()
		// All triples in one group: hash agg should emit once per task.
		w, err := c.FS.Create("in", 1)
		if err != nil {
			t.Fatal(err)
		}
		g := tg("only")
		for i := 0; i < 50; i++ {
			g.Triples = append(g.Triples, ntga.PO{Prop: "price", Obj: "L1"})
		}
		w.Write(g.Encode())
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		src := Source{Files: []string{"in"}, Scan: &ScanSpec{Star: 0, Prim: []algebra.PropRef{{Prop: "price"}}}}
		m, err := c.Run(AggJoinJob("agg", src, aggSpecs(false), false, hash, "out"))
		if err != nil {
			t.Fatal(err)
		}
		return m.MapEmitRecords
	}
	hashEmits, combEmits := run(true), run(false)
	if hashEmits >= combEmits {
		t.Errorf("hash agg emitted %d records, combiner path %d; want fewer", hashEmits, combEmits)
	}
}

func TestAggJoinTaggedParallel(t *testing.T) {
	c := newCluster()
	src := aggInput(c)
	job := AggJoinJob("agg", src, aggSpecs(true), true, true, "out")
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	got := readTuples(t, c, "out")
	// id 0: per-subject counts; id 1: one SUM-ALL row (10+20+5=35).
	want := []string{"0|Ia|2", "0|Ib|1", "1|35"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("rows = %v", got)
	}
}

func TestAggJoinAlphaGate(t *testing.T) {
	c := newCluster()
	src := aggInput(c)
	specs := aggSpecs(false)
	specs[0].Alpha = func(a *ntga.AnnTG) bool { return a.TGs[0].Subject != "Ib" }
	if _, err := c.Run(AggJoinJob("agg", src, specs, false, true, "out")); err != nil {
		t.Fatal(err)
	}
	got := readTuples(t, c, "out")
	if len(got) != 1 || got[0] != "Ia|2" {
		t.Errorf("rows = %v", got)
	}
}

func TestAggJoinUntaggedRequiresSingleSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("untagged AggJoinJob with two specs did not panic")
		}
	}()
	AggJoinJob("agg", Source{}, aggSpecs(true), false, true, "out")
}

func TestJoinKeysMissingStar(t *testing.T) {
	a := ntga.NewAnnTG(0, tg("x", [2]string{"p", "Iy"}))
	if keys := joinKeys(&a, Endpoint{Star: 3, Role: algebra.RoleSubject}, nil); keys != nil {
		t.Errorf("keys for missing star = %v", keys)
	}
	ep := Endpoint{Star: 0, Role: algebra.RoleObject, Props: []algebra.PropRef{{Prop: "p"}}}
	keys := joinKeys(&a, ep, ep.planeProps(nil))
	if len(keys) != 1 || keys[0] != "Iy" {
		t.Errorf("object keys = %v", keys)
	}
}
