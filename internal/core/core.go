// Package core implements RAPIDAnalytics — the paper's contribution. A
// multi-grouping analytical query whose graph patterns overlap (Definition
// 3.2) is rewritten to a single composite graph pattern (§3) and evaluated
// as:
//
//	MR_1..n-1  TG_OptGrpFilter (map) + TG_AlphaJoin (reduce): one cycle per
//	           composite join edge, sharing scans and star computations
//	           across all original patterns and discarding combinations
//	           that match no original pattern (Table 2).
//	MR_n       generalised TG_AgJ (Figure 6b): every grouping-aggregation
//	           evaluates in parallel in one cycle, with map-side hash
//	           pre-aggregation (Algorithm 3).
//	MR_n+1     map-only join of the aggregated triplegroups.
//
// Options expose the paper's design choices for ablation: sequential
// aggregation (Figure 6a), disabling the α-Join filter, and disabling hash
// pre-aggregation. Queries that cannot be rewritten (single grouping,
// non-overlapping patterns) fall back to sequential NTGA evaluation with
// hash aggregation — RAPIDAnalytics' own single-grouping path in §5.2.
package core

import (
	"fmt"
	"sync/atomic"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/ntga"
	"rapidanalytics/internal/obs"
	"rapidanalytics/internal/rapid"
	"rapidanalytics/internal/stats"
	"rapidanalytics/internal/tgops"
)

var runSeq atomic.Int64

// Options toggle the optimizations RAPIDAnalytics layers over naive NTGA
// evaluation. The zero value disables everything; use DefaultOptions for
// the paper's configuration.
type Options struct {
	// ParallelAggregation evaluates all independent grouping-aggregations
	// in one generalised TG_AgJ cycle (Figure 6b) instead of one cycle per
	// grouping (Figure 6a).
	ParallelAggregation bool
	// AlphaFiltering discards joined triplegroups matching no original
	// pattern during TG_AlphaJoin (Definition 3.5). Disabling it
	// materialises every composite combination (correctness is unaffected:
	// TG_AgJ's per-pattern α conditions still gate aggregation).
	AlphaFiltering bool
	// HashAggregation enables the mapper-wide pre-aggregation hash table of
	// Algorithm 3; disabled, TG_AgJ falls back to a plain combiner.
	HashAggregation bool
	// InputPruning limits triplegroup scans to the equivalence classes
	// that can match each star's primary properties (the paper's
	// pre-processing benefit); disabled, every class is scanned.
	InputPruning bool
	// DictionaryEncoding runs the whole data plane on compact integer term
	// IDs (rdf.Dict) instead of lexical term keys, decoding back to
	// lexical form only at the aggregation boundary. The plane is physical:
	// it is consumed at dataset-load time (engine.LoadWith / the bench
	// loaders honour it), and at query time every engine follows the plane
	// the dataset was materialised in (Dataset.Dict).
	DictionaryEncoding bool
	// CostPlanner orders join chains by predicted cardinality from the
	// dataset's statistics catalog (internal/stats) and sizes reduce
	// partitions from the predictions, with a mid-query re-plan hook;
	// disabled, join order falls back to the star-0-first heuristic.
	CostPlanner bool
	// ReplanRatio is the estimate-vs-observed error ratio that triggers a
	// mid-query re-plan of the remaining join chain; <= 0 never re-plans.
	ReplanRatio float64
}

// DefaultOptions is the configuration evaluated in the paper.
func DefaultOptions() Options {
	return Options{
		ParallelAggregation: true,
		AlphaFiltering:      true,
		HashAggregation:     true,
		InputPruning:        true,
		DictionaryEncoding:  true,
		CostPlanner:         true,
		ReplanRatio:         rapid.DefaultReplanRatio,
	}
}

// SubResultCache caches reusable composite-relation outputs across
// queries: the serving layer plugs the store's byte-budget result cache in
// here so concurrent and repeated queries over one dataset materialisation
// skip the whole TG_OptGrpFilter + α-Join chain when an identical composite
// pattern was already evaluated. Implementations must be safe for
// concurrent use.
type SubResultCache interface {
	// Get returns the cached composite matches for a key.
	Get(key string) (tgops.Source, bool)
	// Put caches composite matches accounted at bytes.
	Put(key string, src tgops.Source, bytes int64)
}

// Engine is the RAPIDAnalytics engine.
type Engine struct {
	Opts Options
	// SubResults, when non-nil, caches composite-relation outputs across
	// executions; see SubResultCache. Keys embed the dataset name (unique
	// per materialisation), so entries from a superseded load are never
	// addressable.
	SubResults SubResultCache
}

// New returns the engine with the paper's default options.
func New() *Engine { return &Engine{Opts: DefaultOptions()} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "RAPIDAnalytics" }

// Execute implements engine.Engine.
func (e *Engine) Execute(c *mapred.Cluster, ds *engine.Dataset, aq *algebra.AnalyticalQuery) (*engine.Result, *mapred.WorkflowMetrics, error) {
	run := engine.NewRunner(c, fmt.Sprintf("tmp/rapidanalytics/%d", runSeq.Add(1)))
	if len(aq.Subqueries) < 2 {
		return e.executeSequential(run, ds, aq)
	}
	ps := obs.StartChild(c.Context(), obs.KindPlanner, "composite-rewrite")
	cp, err := algebra.BuildComposite(aq.Subqueries)
	ps.End()
	if err != nil {
		// Non-overlapping patterns: no composite rewriting applies.
		return e.executeSequential(run, ds, aq)
	}
	matched, err := e.compositeMatches(run, ds, cp)
	if err != nil {
		return nil, run.WM, err
	}
	if !e.Opts.ParallelAggregation {
		// Figure 6(a): one TG_AgJ cycle per grouping over the shared
		// composite matches.
		var aggFiles []string
		for k, sq := range aq.Subqueries {
			out := run.Path(fmt.Sprintf("aggjoin%d", k))
			job := tgops.AggJoinJob(fmt.Sprintf("aggjoin%d", k), matched,
				[]tgops.AggJoinSpec{e.aggSpec(ds, cp, sq, k)}, false, e.Opts.HashAggregation, out)
			if err := run.Exec(job); err != nil {
				return nil, run.WM, err
			}
			aggFiles = append(aggFiles, out)
		}
		return engine.FinishQuery(run, aq, aggFiles)
	}
	// Figure 6(b): the generalised TG_AgJ evaluates every aggregation in
	// parallel within a single cycle.
	specs := make([]tgops.AggJoinSpec, len(aq.Subqueries))
	for k, sq := range aq.Subqueries {
		specs[k] = e.aggSpec(ds, cp, sq, k)
	}
	tagged := run.Path("aggjoin-parallel")
	job := tgops.AggJoinJob("aggjoin-parallel", matched, specs, true, e.Opts.HashAggregation, tagged)
	if err := run.Exec(job); err != nil {
		return nil, run.WM, err
	}
	return engine.FinishQueryTagged(run, aq, tagged)
}

// executeSequential is the fallback path: per-subquery NTGA evaluation with
// this engine's aggregation options.
func (e *Engine) executeSequential(run *engine.Runner, ds *engine.Dataset, aq *algebra.AnalyticalQuery) (*engine.Result, *mapred.WorkflowMetrics, error) {
	var aggFiles []string
	for k, sq := range aq.Subqueries {
		file, err := rapid.EvalSubquery(run, ds, sq, k, e.Opts.HashAggregation, e.Opts.InputPruning, e.Opts.CostPlanner, e.Opts.ReplanRatio)
		if err != nil {
			return nil, run.WM, err
		}
		aggFiles = append(aggFiles, file)
	}
	return engine.FinishQuery(run, aq, aggFiles)
}

// compositeMatches returns the composite pattern's matched triplegroups,
// served from the sub-result cache when an identical composite evaluation
// (same dataset materialisation, same pattern, filters and option flags)
// already ran; otherwise it evaluates the pattern and caches the output.
// Cached sources are reused read-only: DFS snapshots are immutable and
// re-openable, so N queries can consume one materialised (or streamed)
// match relation concurrently.
func (e *Engine) compositeMatches(run *engine.Runner, ds *engine.Dataset, cp *algebra.CompositePattern) (tgops.Source, error) {
	if e.SubResults == nil {
		return e.evalComposite(run, ds, cp)
	}
	key := compositeKey(ds, cp, e.Opts)
	if src, ok := e.SubResults.Get(key); ok {
		sp := obs.StartChild(run.C.Context(), obs.KindPlanner, "cache-hit")
		sp.End()
		return src, nil
	}
	src, err := e.evalComposite(run, ds, cp)
	if err != nil {
		return src, err
	}
	e.SubResults.Put(key, src, sourceBytes(run, src))
	return src, nil
}

// compositeKey identifies one composite evaluation. CompositePattern.String
// renders stars and join structure but not the shared FILTER constraints,
// so those are appended explicitly — two queries with the same pattern but
// different filters must not collide. The option flags that change the
// matched relation's content or record order (α filtering, input pruning,
// cost-based join order) are folded in too, keeping cached reuse
// byte-deterministic per configuration.
func compositeKey(ds *engine.Dataset, cp *algebra.CompositePattern, o Options) string {
	return fmt.Sprintf("%s\x00%s\x00%+v\x00%t|%t|%t|%t", ds.Name, cp.String(), cp.Filters,
		o.AlphaFiltering, o.InputPruning, o.CostPlanner, o.ParallelAggregation)
}

// sourceBytes accounts a cached source at its logical DFS size.
func sourceBytes(run *engine.Runner, src tgops.Source) int64 {
	var n int64
	for _, name := range src.Files {
		if f, err := run.C.FS.Open(name); err == nil {
			n += f.Bytes()
			f.Close()
		}
	}
	return n
}

// evalComposite evaluates the composite graph pattern: TG_OptGrpFilter
// scans per composite star, then the α-Join chain.
func (e *Engine) evalComposite(run *engine.Runner, ds *engine.Dataset, cp *algebra.CompositePattern) (tgops.Source, error) {
	scans := make([]tgops.Source, len(cp.Stars))
	for i, cs := range cp.Stars {
		scans[i] = compositeStarScan(ds, i, cs, cp, e.Opts.InputPruning)
	}
	var ad *rapid.Adaptive
	ps := obs.StartChild(run.C.Context(), obs.KindPlanner, "join-order")
	var order []algebra.Join
	var err error
	if e.Opts.CostPlanner && ds.Stats != nil {
		refs := make([][]algebra.PropRef, len(cp.Stars))
		for i, cs := range cp.Stars {
			refs[i] = cs.PrimaryRefs()
		}
		est := stats.NewEstimator(ds.Stats, refs, false)
		order, err = algebra.JoinOrderCost(len(cp.Stars), cp.Joins, est)
		ad = &rapid.Adaptive{Est: est, ReplanRatio: e.Opts.ReplanRatio}
	} else {
		order, err = algebra.JoinOrder(len(cp.Stars), cp.Joins)
	}
	ps.End()
	if err != nil {
		return tgops.Source{}, err
	}
	alphaCP := cp
	if !e.Opts.AlphaFiltering {
		alphaCP = nil
	}
	// With parallel aggregation a single generalised TG_AgJ consumes the
	// matches, so the final join streams too; sequential aggregation runs
	// one TG_AgJ per subquery over the shared matches, which need the real
	// DFS checkpoint.
	return rapid.JoinChain(run, scans, order, "composite", ntga.ResolveAlpha(alphaCP, ds.Dict), e.Opts.ParallelAggregation, ad)
}

// compositeStarScan builds the scan for one composite star: primary
// properties required, secondary properties optional, shared filters at
// triple level.
func compositeStarScan(ds *engine.Dataset, star int, cs *algebra.CompositeStar, cp *algebra.CompositePattern, prune bool) tgops.Source {
	prim := cs.PrimaryRefs()
	spec := &tgops.ScanSpec{
		Star: star,
		Prim: prim,
		Opt:  cs.SecondaryRefs(),
	}
	for _, f := range cp.Filters {
		for _, p := range cs.Props {
			if p.TP.O.IsVar && p.TP.O.Var == f.Var {
				spec.Filters = append(spec.Filters, tgops.PropFilter{Prop: p.Ref.Prop, Filter: f})
			}
		}
	}
	files := ds.TG.FilesFor(prim)
	if !prune {
		files = ds.TG.AllFiles()
	}
	return tgops.Source{Files: files, Scan: spec, Dict: ds.Dict}
}

// aggSpec builds original pattern k's TG_AgJ requirement over the
// composite: grouping/aggregation variables mapped to composite names,
// bindings enumerated from the pattern's canonical triples, and the α
// condition of Figure 5 gating which triplegroups contribute.
func (e *Engine) aggSpec(ds *engine.Dataset, cp *algebra.CompositePattern, sq *algebra.Subquery, k int) tgops.AggJoinSpec {
	groupVars := make([]string, len(sq.GroupBy))
	for i, g := range sq.GroupBy {
		groupVars[i] = cp.VarMaps[k][g]
	}
	alpha := ntga.ResolveAlpha(cp, ds.Dict)
	aggs := make([]algebra.AggSpec, len(sq.Aggs))
	for i, a := range sq.Aggs {
		aggs[i] = algebra.AggSpec{Func: a.Func, Var: cp.VarMaps[k][a.Var], As: a.As, Distinct: a.Distinct}
	}
	return tgops.AggJoinSpec{
		ID:        k,
		GroupVars: groupVars,
		Aggs:      aggs,
		TPs:       ntga.PatternTriples(cp, k),
		// Composite patterns never carry OPTIONALs (stars with OPTIONALs do
		// not overlap); sequential fallback handles them.
		Alpha: func(a *ntga.AnnTG) bool {
			return alpha.Satisfies(a, k)
		},
		Having: rapid.GroupedHaving(sq),
	}
}
