package core

import (
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/refimpl"
	"rapidanalytics/internal/sparql"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }

func graph() *rdf.Graph {
	g := &rdf.Graph{}
	g.Add(
		rdf.T(iri("s1"), iri("p"), iri("x")),
		rdf.T(iri("s1"), iri("q"), rdf.NewLiteral("1")),
		rdf.T(iri("s2"), iri("p"), iri("x")),
		rdf.T(iri("s2"), iri("q"), rdf.NewLiteral("2")),
		rdf.T(iri("s3"), iri("p"), iri("y")),
		rdf.T(iri("s3"), iri("q"), rdf.NewLiteral("3")),
		rdf.T(iri("s4"), iri("r"), rdf.NewLiteral("7")),
		rdf.T(iri("s5"), iri("r"), rdf.NewLiteral("8")),
	)
	return g
}

func mustAQ(t *testing.T, q string) *algebra.AnalyticalQuery {
	t.Helper()
	parsed, err := sparql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	aq, err := algebra.Build(parsed)
	if err != nil {
		t.Fatal(err)
	}
	return aq
}

func TestDefaultOptionsAllOn(t *testing.T) {
	o := DefaultOptions()
	if !o.ParallelAggregation || !o.AlphaFiltering || !o.HashAggregation {
		t.Errorf("DefaultOptions = %+v", o)
	}
	if New().Name() != "RAPIDAnalytics" {
		t.Errorf("Name = %q", New().Name())
	}
}

// A single-star, single-grouping query takes exactly one cycle: the
// Agg-Join reads the filtered triplegroup scan directly, with no join
// cycle at all.
func TestSingleStarSingleCycle(t *testing.T) {
	g := graph()
	aq := mustAQ(t, `PREFIX e: <http://e/>
SELECT ?x (COUNT(?v) AS ?n) { ?s e:p ?x ; e:q ?v . } GROUP BY ?x`)
	c := mapred.NewCluster(mapred.DefaultConfig())
	ds, err := engine.Load(c, "t", g)
	if err != nil {
		t.Fatal(err)
	}
	res, wm, err := New().Execute(c, ds, aq)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Cycles() != 1 {
		t.Errorf("cycles = %d, want 1", wm.Cycles())
	}
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	if diff := want.Diff(res); diff != "" {
		t.Errorf("differs from oracle: %s", diff)
	}
}

// Non-overlapping multi-grouping queries fall back to sequential NTGA
// evaluation and still produce oracle-identical results.
func TestFallbackOnNonOverlap(t *testing.T) {
	g := graph()
	aq := mustAQ(t, `PREFIX e: <http://e/>
SELECT ?x ?n ?m {
  { SELECT ?x (COUNT(?v) AS ?n) { ?s e:p ?x ; e:q ?v . } GROUP BY ?x }
  { SELECT (COUNT(?y) AS ?m) { ?s2 e:r ?y . } }
}`)
	if _, err := algebra.BuildComposite(aq.Subqueries); err == nil {
		t.Fatal("patterns unexpectedly overlap; test fixture broken")
	}
	c := mapred.NewCluster(mapred.DefaultConfig())
	ds, err := engine.Load(c, "t", g)
	if err != nil {
		t.Fatal(err)
	}
	res, wm, err := New().Execute(c, ds, aq)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential: (1 agg) + (1 agg) + final join.
	if wm.Cycles() != 3 {
		t.Errorf("fallback cycles = %d, want 3", wm.Cycles())
	}
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	if diff := want.Diff(res); diff != "" {
		t.Errorf("fallback differs from oracle: %s", diff)
	}
}
