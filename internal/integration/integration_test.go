// Package integration cross-validates the four evaluated engines against
// the in-memory oracle on hand-built graphs, and asserts the MR-cycle
// counts the paper reports in §5.2.
package integration

import (
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/core"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/hive"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/rapid"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/refimpl"
	"rapidanalytics/internal/sparql"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

// ecommerceGraph builds the shared test fixture (same shape as the
// refimpl tests, plus vendors and countries).
func ecommerceGraph() *rdf.Graph {
	g := &rdf.Graph{}
	prod := func(name, typ string, features ...string) {
		g.Add(rdf.T(iri(name), rdf.TypeTerm, iri(typ)))
		g.Add(rdf.T(iri(name), iri("label"), lit("label-"+name)))
		for _, f := range features {
			g.Add(rdf.T(iri(name), iri("pf"), iri(f)))
		}
	}
	offer := func(name, product, price, vendor string) {
		g.Add(rdf.T(iri(name), iri("product"), iri(product)))
		g.Add(rdf.T(iri(name), iri("price"), lit(price)))
		g.Add(rdf.T(iri(name), iri("vendor"), iri(vendor)))
	}
	vendor := func(name, country string) {
		g.Add(rdf.T(iri(name), iri("country"), lit(country)))
		g.Add(rdf.T(iri(name), iri("label"), lit("vendor-"+name)))
	}
	prod("p1", "PT1", "f1", "f2")
	prod("p2", "PT1", "f1")
	prod("p3", "PT1")
	prod("p4", "PT2", "f1")
	prod("p5", "PT1", "f2", "f3")
	offer("o1", "p1", "10", "v1")
	offer("o2", "p1", "20", "v1")
	offer("o3", "p2", "40", "v2")
	offer("o4", "p3", "100", "v1")
	offer("o5", "p4", "7", "v2")
	offer("o6", "p5", "25", "v3")
	offer("o7", "p5", "35", "v2")
	vendor("v1", "UK")
	vendor("v2", "DE")
	vendor("v3", "UK")
	return g
}

const prefix = "PREFIX e: <http://e/>\n"

// queries exercised on every engine. Shapes mirror the paper's catalog:
// MG1 (2-star overlap, GROUP BY ALL roll-up), MG3 (3-star overlap with a
// shared grouping column), a single-grouping G-style query, filters, and
// non-overlapping patterns (engines must fall back).
var queries = map[string]string{
	"mg1": prefix + `SELECT ?f ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a e:PT1 ; e:label ?l2 ; e:pf ?f .
      ?off2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a e:PT1 ; e:label ?l1 .
      ?off1 e:product ?p1 ; e:price ?pr . } }
}`,
	"mg3": prefix + `SELECT ?f ?c ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f ?c (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a e:PT1 ; e:label ?l2 ; e:pf ?f .
      ?off2 e:product ?p2 ; e:price ?pr2 ; e:vendor ?v2 .
      ?v2 e:country ?c . } GROUP BY ?f ?c }
  { SELECT ?c (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a e:PT1 ; e:label ?l1 .
      ?off1 e:product ?p1 ; e:price ?pr ; e:vendor ?v1 .
      ?v1 e:country ?c . } GROUP BY ?c }
}`,
	"g3-style": prefix + `SELECT ?f (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {
  ?p a e:PT1 ; e:label ?l ; e:pf ?f .
  ?off e:product ?p ; e:price ?pr .
} GROUP BY ?f`,
	"g1-style-all": prefix + `SELECT (COUNT(?pr) AS ?cnt) (AVG(?pr) AS ?avg) {
  ?p a e:PT1 ; e:label ?l .
  ?off e:product ?p ; e:price ?pr .
}`,
	"filtered": prefix + `SELECT ?f (COUNT(?pr) AS ?cnt) {
  ?p a e:PT1 ; e:pf ?f .
  ?off e:product ?p ; e:price ?pr .
  FILTER (?pr > 15)
} GROUP BY ?f`,
	"regex-filtered": prefix + `SELECT ?p (COUNT(?l) AS ?cnt) {
  ?p a e:PT1 ; e:label ?l .
  FILTER regex(?l, "label-p[125]", "i")
} GROUP BY ?p`,
	"minmax": prefix + `SELECT ?f ?lo ?hi ?cntT {
  { SELECT ?f (MIN(?pr2) AS ?lo) (MAX(?pr2) AS ?hi)
    { ?p2 a e:PT1 ; e:pf ?f . ?off2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT)
    { ?p1 a e:PT1 . ?off1 e:product ?p1 ; e:price ?pr . } }
}`,
	"ratio-expr": prefix + `SELECT ?f ((?sumF/?cntF) / (?sumT/?cntT) AS ?ratio) {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a e:PT1 ; e:pf ?f . ?off2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a e:PT1 . ?off1 e:product ?p1 ; e:price ?pr . } }
}`,
	"non-overlapping": prefix + `SELECT ?f ?cntF ?cntV {
  { SELECT ?f (COUNT(?p2) AS ?cntF) { ?p2 a e:PT1 ; e:pf ?f . } GROUP BY ?f }
  { SELECT (COUNT(?c) AS ?cntV) { ?v e:country ?c ; e:label ?lv . } }
}`,
	"empty-all-side": prefix + `SELECT ?f ?cntF ?cntT {
  { SELECT ?f (COUNT(?p2) AS ?cntF) { ?p2 a e:PT1 ; e:pf ?f . } GROUP BY ?f }
  { SELECT (COUNT(?x) AS ?cntT) { ?p1 a e:PT9 ; e:pf ?x . } }
}`,
	"count-distinct": prefix + `SELECT ?c ?nv ?cntT {
  { SELECT ?c (COUNT(DISTINCT ?p2) AS ?nv)
    { ?off2 e:product ?p2 ; e:vendor ?v2 . ?v2 e:country ?c . } GROUP BY ?c }
  { SELECT (COUNT(DISTINCT ?p) AS ?cntT) { ?off e:product ?p ; e:price ?pr . } }
}`,
	"sum-distinct": prefix + `SELECT ?f (SUM(DISTINCT ?pr) AS ?s) {
  ?p a e:PT1 ; e:pf ?f .
  ?off e:product ?p ; e:price ?pr .
} GROUP BY ?f`,
	"shared-grouping-join": prefix + `SELECT ?c ?cntC ?cntT {
  { SELECT ?c (COUNT(?pr2) AS ?cntC)
    { ?off2 e:product ?p2 ; e:price ?pr2 ; e:vendor ?v2 . ?v2 e:country ?c . } GROUP BY ?c }
  { SELECT ?c (COUNT(?v) AS ?cntT)
    { ?v e:country ?c ; e:label ?lv . } GROUP BY ?c }
}`,
}

func engines() []engine.Engine {
	return []engine.Engine{hive.NewNaive(), hive.NewMQO(), rapid.New(), core.New()}
}

func setup(t *testing.T, g *rdf.Graph) (*mapred.Cluster, *engine.Dataset) {
	t.Helper()
	cfg := mapred.DefaultConfig()
	cfg.ExecSplitBytes = 256 // force several map tasks even on tiny data
	c := mapred.NewCluster(cfg)
	ds, err := engine.Load(c, "test", g)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return c, ds
}

func buildAQ(t *testing.T, qs string) *algebra.AnalyticalQuery {
	t.Helper()
	q, err := sparql.Parse(qs)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	aq, err := algebra.Build(q)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return aq
}

// TestEnginesMatchOracle is the central correctness gate: every engine
// returns exactly the oracle's rows on every catalog shape.
func TestEnginesMatchOracle(t *testing.T) {
	g := ecommerceGraph()
	for name, qs := range queries {
		t.Run(name, func(t *testing.T) {
			aq := buildAQ(t, qs)
			want, err := refimpl.Execute(g, aq)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if name != "empty-all-side" && len(want.Rows) == 0 {
				t.Fatalf("oracle returned no rows; weak test fixture")
			}
			for _, e := range engines() {
				c, ds := setup(t, g)
				got, wm, err := e.Execute(c, ds, aq)
				if err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				if diff := want.Diff(got); diff != "" {
					t.Errorf("%s differs from oracle: %s", e.Name(), diff)
				}
				if wm.Cycles() == 0 {
					t.Errorf("%s: no cycles recorded", e.Name())
				}
			}
		})
	}
}

// TestCycleCounts asserts the MR-cycle counts the paper quotes in §5.2.
func TestCycleCounts(t *testing.T) {
	g := ecommerceGraph()
	cases := []struct {
		query  string
		counts map[string]int // engine name -> expected cycles
	}{
		{"mg1", map[string]int{
			"Hive (Naive)":   9, // 3 per graph pattern + 2 groupings + final join
			"Hive (MQO)":     7, // 3 composite + 3 extract/aggregate + final join
			"RAPID+ (Naive)": 5, // 2 per subquery + map-only join
			"RAPIDAnalytics": 3, // composite α-join, parallel Agg-Join, map-only join
		}},
		{"mg3", map[string]int{
			"Hive (Naive)":   11,
			"Hive (MQO)":     8,
			"RAPID+ (Naive)": 7,
			"RAPIDAnalytics": 4,
		}},
		{"g3-style", map[string]int{
			"Hive (Naive)":   4, // two star joins, inter-star join, grouping
			"RAPIDAnalytics": 2, // graph pattern cycle + Agg-Join cycle
		}},
	}
	for _, tc := range cases {
		aq := buildAQ(t, queries[tc.query])
		for _, e := range engines() {
			want, ok := tc.counts[e.Name()]
			if !ok {
				continue
			}
			c, ds := setup(t, g)
			_, wm, err := e.Execute(c, ds, aq)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.query, e.Name(), err)
			}
			if wm.Cycles() != want {
				t.Errorf("%s/%s: %d MR cycles, want %d", tc.query, e.Name(), wm.Cycles(), want)
			}
		}
	}
}

// TestRAPIDAnalyticsFinalCycleMapOnly verifies the final aggregated-TG join
// is a map-only cycle, as in Figure 6.
func TestRAPIDAnalyticsFinalCycleMapOnly(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, queries["mg1"])
	c, ds := setup(t, g)
	_, wm, err := core.New().Execute(c, ds, aq)
	if err != nil {
		t.Fatal(err)
	}
	last := wm.Jobs[len(wm.Jobs)-1]
	if !last.MapOnly {
		t.Error("final join cycle is not map-only")
	}
}

// TestCoreAblations: every ablation configuration must stay correct; the
// sequential-aggregation variant costs one extra cycle per additional
// grouping.
func TestCoreAblations(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, queries["mg3"])
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	var parallelCycles, seqCycles int
	for _, opts := range []core.Options{
		core.DefaultOptions(),
		{ParallelAggregation: false, AlphaFiltering: true, HashAggregation: true},
		{ParallelAggregation: true, AlphaFiltering: false, HashAggregation: true},
		{ParallelAggregation: true, AlphaFiltering: true, HashAggregation: false},
		{},
	} {
		e := &core.Engine{Opts: opts}
		c, ds := setup(t, g)
		got, wm, err := e.Execute(c, ds, aq)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Errorf("opts %+v: differs from oracle: %s", opts, diff)
		}
		if opts == core.DefaultOptions() {
			parallelCycles = wm.Cycles()
		}
		if opts.ParallelAggregation == false && opts.AlphaFiltering {
			seqCycles = wm.Cycles()
		}
	}
	if seqCycles != parallelCycles+1 {
		t.Errorf("sequential aggregation cycles = %d, parallel = %d; want +1", seqCycles, parallelCycles)
	}
}

// TestAlphaFilteringReducesMaterialization: with α filtering on, the join
// cycles must shuffle/materialise no more than with it off.
func TestAlphaFilteringReducesMaterialization(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, queries["mg1"])
	run := func(alpha bool) int64 {
		e := &core.Engine{Opts: core.Options{ParallelAggregation: true, AlphaFiltering: alpha, HashAggregation: true}}
		c, ds := setup(t, g)
		_, wm, err := e.Execute(c, ds, aq)
		if err != nil {
			t.Fatal(err)
		}
		return wm.MaterializedBytes()
	}
	on, off := run(true), run(false)
	if on > off {
		t.Errorf("α filtering materialised more bytes (%d) than without (%d)", on, off)
	}
}

// TestHiveMapJoinsKickIn: with small inputs every Hive join should compile
// to a map-only cycle except the grouping cycles.
func TestHiveMapJoinsKickIn(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, queries["g3-style"])
	c, ds := setup(t, g)
	h := hive.NewNaive() // default threshold far above this tiny dataset
	_, wm, err := h.Execute(c, ds, aq)
	if err != nil {
		t.Fatal(err)
	}
	if wm.MapOnlyCycles() != 3 { // 2 star joins + 1 inter-star join
		for _, j := range wm.Jobs {
			t.Logf("job %s map-only=%v", j.Job, j.MapOnly)
		}
		t.Errorf("map-only cycles = %d, want 3", wm.MapOnlyCycles())
	}
}

// TestHiveReduceJoinsWhenLarge: with a tiny map-join budget everything goes
// reduce-side and results stay correct.
func TestHiveReduceJoinsWhenLarge(t *testing.T) {
	g := ecommerceGraph()
	for _, name := range []string{"mg1", "g3-style"} {
		aq := buildAQ(t, queries[name])
		want, err := refimpl.Execute(g, aq)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []engine.Engine{
			&hive.Naive{Conf: hive.Config{MapJoinBytes: 0}},
			&hive.MQO{Conf: hive.Config{MapJoinBytes: 0}},
		} {
			c, ds := setup(t, g)
			got, wm, err := e.Execute(c, ds, aq)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, e.Name(), err)
			}
			if diff := want.Diff(got); diff != "" {
				t.Errorf("%s/%s differs: %s", name, e.Name(), diff)
			}
			// Only the final aggregated join may be map-only.
			if wm.MapOnlyCycles() > 1 {
				t.Errorf("%s/%s: %d map-only cycles with zero budget", name, e.Name(), wm.MapOnlyCycles())
			}
		}
	}
}

// TestDeterministicResults: engines must be deterministic run to run.
func TestDeterministicResults(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, queries["mg3"])
	for _, e := range engines() {
		c1, ds1 := setup(t, g)
		r1, _, err := e.Execute(c1, ds1, aq)
		if err != nil {
			t.Fatal(err)
		}
		c2, ds2 := setup(t, g)
		r2, _, err := e.Execute(c2, ds2, aq)
		if err != nil {
			t.Fatal(err)
		}
		if diff := r1.Diff(r2); diff != "" {
			t.Errorf("%s: nondeterministic: %s", e.Name(), diff)
		}
	}
}

// TestInputPruningAblation: disabling equivalence-class input pruning keeps
// results identical but scans more triplegroup input.
func TestInputPruningAblation(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, queries["mg1"])
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	run := func(prune bool) int64 {
		opts := core.DefaultOptions()
		opts.InputPruning = prune
		e := &core.Engine{Opts: opts}
		c, ds := setup(t, g)
		got, wm, err := e.Execute(c, ds, aq)
		if err != nil {
			t.Fatal(err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Fatalf("prune=%v differs: %s", prune, diff)
		}
		var in int64
		for _, j := range wm.Jobs {
			in += j.MapInputBytes
		}
		return in
	}
	pruned, full := run(true), run(false)
	if pruned >= full {
		t.Errorf("pruned scan read %d bytes, full scan %d; want less", pruned, full)
	}
}
