package integration

import (
	"errors"
	"strings"
	"testing"

	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/rdf"
)

// Failure injection: jobs must surface mapper/reducer errors and corrupt
// records instead of silently dropping data.

func TestMapperErrorAbortsJob(t *testing.T) {
	c, _ := setup(t, ecommerceGraph())
	boom := errors.New("boom")
	job := &mapred.Job{
		Name:   "failing",
		Inputs: []string{"test/tg/" + firstFile(t, c, "test/tg/")},
		Output: "out",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error { return boom })
		},
	}
	_, err := c.Run(job)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("mapper error not propagated: %v", err)
	}
	// The failed job must not leave a usable output file behind the
	// caller's back... it may exist but the error is authoritative.
}

func TestReducerErrorAbortsJob(t *testing.T) {
	c, _ := setup(t, ecommerceGraph())
	job := &mapred.Job{
		Name:   "failing-reduce",
		Inputs: []string{"test/tg/" + firstFile(t, c, "test/tg/")},
		Output: "out",
		NewMapper: func(tc *mapred.TaskContext) mapred.Mapper {
			return mapred.MapperFunc(func(rec []byte, emit mapred.Emit) error {
				emit("k", rec)
				return nil
			})
		},
		NewReducer: func() mapred.Reducer {
			return mapred.ReducerFunc(func(key string, values [][]byte, emit mapred.Emit) error {
				return errors.New("reduce exploded")
			})
		},
	}
	if _, err := c.Run(job); err == nil || !strings.Contains(err.Error(), "reduce exploded") {
		t.Fatalf("reducer error not propagated: %v", err)
	}
}

func firstFile(t *testing.T, c *mapred.Cluster, prefix string) string {
	t.Helper()
	names := c.FS.List(prefix)
	if len(names) == 0 {
		t.Fatalf("no files under %s", prefix)
	}
	return strings.TrimPrefix(names[0], prefix)
}

// Corrupt triplegroup records in the store must fail the NTGA engines
// loudly, not skew aggregates.
func TestCorruptTriplegroupDetected(t *testing.T) {
	g := ecommerceGraph()
	c, ds := setup(t, g)
	// Append garbage to every triplegroup file.
	for _, name := range c.FS.List("test/tg/") {
		f, err := c.FS.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := f.AllRecords()
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		w, err := c.FS.Create(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			w.Write(rec)
		}
		w.Write([]byte{0xFF, 0xFE, 0x01})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	aq := buildAQ(t, queries["mg1"])
	for _, e := range engines()[2:] { // the NTGA engines read these files
		if _, _, err := e.Execute(c, ds, aq); err == nil {
			t.Errorf("%s accepted corrupt triplegroup records", e.Name())
		}
	}
}

// A query over data that simply lacks the queried properties must return
// cleanly (empty or default rows), not error.
func TestQueryOverForeignData(t *testing.T) {
	g := &rdf.Graph{}
	g.Add(rdf.T(iri("x"), iri("unrelated"), lit("1")))
	aq := buildAQ(t, queries["mg1"])
	for _, e := range engines() {
		c, ds := setup(t, g)
		res, _, err := e.Execute(c, ds, aq)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(res.Rows) != 0 {
			t.Errorf("%s: rows = %v, want none (grouped side empty)", e.Name(), res.Rows)
		}
	}
}

// Engines must not mutate the base dataset: running one engine then
// another over the same loaded dataset yields identical results (the
// harness relies on this).
func TestEnginesDoNotCorruptSharedDataset(t *testing.T) {
	g := ecommerceGraph()
	c, ds := setup(t, g)
	aq := buildAQ(t, queries["mg3"])
	var first *engine.Result
	for round := 0; round < 2; round++ {
		for _, e := range engines() {
			got, _, err := e.Execute(c, ds, aq)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, e.Name(), err)
			}
			if first == nil {
				first = got
				continue
			}
			if diff := first.Diff(got); diff != "" {
				t.Fatalf("round %d %s drifted: %s", round, e.Name(), diff)
			}
		}
	}
}
