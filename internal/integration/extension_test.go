package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"rapidanalytics/internal/core"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/refimpl"
)

// The paper's conclusion names "more complex OLAP queries" as the natural
// extension. The composite-pattern machinery here is n-ary, so a full
// ROLLUP hierarchy — (feature, country), (country), () — evaluates as ONE
// composite pattern with THREE parallel aggregations in a single TG_AgJ
// cycle.
const rollupQuery = prefix + `SELECT ?f ?c ?cntFC ?cntC ?cntT {
  { SELECT ?f ?c (COUNT(?pr2) AS ?cntFC)
    { ?p2 a e:PT1 ; e:label ?l2 ; e:pf ?f .
      ?off2 e:product ?p2 ; e:price ?pr2 ; e:vendor ?v2 .
      ?v2 e:country ?c . } GROUP BY ?f ?c }
  { SELECT ?c (COUNT(?pr1) AS ?cntC)
    { ?p1 a e:PT1 ; e:label ?l1 .
      ?off1 e:product ?p1 ; e:price ?pr1 ; e:vendor ?v1 .
      ?v1 e:country ?c . } GROUP BY ?c }
  { SELECT (COUNT(?pr0) AS ?cntT)
    { ?p0 a e:PT1 ; e:label ?l0 .
      ?off0 e:product ?p0 ; e:price ?pr0 ; e:vendor ?v0 .
      ?v0 e:country ?c0 . } }
}`

func TestThreeGroupingRollup(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, rollupQuery)
	if len(aq.Subqueries) != 3 {
		t.Fatalf("subqueries = %d", len(aq.Subqueries))
	}
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("oracle empty")
	}
	for _, e := range engines() {
		c, ds := setup(t, g)
		got, wm, err := e.Execute(c, ds, aq)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Errorf("%s differs: %s", e.Name(), diff)
		}
		// RAPIDAnalytics still needs only one α-join chain + one parallel
		// Agg-Join + the final map-only join: 2 joins + 1 + 1 = 4 cycles
		// even with three groupings.
		if e.Name() == "RAPIDAnalytics" && wm.Cycles() != 4 {
			t.Errorf("RAPIDAnalytics rollup cycles = %d, want 4", wm.Cycles())
		}
		// RAPID+ pays 3 cycles per grouping: 9 + final join.
		if e.Name() == "RAPID+ (Naive)" && wm.Cycles() != 10 {
			t.Errorf("RAPID+ rollup cycles = %d, want 10", wm.Cycles())
		}
	}
}

// randomGraph builds a randomized e-commerce-shaped graph: arbitrary
// feature fan-outs (including none), offer fan-outs, price values and
// types. This drives the bag-semantics machinery (binding multiplicities,
// α conditions, NULL-producing outer joins) through configurations a
// hand-built fixture might miss.
func randomGraph(seed int64) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &rdf.Graph{}
	numProducts := 2 + rng.Intn(12)
	numFeatures := 1 + rng.Intn(5)
	types := []string{"PT1", "PT1", "PT1", "PT2"} // mostly PT1
	offerID := 0
	for i := 0; i < numProducts; i++ {
		p := iri(fmt.Sprintf("p%d", i))
		g.Add(rdf.T(p, rdf.TypeTerm, iri(types[rng.Intn(len(types))])))
		g.Add(rdf.T(p, iri("label"), lit(fmt.Sprintf("l%d", i))))
		for f := 0; f < rng.Intn(4); f++ {
			g.Add(rdf.T(p, iri("pf"), iri(fmt.Sprintf("f%d", rng.Intn(numFeatures)))))
		}
		for o := 0; o < rng.Intn(4); o++ {
			off := iri(fmt.Sprintf("o%d", offerID))
			offerID++
			g.Add(
				rdf.T(off, iri("product"), p),
				rdf.T(off, iri("price"), lit(fmt.Sprintf("%d", 1+rng.Intn(100)))),
			)
		}
	}
	return g
}

// TestEnginesMatchOracleOnRandomGraphs is the randomized version of the
// central correctness gate.
func TestEnginesMatchOracleOnRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep skipped in -short mode")
	}
	aqMG1 := buildAQ(t, queries["mg1"])
	aqRatio := buildAQ(t, queries["ratio-expr"])
	for seed := int64(0); seed < 25; seed++ {
		g := randomGraph(seed)
		want1, err := refimpl.Execute(g, aqMG1)
		if err != nil {
			t.Fatalf("seed %d oracle: %v", seed, err)
		}
		wantR, err := refimpl.Execute(g, aqRatio)
		if err != nil {
			t.Fatalf("seed %d oracle: %v", seed, err)
		}
		for _, e := range engines() {
			c, ds := setup(t, g)
			got, _, err := e.Execute(c, ds, aqMG1)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, e.Name(), err)
			}
			if diff := want1.Diff(got); diff != "" {
				t.Fatalf("seed %d %s mg1 differs: %s", seed, e.Name(), diff)
			}
			got, _, err = e.Execute(c, ds, aqRatio)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, e.Name(), err)
			}
			if diff := wantR.Diff(got); diff != "" {
				t.Fatalf("seed %d %s ratio differs: %s", seed, e.Name(), diff)
			}
		}
	}
}

// The sequential-aggregation option (Figure 6a) must also handle three
// groupings.
func TestRollupSequentialAggregation(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, rollupQuery)
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	e := &core.Engine{Opts: core.Options{ParallelAggregation: false, AlphaFiltering: true, HashAggregation: true}}
	c, ds := setup(t, g)
	got, wm, err := e.Execute(c, ds, aq)
	if err != nil {
		t.Fatal(err)
	}
	if diff := want.Diff(got); diff != "" {
		t.Errorf("sequential rollup differs: %s", diff)
	}
	if wm.Cycles() != 6 { // 2 joins + 3 sequential Agg-Joins + final
		t.Errorf("cycles = %d, want 6", wm.Cycles())
	}
}

// Engine interface sanity: names are distinct and stable (reports key on
// them).
func TestEngineNames(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range engines() {
		if seen[e.Name()] {
			t.Errorf("duplicate engine name %q", e.Name())
		}
		seen[e.Name()] = true
	}
	var _ engine.Engine = core.New()
}
