package integration

import (
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/refimpl"
	"rapidanalytics/internal/sparql"
)

// HAVING on a grouped subquery: features must have at least 2 offers.
const havingGrouped = prefix + `SELECT ?f ?cnt ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cnt)
    { ?p2 a e:PT1 ; e:pf ?f . ?off2 e:product ?p2 ; e:price ?pr2 . }
    GROUP BY ?f HAVING (COUNT(?pr2) >= 2) }
  { SELECT (COUNT(?pr) AS ?cntT)
    { ?p1 a e:PT1 . ?off1 e:product ?p1 ; e:price ?pr . } }
}`

func TestHavingGroupedAcrossEngines(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, havingGrouped)
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	// Fixture: f1 has 3 offers, f2 has 4, f3 has 2 (p5's two offers);
	// all pass >= 2. Tighten in a second query below. Here ensure non-empty
	// and oracle agreement.
	if len(want.Rows) == 0 {
		t.Fatal("oracle returned no rows; weak fixture")
	}
	for _, e := range engines() {
		c, ds := setup(t, g)
		got, _, err := e.Execute(c, ds, aq)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Errorf("%s differs: %s", e.Name(), diff)
		}
	}
}

// A stricter threshold actually removes groups.
func TestHavingFiltersGroups(t *testing.T) {
	g := ecommerceGraph()
	loose := buildAQ(t, havingGrouped)
	strictQuery := prefix + `SELECT ?f ?cnt ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cnt)
    { ?p2 a e:PT1 ; e:pf ?f . ?off2 e:product ?p2 ; e:price ?pr2 . }
    GROUP BY ?f HAVING (COUNT(?pr2) >= 4) }
  { SELECT (COUNT(?pr) AS ?cntT)
    { ?p1 a e:PT1 . ?off1 e:product ?p1 ; e:price ?pr . } }
}`
	strict := buildAQ(t, strictQuery)
	wantLoose, err := refimpl.Execute(g, loose)
	if err != nil {
		t.Fatal(err)
	}
	wantStrict, err := refimpl.Execute(g, strict)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantStrict.Rows) == 0 || len(wantStrict.Rows) >= len(wantLoose.Rows) {
		t.Fatalf("threshold did not narrow groups: %d vs %d", len(wantStrict.Rows), len(wantLoose.Rows))
	}
	for _, e := range engines() {
		c, ds := setup(t, g)
		got, _, err := e.Execute(c, ds, strict)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if diff := wantStrict.Diff(got); diff != "" {
			t.Errorf("%s differs: %s", e.Name(), diff)
		}
	}
}

// HAVING on a GROUP BY ALL subquery interacts with the default-row repair:
// when the single group fails the constraint, the whole join must be empty
// — the default row must NOT be resurrected.
func TestHavingOnGroupByAll(t *testing.T) {
	g := ecommerceGraph()
	for _, tc := range []struct {
		name      string
		threshold string
		wantEmpty bool
	}{
		{"passes", "2", false},
		{"fails", "1000", true},
	} {
		q := prefix + `SELECT ?f ?cnt ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cnt)
    { ?p2 a e:PT1 ; e:pf ?f . ?off2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT)
    { ?p1 a e:PT1 . ?off1 e:product ?p1 ; e:price ?pr . }
    HAVING (COUNT(?pr) >= ` + tc.threshold + `) }
}`
		aq := buildAQ(t, q)
		want, err := refimpl.Execute(g, aq)
		if err != nil {
			t.Fatal(err)
		}
		if tc.wantEmpty != (len(want.Rows) == 0) {
			t.Fatalf("%s: oracle rows = %d", tc.name, len(want.Rows))
		}
		for _, e := range engines() {
			c, ds := setup(t, g)
			got, _, err := e.Execute(c, ds, aq)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, e.Name(), err)
			}
			if diff := want.Diff(got); diff != "" {
				t.Errorf("%s/%s differs: %s", tc.name, e.Name(), diff)
			}
		}
	}
}

// HAVING with DISTINCT aggregates; the HAVING aggregate must match the
// projected one including the DISTINCT flag.
func TestHavingDistinct(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, prefix+`SELECT ?c (COUNT(DISTINCT ?p2) AS ?nv) {
  ?off2 e:product ?p2 ; e:vendor ?v2 . ?v2 e:country ?c .
} GROUP BY ?c HAVING (COUNT(DISTINCT ?p2) >= 3)`)
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines() {
		c, ds := setup(t, g)
		got, _, err := e.Execute(c, ds, aq)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Errorf("%s differs: %s", e.Name(), diff)
		}
	}
}

// A HAVING aggregate that is not projected is rejected at build time.
func TestHavingMustMatchProjection(t *testing.T) {
	q := prefix + `SELECT ?f (COUNT(?pr) AS ?cnt) {
  ?p a e:PT1 ; e:pf ?f . ?off e:product ?p ; e:price ?pr .
} GROUP BY ?f HAVING (SUM(?pr) > 100)`
	parsed, err := sparql.Parse(q)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := algebra.Build(parsed); err == nil {
		t.Error("unprojected HAVING aggregate accepted")
	}
}
