package integration

import (
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/refimpl"
	"rapidanalytics/internal/sparql"
)

// OPTIONAL clauses (§2.2's building block for the MQO rewriting) with
// left-outer semantics: unmatched optionals leave their variables NULL.

// Classic left-outer analytics: offer counts per feature *including*
// products without any feature, which land in the NULL group.
const optionalFeature = prefix + `SELECT ?f (COUNT(?pr) AS ?cnt) {
  ?p a e:PT1 ; e:label ?l .
  OPTIONAL { ?p e:pf ?f }
  ?off e:product ?p ; e:price ?pr .
} GROUP BY ?f`

func TestOptionalAcrossEngines(t *testing.T) {
	g := ecommerceGraph()
	for name, qs := range map[string]string{
		"optional-feature": optionalFeature,
		// Optional on the second star: offers may lack validity data.
		"optional-on-offer": prefix + `SELECT ?f (COUNT(?d) AS ?withDelivery) (COUNT(?pr) AS ?offers) {
  ?p a e:PT1 ; e:pf ?f .
  ?off e:product ?p ; e:price ?pr .
  OPTIONAL { ?off e:delivery ?d }
} GROUP BY ?f`,
		// Multi-grouping query whose patterns carry OPTIONALs: engines fall
		// back to sequential evaluation and stay correct.
		"optional-multi": prefix + `SELECT ?f ?cnt ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cnt)
    { ?p2 a e:PT1 ; e:label ?l2 .
      OPTIONAL { ?p2 e:pf ?f }
      ?off2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT)
    { ?p1 a e:PT1 . ?off1 e:product ?p1 ; e:price ?pr . } }
}`,
		// Aggregating the optional variable itself: COUNT skips NULLs.
		"optional-agg-var": prefix + `SELECT ?p2 (COUNT(?f) AS ?features) (COUNT(?l) AS ?labels) {
  ?p2 a e:PT1 ; e:label ?l .
  OPTIONAL { ?p2 e:pf ?f }
} GROUP BY ?p2`,
	} {
		t.Run(name, func(t *testing.T) {
			aq := buildAQ(t, qs)
			want, err := refimpl.Execute(g, aq)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if len(want.Rows) == 0 {
				t.Fatal("oracle returned no rows; weak fixture")
			}
			for _, e := range engines() {
				c, ds := setup(t, g)
				got, _, err := e.Execute(c, ds, aq)
				if err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				if diff := want.Diff(got); diff != "" {
					t.Errorf("%s differs: %s", e.Name(), diff)
				}
			}
		})
	}
}

// The NULL feature group must exist and count exactly the offers of
// featureless PT1 products (p3: one offer).
func TestOptionalNullGroup(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, optionalFeature)
	res, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	nullCount := ""
	for _, row := range res.Rows {
		if algebra.IsNull(row[0]) {
			nullCount = row[1]
		}
	}
	if nullCount != "1" {
		t.Fatalf("NULL feature group count = %q, want 1 (p3's single offer); rows: %v", nullCount, res.Rows)
	}
}

// Restrictions of the analytical subset are enforced.
func TestOptionalRejections(t *testing.T) {
	cases := map[string]string{
		"unbound subject":    prefix + `SELECT (COUNT(?x) AS ?n) { ?s e:p ?o . OPTIONAL { ?z e:q ?x } }`,
		"var reuse":          prefix + `SELECT (COUNT(?o) AS ?n) { ?s e:p ?o . OPTIONAL { ?s e:q ?o } }`,
		"required+optional":  prefix + `SELECT (COUNT(?o) AS ?n) { ?s e:p ?o . OPTIONAL { ?s e:p ?x } }`,
		"filter on optional": prefix + `SELECT (COUNT(?o) AS ?n) { ?s e:p ?o . OPTIONAL { ?s e:q ?x } FILTER (?x > 3) }`,
		"unbound prop":       prefix + `SELECT (COUNT(?o) AS ?n) { ?s e:p ?o . OPTIONAL { ?s ?q ?x } }`,
	}
	for name, qs := range cases {
		parsed, err := sparql.Parse(qs)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if _, err := algebra.Build(parsed); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}
