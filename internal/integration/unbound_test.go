package integration

import (
	"testing"

	"rapidanalytics/internal/refimpl"
)

// Unbound-property patterns ("don't care relationships", §5.2/[32]): the
// Hive engines scan the full triples table, the NTGA engines keep whole
// triplegroups and bind the property variable during Agg-Join matching.

// VoID-style dataset statistics: triples per property.
const propertyUsage = prefix + `SELECT ?p (COUNT(?o) AS ?uses) {
  ?s ?p ?o .
} GROUP BY ?p ORDER BY DESC(?uses) ?p`

// Type-constrained unbound star: property fan-out of PT1 products.
const typedUnbound = prefix + `SELECT ?p (COUNT(?o) AS ?n) {
  ?s a e:PT1 ; ?p ?o .
} GROUP BY ?p`

// Multi-grouping query with one unbound pattern: engines must fall back to
// sequential evaluation and stay correct.
const unboundMultiGrouping = prefix + `SELECT ?p ?n ?total {
  { SELECT ?p (COUNT(?o) AS ?n) { ?s a e:PT1 ; ?p ?o . } GROUP BY ?p }
  { SELECT (COUNT(?o2) AS ?total) { ?s2 ?p2 ?o2 . } }
}`

func TestUnboundPropertyAcrossEngines(t *testing.T) {
	g := ecommerceGraph()
	for name, qs := range map[string]string{
		"property-usage":    propertyUsage,
		"typed-unbound":     typedUnbound,
		"unbound-multi":     unboundMultiGrouping,
		"unbound-const-obj": prefix + `SELECT ?p (COUNT(?s) AS ?n) { ?s ?p e:f1 . } GROUP BY ?p`,
		// Filter on the unbound pattern's object variable: the bound
		// e:product triple (whose object is not numeric) must still satisfy
		// the star's primary constraint even though it fails the filter.
		"unbound-obj-filter": prefix + `SELECT ?p (COUNT(?o) AS ?n) {
  ?s e:product ?pp ; ?p ?o .
  FILTER (?o > 15)
} GROUP BY ?p`,
	} {
		t.Run(name, func(t *testing.T) {
			aq := buildAQ(t, qs)
			want, err := refimpl.Execute(g, aq)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if len(want.Rows) == 0 {
				t.Fatal("oracle returned no rows; weak fixture")
			}
			for _, e := range engines() {
				c, ds := setup(t, g)
				got, _, err := e.Execute(c, ds, aq)
				if err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				if diff := want.Diff(got); diff != "" {
					t.Errorf("%s differs: %s", e.Name(), diff)
				}
			}
		})
	}
}

// The property-usage query's totals must cover the whole graph.
func TestUnboundCoversWholeGraph(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, propertyUsage)
	res, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, row := range res.Rows {
		n := 0
		if _, err := sscan(row[1], &n); err != nil {
			t.Fatalf("bad count %q", row[1])
		}
		total += n
	}
	if total != g.Len() {
		t.Errorf("property usage total = %d, graph has %d triples", total, g.Len())
	}
}

func sscan(s string, n *int) (int, error) {
	v := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errNotNumber
		}
		v = v*10 + int(s[i]-'0')
	}
	*n = v
	return 1, nil
}

var errNotNumber = errString("not a number")

type errString string

func (e errString) Error() string { return string(e) }

// Filters apply to property variables too: count only bsbm-namespace-like
// properties via regex.
func TestUnboundWithPropertyFilter(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, prefix+`SELECT ?p (COUNT(?o) AS ?n) {
  ?s ?p ?o .
  FILTER regex(?p, "price|product", "i")
} GROUP BY ?p`)
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 2 {
		t.Fatalf("oracle rows = %v", want.Rows)
	}
	for _, e := range engines() {
		c, ds := setup(t, g)
		got, _, err := e.Execute(c, ds, aq)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Errorf("%s differs: %s", e.Name(), diff)
		}
	}
}
