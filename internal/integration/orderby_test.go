package integration

import (
	"strconv"
	"testing"

	"rapidanalytics/internal/refimpl"
)

// The paper's AQ1 asks for features with the *highest* price ratio — the
// natural form needs ORDER BY ... LIMIT, which costs every engine one
// extra single-reducer cycle (as in Hive).
const topRatioQuery = prefix + `SELECT ?f ((?sumF/?cntF) / (?sumT/?cntT) AS ?ratio) {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a e:PT1 ; e:pf ?f . ?off2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a e:PT1 . ?off1 e:product ?p1 ; e:price ?pr . } }
} ORDER BY DESC(?ratio) LIMIT 2`

func TestOrderByLimitAcrossEngines(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, topRatioQuery)
	if !aq.Sorted() || aq.Limit != 2 {
		t.Fatalf("query not parsed as sorted+limited: %+v", aq.OrderBy)
	}
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 2 {
		t.Fatalf("oracle rows = %v", want.Rows)
	}
	if num(t, want.Rows[0][1]) < num(t, want.Rows[1][1]) {
		t.Fatalf("oracle not descending: %v", want.Rows)
	}
	for _, e := range engines() {
		c, ds := setup(t, g)
		got, wm, err := e.Execute(c, ds, aq)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(got.Rows) != 2 {
			t.Fatalf("%s rows = %v", e.Name(), got.Rows)
		}
		// Ordered comparison, not set comparison.
		for i := range want.Rows {
			for j := range want.Rows[i] {
				if got.Rows[i][j] != want.Rows[i][j] {
					t.Fatalf("%s row %d = %v, want %v", e.Name(), i, got.Rows[i], want.Rows[i])
				}
			}
		}
		// The total-order pass is one extra cycle with a single reducer.
		last := wm.Jobs[len(wm.Jobs)-1]
		if last.Job != "order-by" || last.MapOnly {
			t.Errorf("%s: last cycle = %q (map-only %v), want order-by reduce cycle", e.Name(), last.Job, last.MapOnly)
		}
	}
}

// Ascending multi-key ordering without LIMIT, single-grouping shape.
func TestOrderByAscendingSingleGrouping(t *testing.T) {
	g := ecommerceGraph()
	aq := buildAQ(t, prefix+`SELECT ?f (COUNT(?pr) AS ?cnt) {
  ?p a e:PT1 ; e:pf ?f .
  ?off e:product ?p ; e:price ?pr .
} GROUP BY ?f ORDER BY ?cnt ?f`)
	want, err := refimpl.Execute(g, aq)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(want.Rows); i++ {
		if num(t, want.Rows[i-1][1]) > num(t, want.Rows[i][1]) {
			t.Fatalf("oracle not ascending: %v", want.Rows)
		}
	}
	for _, e := range engines() {
		c, ds := setup(t, g)
		got, _, err := e.Execute(c, ds, aq)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s rows = %d, want %d", e.Name(), len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			if got.Rows[i][0] != want.Rows[i][0] || got.Rows[i][1] != want.Rows[i][1] {
				t.Fatalf("%s row %d = %v, want %v", e.Name(), i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	lex := s
	if len(lex) > 0 && (lex[0] == 'L' || lex[0] == 'I') {
		lex = lex[1:]
	}
	f, err := strconv.ParseFloat(lex, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return f
}
