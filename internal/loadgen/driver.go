package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// DriverOptions configures a closed-loop replay.
type DriverOptions struct {
	// BaseURL is the server root (the driver appends /sparql).
	BaseURL string
	// Client issues the requests (default http.DefaultClient).
	Client *http.Client
	// Concurrency is the closed-loop worker count (default 8): each worker
	// issues its next request as soon as the previous response completes.
	Concurrency int
	// Format is the response serialisation requested (default "tsv", whose
	// byte output makes row-divergence hashing exact).
	Format string
}

// Metrics summarises one replay.
type Metrics struct {
	// Requests is how many requests completed (success or failure).
	Requests int `json:"requests"`
	// Errors counts transport failures and non-200 responses.
	Errors int `json:"errors"`
	// Divergent counts responses whose canonical row hash disagreed with an
	// earlier response for the same template. Any non-zero value means the
	// serving layer returned different rows for the same query text.
	Divergent int `json:"divergent"`
	// WallSeconds is the replay's end-to-end wall time.
	WallSeconds float64 `json:"wallSeconds"`
	// QPS is Requests / WallSeconds.
	QPS float64 `json:"qps"`
	// P50Millis is the median response latency over successful requests.
	P50Millis float64 `json:"p50Millis"`
	// P95Millis is the 95th-percentile response latency.
	P95Millis float64 `json:"p95Millis"`
	// P99Millis is the 99th-percentile response latency.
	P99Millis float64 `json:"p99Millis"`
	// StatusCounts histograms HTTP status codes.
	StatusCounts map[int]int `json:"statusCounts"`
	// Hashes maps each template id to its canonical response hash, for
	// cross-replay row-identity checks.
	Hashes map[string]string `json:"-"`
}

// Run replays the schedule closed-loop against the server and returns the
// replay's metrics. Every 200 response is hashed canonically per template
// (rows sorted, so engines that order unordered results differently still
// compare equal); within-replay disagreements are counted in
// Metrics.Divergent, and Metrics.Hashes supports cross-replay checks.
func Run(reqs []Request, opts DriverOptions) Metrics {
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	workers := opts.Concurrency
	if workers <= 0 {
		workers = 8
	}
	format := opts.Format
	if format == "" {
		format = "tsv"
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		m         = Metrics{StatusCounts: map[int]int{}, Hashes: map[string]string{}}
	)
	ch := make(chan Request)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range ch {
				reqStart := time.Now()
				status, body, err := do(client, opts.BaseURL, format, req)
				elapsed := time.Since(reqStart)
				mu.Lock()
				m.Requests++
				if err != nil || status != http.StatusOK {
					m.Errors++
					if err == nil {
						m.StatusCounts[status]++
					}
				} else {
					m.StatusCounts[status]++
					latencies = append(latencies, elapsed)
					h := canonHash(body)
					if prev, ok := m.Hashes[req.TemplateID]; !ok {
						m.Hashes[req.TemplateID] = h
					} else if prev != h {
						m.Divergent++
					}
				}
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	for _, r := range reqs {
		ch <- r
	}
	close(ch)
	wg.Wait()
	m.WallSeconds = time.Since(start).Seconds()
	if m.WallSeconds > 0 {
		m.QPS = float64(m.Requests) / m.WallSeconds
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	m.P50Millis = quantile(latencies, 0.50)
	m.P95Millis = quantile(latencies, 0.95)
	m.P99Millis = quantile(latencies, 0.99)
	return m
}

func do(client *http.Client, base, format string, req Request) (int, string, error) {
	u := base + "/sparql?format=" + url.QueryEscape(format) +
		"&system=" + url.QueryEscape(req.System) +
		"&query=" + url.QueryEscape(req.SPARQL)
	resp, err := client.Get(u)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, string(body), nil
}

// canonHash hashes a TSV body with its lines sorted, so responses whose
// unordered rows arrive in different orders still hash equal.
func canonHash(body string) string {
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:])
}

// quantile returns the q-quantile (0 < q <= 1) of sorted durations in
// milliseconds, 0 when empty.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds()) / 1000
}
