package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestScheduleDeterministic(t *testing.T) {
	tpl := CatalogTemplates()
	a := Schedule(tpl, ScheduleOptions{Seed: 7})
	b := Schedule(tpl, ScheduleOptions{Seed: 7})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different schedules")
	}
	c := Schedule(tpl, ScheduleOptions{Seed: 8})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a) != 200 {
		t.Fatalf("default schedule length = %d; want 200", len(a))
	}
}

func TestScheduleIsZipfSkewedWithBursts(t *testing.T) {
	tpl := CatalogTemplates()
	reqs := Schedule(tpl, ScheduleOptions{Seed: 1, Requests: 1000})
	counts := map[string]int{}
	bursts := 0
	for i, r := range reqs {
		counts[r.TemplateID]++
		if r.Burst && (i == 0 || !reqs[i-1].Burst || reqs[i-1].TemplateID != r.TemplateID) {
			bursts++
		}
	}
	// Zipf: the hottest template must dominate a uniform draw's share.
	uniform := len(reqs) / len(tpl)
	hot := 0
	for _, id := range []string{tpl[0].ID, tpl[1].ID, tpl[2].ID} {
		if counts[id] > hot {
			hot = counts[id]
		}
	}
	if hot < 3*uniform {
		t.Errorf("hottest template got %d of %d requests; want Zipf-dominant (> %d)", hot, len(reqs), 3*uniform)
	}
	if bursts == 0 {
		t.Error("schedule contains no bursts")
	}
	// Bursts repeat one of the top-3 templates.
	top := map[string]bool{tpl[0].ID: true, tpl[1].ID: true, tpl[2].ID: true}
	for _, r := range reqs {
		if r.Burst && !top[r.TemplateID] {
			t.Fatalf("burst request for cold template %s", r.TemplateID)
		}
	}
}

func TestScheduleSystemMix(t *testing.T) {
	reqs := Schedule(CatalogTemplates(), ScheduleOptions{Seed: 2, Requests: 1000})
	bySystem := map[string]int{}
	for _, r := range reqs {
		bySystem[r.System]++
	}
	raShare := float64(bySystem["rapidanalytics"]) / float64(len(reqs))
	if raShare < 0.75 || raShare > 0.95 {
		t.Errorf("rapidanalytics share = %.2f; want ~0.85", raShare)
	}
	if bySystem["rapid+"] == 0 {
		t.Error("secondary system absent from the mix")
	}
}

func TestDriverMeasuresAndHashes(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		time.Sleep(time.Millisecond)
		fmt.Fprintf(w, "col\nv1\nv2\n")
	}))
	defer ts.Close()

	reqs := Schedule(CatalogTemplates(), ScheduleOptions{Seed: 3, Requests: 40})
	m := Run(reqs, DriverOptions{BaseURL: ts.URL, Concurrency: 4})
	if m.Requests != 40 || served.Load() != 40 {
		t.Fatalf("requests = %d (served %d); want 40", m.Requests, served.Load())
	}
	if m.Errors != 0 || m.Divergent != 0 {
		t.Fatalf("errors = %d, divergent = %d; want 0, 0", m.Errors, m.Divergent)
	}
	if m.QPS <= 0 || m.WallSeconds <= 0 {
		t.Fatalf("throughput not measured: %+v", m)
	}
	if m.P50Millis <= 0 || m.P95Millis < m.P50Millis || m.P99Millis < m.P95Millis {
		t.Fatalf("quantiles inconsistent: p50=%v p95=%v p99=%v", m.P50Millis, m.P95Millis, m.P99Millis)
	}
	if m.StatusCounts[http.StatusOK] != 40 {
		t.Fatalf("status counts = %v", m.StatusCounts)
	}
	if len(m.Hashes) == 0 {
		t.Fatal("no response hashes recorded")
	}
}

func TestDriverDetectsDivergence(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "col\nv%d\n", n.Add(1))
	}))
	defer ts.Close()

	tpl := []Template{{ID: "T1", SPARQL: "SELECT 1"}}
	reqs := Schedule(tpl, ScheduleOptions{Seed: 1, Requests: 10, BurstEvery: -1})
	m := Run(reqs, DriverOptions{BaseURL: ts.URL, Concurrency: 1})
	if m.Divergent == 0 {
		t.Fatal("driver missed row divergence across identical requests")
	}
}

func TestDriverCountsErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "saturated", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	reqs := Schedule(CatalogTemplates(), ScheduleOptions{Seed: 1, Requests: 5})
	m := Run(reqs, DriverOptions{BaseURL: ts.URL, Concurrency: 2})
	if m.Errors != 5 || m.StatusCounts[http.StatusServiceUnavailable] != 5 {
		t.Fatalf("errors = %d, statuses = %v; want all 503", m.Errors, m.StatusCounts)
	}
}

func TestCanonHashOrderInsensitive(t *testing.T) {
	if canonHash("h\na\nb\n") != canonHash("h\nb\na\n") {
		t.Fatal("canonical hash depends on row order")
	}
	if canonHash("h\na\n") == canonHash("h\nb\n") {
		t.Fatal("different rows hashed equal")
	}
}
