// Package loadgen builds log-realistic serving workloads over the
// evaluation query catalog and drives them against the HTTP serving layer.
//
// Real SPARQL endpoint logs (DBpedia, Wikidata) are dominated by a small
// set of hot query templates repeated with Zipfian frequency, punctuated
// by bursts of one template arriving nearly simultaneously (dashboards
// refreshing, retry storms). The generator reproduces that shape
// deterministically: a seeded Zipf draw picks each slot's template, and
// every BurstEvery slots a burst of BurstSize consecutive requests for one
// of the hottest templates is injected. The driver replays a schedule
// closed-loop at fixed concurrency and reports throughput and latency
// quantiles, hashing every response so any row divergence between runs —
// or between a cached and a recomputed response — is detected rather than
// averaged away.
package loadgen

import (
	"math/rand"

	"rapidanalytics/internal/bench"
)

// Template is one workload query template.
type Template struct {
	// ID is the catalog identifier ("G1", "MG13", ...).
	ID string
	// SPARQL is the query text.
	SPARQL string
}

// CatalogTemplates returns the full evaluation catalog as workload
// templates, in catalog order (the Zipf draw makes earlier entries
// hotter).
func CatalogTemplates() []Template {
	out := make([]Template, 0, len(bench.Catalog))
	for _, q := range bench.Catalog {
		out = append(out, Template{ID: q.ID, SPARQL: q.SPARQL})
	}
	return out
}

// SystemShare weights one engine in the workload's system mix.
type SystemShare struct {
	// System is the engine name requests target.
	System string
	// Weight is the system's relative draw weight.
	Weight int
}

// ScheduleOptions tunes the workload generator. Zero fields select the
// defaults.
type ScheduleOptions struct {
	// Seed seeds the deterministic draw; equal seeds give equal schedules.
	Seed int64
	// Requests is the total schedule length (default 200).
	Requests int
	// ZipfS is the Zipf skew exponent (default 1.1; must be > 1).
	ZipfS float64
	// ZipfV is the Zipf value offset (default 1; must be >= 1).
	ZipfV float64
	// BurstEvery injects a burst after every this many slots (default 40;
	// negative disables bursts).
	BurstEvery int
	// BurstSize is how many consecutive requests a burst repeats one hot
	// template for (default 8).
	BurstSize int
	// Systems is the engine mix the schedule draws from (default: 85%
	// rapidanalytics, 15% rapid+).
	Systems []SystemShare
}

func (o ScheduleOptions) withDefaults() ScheduleOptions {
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.1
	}
	if o.ZipfV < 1 {
		o.ZipfV = 1
	}
	if o.BurstEvery == 0 {
		o.BurstEvery = 40
	}
	if o.BurstSize <= 0 {
		o.BurstSize = 8
	}
	if len(o.Systems) == 0 {
		o.Systems = []SystemShare{
			{System: "rapidanalytics", Weight: 17},
			{System: "rapid+", Weight: 3},
		}
	}
	return o
}

// Request is one scheduled query execution.
type Request struct {
	// Slot is the request's position in the schedule.
	Slot int `json:"slot"`
	// TemplateID names the catalog template.
	TemplateID string `json:"templateId"`
	// SPARQL is the query text.
	SPARQL string `json:"-"`
	// System is the engine the request targets.
	System string `json:"system"`
	// Burst marks requests injected as part of a burst.
	Burst bool `json:"burst,omitempty"`
}

// Schedule generates a deterministic log-realistic request schedule over
// the templates: Zipf-skewed repetition with periodic hot-template bursts.
func Schedule(templates []Template, opts ScheduleOptions) []Request {
	o := opts.withDefaults()
	if len(templates) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(o.Seed))
	var zipf *rand.Zipf
	if len(templates) > 1 {
		zipf = rand.NewZipf(rng, o.ZipfS, o.ZipfV, uint64(len(templates)-1))
	}
	pickSystem := func() string {
		total := 0
		for _, s := range o.Systems {
			total += s.Weight
		}
		n := rng.Intn(total)
		for _, s := range o.Systems {
			if n -= s.Weight; n < 0 {
				return s.System
			}
		}
		return o.Systems[0].System
	}

	reqs := make([]Request, 0, o.Requests)
	sinceBurst := 0
	for len(reqs) < o.Requests {
		if o.BurstEvery > 0 && sinceBurst >= o.BurstEvery {
			sinceBurst = 0
			hot := templates[rng.Intn(min(3, len(templates)))]
			sys := pickSystem()
			for i := 0; i < o.BurstSize && len(reqs) < o.Requests; i++ {
				reqs = append(reqs, Request{
					Slot: len(reqs), TemplateID: hot.ID, SPARQL: hot.SPARQL,
					System: sys, Burst: true,
				})
			}
			continue
		}
		idx := 0
		if zipf != nil {
			idx = int(zipf.Uint64())
		}
		t := templates[idx]
		reqs = append(reqs, Request{
			Slot: len(reqs), TemplateID: t.ID, SPARQL: t.SPARQL,
			System: pickSystem(),
		})
		sinceBurst++
	}
	return reqs
}
