package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"rapidanalytics/internal/plancache"
	"rapidanalytics/internal/server"
	"rapidanalytics/internal/share"

	ra "rapidanalytics"
)

// ServeLevel is one serving configuration's replay outcome.
type ServeLevel struct {
	// Name labels the configuration ("baseline", "shared+cached").
	Name string `json:"name"`
	// SharedScans echoes the store option under test.
	SharedScans bool `json:"sharedScans"`
	// ResultCacheBytes echoes the result cache budget under test.
	ResultCacheBytes int64 `json:"resultCacheBytes"`
	// Metrics is the replay's throughput/latency summary.
	Metrics Metrics `json:"metrics"`
	// PlanCache is the store's plan-cache counters after the replay.
	PlanCache plancache.Stats `json:"planCache"`
	// ResultCache is the store's result-cache counters after the replay.
	ResultCache plancache.Stats `json:"resultCache"`
	// SharedScan is the store's shared-scan counters after the replay.
	SharedScan share.Stats `json:"sharedScan"`
}

// ServeReport compares the baseline serving configuration against shared
// scans + result caching over one log-realistic replay of the catalog
// workload.
type ServeReport struct {
	// Scale is the dataset size multiplier the stores were generated at.
	Scale float64 `json:"scale"`
	// Seed is the schedule's deterministic seed.
	Seed int64 `json:"seed"`
	// Requests is the schedule length.
	Requests int `json:"requests"`
	// Templates is how many distinct query templates the schedule draws
	// from.
	Templates int `json:"templates"`
	// Concurrency is the closed-loop worker count of each replay.
	Concurrency int `json:"concurrency"`
	// Levels holds the per-configuration outcomes, baseline first.
	Levels []ServeLevel `json:"levels"`
	// RowsIdentical reports every template returned hash-identical rows in
	// every configuration (and within each replay).
	RowsIdentical bool `json:"rowsIdentical"`
	// SpeedupQPS is optimized QPS / baseline QPS.
	SpeedupQPS float64 `json:"speedupQPS"`
}

// serveConcurrency is the closed-loop worker count of the serving
// benchmark; QPS is reported at this fixed concurrency.
const serveConcurrency = 12

// CompareServing generates the merged catalog store at the given size
// multiplier, replays one deterministic log-realistic schedule against a
// baseline server (no sharing, no result cache) and against a server with
// shared scans and a 64MB result cache, and reports both replays plus the
// cross-configuration row-identity verdict.
func CompareServing(sizeMult float64) (*ServeReport, error) {
	schedOpts := ScheduleOptions{Seed: 1}
	reqs := Schedule(CatalogTemplates(), schedOpts)
	rep := &ServeReport{
		Scale:       sizeMult,
		Seed:        schedOpts.Seed,
		Requests:    len(reqs),
		Templates:   len(CatalogTemplates()),
		Concurrency: serveConcurrency,
	}

	levels := []struct {
		name       string
		shared     bool
		cacheBytes int64
	}{
		{"baseline", false, 0},
		{"shared+cached", true, 64 << 20},
	}
	for _, lv := range levels {
		opts := ra.DefaultOptions()
		opts.SharedScans = lv.shared
		opts.ResultCacheBytes = lv.cacheBytes
		store := ra.NewWorkloadStore(sizeMult, opts)
		srv := server.New(store, server.Config{
			MaxConcurrent: serveConcurrency,
			QueueTimeout:  time.Minute,
			QueryTimeout:  5 * time.Minute,
		})
		ts := httptest.NewServer(srv)
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        serveConcurrency,
			MaxIdleConnsPerHost: serveConcurrency,
		}}
		met := Run(reqs, DriverOptions{
			BaseURL:     ts.URL,
			Client:      client,
			Concurrency: serveConcurrency,
		})
		ts.Close()
		rep.Levels = append(rep.Levels, ServeLevel{
			Name:             lv.name,
			SharedScans:      lv.shared,
			ResultCacheBytes: lv.cacheBytes,
			Metrics:          met,
			PlanCache:        store.PlanCacheStats(),
			ResultCache:      store.ResultCacheStats(),
			SharedScan:       store.SharedScanStats(),
		})
	}

	rep.RowsIdentical = hashesEqual(rep.Levels[0].Metrics, rep.Levels[1].Metrics)
	if base := rep.Levels[0].Metrics.QPS; base > 0 {
		rep.SpeedupQPS = rep.Levels[1].Metrics.QPS / base
	}
	return rep, nil
}

// hashesEqual reports whether two replays returned identical canonical
// rows for every template, with no within-replay divergence either.
func hashesEqual(a, b Metrics) bool {
	if a.Divergent != 0 || b.Divergent != 0 || len(a.Hashes) != len(b.Hashes) {
		return false
	}
	for id, h := range a.Hashes {
		if b.Hashes[id] != h {
			return false
		}
	}
	return true
}

// RenderServe renders the report as a text table.
func RenderServe(rep *ServeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving benchmark: %d requests over %d templates, concurrency %d, scale %g\n",
		rep.Requests, rep.Templates, rep.Concurrency, rep.Scale)
	fmt.Fprintf(&b, "%-14s %8s %9s %9s %9s %7s %9s %9s %8s\n",
		"config", "qps", "p50ms", "p95ms", "p99ms", "errors", "cacheHit", "sharedCy", "rejected")
	for _, lv := range rep.Levels {
		m := lv.Metrics
		fmt.Fprintf(&b, "%-14s %8.1f %9.2f %9.2f %9.2f %7d %9d %9d %8d\n",
			lv.Name, m.QPS, m.P50Millis, m.P95Millis, m.P99Millis, m.Errors,
			lv.ResultCache.Hits, lv.SharedScan.SharedCycles, m.StatusCounts[http.StatusServiceUnavailable])
	}
	fmt.Fprintf(&b, "rows identical: %v   QPS speedup: %.2fx\n", rep.RowsIdentical, rep.SpeedupQPS)
	return b.String()
}
