package mapred

import (
	"strings"
	"sync"
	"testing"

	"rapidanalytics/internal/dfs"
)

// recordingProvider serves scans from the cluster's own FS while recording
// which ranges were requested, optionally declining some names.
type recordingProvider struct {
	fs      *dfs.FS
	decline string // name prefix to decline

	mu    sync.Mutex
	calls []string
}

type providedIterator struct {
	dfs.RecordIterator
	shared bool
}

func (p *providedIterator) Shared() bool { return p.shared }

// Scan materialises the range eagerly (like share.Scheduler), so the file
// can be closed before the engine iterates — lazy iteration over a closed
// file breaks on the disk backend.
func (r *recordingProvider) Scan(name string, start, n int) dfs.RecordIterator {
	r.mu.Lock()
	r.calls = append(r.calls, name)
	r.mu.Unlock()
	if r.decline != "" && strings.HasPrefix(name, r.decline) {
		return nil
	}
	f, err := r.fs.Open(name)
	if err != nil {
		return &providedIterator{RecordIterator: errIterator{err}}
	}
	defer f.Close()
	recs := make([][]byte, 0, n)
	it := f.Records(start)
	for i := 0; i < n && it.Next(); i++ {
		recs = append(recs, append([]byte(nil), it.Record()...))
	}
	if err := it.Err(); err != nil {
		return &providedIterator{RecordIterator: errIterator{err}}
	}
	return &providedIterator{RecordIterator: &sliceIterator{recs: recs}, shared: true}
}

type errIterator struct{ err error }

func (e errIterator) Next() bool     { return false }
func (e errIterator) Record() []byte { return nil }
func (e errIterator) Err() error     { return e.err }

type sliceIterator struct {
	recs [][]byte
	cur  []byte
}

func (s *sliceIterator) Next() bool {
	if len(s.recs) == 0 {
		return false
	}
	s.cur, s.recs = s.recs[0], s.recs[1:]
	return true
}
func (s *sliceIterator) Record() []byte { return s.cur }
func (s *sliceIterator) Err() error     { return nil }

// TestScanProviderServesMapInputs runs word count through a ScanProvider
// and checks the provider was consulted for every split while the output
// stays identical to an unprovided run.
func TestScanProviderServesMapInputs(t *testing.T) {
	build := func(p ScanProvider) (*Cluster, *recordingProvider) {
		c := newTestCluster()
		writeLines(c, "in", 1, "a b a", "b b c", "c c c c")
		rp := &recordingProvider{fs: c.FS}
		if p == nil {
			c.Scans = rp
		}
		return c, rp
	}

	plain := newTestCluster()
	writeLines(plain, "in", 1, "a b a", "b b c", "c c c c")
	if _, err := plain.Run(wordCountJob("in", "out", false)); err != nil {
		t.Fatal(err)
	}
	want := readLines(t, plain, "out")

	c, rp := build(nil)
	if _, err := c.Run(wordCountJob("in", "out", false)); err != nil {
		t.Fatal(err)
	}
	got := readLines(t, c, "out")
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("provided run diverged:\n got %q\nwant %q", got, want)
	}
	rp.mu.Lock()
	calls := len(rp.calls)
	rp.mu.Unlock()
	if calls == 0 {
		t.Fatal("ScanProvider was never consulted")
	}
}

// TestScanProviderDeclineFallsBack checks a nil return from the provider
// falls back to the task's own file snapshot.
func TestScanProviderDeclineFallsBack(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "in", 1, "a b a", "b b c")
	c.Scans = &recordingProvider{fs: c.FS, decline: "in"}
	if _, err := c.Run(wordCountJob("in", "out", false)); err != nil {
		t.Fatal(err)
	}
	got := readLines(t, c, "out")
	if len(got) != 3 { // a, b, c
		t.Fatalf("got %d result lines (%q), want 3", len(got), got)
	}
}
