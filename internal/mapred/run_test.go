package mapred

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

var errBoom = errors.New("boom")

// pad returns s padded to 70 bytes, so each record exceeds the test
// cluster's 64-byte ExecSplitBytes and becomes its own map split.
func pad(s string) string { return s + strings.Repeat(".", 70-len(s)) }

// Regression: Run used to spawn one goroutine per split before the
// semaphore gate, so a large input created thousands of idle goroutines.
// The pool must stay bounded by maxParallel regardless of split count.
func TestMapFanOutBounded(t *testing.T) {
	c := newTestCluster()
	const splits = 64
	lines := make([]string, splits)
	for i := range lines {
		lines[i] = pad(fmt.Sprintf("s%d", i))
	}
	writeLines(c, "in", 1, lines...)

	baseline := runtime.NumGoroutine()
	var maxSeen atomic.Int64
	job := &Job{
		Name:   "fanout",
		Inputs: []string{"in"},
		Output: "out",
		NewMapper: func(tc *TaskContext) Mapper {
			return MapperFunc(func(rec []byte, emit Emit) error {
				n := int64(runtime.NumGoroutine())
				for {
					cur := maxSeen.Load()
					if n <= cur || maxSeen.CompareAndSwap(cur, n) {
						break
					}
				}
				time.Sleep(500 * time.Microsecond) // force task overlap
				emit("k", rec)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error { return nil })
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Map workers plus the shuffle/reduce pools (which do not overlap the
	// map phase) plus slack for runtime helpers.
	limit := int64(baseline + 2*maxParallel() + 4)
	if got := maxSeen.Load(); got > limit {
		t.Errorf("observed %d goroutines during map phase with %d splits, limit %d",
			got, splits, limit)
	}
}

// Regression: the first map-task error must abort in-flight siblings and
// skip queued tasks instead of letting all of them run to completion, and
// the reported error must be the failing task's, deterministically.
func TestMapErrorAbortsSiblings(t *testing.T) {
	const splits = 200
	c := newTestCluster()
	lines := make([]string, splits)
	lines[0] = pad("FAIL")
	for i := 1; i < splits; i++ {
		lines[i] = pad(fmt.Sprintf("ok%d", i))
	}
	writeLines(c, "in", 1, lines...)

	var mapped atomic.Int64
	job := &Job{
		Name:   "abort",
		Inputs: []string{"in"},
		Output: "out",
		NewMapper: func(tc *TaskContext) Mapper {
			return MapperFunc(func(rec []byte, emit Emit) error {
				if strings.HasPrefix(string(rec), "FAIL") {
					return errBoom
				}
				mapped.Add(1)
				time.Sleep(time.Millisecond)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error { return nil })
		},
	}
	_, err := c.Run(job)
	if !errors.Is(err, errBoom) {
		t.Fatalf("Run error = %v, want errBoom", err)
	}
	// Task 0 is always dispatched first and is the only failure, so the
	// reported task index must be 0.
	if !strings.Contains(err.Error(), "map task 0") {
		t.Errorf("error %q does not name the failing task deterministically", err)
	}
	if n := mapped.Load(); n >= splits/2 {
		t.Errorf("%d of %d sibling records still mapped after the failure", n, splits-1)
	}
	if c.FS.Exists("out") {
		t.Error("failed job materialised its output")
	}
}

// Regression: a query cancelled while a single hot key is being shuffled
// must abort promptly instead of stalling in an unbounded sort, and the
// reducer must never run.
func TestCancelMidShuffleHotKey(t *testing.T) {
	const records = 400
	c := newTestCluster()
	lines := make([]string, records)
	for i := range lines {
		lines[i] = pad(fmt.Sprintf("v%d", i))
	}
	writeLines(c, "in", 1, lines...)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var emitted atomic.Int64
	var reduced atomic.Int64
	job := &Job{
		Name:   "hotkey",
		Inputs: []string{"in"},
		Output: "out",
		NewMapper: func(tc *TaskContext) Mapper {
			return MapperFunc(func(rec []byte, emit Emit) error {
				if emitted.Add(1) == records/2 {
					cancel() // cancel mid-run, while map output is piling onto one key
				}
				emit("hot", rec)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error {
				reduced.Add(1)
				return nil
			})
		},
	}
	start := time.Now()
	_, err := c.WithContext(ctx).Run(job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, not prompt", elapsed)
	}
	if reduced.Load() != 0 {
		t.Error("reducer ran on a cancelled job")
	}
	if c.FS.Exists("out") {
		t.Error("cancelled job materialised its output")
	}
}

// Regression: combine used to sort and reduce a whole partition with no
// cancellation checks. The check hook must abort it before the sort and
// before any combiner call.
func TestCombineChecksCancellation(t *testing.T) {
	in := make([]kv, 4096)
	for i := range in {
		in[i] = kv{key: "hot", value: []byte("v")}
	}
	var calls atomic.Int64
	comb := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		calls.Add(1)
		return nil
	})
	_, err := combine(comb, in, 4, partitionOf("hot", 4), func() error { return context.Canceled })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("combine error = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Error("combiner ran despite cancelled check")
	}
}

// Regression: partitionOf used to allocate a fresh fnv.New32a per emitted
// key. The inlined loop must match hash/fnv exactly and allocate nothing.
func TestPartitionOfMatchesFNV(t *testing.T) {
	f := func(key string, parts uint8) bool {
		partitions := int(parts%16) + 1
		h := fnv.New32a()
		h.Write([]byte(key))
		want := int(h.Sum32() % uint32(partitions))
		return partitionOf(key, partitions) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfZeroAlloc(t *testing.T) {
	keys := []string{"", "a", "feature-key", strings.Repeat("x", 300)}
	for _, k := range keys {
		if n := testing.AllocsPerRun(100, func() { partitionOf(k, 8) }); n != 0 {
			t.Errorf("partitionOf(%q) allocates %.0f objects per call", k, n)
		}
	}
}

// aggJob is a multi-partition aggregation: many keys, a combiner, and a
// value-dependent output record, so any ordering or buffering mistake in
// the parallel reduce shows up in the output bytes.
func aggJob(partitions int) *Job {
	j := wordCountJob("in", "out", true)
	j.Name = "parallel-agg"
	j.Partitions = partitions
	return j
}

func aggInput(c *Cluster) {
	var lines []string
	for i := 0; i < 500; i++ {
		lines = append(lines, fmt.Sprintf("key%d key%d key%d", i%97, i%13, i%41))
	}
	writeLines(c, "in", 1, lines...)
}

// runAgg executes the aggregation job with the given reduce-worker setting
// and returns the exact output record sequence and the job metrics.
func runAgg(t *testing.T, workers int) ([]string, *Metrics) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ExecSplitBytes = 64
	cfg.ExecReduceWorkers = workers
	c := NewCluster(cfg)
	aggInput(c)
	m, err := c.Run(aggJob(8))
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return readLines(t, c, "out"), m
}

// Tentpole guarantee: parallel reduce is byte-for-byte identical to the
// sequential engine — same output records in the same order, and the same
// volume metrics.
func TestParallelReduceMatchesSequential(t *testing.T) {
	seqOut, seqM := runAgg(t, 1)
	parOut, parM := runAgg(t, 8)
	if strings.Join(seqOut, "\n") != strings.Join(parOut, "\n") {
		t.Error("parallel reduce output differs from sequential")
	}
	if seqM.Volumes() != parM.Volumes() {
		t.Errorf("volume metrics differ:\nseq: %+v\npar: %+v", seqM.Volumes(), parM.Volumes())
	}
	if parM.MapWallNs <= 0 {
		t.Error("MapWallNs not recorded")
	}
	if parM.ReduceWallNs <= 0 {
		t.Error("ReduceWallNs not recorded")
	}
}

// Determinism: repeated parallel runs of the same multi-partition job
// produce byte-identical DFS output and identical volume metrics.
func TestParallelReduceDeterministic(t *testing.T) {
	firstOut, firstM := runAgg(t, 0) // 0 = one worker per CPU
	for i := 1; i < 5; i++ {
		out, m := runAgg(t, 0)
		if strings.Join(out, "\n") != strings.Join(firstOut, "\n") {
			t.Fatalf("run %d output differs", i)
		}
		if m.Volumes() != firstM.Volumes() {
			t.Fatalf("run %d volume metrics differ:\n%+v\n%+v", i, m.Volumes(), firstM.Volumes())
		}
	}
}

// Map-only jobs have no shuffle or reduce phase, and their wall time is
// attributed entirely to the map phase.
func TestPhaseWallsMapOnly(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "in", 1, "a", "b", "c")
	job := &Job{
		Name:   "identity",
		Inputs: []string{"in"},
		Output: "out",
		NewMapper: func(tc *TaskContext) Mapper {
			return MapperFunc(func(rec []byte, emit Emit) error {
				emit("", rec)
				return nil
			})
		},
	}
	m, err := c.Run(job)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.MapWallNs <= 0 {
		t.Error("MapWallNs not recorded for map-only job")
	}
	if m.ShuffleSortWallNs != 0 || m.ReduceWallNs != 0 {
		t.Errorf("map-only job has shuffle/reduce wall time: %+v", m)
	}
}

func TestWorkflowPhaseWalls(t *testing.T) {
	c := newTestCluster()
	aggInput(c)
	wm, err := c.RunWorkflow([]*Job{aggJob(4)})
	if err != nil {
		t.Fatalf("RunWorkflow: %v", err)
	}
	mapNs, shuffleNs, reduceNs := wm.PhaseWalls()
	if mapNs <= 0 || reduceNs <= 0 {
		t.Errorf("PhaseWalls = %d, %d, %d; map and reduce must be positive",
			mapNs, shuffleNs, reduceNs)
	}
}

// Regression: the combiner's group loop must poll cancellation every
// ctxCheckInterval groups. A single map task pre-aggregates thousands of
// distinct keys; the first combiner call cancels the context, and the
// combine loop has to stop within one check interval instead of draining
// every group.
func TestCancelMidCombineAborts(t *testing.T) {
	const keys = 4 * ctxCheckInterval
	c := newTestCluster()
	writeLines(c, "in", 1, "seed")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var combined atomic.Int64
	job := &Job{
		Name:       "combine-cancel",
		Inputs:     []string{"in"},
		Output:     "out",
		Partitions: 1,
		NewMapper: func(tc *TaskContext) Mapper {
			return MapperFunc(func(rec []byte, emit Emit) error {
				//lint:nocancel bounded by the keys test constant; the combiner is what cancels
				for i := 0; i < keys; i++ {
					emit(fmt.Sprintf("k%06d", i), rec)
				}
				return nil
			})
		},
		NewCombiner: func() Reducer {
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error {
				if combined.Add(1) == 1 {
					cancel() // cancel mid-combine, on the very first group
				}
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error { return nil })
		},
	}
	_, err := c.WithContext(ctx).Run(job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if n := combined.Load(); n > ctxCheckInterval+1 {
		t.Errorf("combiner drained %d of %d groups after cancellation; want at most one check interval (%d)",
			n, keys, ctxCheckInterval+1)
	}
	if c.FS.Exists("out") {
		t.Error("cancelled job materialised its output")
	}
}

// closeCancelMapper emits its records in Map and cancels the bound context
// in Close — after the map task's record loop, immediately before the
// map-only output write.
type closeCancelMapper struct {
	keys   int
	cancel context.CancelFunc
}

func (m *closeCancelMapper) Map(rec []byte, emit Emit) error {
	//lint:nocancel bounded by the keys test constant; Close is what cancels
	for i := 0; i < m.keys; i++ {
		emit(fmt.Sprintf("k%06d", i), rec)
	}
	return nil
}

func (m *closeCancelMapper) Close(emit Emit) error {
	m.cancel()
	return nil
}

// Regression: a map-only job whose context dies at the end of the map phase
// must not materialise output — the write path polls cancellation instead
// of flushing every buffered record to the DFS.
func TestCancelAtMapCloseWritesNoMapOnlyOutput(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "in", 1, "seed")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job := &Job{
		Name:   "maponly-cancel",
		Inputs: []string{"in"},
		Output: "out",
		NewMapper: func(tc *TaskContext) Mapper {
			return &closeCancelMapper{keys: 4 * ctxCheckInterval, cancel: cancel}
		},
	}
	_, err := c.WithContext(ctx).Run(job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if c.FS.Exists("out") {
		t.Error("cancelled map-only job materialised its output")
	}
}
