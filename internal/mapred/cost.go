package mapred

import "math"

// ClusterConfig describes the simulated Hadoop deployment and the cost
// model's calibration constants. The paper's experiments ran on NCSU VCL
// clusters of 10, 50 and 60 dual-core nodes (2.33GHz, 4GB RAM, 128MB HDFS
// blocks); the presets below mirror those.
//
// Datasets in this repository are scaled down to laptop size; DataScale
// extrapolates measured volumes back to paper scale so simulated seconds
// are comparable in magnitude to the published numbers. All *relative*
// results (which engine wins, by what factor) are unaffected by DataScale:
// it multiplies every job's volumes uniformly.
type ClusterConfig struct {
	// Nodes is the cluster size.
	Nodes int
	// MapSlotsPerNode and ReduceSlotsPerNode mirror Hadoop 0.20 task slots
	// (dual-core nodes: 2 map + 2 reduce slots).
	MapSlotsPerNode int
	// ReduceSlotsPerNode is the per-node reduce slot count.
	ReduceSlotsPerNode int
	// BlockSizeBytes is the simulated HDFS block size (paper: 128MB).
	BlockSizeBytes int64
	// DataScale multiplies measured volumes before cost modelling.
	DataScale float64

	// JobStartupSec is the fixed per-job overhead (JVM spawn, scheduling).
	JobStartupSec float64
	// TaskStartupSec is the per-task-wave overhead.
	TaskStartupSec float64
	// DiskMBps is per-slot sequential disk bandwidth.
	DiskMBps float64
	// NetMBps is per-node shuffle bandwidth.
	NetMBps float64
	// CPUSecPerMRecord is the fixed processing cost per million records
	// (object churn, per-record dispatch), independent of record width.
	CPUSecPerMRecord float64
	// CPUSecPerMB is the byte-proportional processing cost per logical MB
	// flowing through a task: serialisation, comparison and copying in the
	// sort pipeline all scale with record width. Narrow records — e.g.
	// dictionary-encoded ID tuples — are therefore cheaper per record than
	// wide lexical ones, matching real Hadoop behaviour.
	CPUSecPerMB float64
	// DecompressSecPerMB is extra CPU per uncompressed MB for compressed
	// inputs (the ORC effect).
	DecompressSecPerMB float64
	// ReplicationFactor is HDFS write amplification for materialised
	// output.
	ReplicationFactor float64

	// ExecSplitBytes is the *execution* split size used to bound real
	// in-process map-task granularity; it does not affect the cost model.
	ExecSplitBytes int64
	// ExecReduceWorkers bounds the worker pool running the *execution*
	// shuffle-sort and reduce phases: 0 means one worker per CPU, 1 forces
	// sequential reduce. Execution output and volume metrics are identical
	// for every setting; like ExecSplitBytes it does not affect the cost
	// model.
	ExecReduceWorkers int
	// SpillThresholdBytes bounds a map task's buffered shuffle output
	// during *execution*: when the buffered key+value bytes reach the
	// threshold the task combines, sorts and spills each partition's buffer
	// to the DFS, and the shuffle merges spill runs back in. 0 disables
	// spilling (everything stays resident). Job output bytes are identical
	// for every setting; the cost model already charges map-side spill IO
	// unconditionally, so this knob does not affect simulated seconds.
	SpillThresholdBytes int64
	// Streaming enables the vectorized streaming write path for jobs that
	// opt in with Job.StreamOutput: their output buffers as columnar
	// batches in the DFS stream registry (dfs.CreateStream) instead of
	// materialising into the storage backend, eliding the DFS round-trip
	// between producer and consumer cycles of one job chain. Output bytes,
	// record order and every volume metric are identical either way —
	// streamed files report the same NumRecords/Bytes/StoredBytes — so the
	// cost model is unaffected; only Metrics.StreamedRecords and
	// StreamedBatches (and the backend's stored footprint) differ.
	Streaming bool
	// StreamBatchRows is the row capacity of streamed output batches;
	// <= 0 selects vec.DefaultBatchRows.
	StreamBatchRows int
	// StreamSpillBytes is the overflow threshold for streamed outputs:
	// when a stream's buffered logical bytes reach it, the stream demotes
	// to a regular backend file (PR 6's spill machinery as the overflow
	// path) and the output materialises after all. <= 0 keeps streams
	// resident regardless of size.
	StreamSpillBytes int64
}

// DefaultConfig returns the 10-node VCL-like cluster used for BSBM-500K and
// Chem2Bio2RDF experiments.
func DefaultConfig() ClusterConfig {
	return ClusterConfig{
		Nodes:              10,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		BlockSizeBytes:     128 << 20,
		DataScale:          1,
		JobStartupSec:      18,
		TaskStartupSec:     2,
		DiskMBps:           50,
		NetMBps:            25,
		// Calibrated so a ~55-byte lexical record costs the same ~6s per
		// million records as the previous record-count-only model.
		CPUSecPerMRecord:   1,
		CPUSecPerMB:        0.09,
		DecompressSecPerMB: 0.02,
		ReplicationFactor:  2,
		ExecSplitBytes:     4 << 20,
		Streaming:          true,
		StreamSpillBytes:   64 << 20,
	}
}

// VCL10 is the paper's 10-node cluster (BSBM-500K, Chem2Bio2RDF runs).
func VCL10(dataScale float64) ClusterConfig {
	c := DefaultConfig()
	c.DataScale = dataScale
	return c
}

// VCL50 is the paper's 50-node cluster (BSBM-2M scalability runs).
func VCL50(dataScale float64) ClusterConfig {
	c := DefaultConfig()
	c.Nodes = 50
	c.DataScale = dataScale
	return c
}

// VCL60 is the paper's 60-node cluster (PubMed runs).
func VCL60(dataScale float64) ClusterConfig {
	c := DefaultConfig()
	c.Nodes = 60
	c.DataScale = dataScale
	return c
}

// cost fills in m.SimSeconds and the simulated task counts from the job's
// measured volumes.
func (cfg ClusterConfig) cost(m *Metrics) {
	scale := cfg.DataScale
	if scale <= 0 {
		scale = 1
	}
	mb := func(bytes float64) float64 { return bytes / (1 << 20) }

	storedIn := float64(m.MapStoredBytes) * scale
	logicalIn := float64(m.MapInputBytes) * scale
	records := float64(m.MapInputRecords) * scale
	mapSlots := float64(cfg.Nodes * cfg.MapSlotsPerNode)

	mapTasks := math.Ceil(storedIn / float64(cfg.BlockSizeBytes))
	if mapTasks < 1 {
		mapTasks = 1
	}
	m.SimulatedMapTasks = int(mapTasks)
	waves := math.Ceil(mapTasks / mapSlots)

	perTaskStored := storedIn / mapTasks
	perTaskLogical := logicalIn / mapTasks
	perTaskRecords := records / mapTasks
	// Every record a mapper emits is serialised and sorted into the
	// map-side buffer before any combiner runs — the work in-mapper hash
	// aggregation (Algorithm 3) avoids by emitting once per group. The
	// byte-proportional component uses the post-combine output bytes as the
	// emit-width proxy (pre-combine emit bytes are not metered).
	perTaskEmits := float64(m.MapEmitRecords) * scale / mapTasks
	perTaskEmitBytes := float64(m.MapOutputBytes) * scale / mapTasks
	taskTime := cfg.TaskStartupSec +
		mb(perTaskStored)/cfg.DiskMBps +
		perTaskRecords/1e6*cfg.CPUSecPerMRecord +
		perTaskEmits/1e6*cfg.CPUSecPerMRecord +
		(mb(perTaskLogical)+mb(perTaskEmitBytes))*cfg.CPUSecPerMB
	if storedIn < logicalIn {
		taskTime += mb(perTaskLogical) * cfg.DecompressSecPerMB
	}
	// Broadcast side inputs are read by every map task.
	taskTime += mb(float64(m.SideInputBytes)*scale) / cfg.DiskMBps

	mapOutBytes := float64(m.MapOutputBytes) * scale
	outStored := float64(m.OutputStoredBytes) * scale
	total := cfg.JobStartupSec

	if m.MapOnly {
		// Output written directly by map tasks.
		active := math.Min(mapTasks, mapSlots)
		writeTime := mb(outStored*cfg.ReplicationFactor) / (cfg.DiskMBps * active)
		total += waves*taskTime + writeTime
		m.SimulatedRedTasks = 0
	} else {
		// Map-side spill: map output written and re-read locally.
		taskTime += mb(mapOutBytes/mapTasks) / cfg.DiskMBps * 2
		total += waves * taskTime

		redSlots := float64(cfg.Nodes * cfg.ReduceSlotsPerNode)
		redTasks := math.Ceil(mapOutBytes / float64(cfg.BlockSizeBytes))
		if redTasks < 1 {
			redTasks = 1
		}
		if redTasks > redSlots {
			redTasks = redSlots
		}
		m.SimulatedRedTasks = int(redTasks)
		// Shuffle over the network, limited by aggregate receive bandwidth
		// of the nodes hosting reducers.
		shuffleNodes := math.Min(redTasks, float64(cfg.Nodes))
		total += mb(mapOutBytes) / (cfg.NetMBps * shuffleNodes)
		// Merge-sort and reduce.
		perRed := mapOutBytes / redTasks
		redTime := cfg.TaskStartupSec +
			mb(perRed)/cfg.DiskMBps*1.5 +
			float64(m.MapOutputRecords)*scale/redTasks/1e6*cfg.CPUSecPerMRecord +
			mb(perRed)*cfg.CPUSecPerMB +
			mb(outStored*cfg.ReplicationFactor/redTasks)/cfg.DiskMBps
		total += redTime
	}
	m.SimSeconds = total
}
