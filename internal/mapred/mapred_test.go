package mapred

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func newTestCluster() *Cluster {
	cfg := DefaultConfig()
	cfg.ExecSplitBytes = 64 // tiny splits to force multiple map tasks
	return NewCluster(cfg)
}

func writeLines(c *Cluster, name string, ratio float64, lines ...string) {
	w, err := c.FS.Create(name, ratio)
	if err != nil {
		panic(err)
	}
	//lint:nocancel fixture writer is bounded by its variadic argument list
	for _, l := range lines {
		w.Write([]byte(l))
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
}

func readLines(t *testing.T, c *Cluster, name string) []string {
	t.Helper()
	f, err := c.FS.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	recs, err := f.AllRecords()
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	return out
}

// wordCountJob is the canonical MapReduce smoke test.
func wordCountJob(in, out string, combiner bool) *Job {
	j := &Job{
		Name:   "wordcount",
		Inputs: []string{in},
		Output: out,
		NewMapper: func(tc *TaskContext) Mapper {
			return MapperFunc(func(rec []byte, emit Emit) error {
				//lint:nocancel bounded by the words of one fixture record
				for _, w := range strings.Fields(string(rec)) {
					emit(w, []byte("1"))
				}
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error {
				total := 0
				for _, v := range values {
					n, err := strconv.Atoi(string(v))
					if err != nil {
						return err
					}
					total += n
				}
				emit(key, []byte(fmt.Sprintf("%s=%d", key, total)))
				return nil
			})
		},
	}
	if combiner {
		j.NewCombiner = func() Reducer {
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error {
				total := 0
				for _, v := range values {
					n, _ := strconv.Atoi(string(v))
					total += n
				}
				emit(key, []byte(strconv.Itoa(total)))
				return nil
			})
		}
	}
	return j
}

func TestWordCount(t *testing.T) {
	for _, combiner := range []bool{false, true} {
		c := newTestCluster()
		writeLines(c, "in", 1,
			"a b c a",
			"b a",
			"c c c",
		)
		m, err := c.Run(wordCountJob("in", "out", combiner))
		if err != nil {
			t.Fatalf("Run(combiner=%v): %v", combiner, err)
		}
		got := readLines(t, c, "out")
		sort.Strings(got)
		want := []string{"a=3", "b=2", "c=4"}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("combiner=%v: got %v, want %v", combiner, got, want)
		}
		if m.MapInputRecords != 3 {
			t.Errorf("MapInputRecords = %d", m.MapInputRecords)
		}
		if combiner && m.MapOutputRecords >= 9 {
			t.Errorf("combiner did not reduce shuffle volume: %d records", m.MapOutputRecords)
		}
		if !combiner && m.MapOutputRecords != 9 {
			t.Errorf("MapOutputRecords = %d, want 9", m.MapOutputRecords)
		}
		if m.SimSeconds <= 0 {
			t.Error("SimSeconds not computed")
		}
	}
}

// Property: word count totals are correct for arbitrary inputs, with and
// without a combiner, regardless of how records land in splits.
func TestWordCountQuick(t *testing.T) {
	f := func(wordIDs []uint8) bool {
		want := map[string]int{}
		var lines []string
		var cur []string
		for i, id := range wordIDs {
			w := fmt.Sprintf("w%d", id%16)
			want[w]++
			cur = append(cur, w)
			if i%5 == 4 {
				lines = append(lines, strings.Join(cur, " "))
				cur = nil
			}
		}
		if len(cur) > 0 {
			lines = append(lines, strings.Join(cur, " "))
		}
		for _, combiner := range []bool{false, true} {
			c := newTestCluster()
			writeLines(c, "in", 1, lines...)
			if _, err := c.Run(wordCountJob("in", "out", combiner)); err != nil {
				return false
			}
			got := map[string]int{}
			for _, l := range readLines(t, c, "out") {
				parts := strings.SplitN(l, "=", 2)
				n, _ := strconv.Atoi(parts[1])
				got[parts[0]] = n
			}
			if len(got) != len(want) {
				return false
			}
			for w, n := range want {
				if got[w] != n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// A reduce-side join of two tagged inputs.
func TestReduceSideJoin(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "left", 1, "k1|l1", "k2|l2", "k1|l3")
	writeLines(c, "right", 1, "k1|r1", "k3|r2")
	job := &Job{
		Name:   "join",
		Inputs: []string{"left", "right"},
		Output: "out",
		NewMapper: func(tc *TaskContext) Mapper {
			tag := "L"
			if tc.InputFile == "right" {
				tag = "R"
			}
			return MapperFunc(func(rec []byte, emit Emit) error {
				parts := strings.SplitN(string(rec), "|", 2)
				emit(parts[0], []byte(tag+parts[1]))
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error {
				var ls, rs []string
				for _, v := range values {
					if v[0] == 'L' {
						ls = append(ls, string(v[1:]))
					} else {
						rs = append(rs, string(v[1:]))
					}
				}
				//lint:nocancel cross product of one key's fixture values (at most a handful)
				for _, l := range ls {
					for _, r := range rs {
						emit(key, []byte(key+":"+l+"+"+r))
					}
				}
				return nil
			})
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := readLines(t, c, "out")
	sort.Strings(got)
	want := []string{"k1:l1+r1", "k1:l3+r1"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("join = %v, want %v", got, want)
	}
}

func TestMapOnlyJobWithSideInput(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "big", 1, "a|1", "b|2", "c|3")
	writeLines(c, "small", 1, "a|X", "c|Y")
	job := &Job{
		Name:       "mapjoin",
		Inputs:     []string{"big"},
		SideInputs: []string{"small"},
		Output:     "out",
		NewMapper: func(tc *TaskContext) Mapper {
			lookup := map[string]string{}
			for _, rec := range tc.SideInput("small") {
				parts := strings.SplitN(string(rec), "|", 2)
				lookup[parts[0]] = parts[1]
			}
			return MapperFunc(func(rec []byte, emit Emit) error {
				parts := strings.SplitN(string(rec), "|", 2)
				if v, ok := lookup[parts[0]]; ok {
					emit("", []byte(parts[0]+parts[1]+v))
				}
				return nil
			})
		},
	}
	m, err := c.Run(job)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !m.MapOnly {
		t.Error("job should be map-only")
	}
	if m.SideInputBytes == 0 {
		t.Error("side input bytes not accounted")
	}
	got := readLines(t, c, "out")
	sort.Strings(got)
	if strings.Join(got, ",") != "a1X,c3Y" {
		t.Errorf("map join = %v", got)
	}
}

// MapCloser flushes buffered per-task state — the Algorithm 3 Map.clean()
// hook.
type bufferingMapper struct {
	counts map[string]int
}

func (b *bufferingMapper) Map(rec []byte, emit Emit) error {
	b.counts[string(rec)]++
	return nil
}

func (b *bufferingMapper) Close(emit Emit) error {
	//lint:nocancel bounded by the distinct records of one test input
	for k, n := range b.counts {
		emit(k, []byte(strconv.Itoa(n)))
	}
	return nil
}

func TestMapCloserFlush(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "in", 1, "x", "y", "x", "x")
	job := &Job{
		Name:   "hashagg",
		Inputs: []string{"in"},
		Output: "out",
		NewMapper: func(tc *TaskContext) Mapper {
			return &bufferingMapper{counts: map[string]int{}}
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error {
				total := 0
				for _, v := range values {
					n, _ := strconv.Atoi(string(v))
					total += n
				}
				emit(key, []byte(key+"="+strconv.Itoa(total)))
				return nil
			})
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := readLines(t, c, "out")
	sort.Strings(got)
	if strings.Join(got, ",") != "x=3,y=1" {
		t.Errorf("hash agg = %v", got)
	}
}

func TestRunWorkflowChainsJobs(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "in", 1, "a b", "a")
	j1 := wordCountJob("in", "mid", true)
	j2 := &Job{
		Name:   "uppercase",
		Inputs: []string{"mid"},
		Output: "out",
		NewMapper: func(tc *TaskContext) Mapper {
			return MapperFunc(func(rec []byte, emit Emit) error {
				emit("", bytes.ToUpper(rec))
				return nil
			})
		},
	}
	wm, err := c.RunWorkflow([]*Job{j1, j2})
	if err != nil {
		t.Fatalf("RunWorkflow: %v", err)
	}
	if wm.Cycles() != 2 || wm.MapOnlyCycles() != 1 {
		t.Errorf("cycles = %d, map-only = %d", wm.Cycles(), wm.MapOnlyCycles())
	}
	got := readLines(t, c, "out")
	sort.Strings(got)
	if strings.Join(got, ",") != "A=2,B=1" {
		t.Errorf("workflow output = %v", got)
	}
	if wm.SimSeconds() <= 0 || wm.MaterializedBytes() <= 0 {
		t.Error("workflow metrics not aggregated")
	}
}

func TestMissingInputError(t *testing.T) {
	c := newTestCluster()
	_, err := c.Run(wordCountJob("missing", "out", false))
	if err == nil {
		t.Fatal("Run succeeded with missing input")
	}
}

func TestCombinerCrossPartitionRejected(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "in", 1, "a")
	job := &Job{
		Name:       "badcombiner",
		Inputs:     []string{"in"},
		Output:     "out",
		Partitions: 8,
		NewMapper: func(tc *TaskContext) Mapper {
			return MapperFunc(func(rec []byte, emit Emit) error {
				emit(string(rec), rec)
				return nil
			})
		},
		NewCombiner: func() Reducer {
			n := int32(0)
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error {
				// Emit under a rotating key: eventually crosses partitions.
				k := fmt.Sprintf("other-key-%d", atomic.AddInt32(&n, 1))
				emit(k, values[0])
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key string, values [][]byte, emit Emit) error { return nil })
		},
	}
	if _, err := c.Run(job); err == nil {
		t.Fatal("combiner that re-keys across partitions should fail")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		c := newTestCluster()
		var lines []string
		for i := 0; i < 200; i++ {
			lines = append(lines, fmt.Sprintf("w%d w%d w%d", i%7, i%3, i%11))
		}
		writeLines(c, "in", 1, lines...)
		if _, err := c.Run(wordCountJob("in", "out", true)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return readLines(t, c, "out")
	}
	a, b := run(), run()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Error("output differs across identical runs")
	}
}

func TestCostModelShape(t *testing.T) {
	cfg := DefaultConfig()
	base := &Metrics{
		MapInputRecords:   1_000_000,
		MapInputBytes:     200 << 20,
		MapStoredBytes:    200 << 20,
		MapOutputBytes:    100 << 20,
		MapOutputRecords:  500_000,
		OutputStoredBytes: 50 << 20,
	}
	cfg.cost(base)
	if base.SimSeconds <= cfg.JobStartupSec {
		t.Errorf("SimSeconds = %v, must exceed job startup", base.SimSeconds)
	}
	// More data, more time.
	bigger := *base
	bigger.MapInputBytes *= 10
	bigger.MapStoredBytes *= 10
	bigger.MapInputRecords *= 10
	bigger.MapOutputBytes *= 10
	bigger.MapOutputRecords *= 10
	bigger.OutputStoredBytes *= 10
	cfg.cost(&bigger)
	if bigger.SimSeconds <= base.SimSeconds {
		t.Errorf("10x data: %v <= %v", bigger.SimSeconds, base.SimSeconds)
	}
	// More nodes, less time (same data).
	cfg50 := cfg
	cfg50.Nodes = 50
	redo := *base
	cfg50.cost(&redo)
	if redo.SimSeconds > base.SimSeconds {
		t.Errorf("50 nodes slower than 10: %v > %v", redo.SimSeconds, base.SimSeconds)
	}
	// Map-only jobs are cheaper than the same volumes with a reduce phase.
	mo := *base
	mo.MapOnly = true
	cfg.cost(&mo)
	if mo.SimSeconds >= base.SimSeconds {
		t.Errorf("map-only %v >= full cycle %v", mo.SimSeconds, base.SimSeconds)
	}
	// DataScale multiplies volumes monotonically.
	scaled := cfg
	scaled.DataScale = 100
	sm := *base
	scaled.cost(&sm)
	if sm.SimSeconds <= base.SimSeconds {
		t.Errorf("DataScale=100: %v <= %v", sm.SimSeconds, base.SimSeconds)
	}
	// Compression reduces stored bytes and map tasks.
	orc := *base
	orc.MapStoredBytes = base.MapInputBytes / 10
	cfg.cost(&orc)
	if orc.SimulatedMapTasks >= base.SimulatedMapTasks {
		t.Errorf("compressed input should get fewer simulated map tasks: %d >= %d",
			orc.SimulatedMapTasks, base.SimulatedMapTasks)
	}
}

func TestEmptyInputStillRuns(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "in", 1)
	m, err := c.Run(wordCountJob("in", "out", false))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.MapInputRecords != 0 || m.OutputRecords != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if !c.FS.Exists("out") {
		t.Error("output file not created for empty input")
	}
}
