package mapred

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"

	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/obs"
)

// Map-side spill: when ClusterConfig.SpillThresholdBytes is set, a map
// task whose buffered shuffle output reaches the threshold combines, sorts
// and writes each partition's buffer to a spill run in the cluster FS
// (blockstore segments on the disk backend), exactly as Hadoop spills its
// map output buffer. The shuffle phase then k-way merges each partition's
// spill runs and in-memory remainder — a stable merge keyed on (key,
// source order), provably identical to concatenating the runs in emission
// order and stable-sorting, so reduce input (and therefore job output) is
// byte-identical to the unspilled execution. With a combiner, combining
// happens per run (again as Hadoop does), so shuffled records/bytes may
// differ from the unspilled run while the reduced output stays identical.

// spillRef identifies one sorted spill run materialised in the cluster FS.
type spillRef struct {
	file    string
	records int64
	bytes   int64 // logical kv bytes (key + value lengths)
}

// spillRunName places task t's run r for partition p under a job-unique
// prefix, so concurrent queries on one cluster never collide. It runs once
// per spilled partition on the map task's record loop, so the name builds
// into one pre-sized buffer instead of going through fmt.
//
//rapid:hot
func spillRunName(output string, task, run, part int) string {
	buf := make([]byte, 0, len("_spill/")+len(output)+len("/t0000-r0000-p0000")+3*binary.MaxVarintLen16)
	buf = append(buf, "_spill/"...)
	buf = append(buf, output...)
	buf = append(buf, "/t"...)
	buf = appendPadded(buf, task)
	buf = append(buf, "-r"...)
	buf = appendPadded(buf, run)
	buf = append(buf, "-p"...)
	buf = appendPadded(buf, part)
	//lint:alloc the name escapes into spillRef and FS.Create; one string allocation is the floor
	return string(buf)
}

// appendPadded appends n zero-padded to at least four digits (the %04d the
// name format always used; wider values print unpadded).
func appendPadded(buf []byte, n int) []byte {
	for lim := 1000; lim > 1 && n < lim; lim /= 10 {
		buf = append(buf, '0')
	}
	return strconv.AppendInt(buf, int64(n), 10)
}

// ErrSpillCleanup marks a job whose spill runs could not be deleted after
// the run — leaked backend storage, surfaced on the job's error path.
// Test with errors.Is.
var ErrSpillCleanup = errors.New("mapred: spill cleanup failed")

// cleanupSpills removes every spill run a job left behind, returning the
// first delete failure (with the file named) after attempting the rest.
func (c *Cluster) cleanupSpills(output string) error {
	var first error
	for _, name := range c.FS.List("_spill/" + output + "/") {
		if err := c.FS.Delete(name); err != nil && first == nil {
			first = fmt.Errorf("deleting %s: %w", name, err)
		}
	}
	return first
}

// spillMaxBuffered tracks the high-water mark of per-task buffered kv
// bytes observed at record boundaries while spilling is enabled. It exists
// so tests can assert the spill path bounds resident shuffle memory; it is
// never read by execution.
var spillMaxBuffered atomic.Int64

// noteSpillHighWater raises the recorded high-water mark to n.
func noteSpillHighWater(n int64) {
	for {
		cur := spillMaxBuffered.Load()
		if n <= cur || spillMaxBuffered.CompareAndSwap(cur, n) {
			return
		}
	}
}

// encodeKV frames a shuffle pair as uvarint(len(key)) || key || value.
func encodeKV(e kv) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(e.key)+len(e.value))
	buf = binary.AppendUvarint(buf, uint64(len(e.key)))
	buf = append(buf, e.key...)
	buf = append(buf, e.value...)
	return buf
}

// decodeKV parses a spill record. The returned value is a copy: merge
// consumers retain values in reduce groups long past the source iterator's
// next advance, and while backend iterators hand out stable records today,
// an aliased value would silently corrupt groups the moment spill reads
// flow through a buffer-reusing source (as streamed files do).
func decodeKV(rec []byte) (kv, error) {
	kl, n := binary.Uvarint(rec)
	if n <= 0 || kl > uint64(len(rec)-n) {
		return kv{}, fmt.Errorf("mapred: corrupt spill record")
	}
	end := n + int(kl)
	val := make([]byte, len(rec)-end)
	copy(val, rec[end:])
	return kv{key: string(rec[n:end]), value: val}, nil
}

// sortStableByKey sorts kvs by key, preserving emission order within a
// key — the same ordering contract as sortAndGroup.
func sortStableByKey(kvs []kv) {
	sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].key < kvs[j].key })
}

// writeSpillRun materialises one sorted run, attaching a spill-write io
// span under the task span when tracing.
func (c *Cluster) writeSpillRun(name string, kvs []kv, tspan *obs.Span, check func() error) (spillRef, error) {
	w, err := c.FS.Create(name, 1)
	if err != nil {
		return spillRef{}, err
	}
	var sspan *obs.Span
	if tspan != nil {
		sspan = tspan.StartChild(obs.KindIO, "spill-write")
	}
	w.SetSpan(sspan)
	ref := spillRef{file: name, records: int64(len(kvs))}
	werr := func() error {
		for i := range kvs {
			if i%ctxCheckInterval == 0 {
				if err := check(); err != nil {
					return err
				}
			}
			ref.bytes += int64(len(kvs[i].key) + len(kvs[i].value))
			w.WriteOwned(encodeKV(kvs[i]))
		}
		return nil
	}()
	sspan.End()
	if cerr := w.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return spillRef{}, werr
	}
	return ref, nil
}

// kvSource streams one sorted run of kv pairs for the shuffle merge.
type kvSource interface {
	// next pops the next pair; ok is false at end of run.
	next() (e kv, ok bool, err error)
}

// memKVSource streams a sorted in-memory buffer.
type memKVSource struct {
	kvs []kv
	i   int
}

func (s *memKVSource) next() (kv, bool, error) {
	if s.i >= len(s.kvs) {
		return kv{}, false, nil
	}
	e := s.kvs[s.i]
	s.i++
	return e, true, nil
}

// spillKVSource streams a spill run back from the cluster FS.
type spillKVSource struct {
	f  *dfs.File
	it dfs.RecordIterator
}

func newSpillKVSource(fs *dfs.FS, ref spillRef) (*spillKVSource, error) {
	f, err := fs.Open(ref.file)
	if err != nil {
		return nil, err
	}
	return &spillKVSource{f: f, it: f.Records(0)}, nil
}

func (s *spillKVSource) next() (kv, bool, error) {
	if !s.it.Next() {
		err := s.it.Err()
		s.f.Close()
		return kv{}, false, err
	}
	e, err := decodeKV(s.it.Record())
	if err != nil {
		return kv{}, false, err
	}
	return e, true, nil
}

// kvHeapItem is one source's head pair in the merge heap.
type kvHeapItem struct {
	e   kv
	src int
	s   kvSource
}

// kvHeap orders source heads by (key, source index): the stable-merge
// tie-break that makes the merged stream identical to concatenating the
// sources in order and stable-sorting.
type kvHeap []kvHeapItem

func (h kvHeap) Len() int { return len(h) }
func (h kvHeap) Less(i, j int) bool {
	if h[i].e.key != h[j].e.key {
		return h[i].e.key < h[j].e.key
	}
	return h[i].src < h[j].src
}
func (h kvHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *kvHeap) Push(x any)   { *h = append(*h, x.(kvHeapItem)) }
func (h *kvHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// mergePartition stable-merges sorted kv sources into key groups,
// returning the groups plus the merged record and byte counts (the
// partition's shuffle volume).
func mergePartition(srcs []kvSource, check func() error) ([]group, int64, int64, error) {
	h := make(kvHeap, 0, len(srcs))
	for i, s := range srcs {
		e, ok, err := s.next()
		if err != nil {
			return nil, 0, 0, err
		}
		if ok {
			h = append(h, kvHeapItem{e: e, src: i, s: s})
		}
	}
	heap.Init(&h)
	var groups []group
	var records, bytes int64
	for len(h) > 0 {
		if records%ctxCheckInterval == 0 {
			if err := check(); err != nil {
				return nil, 0, 0, err
			}
		}
		top := &h[0]
		records++
		bytes += int64(len(top.e.key) + len(top.e.value))
		if len(groups) == 0 || groups[len(groups)-1].key != top.e.key {
			groups = append(groups, group{key: top.e.key})
		}
		g := &groups[len(groups)-1]
		g.values = append(g.values, top.e.value)
		e, ok, err := top.s.next()
		if err != nil {
			return nil, 0, 0, err
		}
		if ok {
			top.e = e
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return groups, records, bytes, nil
}
