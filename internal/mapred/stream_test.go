package mapred

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"rapidanalytics/internal/dfs"
)

func streamFixture(c *Cluster) {
	lines := make([]string, 300)
	for i := range lines {
		lines[i] = fmt.Sprintf("s%d s%d s%d", i%13, i%5, i%31)
	}
	writeLines(c, "in", 1, lines...)
}

func streamCluster(streaming bool) *Cluster {
	cfg := DefaultConfig()
	cfg.ExecSplitBytes = 256
	cfg.Streaming = streaming
	return NewCluster(cfg)
}

func streamedWordCount(in, out string) *Job {
	j := wordCountJob(in, out, false)
	j.StreamOutput = true
	return j
}

// TestStreamedOutputByteIdentical: a job's output must be byte-identical
// whether it streams or materialises, with every volume metric equal
// except the Streamed* counters; the streamed run leaves no stored output.
func TestStreamedOutputByteIdentical(t *testing.T) {
	run := func(streaming bool) (Metrics, []string, int64) {
		c := streamCluster(streaming)
		streamFixture(c)
		m, err := c.Run(streamedWordCount("in", "out"))
		if err != nil {
			t.Fatalf("streaming=%v: %v", streaming, err)
		}
		return m.Volumes(), readLines(t, c, "out"), c.FS.TotalStoredBytes("out")
	}
	mat, matOut, matStored := run(false)
	str, strOut, strStored := run(true)
	if str.StreamedRecords == 0 || str.StreamedBatches == 0 {
		t.Fatalf("stream path not exercised: %+v", str)
	}
	if str.StreamedRecords != str.OutputRecords {
		t.Errorf("StreamedRecords = %d, want OutputRecords %d", str.StreamedRecords, str.OutputRecords)
	}
	if mat.StreamedRecords != 0 || mat.StreamedBatches != 0 {
		t.Errorf("materialised run reports streaming: %+v", mat)
	}
	if strings.Join(matOut, "\n") != strings.Join(strOut, "\n") {
		t.Errorf("output diverged:\n%v\nvs\n%v", matOut, strOut)
	}
	if matStored == 0 || strStored != 0 {
		t.Errorf("stored output bytes = %d materialised, %d streamed; want >0, 0", matStored, strStored)
	}
	// The streamed counters are the only volumes allowed to differ — in
	// particular OutputStoredBytes stays the notional stored size, keeping
	// the cost model identical across modes.
	str.StreamedRecords, str.StreamedBatches = 0, 0
	if mat != str {
		t.Errorf("volumes diverged:\n%+v\nvs\n%+v", mat, str)
	}
}

// TestStreamedMapOnlyJob covers the direct map-output write site.
func TestStreamedMapOnlyJob(t *testing.T) {
	identity := func(in, out string) *Job {
		return &Job{
			Name:   "ident",
			Inputs: []string{in},
			Output: out,
			NewMapper: func(tc *TaskContext) Mapper {
				return MapperFunc(func(rec []byte, emit Emit) error {
					emit("", append([]byte(nil), rec...))
					return nil
				})
			},
			StreamOutput: true,
		}
	}
	run := func(streaming bool) (Metrics, []string) {
		c := streamCluster(streaming)
		streamFixture(c)
		m, err := c.Run(identity("in", "out"))
		if err != nil {
			t.Fatal(err)
		}
		return m.Volumes(), readLines(t, c, "out")
	}
	mat, matOut := run(false)
	str, strOut := run(true)
	if str.StreamedRecords != str.OutputRecords || str.StreamedBatches == 0 {
		t.Fatalf("map-only stream path not exercised: %+v", str)
	}
	if strings.Join(matOut, "\n") != strings.Join(strOut, "\n") {
		t.Error("map-only output diverged between modes")
	}
	str.StreamedRecords, str.StreamedBatches = 0, 0
	if mat != str {
		t.Errorf("volumes diverged:\n%+v\nvs\n%+v", mat, str)
	}
}

// TestStreamOverflowMaterializes: a tiny StreamSpillBytes forces the
// overflow path; the output must land in the backend byte-identically
// with the streamed counters reset.
func TestStreamOverflowMaterializes(t *testing.T) {
	c := streamCluster(true)
	c.Config.StreamSpillBytes = 32
	streamFixture(c)
	m, err := c.Run(streamedWordCount("in", "out"))
	if err != nil {
		t.Fatal(err)
	}
	if m.StreamedRecords != 0 || m.StreamedBatches != 0 {
		t.Errorf("overflowed run still reports streaming: %+v", m)
	}
	if c.FS.TotalStoredBytes("out") == 0 {
		t.Error("overflowed output has no stored bytes")
	}
	want := readLines(t, streamRunPlain(t), "out")
	got := readLines(t, c, "out")
	if strings.Join(want, "\n") != strings.Join(got, "\n") {
		t.Errorf("output diverged after overflow:\n%v\nvs\n%v", want, got)
	}
}

// streamRunPlain runs the reference non-streamed word count.
func streamRunPlain(t *testing.T) *Cluster {
	t.Helper()
	c := streamCluster(false)
	streamFixture(c)
	if _, err := c.Run(streamedWordCount("in", "out")); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStreamingRequiresOptIn: Config.Streaming alone must not stream jobs
// that did not mark their output safe.
func TestStreamingRequiresOptIn(t *testing.T) {
	c := streamCluster(true)
	streamFixture(c)
	m, err := c.Run(wordCountJob("in", "out", false))
	if err != nil {
		t.Fatal(err)
	}
	if m.StreamedRecords != 0 || m.StreamedBatches != 0 {
		t.Errorf("job without StreamOutput streamed: %+v", m)
	}
	if c.FS.TotalStoredBytes("out") == 0 {
		t.Error("opt-out output not materialised")
	}
}

// TestStreamedChainedJobs: a downstream job consumes a streamed
// intermediate through the normal split machinery (and as a broadcast
// side input); the final output must match the fully materialised chain
// while the intermediate never touches the backend.
func TestStreamedChainedJobs(t *testing.T) {
	chain := func(streaming bool) (*Cluster, *WorkflowMetrics) {
		c := streamCluster(streaming)
		streamFixture(c)
		j1 := streamedWordCount("in", "mid")
		j2 := wordCountJob("mid", "out", true)
		j2.SideInputs = []string{"mid"}
		wm, err := c.RunWorkflow([]*Job{j1, j2})
		if err != nil {
			t.Fatalf("streaming=%v: %v", streaming, err)
		}
		return c, wm
	}
	cm, _ := chain(false)
	cs, wm := chain(true)
	if wm.StreamedRecords() == 0 || wm.StreamedBatches() == 0 {
		t.Fatal("workflow streamed nothing")
	}
	if got, want := readLines(t, cs, "out"), readLines(t, cm, "out"); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("chained output diverged:\n%v\nvs\n%v", got, want)
	}
	if cs.FS.TotalStoredBytes("mid") != 0 {
		t.Error("streamed intermediate reached the backend")
	}
	if cm.FS.TotalStoredBytes("mid") == 0 {
		t.Error("reference intermediate missing")
	}
	if wm.MaterializedStoredBytes() >= cm.FS.TotalStoredBytes("") {
		t.Errorf("materialised stored bytes not reduced: streamed %d vs reference %d",
			wm.MaterializedStoredBytes(), cm.FS.TotalStoredBytes(""))
	}
}

// TestStreamedDeterminismMatrix extends the determinism contract to the
// streaming knob: worker counts x streaming modes x batch sizes must
// produce identical bytes.
func TestStreamedDeterminismMatrix(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4} {
		for _, streaming := range []bool{false, true} {
			for _, rows := range []int{0, 3, 64} {
				cfg := DefaultConfig()
				cfg.ExecSplitBytes = 256
				cfg.ExecReduceWorkers = workers
				cfg.Streaming = streaming
				cfg.StreamBatchRows = rows
				c := NewCluster(cfg)
				streamFixture(c)
				if _, err := c.Run(streamedWordCount("in", "out")); err != nil {
					t.Fatalf("w=%d s=%v rows=%d: %v", workers, streaming, rows, err)
				}
				got := strings.Join(readLines(t, c, "out"), "\n")
				if want == "" {
					want = got
				} else if got != want {
					t.Errorf("w=%d s=%v rows=%d: output diverged", workers, streaming, rows)
				}
			}
		}
	}
}

// failingDeleteBackend fails deletes under _spill/ to exercise the
// cleanup error path; everything else passes through.
type failingDeleteBackend struct {
	dfs.Backend
	err error
}

func (b failingDeleteBackend) Delete(name string) error {
	if strings.HasPrefix(name, "_spill/") {
		return b.err
	}
	return b.Backend.Delete(name)
}

// TestCleanupSpillErrorSurfaces: a failed spill delete leaks storage and
// must fail the job with ErrSpillCleanup rather than pass silently.
func TestCleanupSpillErrorSurfaces(t *testing.T) {
	injected := errors.New("injected delete failure")
	fs := dfs.NewWithBackend(failingDeleteBackend{Backend: dfs.NewMemBackend(), err: injected})
	cfg := DefaultConfig()
	cfg.ExecSplitBytes = 256
	cfg.SpillThresholdBytes = 64
	c := NewClusterFS(cfg, fs)
	spillFixture(c)
	m, err := c.Run(wordCountJob("in", "out", false))
	if !errors.Is(err, ErrSpillCleanup) || !errors.Is(err, injected) {
		t.Fatalf("err = %v, want ErrSpillCleanup wrapping the backend failure", err)
	}
	if m != nil {
		t.Errorf("metrics returned alongside cleanup failure: %+v", m)
	}
	// The job itself completed: its output is present and correct.
	ref := spillCluster(0)
	spillFixture(ref)
	if _, err := ref.Run(wordCountJob("in", "out", false)); err != nil {
		t.Fatal(err)
	}
	want := readLines(t, ref, "out")
	if got := readLines(t, c, "out"); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Error("output corrupted by cleanup failure")
	}
}

// TestDecodeKVCopiesValue: the decoded value must survive mutation of the
// source record — the retention window of reduce groups outlives any
// buffer-reusing iterator the record came from.
func TestDecodeKVCopiesValue(t *testing.T) {
	rec := encodeKV(kv{key: "k", value: []byte("payload")})
	e, err := decodeKV(rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rec {
		rec[i] = 0xff
	}
	if e.key != "k" || string(e.value) != "payload" {
		t.Fatalf("decoded kv aliases source record: key %q value %q", e.key, e.value)
	}
}

// TestSpillRunNameFormat pins the allocation-lean builder to the original
// fmt format, including wide values that exceed the padding.
func TestSpillRunNameFormat(t *testing.T) {
	for _, tc := range [][3]int{{0, 0, 0}, {5, 42, 3}, {1234, 9999, 12}, {99999, 0, 100000}} {
		want := fmt.Sprintf("_spill/q1/out/t%04d-r%04d-p%04d", tc[0], tc[1], tc[2])
		if got := spillRunName("q1/out", tc[0], tc[1], tc[2]); got != want {
			t.Errorf("spillRunName(%v) = %q, want %q", tc, got, want)
		}
	}
}
