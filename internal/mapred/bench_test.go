package mapred

import (
	"fmt"
	"testing"
)

// BenchmarkWordCountThroughput measures full-cycle engine throughput:
// splits, parallel map tasks, combiner, shuffle, reduce, materialise.
func BenchmarkWordCountThroughput(b *testing.B) {
	cfg := DefaultConfig()
	var bytes int64
	lines := make([]string, 2000)
	for i := range lines {
		lines[i] = fmt.Sprintf("w%d w%d w%d w%d", i%7, i%3, i%11, i%29)
		bytes += int64(len(lines[i]))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	//lint:nocancel benchmark loop is bounded by b.N over a fixed 2000-line fixture
	for i := 0; i < b.N; i++ {
		c := NewCluster(cfg)
		w, err := c.FS.Create("in", 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range lines {
			w.Write([]byte(l))
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(wordCountJob("in", "out", true)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionOf guards the zero-alloc inline FNV-1a partitioner on
// the per-emit hot path (it used to allocate a hash.Hash32 per key).
func BenchmarkPartitionOf(b *testing.B) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("group-key-%d", i)
	}
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += partitionOf(keys[i%len(keys)], 8)
	}
	_ = sink
}

// BenchmarkShufflePath isolates the sort-merge shuffle.
func BenchmarkShufflePath(b *testing.B) {
	in := make([]kv, 5000)
	for i := range in {
		in[i] = kv{key: fmt.Sprintf("k%d", i%37), value: []byte("v")}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := make([]kv, len(in))
		copy(buf, in)
		if groups := sortAndGroup(buf); len(groups) != 37 {
			b.Fatalf("groups = %d", len(groups))
		}
	}
}
