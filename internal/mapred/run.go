package mapred

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
)

// kv is a key/value pair in flight between map and reduce.
type kv struct {
	key   string
	value []byte
}

// split is one map task's slice of an input file.
type split struct {
	file    string
	records [][]byte
	bytes   int64
	stored  int64
}

// Run executes one job and returns its metrics (with SimSeconds filled in
// from the cluster's cost model). Map tasks run in parallel, bounded by the
// number of CPUs; determinism is preserved by collecting map output in task
// order before the sort-merge shuffle.
func (c *Cluster) Run(job *Job) (*Metrics, error) {
	if err := c.err(); err != nil {
		return nil, fmt.Errorf("mapred: job %s aborted: %w", job.Name, err)
	}
	m := &Metrics{Job: job.Name, MapOnly: job.MapOnly()}
	splits, err := c.makeSplits(job, m)
	if err != nil {
		return nil, err
	}
	side, err := c.loadSideInputs(job, m)
	if err != nil {
		return nil, err
	}

	partitions := job.Partitions
	if partitions <= 0 {
		partitions = 4
	}
	if job.MapOnly() {
		partitions = 1
	}

	type taskResult struct {
		parts [][]kv
		emits int64
		err   error
	}
	results := make([]taskResult, len(splits))
	sem := make(chan struct{}, maxParallel())
	var wg sync.WaitGroup
	for i, sp := range splits {
		wg.Add(1)
		go func(i int, sp split) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parts, emits, err := c.runMapTask(job, sp, side, partitions)
			results[i] = taskResult{parts: parts, emits: emits, err: err}
		}(i, sp)
	}
	wg.Wait()

	if err := c.err(); err != nil {
		return nil, fmt.Errorf("mapred: job %s aborted before shuffle: %w", job.Name, err)
	}
	// Collect in task order for determinism.
	partData := make([][]kv, partitions)
	for i := range results {
		if results[i].err != nil {
			return nil, fmt.Errorf("mapred: job %s map task %d: %w", job.Name, i, results[i].err)
		}
		m.MapEmitRecords += results[i].emits
		for p, kvs := range results[i].parts {
			partData[p] = append(partData[p], kvs...)
		}
	}
	for _, part := range partData {
		for _, e := range part {
			m.MapOutputRecords++
			m.MapOutputBytes += int64(len(e.key) + len(e.value))
		}
	}

	ratio := job.OutputCompression
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	out := c.FS.Create(job.Output, ratio)
	if job.MapOnly() {
		for _, part := range partData {
			for _, e := range part {
				out.Write(e.value)
				m.OutputRecords++
				m.OutputBytes += int64(len(e.value))
			}
		}
	} else {
		for _, part := range partData {
			groups := sortAndGroup(part)
			red := job.NewReducer()
			for gi, g := range groups {
				if gi%ctxCheckInterval == 0 {
					if err := c.err(); err != nil {
						return nil, fmt.Errorf("mapred: job %s aborted in reduce: %w", job.Name, err)
					}
				}
				m.ReduceGroups++
				err := red.Reduce(g.key, g.values, func(_ string, value []byte) {
					out.Write(value)
					m.OutputRecords++
					m.OutputBytes += int64(len(value))
				})
				if err != nil {
					return nil, fmt.Errorf("mapred: job %s reduce key %q: %w", job.Name, g.key, err)
				}
			}
		}
	}
	m.OutputStoredBytes = out.File().StoredBytes()
	c.Config.cost(m)
	return m, nil
}

// RunWorkflow executes jobs sequentially, stopping at the first error or
// when the cluster's bound context is cancelled between cycles.
func (c *Cluster) RunWorkflow(jobs []*Job) (*WorkflowMetrics, error) {
	wm := &WorkflowMetrics{}
	for _, j := range jobs {
		m, err := c.Run(j)
		if err != nil {
			return wm, err
		}
		wm.Jobs = append(wm.Jobs, m)
	}
	return wm, nil
}

func maxParallel() int {
	n := runtime.NumCPU()
	if n < 2 {
		return 2
	}
	return n
}

// makeSplits carves each input file into block-sized splits and accounts
// input volumes.
func (c *Cluster) makeSplits(job *Job, m *Metrics) ([]split, error) {
	blockSize := c.Config.ExecSplitBytes
	if blockSize <= 0 {
		blockSize = 4 << 20
	}
	var splits []split
	for _, name := range job.Inputs {
		f, err := c.FS.Open(name)
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s: %w", job.Name, err)
		}
		m.MapInputRecords += int64(f.NumRecords())
		m.MapInputBytes += f.Bytes
		m.MapStoredBytes += f.StoredBytes()
		cur := split{file: name}
		for _, rec := range f.Records {
			cur.records = append(cur.records, rec)
			cur.bytes += int64(len(rec))
			if cur.bytes >= blockSize {
				splits = append(splits, cur)
				cur = split{file: name}
			}
		}
		if len(cur.records) > 0 || f.NumRecords() == 0 {
			splits = append(splits, cur)
		}
	}
	return splits, nil
}

func (c *Cluster) loadSideInputs(job *Job, m *Metrics) (map[string][][]byte, error) {
	if len(job.SideInputs) == 0 {
		return nil, nil
	}
	side := make(map[string][][]byte, len(job.SideInputs))
	for _, name := range job.SideInputs {
		f, err := c.FS.Open(name)
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s side input: %w", job.Name, err)
		}
		side[name] = f.Records
		m.SideInputBytes += f.StoredBytes()
	}
	return side, nil
}

// runMapTask runs one mapper over a split, partitions its output, and
// applies the combiner locally. It returns the partitioned (post-combiner)
// output and the number of records the mapper emitted before combining.
func (c *Cluster) runMapTask(job *Job, sp split, side map[string][][]byte, partitions int) ([][]kv, int64, error) {
	tc := &TaskContext{InputFile: sp.file, sideData: side}
	mapper := job.NewMapper(tc)
	parts := make([][]kv, partitions)
	var emits int64
	emit := func(key string, value []byte) {
		emits++
		p := 0
		if partitions > 1 {
			p = partitionOf(key, partitions)
		}
		parts[p] = append(parts[p], kv{key: key, value: value})
	}
	for ri, rec := range sp.records {
		if ri%ctxCheckInterval == 0 {
			if err := c.err(); err != nil {
				return nil, 0, err
			}
		}
		if err := mapper.Map(rec, emit); err != nil {
			return nil, 0, err
		}
	}
	if closer, ok := mapper.(MapCloser); ok {
		if err := closer.Close(emit); err != nil {
			return nil, 0, err
		}
	}
	if job.NewCombiner != nil && !job.MapOnly() {
		for p := range parts {
			combined, err := combine(job.NewCombiner(), parts[p], partitions, p)
			if err != nil {
				return nil, 0, err
			}
			parts[p] = combined
		}
	}
	return parts, emits, nil
}

func combine(comb Reducer, in []kv, partitions, p int) ([]kv, error) {
	groups := sortAndGroup(in)
	var out []kv
	for _, g := range groups {
		err := comb.Reduce(g.key, g.values, func(key string, value []byte) {
			out = append(out, kv{key: key, value: value})
		})
		if err != nil {
			return nil, err
		}
	}
	// Combiner output must stay in its partition; re-partitioning is not
	// allowed (keys must be preserved or at least co-partitioned).
	for _, e := range out {
		if partitions > 1 && partitionOf(e.key, partitions) != p {
			return nil, fmt.Errorf("mapred: combiner moved key %q across partitions", e.key)
		}
	}
	return out, nil
}

type group struct {
	key    string
	values [][]byte
}

// sortAndGroup sorts key/value pairs by key (stable, preserving map-task
// emission order within a key) and groups equal keys.
func sortAndGroup(in []kv) []group {
	sort.SliceStable(in, func(i, j int) bool { return in[i].key < in[j].key })
	var groups []group
	for i := 0; i < len(in); {
		j := i
		g := group{key: in[i].key}
		for j < len(in) && in[j].key == g.key {
			g.values = append(g.values, in[j].value)
			j++
		}
		groups = append(groups, g)
		i = j
	}
	return groups
}

func partitionOf(key string, partitions int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(partitions))
}
