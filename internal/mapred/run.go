package mapred

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"rapidanalytics/internal/obs"
)

// kv is a key/value pair in flight between map and reduce.
type kv struct {
	key   string
	value []byte
}

// split is one map task's slice of an input file.
type split struct {
	file    string
	records [][]byte
	bytes   int64
	stored  int64
}

// DefaultPartitions is the reduce partition count used when a job does not
// set one.
const DefaultPartitions = 4

// errSiblingAborted marks tasks skipped or interrupted because a sibling
// task in the same phase already failed. It is an internal sentinel: Run
// always reports the originating failure, never this error.
var errSiblingAborted = errors.New("mapred: sibling task failed")

// abortSignal fans a first-failure signal out to sibling tasks: the first
// trip closes the channel, every task polls it between records.
type abortSignal struct {
	once sync.Once
	ch   chan struct{}
}

func newAbortSignal() *abortSignal { return &abortSignal{ch: make(chan struct{})} }

func (a *abortSignal) trip() { a.once.Do(func() { close(a.ch) }) }

func (a *abortSignal) aborted() bool {
	select {
	case <-a.ch:
		return true
	default:
		return false
	}
}

// taskResult is one map task's partitioned output.
type taskResult struct {
	parts [][]kv
	emits int64
	err   error
}

// partState carries one reduce partition through shuffle-sort and reduce:
// the sorted key groups, the buffered reducer output, and the partition's
// share of the volume metrics, merged into Metrics in partition order so
// parallel execution is indistinguishable from sequential.
type partState struct {
	groups []group
	out    [][]byte

	mapOutRecords int64
	mapOutBytes   int64
	reduceGroups  int64
	outputRecords int64
	outputBytes   int64
	err           error
}

// Run executes one job and returns its metrics (with SimSeconds filled in
// from the cluster's cost model). Map tasks run on a bounded worker pool;
// the shuffle-sort and reduce phases run one bounded worker pool over the
// reduce partitions. Determinism is preserved end to end: each partition's
// buffers are concatenated in map-task order, the shuffle sort is stable,
// and partition outputs are written to the DFS in partition order — so
// output bytes, record order and all volume metrics are identical whether
// the phases run on one worker or many.
func (c *Cluster) Run(job *Job) (*Metrics, error) {
	if err := c.err(); err != nil {
		return nil, fmt.Errorf("mapred: job %s aborted: %w", job.Name, err)
	}
	// cycle is nil when the binding context carries no trace span, which
	// makes every span call below a no-op; sites that format span names or
	// create per-task children guard on the parent to stay allocation-free.
	cycle := obs.FromContext(c.Context()).StartChild(obs.KindCycle, job.Name)
	defer cycle.End()
	m := &Metrics{Job: job.Name, MapOnly: job.MapOnly()}
	splits, err := c.makeSplits(job, m)
	if err != nil {
		return nil, err
	}
	side, err := c.loadSideInputs(job, m)
	if err != nil {
		return nil, err
	}

	partitions := job.Partitions
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	if job.MapOnly() {
		partitions = 1
	}

	var mapPhase, mapOp *obs.Span
	if cycle != nil {
		mapPhase = cycle.StartChild(obs.KindPhase, "map")
		mapPhase.AddRecords(m.MapInputRecords)
		mapPhase.AddBytes(m.MapInputBytes)
		mapOp = mapPhase.StartChild(obs.KindOperator, job.mapOperatorName())
	}
	results, mapWall, err := c.runMapPhase(job, splits, side, partitions, mapOp)
	m.MapWallNs = mapWall.Nanoseconds()
	if cerr := c.err(); cerr != nil {
		return nil, fmt.Errorf("mapred: job %s aborted before shuffle: %w", job.Name, cerr)
	}
	if err != nil {
		return nil, err
	}
	for i := range results {
		m.MapEmitRecords += results[i].emits
	}
	mapOp.AddRecords(m.MapEmitRecords)
	mapOp.EndWith(mapWall)

	ratio := job.OutputCompression
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}

	if job.MapOnly() {
		// Map-only output is written directly from the (single-partition)
		// map buffers in task order, as Hadoop map tasks would; the write is
		// part of the map phase, there is no shuffle or reduce.
		wstart := time.Now()
		out := c.FS.Create(job.Output, ratio)
		ioSpan := cycle.StartChild(obs.KindIO, "dfs-write")
		out.SetSpan(ioSpan)
		for i := range results {
			for ri, e := range results[i].parts[0] {
				if ri%ctxCheckInterval == 0 {
					if err := c.err(); err != nil {
						return nil, fmt.Errorf("mapred: job %s aborted writing map output: %w", job.Name, err)
					}
				}
				m.MapOutputRecords++
				m.MapOutputBytes += int64(len(e.key) + len(e.value))
				out.Write(e.value)
				m.OutputRecords++
				m.OutputBytes += int64(len(e.value))
			}
		}
		ioSpan.End()
		m.OutputStoredBytes = out.File().StoredBytes()
		m.MapWallNs += time.Since(wstart).Nanoseconds()
		mapPhase.EndWith(time.Duration(m.MapWallNs))
		cycle.AddRecords(m.OutputRecords)
		cycle.AddBytes(m.OutputBytes)
		c.Config.cost(m)
		return m, nil
	}
	mapPhase.EndWith(time.Duration(m.MapWallNs))

	states := make([]partState, partitions)
	workers := c.reduceWorkers(partitions)

	// Shuffle-sort: concatenate each partition's slices in map-task order
	// and sort-group them, one partition per worker. The cancellation check
	// runs before each partition's sort, so a cancelled query never enters
	// an unbounded sort over a hot partition.
	shufflePhase := cycle.StartChild(obs.KindPhase, "shuffle-sort")
	shuffleStart := time.Now()
	runPartitions(workers, partitions, func(p int) {
		st := &states[p]
		var pspan *obs.Span
		if shufflePhase != nil {
			pspan = shufflePhase.StartChild(obs.KindTask, fmt.Sprintf("part-%d", p))
		}
		if err := c.err(); err != nil {
			st.err = err
			return
		}
		n := 0
		for i := range results {
			n += len(results[i].parts[p])
		}
		buf := make([]kv, 0, n)
		for i := range results {
			buf = append(buf, results[i].parts[p]...)
		}
		for _, e := range buf {
			st.mapOutRecords++
			st.mapOutBytes += int64(len(e.key) + len(e.value))
		}
		st.groups = sortAndGroup(buf)
		if pspan != nil {
			pspan.AddRecords(st.mapOutRecords)
			pspan.AddBytes(st.mapOutBytes)
			pspan.End()
		}
	})
	m.ShuffleSortWallNs = time.Since(shuffleStart).Nanoseconds()
	for p := range states {
		if states[p].err != nil {
			return nil, fmt.Errorf("mapred: job %s aborted in shuffle: %w", job.Name, states[p].err)
		}
		m.MapOutputRecords += states[p].mapOutRecords
		m.MapOutputBytes += states[p].mapOutBytes
	}
	shufflePhase.AddRecords(m.MapOutputRecords)
	shufflePhase.AddBytes(m.MapOutputBytes)
	shufflePhase.EndWith(time.Duration(m.ShuffleSortWallNs))

	// Reduce: each partition's reducer runs independently, buffering its
	// output; a failed or cancelled partition trips its siblings.
	var reducePhase, reduceOp *obs.Span
	if cycle != nil {
		reducePhase = cycle.StartChild(obs.KindPhase, "reduce")
		reduceOp = reducePhase.StartChild(obs.KindOperator, job.reduceOperatorName())
	}
	reduceStart := time.Now()
	abort := newAbortSignal()
	runPartitions(workers, partitions, func(p int) {
		st := &states[p]
		var pspan *obs.Span
		if reduceOp != nil {
			pspan = reduceOp.StartChild(obs.KindTask, fmt.Sprintf("part-%d", p))
		}
		if err := c.reducePartition(job, st, abort); err != nil {
			st.err = err
			if !errors.Is(err, errSiblingAborted) {
				abort.trip()
			}
		}
		if pspan != nil {
			pspan.AddRecords(st.outputRecords)
			pspan.AddBytes(st.outputBytes)
			pspan.End()
		}
	})
	reduceOp.End()
	if err := c.err(); err != nil {
		return nil, fmt.Errorf("mapred: job %s aborted in reduce: %w", job.Name, err)
	}
	for p := range states {
		if err := states[p].err; err != nil && !errors.Is(err, errSiblingAborted) {
			return nil, fmt.Errorf("mapred: job %s: %w", job.Name, err)
		}
	}

	// Materialise buffered partition outputs in partition order — the byte
	// stream a single sequential reducer loop would have produced.
	out := c.FS.Create(job.Output, ratio)
	ioSpan := cycle.StartChild(obs.KindIO, "dfs-write")
	out.SetSpan(ioSpan)
	for p := range states {
		st := &states[p]
		for ri, rec := range st.out {
			if ri%ctxCheckInterval == 0 {
				if err := c.err(); err != nil {
					return nil, fmt.Errorf("mapred: job %s aborted writing reduce output: %w", job.Name, err)
				}
			}
			out.WriteOwned(rec)
		}
		m.ReduceGroups += st.reduceGroups
		m.OutputRecords += st.outputRecords
		m.OutputBytes += st.outputBytes
	}
	ioSpan.End()
	m.OutputStoredBytes = out.File().StoredBytes()
	m.ReduceWallNs = time.Since(reduceStart).Nanoseconds()
	reduceOp.AddRecords(m.ReduceGroups)
	reducePhase.AddRecords(m.OutputRecords)
	reducePhase.AddBytes(m.OutputBytes)
	reducePhase.EndWith(time.Duration(m.ReduceWallNs))
	cycle.AddRecords(m.OutputRecords)
	cycle.AddBytes(m.OutputBytes)
	c.Config.cost(m)
	return m, nil
}

// runMapPhase executes every split on a pool of maxParallel workers pulling
// from a shared channel, so fan-out stays bounded no matter how many splits
// the input carves into. The first task failure trips the abort signal;
// queued tasks are skipped and in-flight siblings stop at their next record
// check. The returned error is the lowest-indexed task's genuine failure.
// When mapOp is non-nil each task attaches a child span recording the
// split's input volume; when nil the loop takes the span-free path.
func (c *Cluster) runMapPhase(job *Job, splits []split, side map[string][][]byte, partitions int, mapOp *obs.Span) ([]taskResult, time.Duration, error) {
	start := time.Now()
	results := make([]taskResult, len(splits))
	abort := newAbortSignal()
	workers := maxParallel()
	if workers > len(splits) {
		workers = len(splits)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if abort.aborted() {
					results[i].err = errSiblingAborted
					continue
				}
				var tspan *obs.Span
				if mapOp != nil {
					tspan = mapOp.StartChild(obs.KindTask, fmt.Sprintf("task-%d", i))
					tspan.AddRecords(int64(len(splits[i].records)))
					tspan.AddBytes(splits[i].bytes)
				}
				parts, emits, err := c.runMapTask(job, splits[i], side, partitions, abort)
				results[i] = taskResult{parts: parts, emits: emits, err: err}
				tspan.End()
				if err != nil {
					abort.trip()
				}
			}
		}()
	}
	for i := range splits {
		idx <- i
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)
	for i := range results {
		if err := results[i].err; err != nil && !errors.Is(err, errSiblingAborted) {
			return nil, elapsed, fmt.Errorf("mapred: job %s map task %d: %w", job.Name, i, err)
		}
	}
	return results, elapsed, nil
}

// reducePartition sorts nothing (the groups are prepared by the shuffle
// phase); it runs the reducer over one partition's groups, buffering output
// records and volume counts into st.
func (c *Cluster) reducePartition(job *Job, st *partState, abort *abortSignal) error {
	if err := c.err(); err != nil {
		return err
	}
	if abort.aborted() {
		return errSiblingAborted
	}
	red := job.NewReducer()
	for gi, g := range st.groups {
		if gi%ctxCheckInterval == 0 {
			if err := c.err(); err != nil {
				return err
			}
			if abort.aborted() {
				return errSiblingAborted
			}
		}
		st.reduceGroups++
		err := red.Reduce(g.key, g.values, func(_ string, value []byte) {
			// Copy: reducers may reuse the emitted slice, and the write to
			// the DFS happens only after every partition finishes.
			rec := make([]byte, len(value))
			copy(rec, value)
			st.out = append(st.out, rec)
			st.outputRecords++
			st.outputBytes += int64(len(value))
		})
		if err != nil {
			return fmt.Errorf("reduce key %q: %w", g.key, err)
		}
	}
	return nil
}

// runPartitions applies f to every partition index on a pool of workers.
// With one worker it degenerates to the sequential loop, which parallel
// execution must be byte-for-byte indistinguishable from.
func runPartitions(workers, partitions int, f func(p int)) {
	if workers <= 1 {
		for p := 0; p < partitions; p++ {
			f(p)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range next {
				f(p)
			}
		}()
	}
	for p := 0; p < partitions; p++ {
		next <- p
	}
	close(next)
	wg.Wait()
}

// reduceWorkers sizes the shuffle/reduce worker pool: the configured
// override, else one worker per CPU, never more than there are partitions.
func (c *Cluster) reduceWorkers(partitions int) int {
	n := c.Config.ExecReduceWorkers
	if n <= 0 {
		n = maxParallel()
	}
	if n > partitions {
		n = partitions
	}
	return n
}

// RunWorkflow executes jobs sequentially, stopping at the first error or
// when the cluster's bound context is cancelled between cycles.
func (c *Cluster) RunWorkflow(jobs []*Job) (*WorkflowMetrics, error) {
	wm := &WorkflowMetrics{}
	for _, j := range jobs {
		m, err := c.Run(j)
		if err != nil {
			return wm, err
		}
		wm.Jobs = append(wm.Jobs, m)
	}
	return wm, nil
}

func maxParallel() int {
	n := runtime.NumCPU()
	if n < 2 {
		return 2
	}
	return n
}

// DefaultParallelism returns the worker-pool size used for map tasks and
// (unless ExecReduceWorkers overrides it) the shuffle/reduce phases.
func DefaultParallelism() int { return maxParallel() }

// makeSplits carves each input file into block-sized splits and accounts
// input volumes.
func (c *Cluster) makeSplits(job *Job, m *Metrics) ([]split, error) {
	blockSize := c.Config.ExecSplitBytes
	if blockSize <= 0 {
		blockSize = 4 << 20
	}
	var splits []split
	for _, name := range job.Inputs {
		f, err := c.FS.Open(name)
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s: %w", job.Name, err)
		}
		m.MapInputRecords += int64(f.NumRecords())
		m.MapInputBytes += f.Bytes
		m.MapStoredBytes += f.StoredBytes()
		cur := split{file: name}
		for _, rec := range f.Records {
			cur.records = append(cur.records, rec)
			cur.bytes += int64(len(rec))
			if cur.bytes >= blockSize {
				splits = append(splits, cur)
				cur = split{file: name}
			}
		}
		if len(cur.records) > 0 || f.NumRecords() == 0 {
			splits = append(splits, cur)
		}
	}
	return splits, nil
}

func (c *Cluster) loadSideInputs(job *Job, m *Metrics) (map[string][][]byte, error) {
	if len(job.SideInputs) == 0 {
		return nil, nil
	}
	side := make(map[string][][]byte, len(job.SideInputs))
	for _, name := range job.SideInputs {
		f, err := c.FS.Open(name)
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s side input: %w", job.Name, err)
		}
		side[name] = f.Records
		m.SideInputBytes += f.StoredBytes()
	}
	return side, nil
}

// runMapTask runs one mapper over a split, partitions its output, and
// applies the combiner locally. It returns the partitioned (post-combiner)
// output and the number of records the mapper emitted before combining.
// check covers both context cancellation and sibling-task failure, and is
// consulted between records and inside the combiner.
func (c *Cluster) runMapTask(job *Job, sp split, side map[string][][]byte, partitions int, abort *abortSignal) ([][]kv, int64, error) {
	check := func() error {
		if err := c.err(); err != nil {
			return err
		}
		if abort.aborted() {
			return errSiblingAborted
		}
		return nil
	}
	tc := &TaskContext{InputFile: sp.file, sideData: side}
	mapper := job.NewMapper(tc)
	parts := make([][]kv, partitions)
	var emits int64
	emit := func(key string, value []byte) {
		emits++
		p := 0
		if partitions > 1 {
			p = partitionOf(key, partitions)
		}
		parts[p] = append(parts[p], kv{key: key, value: value})
	}
	for ri, rec := range sp.records {
		if ri%ctxCheckInterval == 0 {
			if err := check(); err != nil {
				return nil, 0, err
			}
		}
		if err := mapper.Map(rec, emit); err != nil {
			return nil, 0, err
		}
	}
	if closer, ok := mapper.(MapCloser); ok {
		if err := closer.Close(emit); err != nil {
			return nil, 0, err
		}
	}
	if job.NewCombiner != nil && !job.MapOnly() {
		for p := range parts {
			combined, err := combine(job.NewCombiner(), parts[p], partitions, p, check)
			if err != nil {
				return nil, 0, err
			}
			parts[p] = combined
		}
	}
	return parts, emits, nil
}

// combine runs the combiner over one partition of a map task's output. The
// check hook runs before the sort and between groups, so cancellation never
// stalls in a combiner over a hot key.
func combine(comb Reducer, in []kv, partitions, p int, check func() error) ([]kv, error) {
	if err := check(); err != nil {
		return nil, err
	}
	groups := sortAndGroup(in)
	var out []kv
	for gi, g := range groups {
		if gi%ctxCheckInterval == 0 {
			if err := check(); err != nil {
				return nil, err
			}
		}
		err := comb.Reduce(g.key, g.values, func(key string, value []byte) {
			out = append(out, kv{key: key, value: value})
		})
		if err != nil {
			return nil, err
		}
	}
	// Combiner output must stay in its partition; re-partitioning is not
	// allowed (keys must be preserved or at least co-partitioned).
	for ei, e := range out {
		if ei%ctxCheckInterval == 0 {
			if err := check(); err != nil {
				return nil, err
			}
		}
		if partitions > 1 && partitionOf(e.key, partitions) != p {
			return nil, fmt.Errorf("mapred: combiner moved key %q across partitions", e.key)
		}
	}
	return out, nil
}

type group struct {
	key    string
	values [][]byte
}

// sortAndGroup sorts key/value pairs by key (stable, preserving map-task
// emission order within a key) and groups equal keys.
func sortAndGroup(in []kv) []group {
	sort.SliceStable(in, func(i, j int) bool { return in[i].key < in[j].key })
	var groups []group
	for i := 0; i < len(in); {
		j := i
		g := group{key: in[i].key}
		for j < len(in) && in[j].key == g.key {
			g.values = append(g.values, in[j].value)
			j++
		}
		groups = append(groups, g)
		i = j
	}
	return groups
}

// FNV-1a constants (hash/fnv), inlined so the per-emit hot path hashes
// without allocating a hash.Hash32.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// partitionOf assigns a key to a reduce partition with an inline FNV-1a
// hash — identical to fnv.New32a over the key bytes, but zero-alloc.
//
//rapid:hot
func partitionOf(key string, partitions int) int {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return int(h % uint32(partitions))
}
