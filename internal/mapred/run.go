package mapred

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/obs"
	"rapidanalytics/internal/vec"
)

// kv is a key/value pair in flight between map and reduce.
type kv struct {
	key   string
	value []byte
}

// split is one map task's slice of an input file: a [start, start+n)
// record range read back through the file's streaming iterator, so the
// records are never materialised ahead of the task that consumes them.
type split struct {
	f     *dfs.File
	file  string
	start int
	n     int
	bytes int64
}

// DefaultPartitions is the reduce partition count used when a job does not
// set one.
const DefaultPartitions = 4

// errSiblingAborted marks tasks skipped or interrupted because a sibling
// task in the same phase already failed. It is an internal sentinel: Run
// always reports the originating failure, never this error.
var errSiblingAborted = errors.New("mapred: sibling task failed")

// abortSignal fans a first-failure signal out to sibling tasks: the first
// trip closes the channel, every task polls it between records.
type abortSignal struct {
	once sync.Once
	ch   chan struct{}
}

func newAbortSignal() *abortSignal { return &abortSignal{ch: make(chan struct{})} }

func (a *abortSignal) trip() { a.once.Do(func() { close(a.ch) }) }

func (a *abortSignal) aborted() bool {
	select {
	case <-a.ch:
		return true
	default:
		return false
	}
}

// taskResult is one map task's partitioned output: the in-memory buffers
// plus, when the task spilled, the per-partition spill runs in emission
// order.
type taskResult struct {
	parts  [][]kv
	spills [][]spillRef
	emits  int64

	spillRuns    int64
	spillRecords int64
	spillBytes   int64

	err error
}

// partState carries one reduce partition through shuffle-sort and reduce:
// the sorted key groups, the buffered reducer output (raw records, or
// sealed columnar batches when the job streams), and the partition's
// share of the volume metrics, merged into Metrics in partition order so
// parallel execution is indistinguishable from sequential.
type partState struct {
	groups  []group
	out     [][]byte
	batches []*vec.Batch

	mapOutRecords int64
	mapOutBytes   int64
	reduceGroups  int64
	outputRecords int64
	outputBytes   int64
	err           error
}

// Run executes one job and returns its metrics (with SimSeconds filled in
// from the cluster's cost model). Map tasks run on a bounded worker pool;
// the shuffle-sort and reduce phases run one bounded worker pool over the
// reduce partitions. Determinism is preserved end to end: each partition's
// buffers are concatenated in map-task order (spill runs merge stably in
// the same order), the shuffle sort is stable, and partition outputs are
// written to the DFS in partition order — so output bytes, record order
// and all volume metrics are identical whether the phases run on one
// worker or many, and identical across storage backends.
func (c *Cluster) Run(job *Job) (metrics *Metrics, err error) {
	if err := c.err(); err != nil {
		return nil, fmt.Errorf("mapred: job %s aborted: %w", job.Name, err)
	}
	// cycle is nil when the binding context carries no trace span, which
	// makes every span call below a no-op; sites that format span names or
	// create per-task children guard on the parent to stay allocation-free.
	cycle := obs.FromContext(c.Context()).StartChild(obs.KindCycle, job.Name)
	defer cycle.End()
	m := &Metrics{Job: job.Name, MapOnly: job.MapOnly()}
	splits, inputs, err := c.makeSplits(job, m)
	if err != nil {
		return nil, err
	}
	defer closeFiles(inputs)
	side, err := c.loadSideInputs(job, m)
	if err != nil {
		return nil, err
	}
	if c.Config.SpillThresholdBytes > 0 && !job.MapOnly() {
		// A failed spill delete leaks backend storage; it fails the job
		// unless the job already failed for a more fundamental reason.
		defer func() {
			if cerr := c.cleanupSpills(job.Output); cerr != nil && err == nil {
				metrics = nil
				err = fmt.Errorf("%w: job %s: %w", ErrSpillCleanup, job.Name, cerr)
			}
		}()
	}

	partitions := job.Partitions
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	if job.MapOnly() {
		partitions = 1
	}

	var mapPhase, mapOp *obs.Span
	if cycle != nil {
		mapPhase = cycle.StartChild(obs.KindPhase, "map")
		mapPhase.AddRecords(m.MapInputRecords)
		mapPhase.AddBytes(m.MapInputBytes)
		mapOp = mapPhase.StartChild(obs.KindOperator, job.mapOperatorName())
	}
	results, mapWall, err := c.runMapPhase(job, splits, side, partitions, mapOp)
	m.MapWallNs = mapWall.Nanoseconds()
	if cerr := c.err(); cerr != nil {
		return nil, fmt.Errorf("mapred: job %s aborted before shuffle: %w", job.Name, cerr)
	}
	if err != nil {
		return nil, err
	}
	for i := range results {
		m.MapEmitRecords += results[i].emits
		m.SpillRuns += results[i].spillRuns
		m.SpillRecords += results[i].spillRecords
		m.SpillBytes += results[i].spillBytes
	}
	mapOp.AddRecords(m.MapEmitRecords)
	mapOp.EndWith(mapWall)

	ratio := job.OutputCompression
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	// Streamed output: the job opted in and the cluster allows it. The
	// write loops below are identical either way — only the writer's
	// destination (stream registry vs backend) and span name differ.
	streaming := c.streamOutput(job)

	if job.MapOnly() {
		// Map-only output is written directly from the (single-partition)
		// map buffers in task order, as Hadoop map tasks would; the write is
		// part of the map phase, there is no shuffle or reduce.
		wstart := time.Now()
		out, err := c.createOutput(job, ratio, streaming)
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s: %w", job.Name, err)
		}
		ioSpan := cycle.StartChild(obs.KindIO, writeSpanName(streaming))
		out.SetSpan(ioSpan)
		write := out.Write
		if streaming {
			// The stream copies records into batches and never retains the
			// slice, so the emit buffers can transfer without a copy. (After
			// an overflow the backend writer does retain, which is equally
			// safe: map emit values are owned by the task's buffers and
			// never reused.)
			write = out.WriteOwned
		}
		werr := func() error {
			for i := range results {
				for ri, e := range results[i].parts[0] {
					if ri%ctxCheckInterval == 0 {
						if err := c.err(); err != nil {
							return fmt.Errorf("mapred: job %s aborted writing map output: %w", job.Name, err)
						}
					}
					m.MapOutputRecords++
					m.MapOutputBytes += int64(len(e.key) + len(e.value))
					write(e.value)
					m.OutputRecords++
					m.OutputBytes += int64(len(e.value))
				}
			}
			return nil
		}()
		ioSpan.End()
		if cerr := out.Close(); werr == nil && cerr != nil {
			werr = fmt.Errorf("mapred: job %s: %w", job.Name, cerr)
		}
		if werr != nil {
			return nil, werr
		}
		m.OutputStoredBytes = out.StoredBytes()
		m.noteStreamed(out)
		m.MapWallNs += time.Since(wstart).Nanoseconds()
		mapPhase.EndWith(time.Duration(m.MapWallNs))
		cycle.AddRecords(m.OutputRecords)
		cycle.AddBytes(m.OutputBytes)
		c.Config.cost(m)
		return m, nil
	}
	mapPhase.EndWith(time.Duration(m.MapWallNs))

	states := make([]partState, partitions)
	workers := c.reduceWorkers(partitions)
	anySpill := false
	for i := range results {
		if results[i].spillRuns > 0 {
			anySpill = true
			break
		}
	}

	// Shuffle-sort: concatenate each partition's slices in map-task order
	// and sort-group them (or, when tasks spilled, stable-merge the spill
	// runs and in-memory remainders in the same order), one partition per
	// worker. The cancellation check runs before each partition's sort, so
	// a cancelled query never enters an unbounded sort over a hot
	// partition.
	shufflePhase := cycle.StartChild(obs.KindPhase, "shuffle-sort")
	shuffleStart := time.Now()
	runPartitions(workers, partitions, func(p int) {
		st := &states[p]
		var pspan *obs.Span
		if shufflePhase != nil {
			pspan = shufflePhase.StartChild(obs.KindTask, fmt.Sprintf("part-%d", p))
		}
		if err := c.err(); err != nil {
			st.err = err
			return
		}
		if anySpill {
			c.mergeSpilled(results, p, st, pspan)
		} else {
			n := 0
			for i := range results {
				n += len(results[i].parts[p])
			}
			buf := make([]kv, 0, n)
			for i := range results {
				buf = append(buf, results[i].parts[p]...)
			}
			for _, e := range buf {
				st.mapOutRecords++
				st.mapOutBytes += int64(len(e.key) + len(e.value))
			}
			st.groups = sortAndGroup(buf)
		}
		if pspan != nil {
			pspan.AddRecords(st.mapOutRecords)
			pspan.AddBytes(st.mapOutBytes)
			pspan.End()
		}
	})
	m.ShuffleSortWallNs = time.Since(shuffleStart).Nanoseconds()
	for p := range states {
		if states[p].err != nil {
			return nil, fmt.Errorf("mapred: job %s aborted in shuffle: %w", job.Name, states[p].err)
		}
		m.MapOutputRecords += states[p].mapOutRecords
		m.MapOutputBytes += states[p].mapOutBytes
	}
	shufflePhase.AddRecords(m.MapOutputRecords)
	shufflePhase.AddBytes(m.MapOutputBytes)
	shufflePhase.EndWith(time.Duration(m.ShuffleSortWallNs))

	// Reduce: each partition's reducer runs independently, buffering its
	// output; a failed or cancelled partition trips its siblings.
	var reducePhase, reduceOp *obs.Span
	if cycle != nil {
		reducePhase = cycle.StartChild(obs.KindPhase, "reduce")
		reduceOp = reducePhase.StartChild(obs.KindOperator, job.reduceOperatorName())
	}
	reduceStart := time.Now()
	abort := newAbortSignal()
	runPartitions(workers, partitions, func(p int) {
		st := &states[p]
		var pspan *obs.Span
		if reduceOp != nil {
			pspan = reduceOp.StartChild(obs.KindTask, fmt.Sprintf("part-%d", p))
		}
		if err := c.reducePartition(job, st, abort); err != nil {
			st.err = err
			if !errors.Is(err, errSiblingAborted) {
				abort.trip()
			}
		}
		if pspan != nil {
			pspan.AddRecords(st.outputRecords)
			pspan.AddBytes(st.outputBytes)
			pspan.End()
		}
	})
	reduceOp.End()
	if err := c.err(); err != nil {
		return nil, fmt.Errorf("mapred: job %s aborted in reduce: %w", job.Name, err)
	}
	for p := range states {
		if err := states[p].err; err != nil && !errors.Is(err, errSiblingAborted) {
			return nil, fmt.Errorf("mapred: job %s: %w", job.Name, err)
		}
	}

	// Commit buffered partition outputs in partition order — the byte
	// stream a single sequential reducer loop would have produced. Streamed
	// jobs transfer each partition's sealed batches wholesale (no
	// per-record re-encode); materialised jobs write record by record.
	out, err := c.createOutput(job, ratio, streaming)
	if err != nil {
		return nil, fmt.Errorf("mapred: job %s: %w", job.Name, err)
	}
	ioSpan := cycle.StartChild(obs.KindIO, writeSpanName(streaming))
	out.SetSpan(ioSpan)
	werr := func() error {
		for p := range states {
			st := &states[p]
			// Each batch holds at most StreamBatchRows (~ctxCheckInterval)
			// records, so a per-batch poll matches the record loop's
			// cancellation density.
			for _, b := range st.batches {
				if err := c.err(); err != nil {
					return fmt.Errorf("mapred: job %s aborted writing reduce output: %w", job.Name, err)
				}
				out.WriteBatch(b)
			}
			for ri, rec := range st.out {
				if ri%ctxCheckInterval == 0 {
					if err := c.err(); err != nil {
						return fmt.Errorf("mapred: job %s aborted writing reduce output: %w", job.Name, err)
					}
				}
				out.WriteOwned(rec)
			}
			m.ReduceGroups += st.reduceGroups
			m.OutputRecords += st.outputRecords
			m.OutputBytes += st.outputBytes
		}
		return nil
	}()
	ioSpan.End()
	if cerr := out.Close(); werr == nil && cerr != nil {
		werr = fmt.Errorf("mapred: job %s: %w", job.Name, cerr)
	}
	if werr != nil {
		return nil, werr
	}
	m.OutputStoredBytes = out.StoredBytes()
	m.noteStreamed(out)
	m.ReduceWallNs = time.Since(reduceStart).Nanoseconds()
	reduceOp.AddRecords(m.ReduceGroups)
	reducePhase.AddRecords(m.OutputRecords)
	reducePhase.AddBytes(m.OutputBytes)
	reducePhase.EndWith(time.Duration(m.ReduceWallNs))
	cycle.AddRecords(m.OutputRecords)
	cycle.AddBytes(m.OutputBytes)
	c.Config.cost(m)
	return m, nil
}

// mergeSpilled builds one partition's groups by stable-merging every map
// task's spill runs and in-memory remainder in emission order. Spill reads
// get their own io span under the partition's shuffle span.
func (c *Cluster) mergeSpilled(results []taskResult, p int, st *partState, pspan *obs.Span) {
	var rspan *obs.Span
	if pspan != nil {
		rspan = pspan.StartChild(obs.KindIO, "spill-read")
	}
	var srcs []kvSource
	var spillRecs, spillBytes int64
	for i := range results {
		for _, ref := range results[i].spills[p] {
			src, err := newSpillKVSource(c.FS, ref)
			if err != nil {
				st.err = err
				rspan.End()
				return
			}
			srcs = append(srcs, src)
			spillRecs += ref.records
			spillBytes += ref.bytes
		}
		if len(results[i].parts[p]) > 0 {
			buf := results[i].parts[p]
			sortStableByKey(buf)
			srcs = append(srcs, &memKVSource{kvs: buf})
		}
	}
	groups, records, bytes, err := mergePartition(srcs, c.err)
	if err != nil {
		st.err = err
		rspan.End()
		return
	}
	rspan.AddRecords(spillRecs)
	rspan.AddBytes(spillBytes)
	rspan.End()
	st.groups = groups
	st.mapOutRecords = records
	st.mapOutBytes = bytes
}

// runMapPhase executes every split on a pool of maxParallel workers pulling
// from a shared channel, so fan-out stays bounded no matter how many splits
// the input carves into. The first task failure trips the abort signal;
// queued tasks are skipped and in-flight siblings stop at their next record
// check. The returned error is the lowest-indexed task's genuine failure.
// When mapOp is non-nil each task attaches a child span recording the
// split's input volume; when nil the loop takes the span-free path.
func (c *Cluster) runMapPhase(job *Job, splits []split, side map[string][][]byte, partitions int, mapOp *obs.Span) ([]taskResult, time.Duration, error) {
	start := time.Now()
	results := make([]taskResult, len(splits))
	abort := newAbortSignal()
	workers := maxParallel()
	if workers > len(splits) {
		workers = len(splits)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if abort.aborted() {
					results[i].err = errSiblingAborted
					continue
				}
				var tspan *obs.Span
				if mapOp != nil {
					tspan = mapOp.StartChild(obs.KindTask, fmt.Sprintf("task-%d", i))
					tspan.AddRecords(int64(splits[i].n))
					tspan.AddBytes(splits[i].bytes)
				}
				res, err := c.runMapTask(job, i, splits[i], side, partitions, abort, tspan)
				res.err = err
				results[i] = res
				tspan.End()
				if err != nil {
					abort.trip()
				}
			}
		}()
	}
	for i := range splits {
		idx <- i
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)
	for i := range results {
		if err := results[i].err; err != nil && !errors.Is(err, errSiblingAborted) {
			return nil, elapsed, fmt.Errorf("mapred: job %s map task %d: %w", job.Name, i, err)
		}
	}
	return results, elapsed, nil
}

// reducePartition sorts nothing (the groups are prepared by the shuffle
// phase); it runs the reducer over one partition's groups, buffering output
// records and volume counts into st. Streamed jobs buffer sealed columnar
// batches instead of raw record slices; record order is identical.
func (c *Cluster) reducePartition(job *Job, st *partState, abort *abortSignal) error {
	if err := c.err(); err != nil {
		return err
	}
	if abort.aborted() {
		return errSiblingAborted
	}
	var bu *vec.Builder
	if c.streamOutput(job) {
		bu = vec.NewBuilder(c.Config.StreamBatchRows)
	}
	red := job.NewReducer()
	for gi, g := range st.groups {
		if gi%ctxCheckInterval == 0 {
			if err := c.err(); err != nil {
				return err
			}
			if abort.aborted() {
				return errSiblingAborted
			}
		}
		st.reduceGroups++
		err := red.Reduce(g.key, g.values, func(_ string, value []byte) {
			// Reducers may reuse the emitted slice and the write to the DFS
			// happens only after every partition finishes, so the value must
			// be copied here: into the batch builder (which always copies)
			// or into a fresh record slice.
			if bu != nil {
				if b := bu.Append(value); b != nil {
					st.batches = append(st.batches, b)
				}
			} else {
				rec := make([]byte, len(value))
				copy(rec, value)
				st.out = append(st.out, rec)
			}
			st.outputRecords++
			st.outputBytes += int64(len(value))
		})
		if err != nil {
			return fmt.Errorf("reduce key %q: %w", g.key, err)
		}
	}
	if bu != nil {
		if b := bu.Flush(); b != nil {
			st.batches = append(st.batches, b)
		}
	}
	return nil
}

// streamOutput reports whether a job's output takes the streamed path.
func (c *Cluster) streamOutput(job *Job) bool {
	return job.StreamOutput && c.Config.Streaming
}

// createOutput opens the job's output writer on the streamed or
// materialised path.
func (c *Cluster) createOutput(job *Job, ratio float64, streaming bool) (*dfs.Writer, error) {
	if streaming {
		return c.FS.CreateStream(job.Output, ratio, c.Config.StreamBatchRows, c.Config.StreamSpillBytes)
	}
	return c.FS.Create(job.Output, ratio)
}

// writeSpanName labels the output io span by destination.
func writeSpanName(streaming bool) string {
	if streaming {
		return "stream-write"
	}
	return "dfs-write"
}

// noteStreamed records whether the job's output stayed in the stream
// registry (after Close, so overflow demotions are final).
func (m *Metrics) noteStreamed(out *dfs.Writer) {
	m.StreamedBatches = out.StreamedBatches()
	if m.StreamedBatches > 0 {
		m.StreamedRecords = m.OutputRecords
	}
}

// runPartitions applies f to every partition index on a pool of workers.
// With one worker it degenerates to the sequential loop, which parallel
// execution must be byte-for-byte indistinguishable from.
func runPartitions(workers, partitions int, f func(p int)) {
	if workers <= 1 {
		for p := 0; p < partitions; p++ {
			f(p)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range next {
				f(p)
			}
		}()
	}
	for p := 0; p < partitions; p++ {
		next <- p
	}
	close(next)
	wg.Wait()
}

// reduceWorkers sizes the shuffle/reduce worker pool: the configured
// override, else one worker per CPU, never more than there are partitions.
func (c *Cluster) reduceWorkers(partitions int) int {
	n := c.Config.ExecReduceWorkers
	if n <= 0 {
		n = maxParallel()
	}
	if n > partitions {
		n = partitions
	}
	return n
}

// RunWorkflow executes jobs sequentially, stopping at the first error or
// when the cluster's bound context is cancelled between cycles.
func (c *Cluster) RunWorkflow(jobs []*Job) (*WorkflowMetrics, error) {
	wm := &WorkflowMetrics{}
	for _, j := range jobs {
		m, err := c.Run(j)
		if err != nil {
			return wm, err
		}
		wm.Jobs = append(wm.Jobs, m)
	}
	return wm, nil
}

func maxParallel() int {
	n := runtime.NumCPU()
	if n < 2 {
		return 2
	}
	return n
}

// DefaultParallelism returns the worker-pool size used for map tasks and
// (unless ExecReduceWorkers overrides it) the shuffle/reduce phases.
func DefaultParallelism() int { return maxParallel() }

// closeFiles releases the input snapshots a job's splits read from.
func closeFiles(files []*dfs.File) {
	for _, f := range files {
		f.Close()
	}
}

// makeSplits carves each input file into block-sized splits and accounts
// input volumes. Splits reference record ranges of the returned open file
// snapshots (closed by the caller after the map phase); carving walks the
// file's iterator once, so split boundaries are identical on every backend.
func (c *Cluster) makeSplits(job *Job, m *Metrics) ([]split, []*dfs.File, error) {
	blockSize := c.Config.ExecSplitBytes
	if blockSize <= 0 {
		blockSize = 4 << 20
	}
	var splits []split
	var files []*dfs.File
	for _, name := range job.Inputs {
		f, err := c.FS.Open(name)
		if err != nil {
			return nil, files, fmt.Errorf("mapred: job %s: %w", job.Name, err)
		}
		files = append(files, f)
		m.MapInputRecords += int64(f.NumRecords())
		m.MapInputBytes += f.Bytes()
		m.MapStoredBytes += f.StoredBytes()
		it := f.Records(0)
		idx := 0
		cur := split{f: f, file: name}
		for it.Next() {
			cur.n++
			cur.bytes += int64(len(it.Record()))
			idx++
			if cur.bytes >= blockSize {
				splits = append(splits, cur)
				cur = split{f: f, file: name, start: idx}
			}
		}
		if err := it.Err(); err != nil {
			return nil, files, fmt.Errorf("mapred: job %s reading %s: %w", job.Name, name, err)
		}
		if cur.n > 0 || f.NumRecords() == 0 {
			splits = append(splits, cur)
		}
	}
	return splits, files, nil
}

// loadSideInputs materialises broadcast side inputs (map-join hash-table
// sources must be wholly resident in every task, as in Hadoop's
// distributed cache).
func (c *Cluster) loadSideInputs(job *Job, m *Metrics) (map[string][][]byte, error) {
	if len(job.SideInputs) == 0 {
		return nil, nil
	}
	side := make(map[string][][]byte, len(job.SideInputs))
	for _, name := range job.SideInputs {
		f, err := c.FS.Open(name)
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s side input: %w", job.Name, err)
		}
		recs, err := f.AllRecords()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s side input %s: %w", job.Name, name, err)
		}
		side[name] = recs
		m.SideInputBytes += f.StoredBytes()
	}
	return side, nil
}

// runMapTask runs one mapper over a split's record range, partitions its
// output, and applies the combiner locally. When spilling is enabled and
// the buffered output reaches the threshold, each partition's buffer is
// combined, sorted and written out as a spill run. check covers both
// context cancellation and sibling-task failure, and is consulted between
// records and inside the combiner.
func (c *Cluster) runMapTask(job *Job, taskIdx int, sp split, side map[string][][]byte, partitions int, abort *abortSignal, tspan *obs.Span) (taskResult, error) {
	check := func() error {
		if err := c.err(); err != nil {
			return err
		}
		if abort.aborted() {
			return errSiblingAborted
		}
		return nil
	}
	tc := &TaskContext{InputFile: sp.file, sideData: side}
	mapper := job.NewMapper(tc)
	parts := make([][]kv, partitions)
	var res taskResult
	threshold := c.Config.SpillThresholdBytes
	canSpill := threshold > 0 && !job.MapOnly()
	var buffered, maxBuffered int64
	var spillRunIdx int
	if canSpill {
		res.spills = make([][]spillRef, partitions)
	}
	spill := func() error {
		for p := range parts {
			if len(parts[p]) == 0 {
				continue
			}
			run := parts[p]
			parts[p] = nil
			if job.NewCombiner != nil {
				combined, err := combine(job.NewCombiner(), run, partitions, p, check)
				if err != nil {
					return err
				}
				run = combined
			}
			sortStableByKey(run)
			ref, err := c.writeSpillRun(spillRunName(job.Output, taskIdx, spillRunIdx, p), run, tspan, check)
			if err != nil {
				return err
			}
			res.spills[p] = append(res.spills[p], ref)
			res.spillRuns++
			res.spillRecords += ref.records
			res.spillBytes += ref.bytes
		}
		spillRunIdx++
		buffered = 0
		return nil
	}
	emit := func(key string, value []byte) {
		res.emits++
		p := 0
		if partitions > 1 {
			p = partitionOf(key, partitions)
		}
		parts[p] = append(parts[p], kv{key: key, value: value})
		buffered += int64(len(key) + len(value))
	}
	// maybeSpill runs at record boundaries (a single record's emits may
	// overshoot the threshold, bounding the overshoot to one record).
	maybeSpill := func() error {
		if !canSpill {
			return nil
		}
		if buffered > maxBuffered {
			maxBuffered = buffered
		}
		if buffered >= threshold {
			return spill()
		}
		return nil
	}
	var it dfs.RecordIterator
	if c.Scans != nil {
		it = c.Scans.Scan(sp.file, sp.start, sp.n)
	}
	if it == nil {
		it = sp.f.Records(sp.start)
	}
	ri := 0
	for ; ri < sp.n && it.Next(); ri++ {
		if ri%ctxCheckInterval == 0 {
			if err := check(); err != nil {
				return res, err
			}
		}
		if err := mapper.Map(it.Record(), emit); err != nil {
			return res, err
		}
		if err := maybeSpill(); err != nil {
			return res, err
		}
	}
	if err := it.Err(); err != nil {
		return res, fmt.Errorf("reading %s: %w", sp.file, err)
	}
	if ri < sp.n {
		return res, fmt.Errorf("mapred: input %s truncated: split wants %d records from %d, read %d", sp.file, sp.n, sp.start, ri)
	}
	if shared, ok := it.(interface{ Shared() bool }); ok && shared.Shared() {
		// The input pass was shared with concurrent queries; tag the task
		// so traces show where cross-query scan sharing kicked in.
		span := tspan.StartChild(obs.KindIO, "shared-scan")
		span.AddRecords(int64(ri))
		span.End()
	}
	if closer, ok := mapper.(MapCloser); ok {
		if err := closer.Close(emit); err != nil {
			return res, err
		}
		if err := maybeSpill(); err != nil {
			return res, err
		}
	}
	if canSpill {
		noteSpillHighWater(maxBuffered)
	}
	if job.NewCombiner != nil && !job.MapOnly() {
		for p := range parts {
			combined, err := combine(job.NewCombiner(), parts[p], partitions, p, check)
			if err != nil {
				return res, err
			}
			parts[p] = combined
		}
	}
	res.parts = parts
	return res, nil
}

// combine runs the combiner over one partition of a map task's output. The
// check hook runs before the sort and between groups, so cancellation never
// stalls in a combiner over a hot key.
func combine(comb Reducer, in []kv, partitions, p int, check func() error) ([]kv, error) {
	if err := check(); err != nil {
		return nil, err
	}
	groups := sortAndGroup(in)
	var out []kv
	for gi, g := range groups {
		if gi%ctxCheckInterval == 0 {
			if err := check(); err != nil {
				return nil, err
			}
		}
		err := comb.Reduce(g.key, g.values, func(key string, value []byte) {
			out = append(out, kv{key: key, value: value})
		})
		if err != nil {
			return nil, err
		}
	}
	// Combiner output must stay in its partition; re-partitioning is not
	// allowed (keys must be preserved or at least co-partitioned).
	for ei, e := range out {
		if ei%ctxCheckInterval == 0 {
			if err := check(); err != nil {
				return nil, err
			}
		}
		if partitions > 1 && partitionOf(e.key, partitions) != p {
			return nil, fmt.Errorf("mapred: combiner moved key %q across partitions", e.key)
		}
	}
	return out, nil
}

type group struct {
	key    string
	values [][]byte
}

// sortAndGroup sorts key/value pairs by key (stable, preserving map-task
// emission order within a key) and groups equal keys.
func sortAndGroup(in []kv) []group {
	sort.SliceStable(in, func(i, j int) bool { return in[i].key < in[j].key })
	var groups []group
	for i := 0; i < len(in); {
		j := i
		g := group{key: in[i].key}
		for j < len(in) && in[j].key == g.key {
			g.values = append(g.values, in[j].value)
			j++
		}
		groups = append(groups, g)
		i = j
	}
	return groups
}

// FNV-1a constants (hash/fnv), inlined so the per-emit hot path hashes
// without allocating a hash.Hash32.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// partitionOf assigns a key to a reduce partition with an inline FNV-1a
// hash — identical to fnv.New32a over the key bytes, but zero-alloc.
//
//rapid:hot
func partitionOf(key string, partitions int) int {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return int(h % uint32(partitions))
}
