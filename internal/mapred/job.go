// Package mapred is an in-process MapReduce engine modelled on Hadoop: jobs
// read record files from a dfs.FS, run parallel map tasks over block-sized
// input splits, partition and sort map output by key, optionally combine,
// reduce, and materialise output back to the DFS. Every executed job yields
// exact volume metrics (records and bytes read, shuffled and written), and a
// calibrated cost model converts those volumes into simulated cluster
// seconds for a configurable cluster — the substitute for the paper's
// 10–60-node Hadoop deployments.
package mapred

import (
	"context"
	"os"
	"strconv"

	"rapidanalytics/internal/dfs"
)

// Emit is the output callback handed to mappers, combiners and reducers.
type Emit func(key string, value []byte)

// Mapper consumes one input record at a time. A fresh Mapper is built per
// map task, so implementations may carry per-task state (e.g. the paper's
// multiAggMap hash table, Algorithm 3).
type Mapper interface {
	Map(record []byte, emit Emit) error
}

// MapCloser is implemented by mappers that buffer state across Map calls
// and must flush it when the task's input is exhausted — the Map.clean()
// hook of the paper's Algorithm 3.
type MapCloser interface {
	Close(emit Emit) error
}

// Reducer consumes one key group at a time. Also used for combiners.
type Reducer interface {
	Reduce(key string, values [][]byte, emit Emit) error
}

// TaskContext gives a map task access to its environment: which input file
// its split came from, and any broadcast side inputs (the in-memory hash
// tables of Hive map-joins).
type TaskContext struct {
	// InputFile is the DFS file the task's split belongs to.
	InputFile string
	sideData  map[string][][]byte
}

// SideInput returns the records of a broadcast side input file.
func (tc *TaskContext) SideInput(name string) [][]byte { return tc.sideData[name] }

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(record []byte, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(record []byte, emit Emit) error { return f(record, emit) }

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values [][]byte, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values [][]byte, emit Emit) error {
	return f(key, values, emit)
}

// Job describes one MapReduce cycle.
type Job struct {
	// Name identifies the job in metrics and traces.
	Name string
	// Inputs are DFS file names read by the map phase.
	Inputs []string
	// SideInputs are DFS files broadcast whole to every map task (map-join
	// tables). Their size is charged once per simulated map task.
	SideInputs []string
	// Output is the DFS file the job materialises.
	Output string
	// OutputCompression is the output file's compression ratio (1 = none).
	OutputCompression float64
	// NewMapper builds a mapper for one map task.
	NewMapper func(tc *TaskContext) Mapper
	// NewCombiner optionally builds a combiner run over each map task's
	// local output.
	NewCombiner func() Reducer
	// NewReducer builds a reducer; nil makes the job map-only.
	NewReducer func() Reducer
	// Partitions is the number of reduce partitions used for execution
	// (simulated reduce-task counts come from the cost model instead).
	// Defaults to 4 when zero.
	Partitions int
	// MapOperator labels the logical operator the map phase executes (e.g.
	// TG_OptGrpFilter, vp-scan) in span traces and server metrics. Empty
	// defaults to "map".
	MapOperator string
	// ReduceOperator labels the reduce phase's logical operator (e.g.
	// TG_AlphaJoin, group-agg). Empty defaults to "reduce".
	ReduceOperator string
	// StreamOutput marks the job's output as safe to stream: when the
	// cluster's ClusterConfig.Streaming is also on, the output stays in
	// the DFS stream registry as columnar batches instead of
	// materialising, because every consumer runs in the same job chain.
	// Leave false for checkpointed or multi-consumer outputs and for
	// files later rewritten in place — those need the real DFS boundary.
	StreamOutput bool
}

// MapOnly reports whether the job has no reduce phase.
func (j *Job) MapOnly() bool { return j.NewReducer == nil }

// mapOperatorName returns the map phase's operator label for spans.
func (j *Job) mapOperatorName() string {
	if j.MapOperator != "" {
		return j.MapOperator
	}
	return "map"
}

// reduceOperatorName returns the reduce phase's operator label for spans.
func (j *Job) reduceOperatorName() string {
	if j.ReduceOperator != "" {
		return j.ReduceOperator
	}
	return "reduce"
}

// Metrics records the measured volumes of one executed job, before cost
// modelling.
type Metrics struct {
	// Job is the executed job's name.
	Job string
	// MapOnly reports whether the job ran without a reduce phase.
	MapOnly bool

	MapInputRecords  int64 // records read by mappers
	MapInputBytes    int64 // uncompressed logical bytes read
	MapStoredBytes   int64 // stored (compressed) bytes read
	SideInputBytes   int64 // stored bytes of broadcast side inputs
	MapEmitRecords   int64 // emitted by mappers, before combining
	MapOutputRecords int64 // after combining; what is shuffled
	MapOutputBytes   int64 // after combining; what is shuffled

	// SpillRuns counts the sorted spill runs map tasks wrote when buffered
	// output crossed ClusterConfig.SpillThresholdBytes (0 when spilling is
	// disabled or never triggered).
	SpillRuns int64
	// SpillRecords counts the key/value pairs written to spill runs.
	SpillRecords int64
	// SpillBytes counts the logical key+value bytes written to spill runs.
	SpillBytes int64

	ReduceGroups      int64 // distinct reduce keys
	OutputRecords     int64 // records written to the DFS
	OutputBytes       int64 // uncompressed logical bytes written
	OutputStoredBytes int64 // stored bytes written (notional for streamed output)

	// StreamedRecords counts output records that stayed in the stream
	// registry rather than materialising: equal to OutputRecords when the
	// job streamed, 0 when it wrote a backend file (streaming off, job not
	// marked StreamOutput, or the stream overflowed to the backend). Like
	// every volume field it is deterministic for a given configuration.
	StreamedRecords int64
	// StreamedBatches counts the columnar batches committed to the live
	// stream (0 after an overflow).
	StreamedBatches   int64
	SimulatedMapTasks int     // from the cost model's block math
	SimulatedRedTasks int     // reduce tasks the cost model schedules
	SimSeconds        float64 // the cost model's cluster-time estimate

	// Measured wall-clock time per execution phase, in nanoseconds. These
	// describe the in-process run on this machine (not the simulated
	// cluster) and vary run to run; every other field is deterministic.
	MapWallNs         int64 // map tasks, incl. combiners (and output write for map-only jobs)
	ShuffleSortWallNs int64 // per-partition concatenation + sort-group
	ReduceWallNs      int64 // reducers + output materialisation
}

// Volumes returns a copy of m with the wall-clock phase timings zeroed:
// the deterministic volume fields that must be identical between
// sequential and parallel execution of the same job.
func (m *Metrics) Volumes() Metrics {
	v := *m
	v.MapWallNs = 0
	v.ShuffleSortWallNs = 0
	v.ReduceWallNs = 0
	return v
}

// WorkflowMetrics aggregates a multi-job workflow.
type WorkflowMetrics struct {
	// Jobs holds one Metrics per executed job, in execution order.
	Jobs []*Metrics
}

// Cycles returns the number of MR cycles (jobs).
func (w *WorkflowMetrics) Cycles() int { return len(w.Jobs) }

// MapOnlyCycles returns how many cycles were map-only.
func (w *WorkflowMetrics) MapOnlyCycles() int {
	n := 0
	for _, m := range w.Jobs {
		if m.MapOnly {
			n++
		}
	}
	return n
}

// SimSeconds returns the total simulated time of the workflow (jobs run
// sequentially, as Hadoop chains them).
func (w *WorkflowMetrics) SimSeconds() float64 {
	var t float64
	for _, m := range w.Jobs {
		t += m.SimSeconds
	}
	return t
}

// ShuffleBytes returns the total bytes shuffled across all cycles.
func (w *WorkflowMetrics) ShuffleBytes() int64 {
	var b int64
	for _, m := range w.Jobs {
		if !m.MapOnly {
			b += m.MapOutputBytes
		}
	}
	return b
}

// PhaseWalls returns the workflow's total measured wall-clock time spent in
// the map, shuffle-sort and reduce phases, in nanoseconds.
func (w *WorkflowMetrics) PhaseWalls() (mapNs, shuffleSortNs, reduceNs int64) {
	for _, m := range w.Jobs {
		mapNs += m.MapWallNs
		shuffleSortNs += m.ShuffleSortWallNs
		reduceNs += m.ReduceWallNs
	}
	return mapNs, shuffleSortNs, reduceNs
}

// MaterializedBytes returns the total uncompressed bytes written to the DFS
// across all cycles — the paper's intermediate-result materialisation cost
// (the quantity that blew past HDFS capacity for naive Hive on MG13).
func (w *WorkflowMetrics) MaterializedBytes() int64 {
	var b int64
	for _, m := range w.Jobs {
		b += m.OutputBytes
	}
	return b
}

// StreamedRecords returns the total output records that stayed in the DFS
// stream registry across all cycles (0 when streaming was off everywhere).
func (w *WorkflowMetrics) StreamedRecords() int64 {
	var n int64
	for _, m := range w.Jobs {
		n += m.StreamedRecords
	}
	return n
}

// StreamedBatches returns the total columnar batches committed to live
// streams across all cycles.
func (w *WorkflowMetrics) StreamedBatches() int64 {
	var n int64
	for _, m := range w.Jobs {
		n += m.StreamedBatches
	}
	return n
}

// MaterializedStoredBytes returns the stored bytes of outputs that really
// reached the storage backend — the quantity streaming reduces. Streamed
// cycles (StreamedRecords > 0) contribute nothing; their OutputStoredBytes
// is notional.
func (w *WorkflowMetrics) MaterializedStoredBytes() int64 {
	var b int64
	for _, m := range w.Jobs {
		if m.StreamedRecords == 0 {
			b += m.OutputStoredBytes
		}
	}
	return b
}

// ScanProvider intercepts map-task input scans, letting a serving layer
// batch concurrent scans of identical file ranges into shared passes
// (internal/share). Implementations must be safe for concurrent use.
type ScanProvider interface {
	// Scan returns an iterator over records [start, start+n) of the named
	// file, or nil to decline — the task then scans its own file snapshot.
	// A returned iterator may additionally implement `Shared() bool` to
	// report (after iteration) that the pass served multiple consumers;
	// the engine tags such tasks with a shared-scan span.
	Scan(name string, start, n int) dfs.RecordIterator
}

// Cluster executes jobs against a DFS under a cost-model configuration.
// A cluster may be bound to a context with WithContext; the zero binding
// never cancels.
type Cluster struct {
	// FS is the simulated distributed file system jobs read and write.
	FS *dfs.FS
	// Config is the cost model's deployment configuration.
	Config ClusterConfig
	// Scans, when non-nil, is consulted for every map-task input scan;
	// see ScanProvider. Nil preserves the default per-task file iteration.
	Scans ScanProvider

	ctx context.Context
}

// NewCluster returns a cluster over a fresh file system. The backend is
// in-memory unless the RAPID_STORAGE environment variable selects "disk",
// in which case the DFS lives in a fresh directory under RAPID_DATA_DIR
// (or the OS temp dir) sharded RAPID_SHARDS ways; a disk backend that
// cannot be set up panics rather than silently falling back, so CI legs
// running the suite against disk cannot pass vacuously.
func NewCluster(cfg ClusterConfig) *Cluster {
	return &Cluster{FS: defaultFS(), Config: cfg}
}

// NewClusterFS returns a cluster over the given file system, bypassing the
// RAPID_STORAGE environment default.
func NewClusterFS(cfg ClusterConfig, fs *dfs.FS) *Cluster {
	return &Cluster{FS: fs, Config: cfg}
}

// defaultFS builds the file system NewCluster uses, honoring RAPID_STORAGE.
func defaultFS() *dfs.FS {
	if os.Getenv("RAPID_STORAGE") != "disk" {
		return dfs.New()
	}
	dir, err := os.MkdirTemp(os.Getenv("RAPID_DATA_DIR"), "rapidfs-")
	if err != nil {
		panic("mapred: RAPID_STORAGE=disk: " + err.Error())
	}
	shards := 0
	if s := os.Getenv("RAPID_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			shards = n
		}
	}
	fs, err := dfs.NewDisk(dir, shards)
	if err != nil {
		panic("mapred: RAPID_STORAGE=disk: " + err.Error())
	}
	return fs
}
