package mapred

import (
	"fmt"
	"strings"
	"testing"

	"rapidanalytics/internal/dfs"
)

// spillFixture writes enough input lines that a small threshold forces
// several spill runs per map task.
func spillFixture(c *Cluster) {
	lines := make([]string, 400)
	for i := range lines {
		lines[i] = fmt.Sprintf("w%d w%d w%d w%d", i%7, i%3, i%11, i%29)
	}
	writeLines(c, "in", 1, lines...)
}

func spillCluster(threshold int64) *Cluster {
	cfg := DefaultConfig()
	cfg.ExecSplitBytes = 256 // several map tasks
	cfg.SpillThresholdBytes = threshold
	return NewCluster(cfg)
}

// Output must be byte-identical with spilling on and off; with no
// combiner every deterministic volume metric except the Spill* counters
// must match too.
func TestSpillOutputIdentical(t *testing.T) {
	run := func(threshold int64) (Metrics, []string) {
		c := spillCluster(threshold)
		spillFixture(c)
		m, err := c.Run(wordCountJob("in", "out", false))
		if err != nil {
			t.Fatalf("threshold=%d: %v", threshold, err)
		}
		return m.Volumes(), readLines(t, c, "out")
	}
	base, baseOut := run(0)
	spilled, spilledOut := run(64)
	if spilled.SpillRuns == 0 || spilled.SpillRecords == 0 || spilled.SpillBytes == 0 {
		t.Fatalf("spill path not exercised: %+v", spilled)
	}
	if base.SpillRuns != 0 {
		t.Fatalf("threshold 0 spilled: %+v", base)
	}
	if strings.Join(baseOut, "\n") != strings.Join(spilledOut, "\n") {
		t.Errorf("output diverged:\n%v\nvs\n%v", baseOut, spilledOut)
	}
	// Spill counters are the only volumes allowed to differ.
	spilled.SpillRuns, spilled.SpillRecords, spilled.SpillBytes = 0, 0, 0
	if base != spilled {
		t.Errorf("volumes diverged:\n%+v\nvs\n%+v", base, spilled)
	}
}

// With a combiner, combining happens per spill run, so shuffle volumes
// may legitimately differ — but the reduced output must not.
func TestSpillWithCombinerOutputIdentical(t *testing.T) {
	run := func(threshold int64) []string {
		c := spillCluster(threshold)
		spillFixture(c)
		m, err := c.Run(wordCountJob("in", "out", true))
		if err != nil {
			t.Fatalf("threshold=%d: %v", threshold, err)
		}
		if threshold > 0 && m.SpillRuns == 0 {
			t.Fatalf("spill path not exercised with combiner")
		}
		return readLines(t, c, "out")
	}
	if a, b := run(0), run(64); strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("combiner output diverged:\n%v\nvs\n%v", a, b)
	}
}

// Spilling must bound resident shuffle memory: the per-task buffered
// high-water mark stays within one record's emits of the threshold.
func TestSpillBoundsBufferedBytes(t *testing.T) {
	const threshold = 256
	spillMaxBuffered.Store(0)
	c := spillCluster(threshold)
	spillFixture(c)
	if _, err := c.Run(wordCountJob("in", "out", false)); err != nil {
		t.Fatal(err)
	}
	hw := spillMaxBuffered.Load()
	if hw == 0 {
		t.Fatal("high-water mark not recorded")
	}
	// One input line emits four single-byte-value pairs (~30 logical kv
	// bytes); allow that overshoot on top of the threshold.
	if slack := int64(64); hw > threshold+slack {
		t.Errorf("buffered high-water = %d, want <= %d", hw, threshold+slack)
	}
}

// Spill runs are temporary: the FS must hold none after the job, on the
// mem and disk backends alike.
func TestSpillRunsCleanedUp(t *testing.T) {
	backends := map[string]*dfs.FS{"mem": dfs.New()}
	disk, err := dfs.NewDisk(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	backends["disk"] = disk
	for name, fs := range backends {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.ExecSplitBytes = 256
			cfg.SpillThresholdBytes = 64
			c := NewClusterFS(cfg, fs)
			spillFixture(c)
			m, err := c.Run(wordCountJob("in", "out", false))
			if err != nil {
				t.Fatal(err)
			}
			if m.SpillRuns == 0 {
				t.Fatal("spill path not exercised")
			}
			if left := fs.List("_spill/"); len(left) != 0 {
				t.Errorf("spill runs left behind: %v", left)
			}
		})
	}
}

// The full matrix: worker counts x spill thresholds x backends must all
// produce the same output bytes (the determinism contract extended to
// storage and spilling).
func TestSpillDeterminismMatrix(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4} {
		for _, threshold := range []int64{0, 64, 1 << 20} {
			for _, backend := range []string{"mem", "disk"} {
				cfg := DefaultConfig()
				cfg.ExecSplitBytes = 256
				cfg.ExecReduceWorkers = workers
				cfg.SpillThresholdBytes = threshold
				fs := dfs.New()
				if backend == "disk" {
					var err error
					if fs, err = dfs.NewDisk(t.TempDir(), 3); err != nil {
						t.Fatal(err)
					}
				}
				c := NewClusterFS(cfg, fs)
				spillFixture(c)
				if _, err := c.Run(wordCountJob("in", "out", true)); err != nil {
					t.Fatalf("w=%d t=%d %s: %v", workers, threshold, backend, err)
				}
				got := strings.Join(readLines(t, c, "out"), "\n")
				if want == "" {
					want = got
				} else if got != want {
					t.Errorf("w=%d t=%d %s: output diverged", workers, threshold, backend)
				}
			}
		}
	}
}
