package mapred

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunAbortsOnPreCancelledContext(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "in", 1, "a b", "b c")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.WithContext(ctx).Run(wordCountJob("in", "out", false))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled context: err = %v; want context.Canceled", err)
	}
	if c.FS.Exists("out") {
		t.Fatal("aborted job materialised its output")
	}
}

func TestRunWithoutContextIsUnbound(t *testing.T) {
	c := newTestCluster()
	if got := c.Context(); got != context.Background() {
		t.Fatalf("unbound Context() = %v; want Background", got)
	}
	writeLines(c, "in", 1, "a b", "b c")
	if _, err := c.Run(wordCountJob("in", "out", false)); err != nil {
		t.Fatalf("unbound Run: %v", err)
	}
}

func TestWorkflowStopsAfterMidRunCancellation(t *testing.T) {
	c := newTestCluster()
	// Enough tiny splits that most map tasks are still queued when the
	// first record triggers cancellation; queued tasks must abort at their
	// first context check instead of draining their splits.
	var lines []string
	for i := 0; i < 16*ctxCheckInterval; i++ {
		lines = append(lines, "w")
	}
	writeLines(c, "in", 1, lines...)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bound := c.WithContext(ctx)

	var mapped atomic.Int64
	cancellingJob := func(name, in, out string) *Job {
		return &Job{
			Name:   name,
			Inputs: []string{in},
			Output: out,
			NewMapper: func(tc *TaskContext) Mapper {
				return MapperFunc(func(rec []byte, emit Emit) error {
					if mapped.Add(1) == 1 {
						cancel() // simulate the client disconnecting mid-cycle
					}
					emit("k", rec)
					return nil
				})
			},
			NewReducer: func() Reducer {
				return ReducerFunc(func(key string, values [][]byte, emit Emit) error {
					emit(key, []byte("v"))
					return nil
				})
			},
		}
	}
	wm, err := bound.RunWorkflow([]*Job{
		cancellingJob("cycle1", "in", "mid"),
		cancellingJob("cycle2", "mid", "out"),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("workflow err = %v; want context.Canceled", err)
	}
	if len(wm.Jobs) != 0 {
		t.Fatalf("cancelled workflow completed %d cycles; want 0", len(wm.Jobs))
	}
	if got := mapped.Load(); got >= 16*int64(ctxCheckInterval) {
		t.Fatalf("mapper consumed all %d records despite cancellation", got)
	}
	if c.FS.Exists("out") {
		t.Fatal("second cycle ran after cancellation")
	}
}

func TestWithContextCopyLeavesOriginalUnbound(t *testing.T) {
	c := newTestCluster()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bound := c.WithContext(ctx)
	if bound == c {
		t.Fatal("WithContext must return a copy")
	}
	if c.err() != nil {
		t.Fatal("binding a copy must not bind the original cluster")
	}
	if bound.FS != c.FS {
		t.Fatal("bound copy must share the file system")
	}
}
