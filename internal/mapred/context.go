package mapred

import "context"

// WithContext returns a shallow copy of the cluster whose job execution is
// bound to ctx: Run aborts between map-task records, before the reduce
// phase, and between reduce groups once ctx is done, and RunWorkflow stops
// scheduling further cycles. The copy shares the file system and cost-model
// configuration with the original, so the serving layer can bind one
// long-lived cluster to many per-request contexts concurrently.
func (c *Cluster) WithContext(ctx context.Context) *Cluster {
	cp := *c
	cp.ctx = ctx
	return &cp
}

// Context returns the context job execution is bound to (Background when
// unbound).
func (c *Cluster) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// ctxCheckInterval is how many map input records are processed between
// context checks. ctx.Err is an atomic load, but skipping it on the hottest
// loop keeps the overhead unmeasurable while still bounding cancellation
// latency to a few thousand records.
const ctxCheckInterval = 1024

// err returns the binding context's error, or nil when unbound/live.
func (c *Cluster) err() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}
