package mapred

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"rapidanalytics/internal/obs"
)

// tracedCluster binds a root span to a test cluster and returns both.
func tracedCluster(t *testing.T) (*Cluster, *obs.Span) {
	t.Helper()
	c := newTestCluster()
	root := obs.New(obs.KindQuery, "test")
	return c.WithContext(obs.NewContext(context.Background(), root)), root
}

// TestRunEmitsSpanTree checks the cycle → phase → operator → task hierarchy
// a traced reduce job produces, and that the phase span walls equal the
// job's Metrics phase walls exactly.
func TestRunEmitsSpanTree(t *testing.T) {
	c, root := tracedCluster(t)
	writeLines(c, "in", 1, "a b c a", "b a", "c c c")
	job := wordCountJob("in", "out", false)
	job.MapOperator = "wc-map"
	job.ReduceOperator = "wc-reduce"
	m, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	sn := root.Snapshot()

	cyc := sn.Find(obs.KindCycle, "wordcount")
	if cyc == nil {
		t.Fatalf("no cycle span in:\n%s", sn.Tree())
	}
	if cyc.Records != m.OutputRecords || cyc.Bytes != m.OutputBytes {
		t.Errorf("cycle records/bytes = %d/%d, want %d/%d",
			cyc.Records, cyc.Bytes, m.OutputRecords, m.OutputBytes)
	}

	wantPhaseWalls := map[string]int64{
		"map":          m.MapWallNs,
		"shuffle-sort": m.ShuffleSortWallNs,
		"reduce":       m.ReduceWallNs,
	}
	for name, wall := range wantPhaseWalls {
		ph := cyc.Find(obs.KindPhase, name)
		if ph == nil {
			t.Fatalf("no %s phase span in:\n%s", name, sn.Tree())
		}
		if ph.WallNs != wall {
			t.Errorf("%s phase span wall = %d ns, Metrics wall = %d ns", name, ph.WallNs, wall)
		}
	}

	mp := cyc.Find(obs.KindPhase, "map")
	if mp.Records != m.MapInputRecords || mp.Bytes != m.MapInputBytes {
		t.Errorf("map phase records/bytes = %d/%d, want %d/%d",
			mp.Records, mp.Bytes, m.MapInputRecords, m.MapInputBytes)
	}
	op := mp.Find(obs.KindOperator, "wc-map")
	if op == nil {
		t.Fatalf("no wc-map operator span in:\n%s", sn.Tree())
	}
	if op.Records != m.MapEmitRecords {
		t.Errorf("map operator records = %d, want %d", op.Records, m.MapEmitRecords)
	}
	var taskRecs, taskBytes int64
	for _, ch := range op.Children {
		if ch.Kind != obs.KindTask || !strings.HasPrefix(ch.Name, "task-") {
			t.Errorf("unexpected map operator child %s %s", ch.Kind, ch.Name)
		}
		taskRecs += ch.Records
		taskBytes += ch.Bytes
	}
	if taskRecs != m.MapInputRecords || taskBytes != m.MapInputBytes {
		t.Errorf("map task span sums = %d/%d, want %d/%d",
			taskRecs, taskBytes, m.MapInputRecords, m.MapInputBytes)
	}

	sh := cyc.Find(obs.KindPhase, "shuffle-sort")
	var shuffleRecs int64
	for _, ch := range sh.Children {
		shuffleRecs += ch.Records
	}
	if shuffleRecs != m.MapOutputRecords {
		t.Errorf("shuffle partition span sums = %d, want %d", shuffleRecs, m.MapOutputRecords)
	}

	rop := cyc.Find(obs.KindOperator, "wc-reduce")
	if rop == nil {
		t.Fatalf("no wc-reduce operator span in:\n%s", sn.Tree())
	}
	if rop.Records != m.ReduceGroups {
		t.Errorf("reduce operator records = %d, want %d", rop.Records, m.ReduceGroups)
	}
	var partOut int64
	for _, ch := range rop.Children {
		partOut += ch.Records
	}
	if partOut != m.OutputRecords {
		t.Errorf("reduce partition span sums = %d, want %d", partOut, m.OutputRecords)
	}

	io := cyc.Find(obs.KindIO, "dfs-write")
	if io == nil {
		t.Fatalf("no dfs-write span in:\n%s", sn.Tree())
	}
	if io.Records != m.OutputRecords || io.Bytes != m.OutputBytes {
		t.Errorf("io span = %d/%d, want %d/%d", io.Records, io.Bytes, m.OutputRecords, m.OutputBytes)
	}
}

// TestRunEmitsSpanTreeMapOnly checks the reduced hierarchy of a map-only
// job: map phase (incl. write wall), operator, io — no shuffle or reduce.
func TestRunEmitsSpanTreeMapOnly(t *testing.T) {
	c, root := tracedCluster(t)
	writeLines(c, "in", 1, "keep 1", "drop 2", "keep 3")
	job := &Job{
		Name:   "filter",
		Inputs: []string{"in"},
		Output: "out",
		NewMapper: func(tc *TaskContext) Mapper {
			return MapperFunc(func(rec []byte, emit Emit) error {
				if strings.HasPrefix(string(rec), "keep") {
					emit("k", rec)
				}
				return nil
			})
		},
	}
	m, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	sn := root.Snapshot()
	cyc := sn.Find(obs.KindCycle, "filter")
	if cyc == nil {
		t.Fatalf("no cycle span in:\n%s", sn.Tree())
	}
	mp := cyc.Find(obs.KindPhase, "map")
	if mp == nil || mp.WallNs != m.MapWallNs {
		t.Fatalf("map phase span = %+v, want wall %d", mp, m.MapWallNs)
	}
	if cyc.Find(obs.KindPhase, "shuffle-sort") != nil || cyc.Find(obs.KindPhase, "reduce") != nil {
		t.Fatalf("map-only job has shuffle/reduce spans:\n%s", sn.Tree())
	}
	if op := mp.Find(obs.KindOperator, "map"); op == nil {
		t.Fatalf("default operator label missing:\n%s", sn.Tree())
	}
	if io := cyc.Find(obs.KindIO, "dfs-write"); io == nil || io.Records != m.OutputRecords {
		t.Fatalf("io span = %+v, want records %d", io, m.OutputRecords)
	}
}

// TestParallelReduceSiblingSpans runs a many-partition job with the full
// worker pool so parallel reduce workers attach sibling spans concurrently —
// the -race coverage the observability layer needs.
func TestParallelReduceSiblingSpans(t *testing.T) {
	c, root := tracedCluster(t)
	var lines []string
	for i := 0; i < 64; i++ {
		lines = append(lines, fmt.Sprintf("k%d v%d", i%16, i))
	}
	writeLines(c, "in", 1, lines...)
	job := wordCountJob("in", "out", false)
	job.Partitions = 16
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	root.End()
	sn := root.Snapshot()
	rop := sn.Find(obs.KindOperator, "reduce")
	if rop == nil {
		t.Fatalf("no reduce operator span:\n%s", sn.Tree())
	}
	if len(rop.Children) != 16 {
		t.Fatalf("got %d reduce partition spans, want 16", len(rop.Children))
	}
	seen := map[string]bool{}
	for _, ch := range rop.Children {
		seen[ch.Name] = true
	}
	for p := 0; p < 16; p++ {
		if !seen[fmt.Sprintf("part-%d", p)] {
			t.Fatalf("missing span part-%d; have %v", p, seen)
		}
	}
}

// TestUntracedRunEmitsNoSpans pins the disabled path: no context span means
// no cycle spans anywhere.
func TestUntracedRunEmitsNoSpans(t *testing.T) {
	c := newTestCluster()
	writeLines(c, "in", 1, "a b", "c d")
	if _, err := c.Run(wordCountJob("in", "out", false)); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert on spans (there is no root); the run must simply
	// succeed with tracing off, and the phase walls must still be measured.
	m, err := c.Run(wordCountJob("in", "out2", false))
	if err != nil {
		t.Fatal(err)
	}
	if m.MapWallNs <= 0 {
		t.Errorf("MapWallNs = %d, want > 0", m.MapWallNs)
	}
	_ = time.Duration(m.MapWallNs)
}
