package ntga

import (
	"sort"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/sparql"
)

// Ref is a property reference resolved into a data plane. In the lexical
// plane Prop is the bare property IRI and Obj the constant object's
// Term.Key ("" when the object is unconstrained); in the dictionary plane
// both are uvarint ID-strings (rdf.Dict), so triplegroup matching compares
// short interned IDs instead of full IRIs.
type Ref struct {
	// Prop is the plane-space property.
	Prop string
	// Obj is the plane-space constant object, "" when unconstrained.
	Obj string
}

// ResolveRef resolves one query-space property reference into the plane of
// dictionary d (nil = lexical plane).
func ResolveRef(ref algebra.PropRef, d *rdf.Dict) Ref {
	r := Ref{Prop: ref.Prop}
	if ref.HasConstObj() {
		r.Obj = ref.Obj.Key()
	}
	if d != nil {
		r.Prop = d.KeyString("I" + ref.Prop)
		if r.Obj != "" {
			r.Obj = d.KeyString(r.Obj)
		}
	}
	return r
}

// ResolveRefs resolves a query-space reference list into the plane of
// dictionary d (nil = lexical plane).
func ResolveRefs(refs []algebra.PropRef, d *rdf.Dict) []Ref {
	if len(refs) == 0 {
		return nil
	}
	out := make([]Ref, len(refs))
	for i, ref := range refs {
		out[i] = ResolveRef(ref, d)
	}
	return out
}

// HasPO reports whether the triplegroup contains a triple with the given
// plane-space property and, when obj is non-empty, object.
func (tg *TripleGroup) HasPO(prop, obj string) bool {
	for _, t := range tg.Triples {
		if t.Prop != prop {
			continue
		}
		if obj == "" || t.Obj == obj {
			return true
		}
	}
	return false
}

// HasResolvedRef reports whether the triplegroup matches the resolved
// reference.
func (tg *TripleGroup) HasResolvedRef(ref Ref) bool { return tg.HasPO(ref.Prop, ref.Obj) }

// ProjectRefs returns a copy of the triplegroup restricted to triples
// matching any of the resolved references.
func (tg *TripleGroup) ProjectRefs(refs []Ref) TripleGroup {
	out := TripleGroup{Subject: tg.Subject}
	for _, t := range tg.Triples {
		for _, ref := range refs {
			if t.Prop != ref.Prop {
				continue
			}
			if ref.Obj != "" && t.Obj != ref.Obj {
				continue
			}
			out.Triples = append(out.Triples, t)
			break
		}
	}
	return out
}

// OptGroupFilterRefs is OptGroupFilter over plane-space references.
func OptGroupFilterRefs(tg TripleGroup, prim, opt []Ref) (TripleGroup, bool) {
	for _, ref := range prim {
		if !tg.HasPO(ref.Prop, ref.Obj) {
			return TripleGroup{}, false
		}
	}
	refs := make([]Ref, 0, len(prim)+len(opt))
	refs = append(refs, prim...)
	refs = append(refs, opt...)
	return tg.ProjectRefs(refs), true
}

// NSplitRefs is NSplit over plane-space references.
func NSplitRefs(tg TripleGroup, prim []Ref, secs [][]Ref) []SplitTG {
	var out []SplitTG
	for k, sec := range secs {
		ok := true
		for _, ref := range sec {
			if !tg.HasPO(ref.Prop, ref.Obj) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		refs := make([]Ref, 0, len(prim)+len(sec))
		refs = append(refs, prim...)
		refs = append(refs, sec...)
		out = append(out, SplitTG{Pattern: k, TG: tg.ProjectRefs(refs)})
	}
	return out
}

// AlphaTable is a composite pattern's α condition (Definitions 3.5/3.6)
// resolved into one data plane: per (star, original pattern) the required
// secondary references. Resolving once at job-build time keeps the per-
// record admission test free of dictionary lookups.
type AlphaTable struct {
	numPatterns int
	req         [][][]Ref // req[star][pattern]
}

// ResolveAlpha builds the α table for cp in the plane of dictionary d (nil
// = lexical). A nil cp yields a nil table, which admits everything.
func ResolveAlpha(cp *algebra.CompositePattern, d *rdf.Dict) *AlphaTable {
	if cp == nil {
		return nil
	}
	t := &AlphaTable{numPatterns: cp.NumPatterns, req: make([][][]Ref, len(cp.Stars))}
	for i, cs := range cp.Stars {
		t.req[i] = make([][]Ref, cp.NumPatterns)
		for k := 0; k < cp.NumPatterns; k++ {
			t.req[i][k] = ResolveRefs(cs.RequiredSecondaryFor(k), d)
		}
	}
	return t
}

// Satisfies reports whether the annotated triplegroup can contribute to
// original pattern k: every component star must contain pattern k's
// required secondary properties.
func (t *AlphaTable) Satisfies(a *AnnTG, k int) bool {
	for i, star := range a.Stars {
		for _, ref := range t.req[star][k] {
			if !a.TGs[i].HasPO(ref.Prop, ref.Obj) {
				return false
			}
		}
	}
	return true
}

// SatisfiesAny implements the α-Join admission test: the joined triplegroup
// must satisfy at least one original pattern. A nil table admits
// everything.
func (t *AlphaTable) SatisfiesAny(a *AnnTG) bool {
	if t == nil {
		return true
	}
	for k := 0; k < t.numPatterns; k++ {
		if t.Satisfies(a, k) {
			return true
		}
	}
	return false
}

// TP is a canonical triple pattern resolved into a data plane: variables
// keep their names, constants are translated to plane-space values at
// job-build time so per-record matching is pure string comparison.
type TP struct {
	// SVar is the subject variable name.
	SVar string
	// PVar is the property variable name, "" when the property is constant.
	PVar string
	// Prop is the plane-space property, valid when PVar is "".
	Prop string
	// OVar is the object variable name, "" when the object is constant.
	OVar string
	// Obj is the plane-space constant object, valid when OVar is "".
	Obj string
}

// ResolveTP resolves one canonical triple pattern into the plane of
// dictionary d (nil = lexical).
func ResolveTP(tp sparql.TriplePattern, d *rdf.Dict) TP {
	out := TP{SVar: tp.S.Var}
	if tp.P.IsVar {
		out.PVar = tp.P.Var
	} else if d != nil {
		out.Prop = d.KeyString("I" + tp.P.Term.Value)
	} else {
		out.Prop = tp.P.Term.Value
	}
	if tp.O.IsVar {
		out.OVar = tp.O.Var
	} else if d != nil {
		out.Obj = d.KeyString(tp.O.Term.Key())
	} else {
		out.Obj = tp.O.Term.Key()
	}
	return out
}

// ResolveTPMap resolves a star-grouped triple-pattern map into the plane of
// dictionary d (nil = lexical).
func ResolveTPMap(m map[int][]sparql.TriplePattern, d *rdf.Dict) map[int][]TP {
	out := make(map[int][]TP, len(m))
	for star, tps := range m {
		rs := make([]TP, len(tps))
		for i, tp := range tps {
			rs[i] = ResolveTP(tp, d)
		}
		out[star] = rs
	}
	return out
}

// MatchResolved enumerates the solutions of resolved triple patterns
// against an annotated triplegroup, invoking fn for each solution — the
// plane-space core of MatchPattern. Binding values are plane-space: in the
// dictionary plane a variable property binds the property's ID-string
// (idPlane true); in the lexical plane it binds "I"+IRI. fn must not retain
// the binding.
func MatchResolved(a *AnnTG, starTPs, optTPs map[int][]TP, idPlane bool, fn func(Binding)) {
	// Flatten to a work list of (star, tp) with the component resolved.
	type work struct {
		tg       *TripleGroup
		tp       TP
		optional bool
	}
	var items []work
	stars := make([]int, 0, len(starTPs))
	for star := range starTPs {
		stars = append(stars, star)
	}
	sort.Ints(stars)
	for _, star := range stars {
		tg, ok := a.Component(star)
		if !ok {
			return
		}
		comp := tg
		for _, tp := range starTPs[star] {
			items = append(items, work{tg: &comp, tp: tp})
		}
		for _, tp := range optTPs[star] {
			items = append(items, work{tg: &comp, tp: tp, optional: true})
		}
	}
	// Required patterns first, so optional non-matches cannot mask required
	// bindings.
	sort.SliceStable(items, func(i, j int) bool { return !items[i].optional && items[j].optional })
	binding := Binding{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(items) {
			fn(binding)
			return
		}
		it := items[i]
		// Bind the subject variable to the component's subject.
		sv := it.tp.SVar
		prevS, hadS := binding[sv]
		if hadS && prevS != it.tg.Subject {
			return
		}
		if !hadS {
			binding[sv] = it.tg.Subject
		}
		restoreS := func() {
			if !hadS {
				delete(binding, sv)
			}
		}
		// Match the object against the component's triples. An unbound
		// property (?p) matches any triple and binds the property variable.
		matchedAny := false
		for _, po := range it.tg.Triples {
			var restoreP func()
			if it.tp.PVar != "" {
				pv := it.tp.PVar
				bound := po.Prop
				if !idPlane {
					bound = "I" + po.Prop
				}
				if prev, had := binding[pv]; had {
					if prev != bound {
						continue
					}
					restoreP = func() {}
				} else {
					binding[pv] = bound
					restoreP = func() { delete(binding, pv) }
				}
			} else if po.Prop != it.tp.Prop {
				continue
			}
			if it.optional {
				if it.tp.OVar == "" && po.Obj != it.tp.Obj {
					continue
				}
				matchedAny = true
			}
			matchResolvedObject(it.tp, po, binding, rec, i)
			if restoreP != nil {
				restoreP()
			}
		}
		if it.optional && !matchedAny {
			// Left-outer: proceed with the optional variables unbound.
			rec(i + 1)
		}
		restoreS()
	}
	rec(0)
}

// matchResolvedObject matches one triple's object against the resolved
// pattern's object position and recurses.
func matchResolvedObject(tp TP, po PO, binding Binding, rec func(int), i int) {
	if tp.OVar == "" {
		if po.Obj != tp.Obj {
			return
		}
		rec(i + 1)
		return
	}
	ov := tp.OVar
	prevO, hadO := binding[ov]
	if hadO {
		if prevO != po.Obj {
			return
		}
		rec(i + 1)
		return
	}
	binding[ov] = po.Obj
	rec(i + 1)
	delete(binding, ov)
}
