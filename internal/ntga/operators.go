package ntga

import (
	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/sparql"
)

// OptGroupFilter implements the optional group-filter operator σ^γopt
// (Definition 3.3): it projects a subject triplegroup onto the star's
// primary and optional properties and accepts it iff every primary property
// is matched. The returned triplegroup contains the matching primary
// triples plus any matching optional triples. This is the lexical-plane
// form; OptGroupFilterRefs is the plane-space core.
func OptGroupFilter(tg TripleGroup, prim, opt []algebra.PropRef) (TripleGroup, bool) {
	return OptGroupFilterRefs(tg, ResolveRefs(prim, nil), ResolveRefs(opt, nil))
}

// SplitTG is one output of the n-split operator: the subset of a composite
// triplegroup matching original pattern Pattern.
type SplitTG struct {
	// Pattern is the original pattern's index in the composite.
	Pattern int
	// TG is the extracted triplegroup.
	TG TripleGroup
}

// NSplit implements the n-split operator χ (Definition 3.4): given a
// triplegroup matching a composite star with primary properties prim and
// per-pattern secondary property sets secs, it extracts one triplegroup per
// original pattern whose secondary properties are all present. A pattern
// with an empty secondary set always yields a split (Figure 4(c)).
func NSplit(tg TripleGroup, prim []algebra.PropRef, secs [][]algebra.PropRef) []SplitTG {
	rsecs := make([][]Ref, len(secs))
	for i, sec := range secs {
		rsecs[i] = ResolveRefs(sec, nil)
	}
	return NSplitRefs(tg, ResolveRefs(prim, nil), rsecs)
}

// SatisfiesPattern reports whether an annotated triplegroup can contribute
// to original pattern k of the composite pattern: every component star must
// contain pattern k's required secondary properties — the α condition of
// Definitions 3.5/3.6 (e.g. Figure 5's "pf ≠ ∅"). Components for stars the
// triplegroup has not yet joined are not constrained, so the check is
// usable both during intermediate α-Joins and at aggregation time.
// Engines resolve the table once with ResolveAlpha instead of calling this
// per record.
func SatisfiesPattern(a *AnnTG, cp *algebra.CompositePattern, k int) bool {
	return ResolveAlpha(cp, nil).Satisfies(a, k)
}

// SatisfiesAnyPattern implements the α-Join admission test (Definition
// 3.5): the joined triplegroup must satisfy at least one original pattern's
// α condition, otherwise the combination matches no original pattern and is
// not materialised (Table 2).
func SatisfiesAnyPattern(a *AnnTG, cp *algebra.CompositePattern) bool {
	return ResolveAlpha(cp, nil).SatisfiesAny(a)
}

// Binding is one solution mapping composite variable names to plane-space
// value keys (lexical Term.Key form, or ID-strings in the dictionary
// plane).
type Binding map[string]string

// MatchPattern enumerates the solutions of a set of canonical triple
// patterns (grouped per composite star) against an annotated triplegroup,
// invoking fn for each solution. Solutions follow SPARQL bag semantics:
// a triplegroup whose star component holds m triples for a pattern property
// yields m solutions for that triple pattern, and solutions multiply across
// triple patterns — this is what makes triplegroup aggregation agree with
// relational aggregation in the presence of multi-valued properties.
//
// starTPs[i] holds the required triple patterns rooted at composite star i
// (patterns for stars absent from the triplegroup cause zero solutions);
// optTPs[i] holds OPTIONAL patterns, which bind when a matching triple
// exists and leave their variables unbound otherwise. fn must not retain
// the binding. This is the lexical-plane form; MatchResolved is the
// plane-space core the engines use.
func MatchPattern(a *AnnTG, starTPs, optTPs map[int][]sparql.TriplePattern, fn func(Binding)) {
	MatchResolved(a, ResolveTPMap(starTPs, nil), ResolveTPMap(optTPs, nil), false, fn)
}

// PatternTriples groups original pattern k's canonical triple patterns by
// composite star index, the form MatchPattern consumes.
func PatternTriples(cp *algebra.CompositePattern, k int) map[int][]sparql.TriplePattern {
	out := map[int][]sparql.TriplePattern{}
	for i, cs := range cp.Stars {
		tps := cs.TriplesFor(k)
		if len(tps) > 0 {
			out[i] = tps
		}
	}
	return out
}

// AllPatternTriples returns every composite triple pattern grouped by star,
// used when matching the full composite pattern.
func AllPatternTriples(cp *algebra.CompositePattern) map[int][]sparql.TriplePattern {
	out := map[int][]sparql.TriplePattern{}
	for i, cs := range cp.Stars {
		out[i] = cs.AllTriples()
	}
	return out
}
