package ntga

import (
	"sort"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/sparql"
)

// OptGroupFilter implements the optional group-filter operator σ^γopt
// (Definition 3.3): it projects a subject triplegroup onto the star's
// primary and optional properties and accepts it iff every primary property
// is matched. The returned triplegroup contains the matching primary
// triples plus any matching optional triples.
func OptGroupFilter(tg TripleGroup, prim, opt []algebra.PropRef) (TripleGroup, bool) {
	for _, ref := range prim {
		if !tg.HasRef(ref) {
			return TripleGroup{}, false
		}
	}
	refs := make([]algebra.PropRef, 0, len(prim)+len(opt))
	refs = append(refs, prim...)
	refs = append(refs, opt...)
	return tg.Project(refs), true
}

// SplitTG is one output of the n-split operator: the subset of a composite
// triplegroup matching original pattern Pattern.
type SplitTG struct {
	// Pattern is the original pattern's index in the composite.
	Pattern int
	// TG is the extracted triplegroup.
	TG TripleGroup
}

// NSplit implements the n-split operator χ (Definition 3.4): given a
// triplegroup matching a composite star with primary properties prim and
// per-pattern secondary property sets secs, it extracts one triplegroup per
// original pattern whose secondary properties are all present. A pattern
// with an empty secondary set always yields a split (Figure 4(c)).
func NSplit(tg TripleGroup, prim []algebra.PropRef, secs [][]algebra.PropRef) []SplitTG {
	var out []SplitTG
	for k, sec := range secs {
		ok := true
		for _, ref := range sec {
			if !tg.HasRef(ref) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		refs := make([]algebra.PropRef, 0, len(prim)+len(sec))
		refs = append(refs, prim...)
		refs = append(refs, sec...)
		out = append(out, SplitTG{Pattern: k, TG: tg.Project(refs)})
	}
	return out
}

// SatisfiesPattern reports whether an annotated triplegroup can contribute
// to original pattern k of the composite pattern: every component star must
// contain pattern k's required secondary properties — the α condition of
// Definitions 3.5/3.6 (e.g. Figure 5's "pf ≠ ∅"). Components for stars the
// triplegroup has not yet joined are not constrained, so the check is
// usable both during intermediate α-Joins and at aggregation time.
func SatisfiesPattern(a *AnnTG, cp *algebra.CompositePattern, k int) bool {
	for i, star := range a.Stars {
		for _, ref := range cp.Stars[star].RequiredSecondaryFor(k) {
			if !a.TGs[i].HasRef(ref) {
				return false
			}
		}
	}
	return true
}

// SatisfiesAnyPattern implements the α-Join admission test (Definition
// 3.5): the joined triplegroup must satisfy at least one original pattern's
// α condition, otherwise the combination matches no original pattern and is
// not materialised (Table 2).
func SatisfiesAnyPattern(a *AnnTG, cp *algebra.CompositePattern) bool {
	for k := 0; k < cp.NumPatterns; k++ {
		if SatisfiesPattern(a, cp, k) {
			return true
		}
	}
	return false
}

// Binding is one solution mapping composite variable names to value keys.
type Binding map[string]string

// MatchPattern enumerates the solutions of a set of canonical triple
// patterns (grouped per composite star) against an annotated triplegroup,
// invoking fn for each solution. Solutions follow SPARQL bag semantics:
// a triplegroup whose star component holds m triples for a pattern property
// yields m solutions for that triple pattern, and solutions multiply across
// triple patterns — this is what makes triplegroup aggregation agree with
// relational aggregation in the presence of multi-valued properties.
//
// starTPs[i] holds the required triple patterns rooted at composite star i
// (patterns for stars absent from the triplegroup cause zero solutions);
// optTPs[i] holds OPTIONAL patterns, which bind when a matching triple
// exists and leave their variables unbound otherwise. fn must not retain
// the binding.
func MatchPattern(a *AnnTG, starTPs, optTPs map[int][]sparql.TriplePattern, fn func(Binding)) {
	// Flatten to a work list of (star, tp) with the component resolved.
	type work struct {
		tg       *TripleGroup
		tp       sparql.TriplePattern
		optional bool
	}
	var items []work
	stars := make([]int, 0, len(starTPs))
	for star := range starTPs {
		stars = append(stars, star)
	}
	sort.Ints(stars)
	for _, star := range stars {
		tg, ok := a.Component(star)
		if !ok {
			return
		}
		comp := tg
		for _, tp := range starTPs[star] {
			items = append(items, work{tg: &comp, tp: tp})
		}
		for _, tp := range optTPs[star] {
			items = append(items, work{tg: &comp, tp: tp, optional: true})
		}
	}
	// Required patterns first, so optional non-matches cannot mask required
	// bindings.
	sort.SliceStable(items, func(i, j int) bool { return !items[i].optional && items[j].optional })
	binding := Binding{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(items) {
			fn(binding)
			return
		}
		it := items[i]
		// Bind the subject variable to the component's subject.
		sv := it.tp.S.Var
		prevS, hadS := binding[sv]
		if hadS && prevS != it.tg.Subject {
			return
		}
		if !hadS {
			binding[sv] = it.tg.Subject
		}
		restoreS := func() {
			if !hadS {
				delete(binding, sv)
			}
		}
		// Match the object against the component's triples. An unbound
		// property (?p) matches any triple and binds the property variable.
		matchedAny := false
		for _, po := range it.tg.Triples {
			var restoreP func()
			if it.tp.P.IsVar {
				pv := it.tp.P.Var
				bound := "I" + po.Prop
				if prev, had := binding[pv]; had {
					if prev != bound {
						continue
					}
					restoreP = func() {}
				} else {
					binding[pv] = bound
					restoreP = func() { delete(binding, pv) }
				}
			} else if po.Prop != it.tp.P.Term.Value {
				continue
			}
			if it.optional {
				if !it.tp.O.IsVar && po.Obj != it.tp.O.Term.Key() {
					continue
				}
				matchedAny = true
			}
			matchObject(it.tp, po, binding, rec, i)
			if restoreP != nil {
				restoreP()
			}
		}
		if it.optional && !matchedAny {
			// Left-outer: proceed with the optional variables unbound.
			rec(i + 1)
		}
		restoreS()
	}
	rec(0)
}

// matchObject matches one triple's object against the pattern's object
// position and recurses.
func matchObject(tp sparql.TriplePattern, po PO, binding Binding, rec func(int), i int) {
	if !tp.O.IsVar {
		if po.Obj != tp.O.Term.Key() {
			return
		}
		rec(i + 1)
		return
	}
	ov := tp.O.Var
	prevO, hadO := binding[ov]
	if hadO {
		if prevO != po.Obj {
			return
		}
		rec(i + 1)
		return
	}
	binding[ov] = po.Obj
	rec(i + 1)
	delete(binding, ov)
}

// PatternTriples groups original pattern k's canonical triple patterns by
// composite star index, the form MatchPattern consumes.
func PatternTriples(cp *algebra.CompositePattern, k int) map[int][]sparql.TriplePattern {
	out := map[int][]sparql.TriplePattern{}
	for i, cs := range cp.Stars {
		tps := cs.TriplesFor(k)
		if len(tps) > 0 {
			out[i] = tps
		}
	}
	return out
}

// AllPatternTriples returns every composite triple pattern grouped by star,
// used when matching the full composite pattern.
func AllPatternTriples(cp *algebra.CompositePattern) map[int][]sparql.TriplePattern {
	out := map[int][]sparql.TriplePattern{}
	for i, cs := range cp.Stars {
		out[i] = cs.AllTriples()
	}
	return out
}
