package ntga

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/sparql"
)

func ref(prop string) algebra.PropRef { return algebra.PropRef{Prop: prop} }

func tg(subject string, pos ...string) TripleGroup {
	out := TripleGroup{Subject: "I" + subject}
	for _, po := range pos {
		parts := strings.SplitN(po, "=", 2)
		out.Triples = append(out.Triples, PO{Prop: parts[0], Obj: "L" + parts[1]})
	}
	return out
}

// Figure 4(a): optional group filter with P_prim = {product, price} and
// P_opt = {validFrom, validTo}.
func TestOptGroupFilterFigure4a(t *testing.T) {
	prim := []algebra.PropRef{ref("product"), ref("price")}
	opt := []algebra.PropRef{ref("validFrom"), ref("validTo")}
	tg1 := tg("o1", "product=p1", "price=100", "validTo=2010")
	tg2 := tg("o2", "product=p2", "price=200")
	tg3 := tg("o3", "product=p3", "validFrom=2008") // no price -> filtered
	tg4 := tg("o4", "product=p4", "price=400", "validFrom=2009", "validTo=2011")

	for _, tc := range []struct {
		in   TripleGroup
		ok   bool
		size int
	}{
		{tg1, true, 3},
		{tg2, true, 2},
		{tg3, false, 0},
		{tg4, true, 4},
	} {
		got, ok := OptGroupFilter(tc.in, prim, opt)
		if ok != tc.ok {
			t.Errorf("OptGroupFilter(%v) ok = %v, want %v", tc.in, ok, tc.ok)
		}
		if ok && len(got.Triples) != tc.size {
			t.Errorf("OptGroupFilter(%v) kept %d triples, want %d", tc.in, len(got.Triples), tc.size)
		}
	}
}

// The filter must also project away irrelevant properties.
func TestOptGroupFilterProjects(t *testing.T) {
	in := tg("o1", "product=p1", "price=100", "unrelated=x")
	got, ok := OptGroupFilter(in, []algebra.PropRef{ref("product"), ref("price")}, nil)
	if !ok || len(got.Triples) != 2 {
		t.Fatalf("got %v ok=%v", got, ok)
	}
	for _, po := range got.Triples {
		if po.Prop == "unrelated" {
			t.Error("irrelevant property not projected away")
		}
	}
}

func TestOptGroupFilterConstObjRef(t *testing.T) {
	typed := algebra.PropRef{Prop: rdf.RDFType, Obj: rdf.NewIRI("PT18")}
	in := TripleGroup{Subject: "Ip1", Triples: []PO{
		{Prop: rdf.RDFType, Obj: "IPT18"},
		{Prop: rdf.RDFType, Obj: "IOther"},
		{Prop: "label", Obj: "Lx"},
	}}
	got, ok := OptGroupFilter(in, []algebra.PropRef{typed, ref("label")}, nil)
	if !ok {
		t.Fatal("typed filter rejected matching triplegroup")
	}
	// Only the matching type triple survives projection.
	if len(got.Triples) != 2 {
		t.Errorf("projection kept %v", got.Triples)
	}
	in2 := TripleGroup{Subject: "Ip2", Triples: []PO{
		{Prop: rdf.RDFType, Obj: "IOther"},
		{Prop: "label", Obj: "Lx"},
	}}
	if _, ok := OptGroupFilter(in2, []algebra.PropRef{typed, ref("label")}, nil); ok {
		t.Error("typed filter accepted wrong type object")
	}
}

// Figure 4(b): n-split with P_sec1 = {validFrom}, P_sec2 = {validTo}.
func TestNSplitFigure4b(t *testing.T) {
	prim := []algebra.PropRef{ref("product"), ref("price")}
	secs := [][]algebra.PropRef{{ref("validFrom")}, {ref("validTo")}}
	tg1 := tg("o1", "product=p1", "price=100", "validTo=2010")
	tg4 := tg("o4", "product=p4", "price=400", "validFrom=2009", "validTo=2011")

	got1 := NSplit(tg1, prim, secs)
	if len(got1) != 1 || got1[0].Pattern != 1 {
		t.Fatalf("NSplit(tg1) = %v, want single pattern-2 split", got1)
	}
	if len(got1[0].TG.Triples) != 3 {
		t.Errorf("split tg1 triples = %v", got1[0].TG.Triples)
	}
	got4 := NSplit(tg4, prim, secs)
	if len(got4) != 2 {
		t.Fatalf("NSplit(tg4) = %v, want both splits", got4)
	}
	for _, s := range got4 {
		if len(s.TG.Triples) != 3 {
			t.Errorf("split %d kept %v", s.Pattern, s.TG.Triples)
		}
	}
}

// Figure 4(c): a pattern with no secondary properties always yields a
// split containing only the primaries.
func TestNSplitEmptySecondary(t *testing.T) {
	prim := []algebra.PropRef{ref("product"), ref("price")}
	secs := [][]algebra.PropRef{{}, {ref("validTo")}}
	tg2 := tg("o2", "product=p2", "price=200")
	got := NSplit(tg2, prim, secs)
	if len(got) != 1 || got[0].Pattern != 0 || len(got[0].TG.Triples) != 2 {
		t.Fatalf("NSplit = %v", got)
	}
	tg4 := tg("o4", "product=p4", "price=400", "validTo=2011")
	got4 := NSplit(tg4, prim, secs)
	if len(got4) != 2 {
		t.Fatalf("NSplit(tg4) = %v", got4)
	}
	if len(got4[0].TG.Triples) != 2 || len(got4[1].TG.Triples) != 3 {
		t.Errorf("split sizes = %d, %d", len(got4[0].TG.Triples), len(got4[1].TG.Triples))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a := NewAnnTG(0, tg("p1", "type=PT18", "pf=f1", "pf=f2"))
	b := NewAnnTG(1, tg("o1", "product=p1", "price=100"))
	m := Merge(a, b)
	dec, err := DecodeAnnTG(m.Encode())
	if err != nil {
		t.Fatalf("DecodeAnnTG: %v", err)
	}
	if !reflect.DeepEqual(dec, m) {
		t.Errorf("round trip:\n got %+v\nwant %+v", dec, m)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(subject string, props, objs []string) bool {
		g := TripleGroup{Subject: subject}
		for i := range props {
			obj := ""
			if i < len(objs) {
				obj = objs[i]
			}
			g.Triples = append(g.Triples, PO{Prop: props[i], Obj: obj})
		}
		a := NewAnnTG(3, g)
		dec, err := DecodeAnnTG(a.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(dec, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	a := NewAnnTG(0, tg("s", "p=1"))
	enc := a.Encode()
	for _, bad := range [][]byte{
		{},
		enc[:len(enc)-1],
		append(append([]byte{}, enc...), 0xFF),
	} {
		if _, err := DecodeAnnTG(bad); err == nil {
			t.Errorf("DecodeAnnTG(% x) succeeded", bad)
		}
	}
}

func TestMergeOrdersStars(t *testing.T) {
	a := NewAnnTG(2, tg("c", "cn=UK"))
	b := NewAnnTG(0, tg("p", "type=PT18"))
	m := Merge(a, b)
	if !reflect.DeepEqual(m.Stars, []int{0, 2}) {
		t.Errorf("Stars = %v", m.Stars)
	}
	if c, ok := m.Component(2); !ok || c.Subject != "Ic" {
		t.Errorf("Component(2) = %v, %v", c, ok)
	}
	if _, ok := m.Component(1); ok {
		t.Error("Component(1) should be absent")
	}
}

// buildComposite builds the MG1-style composite pattern used by the
// matching and α tests: star0 = {type=PT1, label, pf?}, star1 = {product,
// price}, where pf is pattern 0's secondary.
func buildComposite(t testing.TB) *algebra.CompositePattern {
	t.Helper()
	q := sparql.MustParse(`PREFIX e: <http://e/>
SELECT ?f ?cntF ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cntF)
    { ?p2 a e:PT1 ; e:label ?l2 ; e:pf ?f .
      ?off2 e:product ?p2 ; e:price ?pr2 .
    } GROUP BY ?f
  }
  { SELECT (COUNT(?pr) AS ?cntT)
    { ?p1 a e:PT1 ; e:label ?l1 .
      ?off1 e:product ?p1 ; e:price ?pr .
    }
  }
}`)
	aq, err := algebra.Build(q)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cp, err := algebra.BuildComposite(aq.Subqueries)
	if err != nil {
		t.Fatalf("BuildComposite: %v", err)
	}
	return cp
}

func productTG(name string, features ...string) TripleGroup {
	g := TripleGroup{Subject: "I" + name, Triples: []PO{
		{Prop: rdf.RDFType, Obj: "Ihttp://e/PT1"},
		{Prop: "http://e/label", Obj: "L" + name},
	}}
	for _, f := range features {
		g.Triples = append(g.Triples, PO{Prop: "http://e/pf", Obj: "I" + f})
	}
	return g
}

func offerTG(name, product, price string) TripleGroup {
	return TripleGroup{Subject: "I" + name, Triples: []PO{
		{Prop: "http://e/product", Obj: "I" + product},
		{Prop: "http://e/price", Obj: "L" + price},
	}}
}

// The α condition (Figure 5): a joined triplegroup without the secondary
// pf cannot contribute to the per-feature pattern but still contributes to
// the GROUP BY ALL pattern.
func TestSatisfiesPattern(t *testing.T) {
	cp := buildComposite(t)
	withPF := Merge(NewAnnTG(0, productTG("p1", "f1")), NewAnnTG(1, offerTG("o1", "p1", "100")))
	withoutPF := Merge(NewAnnTG(0, productTG("p2")), NewAnnTG(1, offerTG("o2", "p2", "200")))
	if !SatisfiesPattern(&withPF, cp, 0) || !SatisfiesPattern(&withPF, cp, 1) {
		t.Error("triplegroup with pf should satisfy both patterns")
	}
	if SatisfiesPattern(&withoutPF, cp, 0) {
		t.Error("triplegroup without pf satisfies the per-feature pattern")
	}
	if !SatisfiesPattern(&withoutPF, cp, 1) {
		t.Error("triplegroup without pf should satisfy the ALL pattern")
	}
	if !SatisfiesAnyPattern(&withoutPF, cp) || !SatisfiesAnyPattern(&withPF, cp) {
		t.Error("α-Join admission failed")
	}
}

// Binding multiplicity: a product with two features yields two solutions
// for the per-feature pattern and one for the featureless pattern.
func TestMatchPatternMultiplicity(t *testing.T) {
	cp := buildComposite(t)
	atg := Merge(NewAnnTG(0, productTG("p1", "f1", "f2")), NewAnnTG(1, offerTG("o1", "p1", "100")))

	count := 0
	features := map[string]bool{}
	MatchPattern(&atg, PatternTriples(cp, 0), nil, func(b Binding) {
		count++
		features[b["f"]] = true
		if b["pr2"] != "L100" {
			t.Errorf("price binding = %q", b["pr2"])
		}
	})
	if count != 2 || !features["If1"] || !features["If2"] {
		t.Errorf("pattern 0 solutions = %d (%v), want 2", count, features)
	}

	count = 0
	MatchPattern(&atg, PatternTriples(cp, 1), nil, func(b Binding) { count++ })
	if count != 1 {
		t.Errorf("pattern 1 solutions = %d, want 1", count)
	}
}

// A missing star component yields no solutions.
func TestMatchPatternMissingStar(t *testing.T) {
	cp := buildComposite(t)
	atg := NewAnnTG(0, productTG("p1", "f1"))
	called := false
	MatchPattern(&atg, PatternTriples(cp, 0), nil, func(Binding) { called = true })
	if called {
		t.Error("solutions produced despite missing star component")
	}
}

// Shared variables across triple patterns must agree: an object variable
// used twice only matches consistent objects.
func TestMatchPatternConsistency(t *testing.T) {
	tps := map[int][]sparql.TriplePattern{
		0: {
			{S: sparql.V("s"), P: sparql.C(rdf.NewIRI("p")), O: sparql.V("x")},
			{S: sparql.V("s"), P: sparql.C(rdf.NewIRI("q")), O: sparql.V("x")},
		},
	}
	atg := NewAnnTG(0, TripleGroup{Subject: "Is", Triples: []PO{
		{Prop: "p", Obj: "L1"},
		{Prop: "p", Obj: "L2"},
		{Prop: "q", Obj: "L2"},
		{Prop: "q", Obj: "L3"},
	}})
	var got []string
	MatchPattern(&atg, tps, nil, func(b Binding) { got = append(got, b["x"]) })
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"L2"}) {
		t.Errorf("consistent solutions = %v, want [L2]", got)
	}
}

// Property: GroupBySubject partitions the graph — total triples preserved,
// one group per distinct subject.
func TestGroupBySubjectQuick(t *testing.T) {
	f := func(edges []uint8) bool {
		g := &rdf.Graph{}
		subjects := map[string]bool{}
		for i, e := range edges {
			s := rdf.NewIRI(string(rune('a' + e%5)))
			subjects[s.Key()] = true
			g.Add(rdf.T(s, rdf.NewIRI("p"), rdf.NewLiteral(string(rune('0'+i%10)))))
		}
		tgs := GroupBySubject(g)
		if len(tgs) != len(subjects) {
			return false
		}
		total := 0
		for _, tg := range tgs {
			total += len(tg.Triples)
		}
		return total == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
