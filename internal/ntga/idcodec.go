package ntga

import (
	"fmt"

	"rapidanalytics/internal/codec"
)

// This file holds the dictionary-plane triplegroup codecs. In the
// dictionary plane every field of a triplegroup (subject, property, object)
// is a uvarint ID-string (rdf.Dict), which is self-delimiting — so the
// encoded form concatenates the raw ID bytes with no per-field length
// prefixes, and decoding resolves each ID to its interned string through a
// codec.Interner instead of allocating a fresh string per field.

// AppendEncodeIDs appends the dictionary-plane encoding of the triplegroup
// to buf. Every field must be an ID-string.
//
//rapid:hot
func (tg *TripleGroup) AppendEncodeIDs(buf []byte) []byte {
	buf = append(buf, tg.Subject...)
	buf = codec.AppendUvarint(buf, uint64(len(tg.Triples)))
	for _, t := range tg.Triples {
		buf = append(buf, t.Prop...)
		buf = append(buf, t.Obj...)
	}
	return buf
}

// EncodeIDs serialises a dictionary-plane triplegroup.
func (tg *TripleGroup) EncodeIDs() []byte {
	return tg.AppendEncodeIDs(nil)
}

// DecodeTripleGroupIDs parses a triplegroup written by AppendEncodeIDs,
// returning the remaining buffer (triplegroups nest inside annotated
// triplegroups). Fields resolve to interned ID-strings through in.
func DecodeTripleGroupIDs(buf []byte, in codec.Interner) (TripleGroup, []byte, error) {
	var tg TripleGroup
	var err error
	tg.Subject, buf, err = codec.ReadIDValue(buf, in)
	if err != nil {
		return tg, nil, fmt.Errorf("ntga: id triplegroup subject: %w", err)
	}
	n, buf, err := codec.ReadUvarint(buf)
	if err != nil {
		return tg, nil, fmt.Errorf("ntga: id triplegroup arity: %w", err)
	}
	// Each triple takes at least two bytes (property + object IDs).
	if n > uint64(len(buf)) {
		return tg, nil, fmt.Errorf("ntga: id triplegroup arity %d exceeds %d remaining bytes", n, len(buf))
	}
	if n > 0 {
		tg.Triples = make([]PO, n)
	}
	for i := range tg.Triples {
		tg.Triples[i].Prop, buf, err = codec.ReadIDValue(buf, in)
		if err != nil {
			return tg, nil, fmt.Errorf("ntga: id triple %d property: %w", i, err)
		}
		tg.Triples[i].Obj, buf, err = codec.ReadIDValue(buf, in)
		if err != nil {
			return tg, nil, fmt.Errorf("ntga: id triple %d object: %w", i, err)
		}
	}
	return tg, buf, nil
}

// AppendEncodeIDs appends the dictionary-plane encoding of the annotated
// triplegroup to buf.
//
//rapid:hot
func (a *AnnTG) AppendEncodeIDs(buf []byte) []byte {
	buf = codec.AppendUvarint(buf, uint64(len(a.Stars)))
	for i, s := range a.Stars {
		buf = codec.AppendUvarint(buf, uint64(s))
		buf = a.TGs[i].AppendEncodeIDs(buf)
	}
	return buf
}

// EncodeIDs serialises a dictionary-plane annotated triplegroup.
func (a *AnnTG) EncodeIDs() []byte {
	return a.AppendEncodeIDs(nil)
}

// DecodeAnnTGIDs parses an annotated triplegroup written by
// AppendEncodeIDs.
func DecodeAnnTGIDs(buf []byte, in codec.Interner) (AnnTG, error) {
	n, buf, err := codec.ReadUvarint(buf)
	if err != nil {
		return AnnTG{}, fmt.Errorf("ntga: id anntg arity: %w", err)
	}
	// Each star takes at least two bytes (star index + subject ID).
	if n > uint64(len(buf)) {
		return AnnTG{}, fmt.Errorf("ntga: id anntg arity %d exceeds %d remaining bytes", n, len(buf))
	}
	a := AnnTG{Stars: make([]int, n), TGs: make([]TripleGroup, n)}
	for i := 0; i < int(n); i++ {
		s, rest, err := codec.ReadUvarint(buf)
		if err != nil {
			return AnnTG{}, fmt.Errorf("ntga: id anntg star %d: %w", i, err)
		}
		a.Stars[i] = int(s)
		a.TGs[i], rest, err = DecodeTripleGroupIDs(rest, in)
		if err != nil {
			return AnnTG{}, err
		}
		buf = rest
	}
	if len(buf) != 0 {
		return AnnTG{}, fmt.Errorf("ntga: %d trailing bytes after id anntg", len(buf))
	}
	return a, nil
}
