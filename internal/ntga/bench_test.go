package ntga

import (
	"fmt"
	"testing"

	"rapidanalytics/internal/algebra"
)

func benchTG(props, fanout int) TripleGroup {
	g := TripleGroup{Subject: "Is"}
	for i := 0; i < props; i++ {
		for j := 0; j < fanout; j++ {
			g.Triples = append(g.Triples, PO{
				Prop: fmt.Sprintf("http://e/p%d", i),
				Obj:  fmt.Sprintf("Lv%d_%d", i, j),
			})
		}
	}
	return g
}

func BenchmarkOptGroupFilter(b *testing.B) {
	tg := benchTG(6, 2)
	prim := []algebra.PropRef{{Prop: "http://e/p0"}, {Prop: "http://e/p1"}}
	opt := []algebra.PropRef{{Prop: "http://e/p2"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := OptGroupFilter(tg, prim, opt); !ok {
			b.Fatal("filtered out")
		}
	}
}

func BenchmarkEncodeDecodeAnnTG(b *testing.B) {
	a := Merge(NewAnnTG(0, benchTG(4, 2)), NewAnnTG(1, benchTG(3, 1)))
	enc := a.Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAnnTG(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchPattern(b *testing.B) {
	cp := buildComposite(b)
	atg := Merge(NewAnnTG(0, productTG("p1", "f1", "f2", "f3")), NewAnnTG(1, offerTG("o1", "p1", "100")))
	tps := PatternTriples(cp, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		MatchPattern(&atg, tps, nil, func(Binding) { n++ })
		if n != 3 {
			b.Fatalf("solutions = %d", n)
		}
	}
}
