package ntga

import (
	"testing"

	"rapidanalytics/internal/codec"
)

// fuzzInterner mirrors rdf.Dict's ID-string behaviour for arbitrary IDs: the
// interned string for id is its own uvarint encoding, so every well-formed ID
// stream decodes. Decoders accept non-minimal uvarints, so the fuzz
// properties are value-level: whatever decodes must survive a canonical
// re-encode/re-decode round trip unchanged.
type fuzzInterner struct{}

func (fuzzInterner) IDString(id uint64) (string, bool) {
	return string(codec.AppendUvarint(nil, id)), true
}

func idStr(id uint64) string { return string(codec.AppendUvarint(nil, id)) }

func tgsEqual(a, b TripleGroup) bool {
	if a.Subject != b.Subject || len(a.Triples) != len(b.Triples) {
		return false
	}
	for i := range a.Triples {
		if a.Triples[i] != b.Triples[i] {
			return false
		}
	}
	return true
}

func FuzzDecodeTripleGroupIDs(f *testing.F) {
	in := fuzzInterner{}
	tg := TripleGroup{
		Subject: idStr(1),
		Triples: []PO{{Prop: idStr(2), Obj: idStr(3)}, {Prop: idStr(2), Obj: idStr(300)}},
	}
	f.Add(tg.EncodeIDs())
	f.Add((&TripleGroup{Subject: idStr(9)}).EncodeIDs())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff})
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, _, err := DecodeTripleGroupIDs(data, in)
		if err != nil {
			return
		}
		got2, rest2, err := DecodeTripleGroupIDs(got.EncodeIDs(), in)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-decode: rest %d, err %v", len(rest2), err)
		}
		if !tgsEqual(got, got2) {
			t.Fatalf("triplegroup changed across re-encode: %+v vs %+v", got, got2)
		}
	})
}

func FuzzDecodeAnnTGIDs(f *testing.F) {
	in := fuzzInterner{}
	a := AnnTG{
		Stars: []int{0, 2},
		TGs: []TripleGroup{
			{Subject: idStr(1), Triples: []PO{{Prop: idStr(2), Obj: idStr(3)}}},
			{Subject: idStr(4)},
		},
	}
	f.Add(a.EncodeIDs())
	f.Add((&AnnTG{}).EncodeIDs())
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x00, 0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeAnnTGIDs(data, in)
		if err != nil {
			return
		}
		got2, err := DecodeAnnTGIDs(got.EncodeIDs(), in)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(got.Stars) != len(got2.Stars) {
			t.Fatalf("star count changed: %d vs %d", len(got.Stars), len(got2.Stars))
		}
		for i := range got.Stars {
			if got.Stars[i] != got2.Stars[i] || !tgsEqual(got.TGs[i], got2.TGs[i]) {
				t.Fatalf("star %d changed across re-encode", i)
			}
		}
	})
}
