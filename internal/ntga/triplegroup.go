// Package ntga implements the Nested TripleGroup Data Model and Algebra:
// triplegroups (triples grouped by subject), annotated/joined triplegroups,
// and the paper's logical operators — optional group filter (σ^γopt,
// Definition 3.3), n-split (χ, Definition 3.4), α-Join (Definition 3.5) and
// the binding enumeration underlying the triplegroup Agg-Join (γ^AgJ,
// Definition 3.6). The operators here are pure functions; the engines wrap
// them into map/reduce physical operators.
package ntga

import (
	"fmt"
	"sort"
	"strings"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/rdf"
)

// PO is one property/object pair of a triplegroup. Both are stored in
// compact key form: the property as its IRI, the object as rdf.Term.Key.
type PO struct {
	// Prop is the property IRI.
	Prop string
	// Obj is the object in rdf.Term.Key form.
	Obj string
}

// TripleGroup is a set of triples sharing one subject.
type TripleGroup struct {
	// Subject is the shared subject in rdf.Term.Key form.
	Subject string
	// Triples are the property/object pairs.
	Triples []PO
}

// Props returns the set of distinct property IRIs in the triplegroup.
func (tg *TripleGroup) Props() map[string]bool {
	m := make(map[string]bool, len(tg.Triples))
	for _, t := range tg.Triples {
		m[t.Prop] = true
	}
	return m
}

// HasRef reports whether the triplegroup contains a triple matching the
// property reference (property equal and, for constant-object references,
// object equal).
func (tg *TripleGroup) HasRef(ref algebra.PropRef) bool {
	objKey := ""
	if ref.HasConstObj() {
		objKey = ref.Obj.Key()
	}
	for _, t := range tg.Triples {
		if t.Prop != ref.Prop {
			continue
		}
		if objKey == "" || t.Obj == objKey {
			return true
		}
	}
	return false
}

// Objects returns the object keys of triples with the given property.
func (tg *TripleGroup) Objects(prop string) []string {
	var out []string
	for _, t := range tg.Triples {
		if t.Prop == prop {
			out = append(out, t.Obj)
		}
	}
	return out
}

// Project returns a copy of the triplegroup restricted to triples matching
// any of the property references.
func (tg *TripleGroup) Project(refs []algebra.PropRef) TripleGroup {
	out := TripleGroup{Subject: tg.Subject}
	for _, t := range tg.Triples {
		for _, ref := range refs {
			if t.Prop != ref.Prop {
				continue
			}
			if ref.HasConstObj() && t.Obj != ref.Obj.Key() {
				continue
			}
			out.Triples = append(out.Triples, t)
			break
		}
	}
	return out
}

// String renders the triplegroup for diagnostics.
func (tg *TripleGroup) String() string {
	parts := make([]string, len(tg.Triples))
	for i, t := range tg.Triples {
		parts[i] = t.Prop + "→" + t.Obj
	}
	return tg.Subject + "{" + strings.Join(parts, ", ") + "}"
}

// AppendEncode appends the triplegroup's encoding to buf and returns the
// extended slice — the allocation-free form of Encode for hot emit paths.
//
//rapid:hot
func (tg *TripleGroup) AppendEncode(buf []byte) []byte {
	buf = codec.AppendString(buf, tg.Subject)
	buf = codec.AppendUvarint(buf, uint64(len(tg.Triples)))
	for _, t := range tg.Triples {
		buf = codec.AppendString(buf, t.Prop)
		buf = codec.AppendString(buf, t.Obj)
	}
	return buf
}

// Encode serialises the triplegroup.
func (tg *TripleGroup) Encode() []byte {
	return tg.AppendEncode(nil)
}

// DecodeTripleGroup parses a triplegroup written by Encode, returning the
// remaining buffer (triplegroups nest inside annotated triplegroups).
func DecodeTripleGroup(buf []byte) (TripleGroup, []byte, error) {
	var tg TripleGroup
	var err error
	tg.Subject, buf, err = codec.ReadString(buf)
	if err != nil {
		return tg, nil, fmt.Errorf("ntga: triplegroup subject: %w", err)
	}
	n, buf, err := codec.ReadUvarint(buf)
	if err != nil {
		return tg, nil, fmt.Errorf("ntga: triplegroup arity: %w", err)
	}
	if n > 0 {
		tg.Triples = make([]PO, n)
	}
	for i := range tg.Triples {
		tg.Triples[i].Prop, buf, err = codec.ReadString(buf)
		if err != nil {
			return tg, nil, fmt.Errorf("ntga: triple %d property: %w", i, err)
		}
		tg.Triples[i].Obj, buf, err = codec.ReadString(buf)
		if err != nil {
			return tg, nil, fmt.Errorf("ntga: triple %d object: %w", i, err)
		}
	}
	return tg, buf, nil
}

// GroupBySubject builds subject triplegroups from a graph, ordered by
// subject key for determinism.
func GroupBySubject(g *rdf.Graph) []TripleGroup {
	bySubject := map[string]*TripleGroup{}
	var order []string
	for _, t := range g.Triples {
		key := t.Subject.Key()
		tg, ok := bySubject[key]
		if !ok {
			tg = &TripleGroup{Subject: key}
			bySubject[key] = tg
			order = append(order, key)
		}
		tg.Triples = append(tg.Triples, PO{Prop: t.Property.Value, Obj: t.Object.Key()})
	}
	sort.Strings(order)
	out := make([]TripleGroup, len(order))
	for i, key := range order {
		out[i] = *bySubject[key]
	}
	return out
}

// AnnTG is an annotated (possibly joined) triplegroup: one component
// triplegroup per composite star already matched. It is the value type
// flowing through the NTGA physical operators (the paper's AnnTG).
type AnnTG struct {
	// Stars lists the composite-star indexes present, ascending.
	Stars []int
	// TGs holds the component triplegroups, parallel to Stars.
	TGs []TripleGroup
}

// NewAnnTG wraps a single star's triplegroup.
func NewAnnTG(star int, tg TripleGroup) AnnTG {
	return AnnTG{Stars: []int{star}, TGs: []TripleGroup{tg}}
}

// Component returns the triplegroup for the given star index.
func (a *AnnTG) Component(star int) (TripleGroup, bool) {
	for i, s := range a.Stars {
		if s == star {
			return a.TGs[i], true
		}
	}
	return TripleGroup{}, false
}

// Merge combines two joined triplegroups with disjoint star sets.
func Merge(a, b AnnTG) AnnTG {
	out := AnnTG{
		Stars: make([]int, 0, len(a.Stars)+len(b.Stars)),
		TGs:   make([]TripleGroup, 0, len(a.TGs)+len(b.TGs)),
	}
	i, j := 0, 0
	for i < len(a.Stars) && j < len(b.Stars) {
		if a.Stars[i] < b.Stars[j] {
			out.Stars = append(out.Stars, a.Stars[i])
			out.TGs = append(out.TGs, a.TGs[i])
			i++
		} else {
			out.Stars = append(out.Stars, b.Stars[j])
			out.TGs = append(out.TGs, b.TGs[j])
			j++
		}
	}
	for ; i < len(a.Stars); i++ {
		out.Stars = append(out.Stars, a.Stars[i])
		out.TGs = append(out.TGs, a.TGs[i])
	}
	for ; j < len(b.Stars); j++ {
		out.Stars = append(out.Stars, b.Stars[j])
		out.TGs = append(out.TGs, b.TGs[j])
	}
	return out
}

// AppendEncode appends the annotated triplegroup's encoding to buf and
// returns the extended slice — the allocation-free form of Encode for hot
// emit paths.
//
//rapid:hot
func (a *AnnTG) AppendEncode(buf []byte) []byte {
	buf = codec.AppendUvarint(buf, uint64(len(a.Stars)))
	for i, s := range a.Stars {
		buf = codec.AppendUvarint(buf, uint64(s))
		buf = a.TGs[i].AppendEncode(buf)
	}
	return buf
}

// Encode serialises the annotated triplegroup.
func (a *AnnTG) Encode() []byte {
	return a.AppendEncode(nil)
}

// DecodeAnnTG parses an annotated triplegroup written by Encode.
func DecodeAnnTG(buf []byte) (AnnTG, error) {
	n, buf, err := codec.ReadUvarint(buf)
	if err != nil {
		return AnnTG{}, fmt.Errorf("ntga: anntg arity: %w", err)
	}
	a := AnnTG{Stars: make([]int, n), TGs: make([]TripleGroup, n)}
	for i := 0; i < int(n); i++ {
		s, rest, err := codec.ReadUvarint(buf)
		if err != nil {
			return AnnTG{}, fmt.Errorf("ntga: anntg star %d: %w", i, err)
		}
		a.Stars[i] = int(s)
		a.TGs[i], rest, err = DecodeTripleGroup(rest)
		if err != nil {
			return AnnTG{}, err
		}
		buf = rest
	}
	if len(buf) != 0 {
		return AnnTG{}, fmt.Errorf("ntga: %d trailing bytes after anntg", len(buf))
	}
	return a, nil
}
